package lasvegas_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lasvegas"
)

// mergeShard builds a deterministic in-memory shard for merge tests.
func mergeShard(problem string, size int, seed uint64, iters []float64, censored []int, budget int64) *lasvegas.Campaign {
	secs := make([]float64, len(iters))
	for i, it := range iters {
		secs[i] = it / 1000
	}
	return &lasvegas.Campaign{
		Problem:    problem,
		Size:       size,
		Runs:       len(iters),
		Seed:       seed,
		Iterations: iters,
		Seconds:    secs,
		Censored:   censored,
		Budget:     budget,
	}
}

func TestMergeMismatchRejected(t *testing.T) {
	base := mergeShard("costas-13", 13, 1, []float64{1, 2}, nil, 0)
	cases := []struct {
		name  string
		other *lasvegas.Campaign
	}{
		{"problem", mergeShard("costas-14", 13, 1, []float64{3}, nil, 0)},
		{"size", mergeShard("costas-13", 14, 1, []float64{3}, nil, 0)},
		{"budget", mergeShard("costas-13", 13, 1, []float64{3}, nil, 500)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := base.Merge(tc.other); !errors.Is(err, lasvegas.ErrMergeMismatch) {
				t.Errorf("Merge with %s mismatch: %v, want ErrMergeMismatch", tc.name, err)
			}
		})
	}
	if _, err := base.Merge(nil); !errors.Is(err, lasvegas.ErrEmptyCampaign) {
		t.Errorf("Merge with nil shard: %v, want ErrEmptyCampaign", err)
	}
	if _, err := base.Merge(&lasvegas.Campaign{Problem: "costas-13", Size: 13}); !errors.Is(err, lasvegas.ErrEmptyCampaign) {
		t.Errorf("Merge with empty shard: %v, want ErrEmptyCampaign", err)
	}
}

func TestMergeCensoringPropagation(t *testing.T) {
	a := mergeShard("sat-3-120", 120, 7, []float64{100, 5000, 300}, []int{1}, 5000)
	b := mergeShard("sat-3-120", 120, 7, []float64{5000, 80}, []int{0}, 5000)
	c := mergeShard("sat-3-120", 120, 7, []float64{60, 70, 5000, 5000}, []int{2, 3}, 5000)
	m, err := a.Merge(b, c)
	if err != nil {
		t.Fatal(err)
	}
	wantCensored := []int{1, 3, 7, 8} // shard offsets 0, 3, 5
	if !reflect.DeepEqual(m.Censored, wantCensored) {
		t.Errorf("merged censored = %v, want %v", m.Censored, wantCensored)
	}
	if m.Budget != 5000 || m.Runs != 9 || len(m.Iterations) != 9 {
		t.Errorf("merged campaign %+v, want budget 5000 over 9 runs", m)
	}
	if !m.IsCensored() {
		t.Error("merged campaign lost its censoring flag")
	}
	// The censored values sit at their budget in the pooled sample.
	for _, idx := range m.Censored {
		if m.Iterations[idx] != 5000 {
			t.Errorf("censored run %d has iterations %v, want the 5000 budget", idx, m.Iterations[idx])
		}
	}
}

func TestMergeAssociativity(t *testing.T) {
	a := mergeShard("costas-13", 13, 1, []float64{10, 20}, []int{0}, 100)
	b := mergeShard("costas-13", 13, 1, []float64{30}, nil, 100)
	c := mergeShard("costas-13", 13, 1, []float64{40, 100, 60}, []int{1}, 100)

	allAtOnce, err := a.Merge(b, c)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	leftFold, err := ab.Merge(c)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := b.Merge(c)
	if err != nil {
		t.Fatal(err)
	}
	rightFold, err := a.Merge(bc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(allAtOnce, leftFold) {
		t.Errorf("merge not associative: (a·b)·c = %+v, a·b·c = %+v", leftFold, allAtOnce)
	}
	if !reflect.DeepEqual(allAtOnce, rightFold) {
		t.Errorf("merge not associative: a·(b·c) = %+v, a·b·c = %+v", rightFold, allAtOnce)
	}
}

func TestMergeMetadataAndSeconds(t *testing.T) {
	a := mergeShard("costas-13", 13, 1, []float64{1}, nil, 0)
	a.Metadata = map[string]string{
		"solver":              "adaptive",
		"host":                "machine-a",
		"lasvegas.shard":      "0/2",
		"lasvegas.shard.runs": "2",
	}
	b := mergeShard("costas-13", 13, 1, []float64{2}, nil, 0)
	b.Metadata = map[string]string{
		"solver":              "adaptive",
		"host":                "machine-b",
		"lasvegas.shard":      "1/2",
		"lasvegas.shard.runs": "2",
	}
	m, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	// Only keys every shard agrees on survive, and the reserved shard
	// annotations never do.
	if want := map[string]string{"solver": "adaptive"}; !reflect.DeepEqual(m.Metadata, want) {
		t.Errorf("merged metadata = %v, want %v", m.Metadata, want)
	}
	if len(m.Seconds) != 2 {
		t.Errorf("merged seconds = %v, want both shards' rows", m.Seconds)
	}

	// A shard without per-run seconds (e.g. loaded from CSV) drops
	// the pooled Seconds column instead of padding with zeros.
	b.Seconds = nil
	m, err = a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Seconds) != 0 {
		t.Errorf("merged seconds = %v, want none when a shard lacks them", m.Seconds)
	}

	// Different seeds cannot pretend to be one deterministic campaign.
	b.Seed = 99
	m, err = a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seed != 0 {
		t.Errorf("merged seed = %d, want 0 for mixed-seed shards", m.Seed)
	}
}

// annotate marks a shard the way WithShard collection does.
func annotate(c *lasvegas.Campaign, index, total, runs int) *lasvegas.Campaign {
	if c.Metadata == nil {
		c.Metadata = map[string]string{}
	}
	c.Metadata["lasvegas.shard"] = fmt.Sprintf("%d/%d", index, total)
	c.Metadata["lasvegas.shard.runs"] = fmt.Sprintf("%d", runs)
	return c
}

// TestMergeDuplicateShardRejected: pooling the same collected block
// twice duplicates observations and must fail, not bias the fit.
func TestMergeDuplicateShardRejected(t *testing.T) {
	a := annotate(mergeShard("costas-13", 13, 1, []float64{10, 20}, nil, 0), 0, 2, 4)
	dup := annotate(mergeShard("costas-13", 13, 1, []float64{10, 20}, nil, 0), 0, 2, 4)
	b := annotate(mergeShard("costas-13", 13, 1, []float64{30, 40}, nil, 0), 1, 2, 4)
	if _, err := a.Merge(dup); !errors.Is(err, lasvegas.ErrMergeMismatch) {
		t.Errorf("Merge with duplicate shard: %v, want ErrMergeMismatch", err)
	}
	if _, err := a.Merge(b); err != nil {
		t.Errorf("Merge of distinct shards: %v, want success", err)
	}
}

// TestMergeSeedOnlyForCompleteCover: Seed survives only when the
// shards provably reconstruct one deterministic collection; a partial
// or unannotated pool is a valid sample but not a reproducible
// campaign.
func TestMergeSeedOnlyForCompleteCover(t *testing.T) {
	shard := func(i int) *lasvegas.Campaign {
		return annotate(mergeShard("costas-13", 13, 7, []float64{float64(i + 1)}, nil, 0), i, 3, 3)
	}
	complete, err := lasvegas.MergeCampaigns(shard(0), shard(1), shard(2))
	if err != nil {
		t.Fatal(err)
	}
	if complete.Seed != 7 {
		t.Errorf("complete in-order cover: seed %d, want 7", complete.Seed)
	}
	partial, err := lasvegas.MergeCampaigns(shard(0), shard(2))
	if err != nil {
		t.Fatal(err)
	}
	if partial.Seed != 0 {
		t.Errorf("partial cover: seed %d, want 0", partial.Seed)
	}
	outOfOrder, err := lasvegas.MergeCampaigns(shard(1), shard(0), shard(2))
	if err != nil {
		t.Fatal(err)
	}
	if outOfOrder.Seed != 0 {
		t.Errorf("out-of-order cover: seed %d, want 0", outOfOrder.Seed)
	}
	unannotated, err := lasvegas.MergeCampaigns(
		mergeShard("costas-13", 13, 7, []float64{1}, nil, 0),
		mergeShard("costas-13", 13, 7, []float64{2}, nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	if unannotated.Seed != 0 {
		t.Errorf("unannotated pool: seed %d, want 0", unannotated.Seed)
	}
}

// TestMergeGoldenRoundTrip locks the JSON encoding of a merged
// campaign against testdata/campaign_merged.golden (regenerate with
// UPDATE_API=1) and round-trips it back through ReadCampaign.
func TestMergeGoldenRoundTrip(t *testing.T) {
	a := mergeShard("sat-3-120", 120, 42, []float64{1203, 88, 5000}, []int{2}, 5000)
	a.Metadata = map[string]string{"solver": "walksat", "lasvegas.shard": "0/2"}
	b := mergeShard("sat-3-120", 120, 42, []float64{764, 5000, 331}, []int{1}, 5000)
	b.Metadata = map[string]string{"solver": "walksat", "lasvegas.shard": "1/2"}
	m, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "campaign_merged.golden")
	if os.Getenv("UPDATE_API") != "" {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenPath)
		return
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_API=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Errorf("merged campaign JSON drifted from golden:\n got: %s\nwant: %s", buf.Bytes(), golden)
	}

	back, err := lasvegas.ReadCampaign(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, m) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", back, m)
	}
}

// TestShardedCollectMergesToFullCampaign is the distributed-collection
// contract: WithShard streams split from the root seed at global run
// indices, so pooling every shard reproduces the single-machine
// campaign's iteration counts exactly.
func TestShardedCollectMergesToFullCampaign(t *testing.T) {
	ctx := context.Background()
	const runs, seed = 24, 7
	full, err := lasvegas.New(lasvegas.WithRuns(runs), lasvegas.WithSeed(seed)).
		Collect(ctx, lasvegas.Costas, 9)
	if err != nil {
		t.Fatal(err)
	}
	var shards []*lasvegas.Campaign
	for i := 0; i < 3; i++ {
		s, err := lasvegas.New(lasvegas.WithRuns(runs), lasvegas.WithSeed(seed),
			lasvegas.WithShard(i, 3)).Collect(ctx, lasvegas.Costas, 9)
		if err != nil {
			t.Fatal(err)
		}
		if s.Metadata["lasvegas.shard"] == "" {
			t.Errorf("shard %d missing the lasvegas.shard annotation: %v", i, s.Metadata)
		}
		shards = append(shards, s)
	}
	merged, err := lasvegas.MergeCampaigns(shards...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Iterations, full.Iterations) {
		t.Errorf("merged shard iterations differ from the unsharded campaign:\n got %v\nwant %v",
			merged.Iterations, full.Iterations)
	}
	if merged.Seed != seed || merged.Runs != runs {
		t.Errorf("merged campaign seed/runs = %d/%d, want %d/%d", merged.Seed, merged.Runs, seed, runs)
	}
}

// TestShardValidation: out-of-range shards fail Collect loudly instead
// of emitting an empty campaign.
func TestShardValidation(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct{ index, total int }{
		{1, 1}, {2, 2}, {-1, 2}, {0, 0}, {0, -3},
	} {
		p := lasvegas.New(lasvegas.WithRuns(4), lasvegas.WithShard(tc.index, tc.total))
		if _, err := p.Collect(ctx, lasvegas.Costas, 9); err == nil {
			t.Errorf("Collect with shard %d/%d succeeded, want error", tc.index, tc.total)
		}
	}
	// More shards than runs: the empty block errors rather than
	// producing a campaign with no observations.
	p := lasvegas.New(lasvegas.WithRuns(2), lasvegas.WithShard(2, 4))
	if _, err := p.Collect(ctx, lasvegas.Costas, 9); err == nil {
		t.Error("Collect of an empty shard block succeeded, want error")
	}
}
