// Command lvserve is the HTTP prediction daemon: the paper's
// collect → fit → predict pipeline served over the wire. Upload (or
// server-side collect) runtime campaigns, fit them once, and answer
// speed-up queries against the cached model.
//
// Usage:
//
//	lvserve -addr :8080
//	lvserve -addr :8080 -families exponential,shifted-exponential,lognormal -alpha 0.05
//	lvserve -addr :8080 -data-dir /var/lib/lvserve        # durable store
//
// Durability: with -data-dir set, every accepted campaign is appended
// to an fsync'd snapshot log under that directory and replayed on the
// next boot, so a restarted daemon serves the same corpus — and
// byte-identical fit/predict responses — without any re-upload.
//
// Replication: N daemons can serve one corpus as a replica group.
// Give each the same -peers list and its own -replica slot; campaign
// ids are consistent-hashed onto a preference list of
// -replication-factor replicas and requests for foreign ids are
// proxied to the first live owner, so any replica answers any id.
// With -replication-factor 2 or more every write lands on k owners
// (peers that are down get it redelivered via a durable hinted-
// handoff journal), so the group survives the loss of any single
// replica with no data loss and no downtime:
//
//	lvserve -addr :8080 -data-dir d0 -replica 0/3 -replication-factor 2 -peers http://host0:8080,http://host1:8080,http://host2:8080
//	lvserve -addr :8080 -data-dir d1 -replica 1/3 -replication-factor 2 -peers http://host0:8080,http://host1:8080,http://host2:8080
//	lvserve -addr :8080 -data-dir d2 -replica 2/3 -replication-factor 2 -peers http://host0:8080,http://host1:8080,http://host2:8080
//
// Peer calls carry per-endpoint timeouts (-peer-timeout for
// fit/predict forwards, replication writes and read-repair fetches;
// -peer-collect-timeout for forwarded campaign uploads), bounded
// retries with jittered backoff, and a per-peer circuit breaker whose
// state /v1/healthz reports.
//
// Convergence and consistency knobs:
//
//   - -anti-entropy-interval paces the background digest exchanger:
//     each replica periodically compares per-hash-range digests
//     (campaign-id sets plus a pooled quantile-sketch fingerprint)
//     with the other owners of its ranges and pulls whatever it is
//     missing through hash-verified fetches. A replica that lost its
//     hint log — or its whole store — converges in bounded rounds
//     with no client traffic. 0 keeps the 15s default; a negative
//     interval disables the exchanger.
//   - -write-quorum W makes a write ack only after W owners have
//     fsync'd the campaign (the default 1 acks after the local
//     fsync); fewer reachable owners is a 503, though every accepted
//     copy stays durable and hinted for redelivery.
//   - -read-quorum R makes a read confirm R owners hold a verified
//     copy before answering, push-repairing owners that are alive but
//     missing it. Choosing R+W > k buys read-your-writes at the price
//     of refusing (503) while too few owners are reachable.
//
// Quickstart (collect two shards on different machines, merge and
// predict through the daemon):
//
//	lvseq -problem costas -size 13 -runs 200 -shard 0/2 -out shard0.json
//	lvseq -problem costas -size 13 -runs 200 -shard 1/2 -out shard1.json
//	jq -s . shard0.json shard1.json | curl -sd @- localhost:8080/v1/campaigns
//	curl -sd '{"id":"<id>"}' localhost:8080/v1/fit
//	curl -s 'localhost:8080/v1/predict?id=<id>&cores=16,64,256&target=8'
//
// Streaming ingest: POST /v1/campaigns with Content-Type
// application/x-ndjson accepts the NDJSON campaign stream `lvseq
// -format ndjson` emits, folding records into a quantile sketch of
// capacity -sketch-k as they arrive — the daemon's memory stays O(1)
// in the stream length, so campaigns of millions of runs upload
// without a matching -max-body. Streams are capped (by wire volume
// only) at -max-stream-bytes. Shards streamed separately pool
// server-side with {"merge_ids": [...]}:
//
//	lvseq -problem costas -size 13 -runs 100000 -shard 0/2 -format ndjson |
//	  curl -sS -H 'Content-Type: application/x-ndjson' --data-binary @- \
//	  localhost:8080/v1/campaigns
//	curl -sd '{"merge_ids":["<id0>","<id1>"]}' localhost:8080/v1/campaigns
//
// Restart policies: GET /v1/policy?id=... prices the four standard
// restart schedules (no-restart, fixed-cutoff at the median, Luby,
// fitted-optimal) under the campaign's fitted law, validates each
// with a seeded replay plus a bootstrap CI, and returns the ranked
// table with a binding winner — the same verdict `lvpredict -policy`
// prints for the same campaign. The rendered body is owner-routed,
// cached per campaign, and byte-stable across restarts and replicas:
//
//	curl -s 'localhost:8080/v1/policy?id=<id>'
//
// Observability: the daemon logs structured lines (slog) to stderr —
// -log-format picks text or json, -log-level sets the floor (debug
// shows converged anti-entropy rounds and breaker probe churn) — and
// serves its own telemetry at GET /v1/metrics in Prometheus text
// form: per-route request counts and sketch-backed latency quantiles,
// peer-RPC latency, breaker transitions, hint queue depth and drain
// rate, anti-entropy progress, fit single-flight outcomes and quorum
// shortfalls. Every request carries a Lvserve-Trace-Id (the caller's,
// or a fresh one) that is echoed on the response, propagated across
// every peer hop, and stamped on each access-log line — grep one id
// across the fleet's logs to see a request's whole fan-out.
// -pprof-addr serves net/http/pprof on a second listener for CPU and
// heap profiles (keep it off the public interface):
//
//	lvserve -addr :8080 -log-format json -pprof-addr 127.0.0.1:6060
//	curl -s localhost:8080/v1/metrics | grep lvserve_request_latency_quantile
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lasvegas"
	"lasvegas/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		familiesS = flag.String("families", "", "comma-separated candidate families (default: the paper's accepted trio)")
		alpha     = flag.Float64("alpha", 0.05, "KS significance level")
		workers   = flag.Int("workers", 0, "max concurrent fit/collect jobs (0 = GOMAXPROCS)")
		maxBody   = flag.Int64("max-body", 8<<20, "buffered request body cap in bytes (NDJSON streams are capped by -max-stream-bytes instead)")
		maxStream = flag.Int64("max-stream-bytes", 0, "NDJSON campaign-stream cap in bytes (0 = 1 GiB; bounds wire volume only — streams are never buffered)")
		sketchK   = flag.Int("sketch-k", 0, "quantile-sketch capacity for streamed campaigns (0 = the lasvegas default; rank error ≈ log2(n/k)/k)")
		maxStore  = flag.Int("max-campaigns", 1024, "campaigns cached before FIFO eviction")
		maxRuns   = flag.Int("max-collect-runs", 10000, "per-request cap on server-side collection runs")
		dataDir   = flag.String("data-dir", "", "durable store directory (empty = in-memory only)")
		replicaS  = flag.String("replica", "0/1", "this daemon's slot i/n in a replica group")
		peersS    = flag.String("peers", "", "comma-separated base URLs of all n replicas, in slot order")
		replFac   = flag.Int("replication-factor", 1, "replicas on each campaign's preference list (k; ≥ 2 survives a dead replica)")
		peerTO    = flag.Duration("peer-timeout", 0, "per-call timeout for short peer endpoints: fit/predict forwards, replication writes, repair fetches (0 = 15s)")
		collectTO = flag.Duration("peer-collect-timeout", 0, "per-call timeout for forwarded campaign uploads (0 = 2m)")
		writeQ    = flag.Int("write-quorum", 0, "owner fsyncs required before a write acks (0 = 1; must be ≤ replication factor)")
		readQ     = flag.Int("read-quorum", 0, "owner copies confirmed before a read answers (0 = 1; must be ≤ replication factor)")
		aeEvery   = flag.Duration("anti-entropy-interval", 0, "digest-exchange period for background convergence (0 = 15s; negative disables)")
		logFormat = flag.String("log-format", "text", "structured log encoding: text or json")
		logLevel  = flag.String("log-level", "info", "log floor: debug, info, warn or error")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off; keep it off public interfaces)")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fatal(err)
	}

	families, err := parseFamilies(*familiesS)
	if err != nil {
		fatal(err)
	}
	replicaIndex, replicaCount, err := parseReplica(*replicaS)
	if err != nil {
		fatal(err)
	}
	// Tag every line with the replica slot: the fleet's logs merge into
	// one stream (CI uploads them side by side) and stay attributable.
	logger = logger.With("replica", fmt.Sprintf("%d/%d", replicaIndex, replicaCount))
	var peers []string
	if *peersS != "" {
		peers = strings.Split(*peersS, ",")
	}
	srv, err := serve.New(serve.Config{
		Families:       families,
		Alpha:          *alpha,
		Workers:        *workers,
		MaxBodyBytes:   *maxBody,
		MaxStreamBytes: *maxStream,
		SketchK:        *sketchK,
		MaxCampaigns:   *maxStore,
		MaxCollectRuns: *maxRuns,
		DataDir:        *dataDir,
		ReplicaIndex:   replicaIndex,
		ReplicaCount:   replicaCount,
		Peers:          peers,

		ReplicationFactor:  *replFac,
		PeerTimeout:        *peerTO,
		PeerCollectTimeout: *collectTO,

		WriteQuorum:         *writeQ,
		ReadQuorum:          *readQ,
		AntiEntropyInterval: *aeEvery,
		Logger:              logger,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	// The pprof listener is its own mux on its own address: the
	// default-mux registrations pprof's import side effect performs
	// never reach the daemon's public handler.
	if *pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ps := &http.Server{Addr: *pprofAddr, Handler: pm, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := ps.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "error", err)
			}
		}()
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(), // access log + metrics + trace live inside
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		storeKind := "in-memory store"
		if *dataDir != "" {
			storeKind = "durable store at " + *dataDir
		}
		logger.Info("listening", "addr", *addr, "store", storeKind)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Stop accepting first, then drain the daemon itself: in-flight
	// (and proxied) requests finish, a final hint delivery runs, and
	// the store is fsync'd before the process exits.
	if err := hs.Shutdown(ctx); err != nil {
		fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fatal(err)
	}
}

// parseReplica parses the -replica flag's "i/n" slot. Strict: the
// flag must be exactly two integers — trailing garbage would silently
// start a replica that routes differently from its peers.
func parseReplica(s string) (index, count int, err error) {
	bad := func() (int, int, error) {
		return 0, 0, fmt.Errorf("lvserve: bad -replica %q (want i/n with 0 ≤ i < n)", s)
	}
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return bad()
	}
	index, err = strconv.Atoi(is)
	if err != nil {
		return bad()
	}
	count, err = strconv.Atoi(ns)
	if err != nil || count < 1 || index < 0 || index >= count {
		return bad()
	}
	return index, count, nil
}

// parseFamilies parses the -families flag against the families the
// fitter knows (plus "empirical", which Fit does not accept).
func parseFamilies(s string) ([]lasvegas.Family, error) {
	if s == "" {
		return nil, nil
	}
	known := map[lasvegas.Family]bool{}
	for _, f := range lasvegas.AllFamilies() {
		known[f] = true
	}
	var out []lasvegas.Family
	for _, part := range strings.Split(s, ",") {
		f := lasvegas.Family(strings.TrimSpace(part))
		if !known[f] {
			return nil, fmt.Errorf("lvserve: unknown family %q (known: %v)", f, lasvegas.AllFamilies())
		}
		out = append(out, f)
	}
	return out, nil
}

// buildLogger assembles the process logger from the -log-format and
// -log-level flags. The access log (one line per request, with trace
// ID, status, bytes and duration) moved into the serve package, where
// it shares the trace middleware; this is just the sink.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("lvserve: bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("lvserve: bad -log-format %q (want text or json)", format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lvserve:", err)
	os.Exit(1)
}
