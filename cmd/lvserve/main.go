// Command lvserve is the HTTP prediction daemon: the paper's
// collect → fit → predict pipeline served over the wire. Upload (or
// server-side collect) runtime campaigns, fit them once, and answer
// speed-up queries against the cached model.
//
// Usage:
//
//	lvserve -addr :8080
//	lvserve -addr :8080 -families exponential,shifted-exponential,lognormal -alpha 0.05
//
// Quickstart (collect two shards on different machines, merge and
// predict through the daemon):
//
//	lvseq -problem costas -size 13 -runs 200 -shard 0/2 -out shard0.json
//	lvseq -problem costas -size 13 -runs 200 -shard 1/2 -out shard1.json
//	jq -s . shard0.json shard1.json | curl -sd @- localhost:8080/v1/campaigns
//	curl -sd '{"id":"<id>"}' localhost:8080/v1/fit
//	curl -s 'localhost:8080/v1/predict?id=<id>&cores=16,64,256&target=8'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lasvegas"
	"lasvegas/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		familiesS = flag.String("families", "", "comma-separated candidate families (default: the paper's accepted trio)")
		alpha     = flag.Float64("alpha", 0.05, "KS significance level")
		workers   = flag.Int("workers", 0, "max concurrent fit/collect jobs (0 = GOMAXPROCS)")
		maxBody   = flag.Int64("max-body", 8<<20, "request body cap in bytes")
		maxStore  = flag.Int("max-campaigns", 1024, "campaigns cached before FIFO eviction")
		maxRuns   = flag.Int("max-collect-runs", 10000, "per-request cap on server-side collection runs")
	)
	flag.Parse()

	families, err := parseFamilies(*familiesS)
	if err != nil {
		fatal(err)
	}
	srv := serve.New(serve.Config{
		Families:       families,
		Alpha:          *alpha,
		Workers:        *workers,
		MaxBodyBytes:   *maxBody,
		MaxCampaigns:   *maxStore,
		MaxCollectRuns: *maxRuns,
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(srv.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("lvserve: listening on %s", *addr)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("lvserve: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fatal(err)
	}
}

// parseFamilies parses the -families flag against the families the
// fitter knows (plus "empirical", which Fit does not accept).
func parseFamilies(s string) ([]lasvegas.Family, error) {
	if s == "" {
		return nil, nil
	}
	known := map[lasvegas.Family]bool{}
	for _, f := range lasvegas.AllFamilies() {
		known[f] = true
	}
	var out []lasvegas.Family
	for _, part := range strings.Split(s, ",") {
		f := lasvegas.Family(strings.TrimSpace(part))
		if !known[f] {
			return nil, fmt.Errorf("lvserve: unknown family %q (known: %v)", f, lasvegas.AllFamilies())
		}
		out = append(out, f)
	}
	return out, nil
}

// logRequests is the daemon's single middleware: one line per request.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		log.Printf("%s %s %d %s", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
	})
}

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lvserve:", err)
	os.Exit(1)
}
