// Command lvpredict runs the paper's §6 pipeline: load (or collect) a
// sequential runtime sample, fit candidate distribution families,
// rank them by Kolmogorov–Smirnov p-value, and predict multi-walk
// parallel speed-ups — both from the best parametric fit and from the
// nonparametric empirical plug-in.
//
// Usage:
//
//	lvpredict -in costas12.json -cores 16,32,64,128,256
//	lvpredict -problem all-interval -size 20 -runs 200
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lasvegas/internal/adaptive"
	"lasvegas/internal/core"
	"lasvegas/internal/csp"
	"lasvegas/internal/fit"
	"lasvegas/internal/ks"
	"lasvegas/internal/problems"
	"lasvegas/internal/restart"
	"lasvegas/internal/runtimes"
)

func main() {
	var (
		in      = flag.String("in", "", "campaign JSON produced by lvseq (alternative to -problem)")
		problem = flag.String("problem", "", "collect live: problem family")
		size    = flag.Int("size", 0, "instance size (0 = scaled default)")
		runs    = flag.Int("runs", 200, "sequential runs when collecting live")
		seed    = flag.Uint64("seed", 1, "seed")
		coresS  = flag.String("cores", "16,32,64,128,256", "comma-separated core counts")
		alpha   = flag.Float64("alpha", 0.05, "KS significance level")
	)
	flag.Parse()

	cores, err := parseCores(*coresS)
	if err != nil {
		fatal(err)
	}
	sample, label, err := loadSample(*in, *problem, *size, *runs, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sample: %s (%d observations)\n\n", label, len(sample))

	// §6: candidate families ranked by KS p-value, with the
	// tail-sensitive Anderson–Darling verdict alongside.
	results, err := fit.Auto(sample, fit.FamExponential, fit.FamShiftedExponential,
		fit.FamLogNormal, fit.FamNormal, fit.FamLevy)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-22s %-42s %9s %9s %9s %s\n", "family", "fitted", "KS D", "KS p", "AD p", "verdict")
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("%-22s %-42s %9s %9s %9s could not fit (%v)\n", r.Family, "-", "-", "-", "-", r.Err)
			continue
		}
		adP := "-"
		if ad, err := ks.AndersonDarling(sample, r.Dist); err == nil {
			adP = fmt.Sprintf("%.4f", ad.PValue)
		}
		verdict := "accepted"
		if r.KS.RejectAt(*alpha) {
			verdict = fmt.Sprintf("REJECTED at α=%g", *alpha)
		}
		fmt.Printf("%-22s %-42s %9.4f %9.4f %9s %s\n", r.Family, r.Dist.String(), r.KS.D, r.KS.PValue, adP, verdict)
	}

	best, err := fit.Best(sample, *alpha, fit.FamExponential, fit.FamShiftedExponential, fit.FamLogNormal)
	if err != nil {
		fatal(fmt.Errorf("no family accepted: %w", err))
	}
	pred, err := core.NewPredictor(best.Dist)
	if err != nil {
		fatal(err)
	}
	plug, err := core.NewEmpirical(sample)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\nbest fit: %s (p=%.4f)\n", best.Dist, best.KS.PValue)
	if pred.Linear() {
		fmt.Println("prediction: strictly linear speed-up (x0 = 0 exponential case)")
	}
	fmt.Printf("speed-up limit (n→∞): %.4g   tangent at origin: %.4g\n", pred.Limit(), pred.TangentAtOrigin())

	// The same fitted law also prices the restart strategy.
	if opt, err := restart.OptimalCutoff(best.Dist); err == nil {
		switch {
		case opt.Gain > 1.001:
			fmt.Printf("restart analysis: cutoff %.4g gains %.2fx sequentially (heavy tail)\n\n", opt.Cutoff, opt.Gain)
		default:
			fmt.Printf("restart analysis: no finite cutoff helps (gain %.3f) — parallelize instead\n\n", opt.Gain)
		}
	} else {
		fmt.Println()
	}

	fmt.Printf("%-8s %16s %16s\n", "cores", "G(n) parametric", "G(n) plug-in")
	for _, n := range cores {
		gp, err := pred.Speedup(n)
		if err != nil {
			fatal(err)
		}
		ge, err := plug.Speedup(n)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-8d %16.2f %16.2f\n", n, gp, ge)
	}
}

func loadSample(in, problem string, size, runs int, seed uint64) ([]float64, string, error) {
	switch {
	case in != "":
		c, err := runtimes.LoadJSON(in)
		if err != nil {
			return nil, "", err
		}
		name := c.Problem
		if name == "" {
			name = in
		}
		return c.Iterations, name, nil
	case problem != "":
		kind := problems.Kind(problem)
		if size == 0 {
			size = problems.DefaultSize(kind)
		}
		factory := func() (csp.Problem, error) { return problems.New(kind, size) }
		if _, err := factory(); err != nil {
			return nil, "", err
		}
		c, err := runtimes.Collect(context.Background(), factory, adaptive.Params{}, runs, seed, 0)
		if err != nil {
			return nil, "", err
		}
		return c.Iterations, c.Problem, nil
	}
	return nil, "", fmt.Errorf("specify -in <campaign.json> or -problem <family>")
}

func parseCores(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	cores := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad core count %q", p)
		}
		cores = append(cores, n)
	}
	return cores, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lvpredict:", err)
	os.Exit(1)
}
