// Command lvpredict runs the paper's §6 pipeline: load (or collect) a
// sequential runtime campaign, fit candidate distribution families,
// rank them by Kolmogorov–Smirnov p-value, and predict multi-walk
// parallel speed-ups — both from the best parametric fit and from the
// nonparametric empirical plug-in.
//
// Censored campaigns (collected with `lvseq -maxiter`) are handled
// automatically: the candidate table switches to the censored
// maximum-likelihood estimators ranked by censored log-likelihood
// (KS/AD verdicts restricted to the uncensored region), and the
// plug-in predictor becomes the Kaplan–Meier product-limit law.
//
// With -policy the same fitted law also prices the four standard
// restart strategies (no-restart, fixed-cutoff at the median, Luby,
// fitted-optimal), validates each with a seeded replay of the
// campaign plus a bootstrap CI, and prints the ranked table with the
// binding winner — byte-agreeing with lvserve's GET /v1/policy on
// the same campaign.
//
// Usage:
//
//	lvpredict -in costas12.json -cores 16,32,64,128,256
//	lvpredict -in costas12_budgeted.json            # censored input
//	lvpredict -in costas12.json -policy             # restart policies
//	lvpredict -problem all-interval -size 20 -runs 200
//	lvpredict -problem sat-3 -size 120 -runs 300
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"lasvegas"
)

func main() {
	var (
		in      = flag.String("in", "", "campaign JSON produced by lvseq (alternative to -problem)")
		problem = flag.String("problem", "", "collect live: problem family")
		size    = flag.Int("size", 0, "instance size (0 = scaled default)")
		runs    = flag.Int("runs", 200, "sequential runs when collecting live")
		seed    = flag.Uint64("seed", 1, "seed")
		coresS  = flag.String("cores", "16,32,64,128,256", "comma-separated core counts")
		alpha   = flag.Float64("alpha", 0.05, "KS significance level")
		policyF = flag.Bool("policy", false, "rank restart policies (no-restart / fixed-cutoff / Luby / fitted-optimal) with a seeded campaign replay and bootstrap CIs")
	)
	flag.Parse()

	cores, err := lasvegas.ParseCores(*coresS)
	if err != nil {
		fatal(err)
	}
	campaign, label, err := loadCampaign(*in, *problem, *size, *runs, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sample: %s (%d observations)\n", label, len(campaign.Iterations))
	censored := campaign.IsCensored()
	if censored {
		fmt.Printf("censored: %d of %d runs (%.1f%%) at the %d-iteration budget — using Kaplan–Meier + censored MLE\n",
			len(campaign.Censored), len(campaign.Iterations), 100*campaign.CensoredFraction(), campaign.Budget)
	}
	fmt.Println()

	// §6: candidate families ranked by KS p-value (censored campaigns:
	// by censored log-likelihood, with KS/AD restricted to the
	// uncensored region), the tail-sensitive Anderson–Darling verdict
	// alongside.
	wideFams := []lasvegas.Family{lasvegas.Exponential, lasvegas.ShiftedExponential,
		lasvegas.LogNormal, lasvegas.Normal, lasvegas.Levy}
	if censored {
		wideFams = lasvegas.CensoredFamilies()
	}
	wide := lasvegas.New(
		lasvegas.WithFamilies(wideFams...),
		lasvegas.WithCensoredFit(true),
		lasvegas.WithAlpha(*alpha))
	cands, err := wide.FitAll(campaign)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-22s %-42s %9s %9s %9s %10s %s\n", "family", "fitted", "KS D", "KS p", "AD p", "logL", "verdict")
	for _, c := range cands {
		if c.Err != nil {
			fmt.Printf("%-22s %-42s %9s %9s %9s %10s could not fit (%v)\n", c.Family, "-", "-", "-", "-", "-", c.Err)
			continue
		}
		adP, logL := "-", "-"
		if c.ADValid {
			adP = fmt.Sprintf("%.4f", c.AD.PValue)
		}
		if c.LogLikValid {
			logL = fmt.Sprintf("%.4g", c.LogLik)
		}
		verdict := "accepted"
		if c.KS.RejectedAt(*alpha) {
			verdict = fmt.Sprintf("REJECTED at α=%g", *alpha)
		}
		fmt.Printf("%-22s %-42s %9.4f %9.4f %9s %10s %s\n", c.Family, c.Law, c.KS.Stat, c.KS.PValue, adP, logL, verdict)
	}

	pred := lasvegas.New(lasvegas.WithAlpha(*alpha), lasvegas.WithCensoredFit(true))
	best, err := pred.Fit(campaign)
	if err != nil {
		fatal(fmt.Errorf("no family accepted: %w", err))
	}
	plug, err := pred.PlugIn(campaign)
	if err != nil {
		fatal(err)
	}

	gof, _ := best.GoodnessOfFit()
	if est := best.Estimator(); est != lasvegas.EstimatorComplete {
		fmt.Printf("\nbest fit: %s (restricted-KS p=%.4f, %s, %.1f%% censored)\n",
			best, gof.PValue, est, 100*best.CensoredFraction())
	} else {
		fmt.Printf("\nbest fit: %s (p=%.4f)\n", best, gof.PValue)
	}
	if best.Linear() {
		fmt.Println("prediction: strictly linear speed-up (x0 = 0 exponential case)")
	}
	fmt.Printf("speed-up limit (n→∞): %.4g   tangent at origin: %.4g\n", best.Limit(), best.TangentAtOrigin())

	// The same fitted law also prices the restart strategy.
	if opt, err := best.OptimalRestart(); err == nil {
		switch {
		case opt.Gain > 1.001:
			fmt.Printf("restart analysis: cutoff %.4g gains %.2fx sequentially (heavy tail)\n\n", opt.Cutoff, opt.Gain)
		default:
			fmt.Printf("restart analysis: no finite cutoff helps (gain %.3f) — parallelize instead\n\n", opt.Gain)
		}
	} else {
		fmt.Println()
	}

	fmt.Printf("%-8s %16s %16s\n", "cores", "G(n) parametric", "G(n) plug-in")
	for _, n := range cores {
		gp, err := best.Speedup(n)
		if err != nil {
			fatal(err)
		}
		ge, err := plug.Speedup(n)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-8d %16.2f %16.2f\n", n, gp, ge)
	}

	if *policyF {
		table, err := pred.PolicyTable(context.Background(), campaign, best)
		if err != nil {
			fatal(err)
		}
		renderPolicyTable(os.Stdout, table)
	}
}

// renderPolicyTable prints the ranked restart-policy comparison:
// closed-form price under the fitted law, the seeded replay mean
// under the campaign's plug-in law, the bootstrap CI, and the gain
// over running to completion. Shared by the golden-file test.
func renderPolicyTable(w io.Writer, t *lasvegas.PolicyTable) {
	fmt.Fprintf(w, "\nrestart policies (law %s, %d replay reps, %d bootstrap resamples):\n", t.Law, t.Reps, t.Resamples)
	fmt.Fprintf(w, "%-16s %14s %12s %12s %26s %8s\n",
		"policy", "cutoff/unit", "E[T] law", "E[T] replay", fmt.Sprintf("%.0f%% CI (replay law)", 100*t.Level), "gain")
	for _, row := range t.Rows {
		param := "-"
		switch {
		case row.Unit > 0:
			param = fmt.Sprintf("u=%.4g", row.Unit)
		case math.IsInf(row.Cutoff, 1):
			param = "never"
		case row.Cutoff > 0:
			param = fmt.Sprintf("t=%.4g", row.Cutoff)
		}
		marker := ""
		if row.Policy == t.Winner {
			marker = "  <- winner"
		}
		fmt.Fprintf(w, "%-16s %14s %12s %12.6g %26s %8.3f%s\n",
			row.Policy, param, renderPrice(row.Expected), row.Simulated,
			fmt.Sprintf("[%s, %s]", renderPrice(row.Lo), renderPrice(row.Hi)), row.Gain, marker)
	}
	fmt.Fprintf(w, "winner: %s\n", t.Winner)
}

// renderPrice formats an expected runtime, which may be +Inf for a
// schedule that cannot succeed.
func renderPrice(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.6g", v)
}

func loadCampaign(in, problem string, size, runs int, seed uint64) (*lasvegas.Campaign, string, error) {
	switch {
	case in != "":
		c, err := lasvegas.LoadCampaign(in)
		if err != nil {
			return nil, "", err
		}
		name := c.Problem
		if name == "" {
			name = in
		}
		return c, name, nil
	case problem != "":
		p := lasvegas.New(lasvegas.WithRuns(runs), lasvegas.WithSeed(seed))
		c, err := p.Collect(context.Background(), lasvegas.Problem(problem), size)
		if err != nil {
			return nil, "", err
		}
		return c, c.Problem, nil
	}
	return nil, "", errors.New("specify -in <campaign.json> or -problem <family>")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lvpredict:", err)
	os.Exit(1)
}
