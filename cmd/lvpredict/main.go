// Command lvpredict runs the paper's §6 pipeline: load (or collect) a
// sequential runtime campaign, fit candidate distribution families,
// rank them by Kolmogorov–Smirnov p-value, and predict multi-walk
// parallel speed-ups — both from the best parametric fit and from the
// nonparametric empirical plug-in.
//
// Usage:
//
//	lvpredict -in costas12.json -cores 16,32,64,128,256
//	lvpredict -problem all-interval -size 20 -runs 200
//	lvpredict -problem sat-3 -size 120 -runs 300
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"lasvegas"
)

func main() {
	var (
		in      = flag.String("in", "", "campaign JSON produced by lvseq (alternative to -problem)")
		problem = flag.String("problem", "", "collect live: problem family")
		size    = flag.Int("size", 0, "instance size (0 = scaled default)")
		runs    = flag.Int("runs", 200, "sequential runs when collecting live")
		seed    = flag.Uint64("seed", 1, "seed")
		coresS  = flag.String("cores", "16,32,64,128,256", "comma-separated core counts")
		alpha   = flag.Float64("alpha", 0.05, "KS significance level")
	)
	flag.Parse()

	cores, err := lasvegas.ParseCores(*coresS)
	if err != nil {
		fatal(err)
	}
	campaign, label, err := loadCampaign(*in, *problem, *size, *runs, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sample: %s (%d observations)\n\n", label, len(campaign.Iterations))

	// §6: candidate families ranked by KS p-value, with the
	// tail-sensitive Anderson–Darling verdict alongside.
	wide := lasvegas.New(
		lasvegas.WithFamilies(lasvegas.Exponential, lasvegas.ShiftedExponential,
			lasvegas.LogNormal, lasvegas.Normal, lasvegas.Levy),
		lasvegas.WithAlpha(*alpha))
	cands, err := wide.FitAll(campaign)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-22s %-42s %9s %9s %9s %s\n", "family", "fitted", "KS D", "KS p", "AD p", "verdict")
	for _, c := range cands {
		if c.Err != nil {
			fmt.Printf("%-22s %-42s %9s %9s %9s could not fit (%v)\n", c.Family, "-", "-", "-", "-", c.Err)
			continue
		}
		adP := "-"
		if c.ADValid {
			adP = fmt.Sprintf("%.4f", c.AD.PValue)
		}
		verdict := "accepted"
		if c.KS.RejectedAt(*alpha) {
			verdict = fmt.Sprintf("REJECTED at α=%g", *alpha)
		}
		fmt.Printf("%-22s %-42s %9.4f %9.4f %9s %s\n", c.Family, c.Law, c.KS.Stat, c.KS.PValue, adP, verdict)
	}

	pred := lasvegas.New(lasvegas.WithAlpha(*alpha))
	best, err := pred.Fit(campaign)
	if err != nil {
		fatal(fmt.Errorf("no family accepted: %w", err))
	}
	plug, err := pred.PlugIn(campaign)
	if err != nil {
		fatal(err)
	}

	gof, _ := best.GoodnessOfFit()
	fmt.Printf("\nbest fit: %s (p=%.4f)\n", best, gof.PValue)
	if best.Linear() {
		fmt.Println("prediction: strictly linear speed-up (x0 = 0 exponential case)")
	}
	fmt.Printf("speed-up limit (n→∞): %.4g   tangent at origin: %.4g\n", best.Limit(), best.TangentAtOrigin())

	// The same fitted law also prices the restart strategy.
	if opt, err := best.OptimalRestart(); err == nil {
		switch {
		case opt.Gain > 1.001:
			fmt.Printf("restart analysis: cutoff %.4g gains %.2fx sequentially (heavy tail)\n\n", opt.Cutoff, opt.Gain)
		default:
			fmt.Printf("restart analysis: no finite cutoff helps (gain %.3f) — parallelize instead\n\n", opt.Gain)
		}
	} else {
		fmt.Println()
	}

	fmt.Printf("%-8s %16s %16s\n", "cores", "G(n) parametric", "G(n) plug-in")
	for _, n := range cores {
		gp, err := best.Speedup(n)
		if err != nil {
			fatal(err)
		}
		ge, err := plug.Speedup(n)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-8d %16.2f %16.2f\n", n, gp, ge)
	}
}

func loadCampaign(in, problem string, size, runs int, seed uint64) (*lasvegas.Campaign, string, error) {
	switch {
	case in != "":
		c, err := lasvegas.LoadCampaign(in)
		if err != nil {
			return nil, "", err
		}
		name := c.Problem
		if name == "" {
			name = in
		}
		return c, name, nil
	case problem != "":
		p := lasvegas.New(lasvegas.WithRuns(runs), lasvegas.WithSeed(seed))
		c, err := p.Collect(context.Background(), lasvegas.Problem(problem), size)
		if err != nil {
			return nil, "", err
		}
		return c, c.Problem, nil
	}
	return nil, "", errors.New("specify -in <campaign.json> or -problem <family>")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lvpredict:", err)
	os.Exit(1)
}
