package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"lasvegas"
)

// TestPolicyTableGolden pins the exact -policy table for the
// committed Costas fixture: the policies, their prices, the replay
// means, the CIs, and the winner line are all deterministic (fixed
// fixture, fixed default seed), so the rendering is byte-stable.
// Regenerate with UPDATE_POLICY=1. The serve-layer golden
// (internal/serve) pins the same winner on the same fixture through
// GET /v1/policy, which is what makes the CLI and the daemon
// byte-agree on the verdict.
func TestPolicyTableGolden(t *testing.T) {
	c, err := lasvegas.LoadCampaign(filepath.Join("..", "..", "testdata", "campaign_costas13.json"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	// Exactly main()'s predictor: same options, same default seed —
	// and the same configuration lvserve fits with, so the winner
	// here is the winner the daemon serves.
	pred := lasvegas.New(lasvegas.WithAlpha(0.05), lasvegas.WithCensoredFit(true))
	best, err := pred.Fit(c)
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	table, err := pred.PolicyTable(context.Background(), c, best)
	if err != nil {
		t.Fatalf("policy table: %v", err)
	}
	var buf bytes.Buffer
	renderPolicyTable(&buf, table)

	golden := filepath.Join("testdata", "policy_table.golden")
	if os.Getenv("UPDATE_POLICY") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_POLICY=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("policy table drifted from golden\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestPolicyTableDeterministic: two builds of the table from the same
// inputs must agree exactly — the property the byte-stability
// contract of /v1/policy rests on.
func TestPolicyTableDeterministic(t *testing.T) {
	c, err := lasvegas.LoadCampaign(filepath.Join("..", "..", "testdata", "campaign_costas13.json"))
	if err != nil {
		t.Fatal(err)
	}
	pred := lasvegas.New(lasvegas.WithAlpha(0.05), lasvegas.WithCensoredFit(true))
	a, err := pred.PolicyTable(context.Background(), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pred.PolicyTable(context.Background(), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	renderPolicyTable(&ba, a)
	renderPolicyTable(&bb, b)
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Errorf("same inputs, different tables:\n%s\nvs\n%s", ba.Bytes(), bb.Bytes())
	}
}
