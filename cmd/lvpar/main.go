// Command lvpar runs real multi-walk parallel executions (goroutines
// as cores, first-wins cancellation) and reports measured speed-ups
// against a sequential baseline — the miniature of the paper's
// Grid'5000 runs. For core counts beyond the machine, it also prints
// the simulated multi-walk measurement from the same pool.
//
// Usage:
//
//	lvpar -problem costas -size 11 -walkers 2,4,8 -reps 20
//	lvpar -in costas12.json -walkers 16,64,256,1024 -simulated
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"lasvegas"
)

func main() {
	var (
		problem  = flag.String("problem", "costas", "problem family")
		size     = flag.Int("size", 0, "instance size (0 = scaled default)")
		in       = flag.String("in", "", "campaign JSON (baseline pool; otherwise collected live)")
		walkersS = flag.String("walkers", "2,4,8", "comma-separated walker counts")
		reps     = flag.Int("reps", 15, "multi-walk repetitions per walker count")
		baseRuns = flag.Int("baseruns", 100, "sequential baseline runs when no -in is given")
		seed     = flag.Uint64("seed", 1, "seed")
		simOnly  = flag.Bool("simulated", false, "skip real goroutine runs; only min-resampling simulation")
		simReps  = flag.Int("simreps", 3000, "repetitions for the simulated engine")
	)
	flag.Parse()

	walkers, err := lasvegas.ParseCores(*walkersS)
	if err != nil {
		fatal(err)
	}
	prob := lasvegas.Problem(*problem)
	if *size == 0 {
		*size = prob.DefaultSize()
	}

	// Baseline pool.
	var campaign *lasvegas.Campaign
	if *in != "" {
		campaign, err = lasvegas.LoadCampaign(*in)
		if err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("collecting %d sequential baseline runs of %s-%d...\n", *baseRuns, prob, *size)
		collector := lasvegas.New(lasvegas.WithRuns(*baseRuns), lasvegas.WithSeed(*seed))
		campaign, err = collector.Collect(context.Background(), prob, *size)
		if err != nil {
			fatal(err)
		}
	}
	seqMean := campaign.IterationSummary().Mean
	fmt.Printf("baseline: %s, mean %.4g iterations over %d runs\n\n",
		campaign.Problem, seqMean, len(campaign.Iterations))

	fmt.Printf("%-8s %18s %18s\n", "walkers", "real speed-up", "simulated speed-up")
	sim := lasvegas.New(lasvegas.WithSimReps(*simReps), lasvegas.WithSeed(*seed^0x51))
	simPts, err := sim.SimulateSpeedups(campaign, walkers)
	if err != nil {
		fatal(err)
	}
	var realPts []lasvegas.SpeedupPoint
	if !*simOnly {
		// Same seed as the baseline collector: for sat-3 the predictor
		// seed identifies the planted formula, so the raced instance
		// must match the one the campaign measured.
		real := lasvegas.New(lasvegas.WithSeed(*seed))
		realPts, err = real.MeasureSpeedups(context.Background(), prob, *size, seqMean, walkers, *reps)
		if err != nil {
			fatal(err)
		}
	}
	for i, n := range walkers {
		realCell := "-"
		if realPts != nil {
			realCell = fmt.Sprintf("%.2f", realPts[i].Speedup)
			if n > runtime.NumCPU() {
				realCell += " (oversub.)"
			}
		}
		fmt.Printf("%-8d %18s %18.2f\n", n, realCell, simPts[i].Speedup)
	}
	if !*simOnly {
		fmt.Printf("\nnote: real walkers beyond %d physical cores time-share the CPU;\n", runtime.NumCPU())
		fmt.Println("iteration-metric speed-ups stay meaningful, wall-clock ones do not (paper §5.5).")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lvpar:", err)
	os.Exit(1)
}
