// Command lvpar runs real multi-walk parallel executions (goroutines
// as cores, first-wins cancellation) and reports measured speed-ups
// against a sequential baseline — the miniature of the paper's
// Grid'5000 runs. For core counts beyond the machine, it also prints
// the simulated multi-walk measurement from the same pool.
//
// Usage:
//
//	lvpar -problem costas -size 11 -walkers 2,4,8 -reps 20
//	lvpar -in costas12.json -walkers 16,64,256,1024 -simulated
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"lasvegas/internal/adaptive"
	"lasvegas/internal/csp"
	"lasvegas/internal/multiwalk"
	"lasvegas/internal/problems"
	"lasvegas/internal/runtimes"
	"lasvegas/internal/stats"
)

func main() {
	var (
		problem  = flag.String("problem", "costas", "problem family")
		size     = flag.Int("size", 0, "instance size (0 = scaled default)")
		in       = flag.String("in", "", "campaign JSON (baseline pool; otherwise collected live)")
		walkersS = flag.String("walkers", "2,4,8", "comma-separated walker counts")
		reps     = flag.Int("reps", 15, "multi-walk repetitions per walker count")
		baseRuns = flag.Int("baseruns", 100, "sequential baseline runs when no -in is given")
		seed     = flag.Uint64("seed", 1, "seed")
		simOnly  = flag.Bool("simulated", false, "skip real goroutine runs; only min-resampling simulation")
		simReps  = flag.Int("simreps", 3000, "repetitions for the simulated engine")
	)
	flag.Parse()

	walkers, err := parseInts(*walkersS)
	if err != nil {
		fatal(err)
	}
	kind := problems.Kind(*problem)
	if *size == 0 {
		*size = problems.DefaultSize(kind)
	}
	factory := func() (csp.Problem, error) { return problems.New(kind, *size) }

	// Baseline pool.
	var pool []float64
	var label string
	if *in != "" {
		c, err := runtimes.LoadJSON(*in)
		if err != nil {
			fatal(err)
		}
		pool, label = c.Iterations, c.Problem
	} else {
		if _, err := factory(); err != nil {
			fatal(err)
		}
		fmt.Printf("collecting %d sequential baseline runs of %s-%d...\n", *baseRuns, kind, *size)
		c, err := runtimes.Collect(context.Background(), factory, adaptive.Params{}, *baseRuns, *seed, 0)
		if err != nil {
			fatal(err)
		}
		pool, label = c.Iterations, c.Problem
	}
	seqMean := stats.Mean(pool)
	fmt.Printf("baseline: %s, mean %.4g iterations over %d runs\n\n", label, seqMean, len(pool))

	fmt.Printf("%-8s %18s %18s\n", "walkers", "real speed-up", "simulated speed-up")
	simPts, err := multiwalk.MeasureSimulated(pool, walkers, *simReps, *seed^0x51)
	if err != nil {
		fatal(err)
	}
	var realPts []multiwalk.SpeedupPoint
	if !*simOnly {
		runner, err := multiwalk.SolverRunner(factory, adaptive.Params{})
		if err != nil {
			fatal(err)
		}
		realPts, err = multiwalk.MeasureReal(context.Background(), runner, seqMean, walkers, *reps, *seed^0xEA)
		if err != nil {
			fatal(err)
		}
	}
	for i, n := range walkers {
		realCell := "-"
		if realPts != nil {
			realCell = fmt.Sprintf("%.2f", realPts[i].Speedup)
			if n > runtime.NumCPU() {
				realCell += " (oversub.)"
			}
		}
		fmt.Printf("%-8d %18s %18.2f\n", n, realCell, simPts[i].Speedup)
	}
	if !*simOnly {
		fmt.Printf("\nnote: real walkers beyond %d physical cores time-share the CPU;\n", runtime.NumCPU())
		fmt.Println("iteration-metric speed-ups stay meaningful, wall-clock ones do not (paper §5.5).")
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad walker count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lvpar:", err)
	os.Exit(1)
}
