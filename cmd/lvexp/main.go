// Command lvexp regenerates the paper's evaluation: every table
// (1–5) and every figure (1–14), in paper mode (replaying the
// published numbers through this library's pipeline) or live mode
// (fresh campaigns on scaled instances).
//
// Usage:
//
//	lvexp -paper                    # replay the published evaluation
//	lvexp -run table5 -paper        # one experiment
//	lvexp -runs 300 -seed 7         # full live reproduction
//	lvexp -run fig9 -csv            # include machine-readable series
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lasvegas"
	"lasvegas/internal/experiments"
)

func main() {
	var (
		runID   = flag.String("run", "all", "experiment id (table1..table5, fig1..fig14) or 'all'")
		paper   = flag.Bool("paper", false, "replay the published evaluation numbers")
		runs    = flag.Int("runs", 200, "sequential runs per live campaign")
		simReps = flag.Int("simreps", 3000, "simulated multi-walk repetitions per point")
		seed    = flag.Uint64("seed", 1, "seed")
		coresS  = flag.String("cores", "16,32,64,128,256", "core grid for tables 3-5")
		sizesS  = flag.String("sizes", "", "live instance sizes, e.g. all-interval=20,magic-square=6,costas=10")
		withCSV = flag.Bool("csv", false, "print the CSV series of figures")
		outDir  = flag.String("out", "", "also write each artifact (<id>.txt, <id>.csv) into this directory")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	cores, err := lasvegas.ParseCores(*coresS)
	if err != nil {
		fatal(err)
	}
	sizes, err := lasvegas.ParseSizes(*sizesS)
	if err != nil {
		fatal(err)
	}
	lab := experiments.NewLab(experiments.Config{
		Paper:   *paper,
		Runs:    *runs,
		SimReps: *simReps,
		Seed:    *seed,
		Cores:   cores,
		Sizes:   sizes,
	})
	ctx := context.Background()

	var arts []*experiments.Artifact
	if *runID == "all" {
		arts, err = lab.RunAll(ctx)
	} else {
		var a *experiments.Artifact
		a, err = lab.Run(ctx, *runID)
		arts = []*experiments.Artifact{a}
	}
	if err != nil {
		fatal(err)
	}
	for _, a := range arts {
		fmt.Println(a.Render())
		if *withCSV && a.CSV != "" {
			fmt.Println("--- csv ---")
			fmt.Println(a.CSV)
		}
	}
	if *outDir != "" {
		if err := writeArtifacts(*outDir, arts); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d artifacts to %s\n", len(arts), *outDir)
	}
}

// writeArtifacts persists rendered artifacts and their CSV series.
func writeArtifacts(dir string, arts []*experiments.Artifact) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, a := range arts {
		if err := os.WriteFile(filepath.Join(dir, a.ID+".txt"), []byte(a.Render()), 0o644); err != nil {
			return err
		}
		if a.CSV != "" {
			if err := os.WriteFile(filepath.Join(dir, a.ID+".csv"), []byte(a.CSV), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lvexp:", err)
	os.Exit(1)
}
