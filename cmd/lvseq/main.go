// Command lvseq runs a sequential Adaptive Search campaign on one
// benchmark problem and reports the paper's Table-1/2 statistics,
// optionally persisting the runtime sample for lvpredict/lvpar.
//
// Usage:
//
//	lvseq -problem costas -size 12 -runs 200 -out costas12.json
//	lvseq -problem magic-square -size 6 -runs 300 -csv ms6.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"lasvegas/internal/adaptive"
	"lasvegas/internal/csp"
	"lasvegas/internal/problems"
	"lasvegas/internal/runtimes"
)

func main() {
	var (
		problem = flag.String("problem", "costas", "problem family: all-interval | magic-square | costas | queens")
		size    = flag.Int("size", 0, "instance size (0 = scaled default; magic-square size is the board side)")
		runs    = flag.Int("runs", 200, "number of sequential runs")
		seed    = flag.Uint64("seed", 1, "campaign seed (deterministic)")
		workers = flag.Int("workers", 0, "parallel collection workers (0 = GOMAXPROCS)")
		outJSON = flag.String("out", "", "write the campaign as JSON to this path")
		outCSV  = flag.String("csv", "", "write per-run rows as CSV to this path")
		maxIter = flag.Int64("maxiter", 0, "per-run iteration budget (0 = unbounded, the Las Vegas setting)")
	)
	flag.Parse()

	kind := problems.Kind(*problem)
	if *size == 0 {
		*size = problems.DefaultSize(kind)
	}
	factory := func() (csp.Problem, error) { return problems.New(kind, *size) }
	if _, err := factory(); err != nil {
		fatal(err)
	}
	fmt.Printf("collecting %d sequential runs of %s-%d (seed %d)...\n", *runs, kind, *size, *seed)
	c, err := runtimes.Collect(context.Background(), factory,
		adaptive.Params{MaxIterations: *maxIter}, *runs, *seed, *workers)
	if err != nil {
		fatal(err)
	}

	it := c.IterationSummary()
	ts := c.TimeSummary()
	fmt.Printf("\n%-22s %12s %12s %12s %12s\n", "metric", "min", "mean", "median", "max")
	fmt.Printf("%-22s %12.4g %12.4g %12.4g %12.4g\n", "iterations", it.Min, it.Mean, it.Median, it.Max)
	fmt.Printf("%-22s %12.4g %12.4g %12.4g %12.4g\n", "seconds", ts.Min, ts.Mean, ts.Median, ts.Max)
	fmt.Printf("\nmax/min iteration ratio: %.1f (the paper observes ratios in the thousands)\n", it.Max/it.Min)

	if *outJSON != "" {
		if err := c.SaveJSON(*outJSON); err != nil {
			fatal(err)
		}
		fmt.Printf("campaign written to %s\n", *outJSON)
	}
	if *outCSV != "" {
		f, err := os.Create(*outCSV)
		if err != nil {
			fatal(err)
		}
		if err := c.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("per-run CSV written to %s\n", *outCSV)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lvseq:", err)
	os.Exit(1)
}
