// Command lvseq runs a sequential campaign on one benchmark problem
// (Adaptive Search for the CSPs, WalkSAT for sat-3) and reports the
// paper's Table-1/2 statistics, optionally persisting the runtime
// campaign for lvpredict/lvpar.
//
// Usage:
//
//	lvseq -problem costas -size 12 -runs 200 -out costas12.json
//	lvseq -problem magic-square -size 6 -runs 300 -csv ms6.csv
//
// With -shard i/n only the i-th of n contiguous blocks of the run
// indices is collected (streams still split from the root seed at the
// global index), so shards collected on different machines merge —
// via lasvegas.Campaign.Merge or lvserve's /v1/campaigns endpoint —
// into exactly the campaign a single machine would have produced:
//
//	lvseq -problem costas -runs 600 -shard 0/3 -out s0.json   # machine A
//	lvseq -problem costas -runs 600 -shard 1/3 -out s1.json   # machine B
//	lvseq -problem costas -runs 600 -shard 2/3 -out s2.json   # machine C
//
// With -format ndjson the campaign streams to stdout as NDJSON (one
// header line, one record per run — the lasvegas stream wire format),
// which pipes straight into lvserve's O(1)-memory streaming ingest;
// the human summary moves to stderr so the pipe stays clean:
//
//	lvseq -problem costas -size 13 -runs 200 -shard 0/2 -format ndjson |
//	  curl -sS -H 'Content-Type: application/x-ndjson' --data-binary @- \
//	  localhost:8080/v1/campaigns
//
// Each shard streamed this way is folded server-side into a mergeable
// quantile sketch; POSTing {"merge_ids":[...]} afterwards pools the
// shard sketches into the campaign a single unsharded stream would
// have produced.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lasvegas"
)

func main() {
	var (
		problem = flag.String("problem", "costas", "problem family: all-interval | magic-square | costas | queens | sat-3")
		size    = flag.Int("size", 0, "instance size (0 = scaled default; magic-square size is the board side)")
		runs    = flag.Int("runs", 200, "number of sequential runs")
		seed    = flag.Uint64("seed", 1, "campaign seed (deterministic)")
		workers = flag.Int("workers", 0, "parallel collection workers (0 = GOMAXPROCS)")
		outJSON = flag.String("out", "", "write the campaign as JSON to this path")
		outCSV  = flag.String("csv", "", "write per-run rows as CSV to this path")
		maxIter = flag.Int64("maxiter", 0, "per-run iteration budget (0 = unbounded; budget-hit runs are censored)")
		shardS  = flag.String("shard", "", "collect only shard i/n of the runs (e.g. 0/4), for multi-machine campaigns")
		format  = flag.String("format", "text", "output format: text (human summary) | ndjson (stream the campaign to stdout, summary to stderr)")
	)
	flag.Parse()

	shardIdx, shardTotal, err := parseShard(*shardS)
	if err != nil {
		usage(err)
	}
	if *maxIter < 0 {
		usage(fmt.Errorf("bad -maxiter %d: want 0 (unbounded) or a positive per-run budget", *maxIter))
	}
	if *format != "text" && *format != "ndjson" {
		usage(fmt.Errorf("bad -format %q: want text or ndjson", *format))
	}
	ndjson := *format == "ndjson"
	if ndjson && *maxIter > 0 {
		usage(fmt.Errorf("-format ndjson requires complete campaigns: NDJSON streams carry no censoring flags, so drop -maxiter"))
	}
	// In ndjson mode stdout belongs to the stream; narration and the
	// summary table go to stderr so a pipe into curl stays clean.
	status := os.Stdout
	if ndjson {
		status = os.Stderr
	}
	prob := lasvegas.Problem(*problem)
	if *size == 0 {
		*size = prob.DefaultSize()
	}
	p := lasvegas.New(
		lasvegas.WithRuns(*runs),
		lasvegas.WithSeed(*seed),
		lasvegas.WithWorkers(*workers),
		lasvegas.WithBudget(*maxIter),
		lasvegas.WithShard(shardIdx, shardTotal),
	)
	if shardTotal > 1 {
		fmt.Fprintf(status, "collecting shard %d/%d of %d sequential runs of %s-%d (seed %d)...\n",
			shardIdx, shardTotal, *runs, prob, *size, *seed)
	} else {
		fmt.Fprintf(status, "collecting %d sequential runs of %s-%d (seed %d)...\n", *runs, prob, *size, *seed)
	}
	c, err := p.Collect(context.Background(), prob, *size)
	if err != nil {
		fatal(err)
	}

	if ndjson {
		if err := c.WriteNDJSON(os.Stdout); err != nil {
			fatal(err)
		}
	}

	it := c.IterationSummary()
	ts := c.TimeSummary()
	fmt.Fprintf(status, "\n%-22s %12s %12s %12s %12s\n", "metric", "min", "mean", "median", "max")
	fmt.Fprintf(status, "%-22s %12.4g %12.4g %12.4g %12.4g\n", "iterations", it.Min, it.Mean, it.Median, it.Max)
	fmt.Fprintf(status, "%-22s %12.4g %12.4g %12.4g %12.4g\n", "seconds", ts.Min, ts.Mean, ts.Median, ts.Max)
	fmt.Fprintf(status, "\nmax/min iteration ratio: %.1f (the paper observes ratios in the thousands)\n", it.Max/it.Min)
	if c.IsCensored() {
		fmt.Fprintf(status, "censored: %d of %d runs (%.1f%%) hit the %d-iteration budget\n",
			len(c.Censored), c.Runs, 100*c.CensoredFraction(), c.Budget)
		fmt.Fprintln(status, "hint: censored campaigns still fit — lvpredict and lvserve route them through the"+
			" Kaplan–Meier / censored-MLE estimators automatically")
	}

	if *outJSON != "" {
		if err := c.SaveJSON(*outJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintf(status, "campaign written to %s\n", *outJSON)
	}
	if *outCSV != "" {
		f, err := os.Create(*outCSV)
		if err != nil {
			fatal(err)
		}
		if err := c.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(status, "per-run CSV written to %s\n", *outCSV)
	}
}

// parseShard parses "-shard i/n". An empty flag is the unsharded
// default 0/1; i ≥ n, i < 0 or n ≤ 0 are usage errors — an
// out-of-range shard must never silently emit an empty campaign.
func parseShard(s string) (index, total int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	iS, nS, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/n, e.g. 0/4)", s)
	}
	index, errI := strconv.Atoi(iS)
	total, errN := strconv.Atoi(nS)
	if errI != nil || errN != nil {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/n, e.g. 0/4)", s)
	}
	if total <= 0 || index < 0 || index >= total {
		return 0, 0, fmt.Errorf("bad -shard %d/%d: want 0 ≤ i < n", index, total)
	}
	return index, total, nil
}

// usage reports a flag-level error and exits with the usage text.
func usage(err error) {
	fmt.Fprintln(os.Stderr, "lvseq:", err)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lvseq:", err)
	os.Exit(1)
}
