package lasvegas

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// StreamSchemaVersion is the NDJSON campaign-stream schema version:
// the value of the header's "stream" field. Readers accept every
// version up to this one.
const StreamSchemaVersion = 1

// The NDJSON campaign wire format: one JSON value per line. The first
// line is the header; every following line is one run record. This is
// the O(1)-memory ingest path — ReadCampaignNDJSON folds records into
// a quantile sketch as they arrive and never materializes the sample,
// so `lvseq -format ndjson | curl --data-binary @-` can stream a
// campaign of millions of runs into lvserve:
//
//	{"stream":1,"problem":"costas-13","size":13,"seed":1,"runs":200}
//	{"iterations":1234,"seconds":0.01}
//	{"iterations":871,"seconds":0.007}
//	...
//
// The header's runs field, when > 0, declares the record count; a
// stream that ends with a different count fails with ErrStream (a
// torn upload must not become a silently smaller campaign). Records
// carry complete runs only — censored campaigns cannot stream
// (sketches store values, not censoring flags). Seconds are optional
// and not folded into the sketch: the sketch-backed campaign tracks
// the paper's scheduling-insensitive iteration measure.
type streamHeader struct {
	Stream   int               `json:"stream"`
	Problem  string            `json:"problem,omitempty"`
	Size     int               `json:"size,omitempty"`
	Seed     uint64            `json:"seed,omitempty"`
	Runs     int               `json:"runs,omitempty"`
	Metadata map[string]string `json:"metadata,omitempty"`
}

// streamRecord is one run. Iterations is a pointer so a record
// missing the field (e.g. a header line appearing mid-stream) is
// distinguishable from iterations: 0 and rejected.
type streamRecord struct {
	Iterations *float64 `json:"iterations"`
	Seconds    float64  `json:"seconds,omitempty"`
}

// WriteNDJSON streams the campaign's raw runs to w in the NDJSON wire
// format (header line, then one record per line) — the emitter behind
// `lvseq -format ndjson`. Censored campaigns fail with ErrCensored
// and campaigns that keep no raw runs with ErrNoRawRuns: the stream
// carries per-run records, which neither has.
func (c *Campaign) WriteNDJSON(w io.Writer) error {
	if c == nil || c.TotalRuns() == 0 {
		return ErrEmptyCampaign
	}
	if c.IsCensored() {
		return fmt.Errorf("%w: NDJSON streams carry complete runs only", ErrCensored)
	}
	if len(c.Iterations) == 0 {
		return fmt.Errorf("%w: nothing to stream", ErrNoRawRuns)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(streamHeader{
		Stream:   StreamSchemaVersion,
		Problem:  c.Problem,
		Size:     c.Size,
		Seed:     c.Seed,
		Runs:     len(c.Iterations),
		Metadata: c.Metadata,
	}); err != nil {
		return err
	}
	withSeconds := len(c.Seconds) == len(c.Iterations)
	for i, it := range c.Iterations {
		rec := streamRecord{Iterations: &it}
		if withSeconds {
			rec.Seconds = c.Seconds[i]
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// ReadCampaignNDJSON reads an NDJSON campaign stream from r, folding
// every record into a quantile sketch of capacity k (DefaultSketchK
// when k ≤ 0) as it is decoded — memory stays O(k·log(n/k)) whatever
// the stream length. The returned campaign is sketch-backed: Runs and
// Sketch.N() are the record count, Iterations is empty.
//
// Malformed streams fail with ErrStream: a missing or
// newer-than-supported header, a record without finite iterations, or
// a stream whose record count contradicts the header's declared runs.
// An error from r itself (e.g. http.MaxBytesReader's overflow) is
// returned as-is for the caller to map.
func ReadCampaignNDJSON(r io.Reader, k int) (*Campaign, error) {
	dec := json.NewDecoder(r)
	var hdr streamHeader
	if err := dec.Decode(&hdr); err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("%w: empty stream", ErrStream)
		}
		return nil, streamErr(err, "bad header")
	}
	if hdr.Stream < 1 {
		return nil, fmt.Errorf("%w: first line is not a stream header (missing \"stream\" field)", ErrStream)
	}
	if hdr.Stream > StreamSchemaVersion {
		return nil, fmt.Errorf("%w: stream schema %d, this release reads ≤ %d", ErrStream, hdr.Stream, StreamSchemaVersion)
	}
	sk, err := NewSketch(k)
	if err != nil {
		return nil, err
	}
	count := 0
	for {
		var rec streamRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				break
			}
			return nil, streamErr(err, fmt.Sprintf("bad record %d", count+1))
		}
		if rec.Iterations == nil {
			return nil, fmt.Errorf("%w: record %d has no iterations", ErrStream, count+1)
		}
		if err := sk.Add(*rec.Iterations); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrStream, count+1, err)
		}
		count++
	}
	if count == 0 {
		return nil, ErrEmptyCampaign
	}
	if hdr.Runs > 0 && count != hdr.Runs {
		return nil, fmt.Errorf("%w: header declares %d runs but the stream carried %d (torn upload?)",
			ErrStream, hdr.Runs, count)
	}
	return &Campaign{
		Problem:  hdr.Problem,
		Size:     hdr.Size,
		Seed:     hdr.Seed,
		Runs:     count,
		Metadata: hdr.Metadata,
		Sketch:   sk,
	}, nil
}

// streamErr wraps a decode failure as ErrStream, but passes reader
// errors (connection drops, body-size caps) through untouched so
// callers can map them: a *json.SyntaxError or type error is a
// malformed stream; anything else came from r.
func streamErr(err error, what string) error {
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	if errors.As(err, &syn) || errors.As(err, &typ) || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: %s: %v", ErrStream, what, err)
	}
	return err
}
