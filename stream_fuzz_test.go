package lasvegas_test

import (
	"bytes"
	"errors"
	"testing"

	"lasvegas"
)

// FuzzReadCampaignNDJSON pins the stream reader's failure contract:
// whatever bytes arrive — malformed headers, torn records,
// declared-count lies, binary garbage — the reader must never panic
// and must fail only with the typed ErrStream (or ErrEmptyCampaign
// for a well-formed empty stream). Anything it does accept must be a
// usable sketch-backed campaign that re-encodes canonically.
func FuzzReadCampaignNDJSON(f *testing.F) {
	f.Add([]byte(`{"stream":1,"problem":"p","size":3,"seed":1,"runs":2}` + "\n" +
		`{"iterations":12}` + "\n" + `{"iterations":34}` + "\n"))
	// Declared-count lie: header promises 3 runs, stream carries 1.
	f.Add([]byte(`{"stream":1,"problem":"p","runs":3}` + "\n" + `{"iterations":12}` + "\n"))
	// Torn record: the writer died mid-line.
	f.Add([]byte(`{"stream":1,"problem":"p","runs":2}` + "\n" + `{"iterat`))
	// Missing header entirely.
	f.Add([]byte(`{"iterations":12}` + "\n"))
	// Unsupported future schema.
	f.Add([]byte(`{"stream":99,"problem":"p"}` + "\n"))
	// Non-finite observation.
	f.Add([]byte(`{"stream":1,"problem":"p"}` + "\n" + `{"iterations":1e999}` + "\n"))
	// Record without iterations.
	f.Add([]byte(`{"stream":1,"problem":"p"}` + "\n" + `{"seconds":0.5}` + "\n"))
	// Empty input and binary noise.
	f.Add([]byte(""))
	f.Add([]byte{0xff, 0xfe, 0x00, 0x7b})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := lasvegas.ReadCampaignNDJSON(bytes.NewReader(data), 0)
		if err != nil {
			if !errors.Is(err, lasvegas.ErrStream) && !errors.Is(err, lasvegas.ErrEmptyCampaign) {
				t.Fatalf("untyped stream error: %v", err)
			}
			return
		}
		if c.TotalRuns() == 0 {
			t.Fatalf("accepted a campaign with zero runs from %q", data)
		}
		if _, err := c.MarshalJSON(); err != nil {
			t.Fatalf("accepted campaign does not re-encode: %v", err)
		}
	})
}
