module lasvegas

go 1.24
