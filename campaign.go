package lasvegas

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"lasvegas/internal/stats"
)

// CampaignSchemaVersion is the newest JSON schema version this
// release reads and writes. Version 1 is the legacy header-less
// format of early lvseq files (problem/runs/seed/iterations/seconds
// only); version 2 adds the schema marker, instance size, per-run
// censoring flags, the censoring budget and free-form metadata;
// version 3 adds the sketch-backed representation (a mergeable
// quantile sketch instead of, or alongside, raw runs). Readers accept
// every version up to this one; writers emit the lowest version able
// to carry the campaign (campaigns without a sketch still serialize
// as version 2), so the canonical bytes — and the content-addressed
// ids lvserve derives from them — of pre-sketch campaigns are
// unchanged.
const CampaignSchemaVersion = 3

// campaignSchemaRaw is the schema version written for campaigns
// without a sketch (the version-2 wire form, kept byte-stable).
const campaignSchemaRaw = 2

// Campaign is a sequential runtime sample of one Las Vegas solver on
// one problem instance — the paper's §5.4 unit of measurement (~650
// runs per benchmark) and the input of every fit and prediction.
type Campaign struct {
	// Problem is the instance label, e.g. "costas-13" or "sat-3-120".
	Problem string
	// Size is the instance size the campaign was collected at
	// (0 when unknown, e.g. legacy files).
	Size int
	// Runs is the number of sequential runs.
	Runs int
	// Seed is the root seed the per-run random streams derive from.
	Seed uint64
	// Iterations holds per-run iteration counts, the paper's
	// scheduling-insensitive runtime measure. For censored runs the
	// entry is the budget at which the run was cut off.
	Iterations []float64
	// Seconds holds per-run wall-clock seconds (may be empty, e.g.
	// campaigns loaded from CSV).
	Seconds []float64
	// Censored lists the indices of runs cut off by the iteration
	// budget before finding a solution. Empty for complete campaigns.
	Censored []int
	// Budget is the per-run iteration budget the censored runs hit
	// (0 = unbounded, the pure Las Vegas setting).
	Budget int64
	// Metadata carries free-form campaign annotations (solver tag,
	// host, experiment name, ...). Keys starting with "lasvegas." are
	// reserved for the library.
	Metadata map[string]string
	// Sketch holds the runs folded into a mergeable quantile sketch —
	// the O(k·log(n/k))-memory representation NDJSON streaming ingest
	// produces. It covers runs *not* listed in Iterations, so
	// TotalRuns() = len(Iterations) + Sketch.N(); a campaign may carry
	// raw runs, a sketch, or both. Sketch-backed campaigns must be
	// complete (censoring flags cannot be folded into a sketch).
	Sketch *Sketch
}

// campaignJSON is the on-disk schema (all versions).
type campaignJSON struct {
	Schema     int               `json:"schema,omitempty"`
	Problem    string            `json:"problem"`
	Size       int               `json:"size,omitempty"`
	Runs       int               `json:"runs"`
	Seed       uint64            `json:"seed"`
	Budget     int64             `json:"budget,omitempty"`
	Iterations []float64         `json:"iterations"`
	Seconds    []float64         `json:"seconds,omitempty"`
	Censored   []int             `json:"censored,omitempty"`
	Metadata   map[string]string `json:"metadata,omitempty"`
	Sketch     *Sketch           `json:"sketch,omitempty"`
}

// MarshalJSON implements json.Marshaler, writing the lowest schema
// version able to carry the campaign (see CampaignSchemaVersion).
// Value receiver so that both Campaign and *Campaign serialize
// identically (a pointer-only marshaler would silently emit untagged
// fields for non-addressable values).
func (c Campaign) MarshalJSON() ([]byte, error) {
	schema := campaignSchemaRaw
	if c.Sketch != nil {
		schema = CampaignSchemaVersion
	}
	iterations := c.Iterations
	if len(iterations) == 0 {
		// Canonical form: an empty raw sample is always null, never [],
		// so equal campaigns marshal to equal bytes (and equal ids)
		// whether their empty slice is nil or allocated.
		iterations = nil
	}
	return json.Marshal(campaignJSON{
		Schema:     schema,
		Problem:    c.Problem,
		Size:       c.Size,
		Runs:       c.Runs,
		Seed:       c.Seed,
		Budget:     c.Budget,
		Iterations: iterations,
		Seconds:    c.Seconds,
		Censored:   c.Censored,
		Metadata:   c.Metadata,
		Sketch:     c.Sketch,
	})
}

// UnmarshalJSON implements json.Unmarshaler. A missing schema field
// denotes version 1 (legacy lvseq files); versions newer than
// CampaignSchemaVersion fail with ErrSchema.
func (c *Campaign) UnmarshalJSON(data []byte) error {
	var j campaignJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Schema > CampaignSchemaVersion {
		return fmt.Errorf("%w: file has schema %d, this release reads ≤ %d",
			ErrSchema, j.Schema, CampaignSchemaVersion)
	}
	*c = Campaign{
		Problem:    j.Problem,
		Size:       j.Size,
		Runs:       j.Runs,
		Seed:       j.Seed,
		Budget:     j.Budget,
		Iterations: j.Iterations,
		Seconds:    j.Seconds,
		Censored:   j.Censored,
		Metadata:   j.Metadata,
		Sketch:     j.Sketch,
	}
	return c.validate()
}

func (c *Campaign) validate() error {
	if c.TotalRuns() == 0 {
		return ErrEmptyCampaign
	}
	if c.Sketch != nil && c.Sketch.N() == 0 {
		return fmt.Errorf("lasvegas: campaign carries an empty sketch")
	}
	if c.Sketch != nil && len(c.Censored) > 0 {
		return fmt.Errorf("lasvegas: sketch-backed campaign with censored runs (a sketch stores values, not censoring flags)")
	}
	for _, i := range c.Censored {
		if i < 0 || i >= len(c.Iterations) {
			return fmt.Errorf("lasvegas: censored index %d out of range (%d observations)", i, len(c.Iterations))
		}
	}
	return nil
}

// WriteJSON writes the campaign to w in the current schema version,
// indented like the files lvseq produces.
func (c *Campaign) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// SaveJSON writes the campaign to path (see WriteJSON).
func (c *Campaign) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCampaign parses a campaign from r, accepting every schema
// version up to CampaignSchemaVersion.
func ReadCampaign(r io.Reader) (*Campaign, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	c := &Campaign{}
	if err := json.Unmarshal(data, c); err != nil {
		return nil, err
	}
	return c, nil
}

// LoadCampaign reads a campaign file written by SaveJSON (any schema
// version).
func LoadCampaign(path string) (*Campaign, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := ReadCampaign(f)
	if err != nil {
		return nil, fmt.Errorf("lasvegas: %s: %w", path, err)
	}
	return c, nil
}

// WriteCSV emits one row per run: index, iterations, seconds,
// censored (0/1) — the format ReadCampaignCSV parses back. Runs
// folded into a sketch have no per-run records, so a campaign that
// keeps no raw runs fails with ErrNoRawRuns.
func (c *Campaign) WriteCSV(w io.Writer) error {
	if len(c.Iterations) == 0 && c.HasSketch() {
		return fmt.Errorf("%w: nothing to write as CSV", ErrNoRawRuns)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"run", "iterations", "seconds", "censored"}); err != nil {
		return err
	}
	cens := c.censoredSet()
	for i := range c.Iterations {
		sec := 0.0
		if i < len(c.Seconds) {
			sec = c.Seconds[i]
		}
		flag := "0"
		if cens[i] {
			flag = "1"
		}
		rec := []string{
			strconv.Itoa(i),
			strconv.FormatFloat(c.Iterations[i], 'g', -1, 64),
			strconv.FormatFloat(sec, 'g', -1, 64),
			flag,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCampaignCSV parses the WriteCSV format (and the legacy
// three-column variant without the censored flag). Problem and seed
// metadata are not stored in CSV and stay zero.
func ReadCampaignCSV(r io.Reader) (*Campaign, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) < 2 {
		return nil, ErrEmptyCampaign
	}
	c := &Campaign{Runs: len(records) - 1}
	for i, rec := range records[1:] {
		if len(rec) != 3 && len(rec) != 4 {
			return nil, fmt.Errorf("lasvegas: bad CSV row %v", rec)
		}
		it, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("lasvegas: bad iterations %q", rec[1])
		}
		sec, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("lasvegas: bad seconds %q", rec[2])
		}
		c.Iterations = append(c.Iterations, it)
		c.Seconds = append(c.Seconds, sec)
		if len(rec) == 4 && rec[3] == "1" {
			c.Censored = append(c.Censored, i)
		}
	}
	return c, nil
}

// IsCensored reports whether any run was cut off by the budget.
func (c *Campaign) IsCensored() bool { return len(c.Censored) > 0 }

// CensoredFraction returns the fraction of runs cut off by the
// budget (0 for complete or empty campaigns).
func (c *Campaign) CensoredFraction() float64 {
	if len(c.Iterations) == 0 {
		return 0
	}
	return float64(len(c.Censored)) / float64(len(c.Iterations))
}

// Observations returns the campaign as parallel value / censoring
// slices — the representation the survival estimators consume. The
// values slice is the campaign's own Iterations (not a copy); the
// flags slice is freshly built from the Censored indices.
func (c *Campaign) Observations() (values []float64, censored []bool) {
	censored = make([]bool, len(c.Iterations))
	for _, i := range c.Censored {
		if i >= 0 && i < len(censored) {
			censored[i] = true
		}
	}
	return c.Iterations, censored
}

// censoredSet returns the censored indices as a lookup set.
func (c *Campaign) censoredSet() map[int]bool {
	if len(c.Censored) == 0 {
		return nil
	}
	set := make(map[int]bool, len(c.Censored))
	for _, i := range c.Censored {
		set[i] = true
	}
	return set
}

// Complete returns the iteration counts of the uncensored runs (the
// whole sample when the campaign is complete; a copy otherwise).
func (c *Campaign) Complete() []float64 {
	if !c.IsCensored() {
		return c.Iterations
	}
	cens := c.censoredSet()
	out := make([]float64, 0, len(c.Iterations)-len(c.Censored))
	for i, x := range c.Iterations {
		if !cens[i] {
			out = append(out, x)
		}
	}
	return out
}

// Summary holds the paper's Table-1/2 statistics of one metric.
type Summary struct {
	Min, Mean, Median, Max float64
}

// IterationSummary returns the Table-2 row of the campaign
// (censored runs included at their budget value).
func (c *Campaign) IterationSummary() Summary {
	s := stats.Summarize(c.Iterations)
	return Summary{Min: s.Min, Mean: s.Mean, Median: s.Median, Max: s.Max}
}

// TimeSummary returns the Table-1 row of the campaign.
func (c *Campaign) TimeSummary() Summary {
	s := stats.Summarize(c.Seconds)
	return Summary{Min: s.Min, Mean: s.Mean, Median: s.Median, Max: s.Max}
}
