package lasvegas

import (
	"encoding/json"
	"math"
)

// modelJSON is the wire form of a fitted model: the family, the
// rendered law, and the closed-form invariants of its speed-up curve.
// Non-finite values (the linear-forever speed-up limit) are expressed
// through the *_infinite flags because JSON has no Inf literal.
type modelJSON struct {
	Family        Family   `json:"family"`
	Law           string   `json:"law"`
	Mean          float64  `json:"mean"`
	Linear        bool     `json:"linear"`
	Tangent       float64  `json:"tangent_at_origin"`
	Limit         *float64 `json:"limit,omitempty"`
	LimitInfinite bool     `json:"limit_infinite,omitempty"`
	// CensoredFraction and Estimator disclose censored-campaign fits
	// (WithCensoredFit): what fraction of the runs only bounded the
	// runtime, and which estimator absorbed them. Both are omitted
	// for complete-sample fits, keeping pre-censoring payloads
	// byte-identical.
	CensoredFraction float64 `json:"censored_fraction,omitempty"`
	Estimator        string  `json:"estimator,omitempty"`
	KS               *ksJSON `json:"ks,omitempty"`
}

// ksJSON is the wire form of a goodness-of-fit verdict.
type ksJSON struct {
	Stat     float64 `json:"stat"`
	PValue   float64 `json:"p_value"`
	N        int     `json:"n"`
	Accepted bool    `json:"accepted"`
}

// MarshalJSON implements json.Marshaler: the model's family, rendered
// law, sequential mean, speed-up-curve invariants (linearity, tangent
// at the origin, the n→∞ limit) and — when the model was fitted rather
// than plugged in — its KS verdict. This is the payload lvserve's
// /v1/fit and /v1/predict responses embed; it is deliberately
// deterministic for a given model so that fixed-seed service responses
// are byte-stable.
func (m *Model) MarshalJSON() ([]byte, error) {
	j := modelJSON{
		Family:           m.family,
		Law:              m.law.String(),
		Mean:             m.Mean(),
		Linear:           m.Linear(),
		Tangent:          m.TangentAtOrigin(),
		CensoredFraction: m.censFrac,
		Estimator:        m.estimator,
	}
	if lim := m.Limit(); math.IsInf(lim, 1) {
		j.LimitInfinite = true
	} else {
		j.Limit = &lim
	}
	if g, ok := m.GoodnessOfFit(); ok {
		j.KS = &ksJSON{Stat: g.Stat, PValue: g.PValue, N: g.N, Accepted: m.Accepted()}
	}
	return json.Marshal(j)
}
