package lasvegas

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"lasvegas/internal/policy"
)

// Policy kind strings, as they appear in PolicyEvaluation.Policy,
// PolicyRow.Policy, /v1/policy bodies and lvpredict tables.
const (
	PolicyNoRestart     = string(policy.NoRestart)
	PolicyFixedCutoff   = string(policy.FixedCutoff)
	PolicyLuby          = string(policy.Luby)
	PolicyFittedOptimal = string(policy.FittedOptimal)
)

// PolicyEvaluation is one closed-form-priced restart strategy under a
// model's law (see Model.Policies). Cutoff parameterizes fixed-cutoff
// and fitted-optimal strategies (+Inf means "never restart"); Unit
// scales the Luby sequence; both are zero when not applicable.
type PolicyEvaluation struct {
	Policy   string
	Cutoff   float64
	Unit     float64
	Expected float64 // closed-form E[T]; +Inf if the schedule never succeeds
	Gain     float64 // E[Y] / Expected: >1 beats running to completion
}

// Policies prices the standard restart-policy panel — no-restart,
// fixed-cutoff at the law's median, Luby with unit q(0.05), and the
// fitted optimum — in closed form under the model's law, ranked
// best-first. Ties within a ppm break deterministically toward the
// simpler policy, so a memoryless law ranks no-restart first.
func (m *Model) Policies() ([]PolicyEvaluation, error) {
	evals, err := policy.Panel(m.law)
	if err != nil {
		return nil, fmt.Errorf("lasvegas: %w", err)
	}
	out := make([]PolicyEvaluation, len(evals))
	for i, e := range evals {
		out[i] = PolicyEvaluation{
			Policy:   string(e.Policy.Kind),
			Cutoff:   e.Policy.Cutoff,
			Unit:     e.Policy.Unit,
			Expected: e.Expected,
			Gain:     e.Gain,
		}
	}
	return out, nil
}

// PolicyRow is one fully-evaluated strategy in a PolicyTable: the
// closed-form price under the fitted law, the replayed mean under the
// campaign's own plug-in law, and a bootstrap CI on the plug-in
// price. Lo/Hi may be +Inf when a resample cannot succeed under the
// schedule.
type PolicyRow struct {
	Policy    string
	Cutoff    float64
	Unit      float64
	Expected  float64 // closed-form E[T] under the fitted law
	Simulated float64 // seeded replay mean under the plug-in law
	StdErr    float64 // replay standard error
	Lo, Hi    float64 // bootstrap CI on the plug-in price
	Gain      float64 // fitted-law E[Y] / Expected
}

// PolicyTable ranks restart strategies for one campaign: rows sorted
// best-first by closed-form price under the model's law, each backed
// by a deterministic replay and a bootstrap interval computed from
// the campaign's plug-in law. Winner is Rows[0].Policy.
type PolicyTable struct {
	Rows      []PolicyRow
	Winner    string
	Law       string  // the fitted law the prices come from
	Estimator string  // estimator kind behind the law
	Level     float64 // bootstrap confidence level
	Reps      int     // replay repetitions per row
	Resamples int     // bootstrap resamples per row
}

// PolicyTable builds the ranked restart-policy comparison for c. The
// strategy panel and its closed-form prices come from m's law; pass
// m == nil to fit first (falling back to the plug-in law when no
// family is accepted). The replay and bootstrap always run against
// the campaign's own plug-in law — observed runtimes, not the fit —
// so a wrong fitted family shows up as closed-form/replay
// disagreement in the table. Both are seeded from WithSeed and
// deterministic.
func (p *Predictor) PolicyTable(ctx context.Context, c *Campaign, m *Model) (*PolicyTable, error) {
	if c == nil {
		return nil, errors.New("lasvegas: nil campaign")
	}
	if m == nil {
		var err error
		m, err = p.Fit(c)
		if errors.Is(err, ErrNoAcceptableFit) {
			m, err = p.PlugIn(c)
		}
		if err != nil {
			return nil, err
		}
	}
	plug, err := p.PlugIn(c)
	if err != nil {
		return nil, err
	}
	evals, err := policy.Panel(m.law)
	if err != nil {
		return nil, fmt.Errorf("lasvegas: %w", err)
	}
	table := &PolicyTable{
		Law:       m.String(),
		Estimator: m.Estimator(),
		Level:     p.cfg.level,
		Reps:      p.cfg.simReps,
		Resamples: p.cfg.resamples,
	}
	n := c.TotalRuns()
	for _, e := range evals {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sim, err := policy.Simulate(plug.law, e.Policy, p.cfg.simReps, policySeed(p.cfg.seed, e.Policy.Kind, 0x51D))
		if err != nil {
			return nil, fmt.Errorf("lasvegas: policy replay: %w", err)
		}
		ci, err := policy.BootstrapCI(plug.law, n, e.Policy, p.cfg.resamples, p.cfg.level, policySeed(p.cfg.seed, e.Policy.Kind, 0xB007))
		if err != nil {
			return nil, fmt.Errorf("lasvegas: policy bootstrap: %w", err)
		}
		table.Rows = append(table.Rows, PolicyRow{
			Policy:    string(e.Policy.Kind),
			Cutoff:    e.Policy.Cutoff,
			Unit:      e.Policy.Unit,
			Expected:  e.Expected,
			Simulated: sim.Mean,
			StdErr:    sim.StdErr,
			Lo:        ci.Lo,
			Hi:        ci.Hi,
			Gain:      e.Gain,
		})
	}
	table.Winner = table.Rows[0].Policy
	return table, nil
}

// policySeed derives a per-(kind, purpose) stream from the root seed
// so replay and bootstrap draws are independent of each other and of
// every other consumer of the root seed, yet fully deterministic.
func policySeed(root uint64, kind policy.Kind, salt uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(kind))
	return root ^ h.Sum64() ^ salt
}
