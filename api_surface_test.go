package lasvegas_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// updateAPI regenerates the golden surface when the environment
// variable UPDATE_API is set (UPDATE_API=1 go test -run TestAPISurface).
var updateAPI = os.Getenv("UPDATE_API") != ""

// TestAPISurface locks the exported surface of the public lasvegas
// package against testdata/api_surface.golden: removing or renaming
// an exported identifier (or an exported field/method of an exported
// type) fails this test, and adding one requires a deliberate golden
// update.

func TestAPISurface(t *testing.T) {
	got := exportedSurface(t)
	goldenPath := filepath.Join("testdata", "api_surface.golden")
	if updateAPI {
		if err := os.WriteFile(goldenPath, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d identifiers", goldenPath, len(got))
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden API surface (run with UPDATE_API=1 to create): %v", err)
	}
	want := strings.Split(strings.TrimSpace(string(data)), "\n")

	gotSet := toSet(got)
	wantSet := toSet(want)
	for _, id := range want {
		if !gotSet[id] {
			t.Errorf("exported identifier removed or changed: %s", id)
		}
	}
	for _, id := range got {
		if !wantSet[id] {
			t.Errorf("new exported identifier %s — update testdata/api_surface.golden (UPDATE_API=1 go test -run TestAPISurface)", id)
		}
	}
}

func toSet(ids []string) map[string]bool {
	m := make(map[string]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// exportedSurface parses the package in the repository root and
// returns every exported identifier, qualified as:
//
//	func Name, type Name, const Name, var Name,
//	method Type.Name, field Type.Name
func exportedSurface(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["lasvegas"]
	if !ok {
		t.Fatalf("package lasvegas not found in %v", pkgs)
	}
	var ids []string
	add := func(format string, args ...any) { ids = append(ids, fmt.Sprintf(format, args...)) }
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv == nil {
					add("func %s", d.Name.Name)
					continue
				}
				recv := receiverName(d.Recv.List[0].Type)
				if ast.IsExported(recv) {
					add("method %s.%s", recv, d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						add("type %s", s.Name.Name)
						switch st := s.Type.(type) {
						case *ast.StructType:
							for _, fld := range st.Fields.List {
								for _, n := range fld.Names {
									if n.IsExported() {
										add("field %s.%s", s.Name.Name, n.Name)
									}
								}
							}
						case *ast.InterfaceType:
							for _, m := range st.Methods.List {
								for _, n := range m.Names {
									if n.IsExported() {
										add("method %s.%s", s.Name.Name, n.Name)
									}
								}
							}
						}
					case *ast.ValueSpec:
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						for _, n := range s.Names {
							if n.IsExported() {
								add("%s %s", kw, n.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(ids)
	return ids
}

func receiverName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.StarExpr:
		return receiverName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return receiverName(e.X)
	}
	return ""
}
