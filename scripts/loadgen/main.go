// Command loadgen replays a mixed upload/fit/predict workload against
// an lvserve replica group and gates on the group's availability
// contract: zero failed requests after client-side retries and a p99
// latency budget. It is the load half of the chaos drill
// (scripts/serve_chaos.sh kills and restarts a replica while this
// runs) and doubles as a convergence checker: -verify re-uploads the
// corpus, requires byte-identical fit/predict answers from every
// replica, and waits for all hinted-handoff queues to drain.
//
// Usage:
//
//	go run ./scripts/loadgen -targets http://h0:8080,http://h1:8080,http://h2:8080 -duration 30s
//	go run ./scripts/loadgen -targets ... -verify -converge-timeout 60s
//	go run ./scripts/loadgen -targets ... -wait-converged -expect-copies 32 -converge-timeout 60s
//
// -wait-converged is the passive half of the anti-entropy drill: it
// issues no campaign reads or writes at all — only /v1/healthz polls —
// until every hint queue is empty and the group holds -expect-copies
// campaign copies in total. Because nothing in it can trigger
// read-repair, reaching the expected copy count proves the background
// digest exchange did the healing on its own.
//
// The workload is deterministic for a fixed -seed: -campaigns
// synthetic exponential-runtime campaigns (the shape the paper's
// estimators model) are uploaded up front, then -concurrency workers
// issue uploads (idempotent re-uploads of the same canonical bytes),
// fits and predicts round-robin across the targets until -duration
// (or -requests) runs out. A request counts as failed only when every
// retry is exhausted: transport errors and 5xx rotate to the next
// target, while 200 — and 422, a deterministic "no family accepted"
// fit verdict — are successes. A 404 for a campaign this run holds an
// upload ack for is a lost write and fails immediately.
//
// -metrics-check adds a telemetry cross-check to the load gate: after
// the run it scrapes every target's GET /v1/metrics, requires the
// request/peer/hint/anti-entropy/fit-share/quorum families to be
// present, and compares the fleet's own sketch-backed p99 (the
// server-side lvserve_request_latency_quantile_seconds gauge) against
// the p99 this client observed. The server quantile measures handler
// time only, while the client's includes the network, retries and
// backoff — so the gate is one-sided: the server's p99 must be
// positive and must not exceed the client's by more than
// -metrics-tolerance (plus a fixed 250ms floor for near-zero runs).
// A daemon whose self-reported latency distribution disagrees with
// what its clients measured is lying about the very statistic the
// project exists to estimate.
//
// The summary is one JSON object on stdout; the exit status is the
// gate (0 = passed).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lasvegas"
	"lasvegas/internal/obs"
)

func main() {
	var (
		targetsS   = flag.String("targets", "", "comma-separated replica base URLs (required)")
		campaigns  = flag.Int("campaigns", 16, "synthetic campaigns in the working set")
		runs       = flag.Int("runs", 48, "runs per synthetic campaign")
		conc       = flag.Int("concurrency", 8, "concurrent workers")
		requests   = flag.Int("requests", 0, "total requests to issue (0 = run for -duration)")
		duration   = flag.Duration("duration", 15*time.Second, "how long to generate load when -requests is 0")
		retries    = flag.Int("retries", 5, "client-side retries per request (rotating targets)")
		backoff    = flag.Duration("retry-backoff", 100*time.Millisecond, "delay between client-side retries")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		p99Budget  = flag.Duration("p99", 0, "fail if p99 latency exceeds this (0 = no latency gate)")
		seed       = flag.Int64("seed", 1, "workload seed (campaign contents and op mix)")
		verify     = flag.Bool("verify", false, "verify convergence instead of generating load")
		convergeTO = flag.Duration("converge-timeout", 30*time.Second, "how long -verify and -wait-converged wait for convergence")
		waitConv   = flag.Bool("wait-converged", false, "poll healthz only (no campaign reads or writes) until hints drain and -expect-copies holds")
		expCopies  = flag.Int("expect-copies", 0, "with -wait-converged: total campaign copies the group must hold across all targets (0 = only require drained hints)")
		metChk     = flag.Bool("metrics-check", false, "after the load run, scrape every target's /v1/metrics and gate on the server-side latency sketch agreeing with the client-observed p99")
		metTol     = flag.Float64("metrics-tolerance", 0.5, "with -metrics-check: fractional headroom the server p99 may exceed the client p99 by before failing")
	)
	flag.Parse()
	if *targetsS == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -targets is required")
		os.Exit(2)
	}
	targets := strings.Split(*targetsS, ",")
	for i := range targets {
		targets[i] = strings.TrimRight(strings.TrimSpace(targets[i]), "/")
	}

	lg := &loadgen{
		targets: targets,
		client:  &http.Client{Timeout: *timeout},
		retries: *retries,
		backoff: *backoff,
	}
	// The passive mode must not seed: any upload would hand the group
	// the very copies whose arrival it is supposed to observe.
	if *waitConv {
		os.Exit(lg.waitConverged(*expCopies, *convergeTO))
	}

	bodies := make([][]byte, *campaigns)
	ids := make([]string, *campaigns)
	for i := range bodies {
		bodies[i] = synthCampaign(*seed, i, *runs)
	}

	// Seed the working set; these uploads are part of the gate too.
	for i, b := range bodies {
		id, err := lg.upload(i, b)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: seeding campaign %d: %v\n", i, err)
			os.Exit(1)
		}
		ids[i] = id
	}

	if *verify {
		os.Exit(lg.verify(bodies, ids, *convergeTO))
	}
	mc := metricsGate{enabled: *metChk, tolerance: *metTol}
	os.Exit(lg.load(bodies, ids, *conc, *requests, *duration, *p99Budget, mc))
}

// synthCampaign builds the i-th deterministic synthetic campaign:
// exponential iteration counts, the runtime law the paper predicts
// parallel speed-ups from.
func synthCampaign(seed int64, i, runs int) []byte {
	rng := rand.New(rand.NewSource(seed*1000 + int64(i)))
	iters := make([]float64, runs)
	for j := range iters {
		iters[j] = float64(int(rng.ExpFloat64()*500) + 1)
	}
	c := &lasvegas.Campaign{
		Problem:    fmt.Sprintf("loadgen-%d", i),
		Runs:       runs,
		Seed:       uint64(i + 1),
		Iterations: iters,
	}
	data, err := json.Marshal(c)
	if err != nil {
		panic(err)
	}
	return data
}

type loadgen struct {
	targets []string
	client  *http.Client
	retries int
	backoff time.Duration

	retried atomic.Int64 // attempts beyond the first, across all ops
}

// do issues one logical request with retries rotating across targets.
// It returns the final status, body and per-op latency (all attempts
// included — the client-visible cost of the op).
func (lg *loadgen) do(start int, method, path string, body []byte) (status int, data []byte, d time.Duration, err error) {
	t0 := time.Now()
	var lastErr error
	for attempt := 0; attempt <= lg.retries; attempt++ {
		if attempt > 0 {
			lg.retried.Add(1)
			time.Sleep(lg.backoff)
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		target := lg.targets[(start+attempt)%len(lg.targets)]
		req, err := http.NewRequest(method, target+path, rd)
		if err != nil {
			return 0, nil, time.Since(t0), err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := lg.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= http.StatusInternalServerError {
			// 5xx covers a shutting-down replica (503) and a group with
			// no live owner (502): retry on the next target.
			lastErr = fmt.Errorf("%s %s via %s: status %d: %s", method, path, target, resp.StatusCode, data)
			continue
		}
		return resp.StatusCode, data, time.Since(t0), nil
	}
	return 0, nil, time.Since(t0), fmt.Errorf("retries exhausted: %w", lastErr)
}

// upload stores one campaign (idempotent) and returns its id.
func (lg *loadgen) upload(start int, body []byte) (string, error) {
	status, data, _, err := lg.do(start, "POST", "/v1/campaigns", body)
	if err != nil {
		return "", err
	}
	if status != http.StatusOK {
		return "", fmt.Errorf("upload status %d: %s", status, data)
	}
	var cr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &cr); err != nil || cr.ID == "" {
		return "", fmt.Errorf("upload response %s: %v", data, err)
	}
	return cr.ID, nil
}

// summary is the one-line JSON report on stdout.
type summary struct {
	Requests  int            `json:"requests"`
	Failures  int            `json:"failures"`
	Retries   int64          `json:"retries"`
	DurationS float64        `json:"duration_s"`
	RPS       float64        `json:"rps"`
	P50Ms     float64        `json:"p50_ms"`
	P99Ms     float64        `json:"p99_ms"`
	Metrics   *metricsReport `json:"metrics,omitempty"`
	Errors    []string       `json:"errors,omitempty"`
}

// metricsGate configures the post-run telemetry cross-check.
type metricsGate struct {
	enabled   bool
	tolerance float64 // fractional headroom over the client p99
}

// metricsReport is the cross-check's slice of the summary: the fleet's
// self-reported p99 (max over targets and routes) next to the client's.
type metricsReport struct {
	ServerP99Ms float64 `json:"server_p99_ms"`
	ClientP99Ms float64 `json:"client_p99_ms"`
	Targets     int     `json:"targets"`
}

// load runs the mixed workload and returns the process exit status.
func (lg *loadgen) load(bodies [][]byte, ids []string, conc, requests int, duration, p99Budget time.Duration, mc metricsGate) int {
	var (
		mu        sync.Mutex
		latencies []time.Duration
		errs      []string
		issued    atomic.Int64
		wg        sync.WaitGroup
	)
	deadline := time.Now().Add(duration)
	next := func() (int, bool) {
		n := int(issued.Add(1))
		if requests > 0 {
			return n, n <= requests
		}
		return n, time.Now().Before(deadline)
	}
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				n, ok := next()
				if !ok {
					return
				}
				i := n % len(bodies)
				var (
					status int
					data   []byte
					d      time.Duration
					err    error
				)
				switch n % 3 {
				case 0:
					status, data, d, err = lg.do(n, "POST", "/v1/campaigns", bodies[i])
				case 1:
					status, data, d, err = lg.do(n, "POST", "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, ids[i])))
				default:
					status, data, d, err = lg.do(n, "GET", "/v1/predict?id="+ids[i]+"&cores=4,16,64&quantile=0.5", nil)
				}
				// 422 is a deterministic fit verdict, not a failure; a 404
				// for an acked id is a lost write and exactly what the
				// chaos gate exists to catch.
				if err == nil && status != http.StatusOK && status != http.StatusUnprocessableEntity {
					err = fmt.Errorf("op %d: status %d: %s", n, status, data)
				}
				mu.Lock()
				latencies = append(latencies, d)
				if err != nil && len(errs) < 20 {
					errs = append(errs, err.Error())
				} else if err != nil {
					errs = append(errs, "") // counted, not printed
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	quantile := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return float64(latencies[i]) / 1e6
	}
	s := summary{
		Requests:  len(latencies),
		Failures:  len(errs),
		Retries:   lg.retried.Load(),
		DurationS: elapsed.Seconds(),
		RPS:       float64(len(latencies)) / elapsed.Seconds(),
		P50Ms:     quantile(0.50),
		P99Ms:     quantile(0.99),
	}
	for _, e := range errs {
		if e != "" {
			s.Errors = append(s.Errors, e)
		}
	}
	metricsErr := error(nil)
	if mc.enabled {
		s.Metrics, metricsErr = lg.crossCheckMetrics(s.P99Ms, mc.tolerance)
	}
	out, _ := json.MarshalIndent(s, "", "  ")
	fmt.Println(string(out))
	if s.Failures > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d of %d requests failed after retries\n", s.Failures, s.Requests)
		return 1
	}
	if p99Budget > 0 && s.P99Ms > float64(p99Budget)/1e6 {
		fmt.Fprintf(os.Stderr, "loadgen: p99 %.1fms exceeds the %s budget\n", s.P99Ms, p99Budget)
		return 1
	}
	if metricsErr != nil {
		fmt.Fprintf(os.Stderr, "loadgen: metrics check: %v\n", metricsErr)
		return 1
	}
	return 0
}

// metricFamilies is the telemetry contract -metrics-check enforces:
// every family the issue's observability layer promises must be
// present on every replica's scrape (registered families render even
// before their first observation, so presence is unconditional).
var metricFamilies = []string{
	"lvserve_requests_total",
	"lvserve_request_latency_seconds",
	"lvserve_request_latency_quantile_seconds",
	"lvserve_peer_requests_total",
	"lvserve_peer_latency_seconds",
	"lvserve_peer_breaker_transitions_total",
	"lvserve_hints_enqueued_total",
	"lvserve_hints_delivered_total",
	"lvserve_hints_queue_depth",
	"lvserve_anti_entropy_round_seconds",
	"lvserve_anti_entropy_pulled_total",
	"lvserve_fit_share_total",
	"lvserve_quorum_shortfall_total",
	"lvserve_store_campaigns",
	"lvserve_inflight_requests",
}

// crossCheckMetrics scrapes every target and gates the fleet's
// self-measured latency against the client's. The server quantile is
// handler time only while the client's p99 includes network, rotating
// retries and backoff, so only one direction can be asserted: the
// server's p99 must be positive (the sketches really observed this
// run) and at most clientP99·(1+tolerance) plus a 250ms floor that
// keeps sub-millisecond runs from failing on noise.
func (lg *loadgen) crossCheckMetrics(clientP99Ms, tolerance float64) (*metricsReport, error) {
	serverP99 := 0.0
	for _, target := range lg.targets {
		status, data, _, err := lg.directDo(target, "GET", "/v1/metrics", nil)
		if err != nil {
			return nil, fmt.Errorf("scraping %s: %w", target, err)
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("scraping %s: status %d", target, status)
		}
		samples, err := obs.ParseText(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("parsing %s metrics: %w", target, err)
		}
		for _, fam := range metricFamilies {
			if !samples.HasFamily(fam) {
				return nil, fmt.Errorf("%s serves no %s family", target, fam)
			}
		}
		if p99, ok := samples.MaxLabeled("lvserve_request_latency_quantile_seconds", `quantile="0.99"`); ok && p99*1000 > serverP99 {
			serverP99 = p99 * 1000
		}
	}
	rep := &metricsReport{ServerP99Ms: serverP99, ClientP99Ms: clientP99Ms, Targets: len(lg.targets)}
	if serverP99 <= 0 {
		return rep, fmt.Errorf("no target reports a positive request p99 — the latency sketches never observed the run")
	}
	if budget := clientP99Ms*(1+tolerance) + 250; serverP99 > budget {
		return rep, fmt.Errorf("server-side p99 %.1fms exceeds the client-observed %.1fms by more than the tolerance (budget %.1fms)",
			serverP99, clientP99Ms, budget)
	}
	return rep, nil
}

// verify checks post-chaos convergence: every campaign re-uploads to
// its stable id, every target answers every id's fit and predict with
// the same status and the same bytes, and every target's hint queue
// drains within the timeout.
func (lg *loadgen) verify(bodies [][]byte, ids []string, convergeTO time.Duration) int {
	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "loadgen: verify: "+format+"\n", args...)
		failed = true
	}

	// Hint queues must drain: an undelivered replication write means
	// the group has not converged.
	deadline := time.Now().Add(convergeTO)
	for {
		st, err := lg.groupStats()
		if err != nil {
			fail("%v", err)
			break
		}
		if st.hints == 0 {
			break
		}
		if time.Now().After(deadline) {
			fail("hint queues still hold %d entries after %s", st.hints, convergeTO)
			break
		}
		time.Sleep(200 * time.Millisecond)
	}

	for i, id := range ids {
		// Idempotent re-upload: the id is a content hash, so any other
		// answer means data was lost or mangled.
		rid, err := lg.upload(i, bodies[i])
		if err != nil {
			fail("re-upload campaign %d: %v", i, err)
			continue
		}
		if rid != id {
			fail("campaign %d re-uploaded to id %s, want %s", i, rid, id)
		}
		for _, probe := range []struct {
			method, path string
			body         []byte
		}{
			{"POST", "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, id))},
			{"GET", "/v1/predict?id=" + id + "&cores=4,16,64&quantile=0.5", nil},
		} {
			var first []byte
			firstStatus := 0
			for ti, target := range lg.targets {
				status, data, _, err := lg.directDo(target, probe.method, probe.path, probe.body)
				if err != nil {
					fail("%s %s via %s: %v", probe.method, probe.path, target, err)
					continue
				}
				if status != http.StatusOK && status != http.StatusUnprocessableEntity {
					fail("%s %s via %s: status %d: %s", probe.method, probe.path, target, status, data)
					continue
				}
				if ti == 0 {
					first, firstStatus = data, status
				} else if status != firstStatus || !bytes.Equal(data, first) {
					fail("%s %s: %s answers differently from %s", probe.method, probe.path, target, lg.targets[0])
				}
			}
		}
	}
	if failed {
		return 1
	}
	fmt.Printf(`{"verified_campaigns": %d, "targets": %d, "converged": true}`+"\n", len(ids), len(lg.targets))
	return 0
}

// directDo sends one request to one specific target, no failover —
// verification is about what each replica itself answers.
func (lg *loadgen) directDo(target, method, path string, body []byte) (int, []byte, time.Duration, error) {
	t0 := time.Now()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, target+path, rd)
	if err != nil {
		return 0, nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := lg.client.Do(req)
	if err != nil {
		return 0, nil, time.Since(t0), err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, time.Since(t0), err
}

// groupStats aggregates the group's healthz view: total hinted-handoff
// backlog, total resident campaign copies, and total anti-entropy
// pulls across all targets.
type groupStats struct {
	hints     int
	campaigns int
	aePulled  int64
}

func (lg *loadgen) groupStats() (groupStats, error) {
	var st groupStats
	for _, target := range lg.targets {
		status, data, _, err := lg.directDo(target, "GET", "/v1/healthz", nil)
		if err != nil {
			return st, fmt.Errorf("healthz via %s: %w", target, err)
		}
		if status != http.StatusOK {
			return st, fmt.Errorf("healthz via %s: status %d", target, status)
		}
		var hr struct {
			Hints       int `json:"hints"`
			Campaigns   int `json:"campaigns"`
			AntiEntropy *struct {
				Pulled int64 `json:"pulled"`
			} `json:"anti_entropy"`
		}
		if err := json.Unmarshal(data, &hr); err != nil {
			return st, fmt.Errorf("healthz via %s: %w", target, err)
		}
		st.hints += hr.Hints
		st.campaigns += hr.Campaigns
		if hr.AntiEntropy != nil {
			st.aePulled += hr.AntiEntropy.Pulled
		}
	}
	return st, nil
}

// waitConverged polls healthz — and only healthz — until every hint
// queue is empty and (when expectCopies > 0) the group holds exactly
// that many campaign copies, then reports how the group got there.
// Issuing no campaign traffic is the point: read-repair never fires,
// so convergence observed here was manufactured by hinted handoff and
// the anti-entropy exchanger alone.
func (lg *loadgen) waitConverged(expectCopies int, convergeTO time.Duration) int {
	deadline := time.Now().Add(convergeTO)
	var st groupStats
	for {
		var err error
		st, err = lg.groupStats()
		if err == nil && st.hints == 0 && (expectCopies == 0 || st.campaigns == expectCopies) {
			break
		}
		if time.Now().After(deadline) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: wait-converged: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr,
					"loadgen: wait-converged: %d hints pending, %d/%d copies after %s\n",
					st.hints, st.campaigns, expectCopies, convergeTO)
			}
			return 1
		}
		time.Sleep(200 * time.Millisecond)
	}
	out, _ := json.Marshal(struct {
		Converged bool  `json:"converged"`
		Copies    int   `json:"copies"`
		AEPulled  int64 `json:"anti_entropy_pulled"`
		Targets   int   `json:"targets"`
	}{true, st.campaigns, st.aePulled, len(lg.targets)})
	fmt.Println(string(out))
	return 0
}
