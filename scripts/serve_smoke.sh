#!/bin/sh
# End-to-end smoke of the lvserve prediction daemon: build it, start
# it on a loopback port, replay the collect→fit→predict pipeline over
# HTTP with the committed fixed-seed Costas campaign, assert the
# responses are numerically sane, then restart the daemon and require
# byte-identical fit/predict responses (the determinism contract that
# makes cached service answers trustworthy). Then the scale passes:
# a durable daemon (-data-dir) is killed and restarted, must replay
# its snapshot log and answer fit/predict byte-identically without any
# re-upload; and a two-replica group (-replica 0/2, 1/2 with -peers)
# must answer every id byte-identically to the single instance through
# either replica. Finally the streaming pass: lvseq -format ndjson
# pipes a campaign into the O(1)-memory NDJSON ingest, the
# sketch-backed fit/predict must be sane and survive kill -9
# byte-identically, and two shard streams pooled with {"merge_ids"}
# must land on the single unsharded stream's content id. The policy
# pass asserts the GET /v1/policy restart-policy table: four ranked
# rows with sane fields, the winner equal to the top row, byte-stable
# bytes across a kill -9 replay, and exactly the winner that
# `lvpredict -policy` prints for the same campaign. The final
# observability pass checks Lvserve-Trace-Id on every response (both
# generated and caller-supplied), then issues a known request mix and
# requires /v1/metrics to expose every promised family with per-route
# counters exactly matching the traffic. Exits non-zero on any failed
# assertion; every daemon is always shut down.
#
#   scripts/serve_smoke.sh [port]
#
# Uses three consecutive ports starting at [port]. Needs curl and jq
# (both present on the GitHub Actions runners).
set -eu

port="${1:-18080}"
port1=$((port + 1))
port2=$((port + 2))
cd "$(dirname "$0")/.."

fixture=testdata/campaign_costas13.json
censored_fixture=testdata/campaign_costas13_censored.json
base="http://127.0.0.1:$port"
tmp="$(mktemp -d)"
pid=""
pid1=""
pid2=""

cleanup() {
    status=$?
    for p in "$pid" "$pid1" "$pid2"; do
        if [ -n "$p" ]; then
            kill "$p" 2>/dev/null || true
            wait "$p" 2>/dev/null || true
        fi
    done
    # Keep the daemon logs for the CI failure artifact before the temp
    # dir (fit/predict bodies and all) goes away.
    if [ -n "${ARTIFACTS_DIR:-}" ]; then
        mkdir -p "$ARTIFACTS_DIR"
        cp "$tmp"/*.log "$ARTIFACTS_DIR"/ 2>/dev/null || true
    fi
    rm -rf "$tmp"
    exit $status
}
trap cleanup EXIT INT TERM

echo "== building lvserve"
go build -o "$tmp/lvserve" ./cmd/lvserve

# wait_healthy <base-url> <logfile>
wait_healthy() {
    i=0
    until curl -fsS "$1/v1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "lvserve did not become healthy; log:" >&2
            cat "$2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# start_daemon [extra flags...] — boots on $port, sets $pid.
start_daemon() {
    "$tmp/lvserve" -addr "127.0.0.1:$port" "$@" >"$tmp/lvserve.log" 2>&1 &
    pid=$!
    wait_healthy "$base" "$tmp/lvserve.log"
}

stop_daemon() {
    kill "$pid"
    wait "$pid" 2>/dev/null || true
    pid=""
}

# One pass of the pipeline; writes fit/predict bodies to "$tmp/fit.$1"
# and "$tmp/predict.$1".
pipeline() {
    pass="$1"

    echo "== ($pass) healthz"
    # A single instance: k = 1, no hint backlog, no peers to report.
    curl -fsS "$base/v1/healthz" | jq -e '
        .status == "ok" and .replication_factor == 1 and .hints == 0
        and (.peers == null or (.peers | length) == 0)
    ' >/dev/null

    echo "== ($pass) upload campaign"
    curl -fsS -d @"$fixture" "$base/v1/campaigns" >"$tmp/upload.$pass"
    id="$(jq -r .id "$tmp/upload.$pass")"
    [ -n "$id" ] && [ "$id" != null ]
    jq -e '.problem == "costas-13" and .runs == 200' "$tmp/upload.$pass" >/dev/null

    echo "== ($pass) fit (expect 200 with an accepted candidate)"
    code="$(curl -sS -o "$tmp/fit.$pass" -w '%{http_code}' \
        -d "{\"id\":\"$id\"}" "$base/v1/fit")"
    [ "$code" = 200 ] || { echo "fit returned $code: $(cat "$tmp/fit.$pass")" >&2; exit 1; }
    jq -e '.best.family != null and .best.mean > 0' "$tmp/fit.$pass" >/dev/null
    jq -e '.candidates[0].accepted == true' "$tmp/fit.$pass" >/dev/null

    echo "== ($pass) predict (numeric sanity)"
    curl -fsS "$base/v1/predict?id=$id&cores=16,64,256&quantile=0.5&target=8" \
        >"$tmp/predict.$pass"
    # Speed-ups must be finite, strictly increasing in n, and never
    # exceed the core count; E[Z(n)] positive; 8x needs >= 8 cores.
    jq -e '
        (.speedups | length) == 3
        and ([.speedups[].speedup] | . == (sort) and .[0] > 1)
        and ([.speedups[] | select(.speedup > .cores)] | length == 0)
        and ([.speedups[] | select(.min_expectation <= 0)] | length == 0)
        and .quantiles[0].value > 0
        and .cores_for_speedup.cores >= 8
    ' "$tmp/predict.$pass" >/dev/null

    echo "== ($pass) censored upload (budgeted campaign, 25% censored)"
    curl -fsS -d @"$censored_fixture" "$base/v1/campaigns" >"$tmp/upload_cens.$pass"
    cid="$(jq -r .id "$tmp/upload_cens.$pass")"
    [ -n "$cid" ] && [ "$cid" != null ]
    jq -e '.censored == 50 and .budget == 1274' "$tmp/upload_cens.$pass" >/dev/null

    echo "== ($pass) censored fit (expect 200 via the survival estimators, not 409)"
    code="$(curl -sS -o "$tmp/fit_cens.$pass" -w '%{http_code}' \
        -d "{\"id\":\"$cid\"}" "$base/v1/fit")"
    [ "$code" = 200 ] || { echo "censored fit returned $code: $(cat "$tmp/fit_cens.$pass")" >&2; exit 1; }
    jq -e '
        .best.estimator == "censored-mle"
        and .best.censored_fraction == 0.25
        and .best.mean > 0
        and ([.candidates[] | select(.accepted)] | length >= 1)
    ' "$tmp/fit_cens.$pass" >/dev/null

    echo "== ($pass) censored predict (numeric sanity)"
    curl -fsS "$base/v1/predict?id=$cid&cores=16,64,256&quantile=0.5" \
        >"$tmp/predict_cens.$pass"
    jq -e '
        (.speedups | length) == 3
        and ([.speedups[].speedup] | . == (sort) and .[0] > 1)
        and ([.speedups[] | select(.min_expectation <= 0)] | length == 0)
        and .quantiles[0].value > 0
        and .model.estimator == "censored-mle"
    ' "$tmp/predict_cens.$pass" >/dev/null

    echo "== ($pass) error mapping (unknown id -> 404)"
    code="$(curl -sS -o /dev/null -w '%{http_code}' \
        -d '{"id":"c0000000000000000"}' "$base/v1/fit")"
    [ "$code" = 404 ]
}

echo "== starting lvserve on port $port"
start_daemon
pipeline first
echo "== restarting daemon"
stop_daemon
start_daemon
pipeline second
stop_daemon

echo "== byte-stability across restarts"
cmp "$tmp/fit.first" "$tmp/fit.second"
cmp "$tmp/predict.first" "$tmp/predict.second"
cmp "$tmp/fit_cens.first" "$tmp/fit_cens.second"
cmp "$tmp/predict_cens.first" "$tmp/predict_cens.second"

# --- durability: upload → kill -9 → restart replays the snapshot ---
# log; no re-upload, byte-identical answers.

echo "== durability: uploading to a -data-dir daemon"
datadir="$tmp/data"
start_daemon -data-dir "$datadir"
curl -fsS -d @"$fixture" "$base/v1/campaigns" >"$tmp/dur_upload"
did="$(jq -r .id "$tmp/dur_upload")"
curl -fsS -d @"$censored_fixture" "$base/v1/campaigns" >"$tmp/dur_upload_cens"
cdid="$(jq -r .id "$tmp/dur_upload_cens")"
curl -fsS -d "{\"id\":\"$did\"}" "$base/v1/fit" >"$tmp/dur_fit.before"
curl -fsS "$base/v1/predict?id=$did&cores=16,64,256&quantile=0.5&target=8" >"$tmp/dur_predict.before"
curl -fsS -d "{\"id\":\"$cdid\"}" "$base/v1/fit" >"$tmp/dur_fit_cens.before"
curl -fsS "$base/v1/healthz" | jq -e '
    .durable == true and .campaigns == 2 and .bytes > 0
' >/dev/null

echo "== durability: kill -9 and restart on the same data dir"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
start_daemon -data-dir "$datadir"
curl -fsS "$base/v1/healthz" >"$tmp/dur_health"
jq -e '.durable == true and .campaigns == 2 and .replayed == 2' "$tmp/dur_health" >/dev/null

echo "== durability: byte-identical fit/predict with no re-upload"
curl -fsS -d "{\"id\":\"$did\"}" "$base/v1/fit" >"$tmp/dur_fit.after"
curl -fsS "$base/v1/predict?id=$did&cores=16,64,256&quantile=0.5&target=8" >"$tmp/dur_predict.after"
curl -fsS -d "{\"id\":\"$cdid\"}" "$base/v1/fit" >"$tmp/dur_fit_cens.after"
stop_daemon
cmp "$tmp/dur_fit.before" "$tmp/dur_fit.after"
cmp "$tmp/dur_predict.before" "$tmp/dur_predict.after"
cmp "$tmp/dur_fit_cens.before" "$tmp/dur_fit_cens.after"
# The durable answers are also exactly the in-memory daemon's answers.
cmp "$tmp/fit.first" "$tmp/dur_fit.after"
cmp "$tmp/predict.first" "$tmp/dur_predict.after"
cmp "$tmp/fit_cens.first" "$tmp/dur_fit_cens.after"

# --- sharding: a two-replica group answers every id identically to --
# the single instance, through either replica.

echo "== sharding: booting replicas 0/2 and 1/2"
peers="127.0.0.1:$port1,127.0.0.1:$port2"
base1="http://127.0.0.1:$port1"
base2="http://127.0.0.1:$port2"
"$tmp/lvserve" -addr "127.0.0.1:$port1" -replica 0/2 -peers "$peers" >"$tmp/replica0.log" 2>&1 &
pid1=$!
"$tmp/lvserve" -addr "127.0.0.1:$port2" -replica 1/2 -peers "$peers" >"$tmp/replica1.log" 2>&1 &
pid2=$!
wait_healthy "$base1" "$tmp/replica0.log"
wait_healthy "$base2" "$tmp/replica1.log"

echo "== sharding: uploads through replica 0 route to their owners"
curl -fsS -d @"$fixture" "$base1/v1/campaigns" >"$tmp/shard_upload"
[ "$(jq -r .id "$tmp/shard_upload")" = "$did" ]
curl -fsS -d @"$censored_fixture" "$base1/v1/campaigns" >"$tmp/shard_upload_cens"
[ "$(jq -r .id "$tmp/shard_upload_cens")" = "$cdid" ]
c1="$(curl -fsS "$base1/v1/healthz" | jq .campaigns)"
c2="$(curl -fsS "$base2/v1/healthz" | jq .campaigns)"
[ "$((c1 + c2))" = 2 ] || {
    echo "corpus spread over $c1+$c2 resident campaigns, want 2 total" >&2
    exit 1
}
curl -fsS "$base1/v1/healthz" | jq -e '.replica == "0/2"' >/dev/null
curl -fsS "$base2/v1/healthz" | jq -e '.replica == "1/2"' >/dev/null

echo "== sharding: healthz exposes the peer breaker and hint queue"
# Proxied traffic just flowed between the replicas, so each reports
# its one peer's breaker closed and nothing queued for handoff.
for b in "$base1" "$base2"; do
    curl -fsS "$b/v1/healthz" | jq -e '
        .replication_factor == 1 and .hints == 0
        and (.peers | length) == 1 and .peers[0].state == "closed"
    ' >/dev/null
done

echo "== sharding: every id answers identically through either replica"
for b in "$base1" "$base2"; do
    curl -fsS -d "{\"id\":\"$did\"}" "$b/v1/fit" >"$tmp/shard_fit"
    cmp "$tmp/fit.first" "$tmp/shard_fit"
    curl -fsS "$b/v1/predict?id=$did&cores=16,64,256&quantile=0.5&target=8" >"$tmp/shard_predict"
    cmp "$tmp/predict.first" "$tmp/shard_predict"
    curl -fsS -d "{\"id\":\"$cdid\"}" "$b/v1/fit" >"$tmp/shard_fit_cens"
    cmp "$tmp/fit_cens.first" "$tmp/shard_fit_cens"
    curl -fsS "$b/v1/predict?id=$cdid&cores=16,64,256&quantile=0.5" >"$tmp/shard_predict_cens"
    cmp "$tmp/predict_cens.first" "$tmp/shard_predict_cens"
done

echo "== sharding: unknown ids still 404 through the routing layer"
code="$(curl -sS -o /dev/null -w '%{http_code}' \
    -d '{"id":"c00000000000000000000000000000000"}' "$base2/v1/fit")"
[ "$code" = 404 ]

kill "$pid1" "$pid2"
wait "$pid1" 2>/dev/null || true
wait "$pid2" 2>/dev/null || true
pid1=""
pid2=""

# --- streaming: lvseq -format ndjson pipes into the O(1)-memory -----
# ingest; the server keeps only a quantile sketch, fits off it, and
# shard streams pooled by id land on the single stream's content hash.

echo "== streaming: building lvseq and collecting the NDJSON streams"
go build -o "$tmp/lvseq" ./cmd/lvseq
"$tmp/lvseq" -problem costas -size 13 -runs 200 -seed 1 \
    -format ndjson >"$tmp/full.ndjson" 2>/dev/null
"$tmp/lvseq" -problem costas -size 13 -runs 200 -seed 1 -shard 0/2 \
    -format ndjson >"$tmp/shard0.ndjson" 2>/dev/null
"$tmp/lvseq" -problem costas -size 13 -runs 200 -seed 1 -shard 1/2 \
    -format ndjson >"$tmp/shard1.ndjson" 2>/dev/null

echo "== streaming: NDJSON upload folds into a sketch server-side"
sdir="$tmp/streamdata"
start_daemon -data-dir "$sdir"
curl -fsS -H 'Content-Type: application/x-ndjson' --data-binary @"$tmp/full.ndjson" \
    "$base/v1/campaigns" >"$tmp/stream_upload"
sid="$(jq -r .id "$tmp/stream_upload")"
[ -n "$sid" ] && [ "$sid" != null ]
jq -e '.sketched == true and .runs == 200 and .problem == "costas-13"' \
    "$tmp/stream_upload" >/dev/null

echo "== streaming: sketch-backed fit and predict"
code="$(curl -sS -o "$tmp/stream_fit.before" -w '%{http_code}' \
    -d "{\"id\":\"$sid\"}" "$base/v1/fit")"
[ "$code" = 200 ] || { echo "sketch fit returned $code: $(cat "$tmp/stream_fit.before")" >&2; exit 1; }
jq -e '
    .best.estimator == "quantile-sketch"
    and .best.family != null and .best.mean > 0
    and ([.candidates[] | select(.accepted)] | length >= 1)
' "$tmp/stream_fit.before" >/dev/null
curl -fsS "$base/v1/predict?id=$sid&cores=16,64,256&quantile=0.5&target=8" \
    >"$tmp/stream_predict.before"
jq -e '
    (.speedups | length) == 3
    and ([.speedups[].speedup] | . == (sort) and .[0] > 1)
    and ([.speedups[] | select(.speedup > .cores)] | length == 0)
    and ([.speedups[] | select(.min_expectation <= 0)] | length == 0)
    and .quantiles[0].value > 0
    and .cores_for_speedup.cores >= 8
' "$tmp/stream_predict.before" >/dev/null

echo "== streaming: shard streams pool to the single stream's id"
for s in 0 1; do
    curl -fsS -H 'Content-Type: application/x-ndjson' \
        --data-binary @"$tmp/shard$s.ndjson" \
        "$base/v1/campaigns" >"$tmp/stream_shard$s"
    jq -e '.sketched == true' "$tmp/stream_shard$s" >/dev/null
done
s0="$(jq -r .id "$tmp/stream_shard0")"
s1="$(jq -r .id "$tmp/stream_shard1")"
curl -fsS -d "{\"merge_ids\":[\"$s0\",\"$s1\"]}" "$base/v1/campaigns" \
    >"$tmp/stream_merge"
jq -e '.merged_shards == 2 and .sketched == true and .runs == 200' "$tmp/stream_merge" >/dev/null
[ "$(jq -r .id "$tmp/stream_merge")" = "$sid" ] || {
    echo "merged shard sketches landed on $(jq -r .id "$tmp/stream_merge"), want $sid" >&2
    exit 1
}

echo "== streaming: kill -9, replay, byte-identical sketch answers"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
start_daemon -data-dir "$sdir"
curl -fsS -d "{\"id\":\"$sid\"}" "$base/v1/fit" >"$tmp/stream_fit.after"
curl -fsS "$base/v1/predict?id=$sid&cores=16,64,256&quantile=0.5&target=8" \
    >"$tmp/stream_predict.after"
stop_daemon
cmp "$tmp/stream_fit.before" "$tmp/stream_fit.after"
cmp "$tmp/stream_predict.before" "$tmp/stream_predict.after"

# --- restart policies: GET /v1/policy serves the ranked table, ------
# byte-stable across kill -9, and its winner is exactly the verdict
# `lvpredict -policy` prints for the same campaign.

echo "== policy: daemon table (field sanity, winner = top row)"
pdir="$tmp/policydata"
start_daemon -data-dir "$pdir"
curl -fsS -d @"$fixture" "$base/v1/campaigns" >/dev/null
curl -fsS "$base/v1/policy?id=$did" >"$tmp/policy.before"
# Four distinct policies ranked best-first, the winner binding to the
# top row, finite replay means with CIs that bracket sanely, and every
# row's gain positive (gain 1.0 marks ties with never-restarting).
jq -e '
    (.policies | length) == 4
    and ([.policies[].policy] | sort) == ["fitted-optimal", "fixed-cutoff", "luby", "no-restart"]
    and .winner == .policies[0].policy
    and .law != null and .level == 0.95 and .reps > 0 and .resamples > 0
    and ([.policies[] | select(.simulated <= 0 or .sim_stderr <= 0)] | length) == 0
    and ([.policies[] | select(.ci_lo >= .ci_hi)] | length) == 0
    and ([.policies[] | select(.gain <= 0)] | length) == 0
' "$tmp/policy.before" >/dev/null

echo "== policy: unknown id -> 404"
code="$(curl -sS -o /dev/null -w '%{http_code}' "$base/v1/policy?id=c0000000000000000")"
[ "$code" = 404 ]

echo "== policy: kill -9, replay, byte-identical table"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
start_daemon -data-dir "$pdir"
curl -fsS "$base/v1/policy?id=$did" >"$tmp/policy.after"
stop_daemon
cmp "$tmp/policy.before" "$tmp/policy.after"

echo "== policy: lvpredict -policy agrees with the daemon's winner"
go build -o "$tmp/lvpredict" ./cmd/lvpredict
"$tmp/lvpredict" -in "$fixture" -policy >"$tmp/policy_cli"
cli_winner="$(sed -n 's/^winner: //p' "$tmp/policy_cli")"
daemon_winner="$(jq -r .winner "$tmp/policy.before")"
[ -n "$cli_winner" ] || { echo "lvpredict -policy printed no winner line" >&2; exit 1; }
[ "$cli_winner" = "$daemon_winner" ] || {
    echo "CLI winner '$cli_winner' != daemon winner '$daemon_winner'" >&2
    exit 1
}

# --- observability: every response carries a trace ID, and ----------
# /v1/metrics exposes the whole telemetry contract with per-route
# counters that match the exact traffic a fresh daemon just served.

echo "== metrics: fresh daemon, trace IDs on every response"
start_daemon
trace="$(curl -fsS -D - -o /dev/null "$base/v1/healthz" |
    tr -d '\r' | awk 'tolower($1) == "lvserve-trace-id:" {print $2}')"
[ "${#trace}" = 16 ] || {
    echo "healthz response trace ID = '$trace', want 16 hex chars" >&2
    exit 1
}
echoed="$(curl -fsS -D - -o /dev/null -H 'Lvserve-Trace-Id: cafecafecafecafe' \
    "$base/v1/healthz" |
    tr -d '\r' | awk 'tolower($1) == "lvserve-trace-id:" {print $2}')"
[ "$echoed" = cafecafecafecafe ] || {
    echo "caller trace ID came back as '$echoed', want it echoed verbatim" >&2
    exit 1
}

echo "== metrics: known traffic (1 upload, 2 fits, 3 predicts)"
curl -fsS -d @"$fixture" "$base/v1/campaigns" >"$tmp/met_upload"
mid="$(jq -r .id "$tmp/met_upload")"
curl -fsS -d "{\"id\":\"$mid\"}" "$base/v1/fit" >/dev/null
curl -fsS -d "{\"id\":\"$mid\"}" "$base/v1/fit" >/dev/null
for q in 0.5 0.9 0.99; do
    curl -fsS "$base/v1/predict?id=$mid&cores=16,64&quantile=$q" >/dev/null
done

echo "== metrics: scrape is valid exposition covering every family"
curl -fsS -D "$tmp/met_headers" "$base/v1/metrics" >"$tmp/metrics.txt"
stop_daemon
grep -qi 'content-type: text/plain; version=0.0.4' "$tmp/met_headers"
for fam in \
    lvserve_requests_total \
    lvserve_request_latency_seconds \
    lvserve_request_latency_quantile_seconds \
    lvserve_peer_requests_total \
    lvserve_peer_latency_seconds \
    lvserve_peer_breaker_transitions_total \
    lvserve_hints_enqueued_total \
    lvserve_hints_delivered_total \
    lvserve_hints_queue_depth \
    lvserve_anti_entropy_round_seconds \
    lvserve_anti_entropy_pulled_total \
    lvserve_fit_share_total \
    lvserve_policy_computes_total \
    lvserve_quorum_shortfall_total \
    lvserve_store_campaigns \
    lvserve_store_bytes \
    lvserve_inflight_requests
do
    grep -q "^# TYPE $fam " "$tmp/metrics.txt" || {
        echo "metrics scrape is missing family $fam:" >&2
        cat "$tmp/metrics.txt" >&2
        exit 1
    }
done

echo "== metrics: per-route counters match the traffic issued"
# healthz polls from wait_healthy are unknown-count, so only the three
# deterministic routes are pinned; the scrape itself is recorded after
# its handler finishes writing, so it never counts itself.
grep -qF 'lvserve_requests_total{route="/v1/campaigns",status="2xx"} 1' "$tmp/metrics.txt"
grep -qF 'lvserve_requests_total{route="/v1/fit",status="2xx"} 2' "$tmp/metrics.txt"
grep -qF 'lvserve_requests_total{route="/v1/predict",status="2xx"} 3' "$tmp/metrics.txt"
grep -qF 'lvserve_request_latency_seconds_count{route="/v1/fit"} 2' "$tmp/metrics.txt"
grep -q 'lvserve_request_latency_quantile_seconds{route="/v1/fit",quantile="0.99"}' "$tmp/metrics.txt"

echo "serve smoke: OK"
