#!/bin/sh
# End-to-end smoke of the lvserve prediction daemon: build it, start
# it on a loopback port, replay the collect→fit→predict pipeline over
# HTTP with the committed fixed-seed Costas campaign, assert the
# responses are numerically sane, then restart the daemon and require
# byte-identical fit/predict responses (the determinism contract that
# makes cached service answers trustworthy). Exits non-zero on any
# failed assertion; the daemon is always shut down.
#
#   scripts/serve_smoke.sh [port]
#
# Needs curl and jq (both present on the GitHub Actions runners).
set -eu

port="${1:-18080}"
cd "$(dirname "$0")/.."

fixture=testdata/campaign_costas13.json
censored_fixture=testdata/campaign_costas13_censored.json
base="http://127.0.0.1:$port"
tmp="$(mktemp -d)"
pid=""

cleanup() {
    status=$?
    if [ -n "$pid" ]; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
    exit $status
}
trap cleanup EXIT INT TERM

echo "== building lvserve"
go build -o "$tmp/lvserve" ./cmd/lvserve

start_daemon() {
    "$tmp/lvserve" -addr "127.0.0.1:$port" >"$tmp/lvserve.log" 2>&1 &
    pid=$!
    i=0
    until curl -fsS "$base/v1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "lvserve did not become healthy; log:" >&2
            cat "$tmp/lvserve.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

stop_daemon() {
    kill "$pid"
    wait "$pid" 2>/dev/null || true
    pid=""
}

# One pass of the pipeline; writes fit/predict bodies to "$tmp/fit.$1"
# and "$tmp/predict.$1".
pipeline() {
    pass="$1"

    echo "== ($pass) healthz"
    curl -fsS "$base/v1/healthz" | jq -e '.status == "ok"' >/dev/null

    echo "== ($pass) upload campaign"
    curl -fsS -d @"$fixture" "$base/v1/campaigns" >"$tmp/upload.$pass"
    id="$(jq -r .id "$tmp/upload.$pass")"
    [ -n "$id" ] && [ "$id" != null ]
    jq -e '.problem == "costas-13" and .runs == 200' "$tmp/upload.$pass" >/dev/null

    echo "== ($pass) fit (expect 200 with an accepted candidate)"
    code="$(curl -sS -o "$tmp/fit.$pass" -w '%{http_code}' \
        -d "{\"id\":\"$id\"}" "$base/v1/fit")"
    [ "$code" = 200 ] || { echo "fit returned $code: $(cat "$tmp/fit.$pass")" >&2; exit 1; }
    jq -e '.best.family != null and .best.mean > 0' "$tmp/fit.$pass" >/dev/null
    jq -e '.candidates[0].accepted == true' "$tmp/fit.$pass" >/dev/null

    echo "== ($pass) predict (numeric sanity)"
    curl -fsS "$base/v1/predict?id=$id&cores=16,64,256&quantile=0.5&target=8" \
        >"$tmp/predict.$pass"
    # Speed-ups must be finite, strictly increasing in n, and never
    # exceed the core count; E[Z(n)] positive; 8x needs >= 8 cores.
    jq -e '
        (.speedups | length) == 3
        and ([.speedups[].speedup] | . == (sort) and .[0] > 1)
        and ([.speedups[] | select(.speedup > .cores)] | length == 0)
        and ([.speedups[] | select(.min_expectation <= 0)] | length == 0)
        and .quantiles[0].value > 0
        and .cores_for_speedup.cores >= 8
    ' "$tmp/predict.$pass" >/dev/null

    echo "== ($pass) censored upload (budgeted campaign, 25% censored)"
    curl -fsS -d @"$censored_fixture" "$base/v1/campaigns" >"$tmp/upload_cens.$pass"
    cid="$(jq -r .id "$tmp/upload_cens.$pass")"
    [ -n "$cid" ] && [ "$cid" != null ]
    jq -e '.censored == 50 and .budget == 1274' "$tmp/upload_cens.$pass" >/dev/null

    echo "== ($pass) censored fit (expect 200 via the survival estimators, not 409)"
    code="$(curl -sS -o "$tmp/fit_cens.$pass" -w '%{http_code}' \
        -d "{\"id\":\"$cid\"}" "$base/v1/fit")"
    [ "$code" = 200 ] || { echo "censored fit returned $code: $(cat "$tmp/fit_cens.$pass")" >&2; exit 1; }
    jq -e '
        .best.estimator == "censored-mle"
        and .best.censored_fraction == 0.25
        and .best.mean > 0
        and ([.candidates[] | select(.accepted)] | length >= 1)
    ' "$tmp/fit_cens.$pass" >/dev/null

    echo "== ($pass) censored predict (numeric sanity)"
    curl -fsS "$base/v1/predict?id=$cid&cores=16,64,256&quantile=0.5" \
        >"$tmp/predict_cens.$pass"
    jq -e '
        (.speedups | length) == 3
        and ([.speedups[].speedup] | . == (sort) and .[0] > 1)
        and ([.speedups[] | select(.min_expectation <= 0)] | length == 0)
        and .quantiles[0].value > 0
        and .model.estimator == "censored-mle"
    ' "$tmp/predict_cens.$pass" >/dev/null

    echo "== ($pass) error mapping (unknown id -> 404)"
    code="$(curl -sS -o /dev/null -w '%{http_code}' \
        -d '{"id":"c0000000000000000"}' "$base/v1/fit")"
    [ "$code" = 404 ]
}

echo "== starting lvserve on port $port"
start_daemon
pipeline first
echo "== restarting daemon"
stop_daemon
start_daemon
pipeline second
stop_daemon

echo "== byte-stability across restarts"
cmp "$tmp/fit.first" "$tmp/fit.second"
cmp "$tmp/predict.first" "$tmp/predict.second"
cmp "$tmp/fit_cens.first" "$tmp/fit_cens.second"
cmp "$tmp/predict_cens.first" "$tmp/predict_cens.second"

echo "serve smoke: OK"
