#!/bin/sh
# Benchmark trajectory tooling.
#
# Record mode — run the full suite with -benchmem and write both the
# raw `go test` output (BENCH_<n>.txt) and a parsed JSON summary
# (BENCH_<n>.json) so future perf PRs have a trajectory to compare
# against:
#
#   scripts/bench.sh [index] [benchtime]
#
# Defaults: index 1, benchtime 1x (a smoke pass; use e.g. `bench.sh 2
# 0.25s` for statistically meaningful numbers).
#
# Compare mode — the CI bench-regression gate. Re-runs the ablation
# kernels and compares each ablation *ratio* (slow variant ns/op over
# fast variant ns/op — the speed-up the optimisation buys) against the
# committed baseline, failing when a ratio regressed by more than 25%.
# Ratios rather than absolute ns/op, because the baseline was recorded
# on different hardware than the CI runner; the advantage of an
# optimisation over its ablation is the machine-portable signal:
#
#   scripts/bench.sh compare [baseline.json] [benchtime]
#
# Defaults: the highest-index committed BENCH_<n>.json, benchtime
# 0.25s (1x timings are too noisy to gate on).
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "compare" ]; then
    baseline="${2:-}"
    benchtime="${3:-0.25s}"
    if [ -z "$baseline" ]; then
        baseline="$(ls BENCH_*.json | sort -t_ -k2 -n | tail -1)"
    fi
    [ -f "$baseline" ] || { echo "bench.sh: no baseline $baseline" >&2; exit 1; }
    echo "comparing ablation ratios against $baseline (benchtime $benchtime)"

    current="$(mktemp)"
    trap 'rm -f "$current"' EXIT
    go test -run='^$' -bench=BenchmarkAblation -benchtime="$benchtime" ./... | tee "$current"

    # Baseline pairs: "name ns_per_op", one benchmark per line.
    base_pairs="$(sed -n 's/.*"name": "\(BenchmarkAblation[^"]*\)".*"ns_per_op": \([0-9.e+]*\).*/\1 \2/p' "$baseline")"

    printf '%s\n' "$base_pairs" | awk -v currentfile="$current" '
    # Collect baseline ns/op per benchmark (stdin), stripping the
    # -GOMAXPROCS suffix a multi-core recording machine appends so
    # baselines recorded anywhere line up.
    { name = $1; sub(/-[0-9]+$/, "", name); base[name] = $2 }
    END {
        # Collect current ns/op, stripping the -GOMAXPROCS suffix so
        # runs from machines with different core counts line up.
        while ((getline line < currentfile) > 0) {
            n = split(line, f, /[ \t]+/)
            if (f[1] !~ /^BenchmarkAblation/ || n < 3) continue
            name = f[1]; sub(/-[0-9]+$/, "", name)
            cur[name] = f[3]
        }
        # Group by the parent benchmark (the part before the "/"):
        # each ablation has exactly one fast and one slow variant, so
        # the group ratio is max/min.
        for (name in base) {
            g = name; sub(/\/.*/, "", g)
            if (!(g in bmin) || base[name] < bmin[g]) bmin[g] = base[name]
            if (!(g in bmax) || base[name] > bmax[g]) bmax[g] = base[name]
            if (!(name in cur)) { missing = missing " " name; continue }
            if (!(g in cmin) || cur[name] < cmin[g]) cmin[g] = cur[name]
            if (!(g in cmax) || cur[name] > cmax[g]) cmax[g] = cur[name]
        }
        if (missing != "") {
            printf "FAIL: benchmarks in baseline but not in this run:%s\n", missing
            exit 1
        }
        fails = 0
        printf "\n%-44s %12s %12s %10s\n", "ablation", "base ratio", "now ratio", "verdict"
        for (g in bmin) {
            if (!(g in cmin)) continue
            br = bmax[g] / bmin[g]; cr = cmax[g] / cmin[g]
            verdict = "ok"
            # The optimisation must keep at least 75% of its recorded
            # advantage over the ablated variant.
            if (cr < 0.75 * br) { verdict = "REGRESSED"; fails++ }
            printf "%-44s %12.1f %12.1f %10s\n", g, br, cr, verdict
        }
        if (fails > 0) {
            printf "\nFAIL: %d ablation ratio(s) regressed by more than 25%%\n", fails
            exit 1
        }
        print "\nbench compare: OK"
    }'
    exit 0
fi

idx="${1:-1}"
benchtime="${2:-1x}"

raw="BENCH_${idx}.txt"
json="BENCH_${idx}.json"

go test -run='^$' -bench=. -benchmem -benchtime="$benchtime" ./... | tee "$raw"

# Parse `BenchmarkName-P  iters  ns/op [B/op allocs/op]` lines to JSON.
awk -v benchtime="$benchtime" '
BEGIN { n = 0 }
$1 ~ /^Benchmark/ && $3 == "ns/op" || ($1 ~ /^Benchmark/ && NF >= 4) {
    name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n > 0) printf(",\n")
    printf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (bytes != "") printf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") printf(", \"allocs_per_op\": %s", allocs)
    printf("}")
    n++
}
END { print "" }
' "$raw" > /tmp/bench_rows.$$

{
    printf '{\n  "benchtime": "%s",\n  "go": "%s",\n  "benchmarks": [\n' \
        "$benchtime" "$(go env GOVERSION)"
    cat /tmp/bench_rows.$$
    printf '  ]\n}\n'
} > "$json"
rm -f /tmp/bench_rows.$$

echo "wrote $raw and $json"
