#!/bin/sh
# Record a benchmark baseline: run the full suite with -benchmem and
# write both the raw `go test` output (BENCH_<n>.txt) and a parsed
# JSON summary (BENCH_<n>.json) so future perf PRs have a trajectory
# to compare against.
#
#   scripts/bench.sh [index] [benchtime]
#
# Defaults: index 1, benchtime 1x (a smoke pass; use e.g. `bench.sh 2
# 1s` for statistically meaningful numbers).
set -eu

idx="${1:-1}"
benchtime="${2:-1x}"
cd "$(dirname "$0")/.."

raw="BENCH_${idx}.txt"
json="BENCH_${idx}.json"

go test -run='^$' -bench=. -benchmem -benchtime="$benchtime" ./... | tee "$raw"

# Parse `BenchmarkName-P  iters  ns/op [B/op allocs/op]` lines to JSON.
awk -v benchtime="$benchtime" '
BEGIN { n = 0 }
$1 ~ /^Benchmark/ && $3 == "ns/op" || ($1 ~ /^Benchmark/ && NF >= 4) {
    name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n > 0) printf(",\n")
    printf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (bytes != "") printf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") printf(", \"allocs_per_op\": %s", allocs)
    printf("}")
    n++
}
END { print "" }
' "$raw" > /tmp/bench_rows.$$

{
    printf '{\n  "benchtime": "%s",\n  "go": "%s",\n  "benchmarks": [\n' \
        "$benchtime" "$(go env GOVERSION)"
    cat /tmp/bench_rows.$$
    printf '  ]\n}\n'
} > "$json"
rm -f /tmp/bench_rows.$$

echo "wrote $raw and $json"
