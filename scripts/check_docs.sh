#!/bin/sh
# Keep the documentation honest: every fenced ```go block in README.md
# must be a complete program that compiles against the current public
# API (each block is extracted into its own scratch module that
# `replace`s lasvegas with this checkout), and every relative markdown
# link in README.md, ROADMAP.md and docs/ must point at a file that
# exists. CI runs this on every push (the docs job).
#
#   scripts/check_docs.sh
set -eu

cd "$(dirname "$0")/.."
repo="$(pwd)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM

echo "== extracting fenced go blocks from README.md"
awk -v dir="$tmp" '
    /^```go$/ { n++; path = dir "/snippet" n; system("mkdir -p \"" path "\""); inblock = 1; next }
    /^```/    { inblock = 0; next }
    inblock   { print > (path "/main.go") }
' README.md

count=0
for d in "$tmp"/snippet*; do
    [ -d "$d" ] || continue
    count=$((count + 1))
    cat >"$d/go.mod" <<EOF
module readme.snippet

go 1.24

require lasvegas v0.0.0

replace lasvegas => $repo
EOF
    echo "== building README go block $count"
    if ! (cd "$d" && go build ./...); then
        echo "README.md go block $count does not compile:" >&2
        sed 's/^/    /' "$d/main.go" >&2
        exit 1
    fi
done
if [ "$count" = 0 ]; then
    echo "README.md has no fenced go blocks — nothing guards the quickstart" >&2
    exit 1
fi

echo "== checking relative markdown links (README.md, ROADMAP.md, docs/)"
fail=0
for f in README.md ROADMAP.md docs/*.md; do
    [ -f "$f" ] || continue
    base="$(dirname "$f")"
    # Extract every markdown link target "](...)"; external URLs and
    # pure fragments are out of scope, everything else must resolve
    # relative to the file (or the repo root, for root-anchored docs).
    for target in $(grep -o '\]([^)]*)' "$f" | sed 's/^\](//; s/)$//'); do
        case "$target" in
        http://* | https://* | mailto:* | \#*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$base/$path" ] && [ ! -e "$path" ]; then
            echo "broken link in $f: ($target)" >&2
            fail=1
        fi
    done
done
[ "$fail" = 0 ] || exit 1

echo "docs check: OK ($count go block(s) compiled, links resolve)"
