#!/bin/sh
# Chaos drills for the lvserve replica group. Two passes share the
# same three-replica, k=2 topology; CHAOS_PASS picks one:
#
# kill-restart (the default): run the loadgen mixed workload against
# all three replicas, kill -9 one replica a third of the way through,
# restart it at two thirds, and gate on the group's availability
# contract —
#
#   * loadgen exits 0: zero failed requests after client-side retries,
#     the p99 budget holds, and the -metrics-check gate passes (every
#     replica's /v1/metrics exposes every promised telemetry family
#     and the server-side sketch p99 is positive and consistent with
#     the client-observed p99);
#   * loadgen -verify exits 0: every hint queue drains, every campaign
#     re-uploads to its stable content id (zero lost campaigns), and
#     all three replicas answer every fit/predict byte-identically —
#     the restarted replica converged.
#
# converge (CHAOS_PASS=converge): prove the anti-entropy exchanger
# heals what hinted handoff cannot. Seed one working set with all
# replicas up, kill -9 replica 1, write a second working set past it
# (its copies are only promises in the survivors' hint logs), then
# kill the survivors and delete their hint logs before restarting
# everyone — the promises are gone, so the only way replica 1 can get
# its missing copies is the background digest exchange. The gate is
# loadgen -wait-converged, which polls /v1/healthz and nothing else
# (no campaign read ever fires, so read-repair cannot help), requiring
# every hint queue empty and exactly (2 × campaigns × 2) resident
# copies, plus healthz proof that replica 1 pulled via anti-entropy;
# then -verify on both working sets requires byte-identical answers
# from every replica.
#
#   scripts/serve_chaos.sh [port]
#
# Uses three consecutive ports starting at [port]. Env knobs (the CI
# run is small; `make loadgen` turns them up):
#
#   CHAOS_PASS         kill-restart | converge  (default kill-restart)
#   CHAOS_DURATION     load duration            (default 12s)
#   CHAOS_CAMPAIGNS    synthetic working set    (default 8)
#   CHAOS_CONCURRENCY  loadgen workers          (default 6)
#   CHAOS_P99          p99 latency budget       (default 5s)
#   ARTIFACTS_DIR      keep per-replica JSON logs, /v1/metrics
#                      snapshots and loadgen reports here (default:
#                      the drill's temp dir, removed on exit)
set -eu

port="${1:-18090}"
pass="${CHAOS_PASS:-kill-restart}"
duration="${CHAOS_DURATION:-12s}"
campaigns="${CHAOS_CAMPAIGNS:-8}"
concurrency="${CHAOS_CONCURRENCY:-6}"
p99="${CHAOS_P99:-5s}"
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
logs="${ARTIFACTS_DIR:-$tmp}"
mkdir -p "$logs"
pid0=""
pid1=""
pid2=""
loadpid=""

cleanup() {
    status=$?
    for p in "$pid0" "$pid1" "$pid2" "$loadpid"; do
        if [ -n "$p" ]; then
            kill "$p" 2>/dev/null || true
            wait "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$tmp"
    exit $status
}
trap cleanup EXIT INT TERM

echo "== building lvserve and loadgen"
go build -o "$tmp/lvserve" ./cmd/lvserve
go build -o "$tmp/loadgen" ./scripts/loadgen

p0=$port
p1=$((port + 1))
p2=$((port + 2))
peers="http://127.0.0.1:$p0,http://127.0.0.1:$p1,http://127.0.0.1:$p2"

# The converge pass leans on a fast exchanger; the kill-restart pass
# keeps the default cadence (its healing is handoff plus read-repair).
aeint="0s"
[ "$pass" = converge ] && aeint="1s"

# start_replica <slot> — boots replica <slot>/3 on its port with its
# own data dir; records the pid in $pid<slot>.
start_replica() {
    i="$1"
    eval "p=\$p$i"
    # JSON logs: the per-replica artifact is machine-parseable, and a
    # grep for any trace ID reconstructs a request's whole fan-out.
    "$tmp/lvserve" -addr "127.0.0.1:$p" -data-dir "$tmp/data$i" \
        -replica "$i/3" -replication-factor 2 -peers "$peers" \
        -anti-entropy-interval "$aeint" -log-format json \
        >>"$logs/replica$i.log" 2>&1 &
    eval "pid$i=$!"
}

# scrape_metrics — snapshot every replica's /v1/metrics into the
# artifacts dir, next to its structured log.
scrape_metrics() {
    for i in 0 1 2; do
        eval "p=\$p$i"
        curl -fsS "http://127.0.0.1:$p/v1/metrics" >"$logs/replica$i.metrics" || true
    done
}

wait_healthy() {
    i=0
    until curl -fsS "$1/v1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "replica at $1 did not become healthy; log:" >&2
            cat "$2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "== booting 3 replicas, k=2 ($pass pass)"
start_replica 0
start_replica 1
start_replica 2
wait_healthy "http://127.0.0.1:$p0" "$logs/replica0.log"
wait_healthy "http://127.0.0.1:$p1" "$logs/replica1.log"
wait_healthy "http://127.0.0.1:$p2" "$logs/replica2.log"
curl -fsS "http://127.0.0.1:$p0/v1/healthz" | jq -e '
    .replication_factor == 2 and .hints == 0 and (.peers | length) == 2
' >/dev/null

if [ "$pass" = converge ]; then
    reqs=$((campaigns * 6))

    echo "== working set 1: $campaigns campaigns, all replicas up"
    "$tmp/loadgen" -targets "$peers" -campaigns "$campaigns" \
        -concurrency "$concurrency" -requests "$reqs" -seed 1 \
        >"$logs/load1.json" 2>"$logs/load1.err" ||
        { cat "$logs/load1.json" "$logs/load1.err" >&2; exit 1; }
    cat "$logs/load1.json"

    echo "== chaos: kill -9 replica 1"
    kill -9 "$pid1"
    wait "$pid1" 2>/dev/null || true
    pid1=""

    echo "== working set 2 written past the dead replica (its copies are hints)"
    "$tmp/loadgen" -targets "http://127.0.0.1:$p0,http://127.0.0.1:$p2" \
        -campaigns "$campaigns" -concurrency "$concurrency" -requests "$reqs" -seed 2 \
        >"$logs/load2.json" 2>"$logs/load2.err" ||
        { cat "$logs/load2.json" "$logs/load2.err" >&2; exit 1; }
    cat "$logs/load2.json"

    echo "== chaos: vaporize the survivors' hint logs (kill -9, rm, restart)"
    # rm on the live processes would be theater — the open fd and the
    # in-memory queues would survive it. Kill first, then delete, then
    # restart: the redelivery promises are genuinely gone.
    kill -9 "$pid0"
    wait "$pid0" 2>/dev/null || true
    pid0=""
    kill -9 "$pid2"
    wait "$pid2" 2>/dev/null || true
    pid2=""
    rm -f "$tmp/data0/hints.log" "$tmp/data2/hints.log"
    start_replica 0
    start_replica 2
    wait_healthy "http://127.0.0.1:$p0" "$logs/replica0.log"
    wait_healthy "http://127.0.0.1:$p2" "$logs/replica2.log"
    start_replica 1
    wait_healthy "http://127.0.0.1:$p1" "$logs/replica1.log"

    echo "== gate: anti-entropy alone must restore every missing copy"
    # Two disjoint working sets, k = 2 owners each: the exact resident
    # total once nothing is missing. -wait-converged never touches a
    # campaign endpoint, so the copies it observes arriving cannot have
    # been read-repaired into place.
    expected=$((2 * campaigns * 2))
    "$tmp/loadgen" -targets "$peers" -wait-converged \
        -expect-copies "$expected" -converge-timeout 60s >"$logs/converge.json"
    cat "$logs/converge.json"
    jq -e '.converged == true and .anti_entropy_pulled >= 1' "$logs/converge.json" >/dev/null

    echo "== gate: the healed replica pulled its copies itself"
    curl -fsS "http://127.0.0.1:$p1/v1/healthz" | jq -e '
        .hints == 0 and .anti_entropy.pulled >= 1 and .anti_entropy.rounds >= 1
    ' >/dev/null

    echo "== verify: byte-identical answers for both working sets"
    "$tmp/loadgen" -targets "$peers" -campaigns "$campaigns" -seed 1 \
        -verify -converge-timeout 60s >"$logs/verify1.json"
    cat "$logs/verify1.json"
    "$tmp/loadgen" -targets "$peers" -campaigns "$campaigns" -seed 2 \
        -verify -converge-timeout 60s >"$logs/verify2.json"
    cat "$logs/verify2.json"

    scrape_metrics
    echo "serve chaos (converge): OK"
    exit 0
fi

echo "== loadgen: $duration of mixed load, $concurrency workers, $campaigns campaigns"
# -metrics-check gates the drill on the telemetry contract too: after
# the load, every replica's /v1/metrics must expose every promised
# family, and the fleet-max server-side sketch p99 must be positive
# and consistent with the client-observed p99.
"$tmp/loadgen" -targets "$peers" -campaigns "$campaigns" \
    -concurrency "$concurrency" -duration "$duration" -p99 "$p99" \
    -metrics-check \
    >"$logs/loadgen.json" 2>"$logs/loadgen.err" &
loadpid=$!

# Sleep fractions of the load window; POSIX sh lacks float math, so
# the thirds come from the duration's numeric seconds.
secs="${duration%s}"
third=$((secs / 3))
[ "$third" -ge 1 ] || third=1

sleep "$third"
echo "== chaos: kill -9 replica 1 (survivors must absorb the load)"
kill -9 "$pid1"
wait "$pid1" 2>/dev/null || true
pid1=""

sleep "$third"
echo "== chaos: restarting replica 1 on its old data dir"
start_replica 1
wait_healthy "http://127.0.0.1:$p1" "$logs/replica1.log"

echo "== waiting for loadgen"
if ! wait "$loadpid"; then
    loadpid=""
    echo "loadgen failed:" >&2
    cat "$logs/loadgen.json" "$logs/loadgen.err" >&2
    exit 1
fi
loadpid=""
cat "$logs/loadgen.json"

# The kill must actually have been felt mid-load — a drill whose
# window missed the workload proves nothing.
jq -e '.requests > 0' "$logs/loadgen.json" >/dev/null

echo "== verify: convergence, zero lost campaigns, byte-identical answers"
"$tmp/loadgen" -targets "$peers" -campaigns "$campaigns" \
    -verify -converge-timeout 60s >"$logs/verify.json"
cat "$logs/verify.json"

echo "== restarted replica replayed its log and drained to zero hints"
curl -fsS "http://127.0.0.1:$p1/v1/healthz" | jq -e '
    .durable == true and .hints == 0 and .campaigns > 0
' >/dev/null

scrape_metrics
echo "serve chaos: OK"
