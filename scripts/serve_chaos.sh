#!/bin/sh
# Chaos drill for the lvserve replica group: boot three replicas with
# -replication-factor 2, run the loadgen mixed workload against all of
# them, kill -9 one replica a third of the way through, restart it at
# two thirds, and gate on the group's availability contract —
#
#   * loadgen exits 0: zero failed requests after client-side retries
#     and the p99 budget holds;
#   * loadgen -verify exits 0: every hint queue drains, every campaign
#     re-uploads to its stable content id (zero lost campaigns), and
#     all three replicas answer every fit/predict byte-identically —
#     the restarted replica converged.
#
#   scripts/serve_chaos.sh [port]
#
# Uses three consecutive ports starting at [port]. Env knobs (the CI
# run is small; `make loadgen` turns them up):
#
#   CHAOS_DURATION     load duration            (default 12s)
#   CHAOS_CAMPAIGNS    synthetic working set    (default 8)
#   CHAOS_CONCURRENCY  loadgen workers          (default 6)
#   CHAOS_P99          p99 latency budget       (default 5s)
set -eu

port="${1:-18090}"
duration="${CHAOS_DURATION:-12s}"
campaigns="${CHAOS_CAMPAIGNS:-8}"
concurrency="${CHAOS_CONCURRENCY:-6}"
p99="${CHAOS_P99:-5s}"
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
pid0=""
pid1=""
pid2=""
loadpid=""

cleanup() {
    status=$?
    for p in "$pid0" "$pid1" "$pid2" "$loadpid"; do
        if [ -n "$p" ]; then
            kill "$p" 2>/dev/null || true
            wait "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$tmp"
    exit $status
}
trap cleanup EXIT INT TERM

echo "== building lvserve and loadgen"
go build -o "$tmp/lvserve" ./cmd/lvserve
go build -o "$tmp/loadgen" ./scripts/loadgen

p0=$port
p1=$((port + 1))
p2=$((port + 2))
peers="http://127.0.0.1:$p0,http://127.0.0.1:$p1,http://127.0.0.1:$p2"

# start_replica <slot> — boots replica <slot>/3 on its port with its
# own data dir; records the pid in $pid<slot>.
start_replica() {
    i="$1"
    eval "p=\$p$i"
    "$tmp/lvserve" -addr "127.0.0.1:$p" -data-dir "$tmp/data$i" \
        -replica "$i/3" -replication-factor 2 -peers "$peers" \
        >>"$tmp/replica$i.log" 2>&1 &
    eval "pid$i=$!"
}

wait_healthy() {
    i=0
    until curl -fsS "$1/v1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "replica at $1 did not become healthy; log:" >&2
            cat "$2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "== booting 3 replicas, k=2"
start_replica 0
start_replica 1
start_replica 2
wait_healthy "http://127.0.0.1:$p0" "$tmp/replica0.log"
wait_healthy "http://127.0.0.1:$p1" "$tmp/replica1.log"
wait_healthy "http://127.0.0.1:$p2" "$tmp/replica2.log"
curl -fsS "http://127.0.0.1:$p0/v1/healthz" | jq -e '
    .replication_factor == 2 and .hints == 0 and (.peers | length) == 2
' >/dev/null

echo "== loadgen: $duration of mixed load, $concurrency workers, $campaigns campaigns"
"$tmp/loadgen" -targets "$peers" -campaigns "$campaigns" \
    -concurrency "$concurrency" -duration "$duration" -p99 "$p99" \
    >"$tmp/loadgen.json" 2>"$tmp/loadgen.err" &
loadpid=$!

# Sleep fractions of the load window; POSIX sh lacks float math, so
# the thirds come from the duration's numeric seconds.
secs="${duration%s}"
third=$((secs / 3))
[ "$third" -ge 1 ] || third=1

sleep "$third"
echo "== chaos: kill -9 replica 1 (survivors must absorb the load)"
kill -9 "$pid1"
wait "$pid1" 2>/dev/null || true
pid1=""

sleep "$third"
echo "== chaos: restarting replica 1 on its old data dir"
start_replica 1
wait_healthy "http://127.0.0.1:$p1" "$tmp/replica1.log"

echo "== waiting for loadgen"
if ! wait "$loadpid"; then
    loadpid=""
    echo "loadgen failed:" >&2
    cat "$tmp/loadgen.json" "$tmp/loadgen.err" >&2
    exit 1
fi
loadpid=""
cat "$tmp/loadgen.json"

# The kill must actually have been felt mid-load — a drill whose
# window missed the workload proves nothing.
jq -e '.requests > 0' "$tmp/loadgen.json" >/dev/null

echo "== verify: convergence, zero lost campaigns, byte-identical answers"
"$tmp/loadgen" -targets "$peers" -campaigns "$campaigns" \
    -verify -converge-timeout 60s >"$tmp/verify.json"
cat "$tmp/verify.json"

echo "== restarted replica replayed its log and drained to zero hints"
curl -fsS "http://127.0.0.1:$p1/v1/healthz" | jq -e '
    .durable == true and .hints == 0 and .campaigns > 0
' >/dev/null

echo "serve chaos: OK"
