package lasvegas_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lasvegas"
)

// TestCampaignGoldenV2RoundTrip: the current schema must load the
// checked-in golden file, survive a write→read round trip untouched,
// and re-serialize byte-identically to the golden bytes.
func TestCampaignGoldenV2RoundTrip(t *testing.T) {
	path := filepath.Join("testdata", "campaign_v2.json")
	c, err := lasvegas.LoadCampaign(path)
	if err != nil {
		t.Fatal(err)
	}
	want := &lasvegas.Campaign{
		Problem:    "sat-3-120",
		Size:       120,
		Runs:       6,
		Seed:       42,
		Budget:     5000,
		Iterations: []float64{1203, 88, 5000, 764, 5000, 331},
		Seconds:    []float64{0.031, 0.002, 0.125, 0.019, 0.127, 0.008},
		Censored:   []int{2, 4},
		Metadata:   map[string]string{"host": "ci", "solver": "walksat"},
	}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("loaded campaign mismatch:\ngot  %+v\nwant %+v", c, want)
	}
	if !c.IsCensored() || len(c.Complete()) != 4 {
		t.Fatalf("censoring info lost: censored=%v complete=%d", c.Censored, len(c.Complete()))
	}

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(golden) {
		t.Errorf("serialized campaign diverged from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}

	back, err := lasvegas.ReadCampaign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, c) {
		t.Errorf("round trip changed the campaign:\ngot  %+v\nwant %+v", back, c)
	}
}

// TestCampaignGoldenV1Upgrade: legacy header-less files (schema 1)
// must keep loading, and re-saving upgrades them to the current
// schema without touching the observations.
func TestCampaignGoldenV1Upgrade(t *testing.T) {
	c, err := lasvegas.LoadCampaign(filepath.Join("testdata", "campaign_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Problem != "costas-11" || c.Runs != 5 || c.Seed != 3 {
		t.Fatalf("v1 header mismatch: %+v", c)
	}
	if want := []float64{256, 140, 12, 315, 537}; !reflect.DeepEqual(c.Iterations, want) {
		t.Fatalf("v1 iterations = %v, want %v", c.Iterations, want)
	}
	if c.IsCensored() || c.Size != 0 || c.Metadata != nil {
		t.Fatalf("v1 must load with zero v2 extensions: %+v", c)
	}

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"schema\": 2") {
		t.Errorf("re-saved v1 campaign not upgraded to schema 2:\n%s", buf.String())
	}
	back, err := lasvegas.ReadCampaign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Iterations, c.Iterations) || back.Problem != c.Problem {
		t.Errorf("v1→v2 upgrade changed data: %+v", back)
	}
}

// TestCampaignSchemaTooNew: files from a future release must be
// refused with the typed ErrSchema.
func TestCampaignSchemaTooNew(t *testing.T) {
	_, err := lasvegas.ReadCampaign(strings.NewReader(
		`{"schema": 99, "problem": "x", "runs": 1, "seed": 1, "iterations": [1]}`))
	if !errors.Is(err, lasvegas.ErrSchema) {
		t.Fatalf("want ErrSchema, got %v", err)
	}
}

// TestCampaignValidation: empty campaigns and out-of-range censoring
// indices are rejected at load time.
func TestCampaignValidation(t *testing.T) {
	if _, err := lasvegas.ReadCampaign(strings.NewReader(
		`{"problem": "x", "runs": 0, "seed": 1, "iterations": []}`)); !errors.Is(err, lasvegas.ErrEmptyCampaign) {
		t.Errorf("empty campaign: want ErrEmptyCampaign, got %v", err)
	}
	if _, err := lasvegas.ReadCampaign(strings.NewReader(
		`{"schema": 2, "problem": "x", "runs": 1, "seed": 1, "iterations": [5], "censored": [7]}`)); err == nil {
		t.Error("out-of-range censored index accepted")
	}
}

// TestCampaignCSVRoundTrip: the CSV sidecar format preserves
// iterations, seconds and censoring flags.
func TestCampaignCSVRoundTrip(t *testing.T) {
	c := &lasvegas.Campaign{
		Problem:    "ms-6",
		Runs:       3,
		Iterations: []float64{10, 20, 30},
		Seconds:    []float64{0.1, 0.2, 0.3},
		Censored:   []int{1},
	}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := lasvegas.ReadCampaignCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Iterations, c.Iterations) ||
		!reflect.DeepEqual(back.Seconds, c.Seconds) ||
		!reflect.DeepEqual(back.Censored, c.Censored) {
		t.Errorf("CSV round trip mismatch: %+v", back)
	}
	// Legacy three-column CSV (no censored flag) still parses.
	legacy := "run,iterations,seconds\n0,5,0.5\n1,6,0.6\n"
	old, err := lasvegas.ReadCampaignCSV(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old.Iterations, []float64{5, 6}) || old.IsCensored() {
		t.Errorf("legacy CSV mismatch: %+v", old)
	}
}
