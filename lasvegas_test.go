// End-to-end tests of the public Campaign → Fit → Predict surface —
// the same path every CLI and example takes.
package lasvegas_test

import (
	"context"
	"errors"
	"testing"

	"lasvegas"
)

func collectCostas(t *testing.T, opts ...lasvegas.Option) (*lasvegas.Predictor, *lasvegas.Campaign) {
	t.Helper()
	p := lasvegas.New(append([]lasvegas.Option{
		lasvegas.WithRuns(80), lasvegas.WithSeed(11),
	}, opts...)...)
	c, err := p.Collect(context.Background(), lasvegas.Costas, 10)
	if err != nil {
		t.Fatal(err)
	}
	return p, c
}

func TestPipelineCollectFitPredict(t *testing.T) {
	p, c := collectCostas(t)
	if c.Problem == "" || c.Runs != 80 || len(c.Iterations) != 80 {
		t.Fatalf("campaign malformed: %+v", c)
	}
	if c.Size != 10 || c.IsCensored() {
		t.Fatalf("campaign metadata wrong: size=%d censored=%v", c.Size, c.Censored)
	}

	m, err := p.Fit(c)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Accepted() {
		t.Error("Fit returned a rejected model")
	}
	if _, ok := m.GoodnessOfFit(); !ok {
		t.Error("fitted model lost its KS verdict")
	}
	g16, err := m.Speedup(16)
	if err != nil {
		t.Fatal(err)
	}
	g256, err := m.Speedup(256)
	if err != nil {
		t.Fatal(err)
	}
	if !(g16 > 1) || !(g256 > g16) {
		t.Errorf("speed-up not increasing: G(16)=%v G(256)=%v", g16, g256)
	}
	z16, err := m.MinExpectation(16)
	if err != nil {
		t.Fatal(err)
	}
	if !(z16 < m.Mean()) {
		t.Errorf("E[Z(16)]=%v not below E[Y]=%v", z16, m.Mean())
	}
	if q := m.Quantile(0.5); !(q > 0) {
		t.Errorf("median quantile %v", q)
	}

	// Plug-in model from the same campaign tracks the parametric one
	// within a loose factor at small n.
	plug, err := p.PlugIn(c)
	if err != nil {
		t.Fatal(err)
	}
	if plug.Family() != lasvegas.Empirical {
		t.Errorf("plug-in family %q", plug.Family())
	}
	pg16, err := plug.Speedup(16)
	if err != nil {
		t.Fatal(err)
	}
	if pg16 < g16/3 || pg16 > g16*3 {
		t.Errorf("plug-in G(16)=%v far from parametric %v", pg16, g16)
	}

	// Curve honours the context.
	pts, err := m.Curve(context.Background(), []int{2, 4, 8})
	if err != nil || len(pts) != 3 {
		t.Fatalf("curve: %v %v", pts, err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Curve(cancelled, []int{2}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled curve error = %v", err)
	}
}

func TestCollectDeterministic(t *testing.T) {
	_, c1 := collectCostas(t)
	_, c2 := collectCostas(t, lasvegas.WithWorkers(1))
	for i := range c1.Iterations {
		if c1.Iterations[i] != c2.Iterations[i] {
			t.Fatalf("run %d: parallel %v vs serial %v", i, c1.Iterations[i], c2.Iterations[i])
		}
	}
}

func TestCensoredCampaign(t *testing.T) {
	p := lasvegas.New(lasvegas.WithRuns(30), lasvegas.WithSeed(4), lasvegas.WithBudget(3))
	c, err := p.Collect(context.Background(), lasvegas.Costas, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsCensored() {
		t.Skip("3-iteration budget produced no censored runs (unexpected but possible)")
	}
	if c.Budget != 3 {
		t.Errorf("budget %d not recorded", c.Budget)
	}
	if _, err := p.Fit(c); !errors.Is(err, lasvegas.ErrCensored) {
		t.Errorf("Fit on censored campaign: want ErrCensored, got %v", err)
	}
	if _, err := p.PlugIn(c); !errors.Is(err, lasvegas.ErrCensored) {
		t.Errorf("PlugIn on censored campaign: want ErrCensored, got %v", err)
	}
	if _, err := p.SimulateSpeedups(c, []int{4}); !errors.Is(err, lasvegas.ErrCensored) {
		t.Errorf("SimulateSpeedups on censored campaign: want ErrCensored, got %v", err)
	}
	if got := len(c.Complete()) + len(c.Censored); got != len(c.Iterations) {
		t.Errorf("complete+censored=%d, want %d", got, len(c.Iterations))
	}
}

func TestSATCollectAndRace(t *testing.T) {
	p := lasvegas.New(lasvegas.WithRuns(40), lasvegas.WithSeed(9))
	c, err := p.Collect(context.Background(), lasvegas.SAT3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if c.Problem != "sat-3-50" || len(c.Iterations) != 40 {
		t.Fatalf("sat campaign malformed: %+v", c)
	}
	for i, x := range c.Iterations {
		if !(x > 0) {
			t.Fatalf("run %d: non-positive flips %v", i, x)
		}
	}
	out, err := p.Race(context.Background(), lasvegas.SAT3, 50, 4, 123)
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner < 0 || out.Winner >= 4 || out.Iterations < 1 {
		t.Errorf("race outcome %+v", out)
	}
}

func TestUnknownProblem(t *testing.T) {
	p := lasvegas.New()
	if _, err := p.Collect(context.Background(), lasvegas.Problem("tsp"), 10); !errors.Is(err, lasvegas.ErrUnknownProblem) {
		t.Errorf("want ErrUnknownProblem, got %v", err)
	}
	if _, err := lasvegas.ParseSizes("tsp=3"); !errors.Is(err, lasvegas.ErrUnknownProblem) {
		t.Errorf("ParseSizes: want ErrUnknownProblem, got %v", err)
	}
}

func TestNoAcceptableFit(t *testing.T) {
	// A bimodal two-atom sample fits no continuous family.
	c := &lasvegas.Campaign{Problem: "synthetic", Runs: 40}
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			c.Iterations = append(c.Iterations, 1)
		} else {
			c.Iterations = append(c.Iterations, 1e6)
		}
	}
	p := lasvegas.New()
	if _, err := p.Fit(c); !errors.Is(err, lasvegas.ErrNoAcceptableFit) {
		t.Errorf("want ErrNoAcceptableFit, got %v", err)
	}
}

func TestParseCores(t *testing.T) {
	cores, err := lasvegas.ParseCores("16, 32,64")
	if err != nil {
		t.Fatal(err)
	}
	if len(cores) != 3 || cores[0] != 16 || cores[2] != 64 {
		t.Errorf("cores = %v", cores)
	}
	if _, err := lasvegas.ParseCores("16,zero"); err == nil {
		t.Error("bad core count accepted")
	}
	sizes, err := lasvegas.ParseSizes("costas=11, magic-square=5")
	if err != nil {
		t.Fatal(err)
	}
	if sizes[lasvegas.Costas] != 11 || sizes[lasvegas.MagicSquare] != 5 {
		t.Errorf("sizes = %v", sizes)
	}
}
