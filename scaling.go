package lasvegas

import (
	"fmt"

	"lasvegas/internal/extrapolate"
)

// SizeFit records the accepted fit at one training size of a scaling
// model.
type SizeFit struct {
	Size int
	Law  string
	KS   GoodnessOfFit
}

// ScalingModel is a runtime-distribution family whose parameters have
// been regressed against instance size — the paper's §8 proposal:
// predict the speed-up of an instance you never ran from campaigns on
// smaller ones.
type ScalingModel struct {
	m     *extrapolate.Model
	alpha float64
}

// LearnScaling learns a scaling model from campaigns at two or more
// distinct sizes (Campaign.Size must be set): every candidate family
// is fitted at every size, and the family accepted everywhere with
// the best worst-case KS p-value wins. Censored campaigns are
// rejected with ErrCensored.
func (p *Predictor) LearnScaling(campaigns ...*Campaign) (*ScalingModel, error) {
	obs := make([]extrapolate.Observation, len(campaigns))
	for i, c := range campaigns {
		sample, err := fitInput(c)
		if err != nil {
			return nil, err
		}
		if c.Size <= 0 {
			return nil, fmt.Errorf("lasvegas: campaign %q has no instance size", c.Problem)
		}
		obs[i] = extrapolate.Observation{Size: c.Size, Sample: sample}
	}
	m, err := extrapolate.Learn(obs, p.cfg.alpha)
	if err != nil {
		return nil, fmt.Errorf("lasvegas: %w", err)
	}
	return &ScalingModel{m: m, alpha: p.cfg.alpha}, nil
}

// Family returns the family stable across every training size.
func (s *ScalingModel) Family() Family { return Family(s.m.Family) }

// WeakestPValue returns the smallest KS p-value among the per-size
// fits — the scaling model's weakest link.
func (s *ScalingModel) WeakestPValue() float64 { return s.m.MinPValue() }

// Fits returns the accepted per-size fits the trends were learned
// from, in increasing size order.
func (s *ScalingModel) Fits() []SizeFit {
	out := make([]SizeFit, len(s.m.Fits))
	for i, f := range s.m.Fits {
		out[i] = SizeFit{Size: f.Size, Law: f.Dist.String(), KS: toGoF(f.KS)}
	}
	return out
}

// ModelAt extrapolates the law to an arbitrary instance size and
// wraps it in a speed-up Model. The model carries no KS verdict —
// nothing was fitted at the target size; that is the point.
func (s *ScalingModel) ModelAt(size int) (*Model, error) {
	d, err := s.m.DistAt(size)
	if err != nil {
		return nil, fmt.Errorf("lasvegas: %w", err)
	}
	return newModel(Family(s.m.Family), d, s.alpha)
}
