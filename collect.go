package lasvegas

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"lasvegas/internal/adaptive"
	"lasvegas/internal/csp"
	"lasvegas/internal/problems"
	"lasvegas/internal/runtimes"
	"lasvegas/internal/sat"
	"lasvegas/internal/xrand"
)

// Collect runs a sequential campaign of the problem's Las Vegas
// solver — Adaptive Search for the CSP families, WalkSAT for SAT3 —
// with the Predictor's runs/seed/workers/budget configuration. Runs
// use independent random streams split from the seed, so campaigns
// are deterministic for a given configuration regardless of worker
// scheduling. size 0 selects the problem's DefaultSize. ctx cancels
// collection promptly (runs poll it).
//
// With a WithBudget cap, runs that exhaust the budget are recorded as
// censored (Campaign.Censored) rather than failing the campaign —
// the standard censoring treatment for bounded Las Vegas measurements
// (Hoos & Stützle's evaluation methodology).
func (p *Predictor) Collect(ctx context.Context, prob Problem, size int) (*Campaign, error) {
	if !prob.Known() {
		return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownProblem, prob, Problems())
	}
	if t, i := p.cfg.shardTotal, p.cfg.shardIndex; t <= 0 || i < 0 || i >= t {
		return nil, fmt.Errorf("lasvegas: shard %d/%d out of range (want 0 ≤ index < total)", i, t)
	}
	if size <= 0 {
		size = prob.DefaultSize()
	}
	if prob == SAT3 {
		return p.collectSAT(ctx, size)
	}
	return p.collectCSP(ctx, prob, size)
}

// sharded reports whether Collect is restricted to a WithShard block.
func (p *Predictor) sharded() bool { return p.cfg.shardTotal > 1 }

// shardBounds returns the half-open global run-index range
// [lo, hi) of the configured shard.
func (p *Predictor) shardBounds() (lo, hi int) {
	runs, i, t := p.cfg.runs, p.cfg.shardIndex, p.cfg.shardTotal
	return runs * i / t, runs * (i + 1) / t
}

// collectCSP runs Adaptive Search campaigns. The uncensored unsharded
// path delegates to the internal collector so the random streams — and
// therefore every published fixed-seed result — stay bit-identical to
// earlier releases; sharded collection routes through collectRuns,
// whose streams split from the root seed at the same global indices,
// so merged shards still reproduce those results.
func (p *Predictor) collectCSP(ctx context.Context, prob Problem, size int) (*Campaign, error) {
	kind := problems.Kind(prob)
	factory := func() (csp.Problem, error) { return problems.New(kind, size) }
	if _, err := factory(); err != nil {
		return nil, fmt.Errorf("lasvegas: %w", err)
	}
	if p.cfg.budget <= 0 && !p.sharded() {
		c, err := runtimes.Collect(ctx, factory, adaptive.Params{}, p.cfg.runs, p.cfg.seed, p.cfg.workers)
		if err != nil {
			return nil, fmt.Errorf("lasvegas: collect %s-%d: %w", prob, size, err)
		}
		return &Campaign{
			Problem:    c.Problem,
			Size:       size,
			Runs:       c.Runs,
			Seed:       c.Seed,
			Iterations: c.Iterations,
			Seconds:    c.Seconds,
		}, nil
	}
	probe, err := factory()
	if err != nil {
		return nil, fmt.Errorf("lasvegas: %w", err)
	}
	budget := p.cfg.budget
	c, err := p.collectRuns(ctx, probe.Name(), size, func(ctx context.Context, r *xrand.Rand) (runOutcome, error) {
		prb, err := factory()
		if err != nil {
			return runOutcome{}, err
		}
		s, err := adaptive.New(prb, adaptive.Params{MaxIterations: budget})
		if err != nil {
			return runOutcome{}, err
		}
		res := s.RunContext(ctx, r)
		switch {
		case res.Solved:
			return runOutcome{iterations: float64(res.Stats.Iterations)}, nil
		case errors.Is(res.Err, adaptive.ErrInterrupted):
			return runOutcome{}, context.Cause(ctx)
		case budget > 0: // budget exhausted
			return runOutcome{iterations: float64(res.Stats.Iterations), censored: true}, nil
		default:
			if res.Err != nil {
				return runOutcome{}, res.Err
			}
			return runOutcome{}, errors.New("adaptive run stopped without a solution")
		}
	})
	if err != nil {
		return nil, fmt.Errorf("lasvegas: collect %s-%d: %w", prob, size, err)
	}
	return c, nil
}

// collectSAT runs WalkSAT campaigns on one planted random 3-SAT
// instance with `size` variables and ⌊4.2·size⌋ clauses. The formula
// is derived deterministically from the campaign seed; runs vary only
// the solver's random stream, matching the paper's "runtime
// distribution of an instance" setting.
func (p *Predictor) collectSAT(ctx context.Context, size int) (*Campaign, error) {
	clauses := int(satClauseRatio * float64(size))
	f, _, err := sat.RandomPlantedKSAT(size, clauses, 3, xrand.New(p.cfg.seed^0x5A73))
	if err != nil {
		return nil, fmt.Errorf("lasvegas: %w", err)
	}
	budget := p.cfg.budget
	name := fmt.Sprintf("sat-3-%d", size)
	c, err := p.collectRuns(ctx, name, size, func(ctx context.Context, r *xrand.Rand) (runOutcome, error) {
		s, err := sat.NewSolver(f, sat.Params{MaxFlips: budget})
		if err != nil {
			return runOutcome{}, err
		}
		res := s.RunContext(ctx, r)
		switch {
		case res.Solved:
			return runOutcome{iterations: float64(res.Flips)}, nil
		case errors.Is(res.Err, sat.ErrInterrupted):
			return runOutcome{}, context.Cause(ctx)
		case budget > 0:
			return runOutcome{iterations: float64(res.Flips), censored: true}, nil
		default:
			if res.Err != nil {
				return runOutcome{}, res.Err
			}
			return runOutcome{}, errors.New("walksat run stopped without a solution")
		}
	})
	if err != nil {
		return nil, fmt.Errorf("lasvegas: collect %s: %w", name, err)
	}
	return c, nil
}

// runOutcome is the result of one collected run.
type runOutcome struct {
	iterations float64
	censored   bool
}

// collectRuns is the generic campaign engine: runs independent
// repetitions on a bounded worker pool, with per-run streams split
// from the root seed at the run's global index (the same derivation
// as the internal collector, so neither scheduling nor sharding ever
// changes results). With a WithShard restriction only the shard's
// block of the full campaign is executed. It fails fast on the first
// run error or context cancellation.
func (p *Predictor) collectRuns(ctx context.Context, name string, size int,
	runOne func(context.Context, *xrand.Rand) (runOutcome, error)) (*Campaign, error) {
	total := p.cfg.runs
	if total < 1 {
		return nil, fmt.Errorf("%d runs", total)
	}
	lo, hi := p.shardBounds()
	runs := hi - lo
	if runs < 1 {
		return nil, fmt.Errorf("shard %d/%d of %d runs is empty",
			p.cfg.shardIndex, p.cfg.shardTotal, total)
	}
	workers := p.cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	c := &Campaign{
		Problem:    name,
		Size:       size,
		Runs:       runs,
		Seed:       p.cfg.seed,
		Budget:     p.cfg.budget,
		Iterations: make([]float64, runs),
		Seconds:    make([]float64, runs),
	}
	if p.sharded() {
		c.Metadata = map[string]string{
			"lasvegas.shard":      fmt.Sprintf("%d/%d", p.cfg.shardIndex, p.cfg.shardTotal),
			"lasvegas.shard.runs": fmt.Sprintf("%d", total),
		}
	}
	root := xrand.New(p.cfg.seed)
	streams := make([]*xrand.Rand, runs)
	for i := range streams {
		streams[i] = root.Split(uint64(lo + i))
	}
	censored := make([]bool, runs)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= runs {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				start := time.Now()
				out, err := runOne(ctx, streams[i])
				if err != nil {
					fail(fmt.Errorf("run %d: %w", i, err))
					return
				}
				c.Iterations[i] = out.iterations
				c.Seconds[i] = time.Since(start).Seconds()
				censored[i] = out.censored
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for i, cens := range censored {
		if cens {
			c.Censored = append(c.Censored, i)
		}
	}
	return c, nil
}
