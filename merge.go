package lasvegas

import (
	"fmt"
	"strings"

	"lasvegas/internal/sketch"
)

// Merge combines c with additional campaign shards collected on the
// same problem instance — typically the output of `lvseq -shard i/n`
// on different machines — into one pooled campaign, the distributed
// counterpart of the paper's §5.4 single-host measurement step.
//
// Shards must agree on Problem, Size and Budget (ErrMergeMismatch
// otherwise): runtime samples of different instances, or censored at
// different budgets, are not draws of one distribution. Including the
// same WithShard block twice is also ErrMergeMismatch — duplicated
// observations bias every estimator. Observations are concatenated in
// argument order, censoring indices are offset into the pooled
// sample, and per-run Seconds survive only when every shard carries
// them (a shard loaded from CSV has none, and padding with zeros
// would corrupt TimeSummary).
//
// Seed is preserved only when the inputs provably reconstruct one
// deterministic collection: a single input, or shards whose
// "lasvegas.shard" annotations form the complete in-order cover
// 0/n … (n-1)/n of one root seed. Any other pool — partial covers,
// unannotated campaigns, mixed seeds — is a valid i.i.d. sample but
// not a reproducible campaign, so Seed is zeroed. Metadata keeps only
// keys on which every shard agrees (never the reserved
// "lasvegas.shard*" annotations), which makes Merge associative:
// merging shard by shard and merging all at once yield identical
// campaigns.
//
// Sketch-backed shards fold: when any shard carries a quantile
// sketch, the result carries the merge of every shard's sketch
// (capacities must match — ErrMergeMismatch otherwise) alongside the
// concatenated raw runs of the remaining shards, so NDJSON shard
// streams pool exactly like raw shard arrays. While every sketch is
// still exact (≤ k runs per shard) the folded sketch is byte-
// identical to the one a single unsharded stream produces. Censored
// shards cannot pool with sketch-backed ones (ErrMergeMismatch): the
// merged campaign could not represent its censoring.
//
// c itself is not modified; the result shares no slices with the
// inputs.
func (c *Campaign) Merge(shards ...*Campaign) (*Campaign, error) {
	all := make([]*Campaign, 0, 1+len(shards))
	all = append(all, c)
	all = append(all, shards...)
	return MergeCampaigns(all...)
}

// MergeCampaigns pools campaign shards (see Campaign.Merge); it is
// the variadic form used when no shard is distinguished, e.g. the
// lvserve merge endpoint.
func MergeCampaigns(shards ...*Campaign) (*Campaign, error) {
	if len(shards) == 0 {
		return nil, ErrEmptyCampaign
	}
	first := shards[0]
	if first == nil || first.TotalRuns() == 0 {
		return nil, ErrEmptyCampaign
	}
	total := 0
	rawTotal := 0
	seconds := true
	sameSeed := true
	sketched := false
	censored := false
	for i, s := range shards {
		if s == nil || s.TotalRuns() == 0 {
			return nil, fmt.Errorf("%w: shard %d", ErrEmptyCampaign, i)
		}
		if err := s.validate(); err != nil {
			return nil, fmt.Errorf("lasvegas: merge shard %d: %w", i, err)
		}
		if s.Problem != first.Problem {
			return nil, fmt.Errorf("%w: problem %q vs %q", ErrMergeMismatch, s.Problem, first.Problem)
		}
		if s.Size != first.Size {
			return nil, fmt.Errorf("%w: size %d vs %d", ErrMergeMismatch, s.Size, first.Size)
		}
		if s.Budget != first.Budget {
			return nil, fmt.Errorf("%w: budget %d vs %d", ErrMergeMismatch, s.Budget, first.Budget)
		}
		total += s.TotalRuns()
		rawTotal += len(s.Iterations)
		if len(s.Seconds) != len(s.Iterations) {
			seconds = false
		}
		if s.Seed != first.Seed {
			sameSeed = false
		}
		sketched = sketched || s.HasSketch()
		censored = censored || s.IsCensored()
	}
	if sketched && censored {
		return nil, fmt.Errorf("%w: censored shards cannot pool with sketch-backed shards", ErrMergeMismatch)
	}
	cover, err := shardCover(shards)
	if err != nil {
		return nil, err
	}
	m := &Campaign{
		Problem:    first.Problem,
		Size:       first.Size,
		Runs:       total,
		Budget:     first.Budget,
		Iterations: make([]float64, 0, rawTotal),
		Metadata:   commonMetadata(shards),
	}
	if sameSeed && (len(shards) == 1 || cover) {
		m.Seed = first.Seed
	}
	if seconds {
		m.Seconds = make([]float64, 0, rawTotal)
	}
	offset := 0
	for _, s := range shards {
		m.Iterations = append(m.Iterations, s.Iterations...)
		if seconds {
			m.Seconds = append(m.Seconds, s.Seconds...)
		}
		for _, idx := range s.Censored {
			m.Censored = append(m.Censored, offset+idx)
		}
		offset += len(s.Iterations)
	}
	if sketched {
		for _, s := range shards {
			if !s.HasSketch() {
				continue
			}
			if m.Sketch == nil {
				m.Sketch = s.Sketch.Clone()
				continue
			}
			folded, err := sketch.Merge(m.Sketch, s.Sketch)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrMergeMismatch, err)
			}
			m.Sketch = folded
		}
	}
	return m, nil
}

// shardCover inspects the shards' reserved "lasvegas.shard"
// annotations (written by WithShard collection). Including the same
// annotated block twice is an error — the observations would be
// duplicated, not pooled. cover reports whether the shards are the
// complete in-order 0/n … (n-1)/n split of one collection, the only
// case where the merged campaign is the deterministic unsharded
// campaign and may keep its Seed.
func shardCover(shards []*Campaign) (cover bool, err error) {
	type annotation struct {
		index, total int
		runs         string
	}
	anns := make([]annotation, 0, len(shards))
	allAnnotated := true
	for _, s := range shards {
		raw, ok := s.Metadata["lasvegas.shard"]
		if !ok {
			allAnnotated = false
			continue
		}
		var a annotation
		if _, err := fmt.Sscanf(raw, "%d/%d", &a.index, &a.total); err != nil ||
			a.total <= 0 || a.index < 0 || a.index >= a.total {
			allAnnotated = false
			continue
		}
		a.runs = s.Metadata["lasvegas.shard.runs"]
		for _, prev := range anns {
			if prev == a {
				return false, fmt.Errorf("%w: shard %d/%d included twice", ErrMergeMismatch, a.index, a.total)
			}
		}
		anns = append(anns, a)
	}
	if !allAnnotated || len(anns) == 0 || len(anns) != anns[0].total {
		return false, nil
	}
	for i, a := range anns {
		if a.index != i || a.total != anns[0].total || a.runs != anns[0].runs {
			return false, nil
		}
	}
	return true, nil
}

// commonMetadata returns the metadata keys every shard carries with
// an identical value (nil when none survive). The reserved
// "lasvegas.shard*" annotations never survive: the pooled campaign is
// not a shard.
func commonMetadata(shards []*Campaign) map[string]string {
	out := map[string]string{}
	for k, v := range shards[0].Metadata {
		if strings.HasPrefix(k, "lasvegas.shard") {
			continue
		}
		out[k] = v
	}
	for _, s := range shards[1:] {
		for k, v := range out {
			if sv, ok := s.Metadata[k]; !ok || sv != v {
				delete(out, k)
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
