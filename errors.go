package lasvegas

import "errors"

// Typed errors of the public API. Wrapped errors carry detail; test
// with errors.Is.
var (
	// ErrNoAcceptableFit is returned by Predictor.Fit when no candidate
	// family passes the Kolmogorov–Smirnov test at the configured
	// significance level (the paper's §6 rejection outcome, as for the
	// gaussian and Lévy candidates).
	ErrNoAcceptableFit = errors.New("lasvegas: no candidate family passes the KS test")

	// ErrCensored is returned by the fitting methods when the campaign
	// contains censored runs (runs cut off by an iteration budget) and
	// WithCensoredFit is not enabled: the §6 estimators assume fully
	// observed runtimes, so a censored sample would bias every fit
	// toward optimism. With WithCensoredFit enabled the survival
	// estimators absorb the censoring, and ErrCensored remains only
	// for campaigns whose runs are all censored (nothing to anchor an
	// estimate) and for the complete-sample-only paths
	// (SimulateSpeedups, BootstrapCI, LearnScaling).
	ErrCensored = errors.New("lasvegas: campaign contains censored runs")

	// ErrEmptyCampaign reports a campaign without observations.
	ErrEmptyCampaign = errors.New("lasvegas: campaign has no observations")

	// ErrUnknownProblem reports an unregistered problem name.
	ErrUnknownProblem = errors.New("lasvegas: unknown problem")

	// ErrSchema reports a campaign file with an unsupported schema
	// version (written by a newer release).
	ErrSchema = errors.New("lasvegas: unsupported campaign schema")

	// ErrMergeMismatch is returned by Campaign.Merge when shards
	// disagree on problem, size or budget: runtime samples of
	// different instances (or cut off at different budgets) are not
	// draws of one distribution and must not be pooled.
	ErrMergeMismatch = errors.New("lasvegas: campaign shards do not match")

	// ErrNoRawRuns is returned by the paths that need per-run
	// observations — SimulateSpeedups, BootstrapCI, LearnScaling,
	// WriteCSV/WriteNDJSON — when the campaign is sketch-backed and
	// keeps no raw runs. Fit, FitAll, PlugIn and the prediction
	// endpoints accept sketch-backed campaigns.
	ErrNoRawRuns = errors.New("lasvegas: sketch-backed campaign keeps no raw runs")

	// ErrStream reports a malformed NDJSON campaign stream: a missing
	// or unsupported header, a bad record, or a stream whose record
	// count contradicts the header's declared runs (a torn upload).
	ErrStream = errors.New("lasvegas: malformed campaign stream")
)
