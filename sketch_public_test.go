package lasvegas_test

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"lasvegas"
)

// TestCampaignSchemaRatchet locks the version ratchet: campaigns
// without a sketch keep the byte-stable schema-2 wire form (and so
// their content-addressed ids), sketch-backed campaigns write — and
// round-trip through — schema 3.
func TestCampaignSchemaRatchet(t *testing.T) {
	raw := &lasvegas.Campaign{Problem: "x", Runs: 2, Iterations: []float64{3, 1}}
	rawJSON, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rawJSON), `"schema":2`) {
		t.Errorf("raw campaign marshals %s, want schema 2", rawJSON)
	}
	sketched, err := raw.Sketchify(0)
	if err != nil {
		t.Fatal(err)
	}
	skJSON, err := json.Marshal(sketched)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(skJSON), `"schema":3`) || !strings.Contains(string(skJSON), `"sketch"`) {
		t.Errorf("sketch-backed campaign marshals %s, want schema 3 with a sketch", skJSON)
	}
	back := &lasvegas.Campaign{}
	if err := json.Unmarshal(skJSON, back); err != nil {
		t.Fatal(err)
	}
	if back.TotalRuns() != 2 || !back.HasSketch() || len(back.Iterations) != 0 {
		t.Errorf("round-tripped campaign: %d total runs, sketch %v, %d raw",
			back.TotalRuns(), back.HasSketch(), len(back.Iterations))
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(skJSON) {
		t.Errorf("sketch-backed campaign not byte-stable:\n%s\nvs\n%s", again, skJSON)
	}
}

// TestSketchifyAndRuntimeSketch covers the representation helpers: a
// mixed campaign counts raw and sketched runs, RuntimeSketch folds
// both, and Sketchify drops the per-run records.
func TestSketchifyAndRuntimeSketch(t *testing.T) {
	base := &lasvegas.Campaign{Problem: "x", Runs: 3, Iterations: []float64{10, 20, 30}}
	sketched, err := base.Sketchify(0)
	if err != nil {
		t.Fatal(err)
	}
	if sketched.TotalRuns() != 3 || len(sketched.Iterations) != 0 || len(sketched.Seconds) != 0 {
		t.Fatalf("Sketchify: %d total, %d raw, %d seconds", sketched.TotalRuns(), len(sketched.Iterations), len(sketched.Seconds))
	}
	// A mixed campaign: the sketch covers runs NOT in Iterations.
	mixed := &lasvegas.Campaign{
		Problem:    "x",
		Runs:       5,
		Iterations: []float64{40, 50},
		Sketch:     sketched.Sketch,
	}
	if mixed.TotalRuns() != 5 {
		t.Errorf("mixed TotalRuns = %d, want 5", mixed.TotalRuns())
	}
	sk, err := mixed.RuntimeSketch(0)
	if err != nil {
		t.Fatal(err)
	}
	if sk.N() != 5 || sk.Mean() != 30 {
		t.Errorf("mixed RuntimeSketch: n=%d mean=%v, want 5 runs with mean 30", sk.N(), sk.Mean())
	}
	// The stored sketch must not be mutated by the fold.
	if sketched.Sketch.N() != 3 {
		t.Errorf("RuntimeSketch mutated the stored sketch: n=%d", sketched.Sketch.N())
	}

	if _, err := (&lasvegas.Campaign{Problem: "x", Runs: 1, Iterations: []float64{5},
		Censored: []int{0}, Budget: 5}).Sketchify(0); !errors.Is(err, lasvegas.ErrCensored) {
		t.Errorf("Sketchify on a censored campaign: %v, want ErrCensored", err)
	}
	if err := sketched.WriteCSV(nil); !errors.Is(err, lasvegas.ErrNoRawRuns) {
		t.Errorf("WriteCSV on a sketch-only campaign: %v, want ErrNoRawRuns", err)
	}
}

// TestMergeSketchCensoredMismatch: a pooled campaign cannot represent
// censoring flags inside a sketch, so the combination is refused.
func TestMergeSketchCensoredMismatch(t *testing.T) {
	sketched, err := (&lasvegas.Campaign{Problem: "x", Runs: 2, Iterations: []float64{1, 2}}).Sketchify(0)
	if err != nil {
		t.Fatal(err)
	}
	censored := &lasvegas.Campaign{Problem: "x", Runs: 2, Iterations: []float64{5, 5},
		Censored: []int{0}, Budget: 5}
	if _, err := sketched.Merge(censored); !errors.Is(err, lasvegas.ErrMergeMismatch) {
		t.Errorf("sketch × censored merge: %v, want ErrMergeMismatch", err)
	}
}

// TestSketchFitAgreesWithRawFit is the fixture-level acceptance
// criterion: on the committed 200-run Costas-13 campaign — below the
// sketch capacity, so the sketch is exact — the sketch-backed fit
// must select the same family as the raw fit and agree on the model
// up to floating-point summation order.
func TestSketchFitAgreesWithRawFit(t *testing.T) {
	c, err := lasvegas.LoadCampaign("testdata/campaign_costas13.json")
	if err != nil {
		t.Fatal(err)
	}
	sketched, err := c.Sketchify(0)
	if err != nil {
		t.Fatal(err)
	}
	p := lasvegas.New()
	rawModel, err := p.Fit(c)
	if err != nil {
		t.Fatal(err)
	}
	skModel, err := p.Fit(sketched)
	if err != nil {
		t.Fatal(err)
	}
	if skModel.Family() != rawModel.Family() {
		t.Errorf("sketch fit chose %s, raw fit %s", skModel.Family(), rawModel.Family())
	}
	if skModel.Estimator() != lasvegas.EstimatorSketch {
		t.Errorf("sketch fit estimator %q, want %q", skModel.Estimator(), lasvegas.EstimatorSketch)
	}
	relClose := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("%s: sketch %v vs raw %v", name, got, want)
		}
	}
	relClose("mean", skModel.Mean(), rawModel.Mean())
	for _, n := range []int{16, 64, 256} {
		gs, err := skModel.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := rawModel.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		relClose("G(n)", gs, gr)
	}

	// The non-parametric plug-in path: the sketch-backed model carries
	// the QuantileSketch family and the empirical model's numbers.
	rawPlug, err := p.PlugIn(c)
	if err != nil {
		t.Fatal(err)
	}
	skPlug, err := p.PlugIn(sketched)
	if err != nil {
		t.Fatal(err)
	}
	if skPlug.Family() != lasvegas.QuantileSketch {
		t.Errorf("sketch plug-in family %s, want %s", skPlug.Family(), lasvegas.QuantileSketch)
	}
	relClose("plug-in mean", skPlug.Mean(), rawPlug.Mean())
	gs, err := skPlug.Speedup(64)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := rawPlug.Speedup(64)
	if err != nil {
		t.Fatal(err)
	}
	relClose("plug-in G(64)", gs, gr)
}
