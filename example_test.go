package lasvegas_test

import (
	"context"
	"errors"
	"fmt"
	"log"

	"lasvegas"
)

// Shards of one campaign — say, collected on two machines with
// `lvseq -shard 0/2` and `lvseq -shard 1/2` — pool back into the
// exact single-machine campaign, while samples of different instances
// refuse to merge.
func ExampleCampaign_Merge() {
	annotate := func(slot string) map[string]string {
		return map[string]string{
			"lasvegas.shard":      slot,
			"lasvegas.shard.runs": "6",
		}
	}
	shard0 := &lasvegas.Campaign{
		Problem:    "costas-13",
		Runs:       3,
		Seed:       1,
		Iterations: []float64{1200, 845, 3100},
		Metadata:   annotate("0/2"),
	}
	shard1 := &lasvegas.Campaign{
		Problem:    "costas-13",
		Runs:       3,
		Seed:       1,
		Iterations: []float64{560, 1975, 402},
		Metadata:   annotate("1/2"),
	}
	merged, err := shard0.Merge(shard1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d runs, max %v iterations\n",
		merged.Problem, len(merged.Iterations), merged.IterationSummary().Max)

	// A complete in-order shard cover provably reconstructs one
	// deterministic collection, so the pooled campaign keeps its seed.
	fmt.Println("seed preserved:", merged.Seed == 1)

	// Samples of different instances are not draws of one
	// distribution and must not be pooled.
	other := &lasvegas.Campaign{Problem: "costas-14", Runs: 1, Iterations: []float64{77}}
	_, err = shard0.Merge(other)
	fmt.Println("merge mismatch:", errors.Is(err, lasvegas.ErrMergeMismatch))
	// Output:
	// costas-13: 6 runs, max 3100 iterations
	// seed preserved: true
	// merge mismatch: true
}

// Fit runs the paper's §6 model selection on a campaign: every
// candidate family is estimated and KS-tested, and the best accepted
// law comes back as a predictive Model. The fixed seed makes the
// whole pipeline deterministic.
func ExamplePredictor_Fit() {
	p := lasvegas.New(lasvegas.WithRuns(200), lasvegas.WithSeed(1))
	campaign, err := p.Collect(context.Background(), lasvegas.Costas, 13)
	if err != nil {
		log.Fatal(err)
	}
	model, err := p.Fit(campaign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("family:", model.Family())
	fmt.Println("accepted:", model.Accepted())
	fmt.Printf("mean iterations: %.0f\n", model.Mean())
	// Output:
	// family: shifted-exponential
	// accepted: true
	// mean iterations: 946
}

// Speedup predicts the paper's G(n) = E[Y]/E[Z(n)] from the fitted
// sequential law alone: near-linear gains while n is small against
// the distribution's scale, then the approach to the E[Y]/x0 ceiling
// of the shifted exponential.
func ExampleModel_Speedup() {
	p := lasvegas.New(lasvegas.WithRuns(200), lasvegas.WithSeed(1))
	campaign, err := p.Collect(context.Background(), lasvegas.Costas, 13)
	if err != nil {
		log.Fatal(err)
	}
	model, err := p.Fit(campaign)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []int{16, 64, 256} {
		g, err := model.Speedup(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("G(%d) = %.1f\n", n, g)
	}
	fmt.Printf("limit: %.0f\n", model.Limit())
	// Output:
	// G(16) = 15.3
	// G(64) = 53.3
	// G(256) = 141.5
	// limit: 315
}

// WithCensoredFit turns cheap budgeted campaigns — runs cut off at an
// iteration budget are only known to be "longer than that" — into
// predictions via the censored maximum-likelihood estimators, instead
// of failing with ErrCensored. The served model discloses how it was
// estimated.
func ExampleWithCensoredFit() {
	p := lasvegas.New(lasvegas.WithRuns(200), lasvegas.WithSeed(1),
		lasvegas.WithBudget(1274), // ~25% of Costas-13 runs exhaust this
		lasvegas.WithCensoredFit(true))
	campaign, err := p.Collect(context.Background(), lasvegas.Costas, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("censored: %.0f%% of runs\n", 100*campaign.CensoredFraction())
	model, err := p.Fit(campaign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("family:", model.Family(), "estimator:", model.Estimator())
	g, err := model.Speedup(64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("G(64) = %.1f\n", g)
	// Output:
	// censored: 25% of runs
	// family: shifted-exponential estimator: censored-mle
	// G(64) = 53.7
}
