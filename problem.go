package lasvegas

import (
	"fmt"
	"strconv"
	"strings"

	"lasvegas/internal/problems"
)

// Problem names a benchmark family the library can collect campaigns
// for: the paper's three CSPs, N-Queens, and WalkSAT on planted
// random 3-SAT (the paper's §8 "SAT solvers" direction).
type Problem string

// Registered problem families.
const (
	AllInterval Problem = "all-interval"
	MagicSquare Problem = "magic-square"
	Costas      Problem = "costas"
	Queens      Problem = "queens"
	SAT3        Problem = "sat-3"
)

// Problems returns the registered families in stable order.
func Problems() []Problem {
	return []Problem{AllInterval, Costas, MagicSquare, Queens, SAT3}
}

// Known reports whether p is a registered problem family.
func (p Problem) Known() bool {
	switch p {
	case AllInterval, MagicSquare, Costas, Queens, SAT3:
		return true
	}
	return false
}

// DefaultSize returns the scaled-down default instance size used by
// this repository's campaigns so that a full fit→predict→compare
// cycle runs in seconds. For SAT3 the size is the number of boolean
// variables (clauses follow at ratio 4.2).
func (p Problem) DefaultSize() int {
	if p == SAT3 {
		return 120
	}
	return problems.DefaultSize(problems.Kind(p))
}

// PaperSize returns the instance size of the paper's evaluation
// (AI 700, MS 200, Costas 21) and ok=false for families the paper did
// not benchmark.
func (p Problem) PaperSize() (int, bool) {
	return problems.PaperSize(problems.Kind(p))
}

// satClauseRatio is the clause/variable ratio of generated 3-SAT
// instances; 4.2 sits just below the 4.26 satisfiability phase
// transition, where WalkSAT runtimes are long and heavy-tailed.
const satClauseRatio = 4.2

// ParseCores parses a comma-separated list of core counts, e.g.
// "16,32,64,128,256" — the flag format shared by every CLI.
func ParseCores(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	cores := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("lasvegas: bad core count %q", p)
		}
		cores = append(cores, n)
	}
	return cores, nil
}

// ParseSizes parses a comma-separated list of problem=size overrides,
// e.g. "all-interval=20,magic-square=6". An empty string yields an
// empty (non-nil) map.
func ParseSizes(s string) (map[Problem]int, error) {
	sizes := map[Problem]int{}
	if s == "" {
		return sizes, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("lasvegas: bad size %q (want problem=N)", kv)
		}
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("lasvegas: bad size value %q", v)
		}
		p := Problem(strings.TrimSpace(k))
		if !p.Known() {
			return nil, fmt.Errorf("%w: %q", ErrUnknownProblem, k)
		}
		sizes[p] = n
	}
	return sizes, nil
}
