package lasvegas

import (
	"fmt"

	"lasvegas/internal/sketch"
)

// Sketch is a mergeable quantile sketch — the O(k·log(n/k))-memory
// representation of a runtime sample that lets campaigns of millions
// of runs stream through lvserve without ever materializing the
// sample. It is an alias of the internal/sketch implementation (a
// deterministic KLL-style compactor hierarchy; see that package's
// documentation for the algorithm choice and the rank-error bound):
// CDF/PDF/Quantile/Mean/Var/Sample/Support behave like the empirical
// distribution of the folded stream — bit-identical to it while the
// sketch is Exact (n ≤ k) and within ErrorBound after — and
// MinExpectation keeps the exact one-pass plug-in prediction form, so
// a sketch-backed Model predicts speed-ups with no quadrature.
//
// Sketches of equal capacity merge associatively (up to the
// documented bound) and commute byte-exactly, which is what lets
// `lvseq -shard i/n -format ndjson` streams be folded per shard and
// pooled with Campaign.Merge.
type Sketch = sketch.Sketch

// DefaultSketchK is the default sketch capacity (rank error ≈
// log2(n/k)/k, ≈ 1% at a billion runs).
const DefaultSketchK = sketch.DefaultK

// NewSketch returns an empty quantile sketch with compactor capacity
// k (k ≤ 0 means DefaultSketchK; k must otherwise be an even number
// ≥ 8). Fold observations with Add/AddAll, attach it to a
// Campaign.Sketch, or pool shards with MergeSketches.
func NewSketch(k int) (*Sketch, error) {
	s, err := sketch.New(k)
	if err != nil {
		return nil, fmt.Errorf("lasvegas: %w", err)
	}
	return s, nil
}

// MergeSketches pools two sketches of equal capacity into a new one
// covering both streams (see Sketch).
func MergeSketches(a, b *Sketch) (*Sketch, error) {
	m, err := sketch.Merge(a, b)
	if err != nil {
		return nil, fmt.Errorf("lasvegas: %w", err)
	}
	return m, nil
}

// HasSketch reports whether the campaign carries a (non-empty)
// sketch-backed representation.
func (c *Campaign) HasSketch() bool {
	return c != nil && c.Sketch != nil && c.Sketch.N() > 0
}

// TotalRuns returns the number of observations the campaign covers:
// the raw Iterations plus the runs folded into its sketch.
func (c *Campaign) TotalRuns() int {
	if c == nil {
		return 0
	}
	total := len(c.Iterations)
	if c.Sketch != nil {
		total += int(c.Sketch.N())
	}
	return total
}

// RuntimeSketch returns a sketch covering every run of the campaign:
// the stored sketch with any raw Iterations folded in (a fresh sketch
// of capacity k — DefaultSketchK when k ≤ 0 — for raw-only
// campaigns). Censored campaigns fail with ErrCensored: a sketch
// stores values, not censoring flags, so folding budget-capped runs
// would silently bias every quantile toward optimism.
func (c *Campaign) RuntimeSketch(k int) (*Sketch, error) {
	if c == nil || c.TotalRuns() == 0 {
		return nil, ErrEmptyCampaign
	}
	if c.IsCensored() {
		return nil, fmt.Errorf("%w: %d of %d runs hit the %d-iteration budget — sketches carry complete runs only",
			ErrCensored, len(c.Censored), len(c.Iterations), c.Budget)
	}
	var s *Sketch
	if c.Sketch != nil {
		s = c.Sketch.Clone()
	} else {
		var err error
		if s, err = NewSketch(k); err != nil {
			return nil, err
		}
	}
	if err := s.AddAll(c.Iterations); err != nil {
		return nil, fmt.Errorf("lasvegas: %w", err)
	}
	return s, nil
}

// Sketchify returns a sketch-backed copy of the campaign: every run
// folded into one sketch of capacity k (DefaultSketchK when k ≤ 0),
// raw Iterations and Seconds dropped. The copy fits and predicts
// within the sketch's ErrorBound of the original — exactly, while the
// sketch stays Exact — in O(k·log(n/k)) memory however many runs the
// campaign has. Censored campaigns fail with ErrCensored.
func (c *Campaign) Sketchify(k int) (*Campaign, error) {
	s, err := c.RuntimeSketch(k)
	if err != nil {
		return nil, err
	}
	out := &Campaign{
		Problem: c.Problem,
		Size:    c.Size,
		Runs:    c.TotalRuns(),
		Seed:    c.Seed,
		Sketch:  s,
	}
	if len(c.Metadata) > 0 {
		out.Metadata = make(map[string]string, len(c.Metadata))
		for k, v := range c.Metadata {
			out.Metadata[k] = v
		}
	}
	return out, nil
}
