// Package optim supplies the scalar root finding and low-dimensional
// minimization used for maximum-likelihood fitting and quantile
// inversion: Brent's root finder, Brent's minimizer, golden-section
// search and a compact Nelder–Mead simplex for 2–4 parameter MLEs.
package optim

import (
	"errors"
	"math"
)

// ErrBracket is returned when a root/minimum is not bracketed by the
// supplied interval.
var ErrBracket = errors.New("optim: interval does not bracket a root")

// ErrNoConvergence is returned when the iteration budget is exhausted.
var ErrNoConvergence = errors.New("optim: did not converge")

// BrentRoot finds x in [a, b] with f(x) = 0 given f(a)·f(b) <= 0,
// using Brent's method (inverse quadratic interpolation guarded by
// bisection). tol is an absolute tolerance on x.
func BrentRoot(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, ErrBracket
	}
	if tol <= 0 {
		tol = 1e-12
	}
	c, fc := a, fa
	d, e := b-a, b-a
	for iter := 0; iter < 200; iter++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		const eps = 2.220446049250313e-16 // float64 machine epsilon
		tol1 := 2*eps*math.Abs(b) + tol/2
		xm := (c - b) / 2
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			if 2*p < math.Min(3*xm*q-math.Abs(tol1*q), math.Abs(e*q)) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(b)
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d, e = b-a, b-a
		}
	}
	return b, ErrNoConvergence
}

// Bisect finds a root of f in [a, b] by pure bisection; slower than
// BrentRoot but immune to wild f. Used as a fallback by quantile
// inversion.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, ErrBracket
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for iter := 0; iter < 200; iter++ {
		m := (a + b) / 2
		if b-a <= tol || m == a || m == b {
			return m, nil
		}
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if (fm > 0) == (fa > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return (a + b) / 2, ErrNoConvergence
}

// golden is the golden ratio section constant.
const golden = 0.3819660112501051

// BrentMin minimizes f over [a, b] with Brent's parabolic
// interpolation method and returns the minimizing x.
func BrentMin(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-10
	}
	x := a + golden*(b-a)
	w, v := x, x
	fx := f(x)
	fw, fv := fx, fx
	var d, e float64
	for iter := 0; iter < 200; iter++ {
		m := (a + b) / 2
		tol1 := tol*math.Abs(x) + 1e-15
		tol2 := 2 * tol1
		if math.Abs(x-m) <= tol2-(b-a)/2 {
			return x, nil
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Parabolic fit through x, v, w.
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			if math.Abs(p) < math.Abs(q*e/2) && p > q*(a-x) && p < q*(b-x) {
				e = d
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, m-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x < m {
				e = b - x
			} else {
				e = a - x
			}
			d = golden * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := f(u)
		if fu <= fx {
			if u < x {
				b = x
			} else {
				a = x
			}
			v, w, x = w, x, u
			fv, fw, fx = fw, fx, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == x {
				v, w = w, u
				fv, fw = fw, fu
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return x, ErrNoConvergence
}

// NelderMead minimizes f starting from x0 with initial step sizes
// step (same length as x0). It returns the best point found. The
// implementation is the standard reflect/expand/contract/shrink
// simplex with adaptive termination on simplex diameter.
func NelderMead(f func([]float64) float64, x0, step []float64, tol float64, maxIter int) ([]float64, float64, error) {
	n := len(x0)
	if n == 0 || len(step) != n {
		return nil, 0, errors.New("optim: bad NelderMead dimensions")
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 2000
	}
	// Build initial simplex.
	pts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	for i := range pts {
		p := append([]float64(nil), x0...)
		if i > 0 {
			p[i-1] += step[i-1]
		}
		pts[i] = p
		vals[i] = f(p)
	}
	const alpha, gamma, rho, sigma = 1.0, 2.0, 0.5, 0.5
	centroid := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		// Order simplex: find best, worst, second-worst.
		best, worst, second := 0, 0, 0
		for i := 1; i <= n; i++ {
			if vals[i] < vals[best] {
				best = i
			}
			if vals[i] > vals[worst] {
				worst = i
			}
		}
		for i := 0; i <= n; i++ {
			if i != worst && vals[i] > vals[second] {
				second = i
			}
		}
		if second == worst { // all equal except worst index coincidence
			second = best
		}
		// Termination: function spread.
		if math.Abs(vals[worst]-vals[best]) <= tol*(math.Abs(vals[best])+tol) {
			return pts[best], vals[best], nil
		}
		// Centroid of all but worst.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i <= n; i++ {
			if i == worst {
				continue
			}
			for j := range centroid {
				centroid[j] += pts[i][j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}
		combine := func(t float64) []float64 {
			p := make([]float64, n)
			for j := range p {
				p[j] = centroid[j] + t*(pts[worst][j]-centroid[j])
			}
			return p
		}
		refl := combine(-alpha)
		fr := f(refl)
		switch {
		case fr < vals[best]:
			exp := combine(-gamma)
			fe := f(exp)
			if fe < fr {
				pts[worst], vals[worst] = exp, fe
			} else {
				pts[worst], vals[worst] = refl, fr
			}
		case fr < vals[second]:
			pts[worst], vals[worst] = refl, fr
		default:
			contr := combine(rho)
			fc := f(contr)
			if fc < vals[worst] {
				pts[worst], vals[worst] = contr, fc
			} else {
				// Shrink toward best.
				for i := 0; i <= n; i++ {
					if i == best {
						continue
					}
					for j := range pts[i] {
						pts[i][j] = pts[best][j] + sigma*(pts[i][j]-pts[best][j])
					}
					vals[i] = f(pts[i])
				}
			}
		}
	}
	best := 0
	for i := 1; i <= n; i++ {
		if vals[i] < vals[best] {
			best = i
		}
	}
	return pts[best], vals[best], ErrNoConvergence
}
