package optim

import (
	"errors"
	"math"
	"testing"
)

func TestBrentRootSimple(t *testing.T) {
	x, err := BrentRoot(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-12 {
		t.Fatalf("root %v, want √2", x)
	}
}

func TestBrentRootCos(t *testing.T) {
	x, err := BrentRoot(math.Cos, 1, 2, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-math.Pi/2) > 1e-12 {
		t.Fatalf("root %v, want π/2", x)
	}
}

func TestBrentRootEndpointRoot(t *testing.T) {
	x, err := BrentRoot(func(x float64) float64 { return x }, 0, 1, 1e-12)
	if err != nil || x != 0 {
		t.Fatalf("got %v, %v", x, err)
	}
}

func TestBrentRootNoBracket(t *testing.T) {
	_, err := BrentRoot(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12)
	if !errors.Is(err, ErrBracket) {
		t.Fatalf("want ErrBracket, got %v", err)
	}
}

func TestBrentRootSteepFunction(t *testing.T) {
	// Root of e^{50x} - 1 at x=0 inside [-1, 0.5].
	x, err := BrentRoot(func(x float64) float64 { return math.Exp(50*x) - 1 }, -1, 0.5, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x) > 1e-10 {
		t.Fatalf("root %v, want 0", x)
	}
}

func TestBisectAgreesWithBrent(t *testing.T) {
	f := func(x float64) float64 { return math.Tanh(x) - 0.5 }
	a, err1 := BrentRoot(f, 0, 3, 1e-13)
	b, err2 := Bisect(f, 0, 3, 1e-13)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Abs(a-b) > 1e-10 {
		t.Fatalf("brent %v vs bisect %v", a, b)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return 1.0 }, 0, 1, 1e-12); !errors.Is(err, ErrBracket) {
		t.Fatalf("want ErrBracket, got %v", err)
	}
}

func TestBrentMinParabola(t *testing.T) {
	x, err := BrentMin(func(x float64) float64 { return (x - 3) * (x - 3) }, -10, 10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-3) > 1e-6 {
		t.Fatalf("minimizer %v, want 3", x)
	}
}

func TestBrentMinAsymmetric(t *testing.T) {
	// min of x - ln(x) at x=1.
	x, err := BrentMin(func(x float64) float64 { return x - math.Log(x) }, 0.01, 10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-1) > 1e-6 {
		t.Fatalf("minimizer %v, want 1", x)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	rosen := func(p []float64) float64 {
		x, y := p[0], p[1]
		return (1-x)*(1-x) + 100*(y-x*x)*(y-x*x)
	}
	x, fx, err := NelderMead(rosen, []float64{-1.2, 1}, []float64{0.5, 0.5}, 1e-14, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]-1) > 1e-3 {
		t.Fatalf("minimizer %v (f=%v), want (1,1)", x, fx)
	}
}

func TestNelderMeadQuadratic3D(t *testing.T) {
	f := func(p []float64) float64 {
		return (p[0]-1)*(p[0]-1) + 2*(p[1]+2)*(p[1]+2) + 0.5*(p[2]-4)*(p[2]-4)
	}
	x, _, err := NelderMead(f, []float64{0, 0, 0}, []float64{1, 1, 1}, 1e-14, 5000)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 4}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-4 {
			t.Fatalf("dim %d: %v, want %v", i, x[i], want[i])
		}
	}
}

func TestNelderMeadBadInput(t *testing.T) {
	if _, _, err := NelderMead(func(p []float64) float64 { return 0 }, nil, nil, 1e-10, 100); err == nil {
		t.Fatal("empty input should error")
	}
	if _, _, err := NelderMead(func(p []float64) float64 { return 0 }, []float64{1}, []float64{1, 2}, 1e-10, 100); err == nil {
		t.Fatal("mismatched step length should error")
	}
}
