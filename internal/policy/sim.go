package policy

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"lasvegas/internal/dist"
	"lasvegas/internal/xrand"
)

// maxAttempts bounds a single replayed campaign: a schedule whose
// cutoffs never reach the law's support would otherwise loop forever.
const maxAttempts = 1 << 20

// SimResult summarizes a replay.
type SimResult struct {
	Reps   int
	Mean   float64 // mean total runtime-to-success across reps
	StdErr float64 // standard error of that mean
}

// Simulate replays policy p against distribution d: each rep draws
// runs by inverse CDF (for an Empirical law this literally resamples
// the campaign's observed runtimes), truncates every run at the
// schedule's cutoff, and accumulates cost until a run finishes within
// its cutoff. The xrand stream makes the replay deterministic per
// seed — the independent Monte Carlo check on the closed-form prices.
func Simulate(d dist.Dist, p Policy, reps int, seed uint64) (SimResult, error) {
	if d == nil {
		return SimResult{}, errors.New("policy: nil distribution")
	}
	if reps <= 0 {
		return SimResult{}, fmt.Errorf("policy: reps %d", reps)
	}
	if err := p.validate(); err != nil {
		return SimResult{}, err
	}
	r := xrand.New(seed)
	var sum, sumsq float64
	for rep := 0; rep < reps; rep++ {
		var t float64
		done := false
		for i := 1; i <= maxAttempts; i++ {
			c := p.CutoffAt(i)
			y := d.Quantile(r.Float64Open())
			if y <= c {
				t += y
				done = true
				break
			}
			t += c
		}
		if !done {
			return SimResult{}, fmt.Errorf("policy: replay of %s saw no success in %d runs (cutoff below the law's support?)", p.Kind, maxAttempts)
		}
		sum += t
		sumsq += t * t
	}
	nf := float64(reps)
	mean := sum / nf
	variance := sumsq/nf - mean*mean
	if variance < 0 {
		variance = 0
	}
	return SimResult{Reps: reps, Mean: mean, StdErr: math.Sqrt(variance / nf)}, nil
}

// CI is a bootstrap confidence interval on a policy's expected
// runtime. Bounds may be +Inf when a resample puts the whole sample
// above a fixed cutoff.
type CI struct {
	Lo, Hi float64
	Level  float64
}

// maxBootstrapSample caps the per-resample size so sketch-backed
// campaigns with millions of runs bootstrap in bounded time; beyond
// a couple thousand draws the resampling noise, not the cap, is the
// binding uncertainty.
const maxBootstrapSample = 2048

// BootstrapCI prices policy p on `resamples` bootstrap resamples of
// size n drawn from src by inverse CDF (with replacement — the
// standard bootstrap when src is the campaign's Empirical law) and
// returns the percentile interval at the given level. The policy's
// cutoffs stay fixed across resamples: the interval quantifies
// sampling noise in the *price* of a committed schedule, not in the
// schedule choice. Each resample is priced exactly via its own step
// law, never by quadrature.
func BootstrapCI(src dist.Dist, n int, p Policy, resamples int, level float64, seed uint64) (CI, error) {
	if src == nil {
		return CI{}, errors.New("policy: nil distribution")
	}
	if n <= 0 {
		return CI{}, fmt.Errorf("policy: bootstrap sample size %d", n)
	}
	if resamples <= 0 {
		return CI{}, fmt.Errorf("policy: resamples %d", resamples)
	}
	if !(level > 0 && level < 1) {
		return CI{}, fmt.Errorf("policy: level %v", level)
	}
	if err := p.validate(); err != nil {
		return CI{}, err
	}
	if n > maxBootstrapSample {
		n = maxBootstrapSample
	}
	r := xrand.New(seed)
	prices := make([]float64, resamples)
	xs := make([]float64, n)
	for b := 0; b < resamples; b++ {
		for i := range xs {
			xs[i] = src.Quantile(r.Float64Open())
		}
		sort.Float64s(xs)
		v, err := price(stepLaw{xs}, p)
		if err != nil {
			// Only the Luby series can error on a step law (unit
			// stuck below the resample's minimum): price it infinite
			// rather than aborting the whole interval.
			v = math.Inf(1)
		}
		prices[b] = v
	}
	sort.Float64s(prices)
	alpha := (1 - level) / 2
	return CI{
		Lo:    prices[percentileIndex(alpha, resamples)],
		Hi:    prices[percentileIndex(1-alpha, resamples)],
		Level: level,
	}, nil
}

func percentileIndex(q float64, m int) int {
	idx := int(math.Ceil(q*float64(m))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= m {
		idx = m - 1
	}
	return idx
}

// stepLaw prices a sorted bootstrap resample exactly: uniform mass
// 1/n per point, truncated means by one bounded pass.
type stepLaw struct{ xs []float64 } // ascending

func (s stepLaw) mean() float64 {
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

func (s stepLaw) cdf(c float64) float64 {
	n := sort.Search(len(s.xs), func(i int) bool { return s.xs[i] > c })
	return float64(n) / float64(len(s.xs))
}

func (s stepLaw) truncMean(c float64) (float64, error) {
	var sum float64
	for _, x := range s.xs {
		if x > c {
			sum += c
			continue
		}
		sum += x
	}
	return sum / float64(len(s.xs)), nil
}
