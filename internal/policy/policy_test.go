package policy

import (
	"math"
	"testing"

	"lasvegas/internal/dist"
	"lasvegas/internal/restart"
	"lasvegas/internal/xrand"
)

// must unwraps a distribution constructor; construction of fixed
// test laws cannot fail.
func must[D dist.Dist](d D, err error) dist.Dist {
	if err != nil {
		panic(err)
	}
	return d
}

// TestExpectedMatchesRestart pins the fixed-cutoff closed form to
// restart.ExpectedRuntime — the two must price identical strategies
// identically, since both evaluate the LSZ formula.
func TestExpectedMatchesRestart(t *testing.T) {
	laws := []struct {
		name string
		d    dist.Dist
	}{
		{"exponential", must(dist.NewExponential(0.01))},
		{"lognormal", must(dist.NewLogNormal(0, 5, 1.5))},
		{"weibull", must(dist.NewWeibull(0.5, 200))},
	}
	for _, law := range laws {
		for _, q := range []float64{0.1, 0.5, 0.9} {
			c := law.d.Quantile(q)
			want, err := restart.ExpectedRuntime(law.d, c)
			if err != nil {
				t.Fatalf("%s q=%v: restart.ExpectedRuntime: %v", law.name, q, err)
			}
			got, err := Expected(law.d, Policy{Kind: FixedCutoff, Cutoff: c})
			if err != nil {
				t.Fatalf("%s q=%v: Expected: %v", law.name, q, err)
			}
			if rel := math.Abs(got-want) / want; rel > 1e-9 {
				t.Errorf("%s cutoff q(%v)=%v: policy %v vs restart %v (rel %v)", law.name, q, c, got, want, rel)
			}
		}
	}
}

// TestSimulateConvergesToClosedForm is the core simulator property:
// at a fixed seed and 200k reps, the replayed mean must sit within a
// few standard errors of the closed-form price, on every family and
// every policy kind.
func TestSimulateConvergesToClosedForm(t *testing.T) {
	laws := []struct {
		name string
		d    dist.Dist
	}{
		{"exponential", must(dist.NewExponential(0.01))},
		{"lognormal", must(dist.NewLogNormal(0, 5, 1.2))},
		// Shape > 1: increasing hazard, so the fitted optimum is
		// "never restart" and the replay stays cheap. Shape < 1
		// optima (cutoff → 0, ~1/F(c) attempts per rep) are priced in
		// closed form by the universality and optimal-property tests.
		{"weibull", must(dist.NewWeibull(1.4, 150))},
	}
	const reps = 50_000
	for li, law := range laws {
		policies := []Policy{
			{Kind: NoRestart},
			{Kind: FixedCutoff, Cutoff: law.d.Quantile(0.5)},
			{Kind: Luby, Unit: law.d.Quantile(0.05)},
		}
		optP, _, err := Optimal(law.d)
		if err != nil {
			t.Fatalf("%s: Optimal: %v", law.name, err)
		}
		policies = append(policies, optP)
		for pi, p := range policies {
			want, err := Expected(law.d, p)
			if err != nil {
				t.Fatalf("%s/%s: Expected: %v", law.name, p.Kind, err)
			}
			seed := uint64(0xC0FFEE + 1000*li + pi)
			sim, err := Simulate(law.d, p, reps, seed)
			if err != nil {
				t.Fatalf("%s/%s: Simulate: %v", law.name, p.Kind, err)
			}
			// 5σ Monte Carlo band plus a small relative floor for
			// quadrature error in `want`.
			tol := 5*sim.StdErr + 1e-6*want
			if math.Abs(sim.Mean-want) > tol {
				t.Errorf("%s/%s: simulated %v vs closed form %v (tol %v, stderr %v)",
					law.name, p.Kind, sim.Mean, want, tol, sim.StdErr)
			}
		}
	}
}

// TestSimulateDeterministic: same seed, same replay, bit for bit.
func TestSimulateDeterministic(t *testing.T) {
	d := must(dist.NewLogNormal(0, 4, 1))
	p := Policy{Kind: Luby, Unit: d.Quantile(0.05)}
	a, err := Simulate(d, p, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(d, p, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c, err := Simulate(d, p, 5000, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatalf("different seeds produced identical replay %+v", a)
	}
}

// TestLubyWithinUniversalityFactor: the Luby schedule's price must
// stay within its O(log) universality guarantee of the fitted
// optimum. LSZ prove E[Luby] ≤ 192·ℓ*(log₂(ℓ*)+5) in a discrete-time
// model where ℓ* is measured in multiples of the base unit and the
// unit does not exceed the optimal cutoff — so the test normalizes by
// the unit and clamps it below the fitted optimum, covering even the
// Weibull shape<1 case whose optimal cutoff collapses toward zero.
func TestLubyWithinUniversalityFactor(t *testing.T) {
	laws := []struct {
		name string
		d    dist.Dist
	}{
		{"exponential", must(dist.NewExponential(0.01))},
		{"lognormal-heavy", must(dist.NewLogNormal(0, 5, 2))},
		{"weibull-heavy", must(dist.NewWeibull(0.4, 100))},
	}
	for _, law := range laws {
		optP, optE, err := Optimal(law.d)
		if err != nil {
			t.Fatalf("%s: Optimal: %v", law.name, err)
		}
		u := law.d.Quantile(0.05)
		if !math.IsInf(optP.Cutoff, 1) && optP.Cutoff < u {
			u = optP.Cutoff
		}
		luby, err := Expected(law.d, Policy{Kind: Luby, Unit: u})
		if err != nil {
			t.Fatalf("%s: luby price: %v", law.name, err)
		}
		optUnits := math.Max(optE/u, 2)
		lubyUnits := luby / u
		bound := 192 * optUnits * (math.Log2(optUnits) + 5)
		if lubyUnits > bound {
			t.Errorf("%s: Luby %v unit-multiples exceeds LSZ universality bound %v (opt %v, unit %v)",
				law.name, lubyUnits, bound, optE, u)
		}
	}
}

// TestOptimalProperties: fitted-optimal never prices above
// no-restart; on heavy tails it is strictly better with a finite
// cutoff; on exponential laws memorylessness forces equality with an
// infinite cutoff.
func TestOptimalProperties(t *testing.T) {
	heavy := []struct {
		name string
		d    dist.Dist
	}{
		{"lognormal-heavy", must(dist.NewLogNormal(0, 5, 2))},
		{"weibull-heavy", must(dist.NewWeibull(0.4, 100))},
	}
	for _, law := range heavy {
		p, e, err := Optimal(law.d)
		if err != nil {
			t.Fatalf("%s: %v", law.name, err)
		}
		mean := law.d.Mean()
		if e > mean {
			t.Errorf("%s: optimum %v worse than no-restart %v", law.name, e, mean)
		}
		if math.IsInf(p.Cutoff, 1) || !(e < 0.9*mean) {
			t.Errorf("%s: expected a strict finite-cutoff win, got cutoff %v price %v (mean %v)", law.name, p.Cutoff, e, mean)
		}
	}
	exp := must(dist.NewExponential(0.02))
	p, e, err := Optimal(exp)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Cutoff, 1) {
		t.Errorf("exponential: optimal cutoff should be +Inf (memoryless), got %v", p.Cutoff)
	}
	if rel := math.Abs(e-exp.Mean()) / exp.Mean(); rel > 1e-9 {
		t.Errorf("exponential: optimal price %v != mean %v", e, exp.Mean())
	}
}

// TestLubyOnExponentialIsNeutral: by memorylessness the Luby series
// telescopes to exactly E[Y] on an exponential law — the analytic
// identity Σᵢ S(cᵢ₋ accumulated)·E[min(Y,cᵢ)] = E[Y].
func TestLubyOnExponentialIsNeutral(t *testing.T) {
	d := must(dist.NewExponential(0.01))
	got, err := Expected(d, Policy{Kind: Luby, Unit: d.Quantile(0.05)})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-d.Mean()) / d.Mean(); rel > 1e-6 {
		t.Errorf("Luby on exponential: %v vs mean %v (rel %v)", got, d.Mean(), rel)
	}
}

// TestStepLawPricingExact: on an Empirical law the closed forms must
// be exact (TruncatedMean fast path), agreeing with a brute-force
// enumeration of the LSZ formula over the sample.
func TestStepLawPricingExact(t *testing.T) {
	r := xrand.New(7)
	sample := make([]float64, 500)
	for i := range sample {
		sample[i] = math.Exp(r.Norm()*1.5 + 3)
	}
	e := must(dist.NewEmpirical(sample)).(*dist.Empirical)
	for _, q := range []float64{0.2, 0.5, 0.8} {
		c := e.Quantile(q)
		// Brute force E[min(Y,c)]/F(c).
		var tm, below float64
		for _, x := range e.Sorted() {
			if x <= c {
				tm += x
				below++
			} else {
				tm += c
			}
		}
		tm /= float64(e.Len())
		want := tm / (below / float64(e.Len()))
		got, err := Expected(e, Policy{Kind: FixedCutoff, Cutoff: c})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12*want {
			t.Errorf("q=%v: %v vs brute force %v", q, got, want)
		}
	}
}

// TestPanelRankingAndWinner: the panel is sorted by price, carries
// all four kinds exactly once, and picks deterministic winners:
// no-restart on exponential, fitted-optimal on a heavy tail.
func TestPanelRankingAndWinner(t *testing.T) {
	exp := must(dist.NewExponential(0.01))
	evals, err := Panel(exp)
	if err != nil {
		t.Fatal(err)
	}
	checkPanelShape(t, evals)
	if evals[0].Policy.Kind != NoRestart {
		t.Errorf("exponential winner = %s, want no-restart", evals[0].Policy.Kind)
	}

	heavy := must(dist.NewLogNormal(0, 5, 2))
	evals, err = Panel(heavy)
	if err != nil {
		t.Fatal(err)
	}
	checkPanelShape(t, evals)
	if evals[0].Policy.Kind != FittedOptimal {
		t.Errorf("heavy-tail winner = %s, want fitted-optimal", evals[0].Policy.Kind)
	}
	if evals[0].Gain <= 1 {
		t.Errorf("heavy-tail winner gain = %v, want > 1", evals[0].Gain)
	}
}

func checkPanelShape(t *testing.T, evals []Evaluation) {
	t.Helper()
	if len(evals) != 4 {
		t.Fatalf("panel has %d rows, want 4", len(evals))
	}
	seen := map[Kind]bool{}
	for i, e := range evals {
		if seen[e.Policy.Kind] {
			t.Errorf("kind %s appears twice", e.Policy.Kind)
		}
		seen[e.Policy.Kind] = true
		if i > 0 && e.Expected < evals[i-1].Expected && !priceTied(e.Expected, evals[i-1].Expected) {
			t.Errorf("panel not sorted: row %d (%v) < row %d (%v)", i, e.Expected, i-1, evals[i-1].Expected)
		}
	}
}

// TestBootstrapCI: the percentile interval from an Empirical source
// must bracket the closed-form price of the law it resamples, be
// deterministic per seed, and be ordered.
func TestBootstrapCI(t *testing.T) {
	r := xrand.New(11)
	sample := make([]float64, 400)
	for i := range sample {
		sample[i] = r.Exp() * 120
	}
	e := must(dist.NewEmpirical(sample))
	p := Policy{Kind: FixedCutoff, Cutoff: e.Quantile(0.5)}
	want, err := Expected(e, p)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := BootstrapCI(e, 400, p, 400, 0.95, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !(ci.Lo <= ci.Hi) {
		t.Fatalf("interval inverted: %+v", ci)
	}
	if want < ci.Lo || want > ci.Hi {
		t.Errorf("closed form %v outside 95%% CI [%v, %v]", want, ci.Lo, ci.Hi)
	}
	again, err := BootstrapCI(e, 400, p, 400, 0.95, 99)
	if err != nil {
		t.Fatal(err)
	}
	if ci != again {
		t.Fatalf("same seed, different interval: %+v vs %+v", ci, again)
	}
}

// TestNeverSucceedingCutoffPricesInfinite: a cutoff below the support
// is an infinitely bad row, not an error — and the replay refuses it
// with a typed failure instead of spinning forever.
func TestNeverSucceedingCutoffPricesInfinite(t *testing.T) {
	d := must(dist.NewShiftedExponential(50, 0.01))
	got, err := Expected(d, Policy{Kind: FixedCutoff, Cutoff: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Fatalf("price below support = %v, want +Inf", got)
	}
	if _, err := Simulate(d, Policy{Kind: FixedCutoff, Cutoff: 10}, 10, 1); err == nil {
		t.Fatal("replay below support should fail, got nil error")
	}
}

// TestTruncatedMeanAgreesWithQuadrature cross-checks the exact step
// fast path against tanh-sinh on a smooth law where both work.
func TestTruncatedMeanAgreesWithQuadrature(t *testing.T) {
	d := must(dist.NewWeibull(1.3, 90))
	l := distLaw{d}
	for _, q := range []float64{0.3, 0.7} {
		c := d.Quantile(q)
		viaQuad, err := l.truncMean(c)
		if err != nil {
			t.Fatal(err)
		}
		// Monte Carlo reference.
		r := xrand.New(5)
		var sum float64
		const n = 150_000
		for i := 0; i < n; i++ {
			y := d.Quantile(r.Float64Open())
			sum += math.Min(y, c)
		}
		mc := sum / n
		if rel := math.Abs(viaQuad-mc) / mc; rel > 0.01 {
			t.Errorf("q=%v: truncMean %v vs MC %v", q, viaQuad, mc)
		}
	}
}
