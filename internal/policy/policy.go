// Package policy prices restart strategies for a Las Vegas runtime
// law and proves the prices by replaying them. It is the daemon's
// answer to the operator question the paper leaves open: *should this
// solver restart, and on what schedule?*
//
// Four strategies are compared on equal footing:
//
//   - no-restart: run to completion, E[T] = E[Y];
//   - fixed-cutoff at t: the Luby–Sinclair–Zuckerman price
//     E[T(t)] = E[min(Y,t)] / F(t);
//   - Luby with unit u: cutoffs u·(1,1,2,1,1,2,4,…) — the universal
//     schedule, within an O(log) factor of the unknown optimum;
//   - fitted-optimal: the best fixed cutoff for the law at hand
//     (Brent search on smooth laws, an exact atom scan on step laws).
//
// Every closed form runs through E[min(Y,c)], which step laws
// (Empirical, Kaplan–Meier, quantile sketches) expose exactly via a
// TruncatedMean method — so plug-in pricing never integrates a
// discontinuous CDF. Smooth fitted laws fall back to tanh-sinh
// quadrature, identical to internal/restart.
//
// The closed forms are validated two independent ways (see Simulate
// and BootstrapCI): a deterministic seeded replay that re-runs the
// observed runtimes under each schedule with restart truncation, and a
// resampling bootstrap that prices each resample exactly to yield a CI
// on the policy's expected runtime.
package policy

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"lasvegas/internal/dist"
	"lasvegas/internal/quad"
	"lasvegas/internal/restart"
)

// Kind names a restart strategy. The strings are wire-stable: they
// appear in /v1/policy bodies, lvpredict tables, and golden files.
type Kind string

const (
	NoRestart     Kind = "no-restart"
	FixedCutoff   Kind = "fixed-cutoff"
	Luby          Kind = "luby"
	FittedOptimal Kind = "fitted-optimal"
)

// Policy is a concrete restart schedule: a Kind plus its parameter.
// Cutoff parameterizes FixedCutoff and FittedOptimal (+Inf means
// "never restart"); Unit scales the Luby sequence.
type Policy struct {
	Kind   Kind
	Cutoff float64
	Unit   float64
}

// CutoffAt returns the cutoff for the i-th attempt (1-based) —
// constant for fixed schedules, the scaled Luby term for Luby, +Inf
// for no-restart.
func (p Policy) CutoffAt(i int) float64 {
	switch p.Kind {
	case FixedCutoff, FittedOptimal:
		return p.Cutoff
	case Luby:
		return p.Unit * float64(restart.LubyTerm(i))
	default:
		return math.Inf(1)
	}
}

func (p Policy) validate() error {
	switch p.Kind {
	case NoRestart:
		return nil
	case FixedCutoff, FittedOptimal:
		if math.IsInf(p.Cutoff, 1) {
			return nil // "never restart" is a valid degenerate cutoff
		}
		if !(p.Cutoff > 0) {
			return fmt.Errorf("policy: %s cutoff %v", p.Kind, p.Cutoff)
		}
		return nil
	case Luby:
		if !(p.Unit > 0) || math.IsInf(p.Unit, 1) {
			return fmt.Errorf("policy: luby unit %v", p.Unit)
		}
		return nil
	default:
		return fmt.Errorf("policy: unknown kind %q", p.Kind)
	}
}

// law is the minimal pricing surface: everything below reduces to the
// CDF, the truncated mean E[min(Y,c)], and the mean. Two
// implementations exist — distLaw wraps any dist.Dist, stepLaw prices
// a sorted resample exactly for the bootstrap.
type law interface {
	cdf(x float64) float64
	truncMean(c float64) (float64, error)
	mean() float64
}

// truncatedMeaner is the exact fast path: step laws (Empirical,
// KaplanMeier, Sketch) expose E[min(Y,c)] in closed form.
type truncatedMeaner interface {
	TruncatedMean(c float64) float64
}

type distLaw struct{ d dist.Dist }

func (l distLaw) cdf(x float64) float64 { return l.d.CDF(x) }
func (l distLaw) mean() float64         { return l.d.Mean() }

func (l distLaw) truncMean(c float64) (float64, error) {
	if tm, ok := l.d.(truncatedMeaner); ok {
		return tm.TruncatedMean(c), nil
	}
	lo, _ := l.d.Support()
	if math.IsInf(lo, -1) || lo < 0 {
		lo = 0
	}
	if c <= lo {
		return c, nil // F ≡ 0 below the support: min(Y,c) = c surely
	}
	// E[min(Y,c)] = c − ∫₀ᶜ F, same quadrature as restart.ExpectedRuntime.
	integral, err := quad.TanhSinh(l.d.CDF, lo, c, 1e-10)
	if err != nil {
		return 0, fmt.Errorf("policy: integrating CDF: %w", err)
	}
	return c - integral, nil
}

// Expected prices policy p under distribution d in closed form. A
// schedule that can never succeed (cutoffs below the support forever)
// prices at +Inf rather than erroring: an infinitely bad policy is
// still a comparable row.
func Expected(d dist.Dist, p Policy) (float64, error) {
	if d == nil {
		return 0, errors.New("policy: nil distribution")
	}
	return price(distLaw{d}, p)
}

func price(l law, p Policy) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	switch p.Kind {
	case NoRestart:
		return l.mean(), nil
	case FixedCutoff, FittedOptimal:
		if math.IsInf(p.Cutoff, 1) {
			return l.mean(), nil
		}
		fc := l.cdf(p.Cutoff)
		if fc <= 0 {
			return math.Inf(1), nil
		}
		tm, err := l.truncMean(p.Cutoff)
		if err != nil {
			return 0, err
		}
		return tm / fc, nil
	default: // Luby
		return lubyExpected(l, p.Unit)
	}
}

const (
	// lubySurvivalEps truncates the Luby series once the probability
	// of still running is negligible; the discarded tail is bounded
	// by survival · E[remaining cost] ≲ 1e-12 · E[T].
	lubySurvivalEps = 1e-12
	// lubyMaxRuns bounds the series when the unit sits so far below
	// the support that success probability stays ~0 for a long time.
	lubyMaxRuns = 1 << 20
)

// lubyExpected prices the Luby schedule by the exact series
//
//	E[T] = Σᵢ ( ∏_{j<i} (1−F(cⱼ)) ) · E[min(Y,cᵢ)],  cᵢ = u·luby(i),
//
// memoizing E[min(Y,c)] and F(c) per distinct cutoff — the Luby
// sequence only ever visits log-many distinct values, so the series
// costs O(runs) lookups plus O(log) truncated means.
func lubyExpected(l law, u float64) (float64, error) {
	type memo struct{ tm, fc float64 }
	cache := make(map[int64]memo, 24)
	survival := 1.0
	var total float64
	for i := 1; i <= lubyMaxRuns; i++ {
		term := restart.LubyTerm(i)
		m, ok := cache[term]
		if !ok {
			c := u * float64(term)
			tm, err := l.truncMean(c)
			if err != nil {
				return 0, err
			}
			m = memo{tm: tm, fc: l.cdf(c)}
			cache[term] = m
		}
		total += survival * m.tm
		survival *= 1 - m.fc
		if survival < lubySurvivalEps {
			return total, nil
		}
	}
	return 0, fmt.Errorf("policy: luby series did not converge in %d runs (unit %g below the law's support?)", lubyMaxRuns, u)
}

// optimalGrid caps the number of quantile atoms scanned when locating
// the optimal cutoff of a step law.
const optimalGrid = 512

// Optimal finds the best fixed-cutoff policy under d. Smooth laws go
// through restart.OptimalCutoff (Brent on a log axis); step laws —
// recognizable by their exact TruncatedMean — get an exact scan over
// quantile atoms, where the optimum of a piecewise-linear-over-step
// objective must sit. Cutoff = +Inf with the mean as price means
// restarts cannot beat running to completion.
func Optimal(d dist.Dist) (Policy, float64, error) {
	if d == nil {
		return Policy{}, 0, errors.New("policy: nil distribution")
	}
	if _, ok := d.(truncatedMeaner); ok {
		return optimalStep(d)
	}
	opt, err := restart.OptimalCutoff(d)
	if err != nil {
		return Policy{}, 0, err
	}
	return Policy{Kind: FittedOptimal, Cutoff: opt.Cutoff}, opt.Expected, nil
}

func optimalStep(d dist.Dist) (Policy, float64, error) {
	l := distLaw{d}
	meanY := l.mean()
	if math.IsNaN(meanY) {
		return Policy{}, 0, errors.New("policy: distribution has no mean")
	}
	bestC, bestE := math.Inf(1), meanY
	prev := math.NaN()
	for i := 1; i <= optimalGrid; i++ {
		c := d.Quantile(float64(i) / float64(optimalGrid+1))
		if c == prev || !(c > 0) {
			continue
		}
		prev = c
		e, err := price(l, Policy{Kind: FixedCutoff, Cutoff: c})
		if err != nil {
			return Policy{}, 0, err
		}
		if e < bestE {
			bestC, bestE = c, e
		}
	}
	// Mirror restart.OptimalCutoff's neutrality band: a sub-ppb win
	// is numerical noise, not a reason to restart.
	if !math.IsInf(bestC, 1) && bestE >= meanY*(1-1e-9) {
		return Policy{Kind: FittedOptimal, Cutoff: math.Inf(1)}, meanY, nil
	}
	return Policy{Kind: FittedOptimal, Cutoff: bestC}, bestE, nil
}

// Evaluation is one priced row of a Panel.
type Evaluation struct {
	Policy   Policy
	Expected float64 // closed-form E[T]; +Inf if the schedule never succeeds
	Gain     float64 // E[Y] / Expected: >1 means the policy beats no-restart
}

// tiePreference ranks kinds when their prices tie within tolerance:
// prefer the simpler or more robust policy. On a memoryless law all
// four rows tie at E[Y] and no-restart must win.
func tiePreference(k Kind) int {
	switch k {
	case NoRestart:
		return 0
	case FittedOptimal:
		return 1
	case Luby:
		return 2
	default:
		return 3
	}
}

// priceTied reports whether two prices are operationally
// indistinguishable (within a ppm, or both infinite).
func priceTied(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-6*math.Max(math.Abs(a), math.Abs(b))
}

// Panel prices the standard four-way comparison under d and returns
// it ranked best-first: no-restart, fixed-cutoff at the law's median,
// Luby with unit q(0.05), and the fitted optimum. Ties within a ppm
// break by tiePreference, so the winner is deterministic — and is
// no-restart on an exponential law, by memorylessness.
func Panel(d dist.Dist) ([]Evaluation, error) {
	if d == nil {
		return nil, errors.New("policy: nil distribution")
	}
	l := distLaw{d}
	meanY := l.mean()
	if math.IsNaN(meanY) {
		return nil, errors.New("policy: distribution has no mean")
	}
	optP, optE, err := Optimal(d)
	if err != nil {
		return nil, err
	}
	median := d.Quantile(0.5)
	unit := d.Quantile(0.05)
	if !(unit > 0) {
		unit = math.Max(median/16, math.SmallestNonzeroFloat64)
	}
	evals := []Evaluation{
		{Policy: Policy{Kind: NoRestart}, Expected: meanY},
		{Policy: Policy{Kind: FixedCutoff, Cutoff: median}},
		{Policy: Policy{Kind: Luby, Unit: unit}},
		{Policy: optP, Expected: optE},
	}
	for i := range evals {
		e := &evals[i]
		if e.Policy.Kind == FixedCutoff || e.Policy.Kind == Luby {
			e.Expected, err = price(l, e.Policy)
			if err != nil {
				return nil, err
			}
		}
		e.Gain = meanY / e.Expected
	}
	sort.SliceStable(evals, func(i, j int) bool {
		a, b := evals[i], evals[j]
		if priceTied(a.Expected, b.Expected) {
			return tiePreference(a.Policy.Kind) < tiePreference(b.Policy.Kind)
		}
		return a.Expected < b.Expected
	})
	return evals, nil
}
