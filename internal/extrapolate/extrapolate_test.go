package extrapolate

import (
	"context"
	"errors"
	"math"
	"testing"

	"lasvegas/internal/adaptive"
	"lasvegas/internal/core"
	"lasvegas/internal/csp"
	"lasvegas/internal/dist"
	"lasvegas/internal/fit"
	"lasvegas/internal/problems"
	"lasvegas/internal/runtimes"
	"lasvegas/internal/xrand"
)

// syntheticExp builds campaigns from shifted exponentials whose scale
// grows exponentially with size — the growth law of local search on
// NP-hard instances the package assumes.
func syntheticExp(t *testing.T, sizes []int, runs int) ([]Observation, func(size int) dist.ShiftedExponential) {
	t.Helper()
	truthAt := func(size int) dist.ShiftedExponential {
		scale := math.Exp(2 + 0.5*float64(size)) // 1/λ
		shift := math.Exp(0.3 * float64(size))
		d, err := dist.NewShiftedExponential(shift, 1/scale)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	obs := make([]Observation, len(sizes))
	for i, s := range sizes {
		obs[i] = Observation{
			Size:   s,
			Sample: dist.SampleN(truthAt(s), xrand.New(uint64(10+s)), runs),
		}
	}
	return obs, truthAt
}

func TestLearnRecoversExponentialTrends(t *testing.T) {
	obs, truthAt := syntheticExp(t, []int{8, 10, 12, 14}, 800)
	m, err := Learn(obs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if m.Family != fit.FamShiftedExponential && m.Family != fit.FamExponential {
		t.Fatalf("family %v", m.Family)
	}
	if len(m.Fits) != 4 {
		t.Fatalf("%d per-size fits", len(m.Fits))
	}
	// Extrapolate two sizes beyond the data and compare the implied
	// mean against the truth.
	const target = 18
	d, err := m.DistAt(target)
	if err != nil {
		t.Fatal(err)
	}
	truth := truthAt(target)
	if math.Abs(d.Mean()-truth.Mean()) > 0.35*truth.Mean() {
		t.Errorf("extrapolated mean %v, truth %v", d.Mean(), truth.Mean())
	}
}

func TestExtrapolatedSpeedupCloseToTruth(t *testing.T) {
	obs, truthAt := syntheticExp(t, []int{8, 10, 12, 14}, 800)
	m, err := Learn(obs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	const target = 16
	pred, err := m.PredictorAt(target)
	if err != nil {
		t.Fatal(err)
	}
	truthPred, err := core.NewPredictor(truthAt(target))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{16, 64, 256} {
		got, err := pred.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := truthPred.Speedup(n)
		if math.Abs(got-want) > 0.30*want {
			t.Errorf("n=%d: extrapolated G=%v, truth %v", n, got, want)
		}
	}
}

func TestLearnLognormalFamily(t *testing.T) {
	// Lognormal truths with μ linear in size.
	mk := func(size int) dist.LogNormal {
		d, err := dist.NewLogNormal(0, 1+0.8*float64(size), 1.1)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	sizes := []int{6, 8, 10}
	obs := make([]Observation, len(sizes))
	for i, s := range sizes {
		obs[i] = Observation{Size: s, Sample: dist.SampleN(mk(s), xrand.New(uint64(30+s)), 900)}
	}
	m, err := Learn(obs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Lognormal data is often also fit by a shifted exponential at
	// finite samples; require only that the learned model's mean at a
	// target size is in the right ballpark.
	const target = 12
	d, err := m.DistAt(target)
	if err != nil {
		t.Fatal(err)
	}
	truth := mk(target)
	ratio := d.Mean() / truth.Mean()
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("extrapolated mean %v vs truth %v (family %v)", d.Mean(), truth.Mean(), m.Family)
	}
}

func TestLearnValidation(t *testing.T) {
	if _, err := Learn(nil, 0.05); err == nil {
		t.Error("no observations accepted")
	}
	if _, err := Learn([]Observation{{Size: 5, Sample: []float64{1, 2}}}, 0.05); err == nil {
		t.Error("single size accepted")
	}
	dup := []Observation{
		{Size: 5, Sample: []float64{1, 2, 3}},
		{Size: 5, Sample: []float64{4, 5, 6}},
	}
	if _, err := Learn(dup, 0.05); err == nil {
		t.Error("duplicate sizes accepted")
	}
}

func TestLearnFailsOnUnstableFamily(t *testing.T) {
	// One size exponential-ish, one size a two-point comb that nothing
	// continuous fits.
	r := xrand.New(50)
	expo, _ := dist.NewExponential(0.01)
	comb := make([]float64, 300)
	for i := range comb {
		comb[i] = float64(i%2)*1000 + 1
	}
	obs := []Observation{
		{Size: 5, Sample: dist.SampleN(expo, r, 300)},
		{Size: 7, Sample: comb},
	}
	if _, err := Learn(obs, 0.05); !errors.Is(err, ErrNoStableFamily) {
		t.Errorf("want ErrNoStableFamily, got %v", err)
	}
}

func TestDistAtValidation(t *testing.T) {
	obs, _ := syntheticExp(t, []int{8, 10}, 400)
	m, err := Learn(obs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DistAt(0); err == nil {
		t.Error("size 0 accepted")
	}
}

func TestMinPValue(t *testing.T) {
	obs, _ := syntheticExp(t, []int{8, 10, 12}, 500)
	m, err := Learn(obs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	p := m.MinPValue()
	if p < 0.05 || p > 1 {
		t.Errorf("MinPValue %v", p)
	}
}

// TestLiveCostasExtrapolation is the paper's §8 scenario end to end:
// learn on Costas 9–11 campaigns, extrapolate to 12, and compare the
// predicted mean against a real size-12 campaign.
func TestLiveCostasExtrapolation(t *testing.T) {
	if testing.Short() {
		t.Skip("live campaigns skipped in -short")
	}
	collect := func(size, runs int) []float64 {
		factory := func() (csp.Problem, error) { return problems.New(problems.Costas, size) }
		c, err := runtimes.Collect(context.Background(), factory, adaptive.Params{}, runs, uint64(size), 0)
		if err != nil {
			t.Fatal(err)
		}
		return c.Iterations
	}
	obs := []Observation{
		{Size: 9, Sample: collect(9, 200)},
		{Size: 10, Sample: collect(10, 200)},
		{Size: 11, Sample: collect(11, 200)},
	}
	m, err := Learn(obs, 0.01)
	if err != nil {
		t.Skipf("no stable family on this seed: %v", err)
	}
	d, err := m.DistAt(12)
	if err != nil {
		t.Fatal(err)
	}
	actual := collect(12, 150)
	var mean float64
	for _, x := range actual {
		mean += x
	}
	mean /= float64(len(actual))
	ratio := d.Mean() / mean
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("extrapolated mean %v vs measured %v (ratio %.2f)", d.Mean(), mean, ratio)
	}
	t.Logf("extrapolated Costas-12 mean %.0f, measured %.0f (family %v)", d.Mean(), mean, m.Family)
}
