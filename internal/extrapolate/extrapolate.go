// Package extrapolate implements the method proposed in the paper's
// conclusion (§8): predict the parallel speed-up of a *large*
// instance without ever running it, by learning the runtime
// distribution on small instances of the same problem.
//
// The paper's hypothesis: "given a problem and an algorithm, the
// general shape of the distribution is the same when the size of the
// instances varies" (e.g. every ALL-INTERVAL instance they tested was
// shifted exponential). Under that hypothesis the procedure is:
//
//  1. collect sequential campaigns at several small sizes;
//  2. find one distribution family accepted by the KS test at every
//     size (family stability check);
//  3. regress the family's parameters against instance size — scale
//     parameters grow exponentially for NP-hard local search, so
//     scale-like parameters are regressed in log space, location
//     (μ of the lognormal) linearly;
//  4. evaluate the regression at the target size and feed the
//     resulting distribution to the core predictor.
//
// The extrapolation is honest about its assumptions: Learn fails when
// no family is stable, and Model records the per-size fits so callers
// can inspect the trend quality.
package extrapolate

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"lasvegas/internal/core"
	"lasvegas/internal/dist"
	"lasvegas/internal/fit"
	"lasvegas/internal/ks"
	"lasvegas/internal/stats"
)

// ErrNoStableFamily is returned when no candidate family passes the
// KS test at every observed size.
var ErrNoStableFamily = errors.New("extrapolate: no distribution family is stable across sizes")

// Observation pairs an instance size with its sequential runtime
// sample (iteration counts).
type Observation struct {
	Size   int
	Sample []float64
}

// SizeFit records the accepted fit at one size.
type SizeFit struct {
	Size int
	Dist dist.Dist
	KS   ks.Result
}

// trend is one regressed parameter curve.
type trend struct {
	name      string
	slope     float64
	intercept float64
	logSpace  bool // regression done on log(value)
}

func (t trend) at(size float64) float64 {
	v := t.intercept + t.slope*size
	if t.logSpace {
		return math.Exp(v)
	}
	return v
}

// Model is a learned family + parameter trends, usable at any size.
type Model struct {
	Family fit.Family
	Fits   []SizeFit
	trends []trend
}

// candidate families, in the paper's order of preference.
var candidates = []fit.Family{fit.FamShiftedExponential, fit.FamExponential, fit.FamLogNormal}

// Learn fits every candidate family at every size and keeps the
// family with the best worst-case KS p-value, provided it is accepted
// (p ≥ alpha) everywhere. At least two distinct sizes are required
// (three or more give a meaningful trend).
func Learn(obs []Observation, alpha float64) (*Model, error) {
	if len(obs) < 2 {
		return nil, errors.New("extrapolate: need at least two sizes")
	}
	sorted := append([]Observation(nil), obs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Size < sorted[j].Size })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Size == sorted[i-1].Size {
			return nil, fmt.Errorf("extrapolate: duplicate size %d", sorted[i].Size)
		}
	}

	type familyFits struct {
		family fit.Family
		fits   []SizeFit
		minP   float64
	}
	var best *familyFits
	for _, fam := range candidates {
		ff := familyFits{family: fam, minP: math.Inf(1)}
		ok := true
		for _, o := range sorted {
			results, err := fit.Auto(o.Sample, fam)
			if err != nil || results[0].Err != nil {
				ok = false
				break
			}
			r := results[0]
			if r.KS.RejectAt(alpha) {
				ok = false
				break
			}
			ff.fits = append(ff.fits, SizeFit{Size: o.Size, Dist: r.Dist, KS: r.KS})
			ff.minP = math.Min(ff.minP, r.KS.PValue)
		}
		if !ok {
			continue
		}
		if best == nil || ff.minP > best.minP {
			f := ff
			best = &f
		}
	}
	if best == nil {
		return nil, ErrNoStableFamily
	}
	m := &Model{Family: best.family, Fits: best.fits}
	if err := m.buildTrends(); err != nil {
		return nil, err
	}
	return m, nil
}

// paramsOf extracts the regressable parameters of a fitted law.
func paramsOf(family fit.Family, d dist.Dist) ([]trend, []float64, error) {
	switch family {
	case fit.FamShiftedExponential, fit.FamExponential:
		se, ok := d.(dist.ShiftedExponential)
		if !ok {
			return nil, nil, fmt.Errorf("extrapolate: %T is not a shifted exponential", d)
		}
		// Regress the mean excess 1/λ in log space (exponential growth
		// with size) and the shift in log1p space.
		return []trend{
				{name: "scale", logSpace: true},
				{name: "shift", logSpace: true},
			}, []float64{
				math.Log(1 / se.Rate),
				math.Log1p(se.Shift),
			}, nil
	case fit.FamLogNormal:
		ln, ok := d.(dist.LogNormal)
		if !ok {
			return nil, nil, fmt.Errorf("extrapolate: %T is not a lognormal", d)
		}
		// μ is already a log-scale quantity: regress linearly. σ and
		// the shift regress linearly and in log1p space respectively.
		return []trend{
				{name: "mu"},
				{name: "sigma"},
				{name: "shift", logSpace: true},
			}, []float64{
				ln.Mu,
				ln.Sigma,
				math.Log1p(ln.Shift),
			}, nil
	}
	return nil, nil, fmt.Errorf("extrapolate: unsupported family %q", family)
}

func (m *Model) buildTrends() error {
	shapes, _, err := paramsOf(m.Family, m.Fits[0].Dist)
	if err != nil {
		return err
	}
	sizes := make([]float64, len(m.Fits))
	values := make([][]float64, len(shapes))
	for i := range values {
		values[i] = make([]float64, len(m.Fits))
	}
	for j, sf := range m.Fits {
		sizes[j] = float64(sf.Size)
		_, vals, err := paramsOf(m.Family, sf.Dist)
		if err != nil {
			return err
		}
		for i, v := range vals {
			values[i][j] = v
		}
	}
	m.trends = make([]trend, len(shapes))
	for i, shape := range shapes {
		slope, intercept, err := stats.LinearFit(sizes, values[i])
		if err != nil {
			return fmt.Errorf("extrapolate: trend %q: %w", shape.name, err)
		}
		m.trends[i] = trend{name: shape.name, slope: slope, intercept: intercept, logSpace: shape.logSpace}
	}
	return nil
}

// DistAt evaluates the learned trends at the target size and returns
// the extrapolated runtime distribution.
func (m *Model) DistAt(size int) (dist.Dist, error) {
	if size < 1 {
		return nil, fmt.Errorf("extrapolate: size %d", size)
	}
	s := float64(size)
	switch m.Family {
	case fit.FamShiftedExponential, fit.FamExponential:
		scale := m.trendValue("scale", s)
		shift := m.trendValue("shift", s) - 1 // undo log1p's +1
		if shift < 0 {
			shift = 0
		}
		if !(scale > 0) {
			return nil, fmt.Errorf("extrapolate: non-positive scale at size %d", size)
		}
		return dist.NewShiftedExponential(shift, 1/scale)
	case fit.FamLogNormal:
		mu := m.trendValue("mu", s)
		sigma := m.trendValue("sigma", s)
		shift := m.trendValue("shift", s) - 1
		if shift < 0 {
			shift = 0
		}
		if !(sigma > 0) {
			// σ trends can cross zero when extrapolating far; clamp to
			// the smallest observed σ rather than failing.
			sigma = m.smallestSigma()
		}
		return dist.NewLogNormal(shift, mu, sigma)
	}
	return nil, fmt.Errorf("extrapolate: unsupported family %q", m.Family)
}

func (m *Model) trendValue(name string, size float64) float64 {
	for _, t := range m.trends {
		if t.name == name {
			if t.logSpace {
				return t.at(size) // already exponentiated
			}
			return t.at(size)
		}
	}
	return math.NaN()
}

func (m *Model) smallestSigma() float64 {
	s := math.Inf(1)
	for _, sf := range m.Fits {
		if ln, ok := sf.Dist.(dist.LogNormal); ok && ln.Sigma < s {
			s = ln.Sigma
		}
	}
	if math.IsInf(s, 1) {
		return 1
	}
	return s
}

// PredictorAt returns a speed-up predictor for the target size.
func (m *Model) PredictorAt(size int) (*core.Predictor, error) {
	d, err := m.DistAt(size)
	if err != nil {
		return nil, err
	}
	return core.NewPredictor(d)
}

// MinPValue returns the weakest per-size KS p-value of the stable
// family — a quality indicator for the extrapolation.
func (m *Model) MinPValue() float64 {
	p := math.Inf(1)
	for _, sf := range m.Fits {
		p = math.Min(p, sf.KS.PValue)
	}
	return p
}
