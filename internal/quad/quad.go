// Package quad provides the numerical integration routines behind the
// speed-up predictor: adaptive Simpson quadrature, fixed-order
// Gauss–Legendre rules, double-exponential (tanh-sinh) quadrature for
// integrands with endpoint singularities, and transforms for
// semi-infinite intervals.
//
// The paper computes E[Z(n)] — the first moment of the first order
// statistic — either symbolically (exponential family) or "with a
// numerical integration step" (lognormal, via Mathematica). This
// package is the Go replacement for that Mathematica step.
package quad

import (
	"errors"
	"math"
	"sync"
)

// ErrNoConvergence is reported when an adaptive rule exhausts its
// subdivision budget before reaching the requested tolerance.
var ErrNoConvergence = errors.New("quad: integration did not converge")

// Func is a scalar integrand.
type Func func(float64) float64

// maxDepth bounds adaptive Simpson recursion; 2^50 subdivisions is far
// beyond any sane request and only guards against pathological input.
const maxDepth = 50

// AdaptiveSimpson integrates f over [a, b] to absolute tolerance tol
// using adaptive Simpson quadrature with Richardson correction.
func AdaptiveSimpson(f Func, a, b, tol float64) (float64, error) {
	if math.IsNaN(a) || math.IsNaN(b) {
		return 0, errors.New("quad: NaN interval endpoint")
	}
	if a == b {
		return 0, nil
	}
	if tol <= 0 {
		tol = 1e-10
	}
	fa, fb := f(a), f(b)
	m, fm, whole := simpsonStep(f, a, b, fa, fb)
	v, err := adaptAux(f, a, b, fa, fb, m, fm, whole, tol, maxDepth)
	return v, err
}

// simpsonStep returns the midpoint, f(midpoint) and the Simpson
// estimate over [a,b].
func simpsonStep(f Func, a, b, fa, fb float64) (m, fm, s float64) {
	m = (a + b) / 2
	fm = f(m)
	s = (b - a) / 6 * (fa + 4*fm + fb)
	return
}

func adaptAux(f Func, a, b, fa, fb, m, fm, whole, tol float64, depth int) (float64, error) {
	lm, flm, left := simpsonStep(f, a, m, fa, fm)
	rm, frm, right := simpsonStep(f, m, b, fm, fb)
	delta := left + right - whole
	if depth <= 0 {
		return left + right + delta/15, ErrNoConvergence
	}
	if math.Abs(delta) <= 15*tol {
		return left + right + delta/15, nil
	}
	lv, lerr := adaptAux(f, a, m, fa, fm, lm, flm, left, tol/2, depth-1)
	rv, rerr := adaptAux(f, m, b, fm, fb, rm, frm, right, tol/2, depth-1)
	if lerr != nil {
		return lv + rv, lerr
	}
	return lv + rv, rerr
}

// GaussLegendre integrates f over [a, b] with an n-point
// Gauss–Legendre rule (exact for polynomials of degree 2n-1). Nodes
// and weights are computed on first use per order and cached.
func GaussLegendre(f Func, a, b float64, n int) float64 {
	if n < 1 {
		n = 16
	}
	nodes, weights := legendreRule(n)
	mid, half := (a+b)/2, (b-a)/2
	var sum float64
	for i, x := range nodes {
		sum += weights[i] * f(mid+half*x)
	}
	return sum * half
}

// legendre rule cache, keyed by order. Synchronized so the parallel
// experiment lab can hit first-use from any goroutine; rules are
// immutable once stored, so readers share slices safely.
var (
	ruleMu    sync.RWMutex
	ruleCache = map[int][2][]float64{}
)

// Warm precomputes and caches the n-point rule; an optional
// optimization to move rule construction out of a measured section.
func Warm(n int) { legendreRule(n) }

func legendreRule(n int) (nodes, weights []float64) {
	ruleMu.RLock()
	r, ok := ruleCache[n]
	ruleMu.RUnlock()
	if ok {
		return r[0], r[1]
	}
	nodes = make([]float64, n)
	weights = make([]float64, n)
	// Newton iteration on P_n with the A&S asymptotic initial guess.
	for i := 0; i < (n+1)/2; i++ {
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			p0, p1 := 1.0, 0.0
			for j := 0; j < n; j++ {
				p2 := p1
				p1 = p0
				p0 = ((2*float64(j)+1)*x*p1 - float64(j)*p2) / (float64(j) + 1)
			}
			// derivative of P_n at x
			pp = float64(n) * (x*p0 - p1) / (x*x - 1)
			dx := p0 / pp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		nodes[i] = -x
		nodes[n-1-i] = x
		w := 2 / ((1 - x*x) * pp * pp)
		weights[i] = w
		weights[n-1-i] = w
	}
	ruleMu.Lock()
	ruleCache[n] = [2][]float64{nodes, weights}
	ruleMu.Unlock()
	return nodes, weights
}

// TanhSinh integrates f over the open interval (a, b) with
// double-exponential quadrature. It tolerates integrable singularities
// at either endpoint, which is exactly the situation for
// quantile-domain integrals ∫₀¹ Q(u)·n(1-u)^{n-1} du where Q diverges
// at u→1 for unbounded distributions.
func TanhSinh(f Func, a, b, tol float64) (float64, error) {
	if a == b {
		return 0, nil
	}
	if tol <= 0 {
		tol = 1e-12
	}
	half := (b - a) / 2
	g := func(t float64) float64 {
		// x = mid + half·tanh(π/2·sinh t); weight = derivative. The
		// abscissa is anchored to the nearer endpoint so that the
		// distance to it keeps full relative precision — evaluating
		// f(mid + half·tanh u) directly destroys endpoint-singular
		// integrands by cancellation.
		s := math.Sinh(t)
		c := math.Cosh(t)
		u := math.Pi / 2 * s
		sech := 1 / math.Cosh(u)
		var x float64
		if t <= 0 {
			// 1 + tanh(u) = 2/(1+e^{-2u})
			x = a + half*2/(1+math.Exp(-2*u))
		} else {
			// 1 - tanh(u) = 2/(1+e^{2u})
			x = b - half*2/(1+math.Exp(2*u))
		}
		w := half * math.Pi / 2 * c * sech * sech
		if w == 0 || math.IsInf(x, 0) {
			return 0
		}
		v := f(x)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0 // integrable endpoint singularity: weight kills it
		}
		return v * w
	}
	// Trapezoid on t ∈ [-tmax, tmax], halving h until converged.
	const tmax = 4.0 // exp-exp decay: e^{-pi/2*sinh(4)} ≈ 3e-19
	h := 1.0
	sum0 := g(0)
	for t := h; t <= tmax; t += h {
		sum0 += g(t) + g(-t)
	}
	prev := h * sum0
	for level := 1; level <= 12; level++ {
		h /= 2
		sum := 0.0
		// Add only the new (odd) abscissae of this level.
		for t := h; t <= tmax; t += 2 * h {
			sum += g(t) + g(-t)
		}
		cur := prev/2 + h*sum
		if level >= 3 && math.Abs(cur-prev) <= tol*(1+math.Abs(cur)) {
			return cur, nil
		}
		prev = cur
	}
	return prev, ErrNoConvergence
}

// BatchFunc evaluates an integrand over a batch of abscissae,
// writing f(xs[i]) into dst[i]. len(dst) == len(xs).
type BatchFunc func(xs, dst []float64)

// batchScratch holds the per-level node/weight/value buffers of
// TanhSinhBatch; pooled so steady-state batched integration does not
// allocate (the kernel's hot-path rule).
type batchScratch struct {
	ts, xs, ws, vs []float64
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// TanhSinhBatch is TanhSinh for integrands that are cheaper to
// evaluate in batches (e.g. a batched quantile function): each
// trapezoid refinement level gathers all its new abscissae and makes
// one BatchFunc call. Nodes, weights and refinement schedule are
// identical to TanhSinh, so both converge to the same values.
func TanhSinhBatch(f BatchFunc, a, b, tol float64) (float64, error) {
	if a == b {
		return 0, nil
	}
	if tol <= 0 {
		tol = 1e-12
	}
	half := (b - a) / 2
	const tmax = 4.0
	scratch := batchPool.Get().(*batchScratch)
	defer batchPool.Put(scratch)
	xs, ws, vs := scratch.xs, scratch.ws, scratch.vs
	defer func() { scratch.xs, scratch.ws, scratch.vs = xs, ws, vs }()
	// node computes the abscissa/weight pair of parameter t with the
	// same endpoint anchoring as TanhSinh's scalar g.
	node := func(t float64) (x, w float64) {
		s := math.Sinh(t)
		c := math.Cosh(t)
		u := math.Pi / 2 * s
		sech := 1 / math.Cosh(u)
		if t <= 0 {
			x = a + half*2/(1+math.Exp(-2*u))
		} else {
			x = b - half*2/(1+math.Exp(2*u))
		}
		w = half * math.Pi / 2 * c * sech * sech
		return
	}
	// level evaluates the gathered ts in one batch call and returns
	// Σ w·f(x), dropping zero-weight and non-finite nodes exactly as
	// the scalar rule does.
	level := func(ts []float64) float64 {
		xs, ws, vs = xs[:0], ws[:0], vs[:0]
		for _, t := range ts {
			x, w := node(t)
			if w == 0 || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, x)
			ws = append(ws, w)
		}
		if len(xs) == 0 {
			return 0
		}
		if cap(vs) < len(xs) {
			vs = make([]float64, len(xs))
		}
		vs = vs[:len(xs)]
		f(xs, vs)
		var sum float64
		for i, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue // integrable endpoint singularity
			}
			sum += v * ws[i]
		}
		return sum
	}
	h := 1.0
	ts := append(scratch.ts[:0], 0)
	defer func() { scratch.ts = ts }()
	for t := h; t <= tmax; t += h {
		ts = append(ts, t, -t)
	}
	prev := h * level(ts)
	for lv := 1; lv <= 12; lv++ {
		h /= 2
		ts = ts[:0]
		for t := h; t <= tmax; t += 2 * h {
			ts = append(ts, t, -t)
		}
		cur := prev/2 + h*level(ts)
		if lv >= 3 && math.Abs(cur-prev) <= tol*(1+math.Abs(cur)) {
			return cur, nil
		}
		prev = cur
	}
	return prev, ErrNoConvergence
}

// UnitBatch integrates a batch integrand over [0, 1] with tanh-sinh —
// the batched counterpart of Unit used by the quantile-domain
// order-statistic moments.
func UnitBatch(f BatchFunc, tol float64) (float64, error) {
	return TanhSinhBatch(f, 0, 1, tol)
}

// ToInfinity integrates f over [a, ∞) by mapping x = a + t/(1-t) onto
// t ∈ [0, 1) and applying tanh-sinh (which absorbs the t→1
// singularity of the Jacobian provided f decays).
func ToInfinity(f Func, a, tol float64) (float64, error) {
	g := func(t float64) float64 {
		if t >= 1 {
			return 0
		}
		om := 1 - t
		x := a + t/om
		return f(x) / (om * om)
	}
	return TanhSinh(g, 0, 1, tol)
}

// Unit integrates f over [0, 1] with tanh-sinh; a convenience used by
// the quantile-domain order-statistic moments.
func Unit(f Func, tol float64) (float64, error) { return TanhSinh(f, 0, 1, tol) }
