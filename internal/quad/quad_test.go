package quad

import (
	"math"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol*(1+math.Abs(want)) {
		t.Fatalf("%s: got %.15g, want %.15g", msg, got, want)
	}
}

func TestAdaptiveSimpsonPolynomial(t *testing.T) {
	v, err := AdaptiveSimpson(func(x float64) float64 { return 3*x*x + 2*x + 1 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, 8+4+2, 1e-12, "∫(3x²+2x+1)")
}

func TestAdaptiveSimpsonSin(t *testing.T) {
	v, err := AdaptiveSimpson(math.Sin, 0, math.Pi, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, 2, 1e-10, "∫sin over [0,π]")
}

func TestAdaptiveSimpsonEmptyInterval(t *testing.T) {
	v, err := AdaptiveSimpson(math.Exp, 1, 1, 1e-10)
	if err != nil || v != 0 {
		t.Fatalf("empty interval: got %v, %v", v, err)
	}
}

func TestAdaptiveSimpsonReversedInterval(t *testing.T) {
	fwd, _ := AdaptiveSimpson(math.Exp, 0, 1, 1e-12)
	rev, _ := AdaptiveSimpson(math.Exp, 1, 0, 1e-12)
	approx(t, rev, -fwd, 1e-12, "orientation")
}

func TestGaussLegendreExactForPolynomials(t *testing.T) {
	// n-point GL is exact for degree 2n-1: check x^9 with n=5.
	v := GaussLegendre(func(x float64) float64 { return math.Pow(x, 9) }, 0, 1, 5)
	approx(t, v, 0.1, 1e-13, "GL ∫x⁹")
}

func TestGaussLegendreGaussian(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(-x * x / 2) }
	v := GaussLegendre(f, -8, 8, 64)
	approx(t, v, math.Sqrt(2*math.Pi), 1e-12, "GL gaussian mass")
}

func TestTanhSinhSmooth(t *testing.T) {
	v, err := TanhSinh(math.Exp, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, math.E-1, 1e-10, "tanh-sinh ∫eˣ")
}

func TestTanhSinhEndpointSingularity(t *testing.T) {
	// ∫₀¹ 1/√x dx = 2, singular at 0.
	v, err := TanhSinh(func(x float64) float64 { return 1 / math.Sqrt(x) }, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, 2, 1e-8, "∫x^{-1/2}")
}

func TestTanhSinhLogSingularity(t *testing.T) {
	// ∫₀¹ ln(x) dx = -1.
	v, err := TanhSinh(math.Log, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, -1, 1e-9, "∫ln x")
}

func TestToInfinityExponential(t *testing.T) {
	v, err := ToInfinity(func(x float64) float64 { return math.Exp(-x) }, 0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, 1, 1e-9, "∫₀^∞ e^{-x}")
}

func TestToInfinityShifted(t *testing.T) {
	// ∫₅^∞ e^{-(x-5)} dx = 1
	v, err := ToInfinity(func(x float64) float64 { return math.Exp(-(x - 5)) }, 5, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, 1, 1e-9, "shifted exponential mass")
}

func TestToInfinityMeanOfExponential(t *testing.T) {
	// E[X] for rate λ=0.25: ∫ x λ e^{-λx} = 4.
	lam := 0.25
	v, err := ToInfinity(func(x float64) float64 { return x * lam * math.Exp(-lam*x) }, 0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, 4, 1e-8, "exponential mean")
}

func TestUnitQuantileDomainExpectation(t *testing.T) {
	// E[X] = ∫₀¹ Q(u) du for exponential rate 1: Q(u) = -ln(1-u), E = 1.
	v, err := Unit(func(u float64) float64 { return -math.Log1p(-u) }, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, 1, 1e-9, "quantile-domain mean")
}

func TestWarmIsIdempotent(t *testing.T) {
	Warm(20)
	Warm(20)
	nodes, weights := legendreRule(20)
	if len(nodes) != 20 || len(weights) != 20 {
		t.Fatal("rule has wrong size")
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	approx(t, sum, 2, 1e-13, "GL weights sum to 2")
}

func BenchmarkTanhSinhSmooth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = TanhSinh(math.Exp, 0, 1, 1e-10)
	}
}

func BenchmarkGaussLegendre64(b *testing.B) {
	Warm(64)
	f := func(x float64) float64 { return math.Exp(-x * x) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GaussLegendre(f, -5, 5, 64)
	}
}
