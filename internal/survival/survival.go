// Package survival fits runtime distributions to *censored* Las Vegas
// campaigns — the samples produced by budgeted collection (`lvseq
// -maxiter`, Predictor.WithBudget), where runs that exhaust the
// iteration budget are observed only as "longer than the budget".
//
// Hoos & Stützle ("Evaluating Las Vegas Algorithms — Pitfalls and
// Remedies") show right-censored runtime distributions are the norm
// for bounded Las Vegas measurements and are handled with survival
// estimators rather than discarded. This package provides the two
// standard tools, shaped to this repository's prediction pipeline:
//
//   - KaplanMeier — the nonparametric product-limit estimator,
//     exposed as a dist.Dist with the same sorted-backing design as
//     dist.Empirical: O(log m) CDF, O(log m) quantile, and an exact
//     one-pass MinExpectation, so a censored campaign can still feed
//     the plug-in speed-up predictor G(n) = E[Y]/E[Z(n)]. On a
//     censoring-free sample a KaplanMeier reproduces dist.Empirical
//     bit for bit.
//   - Censored maximum likelihood for the parametric families the
//     paper accepts (exponential, shifted exponential, lognormal)
//     plus the min-stable Weibull: closed forms where they exist
//     (the exponential variants), damped Newton on the censored
//     log-likelihood elsewhere (Weibull shape profile, lognormal
//     (μ, σ)).
//
// Goodness of fit under censoring cannot use the plain KS/AD tests —
// the censored half of the sample carries no exact values. Auto
// therefore ranks candidate families by censored log-likelihood and
// attaches KS and Anderson–Darling verdicts computed on the
// *uncensored region only*: under a fixed budget B the uncensored
// observations are i.i.d. draws from the conditional law
// F(x)/F(B), so the tests run against that truncated distribution.
//
// All estimators are deterministic for a given sample; none allocate
// on evaluation paths after construction.
package survival

import (
	"errors"
	"fmt"
	"sort"
)

// ErrSample reports a sample unusable for censored estimation.
var ErrSample = errors.New("survival: unusable sample")

// ErrAllCensored reports a sample with no uncensored observation:
// every run hit the budget, so there is no event to anchor any
// estimate (the Kaplan–Meier curve would never leave 1).
var ErrAllCensored = errors.New("survival: every observation is censored")

// obs is one observation with its censoring status.
type obs struct {
	x        float64
	censored bool
}

// validate runs the shared sample checks in one linear pass — no
// sort, no allocation — and returns the event count. Every exported
// estimator calls this; only the Kaplan–Meier constructor needs the
// sorted view (sortedObs) as well.
func validate(values []float64, censored []bool) (events int, err error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("%w: empty sample", ErrSample)
	}
	if len(censored) != len(values) {
		return 0, fmt.Errorf("%w: %d values but %d censoring flags",
			ErrSample, len(values), len(censored))
	}
	for i, x := range values {
		if x != x || x < 0 {
			return 0, fmt.Errorf("%w: observation %v", ErrSample, x)
		}
		if !censored[i] {
			events++
		}
	}
	if events == 0 {
		return 0, fmt.Errorf("%w (%d observations)", ErrAllCensored, len(values))
	}
	return events, nil
}

// sortedObs validates and sorts a censored sample: ascending by
// value, with events *before* censorings at tied values (the standard
// Kaplan–Meier convention — a run observed to finish at t proves the
// runtime can be t, while a run cut off at t only proves it exceeds
// t). Returns the sorted observations and the event count.
func sortedObs(values []float64, censored []bool) ([]obs, int, error) {
	events, err := validate(values, censored)
	if err != nil {
		return nil, 0, err
	}
	out := make([]obs, len(values))
	for i, x := range values {
		out[i] = obs{x: x, censored: censored[i]}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].x != out[j].x {
			return out[i].x < out[j].x
		}
		return !out[i].censored && out[j].censored
	})
	return out, events, nil
}

// split returns the event values and censoring times of a sample —
// the two sub-samples every likelihood below is built from.
func split(values []float64, censored []bool) (events, cens []float64) {
	events = make([]float64, 0, len(values))
	for i, x := range values {
		if censored[i] {
			cens = append(cens, x)
		} else {
			events = append(events, x)
		}
	}
	return events, cens
}
