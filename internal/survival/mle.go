package survival

import (
	"fmt"
	"math"

	"lasvegas/internal/dist"
	"lasvegas/internal/optim"
)

// The censored likelihood of a right-censored sample is
//
//	L(θ) = Π_events f(xᵢ; θ) · Π_censored S(cⱼ; θ),
//
// each event contributing its density and each censored run only its
// survival beyond the budget. The fitters below maximize it for the
// families the prediction pipeline accepts: closed forms for the
// exponential variants, damped Newton on the (profile)
// log-likelihood for Weibull and lognormal.

// Exponential fits the unshifted exponential by censored maximum
// likelihood. The MLE is closed-form: λ̂ = d / Σ xᵢ with d the event
// count and the sum over *all* observations (censored runs contribute
// their full budget of exposure). With no censoring this reduces to
// the complete-sample λ̂ = 1/mean.
func Exponential(values []float64, censored []bool) (dist.ShiftedExponential, error) {
	d, total, err := exposure(values, censored, 0)
	if err != nil {
		return dist.ShiftedExponential{}, err
	}
	if !(total > 0) {
		return dist.ShiftedExponential{}, fmt.Errorf("%w: zero total exposure", ErrSample)
	}
	return dist.NewExponential(float64(d) / total)
}

// ShiftedExponential fits the paper's §6.1 family under censoring:
// the shift estimate stays the observed minimum (the smallest
// observation is an event for budget-censored campaigns, since
// censored runs sit at the budget), and the rate MLE given that shift
// is λ̂ = d / Σ (xᵢ − x0). With no censoring this reduces exactly to
// the complete-sample estimators x0 = min, λ = 1/(mean − x0).
func ShiftedExponential(values []float64, censored []bool) (dist.ShiftedExponential, error) {
	if len(values) < 2 {
		return dist.ShiftedExponential{}, fmt.Errorf("%w: need ≥2 observations", ErrSample)
	}
	x0 := math.Inf(1)
	for _, x := range values {
		if x < x0 {
			x0 = x
		}
	}
	d, total, err := exposure(values, censored, x0)
	if err != nil {
		return dist.ShiftedExponential{}, err
	}
	if !(total > 0) {
		return dist.ShiftedExponential{}, fmt.Errorf("%w: zero spread above the shift", ErrSample)
	}
	return dist.NewShiftedExponential(x0, float64(d)/total)
}

// exposure validates the sample and returns the event count and the
// total exposure Σ (xᵢ − shift) over all observations.
func exposure(values []float64, censored []bool, shift float64) (int, float64, error) {
	if _, err := validate(values, censored); err != nil {
		return 0, 0, err
	}
	d, total := 0, 0.0
	for i, x := range values {
		if !censored[i] {
			d++
		}
		total += x - shift
	}
	return d, total, nil
}

// Weibull fits the two-parameter Weibull by censored maximum
// likelihood. The scale profiles out in closed form
// (scale^k = Σ xᵢ^k / d), leaving the one-dimensional shape equation
//
//	g(k) = 1/k + (1/d)·Σ_events ln xᵢ − Σ xᵢ^k ln xᵢ / Σ xᵢ^k = 0
//
// (sums without a subscript over all observations). g is strictly
// decreasing — g'(k) = −1/k² − Var_w(ln x) with weights xᵢ^k — so a
// damped Newton iteration converges from any positive start.
func Weibull(values []float64, censored []bool) (dist.Weibull, error) {
	if _, err := validate(values, censored); err != nil {
		return dist.Weibull{}, err
	}
	if len(values) < 2 {
		return dist.Weibull{}, fmt.Errorf("%w: need ≥2 observations", ErrSample)
	}
	// Normalize by the largest observation: the shape equation is
	// scale-invariant, and y = x/max keeps y^k from overflowing for
	// iteration counts in the millions.
	xmax := 0.0
	for _, x := range values {
		if x > xmax {
			xmax = x
		}
	}
	d := 0
	var meanLogE float64
	ys := make([]float64, len(values))
	for i, x := range values {
		if !(x > 0) {
			return dist.Weibull{}, fmt.Errorf("%w: non-positive observation %v", ErrSample, x)
		}
		ys[i] = x / xmax
		if !censored[i] {
			d++
			meanLogE += math.Log(ys[i])
		}
	}
	meanLogE /= float64(d)
	// g and its derivative, both in normalized space.
	gdg := func(k float64) (g, dg float64) {
		var sk, skl, skl2 float64
		for _, y := range ys {
			yk := math.Pow(y, k)
			ly := math.Log(y)
			sk += yk
			skl += yk * ly
			skl2 += yk * ly * ly
		}
		wMean := skl / sk
		g = 1/k + meanLogE - wMean
		dg = -1/(k*k) - (skl2/sk - wMean*wMean)
		return g, dg
	}
	k := 1.0
	converged := false
	for i := 0; i < 100; i++ {
		g, dg := gdg(k)
		if math.IsNaN(g) || dg >= 0 {
			return dist.Weibull{}, fmt.Errorf("%w: degenerate weibull likelihood", ErrSample)
		}
		step := g / dg
		next := k - step
		if next <= 0 {
			next = k / 2 // damp: stay in the positive half-line
		}
		if math.Abs(next-k) <= 1e-13*k {
			k = next
			converged = true
			break
		}
		k = next
		if k > 1e8 {
			return dist.Weibull{}, fmt.Errorf("%w: weibull shape diverged (zero spread?)", ErrSample)
		}
	}
	if !converged {
		return dist.Weibull{}, fmt.Errorf("%w: weibull shape iteration did not converge", ErrSample)
	}
	var sk float64
	for _, y := range ys {
		sk += math.Pow(y, k)
	}
	scale := xmax * math.Pow(sk/float64(d), 1/k)
	return dist.NewWeibull(k, scale)
}

// LogNormal fits the (unshifted) lognormal by censored maximum
// likelihood: damped Newton on ℓ(μ, σ) with the analytic gradient
//
//	∂ℓ/∂μ = (1/σ)·[Σ_e zᵢ + Σ_c h(zⱼ)]
//	∂ℓ/∂σ = (1/σ)·[Σ_e (zᵢ² − 1) + Σ_c zⱼ·h(zⱼ)]
//
// where z = (ln x − μ)/σ and h = φ/(1−Φ) is the standard normal
// hazard, and a finite-difference Hessian. Steps are halved until the
// log-likelihood improves (and σ stays positive); if Newton stalls,
// a Nelder–Mead polish from the same start finishes the job.
func LogNormal(values []float64, censored []bool) (dist.LogNormal, error) {
	if _, err := validate(values, censored); err != nil {
		return dist.LogNormal{}, err
	}
	if len(values) < 3 {
		return dist.LogNormal{}, fmt.Errorf("%w: need ≥3 observations", ErrSample)
	}
	logsE := make([]float64, 0, len(values))
	logsC := make([]float64, 0)
	for i, x := range values {
		if !(x > 0) {
			return dist.LogNormal{}, fmt.Errorf("%w: non-positive observation %v", ErrSample, x)
		}
		if censored[i] {
			logsC = append(logsC, math.Log(x))
		} else {
			logsE = append(logsE, math.Log(x))
		}
	}
	// Start from the complete-sample MLE with censored values treated
	// as events — biased low, but inside the basin of attraction.
	var mu0, s2 float64
	n := float64(len(values))
	for _, l := range logsE {
		mu0 += l
	}
	for _, l := range logsC {
		mu0 += l
	}
	mu0 /= n
	for _, l := range logsE {
		s2 += (l - mu0) * (l - mu0)
	}
	for _, l := range logsC {
		s2 += (l - mu0) * (l - mu0)
	}
	s2 /= n
	if !(s2 > 0) {
		return dist.LogNormal{}, fmt.Errorf("%w: zero log-spread", ErrSample)
	}
	sigma0 := math.Sqrt(s2)

	ll := func(mu, sigma float64) float64 {
		if !(sigma > 0) {
			return math.Inf(-1)
		}
		var sum float64
		for _, l := range logsE {
			z := (l - mu) / sigma
			sum += -math.Log(sigma) - 0.5*z*z
		}
		for _, l := range logsC {
			sum += logNormSurvival((l - mu) / sigma)
		}
		return sum
	}
	grad := func(mu, sigma float64) (gm, gs float64) {
		for _, l := range logsE {
			z := (l - mu) / sigma
			gm += z
			gs += z*z - 1
		}
		for _, l := range logsC {
			z := (l - mu) / sigma
			h := normHazard(z)
			gm += h
			gs += z * h
		}
		return gm / sigma, gs / sigma
	}

	mu, sigma := mu0, sigma0
	cur := ll(mu, sigma)
	converged := false
	for i := 0; i < 200; i++ {
		gm, gs := grad(mu, sigma)
		// Finite-difference Hessian from the analytic gradient.
		hm := 1e-6 * (1 + math.Abs(mu))
		hs := 1e-6 * sigma
		gmM, gsM := grad(mu+hm, sigma)
		gmS, gsS := grad(mu, sigma+hs)
		a := (gmM - gm) / hm // ∂²ℓ/∂μ²
		b := (gmS - gm) / hs // ∂²ℓ/∂μ∂σ
		c := (gsM - gs) / hm
		d := (gsS - gs) / hs // ∂²ℓ/∂σ²
		b = 0.5 * (b + c)    // symmetrize
		det := a*d - b*b
		var dm, ds float64
		if det > 0 && a < 0 {
			// Newton step −H⁻¹·g for a negative-definite Hessian.
			dm = -(d*gm - b*gs) / det
			ds = -(-b*gm + a*gs) / det
		} else {
			// Ascent fallback when the Hessian is not usable.
			scale := sigma / (1 + math.Hypot(gm, gs))
			dm, ds = gm*scale, gs*scale
		}
		improved := false
		for t := 0; t < 40; t++ {
			nm, ns := mu+dm, sigma+ds
			if ns > 0 {
				if next := ll(nm, ns); next > cur {
					mu, sigma, cur = nm, ns, next
					improved = true
					break
				}
			}
			dm /= 2
			ds /= 2
		}
		if !improved || math.Hypot(dm, ds) <= 1e-12*(1+math.Abs(mu)+sigma) {
			converged = true
			break
		}
	}
	if !converged {
		// Derivative-free polish from the same start; deterministic.
		x, _, err := optim.NelderMead(func(v []float64) float64 {
			return -ll(v[0], math.Exp(v[1]))
		}, []float64{mu, math.Log(sigma)}, []float64{0.1, 0.1}, 1e-12, 2000)
		if err != nil {
			return dist.LogNormal{}, fmt.Errorf("survival: lognormal MLE: %w", err)
		}
		mu, sigma = x[0], math.Exp(x[1])
	}
	return dist.NewLogNormal(0, mu, sigma)
}

// normHazard returns the standard normal hazard φ(z)/(1−Φ(z)),
// switching to the Mills-ratio asymptotic series for large z where
// the direct quotient underflows.
func normHazard(z float64) float64 {
	if z > 10 {
		z2 := z * z
		// 1/h = R(z) = (1/z)(1 − 1/z² + 3/z⁴ − 15/z⁶), |err| < 1e-10.
		return z / (1 - 1/z2 + 3/(z2*z2) - 15/(z2*z2*z2))
	}
	q := 0.5 * math.Erfc(z/math.Sqrt2)
	return math.Exp(-0.5*z*z) / (math.Sqrt(2*math.Pi) * q)
}

// logNormSurvival returns ln(1 − Φ(z)) stably for any z.
func logNormSurvival(z float64) float64 {
	if z > 10 {
		// ln Q = ln φ − ln h for the same asymptotic regime.
		return -0.5*z*z - 0.5*math.Log(2*math.Pi) - math.Log(normHazard(z))
	}
	return math.Log(0.5 * math.Erfc(z/math.Sqrt2))
}
