package survival

import (
	"fmt"
	"sort"

	"lasvegas/internal/dist"
	"lasvegas/internal/ks"
)

// Family identifies a candidate family for censored fitting. The set
// is the paper's accepted trio plus the min-stable Weibull; the other
// complete-sample families (normal, gamma, Lévy) have no censored
// estimator here and are rejected per-family by Auto.
type Family string

// Candidate families with censored maximum-likelihood estimators.
const (
	FamExponential        Family = "exponential"
	FamShiftedExponential Family = "shifted-exponential"
	FamWeibull            Family = "weibull"
	FamLogNormal          Family = "lognormal"
)

// Families returns every family with a censored estimator, in
// default preference order.
func Families() []Family {
	return []Family{FamExponential, FamShiftedExponential, FamLogNormal, FamWeibull}
}

// Result is one fitted candidate of the censored model-selection
// table.
type Result struct {
	Family Family
	Dist   dist.Dist
	// LogLik is the censored log-likelihood — the ranking criterion.
	LogLik float64
	// KS and AD are goodness-of-fit verdicts on the uncensored region
	// (see RestrictedKS); ADValid reports whether AD could be computed.
	KS      ks.Result
	AD      ks.Result
	ADValid bool
	// Err is non-nil when the family could not be fitted.
	Err error
}

// Auto fits every requested family (Families() when none are given)
// by censored maximum likelihood and returns the results ranked by
// descending censored log-likelihood, failed fits last. Each
// successful fit carries KS and AD verdicts restricted to the
// uncensored region below the cutoff (see Cutoff for its
// derivation from the budget). Samples with no events fail with
// ErrAllCensored.
func Auto(values []float64, censored []bool, budget float64, families ...Family) ([]Result, error) {
	if _, err := validate(values, censored); err != nil {
		return nil, err
	}
	if len(families) == 0 {
		families = Families()
	}
	cutoff := Cutoff(values, censored, budget)
	results := make([]Result, 0, len(families))
	for _, fam := range families {
		r := Result{Family: fam}
		var d dist.Dist
		var err error
		switch fam {
		case FamExponential:
			d, err = wrap(Exponential(values, censored))
		case FamShiftedExponential:
			d, err = wrap(ShiftedExponential(values, censored))
		case FamWeibull:
			d, err = wrap(Weibull(values, censored))
		case FamLogNormal:
			d, err = wrap(LogNormal(values, censored))
		default:
			err = fmt.Errorf("survival: family %q has no censored estimator", fam)
		}
		if err != nil {
			r.Err = err
			results = append(results, r)
			continue
		}
		r.Dist = d
		r.LogLik = LogLikelihood(d, values, censored)
		ksRes, err := RestrictedKS(d, values, censored, cutoff)
		if err != nil {
			r.Err = err
			results = append(results, r)
			continue
		}
		r.KS = ksRes
		if ad, err := RestrictedAD(d, values, censored, cutoff); err == nil {
			r.AD = ad
			r.ADValid = true
		}
		results = append(results, r)
	}
	sort.SliceStable(results, func(i, j int) bool {
		switch {
		case results[i].Err == nil && results[j].Err != nil:
			return true
		case results[i].Err != nil:
			return false
		}
		return results[i].LogLik > results[j].LogLik
	})
	return results, nil
}

// Best returns the highest-log-likelihood fit from Auto whose
// restricted-KS verdict is not rejected at alpha, or an error when
// every family fails or is rejected.
func Best(values []float64, censored []bool, budget, alpha float64, families ...Family) (Result, error) {
	results, err := Auto(values, censored, budget, families...)
	if err != nil {
		return Result{}, err
	}
	for _, r := range results {
		if r.Err == nil && !r.KS.RejectAt(alpha) {
			return r, nil
		}
	}
	return Result{}, fmt.Errorf("survival: no candidate family passes the restricted KS test at α=%v", alpha)
}

// wrap adapts a concrete (D, error) pair to (dist.Dist, error).
func wrap[D dist.Dist](d D, err error) (dist.Dist, error) {
	if err != nil {
		return nil, err
	}
	return d, nil
}
