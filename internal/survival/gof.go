package survival

import (
	"fmt"
	"math"

	"lasvegas/internal/dist"
	"lasvegas/internal/ks"
	"lasvegas/internal/xrand"
)

// LogLikelihood returns the censored log-likelihood of d on the
// sample: Σ_events ln f(xᵢ) + Σ_censored ln S(xᵢ). It is the ranking
// criterion Auto uses across families — unlike KS or AD it uses every
// observation, censored ones included, so a family that explains the
// budget-exceeding mass well is rewarded for it. Returns -Inf when
// the law assigns zero density to an event or zero survival to a
// censoring time.
func LogLikelihood(d dist.Dist, values []float64, censored []bool) float64 {
	var sum float64
	for i, x := range values {
		if censored[i] {
			s := 1 - d.CDF(x)
			if s <= 0 {
				return math.Inf(-1)
			}
			sum += math.Log(s)
		} else {
			f := d.PDF(x)
			if f <= 0 {
				return math.Inf(-1)
			}
			sum += math.Log(f)
		}
	}
	return sum
}

// truncated restricts a law to (-∞, at]: CDF and PDF renormalized by
// F(at). Under a fixed censoring budget B the *uncensored*
// observations of a campaign are i.i.d. draws from exactly this
// conditional law with at = B, which is what lets the ordinary
// one-sample KS and Anderson–Darling machinery run on the uncensored
// region of a censored sample. Verdict-only adapter: Mean and Var are
// not needed by the tests and are reported as NaN.
type truncated struct {
	base dist.Dist
	at   float64
	fAt  float64 // base CDF at the truncation point
}

func newTruncated(base dist.Dist, at float64) (truncated, error) {
	fAt := base.CDF(at)
	if !(fAt > 0) {
		return truncated{}, fmt.Errorf("%w: fitted law has no mass below the budget %v", ErrSample, at)
	}
	return truncated{base: base, at: at, fAt: fAt}, nil
}

func (t truncated) CDF(x float64) float64 {
	if x >= t.at {
		return 1
	}
	return t.base.CDF(x) / t.fAt
}

func (t truncated) PDF(x float64) float64 {
	if x > t.at {
		return 0
	}
	return t.base.PDF(x) / t.fAt
}

func (t truncated) Quantile(p float64) float64 {
	if p >= 1 {
		return t.at
	}
	return t.base.Quantile(p * t.fAt)
}

func (t truncated) Mean() float64 { return math.NaN() }
func (t truncated) Var() float64  { return math.NaN() }

func (t truncated) Sample(r *xrand.Rand) float64 {
	return t.Quantile(r.Float64Open())
}

func (t truncated) Support() (float64, float64) {
	lo, _ := t.base.Support()
	return lo, t.at
}

func (t truncated) String() string {
	return fmt.Sprintf("Truncated(%s at %.6g)", t.base, t.at)
}

// RestrictedKS runs the one-sample Kolmogorov–Smirnov test on the
// uncensored region of a censored sample: the events (observations
// below the cutoff) against the fitted law conditioned on X ≤ cutoff.
// cutoff should be the censoring budget; events above it (possible
// only under non-budget censoring patterns) are excluded. With no
// censored observations this is the ordinary one-sample test.
func RestrictedKS(d dist.Dist, values []float64, censored []bool, cutoff float64) (ks.Result, error) {
	sample, td, err := restrict(d, values, censored, cutoff)
	if err != nil {
		return ks.Result{}, err
	}
	return ks.OneSample(sample, td)
}

// RestrictedAD is the Anderson–Darling counterpart of RestrictedKS —
// the tail-sensitive verdict on the same conditional law.
func RestrictedAD(d dist.Dist, values []float64, censored []bool, cutoff float64) (ks.Result, error) {
	sample, td, err := restrict(d, values, censored, cutoff)
	if err != nil {
		return ks.Result{}, err
	}
	return ks.AndersonDarling(sample, td)
}

// restrict builds the event sub-sample below the cutoff and the
// conditional law it is tested against. When the sample carries no
// censoring the law is used as-is and every observation qualifies.
func restrict(d dist.Dist, values []float64, censored []bool, cutoff float64) ([]float64, dist.Dist, error) {
	if _, err := validate(values, censored); err != nil {
		return nil, nil, err
	}
	anyCensored := false
	for _, c := range censored {
		if c {
			anyCensored = true
			break
		}
	}
	if !anyCensored {
		return values, d, nil
	}
	sample := make([]float64, 0, len(values))
	for i, x := range values {
		if !censored[i] && x <= cutoff {
			sample = append(sample, x)
		}
	}
	if len(sample) == 0 {
		return nil, nil, fmt.Errorf("%w: no uncensored observation below the cutoff %v", ErrSample, cutoff)
	}
	td, err := newTruncated(d, cutoff)
	if err != nil {
		return nil, nil, err
	}
	return sample, td, nil
}

// Cutoff returns the censoring cutoff of a sample: the campaign
// budget when positive, otherwise the largest censored value (the
// only cutoff the data itself reveals). Samples without censoring
// return +Inf.
func Cutoff(values []float64, censored []bool, budget float64) float64 {
	if budget > 0 {
		return budget
	}
	cut := math.Inf(1)
	max, any := 0.0, false
	for i, x := range values {
		if censored[i] {
			any = true
			if x > max {
				max = x
			}
		}
	}
	if any {
		cut = max
	}
	return cut
}
