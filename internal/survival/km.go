package survival

import (
	"fmt"
	"math"
	"sort"

	"lasvegas/internal/xrand"
)

// KaplanMeier is the product-limit estimator of a right-censored
// runtime sample, exposed as a dist.Dist so censored campaigns can
// feed the same plug-in prediction path as complete ones.
//
// The backing arrays mirror dist.Empirical's sorted design: one entry
// per observation (events and censorings interleaved in time order),
// with the estimated survival Ŝ after each observation precomputed.
// That buys the same hot paths:
//
//   - CDF is a binary search over the sorted observations;
//   - Quantile is a binary search over the precomputed CDF steps
//     (O(1) on censoring-free samples, where the steps are uniform);
//   - MinExpectation evaluates E[min of n draws] exactly in one O(m)
//     pass over the survival steps — the censored counterpart of
//     dist.Empirical.MinExpectation.
//
// Two conventions, both standard:
//
//   - ties between an event and a censoring are resolved event-first
//     (a run finishing at t proves the runtime reaches t; a run cut
//     off at t only proves it exceeds t);
//   - when the largest observation is censored the curve never
//     reaches zero, so the leftover probability mass is assigned to
//     that largest observation (Efron's tail convention). Mean and
//     MinExpectation are therefore *restricted* means — biased low
//     when the censoring fraction is high, which is exactly why the
//     parametric censored-MLE fits exist alongside.
//
// On a sample with no censoring at all, every derived quantity (CDF,
// Quantile, Mean, Var, MinExpectation, Sample) reproduces
// dist.Empirical bit for bit: the survival steps are computed as
// exact integer ratios, not running products.
//
// A KaplanMeier is read-only after construction and safe for
// concurrent use.
type KaplanMeier struct {
	xs   []float64 // ascending observations (events before ties' censorings)
	surv []float64 // Ŝ after observation i (surv[m-1] forced to 0, Efron)
	cdf  []float64 // 1 - surv, exact i/m ratios on censoring-free prefixes
	m    int
	ev   int     // number of events (uncensored observations)
	lo   float64 // smallest event value (support left edge)
	tail float64 // Ŝ at the largest observation before the Efron drop

	mean, vr float64
}

// NewKaplanMeier estimates the product-limit law of a right-censored
// sample: values[i] is the observed runtime, censored[i] marks runs
// cut off at that value. It fails on empty samples, negative or NaN
// observations, mismatched slice lengths, and samples with no
// uncensored observation (ErrAllCensored).
func NewKaplanMeier(values []float64, censored []bool) (*KaplanMeier, error) {
	sorted, events, err := sortedObs(values, censored)
	if err != nil {
		return nil, err
	}
	m := len(sorted)
	k := &KaplanMeier{
		xs:   make([]float64, m),
		surv: make([]float64, m),
		cdf:  make([]float64, m),
		m:    m,
		ev:   events,
	}
	// Survival recursion Ŝ ← Ŝ·(nᵢ-1)/nᵢ at each event (risk set
	// nᵢ = m-i when observations are processed one at a time; tied
	// events just apply consecutive factors). While no censoring has
	// been seen the product telescopes to an exact integer ratio,
	// which is what makes the censoring-free case bit-identical to
	// dist.Empirical; after the first censoring the recursion runs
	// multiplicatively, which is the textbook estimator.
	mf := float64(m)
	s := 1.0
	seenEvents, seenCensored := 0, false
	firstEvent := math.NaN()
	for i, o := range sorted {
		k.xs[i] = o.x
		if !o.censored {
			if seenEvents == 0 {
				firstEvent = o.x
			}
			seenEvents++
			if seenCensored {
				risk := float64(m - i)
				s *= (risk - 1) / risk
			} else {
				s = float64(m-i-1) / mf
			}
		} else {
			seenCensored = true
		}
		k.surv[i] = s
		if seenCensored {
			k.cdf[i] = 1 - s
		} else {
			k.cdf[i] = float64(i+1) / mf
		}
	}
	k.lo = firstEvent
	// Efron tail: drop the curve to zero at the largest observation
	// so the law is proper and every moment below is finite.
	k.tail = k.surv[m-1]
	k.surv[m-1] = 0
	k.cdf[m-1] = 1
	k.mean, k.vr = k.moments()
	return k, nil
}

// moments computes the restricted mean and variance from the step
// masses. The censoring-free case intentionally replays
// dist.Empirical's exact two-pass computation (sum/m, then centered
// second moment) instead of summing masses, so the two estimators
// agree bit for bit there.
func (k *KaplanMeier) moments() (mean, vr float64) {
	if k.ev == k.m {
		var sum float64
		for _, x := range k.xs {
			sum += x
		}
		mean = sum / float64(k.m)
		var m2 float64
		for _, x := range k.xs {
			d := x - mean
			m2 += d * d
		}
		return mean, m2 / float64(k.m)
	}
	hi := 1.0
	for i, x := range k.xs {
		mean += x * (hi - k.surv[i])
		hi = k.surv[i]
	}
	hi = 1.0
	for i, x := range k.xs {
		d := x - mean
		vr += d * d * (hi - k.surv[i])
		hi = k.surv[i]
	}
	return mean, vr
}

// Len returns the sample size m (events plus censorings).
func (k *KaplanMeier) Len() int { return k.m }

// Events returns the number of uncensored observations.
func (k *KaplanMeier) Events() int { return k.ev }

// CensoredCount returns the number of censored observations.
func (k *KaplanMeier) CensoredCount() int { return k.m - k.ev }

// TailMass returns the survival probability left at the largest
// observation before the Efron drop — the mass the estimator cannot
// place from the data alone (0 when the largest observation is an
// event).
func (k *KaplanMeier) TailMass() float64 { return k.tail }

// CDF implements dist.Dist: the product-limit estimate F̂(x), by
// binary search over the sorted observations.
func (k *KaplanMeier) CDF(x float64) float64 {
	n := sort.Search(k.m, func(i int) bool { return k.xs[i] > x })
	if n == 0 {
		return 0
	}
	return k.cdf[n-1]
}

// PDF implements dist.Dist with the same central finite difference of
// the step CDF as dist.Empirical — a plotting aid; prediction only
// consumes CDF, Quantile and MinExpectation.
func (k *KaplanMeier) PDF(x float64) float64 {
	lo, hi := k.xs[0], k.xs[k.m-1]
	span := hi - lo
	if span == 0 {
		if x == lo {
			return math.Inf(1)
		}
		return 0
	}
	h := span / math.Sqrt(float64(k.m))
	return (k.CDF(x+h) - k.CDF(x-h)) / (2 * h)
}

// Quantile implements dist.Dist: inf{x : F̂(x) ≥ p}. On a
// censoring-free sample this is dist.Empirical's O(1) index formula;
// otherwise a binary search over the precomputed CDF steps.
func (k *KaplanMeier) Quantile(p float64) float64 {
	if k.ev == k.m {
		if p <= 0 {
			return k.xs[0]
		}
		if p >= 1 {
			return k.xs[k.m-1]
		}
		idx := int(math.Ceil(p*float64(k.m))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= k.m {
			idx = k.m - 1
		}
		return k.xs[idx]
	}
	if p <= 0 {
		return k.lo
	}
	if p >= 1 {
		return k.xs[k.m-1]
	}
	// cdf is non-decreasing with cdf[m-1] = 1, so the search always
	// lands; censored entries repeat their predecessor's value, so
	// the first hit is an event (or the Efron-forced last step).
	i := sort.Search(k.m, func(i int) bool { return k.cdf[i] >= p })
	return k.xs[i]
}

// Mean implements dist.Dist: the restricted mean survival time
// Σ x·ΔF̂ (precomputed).
func (k *KaplanMeier) Mean() float64 { return k.mean }

// Var implements dist.Dist (precomputed, same restriction as Mean).
func (k *KaplanMeier) Var() float64 { return k.vr }

// Sample implements dist.Dist: a draw from the estimated step law.
// Censoring-free samples draw uniformly over the observations
// (matching dist.Empirical); otherwise inverse-CDF on a uniform.
func (k *KaplanMeier) Sample(r *xrand.Rand) float64 {
	if k.ev == k.m {
		return k.xs[r.Intn(k.m)]
	}
	return k.Quantile(r.Float64Open())
}

// Support implements dist.Dist: the smallest event value to the
// largest observation.
func (k *KaplanMeier) Support() (float64, float64) {
	return k.lo, k.xs[k.m-1]
}

// String implements dist.Dist.
func (k *KaplanMeier) String() string {
	if k.ev == k.m {
		return fmt.Sprintf("KaplanMeier(m=%d, mean=%.6g)", k.m, k.mean)
	}
	return fmt.Sprintf("KaplanMeier(m=%d, censored=%d, mean=%.6g)", k.m, k.m-k.ev, k.mean)
}

// TruncatedMean returns E[min(Y, c)] exactly from the survival steps:
// Σ_{xᵢ≤c} xᵢ·(Ŝᵢ₋₁ − Ŝᵢ) + c·Ŝ(c) — the expected cost of one run
// under a restart cutoff c, with censored observations contributing
// zero event mass exactly as in MinExpectation. Keeping this exact
// spares restart-policy pricing a quadrature over the step CDF.
func (k *KaplanMeier) TruncatedMean(c float64) float64 {
	var sum float64
	hi := 1.0
	for i := 0; i < k.m; i++ {
		if k.xs[i] > c {
			break
		}
		sum += k.xs[i] * (hi - k.surv[i])
		hi = k.surv[i]
	}
	return sum + c*hi
}

// MinExpectation returns the exact expectation of the minimum of n
// i.i.d. draws from the product-limit law,
//
//	E[Z(n)] = Σᵢ xᵢ · (Ŝᵢ₋₁ⁿ − Ŝᵢⁿ),
//
// in one O(m) pass over the survival steps — the censored counterpart
// of dist.Empirical.MinExpectation (and bit-identical to it when the
// sample has no censoring). Censored observations contribute exactly
// zero mass, so the loop needs no flag checks.
func (k *KaplanMeier) MinExpectation(n int) float64 {
	if n <= 1 {
		return k.mean
	}
	nf := float64(n)
	var sum float64
	hi := 1.0
	for i := 0; i < k.m; i++ {
		lo := math.Pow(k.surv[i], nf)
		sum += k.xs[i] * (hi - lo)
		hi = lo
	}
	return sum
}
