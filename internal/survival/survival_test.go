package survival

import (
	"math"
	"testing"

	"lasvegas/internal/dist"
	"lasvegas/internal/xrand"
)

// censorAt clips a complete sample at cutoff c, returning the
// censored values and flags — the Type-I (budget) censoring pattern
// lvseq -maxiter produces.
func censorAt(sample []float64, c float64) (values []float64, flags []bool) {
	values = make([]float64, len(sample))
	flags = make([]bool, len(sample))
	for i, x := range sample {
		if x > c {
			values[i], flags[i] = c, true
		} else {
			values[i] = x
		}
	}
	return values, flags
}

// TestKMMatchesEmpiricalUncensored: on a censoring-free sample the
// product-limit estimator must reproduce dist.Empirical bit for bit —
// CDF, Quantile, Mean, Var, Sample and the exact MinExpectation. This
// is the acceptance contract that lets the plug-in predictor switch
// estimators based on censoring without changing any complete-sample
// result.
func TestKMMatchesEmpiricalUncensored(t *testing.T) {
	r := xrand.New(7)
	base, err := dist.NewLogNormal(0, 6, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	sample := dist.SampleN(base, r, 257)
	// Inject ties: runtimes are iteration counts in practice.
	for i := range sample {
		sample[i] = math.Round(sample[i]/50) * 50
	}
	km, err := NewKaplanMeier(sample, make([]bool, len(sample)))
	if err != nil {
		t.Fatal(err)
	}
	emp, err := dist.NewEmpirical(sample)
	if err != nil {
		t.Fatal(err)
	}
	if km.Mean() != emp.Mean() || km.Var() != emp.Var() {
		t.Fatalf("moments differ: KM (%v, %v) vs Empirical (%v, %v)",
			km.Mean(), km.Var(), emp.Mean(), emp.Var())
	}
	for _, x := range []float64{-1, 0, sample[0], 100, 333, 1e4, 1e7} {
		if got, want := km.CDF(x), emp.CDF(x); got != want {
			t.Errorf("CDF(%v): KM %v vs Empirical %v", x, got, want)
		}
	}
	for p := 0.0; p <= 1.0; p += 0.001 {
		if got, want := km.Quantile(p), emp.Quantile(p); got != want {
			t.Errorf("Quantile(%v): KM %v vs Empirical %v", p, got, want)
		}
	}
	for _, n := range []int{1, 2, 3, 16, 256, 8192} {
		if got, want := km.MinExpectation(n), emp.MinExpectation(n); got != want {
			t.Errorf("MinExpectation(%d): KM %v vs Empirical %v", n, got, want)
		}
	}
	r1, r2 := xrand.New(11), xrand.New(11)
	for i := 0; i < 100; i++ {
		if got, want := km.Sample(r1), emp.Sample(r2); got != want {
			t.Fatalf("Sample %d: KM %v vs Empirical %v", i, got, want)
		}
	}
}

// TestKMHandExample verifies the estimator against the textbook
// example 1, 2+, 3, 4+, 5 (+ marks a censoring): Ŝ = 4/5 after t=1,
// unchanged by the censoring at 2, 4/5·2/3 = 8/15 after t=3,
// unchanged at 4+, and 0 after the final event.
func TestKMHandExample(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5}
	flags := []bool{false, true, false, true, false}
	km, err := NewKaplanMeier(values, flags)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-15
	checks := []struct{ x, want float64 }{
		{0.5, 0},
		{1, 1 - 4.0/5},
		{2.5, 1 - 4.0/5},
		{3, 1 - 8.0/15},
		{4.9, 1 - 8.0/15},
		{5, 1},
		{99, 1},
	}
	for _, c := range checks {
		if got := km.CDF(c.x); math.Abs(got-c.want) > tol {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if km.Events() != 3 || km.CensoredCount() != 2 {
		t.Errorf("counts: events=%d censored=%d", km.Events(), km.CensoredCount())
	}
	// Quantile is the left-continuous inverse: the smallest x with
	// F̂(x) ≥ p, which is always an event time (or the terminal step).
	if got := km.Quantile(0.1); got != 1 {
		t.Errorf("Quantile(0.1) = %v, want 1", got)
	}
	if got := km.Quantile(0.3); got != 3 {
		t.Errorf("Quantile(0.3) = %v, want 3", got)
	}
	if got := km.Quantile(0.99); got != 5 {
		t.Errorf("Quantile(0.99) = %v, want 5", got)
	}
	// Mean = Σ x·ΔF̂ = 1·(1/5) + 3·(4/5 − 8/15) + 5·(8/15).
	wantMean := 1.0/5 + 3*(4.0/5-8.0/15) + 5*8.0/15
	if math.Abs(km.Mean()-wantMean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", km.Mean(), wantMean)
	}
	// MinExpectation(n) = Σ x·(Ŝ₋ⁿ − Ŝⁿ) against an independent
	// evaluation over the three mass points.
	for _, n := range []int{2, 5, 40} {
		nf := float64(n)
		s1, s2 := 4.0/5, 8.0/15
		want := 1*(1-math.Pow(s1, nf)) +
			3*(math.Pow(s1, nf)-math.Pow(s2, nf)) +
			5*math.Pow(s2, nf)
		if got := km.MinExpectation(n); math.Abs(got-want) > 1e-12 {
			t.Errorf("MinExpectation(%d) = %v, want %v", n, got, want)
		}
	}
}

// TestKMEfronTail: when the largest observation is censored the
// leftover mass is dropped at that observation, so the law stays
// proper and the restricted mean is finite.
func TestKMEfronTail(t *testing.T) {
	values := []float64{1, 2, 5, 5}
	flags := []bool{false, false, true, true}
	km, err := NewKaplanMeier(values, flags)
	if err != nil {
		t.Fatal(err)
	}
	if got := km.TailMass(); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("TailMass = %v, want 0.5", got)
	}
	if got := km.CDF(5); got != 1 {
		t.Errorf("CDF at the Efron point = %v, want 1", got)
	}
	wantMean := 1*0.25 + 2*0.25 + 5*0.5
	if math.Abs(km.Mean()-wantMean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", km.Mean(), wantMean)
	}
}

// TestKMTypeICensoring: under a fixed budget every censoring sits at
// the budget, after all events — so on the event region the
// product-limit estimate collapses to the plain ECDF of the full
// sample, exactly.
func TestKMTypeICensoring(t *testing.T) {
	r := xrand.New(3)
	base, err := dist.NewExponential(1.0 / 500)
	if err != nil {
		t.Fatal(err)
	}
	sample := dist.SampleN(base, r, 400)
	budget := base.Quantile(0.75)
	values, flags := censorAt(sample, budget)
	km, err := NewKaplanMeier(values, flags)
	if err != nil {
		t.Fatal(err)
	}
	m := float64(len(sample))
	for _, x := range []float64{1, 50, 200, 500, budget * 0.99} {
		count := 0
		for _, v := range sample {
			if v <= x {
				count++
			}
		}
		if got, want := km.CDF(x), float64(count)/m; got != want {
			t.Errorf("CDF(%v) = %v, want ECDF %v", x, got, want)
		}
	}
}

// TestAllCensored: a sample with no events cannot anchor any
// estimate.
func TestAllCensored(t *testing.T) {
	values := []float64{10, 10, 10}
	flags := []bool{true, true, true}
	if _, err := NewKaplanMeier(values, flags); err == nil {
		t.Error("KaplanMeier accepted an all-censored sample")
	}
	if _, err := Auto(values, flags, 10); err == nil {
		t.Error("Auto accepted an all-censored sample")
	}
}

// TestCensoredMLEReducesToComplete: with no censoring the closed-form
// censored estimators must agree with the classic complete-sample
// formulas.
func TestCensoredMLEReducesToComplete(t *testing.T) {
	r := xrand.New(5)
	base, err := dist.NewShiftedExponential(100, 1.0/900)
	if err != nil {
		t.Fatal(err)
	}
	sample := dist.SampleN(base, r, 300)
	flags := make([]bool, len(sample))

	var sum, min float64
	min = math.Inf(1)
	for _, x := range sample {
		sum += x
		if x < min {
			min = x
		}
	}
	mean := sum / float64(len(sample))

	exp, err := Exponential(sample, flags)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(exp.Rate-1/mean) / (1 / mean); rel > 1e-12 {
		t.Errorf("complete-sample exponential rate %v, want 1/mean %v", exp.Rate, 1/mean)
	}
	se, err := ShiftedExponential(sample, flags)
	if err != nil {
		t.Fatal(err)
	}
	if se.Shift != min {
		t.Errorf("shift %v, want observed min %v", se.Shift, min)
	}
	if rel := math.Abs(se.Rate-1/(mean-min)) * (mean - min); rel > 1e-12 {
		t.Errorf("rate %v, want 1/(mean-x0) %v", se.Rate, 1/(mean-min))
	}
}

// TestCensoredMLERecovery: each censored estimator must recover the
// true parameters from a heavily budget-censored synthetic sample —
// the case the naive "fit the clipped values" approach gets badly
// wrong (it biases every scale estimate toward the budget).
func TestCensoredMLERecovery(t *testing.T) {
	const n = 4000
	relErr := func(got, want float64) float64 { return math.Abs(got-want) / math.Abs(want) }

	t.Run("exponential", func(t *testing.T) {
		base, _ := dist.NewExponential(1.0 / 1000)
		sample := dist.SampleN(base, xrand.New(101), n)
		budget := base.Quantile(0.7)
		values, flags := censorAt(sample, budget)
		d, err := Exponential(values, flags)
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(d.Rate, 1.0/1000); e > 0.05 {
			t.Errorf("rate %v, want ≈ 1/1000 (rel err %.3f)", d.Rate, e)
		}
	})

	t.Run("shifted-exponential", func(t *testing.T) {
		base, _ := dist.NewShiftedExponential(200, 1.0/800)
		sample := dist.SampleN(base, xrand.New(102), n)
		budget := base.Quantile(0.7)
		values, flags := censorAt(sample, budget)
		d, err := ShiftedExponential(values, flags)
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(d.Shift, 200); e > 0.05 {
			t.Errorf("shift %v, want ≈ 200 (rel err %.3f)", d.Shift, e)
		}
		if e := relErr(d.Rate, 1.0/800); e > 0.05 {
			t.Errorf("rate %v, want ≈ 1/800 (rel err %.3f)", d.Rate, e)
		}
	})

	t.Run("weibull", func(t *testing.T) {
		base, _ := dist.NewWeibull(1.7, 900)
		sample := dist.SampleN(base, xrand.New(103), n)
		budget := base.Quantile(0.7)
		values, flags := censorAt(sample, budget)
		d, err := Weibull(values, flags)
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(d.Shape, 1.7); e > 0.06 {
			t.Errorf("shape %v, want ≈ 1.7 (rel err %.3f)", d.Shape, e)
		}
		if e := relErr(d.Scale, 900); e > 0.06 {
			t.Errorf("scale %v, want ≈ 900 (rel err %.3f)", d.Scale, e)
		}
	})

	t.Run("lognormal", func(t *testing.T) {
		base, _ := dist.NewLogNormal(0, 6, 1.2)
		sample := dist.SampleN(base, xrand.New(104), n)
		budget := base.Quantile(0.7)
		values, flags := censorAt(sample, budget)
		d, err := LogNormal(values, flags)
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(d.Mu - 6); e > 0.15 {
			t.Errorf("μ %v, want ≈ 6 (abs err %.3f)", d.Mu, e)
		}
		if e := relErr(d.Sigma, 1.2); e > 0.08 {
			t.Errorf("σ %v, want ≈ 1.2 (rel err %.3f)", d.Sigma, e)
		}
	})
}

// TestNaiveFitIsBiased documents *why* this package exists: treating
// the clipped values as events underestimates the exponential mean
// badly, while the censored MLE stays on target.
func TestNaiveFitIsBiased(t *testing.T) {
	base, _ := dist.NewExponential(1.0 / 1000)
	sample := dist.SampleN(base, xrand.New(21), 4000)
	budget := base.Quantile(0.6)
	values, flags := censorAt(sample, budget)

	var naiveSum float64
	for _, x := range values {
		naiveSum += x
	}
	naiveRate := float64(len(values)) / naiveSum
	d, err := Exponential(values, flags)
	if err != nil {
		t.Fatal(err)
	}
	trueRate := 1.0 / 1000
	if math.Abs(naiveRate-trueRate) < 2*math.Abs(d.Rate-trueRate) {
		t.Errorf("naive rate %v should be far worse than censored MLE %v (truth %v)",
			naiveRate, d.Rate, trueRate)
	}
}

// TestAutoRanking: on a censored exponential sample Auto must fit the
// supported families, rank by censored log-likelihood, attach
// restricted KS verdicts and keep the exponential near the top.
func TestAutoRanking(t *testing.T) {
	base, _ := dist.NewExponential(1.0 / 700)
	sample := dist.SampleN(base, xrand.New(31), 800)
	budget := base.Quantile(0.75)
	values, flags := censorAt(sample, budget)

	results, err := Auto(values, flags, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Families()) {
		t.Fatalf("got %d results, want %d", len(results), len(Families()))
	}
	for i := 1; i < len(results); i++ {
		if results[i-1].Err == nil && results[i].Err == nil &&
			results[i-1].LogLik < results[i].LogLik {
			t.Errorf("results not ranked by log-likelihood: %v < %v at %d",
				results[i-1].LogLik, results[i].LogLik, i)
		}
	}
	best, err := Best(values, flags, budget, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if best.Family != FamExponential && best.Family != FamWeibull && best.Family != FamShiftedExponential {
		t.Errorf("best family %s for an exponential truth", best.Family)
	}
	if best.KS.N == 0 || best.KS.PValue < 0.05 {
		t.Errorf("restricted KS verdict missing or rejecting the truth: %+v", best.KS)
	}
	// An unknown family must fail per-candidate, not poison the run.
	results, err = Auto(values, flags, budget, FamExponential, Family("levy"))
	if err != nil {
		t.Fatal(err)
	}
	if results[len(results)-1].Err == nil {
		t.Error("unsupported family did not report an error")
	}
}

// TestRestrictedKSCompleteSample: without censoring the restricted
// test is the ordinary one-sample KS against the unconditioned law.
func TestRestrictedKSCompleteSample(t *testing.T) {
	base, _ := dist.NewExponential(1.0 / 300)
	sample := dist.SampleN(base, xrand.New(41), 500)
	flags := make([]bool, len(sample))
	res, err := RestrictedKS(base, sample, flags, Cutoff(sample, flags, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.N != len(sample) {
		t.Errorf("restricted KS saw %d observations, want %d", res.N, len(sample))
	}
	if res.PValue < 0.05 {
		t.Errorf("KS rejects the true law: %+v", res)
	}
}
