package experiments

// Extension experiments beyond the paper's tables and figures:
//
//   - "ttt": time-to-target plots (Aiex–Resende–Ribeiro, the paper's
//     references [2,3]) — the empirical runtime CDF against the
//     fitted law, the standard visual check behind §6's KS tests;
//   - "bootstrap": percentile-bootstrap confidence bands on the
//     predicted speed-ups, quantifying how much of the paper's
//     reported 10–30 % deviation is campaign sampling noise;
//   - "censored": the censored-campaign pipeline (Hoos & Stützle's
//     bounded-measurement setting) — budget the Costas campaign at
//     several quantile levels, fit each budgeted sample with the
//     Kaplan–Meier and censored-MLE estimators, and compare the
//     predicted speed-ups against multi-walk simulation on the full
//     uncensored pool.

import (
	"context"
	"fmt"
	"math"
	"sort"

	"lasvegas"
	"lasvegas/internal/dist"
	"lasvegas/internal/paperdata"
	"lasvegas/internal/textplot"
)

// ttt renders time-to-target plots for the three benchmarks.
func ttt(l *Lab, ctx context.Context) (*Artifact, error) {
	var allSeries []textplot.Series
	var desc string
	for _, kind := range paperKinds {
		paperRuns := paperdata.RunsAI
		switch kind {
		case lasvegas.MagicSquare:
			paperRuns = paperdata.RunsMS
		case lasvegas.Costas:
			paperRuns = paperdata.RunsCostas
		}
		sample, d, info, err := l.campaignOrSynthetic(ctx, kind, paperRuns)
		if err != nil {
			return nil, err
		}
		sorted := append([]float64(nil), sample...)
		sort.Float64s(sorted)
		// Normalize the time axis by the sample mean so the three
		// benchmarks share one plot (TTT plots are shape comparisons).
		mean := 0.0
		for _, x := range sorted {
			mean += x
		}
		mean /= float64(len(sorted))
		emp := textplot.Series{Name: fmt.Sprintf("%s empirical", l.label(kind))}
		for i, x := range sorted {
			emp.X = append(emp.X, x/mean)
			emp.Y = append(emp.Y, (float64(i)+0.5)/float64(len(sorted)))
		}
		fitted := textplot.Series{Name: fmt.Sprintf("%s fitted", l.label(kind))}
		for i := 0; i <= 60; i++ {
			x := 3 * mean * float64(i) / 60
			fitted.X = append(fitted.X, x/mean)
			fitted.Y = append(fitted.Y, d.CDF(x))
		}
		allSeries = append(allSeries, emp, fitted)
		desc += info + "\n"
	}
	// Clip the empirical staircases to the same 0–3×mean window.
	for i := range allSeries {
		s := &allSeries[i]
		var xs, ys []float64
		for j := range s.X {
			if s.X[j] <= 3 {
				xs = append(xs, s.X[j])
				ys = append(ys, s.Y[j])
			}
		}
		s.X, s.Y = xs, ys
	}
	title := "Time-to-target plots (runtime / mean on the x-axis)"
	return &Artifact{
		Title:       title,
		Description: "Extension (paper refs [2,3]): empirical CDF vs fitted law per benchmark.\n" + desc,
		Figure:      textplot.Chart(title, allSeries, chartW, chartH),
		CSV:         textplot.CSV(allSeries),
	}, nil
}

// bootstrapCI renders confidence bands for the predicted speed-ups.
func bootstrapCI(l *Lab, ctx context.Context) (*Artifact, error) {
	headers := []string{"Problem", "cores", "G(n)", "95% lo", "95% hi"}
	a := &Artifact{
		Title:       "Bootstrap confidence bands on predicted speed-ups",
		Description: "Extension: percentile bootstrap (plug-in fitter) over the runtime sample.",
		Headers:     headers,
	}
	const resamples = 200
	for _, kind := range paperKinds {
		paperRuns := paperdata.RunsAI
		switch kind {
		case lasvegas.MagicSquare:
			paperRuns = paperdata.RunsMS
		case lasvegas.Costas:
			paperRuns = paperdata.RunsCostas
		}
		sample, _, _, err := l.campaignOrSynthetic(ctx, kind, paperRuns)
		if err != nil {
			return nil, err
		}
		// Through the public API: the plug-in percentile bootstrap on a
		// campaign wrapping the sample. The predictor XORs its own
		// bootstrap tag into the seed, reproducing the historical
		// Seed^hashKind^0xB007 stream.
		boot := lasvegas.New(
			lasvegas.WithBootstrap(resamples, 0.95),
			lasvegas.WithSeed(l.cfg.Seed^hashKind(kind)))
		cis, err := boot.BootstrapCI(ctx, &lasvegas.Campaign{Problem: l.label(kind), Iterations: sample}, l.cfg.Cores)
		if err != nil {
			return nil, err
		}
		for i, ci := range cis {
			label := ""
			if i == 0 {
				label = l.label(kind)
			}
			a.Rows = append(a.Rows, []string{
				label, fmt.Sprintf("%d", ci.Cores), f2(ci.Speedup), f2(ci.Lo), f2(ci.Hi),
			})
		}
	}
	return a, nil
}

// censorLevels are the budget quantiles of the censored experiment:
// budgets at the sample's 50%, 75% and 90% points censor ~50%, ~25%
// and ~10% of the runs — the cheap-campaign regimes where the naive
// fit path would simply refuse.
var censorLevels = []float64{0.5, 0.75, 0.9}

// censoredFits runs the censored-campaign extension: clip the Costas
// runtime sample at each budget level, fit the budgeted campaigns
// through the public WithCensoredFit path, and hold the predictions
// against multi-walk simulation on the full (uncensored) pool — the
// ground truth the budgeted collector never saw.
func censoredFits(l *Lab, ctx context.Context) (*Artifact, error) {
	sample, _, info, err := l.campaignOrSynthetic(ctx, lasvegas.Costas, paperdata.RunsCostas)
	if err != nil {
		return nil, err
	}
	emp, err := dist.NewEmpirical(sample)
	if err != nil {
		return nil, err
	}
	// Three core counts spanning the configured grid.
	grid := l.cfg.Cores
	cores := []int{grid[0], grid[len(grid)/2], grid[len(grid)-1]}

	// Ground truth: simulated multi-walk speed-ups from the full pool.
	full := &lasvegas.Campaign{Problem: l.label(lasvegas.Costas), Iterations: sample}
	sim := lasvegas.New(
		lasvegas.WithSimReps(l.cfg.SimReps),
		lasvegas.WithSeed(l.cfg.Seed^hashKind(lasvegas.Costas)^0xCE45))
	simPts, err := sim.SimulateSpeedups(full, cores)
	if err != nil {
		return nil, err
	}
	simG := map[int]float64{}
	for _, p := range simPts {
		simG[p.Cores] = p.Speedup
	}

	a := &Artifact{
		Title: "Censored campaigns: KM + censored-MLE predictions vs simulation",
		Description: "Extension (Hoos & Stützle): the full campaign clipped at budget quantiles;\n" +
			"each budgeted sample fitted via WithCensoredFit, predictions checked against\n" +
			"multi-walk simulation on the full uncensored pool.\n" + info,
		Headers: []string{"budget", "censored", "best censored fit", "cores", "G pred", "G KM", "G sim"},
	}

	fitter := lasvegas.New(
		lasvegas.WithFamilies(lasvegas.CensoredFamilies()...),
		lasvegas.WithCensoredFit(true))
	// The CDF overlay figure is drawn at the middle budget level, so
	// editing censorLevels can never leave it unassigned.
	overlayLevel := censorLevels[len(censorLevels)/2]
	var overlayCampaign *lasvegas.Campaign
	var overlayModel, overlayKM *lasvegas.Model
	for _, level := range censorLevels {
		budget := math.Ceil(emp.Quantile(level))
		clipped := make([]float64, len(sample))
		var censIdx []int
		for i, x := range sample {
			if x > budget {
				clipped[i] = budget
				censIdx = append(censIdx, i)
			} else {
				clipped[i] = x
			}
		}
		c := &lasvegas.Campaign{
			Problem:    full.Problem,
			Runs:       len(clipped),
			Iterations: clipped,
			Censored:   censIdx,
			Budget:     int64(budget),
		}
		best, err := fitter.Fit(c)
		if err != nil {
			return nil, fmt.Errorf("experiments: censored fit at q=%.2f: %w", level, err)
		}
		km, err := fitter.PlugIn(c)
		if err != nil {
			return nil, err
		}
		if level == overlayLevel {
			overlayCampaign, overlayModel, overlayKM = c, best, km
		}
		for i, n := range cores {
			label, cens, fitS := "", "", ""
			if i == 0 {
				label = fmt.Sprintf("q%.2f=%.0f", level, budget)
				cens = fmt.Sprintf("%.0f%%", 100*c.CensoredFraction())
				fitS = best.String()
			}
			gp, err := best.Speedup(n)
			if err != nil {
				return nil, err
			}
			gk, err := km.Speedup(n)
			if err != nil {
				return nil, err
			}
			a.Rows = append(a.Rows, []string{
				label, cens, fitS, fmt.Sprintf("%d", n), f2(gp), f2(gk), f2(simG[n]),
			})
		}
	}

	// CDF overlay at the middle budget: full empirical staircase vs
	// the Kaplan–Meier estimate from the censored sample vs the best
	// censored-MLE law. KM tracks the empirical curve below the
	// budget and the parametric fit extrapolates beyond it.
	hi := emp.Quantile(0.98)
	grid60 := make([]float64, 61)
	for i := range grid60 {
		grid60[i] = hi * float64(i) / 60
	}
	mkSeries := func(name string, cdf func(float64) float64) textplot.Series {
		s := textplot.Series{Name: name}
		for _, x := range grid60 {
			s.X = append(s.X, x)
			s.Y = append(s.Y, cdf(x))
		}
		return s
	}
	series := []textplot.Series{
		mkSeries("empirical (full)", emp.CDF),
		mkSeries(fmt.Sprintf("KM (%.0f%% censored)", 100*overlayCampaign.CensoredFraction()), overlayKM.CDF),
		mkSeries(fmt.Sprintf("censored MLE %s", overlayModel.Family()), overlayModel.CDF),
	}
	title := fmt.Sprintf("Empirical vs KM vs censored-MLE CDF (budget q%.2f = %d)",
		overlayLevel, overlayCampaign.Budget)
	a.Figure = textplot.Chart(title, series, chartW, chartH)
	a.CSV = textplot.CSV(series)
	return a, nil
}
