package experiments

// Extension experiments beyond the paper's tables and figures:
//
//   - "ttt": time-to-target plots (Aiex–Resende–Ribeiro, the paper's
//     references [2,3]) — the empirical runtime CDF against the
//     fitted law, the standard visual check behind §6's KS tests;
//   - "bootstrap": percentile-bootstrap confidence bands on the
//     predicted speed-ups, quantifying how much of the paper's
//     reported 10–30 % deviation is campaign sampling noise.

import (
	"context"
	"fmt"
	"sort"

	"lasvegas"
	"lasvegas/internal/paperdata"
	"lasvegas/internal/textplot"
)

// ttt renders time-to-target plots for the three benchmarks.
func ttt(l *Lab, ctx context.Context) (*Artifact, error) {
	var allSeries []textplot.Series
	var desc string
	for _, kind := range paperKinds {
		paperRuns := paperdata.RunsAI
		switch kind {
		case lasvegas.MagicSquare:
			paperRuns = paperdata.RunsMS
		case lasvegas.Costas:
			paperRuns = paperdata.RunsCostas
		}
		sample, d, info, err := l.campaignOrSynthetic(ctx, kind, paperRuns)
		if err != nil {
			return nil, err
		}
		sorted := append([]float64(nil), sample...)
		sort.Float64s(sorted)
		// Normalize the time axis by the sample mean so the three
		// benchmarks share one plot (TTT plots are shape comparisons).
		mean := 0.0
		for _, x := range sorted {
			mean += x
		}
		mean /= float64(len(sorted))
		emp := textplot.Series{Name: fmt.Sprintf("%s empirical", l.label(kind))}
		for i, x := range sorted {
			emp.X = append(emp.X, x/mean)
			emp.Y = append(emp.Y, (float64(i)+0.5)/float64(len(sorted)))
		}
		fitted := textplot.Series{Name: fmt.Sprintf("%s fitted", l.label(kind))}
		for i := 0; i <= 60; i++ {
			x := 3 * mean * float64(i) / 60
			fitted.X = append(fitted.X, x/mean)
			fitted.Y = append(fitted.Y, d.CDF(x))
		}
		allSeries = append(allSeries, emp, fitted)
		desc += info + "\n"
	}
	// Clip the empirical staircases to the same 0–3×mean window.
	for i := range allSeries {
		s := &allSeries[i]
		var xs, ys []float64
		for j := range s.X {
			if s.X[j] <= 3 {
				xs = append(xs, s.X[j])
				ys = append(ys, s.Y[j])
			}
		}
		s.X, s.Y = xs, ys
	}
	title := "Time-to-target plots (runtime / mean on the x-axis)"
	return &Artifact{
		Title:       title,
		Description: "Extension (paper refs [2,3]): empirical CDF vs fitted law per benchmark.\n" + desc,
		Figure:      textplot.Chart(title, allSeries, chartW, chartH),
		CSV:         textplot.CSV(allSeries),
	}, nil
}

// bootstrapCI renders confidence bands for the predicted speed-ups.
func bootstrapCI(l *Lab, ctx context.Context) (*Artifact, error) {
	headers := []string{"Problem", "cores", "G(n)", "95% lo", "95% hi"}
	a := &Artifact{
		Title:       "Bootstrap confidence bands on predicted speed-ups",
		Description: "Extension: percentile bootstrap (plug-in fitter) over the runtime sample.",
		Headers:     headers,
	}
	const resamples = 200
	for _, kind := range paperKinds {
		paperRuns := paperdata.RunsAI
		switch kind {
		case lasvegas.MagicSquare:
			paperRuns = paperdata.RunsMS
		case lasvegas.Costas:
			paperRuns = paperdata.RunsCostas
		}
		sample, _, _, err := l.campaignOrSynthetic(ctx, kind, paperRuns)
		if err != nil {
			return nil, err
		}
		// Through the public API: the plug-in percentile bootstrap on a
		// campaign wrapping the sample. The predictor XORs its own
		// bootstrap tag into the seed, reproducing the historical
		// Seed^hashKind^0xB007 stream.
		boot := lasvegas.New(
			lasvegas.WithBootstrap(resamples, 0.95),
			lasvegas.WithSeed(l.cfg.Seed^hashKind(kind)))
		cis, err := boot.BootstrapCI(ctx, &lasvegas.Campaign{Problem: l.label(kind), Iterations: sample}, l.cfg.Cores)
		if err != nil {
			return nil, err
		}
		for i, ci := range cis {
			label := ""
			if i == 0 {
				label = l.label(kind)
			}
			a.Rows = append(a.Rows, []string{
				label, fmt.Sprintf("%d", ci.Cores), f2(ci.Speedup), f2(ci.Lo), f2(ci.Hi),
			})
		}
	}
	return a, nil
}
