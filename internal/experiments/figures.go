package experiments

import (
	"context"
	"fmt"
	"math"

	"lasvegas"
	"lasvegas/internal/core"
	"lasvegas/internal/dist"
	"lasvegas/internal/multiwalk"
	"lasvegas/internal/orderstat"
	"lasvegas/internal/paperdata"
	"lasvegas/internal/problems"
	"lasvegas/internal/stats"
	"lasvegas/internal/textplot"
	"lasvegas/internal/xrand"
)

// speeduper is the slice of the prediction surface the figures need;
// both the public lasvegas.Model (live fits) and core.Predictor
// (paper-mode laws) satisfy it.
type speeduper interface {
	Speedup(n int) (float64, error)
	Limit() float64
}

// law is the slice of a fitted distribution the histogram and TTT
// figures need; satisfied by dist.Dist and *lasvegas.Model.
type law interface {
	CDF(x float64) float64
	PDF(x float64) float64
	String() string
}

const (
	chartW = 72
	chartH = 20
)

// densitySeries samples the PDFs of Y and of Z(n) for each n on a
// uniform grid, the shape of the paper's Figures 1, 2 and 4.
func densitySeries(d dist.Dist, ns []int, lo, hi float64, points int) ([]textplot.Series, error) {
	xs := make([]float64, points)
	for i := range xs {
		xs[i] = lo + (hi-lo)*float64(i)/float64(points-1)
	}
	series := make([]textplot.Series, 0, len(ns)+1)
	base := textplot.Series{Name: fmt.Sprintf("Y = %s", d)}
	base.X = xs
	base.Y = make([]float64, points)
	for i, x := range xs {
		base.Y[i] = d.PDF(x)
	}
	series = append(series, base)
	for _, n := range ns {
		m, err := orderstat.NewMin(d, n)
		if err != nil {
			return nil, err
		}
		s := textplot.Series{Name: fmt.Sprintf("Z(%d)", n), X: xs, Y: make([]float64, points)}
		for i, x := range xs {
			s.Y[i] = m.PDF(x)
		}
		series = append(series, s)
	}
	return series, nil
}

func densityFigure(title, desc string, d dist.Dist, ns []int, lo, hi float64) (*Artifact, error) {
	series, err := densitySeries(d, ns, lo, hi, 120)
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Title:       title,
		Description: desc,
		Figure:      textplot.Chart(title, series, chartW, chartH),
		CSV:         textplot.CSV(series),
	}, nil
}

// fig1: min-distributions of a gaussian cut on R⁻ and renormalized,
// n ∈ {10, 100, 1000}.
func fig1(l *Lab, ctx context.Context) (*Artifact, error) {
	d, err := dist.NewTruncatedNormal(30, 10, 0)
	if err != nil {
		return nil, err
	}
	return densityFigure(
		"Distribution of Z(n) for a gaussian Y (cut on R-, renormalized)",
		"Paper Figure 1: Y in the flattest curve; Z(10), Z(100), Z(1000) move toward the origin and sharpen.",
		d, []int{10, 100, 1000}, 0, 60)
}

// fig2: min-distributions of the shifted exponential x0=100,
// λ=1/1000, n ∈ {2, 4, 8}.
func fig2(l *Lab, ctx context.Context) (*Artifact, error) {
	d, err := dist.NewShiftedExponential(100, 1.0/1000)
	if err != nil {
		return nil, err
	}
	return densityFigure(
		"Distribution of Z(n) for a shifted exponential (x0=100, λ=1/1000)",
		"Paper Figure 2: the closed form f_Z(n) = nλe^{-nλ(t-x0)} — initial value ×n, decay ×n faster.",
		d, []int{2, 4, 8}, 0, 1000)
}

// predictionCurveSeries evaluates the predicted speed-up on an
// integer grid of ~points core counts between 1 and maxCores.
func predictionCurveSeries(p speeduper, maxCores, points int, name string) (textplot.Series, error) {
	if points < 2 {
		points = 32
	}
	s := textplot.Series{Name: name}
	seen := map[int]bool{}
	for i := 0; i < points; i++ {
		n := 1 + int(float64(maxCores-1)*float64(i)/float64(points-1))
		if seen[n] {
			continue
		}
		seen[n] = true
		g, err := p.Speedup(n)
		if err != nil {
			return s, err
		}
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, g)
	}
	return s, nil
}

func speedupFigure(title, desc string, p speeduper, maxCores int, withIdeal, withLimit bool) (*Artifact, error) {
	pred, err := predictionCurveSeries(p, maxCores, 40, "predicted")
	if err != nil {
		return nil, err
	}
	series := []textplot.Series{pred}
	if withLimit {
		if lim := p.Limit(); !math.IsInf(lim, 1) {
			series = append(series, textplot.Series{
				Name: fmt.Sprintf("limit %.4g", lim),
				X:    []float64{1, float64(maxCores)},
				Y:    []float64{lim, lim},
			})
		}
	}
	if withIdeal {
		series = append(series, idealSeries(maxCores))
	}
	return &Artifact{
		Title:       title,
		Description: desc,
		Figure:      textplot.Chart(title, series, chartW, chartH),
		CSV:         textplot.CSV(series),
	}, nil
}

func idealSeries(maxCores int) textplot.Series {
	s := textplot.Series{Name: "ideal (linear)"}
	for _, n := range []int{1, maxCores / 4, maxCores / 2, 3 * maxCores / 4, maxCores} {
		if n < 1 {
			continue
		}
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, float64(n))
	}
	return s
}

// fig3: predicted speed-up of the Figure-2 exponential.
func fig3(l *Lab, ctx context.Context) (*Artifact, error) {
	d, err := dist.NewShiftedExponential(100, 1.0/1000)
	if err != nil {
		return nil, err
	}
	p, err := core.NewPredictor(d)
	if err != nil {
		return nil, err
	}
	return speedupFigure(
		"Predicted speed-up, exponential x0=100, λ=1/1000",
		"Paper Figure 3: G(n) = (x0+1/λ)/(x0+1/(nλ)), limit 1+1/(x0·λ) = 11.",
		p, 256, false, true)
}

// fig4: min-distributions of the lognormal μ=5, σ=1.
func fig4(l *Lab, ctx context.Context) (*Artifact, error) {
	d, err := dist.NewLogNormal(0, 5, 1)
	if err != nil {
		return nil, err
	}
	return densityFigure(
		"Distribution of Z(n) for a lognormal (x0=0, μ=5, σ=1)",
		"Paper Figure 4: minima of n ∈ {2,4,8} draws.",
		d, []int{2, 4, 8}, 0, 250)
}

// fig5: predicted speed-up of the Figure-4 lognormal, computed by
// numerical integration of the first order-statistic moment.
func fig5(l *Lab, ctx context.Context) (*Artifact, error) {
	d, err := dist.NewLogNormal(0, 5, 1)
	if err != nil {
		return nil, err
	}
	p, err := core.NewPredictor(d)
	if err != nil {
		return nil, err
	}
	return speedupFigure(
		"Predicted speed-up, lognormal μ=5, σ=1",
		"Paper Figure 5: moments via quantile-domain quadrature (Nadarajah 2008).",
		p, 256, false, false)
}

// measuredSeries renders measured speed-ups for a benchmark.
func (l *Lab) measuredSeries(ctx context.Context, kind lasvegas.Problem, cores []int) (textplot.Series, error) {
	name := l.label(kind)
	if l.cfg.Paper {
		for _, row := range paperdata.Table4IterSpeedups {
			if lbl, _ := paperdata.PaperLabel(problems.Kind(kind)); lbl == row.Problem {
				s := textplot.Series{Name: row.Problem}
				for i, k := range paperdata.Cores {
					s.X = append(s.X, float64(k))
					s.Y = append(s.Y, row.Speedups[i])
				}
				return s, nil
			}
		}
		return textplot.Series{}, fmt.Errorf("experiments: no paper speed-ups for %s", kind)
	}
	pts, err := l.measuredSpeedups(ctx, kind, cores, true)
	if err != nil {
		return textplot.Series{}, err
	}
	s := textplot.Series{Name: name}
	for _, p := range pts {
		s.X = append(s.X, float64(p.Cores))
		s.Y = append(s.Y, p.Speedup)
	}
	return s, nil
}

// fig6: measured speed-ups of the CSPLib benchmarks vs ideal.
func fig6(l *Lab, ctx context.Context) (*Artifact, error) {
	ms, err := l.measuredSeries(ctx, lasvegas.MagicSquare, l.cfg.Cores)
	if err != nil {
		return nil, err
	}
	ai, err := l.measuredSeries(ctx, lasvegas.AllInterval, l.cfg.Cores)
	if err != nil {
		return nil, err
	}
	maxC := l.cfg.Cores[len(l.cfg.Cores)-1]
	series := []textplot.Series{idealSeries(maxC), ms, ai}
	title := "Speed-ups for CSPLib benchmarks"
	return &Artifact{
		Title:       title,
		Description: "Paper Figure 6: MAGIC-SQUARE and ALL-INTERVAL diverge from the ideal line.",
		Figure:      textplot.Chart(title, series, chartW, chartH),
		CSV:         textplot.CSV(series),
	}, nil
}

// fig7: measured speed-up of COSTAS vs ideal (near-linear).
func fig7(l *Lab, ctx context.Context) (*Artifact, error) {
	cs, err := l.measuredSeries(ctx, lasvegas.Costas, l.cfg.Cores)
	if err != nil {
		return nil, err
	}
	maxC := l.cfg.Cores[len(l.cfg.Cores)-1]
	series := []textplot.Series{idealSeries(maxC), cs}
	title := "Speed-ups for the COSTAS ARRAY problem"
	return &Artifact{
		Title:       title,
		Description: "Paper Figure 7: Costas tracks the ideal line (linear or supra-linear).",
		Figure:      textplot.Chart(title, series, chartW, chartH),
		CSV:         textplot.CSV(series),
	}, nil
}

// campaignOrSynthetic returns the iteration sample and fitted law for
// a benchmark: the live campaign + live fit, or (paper mode) a
// seeded synthetic sample drawn from the paper's fitted distribution
// with the paper's sample size.
func (l *Lab) campaignOrSynthetic(ctx context.Context, kind lasvegas.Problem, paperRuns int) ([]float64, law, string, error) {
	if l.cfg.Paper {
		d, ok := paperdata.Fitted(problems.Kind(kind))
		if !ok {
			return nil, nil, "", fmt.Errorf("experiments: no paper fit for %s", kind)
		}
		sample := dist.SampleN(d, xrand.New(l.cfg.Seed^hashKind(kind)), paperRuns)
		return sample, d, fmt.Sprintf("synthetic sample of %d draws from the paper's fit %s", paperRuns, d), nil
	}
	c, err := l.Campaign(ctx, kind)
	if err != nil {
		return nil, nil, "", err
	}
	best, err := l.BestFit(ctx, kind)
	if err != nil {
		return nil, nil, "", err
	}
	gof, _ := best.GoodnessOfFit()
	desc := fmt.Sprintf("live campaign (%d runs), best fit %s (KS p=%.3f)", len(c.Iterations), best, gof.PValue)
	return c.Iterations, best, desc, nil
}

func histogramFigure(l *Lab, ctx context.Context, kind lasvegas.Problem, paperRuns int, figTitle, paperRef string) (*Artifact, error) {
	sample, d, desc, err := l.campaignOrSynthetic(ctx, kind, paperRuns)
	if err != nil {
		return nil, err
	}
	bins := stats.FreedmanDiaconisBins(sample)
	if bins > 40 {
		bins = 40
	}
	h, err := stats.NewHistogram(sample, bins)
	if err != nil {
		return nil, err
	}
	centers := make([]float64, len(h.Counts))
	densities := make([]float64, len(h.Counts))
	for i := range h.Counts {
		centers[i] = h.Center(i)
		densities[i] = h.Density(i)
	}
	series := []textplot.Series{
		{Name: "observed density", X: centers, Y: densities},
		{Name: "fitted " + d.String(), X: centers, Y: evalPDF(d, centers)},
	}
	return &Artifact{
		Title:       figTitle,
		Description: paperRef + "\n" + desc,
		Figure:      textplot.HistogramWithOverlay(figTitle, centers, densities, d.PDF, 60),
		CSV:         textplot.CSV(series),
	}, nil
}

func evalPDF(d law, xs []float64) []float64 {
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = d.PDF(x)
	}
	return ys
}

// fig8: AI histogram with fitted shifted exponential.
func fig8(l *Lab, ctx context.Context) (*Artifact, error) {
	return histogramFigure(l, ctx, lasvegas.AllInterval, paperdata.RunsAI,
		"Observed iterations and fitted law — ALL-INTERVAL",
		"Paper Figure 8: 720 runs of AI 700 against the shifted exponential (KS p = 0.774).")
}

// fig10: MS histogram with fitted shifted lognormal.
func fig10(l *Lab, ctx context.Context) (*Artifact, error) {
	return histogramFigure(l, ctx, lasvegas.MagicSquare, paperdata.RunsMS,
		"Observed iterations and fitted law — MAGIC-SQUARE",
		"Paper Figure 10: 662 runs of MS 200 against the shifted lognormal (μ=12.0275, σ=1.3398).")
}

// fig12: Costas histogram with fitted exponential.
func fig12(l *Lab, ctx context.Context) (*Artifact, error) {
	return histogramFigure(l, ctx, lasvegas.Costas, paperdata.RunsCostas,
		"Observed iterations and fitted law — COSTAS ARRAY",
		"Paper Figure 12: 638 runs of Costas 21 against the exponential (KS p = 0.752).")
}

func predictionFigure(l *Lab, ctx context.Context, kind lasvegas.Problem, figTitle, paperRef string, withLimit bool) (*Artifact, error) {
	var sm speeduper
	var desc string
	if l.cfg.Paper {
		pd, ok := paperdata.Fitted(problems.Kind(kind))
		if !ok {
			return nil, fmt.Errorf("experiments: no paper fit for %s", kind)
		}
		p, err := core.NewPredictor(pd)
		if err != nil {
			return nil, err
		}
		sm, desc = p, "predicted from the paper's fitted parameters"
	} else {
		best, err := l.BestFit(ctx, kind)
		if err != nil {
			return nil, err
		}
		sm, desc = best, fmt.Sprintf("predicted from the live fit %s", best)
	}
	maxC := l.cfg.Cores[len(l.cfg.Cores)-1]
	a, err := speedupFigure(figTitle, paperRef+"\n"+desc, sm, maxC, true, withLimit)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// fig9: predicted AI speed-up with its finite limit and the ideal.
func fig9(l *Lab, ctx context.Context) (*Artifact, error) {
	return predictionFigure(l, ctx, lasvegas.AllInterval,
		"Predicted speed-up — ALL-INTERVAL",
		"Paper Figure 9: shifted exponential ⇒ finite limit (90.71 for the paper's fit).", true)
}

// fig11: predicted MS speed-up (numerical integration).
func fig11(l *Lab, ctx context.Context) (*Artifact, error) {
	return predictionFigure(l, ctx, lasvegas.MagicSquare,
		"Predicted speed-up — MAGIC-SQUARE",
		"Paper Figure 11: shifted lognormal, moments by numerical integration.", true)
}

// fig13: predicted Costas speed-up (linear).
func fig13(l *Lab, ctx context.Context) (*Artifact, error) {
	return predictionFigure(l, ctx, lasvegas.Costas,
		"Predicted speed-up — COSTAS ARRAY",
		"Paper Figure 13: x0 ≈ 0 ⇒ strictly linear prediction G(n) = n.", false)
}

// fig14: Costas speed-ups up to 8192 cores (simulated multi-walk vs
// the linear prediction).
func fig14(l *Lab, ctx context.Context) (*Artifact, error) {
	cores := paperdata.Figure14Cores
	var pool []float64
	var desc string
	if l.cfg.Paper {
		d := paperdata.FittedCostas21()
		pool = dist.SampleN(d, xrand.New(l.cfg.Seed^0xF14), 4000)
		desc = "pool: 4000 draws from the paper's fitted exponential (JUGENE experiment reported in [16])"
	} else {
		c, err := l.Campaign(ctx, lasvegas.Costas)
		if err != nil {
			return nil, err
		}
		pool = c.Iterations
		desc = fmt.Sprintf("pool: live campaign (%d runs)", len(pool))
	}
	pts, err := multiwalk.MeasureSimulated(pool, cores, l.cfg.SimReps, l.cfg.Seed^0x8192)
	if err != nil {
		return nil, err
	}
	measured := textplot.Series{Name: "Costas (simulated multi-walk)"}
	for _, p := range pts {
		measured.X = append(measured.X, float64(p.Cores))
		measured.Y = append(measured.Y, p.Speedup)
	}
	series := []textplot.Series{idealSeries(cores[len(cores)-1]), measured}
	title := "Speed-ups for Costas up to 8192 cores"
	return &Artifact{
		Title:       title,
		Description: "Paper Figure 14: linearity persists far beyond 256 cores.\n" + desc,
		Figure:      textplot.Chart(title, series, chartW, chartH),
		CSV:         textplot.CSV(series),
	}, nil
}

// registry maps experiment ids to generators.
var registry = map[string]generator{
	"table1": {"Sequential execution times", table1},
	"table2": {"Sequential number of iterations", table2},
	"table3": {"Speed-ups w.r.t. sequential time", table3},
	"table4": {"Speed-ups w.r.t. sequential iterations", table4},
	"table5": {"Experimental vs predicted speed-ups", table5},
	"fig1":   {"Min-distribution, gaussian", fig1},
	"fig2":   {"Min-distribution, shifted exponential", fig2},
	"fig3":   {"Predicted speed-up, exponential", fig3},
	"fig4":   {"Min-distribution, lognormal", fig4},
	"fig5":   {"Predicted speed-up, lognormal", fig5},
	"fig6":   {"Measured speed-ups, CSPLib", fig6},
	"fig7":   {"Measured speed-ups, Costas", fig7},
	"fig8":   {"AI histogram + fit", fig8},
	"fig9":   {"AI predicted speed-up", fig9},
	"fig10":  {"MS histogram + fit", fig10},
	"fig11":  {"MS predicted speed-up", fig11},
	"fig12":  {"Costas histogram + fit", fig12},
	"fig13":  {"Costas predicted speed-up", fig13},
	"fig14":  {"Costas speed-ups to 8192 cores", fig14},
	// Extensions beyond the paper's artifact list (see extensions.go).
	"ttt":       {"Time-to-target plots", ttt},
	"bootstrap": {"Bootstrap CI on predictions", bootstrapCI},
	"censored":  {"Censored-campaign fits (KM + censored MLE)", censoredFits},
}
