package experiments

import (
	"context"
	"testing"
)

// TestRunAllParallelMatchesSerial: every artifact derives its random
// streams from the config seed and its own id, so the parallel worker
// pool must render bit-identically to a Workers=1 serial pass.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	serialLab := NewLab(Config{Paper: true, SimReps: 300, Workers: 1})
	parallelLab := NewLab(Config{Paper: true, SimReps: 300, Workers: 8})
	ctx := context.Background()
	serial, err := serialLab.RunAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := parallelLab.RunAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial %d artifacts, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].ID != parallel[i].ID {
			t.Fatalf("order diverged at %d: %s vs %s", i, serial[i].ID, parallel[i].ID)
		}
		if serial[i].Render() != parallel[i].Render() {
			t.Errorf("%s: parallel render differs from serial", serial[i].ID)
		}
		if serial[i].CSV != parallel[i].CSV {
			t.Errorf("%s: parallel CSV differs from serial", serial[i].ID)
		}
	}
}

// TestRunAllConcurrentLabSharing: a single Lab used by RunAll must
// memoize shared work safely under concurrency (the once-cells); in
// paper mode this exercises the cache plumbing without campaigns.
func TestRunAllReusableAcrossCalls(t *testing.T) {
	l := NewLab(Config{Paper: true, SimReps: 300})
	ctx := context.Background()
	first, err := l.RunAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	second, err := l.RunAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i].Render() != second[i].Render() {
			t.Errorf("%s: second RunAll differs", first[i].ID)
		}
	}
}

// BenchmarkRunAllSerialVsParallel demonstrates the wall-clock scaling
// of the parallel artifact pool in paper mode — the acceptance
// criterion for Lab.RunAll.
func BenchmarkRunAllSerialVsParallel(b *testing.B) {
	run := func(b *testing.B, workers int) {
		lab := NewLab(Config{Paper: true, SimReps: 3000, Workers: workers})
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := lab.RunAll(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}
