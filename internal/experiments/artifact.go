// Package experiments regenerates every table and figure of the
// paper's evaluation. Each experiment is addressed by the paper's own
// identifier (table1..table5, fig1..fig14) and produces an Artifact:
// a formatted table and/or an ASCII figure plus machine-readable CSV.
//
// Two modes exist (Config.Paper):
//
//   - live mode runs fresh Adaptive Search campaigns on scaled-down
//     instances, fits distributions with the paper's §6 procedure,
//     predicts speed-ups and measures them with the multi-walk
//     engines — the full pipeline end to end;
//   - paper mode replays the published numbers embedded in
//     internal/paperdata, feeding the paper's own fitted parameters
//     through this repository's predictor, which reproduces the
//     paper's predicted rows exactly (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"strings"
)

// Artifact is a regenerated table or figure.
type Artifact struct {
	ID          string
	Title       string
	Description string
	Headers     []string   // table header (optional)
	Rows        [][]string // table body (optional)
	Figure      string     // ASCII chart (optional)
	CSV         string     // machine-readable series (optional)
}

// Render formats the artifact for a terminal.
func (a *Artifact) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", a.ID, a.Title)
	if a.Description != "" {
		fmt.Fprintf(&b, "%s\n", a.Description)
	}
	if len(a.Headers) > 0 {
		b.WriteString(renderTable(a.Headers, a.Rows))
	}
	if a.Figure != "" {
		b.WriteString(a.Figure)
	}
	return b.String()
}

// renderTable aligns columns to their widest cell.
func renderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// f1 formats a float with one decimal, the paper's table style.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// fg formats compactly.
func fg(v float64) string { return fmt.Sprintf("%.6g", v) }
