package experiments

import (
	"context"
	"fmt"

	"lasvegas"
	"lasvegas/internal/core"
	"lasvegas/internal/multiwalk"
	"lasvegas/internal/paperdata"
	"lasvegas/internal/problems"
)

// table1 regenerates "Sequential execution times (in seconds)".
func table1(l *Lab, ctx context.Context) (*Artifact, error) {
	return summaryTable(l, ctx, "Sequential execution times (seconds)", false)
}

// table2 regenerates "Sequential number of iterations".
func table2(l *Lab, ctx context.Context) (*Artifact, error) {
	return summaryTable(l, ctx, "Sequential number of iterations", true)
}

func summaryTable(l *Lab, ctx context.Context, title string, iterations bool) (*Artifact, error) {
	a := &Artifact{
		Title:   title,
		Headers: []string{"Problem", "Min", "Mean", "Median", "Max"},
	}
	if l.cfg.Paper {
		rows := paperdata.Table1Times
		if iterations {
			rows = paperdata.Table2Iterations
		}
		for _, r := range rows {
			a.Rows = append(a.Rows, []string{r.Problem, fg(r.Min), fg(r.Mean), fg(r.Median), fg(r.Max)})
		}
		a.Description = "Published values (paper §5.4)."
		return a, nil
	}
	for _, kind := range paperKinds {
		c, err := l.Campaign(ctx, kind)
		if err != nil {
			return nil, err
		}
		var row lasvegas.Summary
		if iterations {
			row = c.IterationSummary()
		} else {
			row = c.TimeSummary()
		}
		a.Rows = append(a.Rows, []string{l.label(kind), fg(row.Min), fg(row.Mean), fg(row.Median), fg(row.Max)})
	}
	a.Description = fmt.Sprintf("Live campaign, %d runs per problem (scaled instances; see DESIGN.md §3).", l.cfg.Runs)
	return a, nil
}

// table3 regenerates "Speed-ups with respect to sequential time".
func table3(l *Lab, ctx context.Context) (*Artifact, error) {
	return speedupTable(l, ctx, "Speed-ups w.r.t. sequential time", false)
}

// table4 regenerates "Speed-ups with respect to sequential number of
// iterations".
func table4(l *Lab, ctx context.Context) (*Artifact, error) {
	return speedupTable(l, ctx, "Speed-ups w.r.t. sequential iterations", true)
}

func speedupTable(l *Lab, ctx context.Context, title string, iterations bool) (*Artifact, error) {
	headers := []string{"Problem"}
	for _, k := range l.cfg.Cores {
		headers = append(headers, fmt.Sprintf("k=%d", k))
	}
	a := &Artifact{Title: title, Headers: headers}
	if l.cfg.Paper {
		rows := paperdata.Table3TimeSpeedups
		if iterations {
			rows = paperdata.Table4IterSpeedups
		}
		for _, r := range rows {
			cells := []string{r.Problem}
			for _, g := range r.Speedups {
				cells = append(cells, f1(g))
			}
			a.Rows = append(a.Rows, cells)
		}
		a.Description = "Published values (paper §5.5, Griffon cluster)."
		return a, nil
	}
	for _, kind := range paperKinds {
		pts, err := l.measuredSpeedups(ctx, kind, l.cfg.Cores, iterations)
		if err != nil {
			return nil, err
		}
		cells := []string{l.label(kind)}
		for _, p := range pts {
			cells = append(cells, f1(p.Speedup))
		}
		a.Rows = append(a.Rows, cells)
	}
	a.Description = fmt.Sprintf(
		"Simulated multi-walk (min of n resampled sequential runtimes, %d reps per point);\nthe model's definition of Z(n) applied to the live campaign pool.", l.cfg.SimReps)
	return a, nil
}

// measuredSpeedups measures Z(n) via min-resampling on the campaign
// pool in the requested metric.
func (l *Lab) measuredSpeedups(ctx context.Context, kind lasvegas.Problem, cores []int, iterations bool) ([]multiwalk.SpeedupPoint, error) {
	c, err := l.Campaign(ctx, kind)
	if err != nil {
		return nil, err
	}
	pool := c.Seconds
	if iterations {
		pool = c.Iterations
	}
	return multiwalk.MeasureSimulated(pool, cores, l.cfg.SimReps, l.cfg.Seed^0xABCD^hashKind(kind))
}

// table5 regenerates "Comparison: experimental and predicted
// speedups" — the paper's headline result.
func table5(l *Lab, ctx context.Context) (*Artifact, error) {
	headers := []string{"Problem", ""}
	for _, k := range l.cfg.Cores {
		headers = append(headers, fmt.Sprintf("k=%d", k))
	}
	a := &Artifact{Title: "Experimental vs predicted speed-ups", Headers: headers}

	if l.cfg.Paper {
		// Experimental rows: published Table 4. Predicted rows:
		// recomputed HERE from the paper's fitted parameters — this is
		// the pipeline validation, and it matches the published
		// predicted rows (see core's tests).
		for i, kind := range paperKinds {
			exp := paperdata.Table4IterSpeedups[i]
			fitted, _ := paperdata.Fitted(problems.Kind(kind))
			pred, err := core.NewPredictor(fitted)
			if err != nil {
				return nil, err
			}
			expCells := []string{exp.Problem, "experimental"}
			for _, g := range exp.Speedups {
				expCells = append(expCells, f1(g))
			}
			predCells := []string{"", "predicted"}
			for _, k := range l.cfg.Cores {
				g, err := pred.Speedup(k)
				if err != nil {
					return nil, err
				}
				predCells = append(predCells, f2(g))
			}
			a.Rows = append(a.Rows, expCells, predCells)
		}
		a.Description = "Experimental rows: published Table 4. Predicted rows: this library's\npredictor fed the paper's fitted distributions (§6)."
		return a, nil
	}

	for _, kind := range paperKinds {
		pts, err := l.measuredSpeedups(ctx, kind, l.cfg.Cores, true)
		if err != nil {
			return nil, err
		}
		best, err := l.BestFit(ctx, kind)
		if err != nil {
			return nil, err
		}
		gof, _ := best.GoodnessOfFit()
		expCells := []string{l.label(kind), "experimental"}
		for _, p := range pts {
			expCells = append(expCells, f1(p.Speedup))
		}
		predCells := []string{fmt.Sprintf("(%s, p=%.3f)", best.Family(), gof.PValue), "predicted"}
		for _, k := range l.cfg.Cores {
			g, err := best.Speedup(k)
			if err != nil {
				return nil, err
			}
			predCells = append(predCells, f2(g))
		}
		a.Rows = append(a.Rows, expCells, predCells)
	}
	a.Description = "Experimental: simulated multi-walk on the live campaign pool.\nPredicted: §6 pipeline (fit by KS-ranked family, then G(n)=E[Y]/E[Z(n)])."
	return a, nil
}
