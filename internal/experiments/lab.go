package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"lasvegas"
	"lasvegas/internal/paperdata"
	"lasvegas/internal/problems"
)

// Config tunes the experiment harness. Zero values fall back to the
// defaults documented on each field.
type Config struct {
	// Paper switches to replaying the published evaluation numbers
	// instead of running live campaigns.
	Paper bool
	// Runs is the number of sequential runs per live campaign
	// (default 200; the paper used ~650).
	Runs int
	// SimReps is the number of resampled multi-walk repetitions per
	// core count (default 3000).
	SimReps int
	// Cores is the measured core grid (default the paper's
	// {16,32,64,128,256}).
	Cores []int
	// Seed makes the whole harness deterministic (default 1).
	Seed uint64
	// Workers bounds each worker pool of the harness independently:
	// the goroutines of one live campaign and the number of artifacts
	// RunAll regenerates concurrently (default GOMAXPROCS; 1 forces
	// fully serial execution). In live mode the two levels nest, so up
	// to Workers² goroutines can be runnable at once; GOMAXPROCS still
	// caps the threads actually running, the nesting only adds
	// scheduler pressure.
	Workers int
	// Sizes overrides the per-problem instance sizes (defaults from
	// Problem.DefaultSize; the paper's sizes via Problem.PaperSize
	// make live campaigns take hours, exactly as in the paper).
	Sizes map[lasvegas.Problem]int
}

func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = 200
	}
	if c.SimReps <= 0 {
		c.SimReps = 3000
	}
	if len(c.Cores) == 0 {
		c.Cores = append([]int(nil), paperdata.Cores...)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sizes == nil {
		c.Sizes = map[lasvegas.Problem]int{}
	}
	for _, kind := range paperKinds {
		if c.Sizes[kind] <= 0 {
			c.Sizes[kind] = kind.DefaultSize()
		}
	}
	return c
}

// paperKinds are the three benchmarks of the evaluation, in the
// paper's table order.
var paperKinds = []lasvegas.Problem{lasvegas.MagicSquare, lasvegas.AllInterval, lasvegas.Costas}

// Lab caches live campaigns and fits across experiments so that
// "run everything" collects each benchmark's runtimes exactly once.
// Campaign collection and model selection go through the public
// lasvegas API — the Lab is both the paper harness and the standing
// integration test of that surface. All methods are safe for
// concurrent use: memoization uses per-kind once-cells, so concurrent
// artifact generators needing the same campaign block on a single
// collection instead of duplicating it.
type Lab struct {
	cfg Config

	mu        sync.Mutex // guards the two maps (not the cells' contents)
	campaigns map[lasvegas.Problem]*campaignCell
	fits      map[lasvegas.Problem]*fitCell
}

// campaignCell memoizes one benchmark's live campaign. Only success
// is cached: a failed collection (e.g. a cancelled context) leaves
// the cell empty so a later call can retry. The cell mutex also
// serializes concurrent callers, so one collection is shared.
type campaignCell struct {
	mu sync.Mutex
	c  *lasvegas.Campaign
}

// fitCell memoizes one benchmark's model selection (success only,
// like campaignCell).
type fitCell struct {
	mu sync.Mutex
	m  *lasvegas.Model
}

// NewLab returns a Lab with the given configuration.
func NewLab(cfg Config) *Lab {
	return &Lab{
		cfg:       cfg.withDefaults(),
		campaigns: map[lasvegas.Problem]*campaignCell{},
		fits:      map[lasvegas.Problem]*fitCell{},
	}
}

// Config returns the effective configuration.
func (l *Lab) Config() Config { return l.cfg }

// label returns the display name of a benchmark in the current mode.
func (l *Lab) label(kind lasvegas.Problem) string {
	if l.cfg.Paper {
		if s, ok := paperdata.PaperLabel(problems.Kind(kind)); ok {
			return s
		}
	}
	return fmt.Sprintf("%s %d", shortName(kind), l.cfg.Sizes[kind])
}

func shortName(kind lasvegas.Problem) string {
	switch kind {
	case lasvegas.AllInterval:
		return "AI"
	case lasvegas.MagicSquare:
		return "MS"
	case lasvegas.Costas:
		return "Costas"
	case lasvegas.Queens:
		return "Queens"
	case lasvegas.SAT3:
		return "SAT3"
	}
	return string(kind)
}

// predictor builds the public-API predictor of one benchmark, with
// the per-kind seed offset that keeps campaigns independent.
func (l *Lab) predictor(kind lasvegas.Problem) *lasvegas.Predictor {
	return lasvegas.New(
		lasvegas.WithRuns(l.cfg.Runs),
		lasvegas.WithSeed(l.cfg.Seed^hashKind(kind)),
		lasvegas.WithWorkers(l.cfg.Workers),
	)
}

// Campaign returns the (cached) live sequential campaign for kind.
// Concurrent callers share one collection.
func (l *Lab) Campaign(ctx context.Context, kind lasvegas.Problem) (*lasvegas.Campaign, error) {
	l.mu.Lock()
	cell, ok := l.campaigns[kind]
	if !ok {
		cell = &campaignCell{}
		l.campaigns[kind] = cell
	}
	l.mu.Unlock()
	cell.mu.Lock()
	defer cell.mu.Unlock()
	if cell.c != nil {
		return cell.c, nil
	}
	size := l.cfg.Sizes[kind]
	c, err := l.predictor(kind).Collect(ctx, kind, size)
	if err != nil {
		return nil, fmt.Errorf("experiments: campaign %s-%d: %w", kind, size, err)
	}
	cell.c = c
	return c, nil
}

// BestFit runs the paper's §6 model-selection loop on the live
// campaign of kind through the public API: candidate families
// exponential, shifted exponential and lognormal, ranked by KS
// p-value, best non-rejected fit wins.
func (l *Lab) BestFit(ctx context.Context, kind lasvegas.Problem) (*lasvegas.Model, error) {
	l.mu.Lock()
	cell, ok := l.fits[kind]
	if !ok {
		cell = &fitCell{}
		l.fits[kind] = cell
	}
	l.mu.Unlock()
	cell.mu.Lock()
	defer cell.mu.Unlock()
	if cell.m != nil {
		return cell.m, nil
	}
	c, err := l.Campaign(ctx, kind)
	if err != nil {
		return nil, err
	}
	cands, err := l.predictor(kind).FitAll(c)
	if err != nil {
		return nil, fmt.Errorf("experiments: fitting %s: %w", kind, err)
	}
	for _, cand := range cands {
		// Highest KS p-value first; like the paper, report the best
		// candidate even when the verdict is a rejection.
		if cand.Model != nil {
			cell.m = cand.Model
			return cand.Model, nil
		}
	}
	return nil, fmt.Errorf("experiments: no family fitted %s", kind)
}

// hashKind gives each benchmark an independent seed offset.
func hashKind(kind lasvegas.Problem) uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range []byte(kind) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// generator builds one artifact.
type generator struct {
	title string
	run   func(*Lab, context.Context) (*Artifact, error)
}

// Run regenerates the experiment with the paper identifier id.
func (l *Lab) Run(ctx context.Context, id string) (*Artifact, error) {
	g, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	a, err := g.run(l, ctx)
	if err != nil {
		return nil, err
	}
	a.ID = id
	if a.Title == "" {
		a.Title = g.title
	}
	return a, nil
}

// RunAll regenerates every table and figure, returned in paper order.
// Artifacts are generated concurrently on a worker pool bounded by
// Config.Workers (default GOMAXPROCS): every artifact derives its
// random streams from Config.Seed and its own identifier, so the
// output is bit-identical to a serial run regardless of scheduling.
// On failure the successfully generated artifacts are returned (in
// order, with failures dropped) together with the first error in
// paper order.
func (l *Lab) RunAll(ctx context.Context) ([]*Artifact, error) {
	ids := IDs()
	workers := l.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	arts := make([]*Artifact, len(ids))
	errs := make([]error, len(ids))
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(ids) {
			return -1
		}
		i := next
		next++
		return i
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				arts[i], errs[i] = l.Run(ctx, ids[i])
			}
		}()
	}
	wg.Wait()

	out := make([]*Artifact, 0, len(ids))
	var firstErr error
	for i, a := range arts {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("experiments: %s: %w", ids[i], errs[i])
			}
			continue
		}
		out = append(out, a)
	}
	return out, firstErr
}

// IDs lists the known experiment identifiers in paper order, with
// extension experiments (ttt, bootstrap, ...) after the paper's own.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ki, kj := orderKey(ids[i]), orderKey(ids[j])
		if ki != kj {
			return ki < kj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// orderKey sorts table1..5 before fig1..fig14, numerically, with
// anything else (extensions) last.
func orderKey(id string) int {
	var n int
	switch {
	case strings.HasPrefix(id, "table"):
		fmt.Sscanf(id, "table%d", &n)
		return n
	case strings.HasPrefix(id, "fig"):
		fmt.Sscanf(id, "fig%d", &n)
		return 100 + n
	}
	return 1000
}
