package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"lasvegas"
)

func TestIDsCoverEveryTableAndFigure(t *testing.T) {
	ids := IDs()
	want := map[string]bool{}
	for i := 1; i <= 5; i++ {
		want["table"+strconv.Itoa(i)] = true
	}
	for i := 1; i <= 14; i++ {
		if i == 0 {
			continue
		}
	}
	for _, i := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14} {
		want["fig"+strconv.Itoa(i)] = true
	}
	// Extension experiments ship alongside the paper's artifacts.
	want["ttt"] = true
	want["bootstrap"] = true
	want["censored"] = true
	got := map[string]bool{}
	for _, id := range ids {
		got[id] = true
	}
	for id := range want {
		if !got[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("have %d experiments, want %d", len(ids), len(want))
	}
	// Paper order: tables first, figures next, extensions last.
	if ids[0] != "table1" || ids[5] != "fig1" {
		t.Errorf("ordering wrong: %v", ids[:6])
	}
	if ids[len(ids)-3] != "bootstrap" || ids[len(ids)-2] != "censored" || ids[len(ids)-1] != "ttt" {
		t.Errorf("extensions not last: %v", ids[len(ids)-3:])
	}
}

func TestUnknownID(t *testing.T) {
	l := NewLab(Config{Paper: true})
	if _, err := l.Run(context.Background(), "table99"); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestPaperModeRegeneratesEverything replays the published evaluation
// end to end — every table and every figure — from embedded data and
// the prediction pipeline. This is the cheapest full-coverage pass.
func TestPaperModeRegeneratesEverything(t *testing.T) {
	l := NewLab(Config{Paper: true, SimReps: 500})
	arts, err := l.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != len(IDs()) {
		t.Fatalf("regenerated %d artifacts, want %d", len(arts), len(IDs()))
	}
	for _, a := range arts {
		out := a.Render()
		if !strings.Contains(out, a.ID) {
			t.Errorf("%s: render missing id", a.ID)
		}
		if len(a.Headers) == 0 && a.Figure == "" {
			t.Errorf("%s: artifact has neither table nor figure", a.ID)
		}
	}
}

func TestPaperTable5ContainsPublishedPrediction(t *testing.T) {
	l := NewLab(Config{Paper: true})
	a, err := l.Run(context.Background(), "table5")
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	// The recomputed predicted rows must show the paper's numbers.
	for _, token := range []string{"15.94", "22.04", "28.28", "34.26", "13.7", "23.8", "256"} {
		if !strings.Contains(out, token) {
			t.Errorf("table5 missing %q:\n%s", token, out)
		}
	}
}

func TestPaperTable2ShowsPublishedIterations(t *testing.T) {
	l := NewLab(Config{Paper: true})
	a, err := l.Run(context.Background(), "table2")
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	for _, token := range []string{"443969", "110393", "Costas 21"} {
		if !strings.Contains(out, token) {
			t.Errorf("table2 missing %q", token)
		}
	}
}

func TestFigureCSVWellFormed(t *testing.T) {
	l := NewLab(Config{Paper: true, SimReps: 300})
	for _, id := range []string{"fig3", "fig6", "fig14"} {
		a, err := l.Run(context.Background(), id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.HasPrefix(a.CSV, "series,x,y\n") {
			t.Errorf("%s: CSV header missing", id)
		}
		if strings.Count(a.CSV, "\n") < 3 {
			t.Errorf("%s: CSV nearly empty", id)
		}
	}
}

// TestLiveModeEndToEnd exercises the real pipeline: campaigns on tiny
// instances, fitting, prediction, simulated measurement — the whole
// §5–§7 flow in miniature.
func TestLiveModeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live campaigns too slow for -short")
	}
	l := NewLab(Config{
		Runs:    60,
		SimReps: 400,
		Cores:   []int{4, 16},
		Seed:    7,
		Sizes: map[lasvegas.Problem]int{
			lasvegas.AllInterval: 14,
			lasvegas.MagicSquare: 5,
			lasvegas.Costas:      9,
		},
	})
	ctx := context.Background()
	for _, id := range []string{"table1", "table2", "table4", "table5", "fig8", "fig9", "fig14", "ttt", "bootstrap"} {
		a, err := l.Run(ctx, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if out := a.Render(); len(out) < 40 {
			t.Errorf("%s: suspiciously short output", id)
		}
	}
	// Campaigns must have been cached: three benchmarks only.
	if len(l.campaigns) != 3 {
		t.Errorf("expected 3 cached campaigns, got %d", len(l.campaigns))
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Runs <= 0 || cfg.SimReps <= 0 || len(cfg.Cores) == 0 || cfg.Seed == 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	for _, kind := range paperKinds {
		if cfg.Sizes[kind] <= 0 {
			t.Errorf("no default size for %s", kind)
		}
	}
}

func TestLabelPaperVsLive(t *testing.T) {
	lp := NewLab(Config{Paper: true})
	if lp.label(lasvegas.AllInterval) != "AI 700" {
		t.Errorf("paper label %q", lp.label(lasvegas.AllInterval))
	}
	ll := NewLab(Config{Sizes: map[lasvegas.Problem]int{lasvegas.AllInterval: 14}})
	if ll.label(lasvegas.AllInterval) != "AI 14" {
		t.Errorf("live label %q", ll.label(lasvegas.AllInterval))
	}
}
