package fit

import (
	"math"
	"testing"

	"lasvegas/internal/dist"
	"lasvegas/internal/stats"
	"lasvegas/internal/xrand"
)

func sample(t *testing.T, d dist.Dist, n int, seed uint64) []float64 {
	t.Helper()
	return dist.SampleN(d, xrand.New(seed), n)
}

func TestShiftedExponentialEstimators(t *testing.T) {
	// The paper's estimators: x0 = min, λ = 1/(mean - x0).
	xs := []float64{10, 20, 30, 40}
	d, err := ShiftedExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if d.Shift != 10 {
		t.Errorf("x0 = %v, want 10", d.Shift)
	}
	if want := 1.0 / 15; math.Abs(d.Rate-want) > 1e-12 {
		t.Errorf("λ = %v, want %v", d.Rate, want)
	}
}

func TestShiftedExponentialRecovery(t *testing.T) {
	truth, _ := dist.NewShiftedExponential(1217, 9.15956e-6)
	xs := sample(t, truth, 720, 1)
	d, err := ShiftedExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Shift-1217) > 0.15*truth.Mean() {
		t.Errorf("recovered shift %v far from 1217", d.Shift)
	}
	if math.Abs(d.Rate-truth.Rate) > 0.1*truth.Rate {
		t.Errorf("recovered rate %v far from %v", d.Rate, truth.Rate)
	}
}

func TestExponentialRecovery(t *testing.T) {
	truth, _ := dist.NewExponential(5.4e-9)
	xs := sample(t, truth, 638, 2)
	d, err := Exponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Rate-truth.Rate) > 0.1*truth.Rate {
		t.Errorf("rate %v, want ≈%v", d.Rate, truth.Rate)
	}
	if d.Shift != 0 {
		t.Errorf("unshifted fit has shift %v", d.Shift)
	}
}

func TestLogNormalShiftRecovery(t *testing.T) {
	truth, _ := dist.NewLogNormal(6210, 12.0275, 1.3398)
	xs := sample(t, truth, 662, 3)
	d, err := LogNormalShift(xs, 6210)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mu-12.0275) > 0.2 {
		t.Errorf("μ = %v, want ≈12.03", d.Mu)
	}
	if math.Abs(d.Sigma-1.3398) > 0.15 {
		t.Errorf("σ = %v, want ≈1.34", d.Sigma)
	}
}

func TestLogNormalProfileRecovery(t *testing.T) {
	truth, _ := dist.NewLogNormal(0, 5, 1)
	xs := sample(t, truth, 700, 4)
	d, err := LogNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mu-5) > 0.3 {
		t.Errorf("μ = %v, want ≈5", d.Mu)
	}
	if math.Abs(d.Sigma-1) > 0.2 {
		t.Errorf("σ = %v, want ≈1", d.Sigma)
	}
}

func TestLogNormalShiftRejectsBelowShift(t *testing.T) {
	if _, err := LogNormalShift([]float64{5, 10, 20}, 7); err == nil {
		t.Error("observation below shift accepted")
	}
}

func TestNormalRecovery(t *testing.T) {
	truth, _ := dist.NewNormal(100, 15)
	xs := sample(t, truth, 1000, 5)
	d, err := Normal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mu-100) > 2 || math.Abs(d.Sigma-15) > 1.5 {
		t.Errorf("recovered N(%v, %v)", d.Mu, d.Sigma)
	}
}

func TestGammaRecovery(t *testing.T) {
	truth, _ := dist.NewGamma(2.5, 0.4)
	xs := sample(t, truth, 2000, 6)
	d, err := Gamma(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Shape-2.5) > 0.3 {
		t.Errorf("shape %v, want ≈2.5", d.Shape)
	}
	if math.Abs(d.Rate-0.4) > 0.06 {
		t.Errorf("rate %v, want ≈0.4", d.Rate)
	}
}

func TestWeibullRecovery(t *testing.T) {
	truth, _ := dist.NewWeibull(1.8, 50)
	xs := sample(t, truth, 2000, 7)
	d, err := Weibull(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Shape-1.8) > 0.15 {
		t.Errorf("shape %v, want ≈1.8", d.Shape)
	}
	if math.Abs(d.Scale-50) > 3 {
		t.Errorf("scale %v, want ≈50", d.Scale)
	}
}

func TestLevyFitIsAccepted(t *testing.T) {
	truth, _ := dist.NewLevy(10, 3)
	xs := sample(t, truth, 800, 8)
	d, err := Levy(xs)
	if err != nil {
		t.Fatal(err)
	}
	if d.C <= 0 {
		t.Errorf("scale %v", d.C)
	}
	if d.Loc >= stats.Min(xs) {
		t.Errorf("location %v not below sample min %v", d.Loc, stats.Min(xs))
	}
}

func TestAutoPrefersTrueFamilyExponential(t *testing.T) {
	truth, _ := dist.NewShiftedExponential(1000, 1e-4)
	xs := sample(t, truth, 650, 9)
	results, err := Auto(xs)
	if err != nil {
		t.Fatal(err)
	}
	best := results[0]
	if best.Err != nil {
		t.Fatalf("best fit failed: %v", best.Err)
	}
	if best.Family != FamShiftedExponential && best.Family != FamExponential {
		t.Errorf("best family %v, want an exponential variant (p=%v)", best.Family, best.KS.PValue)
	}
	if best.KS.RejectAt(0.05) {
		t.Errorf("true family rejected: p=%v", best.KS.PValue)
	}
}

func TestAutoPrefersLogNormalWhenTrue(t *testing.T) {
	truth, _ := dist.NewLogNormal(0, 12, 1.3)
	xs := sample(t, truth, 662, 10)
	results, err := Auto(xs)
	if err != nil {
		t.Fatal(err)
	}
	// The lognormal must rank above normal and Lévy; exponential may
	// occasionally score close but should not beat it with σ=1.3.
	if results[0].Family != FamLogNormal {
		t.Errorf("best family %v, want lognormal", results[0].Family)
		for _, r := range results {
			t.Logf("  %v p=%v err=%v", r.Family, r.KS.PValue, r.Err)
		}
	}
}

func TestAutoRejectsGaussianForSkewedData(t *testing.T) {
	truth, _ := dist.NewLogNormal(0, 5, 1.5)
	xs := sample(t, truth, 650, 11)
	results, _ := Auto(xs)
	for _, r := range results {
		if r.Family == FamNormal && r.Err == nil && !r.KS.RejectAt(0.05) {
			t.Errorf("gaussian accepted on heavily skewed data (p=%v)", r.KS.PValue)
		}
	}
}

func TestBestReturnsAcceptedFit(t *testing.T) {
	truth, _ := dist.NewExponential(0.001)
	xs := sample(t, truth, 650, 12)
	r, err := Best(xs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.KS.RejectAt(0.05) {
		t.Error("Best returned a rejected fit")
	}
}

func TestBestFailsWhenNothingFits(t *testing.T) {
	// A comb-like discrete sample fits none of the continuous families.
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = float64(i%2)*1000 + 1
	}
	if _, err := Best(xs, 0.05); err == nil {
		t.Error("expected no family to fit a two-point sample")
	}
}

func TestNegligibleShift(t *testing.T) {
	// Costas-like: min tiny vs mean.
	if !NegligibleShift([]float64{3.2e5, 1.8e8, 2.5e8, 3.6e8}) {
		t.Error("Costas-like sample should have negligible shift")
	}
	// AI-like: x0 of the same order as the mean spread.
	if NegligibleShift([]float64{1217, 50000, 110393, 300000}) {
		t.Error("AI-like sample should not have negligible shift")
	}
}

func TestDegenerateSamples(t *testing.T) {
	if _, err := ShiftedExponential([]float64{5, 5, 5}); err == nil {
		t.Error("zero-spread sample accepted by ShiftedExponential")
	}
	if _, err := Exponential(nil); err == nil {
		t.Error("empty sample accepted by Exponential")
	}
	if _, err := Gamma([]float64{1, -2, 3}); err == nil {
		t.Error("negative observation accepted by Gamma")
	}
	if _, err := Weibull([]float64{0, 1, 2}); err == nil {
		t.Error("zero observation accepted by Weibull")
	}
	if _, err := Normal([]float64{7}); err == nil {
		t.Error("single observation accepted by Normal")
	}
	if _, err := Auto(nil); err == nil {
		t.Error("empty sample accepted by Auto")
	}
}

func TestAutoUnknownFamily(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	results, err := Auto(xs, Family("no-such-family"))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Error("unknown family should carry an error")
	}
}
