// Package fit estimates runtime-distribution parameters from
// sequential campaign samples, mirroring §6 of the paper:
//
//   - shifted exponential with the paper's estimators x0 = observed
//     minimum, λ = 1/(mean − x0);
//   - plain exponential when x0 is negligible against the mean (the
//     paper's Costas 21 decision);
//   - shifted lognormal by profile maximum likelihood over the shift;
//   - plus normal, gamma, weibull and Lévy MLEs so the auto-fitter can
//     reproduce the paper's "we also tested gaussian and Lévy and got
//     negative results" step.
//
// Auto ranks every candidate family by Kolmogorov–Smirnov p-value and
// returns them ordered, which is exactly the paper's model-selection
// loop in executable form.
package fit

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"lasvegas/internal/dist"
	"lasvegas/internal/ks"
	"lasvegas/internal/optim"
	"lasvegas/internal/specfn"
	"lasvegas/internal/stats"
)

// ErrSample reports a sample unusable for estimation.
var ErrSample = errors.New("fit: unusable sample")

// negligibleShiftRatio is the paper's informal "x0 ≪ 1/λ" criterion
// made concrete: if min(sample)/mean(sample) is below this ratio we
// also try the unshifted family (Costas 21 had ratio ≈ 0.0017).
const negligibleShiftRatio = 0.01

// ShiftedExponential applies the paper's §6.1 estimators.
func ShiftedExponential(sample []float64) (dist.ShiftedExponential, error) {
	if len(sample) < 2 {
		return dist.ShiftedExponential{}, fmt.Errorf("%w: need ≥2 observations", ErrSample)
	}
	x0 := stats.Min(sample)
	mean := stats.Mean(sample)
	if !(mean > x0) {
		return dist.ShiftedExponential{}, fmt.Errorf("%w: zero spread", ErrSample)
	}
	return dist.NewShiftedExponential(x0, 1/(mean-x0))
}

// Exponential fits the unshifted family: λ = 1/mean (§6.3).
func Exponential(sample []float64) (dist.ShiftedExponential, error) {
	if len(sample) == 0 {
		return dist.ShiftedExponential{}, ErrSample
	}
	mean := stats.Mean(sample)
	if !(mean > 0) {
		return dist.ShiftedExponential{}, fmt.Errorf("%w: non-positive mean", ErrSample)
	}
	return dist.NewExponential(1 / mean)
}

// LogNormalShift fits a lognormal with a fixed shift x0 by MLE on
// log(x − x0); observations at or below the shift are rejected.
func LogNormalShift(sample []float64, x0 float64) (dist.LogNormal, error) {
	logs := make([]float64, 0, len(sample))
	for _, x := range sample {
		if x <= x0 {
			return dist.LogNormal{}, fmt.Errorf("%w: observation %v ≤ shift %v", ErrSample, x, x0)
		}
		logs = append(logs, math.Log(x-x0))
	}
	if len(logs) < 2 {
		return dist.LogNormal{}, fmt.Errorf("%w: need ≥2 observations", ErrSample)
	}
	mu := stats.Mean(logs)
	// MLE uses the biased (1/n) variance.
	var s2 float64
	for _, l := range logs {
		d := l - mu
		s2 += d * d
	}
	s2 /= float64(len(logs))
	if !(s2 > 0) {
		return dist.LogNormal{}, fmt.Errorf("%w: zero log-spread", ErrSample)
	}
	return dist.NewLogNormal(x0, mu, math.Sqrt(s2))
}

// LogNormal fits a three-parameter (shifted) lognormal by profile
// maximum likelihood: for each candidate shift the (μ, σ) MLE is
// closed-form, and the profile log-likelihood is maximized over
// x0 ∈ [0, min) by golden/Brent search. This is the Go equivalent of
// the paper's Mathematica parameter estimation for MS 200.
func LogNormal(sample []float64) (dist.LogNormal, error) {
	if len(sample) < 3 {
		return dist.LogNormal{}, fmt.Errorf("%w: need ≥3 observations", ErrSample)
	}
	minX := stats.Min(sample)
	if minX <= 0 {
		return dist.LogNormal{}, fmt.Errorf("%w: non-positive observations", ErrSample)
	}
	// Profile negative log-likelihood as a function of the shift.
	nll := func(x0 float64) float64 {
		n := float64(len(sample))
		var sumLog, sumLog2 float64
		for _, x := range sample {
			t := x - x0
			if t <= 0 {
				return math.Inf(1)
			}
			l := math.Log(t)
			sumLog += l
			sumLog2 += l * l
		}
		mu := sumLog / n
		s2 := sumLog2/n - mu*mu
		if s2 <= 0 {
			return math.Inf(1)
		}
		// -ℓ(x0) = n/2·log(s2) + Σ log t  (dropping constants)
		return n/2*math.Log(s2) + sumLog
	}
	// The likelihood of the 3-parameter lognormal is unbounded as
	// x0 → min, so search on [0, min − ε] with ε tied to the spread.
	eps := math.Max((stats.Max(sample)-minX)*1e-6, minX*1e-9)
	hi := minX - eps
	if hi <= 0 {
		hi = minX * (1 - 1e-9)
	}
	x0, err := optim.BrentMin(nll, 0, hi, 1e-9)
	if err != nil || math.IsNaN(x0) {
		x0 = 0
	}
	if nll(0) <= nll(x0) {
		x0 = 0 // prefer the simpler unshifted fit when no worse
	}
	return LogNormalShift(sample, x0)
}

// Normal fits a gaussian by moments (= MLE).
func Normal(sample []float64) (dist.Normal, error) {
	if len(sample) < 2 {
		return dist.Normal{}, fmt.Errorf("%w: need ≥2 observations", ErrSample)
	}
	sd := stats.StdDev(sample)
	if !(sd > 0) {
		return dist.Normal{}, fmt.Errorf("%w: zero spread", ErrSample)
	}
	return dist.NewNormal(stats.Mean(sample), sd)
}

// Gamma fits by maximum likelihood: the Minka/Choi–Wette Newton
// iteration on the shape, then rate = shape/mean.
func Gamma(sample []float64) (dist.Gamma, error) {
	if len(sample) < 2 {
		return dist.Gamma{}, fmt.Errorf("%w: need ≥2 observations", ErrSample)
	}
	var sum, sumLog float64
	for _, x := range sample {
		if x <= 0 {
			return dist.Gamma{}, fmt.Errorf("%w: non-positive observation %v", ErrSample, x)
		}
		sum += x
		sumLog += math.Log(x)
	}
	n := float64(len(sample))
	mean := sum / n
	s := math.Log(mean) - sumLog/n
	if !(s > 0) {
		return dist.Gamma{}, fmt.Errorf("%w: degenerate gamma sample", ErrSample)
	}
	k := (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	for i := 0; i < 50; i++ {
		num := math.Log(k) - specfn.Digamma(k) - s
		den := 1/k - specfn.Trigamma(k)
		step := num / den
		next := k - step
		if next <= 0 {
			next = k / 2
		}
		if math.Abs(next-k) < 1e-12*k {
			k = next
			break
		}
		k = next
	}
	return dist.NewGamma(k, k/mean)
}

// Weibull fits by maximum likelihood (Newton on the shape equation).
func Weibull(sample []float64) (dist.Weibull, error) {
	if len(sample) < 2 {
		return dist.Weibull{}, fmt.Errorf("%w: need ≥2 observations", ErrSample)
	}
	var sumLog float64
	for _, x := range sample {
		if x <= 0 {
			return dist.Weibull{}, fmt.Errorf("%w: non-positive observation %v", ErrSample, x)
		}
		sumLog += math.Log(x)
	}
	n := float64(len(sample))
	meanLog := sumLog / n
	// Shape equation g(k) = Σx^k lnx / Σx^k − 1/k − meanLog = 0.
	g := func(k float64) float64 {
		var sk, skl float64
		for _, x := range sample {
			xk := math.Pow(x, k)
			sk += xk
			skl += xk * math.Log(x)
		}
		return skl/sk - 1/k - meanLog
	}
	// g is increasing in k; bracket then Brent.
	lo, hi := 1e-3, 1.0
	for g(hi) < 0 && hi < 1e4 {
		hi *= 2
	}
	for g(lo) > 0 && lo > 1e-9 {
		lo /= 2
	}
	k, err := optim.BrentRoot(g, lo, hi, 1e-10)
	if err != nil {
		return dist.Weibull{}, fmt.Errorf("fit: weibull shape: %w", err)
	}
	var sk float64
	for _, x := range sample {
		sk += math.Pow(x, k)
	}
	scale := math.Pow(sk/n, 1/k)
	return dist.NewWeibull(k, scale)
}

// Levy fits the Lévy law with location just below the observed
// minimum and the scale MLE c = n / Σ 1/(xᵢ − loc).
func Levy(sample []float64) (dist.Levy, error) {
	if len(sample) < 2 {
		return dist.Levy{}, fmt.Errorf("%w: need ≥2 observations", ErrSample)
	}
	minX := stats.Min(sample)
	span := stats.Max(sample) - minX
	if !(span > 0) {
		return dist.Levy{}, fmt.Errorf("%w: zero spread", ErrSample)
	}
	loc := minX - span*1e-3
	var invSum float64
	for _, x := range sample {
		invSum += 1 / (x - loc)
	}
	return dist.NewLevy(loc, float64(len(sample))/invSum)
}

// Family identifies a candidate distribution family for Auto.
type Family string

// Candidate families.
const (
	FamExponential        Family = "exponential"
	FamShiftedExponential Family = "shifted-exponential"
	FamLogNormal          Family = "lognormal"
	FamNormal             Family = "normal"
	FamGamma              Family = "gamma"
	FamWeibull            Family = "weibull"
	FamLevy               Family = "levy"
)

// DefaultFamilies is the candidate set the paper effectively
// considers: the two exponential variants and the lognormal it
// accepts, plus the gaussian and Lévy it reports rejecting.
var DefaultFamilies = []Family{
	FamExponential, FamShiftedExponential, FamLogNormal, FamNormal, FamLevy,
}

// AllFamilies adds gamma and weibull to the default set.
var AllFamilies = []Family{
	FamExponential, FamShiftedExponential, FamLogNormal,
	FamNormal, FamGamma, FamWeibull, FamLevy,
}

// Result is one fitted candidate with its goodness of fit.
type Result struct {
	Family Family
	Dist   dist.Dist
	KS     ks.Result
	Err    error // non-nil when the family could not be fitted
}

// Auto fits every requested family (DefaultFamilies when families is
// empty) and returns the results sorted by descending KS p-value.
// Families that fail to fit appear at the end with Err set. The first
// element with Err == nil is the best fit; callers emulating the
// paper should additionally check RejectAt(0.05).
func Auto(sample []float64, families ...Family) ([]Result, error) {
	if len(sample) == 0 {
		return nil, ErrSample
	}
	if len(families) == 0 {
		families = DefaultFamilies
	}
	results := make([]Result, 0, len(families))
	for _, fam := range families {
		r := Result{Family: fam}
		var d dist.Dist
		var err error
		switch fam {
		case FamExponential:
			d, err = wrap(Exponential(sample))
		case FamShiftedExponential:
			d, err = wrap(ShiftedExponential(sample))
		case FamLogNormal:
			d, err = wrap(LogNormal(sample))
		case FamNormal:
			d, err = wrap(Normal(sample))
		case FamGamma:
			d, err = wrap(Gamma(sample))
		case FamWeibull:
			d, err = wrap(Weibull(sample))
		case FamLevy:
			d, err = wrap(Levy(sample))
		default:
			err = fmt.Errorf("fit: unknown family %q", fam)
		}
		if err != nil {
			r.Err = err
			results = append(results, r)
			continue
		}
		r.Dist = d
		ksRes, err := ks.OneSample(sample, d)
		if err != nil {
			r.Err = err
		} else {
			r.KS = ksRes
		}
		results = append(results, r)
	}
	sort.SliceStable(results, func(i, j int) bool {
		switch {
		case results[i].Err == nil && results[j].Err != nil:
			return true
		case results[i].Err != nil:
			return false
		}
		return results[i].KS.PValue > results[j].KS.PValue
	})
	return results, nil
}

// Best returns the highest-p-value successful fit from Auto, or an
// error when no family fits at the given significance level.
func Best(sample []float64, alpha float64, families ...Family) (Result, error) {
	results, err := Auto(sample, families...)
	if err != nil {
		return Result{}, err
	}
	for _, r := range results {
		if r.Err == nil && !r.KS.RejectAt(alpha) {
			return r, nil
		}
	}
	return Result{}, fmt.Errorf("fit: no candidate family passes KS at α=%v", alpha)
}

// NegligibleShift reports whether the paper's x0 ≈ 0 simplification
// applies to the sample (observed minimum negligible vs the mean).
func NegligibleShift(sample []float64) bool {
	m := stats.Mean(sample)
	if !(m > 0) {
		return false
	}
	return stats.Min(sample)/m < negligibleShiftRatio
}

// wrap adapts a concrete (D, error) pair to (dist.Dist, error).
func wrap[D dist.Dist](d D, err error) (dist.Dist, error) {
	if err != nil {
		return nil, err
	}
	return d, nil
}
