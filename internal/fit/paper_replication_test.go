package fit

import (
	"testing"

	"lasvegas/internal/dist"
	"lasvegas/internal/xrand"
)

// TestPaperFamilySelectionReplication replays the paper's §6 model
// selection on synthetic campaigns drawn from the paper's own fitted
// laws, with the paper's sample sizes. The pipeline must select the
// same family the paper selected for each benchmark:
//
//   - AI 700  (720 runs) → shifted exponential,
//   - MS 200  (662 runs) → (shifted) lognormal,
//   - Costas 21 (638 runs) → exponential (x0 ≈ 0 negligible).
func TestPaperFamilySelectionReplication(t *testing.T) {
	aiTruth, _ := dist.NewShiftedExponential(1217, 9.15956e-6)
	msTruth, _ := dist.NewLogNormal(6210, 12.0275, 1.3398)
	costasTruth, _ := dist.NewExponential(5.4e-9)

	cases := []struct {
		name   string
		truth  dist.Dist
		runs   int
		accept map[Family]bool // families we'd accept as "the paper's pick"
	}{
		{"AI700", aiTruth, 720, map[Family]bool{FamShiftedExponential: true, FamExponential: false}},
		{"MS200", msTruth, 662, map[Family]bool{FamLogNormal: true}},
		{"Costas21", costasTruth, 638, map[Family]bool{FamExponential: true, FamShiftedExponential: true}},
	}
	for i, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sample := dist.SampleN(tc.truth, xrand.New(uint64(100+i)), tc.runs)
			best, err := Best(sample, 0.05,
				FamExponential, FamShiftedExponential, FamLogNormal)
			if err != nil {
				t.Fatalf("no family accepted: %v", err)
			}
			if !tc.accept[best.Family] {
				// A shifted lognormal can mimic a shifted exponential at
				// σ≈1 with finite samples; only hard-fail when the paper's
				// family is outright rejected by KS.
				for _, fam := range []Family{FamShiftedExponential, FamLogNormal, FamExponential} {
					if !tc.accept[fam] {
						continue
					}
					results, _ := Auto(sample, fam)
					if results[0].Err == nil && results[0].KS.RejectAt(0.05) {
						t.Errorf("paper family %v rejected (p=%v); selected %v",
							fam, results[0].KS.PValue, best.Family)
					}
				}
				t.Logf("note: selected %v (p=%v) over the paper family", best.Family, best.KS.PValue)
			}
		})
	}
}

// TestCostasNegligibleShiftReplication: the paper's §6.3 decision
// point — for Costas-like samples the observed minimum is negligible
// and the unshifted exponential is used, giving exactly linear
// predicted speed-up.
func TestCostasNegligibleShiftReplication(t *testing.T) {
	truth, _ := dist.NewExponential(5.4e-9)
	sample := dist.SampleN(truth, xrand.New(638), 638)
	if !NegligibleShift(sample) {
		t.Error("Costas-scale sample should have negligible shift")
	}
	d, err := Exponential(sample)
	if err != nil {
		t.Fatal(err)
	}
	if d.Shift != 0 {
		t.Errorf("unshifted fit has x0 = %v", d.Shift)
	}
}
