// Package queens implements the N-Queens problem as a permutation
// CSP: sol[i] is the row of the queen in column i, so rows and
// columns are satisfied by construction and only diagonal conflicts
// cost. It is not one of the paper's three benchmarks, but it is the
// classic cheap Las Vegas workload used by the examples and tests —
// its runtime distribution is near-exponential, so it exercises the
// whole fit→predict pipeline in milliseconds.
//
// Cost model: Σ over both diagonal directions of max(0, count-1); a
// swap touches at most eight diagonal counters, so CostIfSwap is O(1).
package queens

import (
	"fmt"

	"lasvegas/internal/csp"
)

// Problem is an N-Queens instance. Stateful; one solver per instance.
type Problem struct {
	n    int
	main []int // count of queens on each i+sol[i] diagonal
	anti []int // count of queens on each i-sol[i]+n-1 diagonal
}

// New returns an instance with n queens (n ≥ 4; smaller boards have
// no solutions beyond the trivial n=1).
func New(n int) (*Problem, error) {
	if n < 4 {
		return nil, fmt.Errorf("queens: size %d too small", n)
	}
	return &Problem{
		n:    n,
		main: make([]int, 2*n-1),
		anti: make([]int, 2*n-1),
	}, nil
}

// Size implements csp.Problem.
func (p *Problem) Size() int { return p.n }

// Name implements csp.Problem.
func (p *Problem) Name() string { return fmt.Sprintf("queens-%d", p.n) }

// Cost implements csp.Problem by full recomputation.
func (p *Problem) Cost(sol []int) int {
	n := p.n
	main := make([]int, 2*n-1)
	anti := make([]int, 2*n-1)
	for i, r := range sol {
		main[i+r]++
		anti[i-r+n-1]++
	}
	cost := 0
	for k := range main {
		cost += excess(main[k]) + excess(anti[k])
	}
	return cost
}

// InitState implements csp.Incremental.
func (p *Problem) InitState(sol []int) {
	for k := range p.main {
		p.main[k], p.anti[k] = 0, 0
	}
	for i, r := range sol {
		p.main[i+r]++
		p.anti[i-r+p.n-1]++
	}
}

// CostIfSwap implements csp.Incremental.
func (p *Problem) CostIfSwap(sol []int, cost, i, j int) int {
	n := p.n
	adjust := func(arr []int, k, delta int) int {
		c := arr[k]
		arr[k] = c + delta
		return excess(c+delta) - excess(c)
	}
	// Remove both queens, add them back swapped, then roll back.
	keys := [8]struct {
		arr   []int
		k     int
		delta int
	}{
		{p.main, i + sol[i], -1},
		{p.anti, i - sol[i] + n - 1, -1},
		{p.main, j + sol[j], -1},
		{p.anti, j - sol[j] + n - 1, -1},
		{p.main, i + sol[j], +1},
		{p.anti, i - sol[j] + n - 1, +1},
		{p.main, j + sol[i], +1},
		{p.anti, j - sol[i] + n - 1, +1},
	}
	for _, c := range keys {
		cost += adjust(c.arr, c.k, c.delta)
	}
	for _, c := range keys {
		c.arr[c.k] -= c.delta
	}
	return cost
}

// ExecutedSwap implements csp.Incremental (sol already swapped).
func (p *Problem) ExecutedSwap(sol []int, i, j int) {
	n := p.n
	// Pre-swap rows: sol[i] and sol[j] are already exchanged.
	oldRi, oldRj := sol[j], sol[i]
	p.main[i+oldRi]--
	p.anti[i-oldRi+n-1]--
	p.main[j+oldRj]--
	p.anti[j-oldRj+n-1]--
	p.main[i+sol[i]]++
	p.anti[i-sol[i]+n-1]++
	p.main[j+sol[j]]++
	p.anti[j-sol[j]+n-1]++
}

// CostOnVariable implements csp.VariableCost.
func (p *Problem) CostOnVariable(sol []int, i int) int {
	n := p.n
	e := 0
	if c := p.main[i+sol[i]]; c > 1 {
		e += c - 1
	}
	if c := p.anti[i-sol[i]+n-1]; c > 1 {
		e += c - 1
	}
	return e
}

// IsSolution reports whether sol places n non-attacking queens.
func (p *Problem) IsSolution(sol []int) bool {
	return csp.Validate(p, sol) && p.Cost(sol) == 0
}

func excess(c int) int {
	if c > 1 {
		return c - 1
	}
	return 0
}
