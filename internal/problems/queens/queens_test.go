package queens

import (
	"testing"
	"testing/quick"

	"lasvegas/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(3); err == nil {
		t.Error("size 3 accepted")
	}
	p, err := New(8)
	if err != nil || p.Size() != 8 || p.Name() != "queens-8" {
		t.Fatalf("New(8): %+v, %v", p, err)
	}
}

func TestKnownSolutionsAndConflicts(t *testing.T) {
	p, _ := New(8)
	if c := p.Cost([]int{0, 4, 7, 5, 2, 6, 1, 3}); c != 0 {
		t.Errorf("known solution cost %d", c)
	}
	// Identity: all on the same anti-diagonal difference (i - i = 0) →
	// 7 excess conflicts.
	if c := p.Cost([]int{0, 1, 2, 3, 4, 5, 6, 7}); c != 7 {
		t.Errorf("identity cost %d, want 7", c)
	}
	// Reverse permutation: all on the same main diagonal (i + (7-i) = 7).
	if c := p.Cost([]int{7, 6, 5, 4, 3, 2, 1, 0}); c != 7 {
		t.Errorf("reverse cost %d, want 7", c)
	}
}

func TestCostIfSwapSharedDiagonals(t *testing.T) {
	// Swaps where old and new diagonals overlap are the delicate case;
	// sweep all pairs on a small board against full recomputation.
	p, _ := New(6)
	r := xrand.New(31)
	sol := r.Perm(6)
	p.InitState(sol)
	cost := p.Cost(sol)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			probe := p.CostIfSwap(sol, cost, i, j)
			sol[i], sol[j] = sol[j], sol[i]
			if want := p.Cost(sol); probe != want {
				t.Fatalf("swap (%d,%d): probe %d, want %d", i, j, probe, want)
			}
			sol[i], sol[j] = sol[j], sol[i]
		}
	}
}

func TestCostOnVariable(t *testing.T) {
	p, _ := New(5)
	sol := []int{0, 1, 2, 3, 4} // all on difference-0 anti-diagonal
	p.InitState(sol)
	for i := range sol {
		if e := p.CostOnVariable(sol, i); e != 4 {
			t.Errorf("variable %d error %d, want 4", i, e)
		}
	}
}

func TestIncrementalPropertyRandomWalk(t *testing.T) {
	p, _ := New(20)
	r := xrand.New(37)
	sol := r.Perm(20)
	p.InitState(sol)
	cost := p.Cost(sol)
	f := func(a, b uint8) bool {
		i, j := int(a)%20, int(b)%20
		if i == j {
			return true
		}
		probe := p.CostIfSwap(sol, cost, i, j)
		sol[i], sol[j] = sol[j], sol[i]
		ok := probe == p.Cost(sol)
		p.ExecutedSwap(sol, i, j)
		cost = probe
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIsSolution(t *testing.T) {
	p, _ := New(8)
	if !p.IsSolution([]int{0, 4, 7, 5, 2, 6, 1, 3}) {
		t.Error("valid solution rejected")
	}
	if p.IsSolution([]int{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Error("conflicting placement accepted")
	}
	if p.IsSolution([]int{0, 0, 0, 0, 0, 0, 0, 0}) {
		t.Error("non-permutation accepted")
	}
}
