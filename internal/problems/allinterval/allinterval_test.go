package allinterval

import (
	"testing"
	"testing/quick"

	"lasvegas/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Error("size 2 accepted")
	}
	p, err := New(8)
	if err != nil || p.Size() != 8 || p.Name() != "all-interval-8" {
		t.Fatalf("New(8): %v %v", p, err)
	}
}

func TestCostOfKnownConfigurations(t *testing.T) {
	p, _ := New(8)
	// Paper's solution.
	if c := p.Cost([]int{3, 6, 0, 7, 2, 4, 5, 1}); c != 0 {
		t.Errorf("solution cost %d", c)
	}
	// Identity: distances all 1 → 7 ones → 6 excess.
	if c := p.Cost([]int{0, 1, 2, 3, 4, 5, 6, 7}); c != 6 {
		t.Errorf("identity cost %d, want 6", c)
	}
	// Zig-zag 0,7,1,6,2,5,3,4: distances 7,6,5,4,3,2,1 → solution.
	if c := p.Cost([]int{0, 7, 1, 6, 2, 5, 3, 4}); c != 0 {
		t.Errorf("zig-zag cost %d, want 0", c)
	}
}

func TestCostIfSwapAdjacentPositions(t *testing.T) {
	// Swapping adjacent positions shares a middle pair — the trickiest
	// dedup case for pairsAround.
	p, _ := New(10)
	r := xrand.New(3)
	sol := r.Perm(10)
	p.InitState(sol)
	cost := p.Cost(sol)
	for i := 0; i+1 < 10; i++ {
		probe := p.CostIfSwap(sol, cost, i, i+1)
		sol[i], sol[i+1] = sol[i+1], sol[i]
		if want := p.Cost(sol); probe != want {
			t.Fatalf("adjacent swap (%d,%d): probe %d, want %d", i, i+1, probe, want)
		}
		sol[i], sol[i+1] = sol[i+1], sol[i] // restore
	}
}

func TestCostIfSwapEndpoints(t *testing.T) {
	p, _ := New(12)
	r := xrand.New(5)
	sol := r.Perm(12)
	p.InitState(sol)
	cost := p.Cost(sol)
	for _, pair := range [][2]int{{0, 11}, {0, 1}, {10, 11}, {0, 5}, {5, 11}} {
		i, j := pair[0], pair[1]
		probe := p.CostIfSwap(sol, cost, i, j)
		sol[i], sol[j] = sol[j], sol[i]
		if want := p.Cost(sol); probe != want {
			t.Fatalf("swap (%d,%d): probe %d, want %d", i, j, probe, want)
		}
		sol[i], sol[j] = sol[j], sol[i]
	}
}

func TestCostOnVariableSumsOverAdjacentPairs(t *testing.T) {
	p, _ := New(6)
	sol := []int{0, 1, 2, 3, 4, 5} // all distances 1
	p.InitState(sol)
	// count[1] = 5 → every interior variable sees 2·(5-1)=8, endpoints 4.
	if e := p.CostOnVariable(sol, 0); e != 4 {
		t.Errorf("endpoint error %d, want 4", e)
	}
	if e := p.CostOnVariable(sol, 3); e != 8 {
		t.Errorf("interior error %d, want 8", e)
	}
}

func TestIsSolutionRejectsNonPermutation(t *testing.T) {
	p, _ := New(8)
	if p.IsSolution([]int{0, 0, 1, 2, 3, 4, 5, 6}) {
		t.Error("duplicate values accepted")
	}
}

func TestIncrementalPropertyRandomWalk(t *testing.T) {
	p, _ := New(15)
	r := xrand.New(11)
	sol := r.Perm(15)
	p.InitState(sol)
	cost := p.Cost(sol)
	f := func(a, b uint8) bool {
		i, j := int(a)%15, int(b)%15
		if i == j {
			return true
		}
		probe := p.CostIfSwap(sol, cost, i, j)
		sol[i], sol[j] = sol[j], sol[i]
		ok := probe == p.Cost(sol)
		p.ExecutedSwap(sol, i, j)
		cost = probe
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
