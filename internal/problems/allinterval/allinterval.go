// Package allinterval implements CSPLib prob007, the ALL-INTERVAL
// series problem (§5.1 of the paper): find a permutation
// (X₁..X_N) of {0..N-1} such that the absolute differences of
// consecutive elements are pairwise distinct (hence a permutation of
// {1..N-1}).
//
// Cost model: for each distance d, every occurrence beyond the first
// is one error; the total cost is Σ_d max(0, count(d)-1), which is 0
// exactly on solutions. A swap touches at most four consecutive-pair
// distances, so CostIfSwap runs in O(1).
package allinterval

import (
	"fmt"

	"lasvegas/internal/csp"
)

// Problem is an ALL-INTERVAL instance. Create with New; a Problem is
// stateful (distance counts) and must not be shared across solvers.
type Problem struct {
	n     int
	count []int // count[d] = occurrences of distance d in the series
}

// New returns an instance with n notes (n ≥ 3).
func New(n int) (*Problem, error) {
	if n < 3 {
		return nil, fmt.Errorf("allinterval: size %d too small", n)
	}
	return &Problem{n: n, count: make([]int, n)}, nil
}

// Size implements csp.Problem.
func (p *Problem) Size() int { return p.n }

// Name implements csp.Problem.
func (p *Problem) Name() string { return fmt.Sprintf("all-interval-%d", p.n) }

// Cost implements csp.Problem by full recomputation (also used by
// tests to validate the incremental path).
func (p *Problem) Cost(sol []int) int {
	count := make([]int, p.n)
	for i := 0; i+1 < p.n; i++ {
		count[abs(sol[i]-sol[i+1])]++
	}
	cost := 0
	for _, c := range count {
		cost += excess(c)
	}
	return cost
}

// InitState implements csp.Incremental.
func (p *Problem) InitState(sol []int) {
	for d := range p.count {
		p.count[d] = 0
	}
	for i := 0; i+1 < p.n; i++ {
		p.count[abs(sol[i]-sol[i+1])]++
	}
}

// pairsAround returns the consecutive-pair left indices affected by
// changing positions i and j, deduplicated, in buf.
func (p *Problem) pairsAround(i, j int, buf []int) []int {
	buf = buf[:0]
	add := func(q int) {
		if q < 0 || q+1 >= p.n {
			return
		}
		for _, have := range buf {
			if have == q {
				return
			}
		}
		buf = append(buf, q)
	}
	add(i - 1)
	add(i)
	add(j - 1)
	add(j)
	return buf
}

// CostIfSwap implements csp.Incremental.
func (p *Problem) CostIfSwap(sol []int, cost, i, j int) int {
	var pairBuf [4]int
	pairs := p.pairsAround(i, j, pairBuf[:])
	val := func(q int) int {
		switch q {
		case i:
			return sol[j]
		case j:
			return sol[i]
		}
		return sol[q]
	}
	// Apply removals and additions against the count array, tracking
	// the cost delta, then roll back.
	type change struct{ d, delta int }
	var log [8]change
	k := 0
	apply := func(d, delta int) {
		c := p.count[d]
		cost -= excess(c)
		p.count[d] = c + delta
		cost += excess(c + delta)
		log[k] = change{d, delta}
		k++
	}
	for _, q := range pairs {
		apply(abs(sol[q]-sol[q+1]), -1)
	}
	for _, q := range pairs {
		apply(abs(val(q)-val(q+1)), +1)
	}
	for k--; k >= 0; k-- {
		p.count[log[k].d] -= log[k].delta
	}
	return cost
}

// ExecutedSwap implements csp.Incremental; sol already contains the
// swap, so the pre-swap distances are recovered by re-exchanging i, j.
func (p *Problem) ExecutedSwap(sol []int, i, j int) {
	var pairBuf [4]int
	pairs := p.pairsAround(i, j, pairBuf[:])
	old := func(q int) int {
		switch q {
		case i:
			return sol[j]
		case j:
			return sol[i]
		}
		return sol[q]
	}
	for _, q := range pairs {
		p.count[abs(old(q)-old(q+1))]--
	}
	for _, q := range pairs {
		p.count[abs(sol[q]-sol[q+1])]++
	}
}

// CostOnVariable implements csp.VariableCost: a position inherits one
// error for each duplicated distance it participates in.
func (p *Problem) CostOnVariable(sol []int, i int) int {
	e := 0
	if i > 0 {
		if c := p.count[abs(sol[i-1]-sol[i])]; c > 1 {
			e += c - 1
		}
	}
	if i+1 < p.n {
		if c := p.count[abs(sol[i]-sol[i+1])]; c > 1 {
			e += c - 1
		}
	}
	return e
}

// IsSolution reports whether sol is a valid ALL-INTERVAL series.
func (p *Problem) IsSolution(sol []int) bool {
	return csp.Validate(p, sol) && p.Cost(sol) == 0
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func excess(c int) int {
	if c > 1 {
		return c - 1
	}
	return 0
}
