package problems

import (
	"testing"

	"lasvegas/internal/problems/allinterval"
	"lasvegas/internal/problems/costas"
	"lasvegas/internal/problems/magicsquare"
	"lasvegas/internal/problems/queens"
)

// Known solutions taken from the paper itself and from the classical
// literature, pinning the cost functions to the real constraints.

func TestPaperAllIntervalSolution(t *testing.T) {
	// §5.1: (3, 6, 0, 7, 2, 4, 5, 1) is a solution for N = 8.
	p, err := allinterval.New(8)
	if err != nil {
		t.Fatal(err)
	}
	sol := []int{3, 6, 0, 7, 2, 4, 5, 1}
	if c := p.Cost(sol); c != 0 {
		t.Errorf("paper's AI solution has cost %d", c)
	}
	if !p.IsSolution(sol) {
		t.Error("paper's AI solution rejected")
	}
	// Breaking it must cost something.
	bad := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if c := p.Cost(bad); c != 6 {
		// identity: all distances are 1 → seven 1s → excess 6
		t.Errorf("identity AI cost %d, want 6", c)
	}
}

func TestDurerMagicSquare(t *testing.T) {
	// §5.2 shows Dürer's 4×4 square (Melencolia I, 1514):
	//   16  3  2 13
	//    5 10 11  8
	//    9  6  7 12
	//    4 15 14  1
	p, err := magicsquare.New(4)
	if err != nil {
		t.Fatal(err)
	}
	values := []int{16, 3, 2, 13, 5, 10, 11, 8, 9, 6, 7, 12, 4, 15, 14, 1}
	sol := make([]int, len(values))
	for i, v := range values {
		sol[i] = v - 1 // configuration stores value-1
	}
	if p.Magic() != 34 {
		t.Errorf("magic constant %d, want 34", p.Magic())
	}
	if c := p.Cost(sol); c != 0 {
		t.Errorf("Dürer square has cost %d", c)
	}
	if !p.IsSolution(sol) {
		t.Error("Dürer square rejected")
	}
	// Swapping two cells in different rows/cols must break it.
	sol[0], sol[5] = sol[5], sol[0]
	if p.Cost(sol) == 0 {
		t.Error("corrupted square still accepted")
	}
}

func TestPaperCostasSolution(t *testing.T) {
	// §5.3: the example Costas array of size 5 is [3, 4, 2, 1, 5]
	// (1-based rows); 0-based: [2, 3, 1, 0, 4].
	p, err := costas.New(5)
	if err != nil {
		t.Fatal(err)
	}
	sol := []int{2, 3, 1, 0, 4}
	if c := p.Cost(sol); c != 0 {
		t.Errorf("paper's Costas array has cost %d", c)
	}
	if !p.IsSolution(sol) {
		t.Error("paper's Costas array rejected")
	}
	// The identity permutation has maximally repeated differences.
	identity := []int{0, 1, 2, 3, 4}
	if p.Cost(identity) == 0 {
		t.Error("identity accepted as Costas array")
	}
}

func TestCostasKnownCounts(t *testing.T) {
	// All 4! = 24 permutations of order 4: the number of Costas arrays
	// of order 4 is 12 (classical enumeration result).
	p, _ := costas.New(4)
	perm := []int{0, 1, 2, 3}
	count := 0
	var rec func(k int)
	rec = func(k int) {
		if k == 4 {
			if p.Cost(perm) == 0 {
				count++
			}
			return
		}
		for i := k; i < 4; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if count != 12 {
		t.Errorf("found %d Costas arrays of order 4, want 12", count)
	}
}

func TestQueensKnownSolution(t *testing.T) {
	p, err := queens.New(8)
	if err != nil {
		t.Fatal(err)
	}
	// A classical 8-queens solution.
	sol := []int{0, 4, 7, 5, 2, 6, 1, 3}
	if c := p.Cost(sol); c != 0 {
		t.Errorf("known 8-queens solution has cost %d", c)
	}
	// All queens on one diagonal: n-1 excess conflicts on the main
	// direction. (Identity permutation: every queen on the same
	// anti-diagonal? No — identity puts them all on distinct main
	// diagonals i+i and one shared difference diagonal i-i=0.)
	identity := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if c := p.Cost(identity); c != 7 {
		t.Errorf("identity queens cost %d, want 7", c)
	}
}

func TestQueensCountForN6(t *testing.T) {
	// N=6 has exactly 4 solutions (classical result).
	p, _ := queens.New(6)
	perm := []int{0, 1, 2, 3, 4, 5}
	count := 0
	var rec func(k int)
	rec = func(k int) {
		if k == 6 {
			if p.Cost(perm) == 0 {
				count++
			}
			return
		}
		for i := k; i < 6; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if count != 4 {
		t.Errorf("found %d 6-queens solutions, want 4", count)
	}
}

func TestAllIntervalDistancesOfSolutionAreDistinct(t *testing.T) {
	p, _ := allinterval.New(8)
	sol := []int{3, 6, 0, 7, 2, 4, 5, 1}
	if !p.IsSolution(sol) {
		t.Fatal("precondition failed")
	}
	seen := map[int]bool{}
	for i := 0; i+1 < len(sol); i++ {
		d := sol[i] - sol[i+1]
		if d < 0 {
			d = -d
		}
		if seen[d] {
			t.Fatalf("distance %d repeated", d)
		}
		seen[d] = true
	}
}
