package costas

import (
	"testing"
	"testing/quick"

	"lasvegas/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Error("order 2 accepted")
	}
	p, err := New(5)
	if err != nil || p.Size() != 5 || p.Name() != "costas-5" {
		t.Fatalf("New(5): %+v, %v", p, err)
	}
}

func TestPaperExample(t *testing.T) {
	// Paper §5.3 example, 0-based: [2, 3, 1, 0, 4].
	p, _ := New(5)
	if c := p.Cost([]int{2, 3, 1, 0, 4}); c != 0 {
		t.Errorf("paper example cost %d", c)
	}
}

func TestWelchConstruction(t *testing.T) {
	// Welch construction: for prime p=7 with primitive root 3, the
	// sequence 3^i mod 7 (i=1..6) = 3,2,6,4,5,1 is a Costas array of
	// order 6 (1-based rows). 0-based: 2,1,5,3,4,0.
	p, _ := New(6)
	if c := p.Cost([]int{2, 1, 5, 3, 4, 0}); c != 0 {
		t.Errorf("Welch construction cost %d, want 0", c)
	}
}

func TestIdentityHasMaximalRepeats(t *testing.T) {
	// Identity of order n: every distance-d difference equals d, so
	// each d contributes (n-d-1) excess; total Σ_{d=1..n-1}(n-d-1) =
	// (n-1)(n-2)/2.
	for _, n := range []int{4, 6, 9} {
		p, _ := New(n)
		sol := make([]int, n)
		for i := range sol {
			sol[i] = i
		}
		want := (n - 1) * (n - 2) / 2
		if c := p.Cost(sol); c != want {
			t.Errorf("order %d identity cost %d, want %d", n, c, want)
		}
	}
}

func TestCostIfSwapDistanceOnePositions(t *testing.T) {
	// Adjacent columns share difference pairs at every distance — the
	// hardest dedup case in forEachAffectedPair.
	p, _ := New(9)
	r := xrand.New(21)
	sol := r.Perm(9)
	p.InitState(sol)
	cost := p.Cost(sol)
	for i := 0; i+1 < 9; i++ {
		probe := p.CostIfSwap(sol, cost, i, i+1)
		sol[i], sol[i+1] = sol[i+1], sol[i]
		if want := p.Cost(sol); probe != want {
			t.Fatalf("adjacent swap (%d,%d): probe %d, want %d", i, i+1, probe, want)
		}
		sol[i], sol[i+1] = sol[i+1], sol[i]
	}
}

func TestCostIfSwapSymmetric(t *testing.T) {
	p, _ := New(8)
	r := xrand.New(23)
	sol := r.Perm(8)
	p.InitState(sol)
	cost := p.Cost(sol)
	for trial := 0; trial < 50; trial++ {
		i, j := r.Intn(8), r.Intn(8)
		if i == j {
			continue
		}
		if p.CostIfSwap(sol, cost, i, j) != p.CostIfSwap(sol, cost, j, i) {
			t.Fatalf("CostIfSwap not symmetric in (i,j)")
		}
	}
}

func TestCostOnVariableZeroOnSolution(t *testing.T) {
	p, _ := New(5)
	sol := []int{2, 3, 1, 0, 4}
	p.InitState(sol)
	for i := range sol {
		if e := p.CostOnVariable(sol, i); e != 0 {
			t.Errorf("solved state: variable %d error %d", i, e)
		}
	}
}

func TestIncrementalPropertyRandomWalk(t *testing.T) {
	p, _ := New(11)
	r := xrand.New(29)
	sol := r.Perm(11)
	p.InitState(sol)
	cost := p.Cost(sol)
	f := func(a, b uint8) bool {
		i, j := int(a)%11, int(b)%11
		if i == j {
			return true
		}
		probe := p.CostIfSwap(sol, cost, i, j)
		sol[i], sol[j] = sol[j], sol[i]
		ok := probe == p.Cost(sol)
		p.ExecutedSwap(sol, i, j)
		cost = probe
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
