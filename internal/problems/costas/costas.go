// Package costas implements the COSTAS ARRAY problem (§5.3 of the
// paper): an N×N grid with one mark per row and column such that the
// N(N-1)/2 displacement vectors between marks are pairwise distinct.
// Viewing the marks as a permutation sol (column i holds a mark at
// row sol[i]), the condition is that for every row distance d, the
// differences sol[i+d] - sol[i] are pairwise distinct.
//
// Cost model: Σ_{d,v} max(0, count_d(v)-1) — the number of repeated
// difference vectors. A swap of columns i and j touches O(N) of the
// difference triangle, so CostIfSwap runs in O(N) versus O(N²) for a
// full recomputation.
package costas

import (
	"fmt"

	"lasvegas/internal/csp"
)

// Problem is a COSTAS ARRAY instance. Stateful; one solver per
// instance.
type Problem struct {
	n int
	// count[d-1][v+n-1] = occurrences of difference v at row distance d
	count [][]int
	// undo log reused by CostIfSwap probes
	log []change
}

type change struct{ d, v int }

// New returns an instance of order n (n ≥ 3).
func New(n int) (*Problem, error) {
	if n < 3 {
		return nil, fmt.Errorf("costas: order %d too small", n)
	}
	cnt := make([][]int, n-1)
	for d := range cnt {
		cnt[d] = make([]int, 2*n-1)
	}
	return &Problem{n: n, count: cnt, log: make([]change, 0, 8*n)}, nil
}

// Size implements csp.Problem.
func (p *Problem) Size() int { return p.n }

// Name implements csp.Problem.
func (p *Problem) Name() string { return fmt.Sprintf("costas-%d", p.n) }

// Cost implements csp.Problem by recomputing the full difference
// triangle (O(N²)).
func (p *Problem) Cost(sol []int) int {
	n := p.n
	cost := 0
	count := make([]int, 2*n-1)
	for d := 1; d < n; d++ {
		for i := range count {
			count[i] = 0
		}
		for i := 0; i+d < n; i++ {
			v := sol[i+d] - sol[i] + n - 1
			count[v]++
			if count[v] > 1 {
				cost++
			}
		}
	}
	return cost
}

// InitState implements csp.Incremental.
func (p *Problem) InitState(sol []int) {
	n := p.n
	for d := 1; d < n; d++ {
		row := p.count[d-1]
		for i := range row {
			row[i] = 0
		}
		for i := 0; i+d < n; i++ {
			row[sol[i+d]-sol[i]+n-1]++
		}
	}
}

// forEachAffectedPair visits the left endpoints of difference pairs
// involving column i or column j, once each, for every distance d.
func (p *Problem) forEachAffectedPair(i, j int, visit func(d, left int)) {
	n := p.n
	for d := 1; d < n; d++ {
		// candidate left endpoints: i-d, i, j-d, j (deduplicated)
		c0, c1, c2, c3 := i-d, i, j-d, j
		if c1 > n-1-d {
			c1 = -1
		}
		if c3 > n-1-d {
			c3 = -1
		}
		if c2 == c0 || c2 == c1 {
			c2 = -1
		}
		if c3 == c0 || c3 == c1 || c3 == c2 {
			c3 = -1
		}
		if c0 >= 0 && c0 <= n-1-d {
			visit(d, c0)
		}
		if c1 >= 0 {
			visit(d, c1)
		}
		if c2 >= 0 && c2 <= n-1-d {
			visit(d, c2)
		}
		if c3 >= 0 {
			visit(d, c3)
		}
	}
}

// CostIfSwap implements csp.Incremental: remove affected differences,
// add their post-swap values, read the cost delta, roll back.
func (p *Problem) CostIfSwap(sol []int, cost, i, j int) int {
	n := p.n
	val := func(q int) int {
		switch q {
		case i:
			return sol[j]
		case j:
			return sol[i]
		}
		return sol[q]
	}
	p.log = p.log[:0]
	remove := func(d, v int) {
		row := p.count[d-1]
		row[v]--
		if row[v] >= 1 {
			cost--
		}
		p.log = append(p.log, change{d, v})
	}
	p.forEachAffectedPair(i, j, func(d, left int) {
		remove(d, sol[left+d]-sol[left]+n-1)
	})
	mark := len(p.log)
	add := func(d, v int) {
		row := p.count[d-1]
		row[v]++
		if row[v] > 1 {
			cost++
		}
		p.log = append(p.log, change{d, v})
	}
	p.forEachAffectedPair(i, j, func(d, left int) {
		add(d, val(left+d)-val(left)+n-1)
	})
	// Roll back: additions first, then removals.
	for k := len(p.log) - 1; k >= mark; k-- {
		p.count[p.log[k].d-1][p.log[k].v]--
	}
	for k := mark - 1; k >= 0; k-- {
		p.count[p.log[k].d-1][p.log[k].v]++
	}
	return cost
}

// ExecutedSwap implements csp.Incremental (sol already swapped).
func (p *Problem) ExecutedSwap(sol []int, i, j int) {
	n := p.n
	old := func(q int) int {
		switch q {
		case i:
			return sol[j]
		case j:
			return sol[i]
		}
		return sol[q]
	}
	p.forEachAffectedPair(i, j, func(d, left int) {
		p.count[d-1][old(left+d)-old(left)+n-1]--
	})
	p.forEachAffectedPair(i, j, func(d, left int) {
		p.count[d-1][sol[left+d]-sol[left]+n-1]++
	})
}

// CostOnVariable implements csp.VariableCost: column i inherits one
// error for each duplicated difference vector it participates in.
func (p *Problem) CostOnVariable(sol []int, i int) int {
	n := p.n
	e := 0
	for d := 1; d < n; d++ {
		if i+d < n {
			if c := p.count[d-1][sol[i+d]-sol[i]+n-1]; c > 1 {
				e += c - 1
			}
		}
		if i-d >= 0 {
			if c := p.count[d-1][sol[i]-sol[i-d]+n-1]; c > 1 {
				e += c - 1
			}
		}
	}
	return e
}

// IsSolution reports whether sol is a Costas array.
func (p *Problem) IsSolution(sol []int) bool {
	return csp.Validate(p, sol) && p.Cost(sol) == 0
}
