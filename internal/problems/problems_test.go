package problems

import (
	"testing"

	"lasvegas/internal/csp"
	"lasvegas/internal/xrand"
)

// TestIncrementalMatchesFullCost is the central property test of the
// problem layer: for every family, CostIfSwap and ExecutedSwap must
// stay consistent with the from-scratch Cost under random swap
// sequences.
func TestIncrementalMatchesFullCost(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			size := DefaultSize(kind)
			if kind == MagicSquare {
				size = 5
			}
			p, err := New(kind, size)
			if err != nil {
				t.Fatal(err)
			}
			inc, ok := p.(csp.Incremental)
			if !ok {
				t.Fatalf("%s does not implement csp.Incremental", kind)
			}
			r := xrand.New(2024)
			sol := r.Perm(p.Size())
			inc.InitState(sol)
			cost := p.Cost(sol)
			for step := 0; step < 500; step++ {
				i, j := r.Intn(len(sol)), r.Intn(len(sol))
				if i == j {
					continue
				}
				probe := inc.CostIfSwap(sol, cost, i, j)
				// Probing must not corrupt state: a re-probe agrees.
				if again := inc.CostIfSwap(sol, cost, i, j); again != probe {
					t.Fatalf("step %d: CostIfSwap not idempotent: %d then %d", step, probe, again)
				}
				sol[i], sol[j] = sol[j], sol[i]
				want := p.Cost(sol)
				if probe != want {
					t.Fatalf("step %d (i=%d j=%d): CostIfSwap=%d, full recompute=%d", step, i, j, probe, want)
				}
				inc.ExecutedSwap(sol, i, j)
				cost = probe
			}
		})
	}
}

// TestCostOnVariableNonNegative checks the error projection is
// non-negative everywhere and zero everywhere on a solved state.
func TestCostOnVariableNonNegative(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			p, err := New(kind, DefaultSize(kind))
			if err != nil {
				t.Fatal(err)
			}
			vc, ok := p.(csp.VariableCost)
			if !ok {
				t.Fatalf("%s does not implement csp.VariableCost", kind)
			}
			inc := p.(csp.Incremental)
			r := xrand.New(7)
			sol := r.Perm(p.Size())
			inc.InitState(sol)
			for i := range sol {
				if e := vc.CostOnVariable(sol, i); e < 0 {
					t.Errorf("variable %d has negative error %d", i, e)
				}
			}
		})
	}
}

func TestNewValidation(t *testing.T) {
	for _, kind := range Kinds() {
		if _, err := New(kind, 1); err == nil {
			t.Errorf("%s accepted size 1", kind)
		}
	}
	if _, err := New(Kind("nonsense"), 10); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestPaperSizes(t *testing.T) {
	cases := map[Kind]int{AllInterval: 700, MagicSquare: 200, Costas: 21}
	for kind, want := range cases {
		got, ok := PaperSize(kind)
		if !ok || got != want {
			t.Errorf("PaperSize(%s) = %d, %v", kind, got, ok)
		}
	}
	if _, ok := PaperSize(Queens); ok {
		t.Error("queens is not a paper benchmark")
	}
}

func TestNamesAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, kind := range Kinds() {
		p, err := New(kind, DefaultSize(kind))
		if err != nil {
			t.Fatal(err)
		}
		name := p.Name()
		if name == "" || seen[name] {
			t.Errorf("bad or duplicate name %q", name)
		}
		seen[name] = true
	}
}

func TestValidate(t *testing.T) {
	p, _ := New(Queens, 8)
	if !csp.Validate(p, []int{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Error("identity permutation rejected")
	}
	if csp.Validate(p, []int{0, 1, 2, 3, 4, 5, 6, 6}) {
		t.Error("repeated value accepted")
	}
	if csp.Validate(p, []int{0, 1, 2}) {
		t.Error("short configuration accepted")
	}
}
