// Package magicsquare implements CSPLib prob019, the MAGIC-SQUARE
// problem (§5.2 of the paper): place {1..N²} on an N×N board so that
// every row, column and both main diagonals sum to the magic constant
// M = N(N²+1)/2.
//
// A configuration is a permutation of {0..N²-1}; cell p holds value
// sol[p]+1 at row p/N, column p%N. The cost is the L1 deviation of
// all 2N+2 line sums from M, and a swap touches at most two rows, two
// columns and the two diagonals, so CostIfSwap runs in O(1).
package magicsquare

import (
	"fmt"

	"lasvegas/internal/csp"
)

// Problem is a MAGIC-SQUARE instance of side N. Stateful; one solver
// per instance.
type Problem struct {
	n     int // side
	magic int // N(N²+1)/2
	row   []int
	col   []int
	diag  int // main diagonal sum
	anti  int // anti-diagonal sum
}

// New returns an N×N instance (N ≥ 3; N = 2 has no magic square).
func New(n int) (*Problem, error) {
	if n < 3 {
		return nil, fmt.Errorf("magicsquare: side %d too small", n)
	}
	return &Problem{
		n:     n,
		magic: n * (n*n + 1) / 2,
		row:   make([]int, n),
		col:   make([]int, n),
	}, nil
}

// Size implements csp.Problem: N² variables.
func (p *Problem) Size() int { return p.n * p.n }

// Side returns N.
func (p *Problem) Side() int { return p.n }

// Magic returns the magic constant M.
func (p *Problem) Magic() int { return p.magic }

// Name implements csp.Problem.
func (p *Problem) Name() string { return fmt.Sprintf("magic-square-%d", p.n) }

// Cost implements csp.Problem by full recomputation.
func (p *Problem) Cost(sol []int) int {
	n := p.n
	row := make([]int, n)
	col := make([]int, n)
	diag, anti := 0, 0
	for pos, v := range sol {
		r, c := pos/n, pos%n
		row[r] += v + 1
		col[c] += v + 1
		if r == c {
			diag += v + 1
		}
		if r+c == n-1 {
			anti += v + 1
		}
	}
	cost := abs(diag-p.magic) + abs(anti-p.magic)
	for i := 0; i < n; i++ {
		cost += abs(row[i]-p.magic) + abs(col[i]-p.magic)
	}
	return cost
}

// InitState implements csp.Incremental.
func (p *Problem) InitState(sol []int) {
	n := p.n
	for i := 0; i < n; i++ {
		p.row[i], p.col[i] = 0, 0
	}
	p.diag, p.anti = 0, 0
	for pos, v := range sol {
		r, c := pos/n, pos%n
		p.row[r] += v + 1
		p.col[c] += v + 1
		if r == c {
			p.diag += v + 1
		}
		if r+c == n-1 {
			p.anti += v + 1
		}
	}
}

// lineDelta returns the cost change of one line sum moving by delta.
func (p *Problem) lineDelta(sum, delta int) int {
	return abs(sum+delta-p.magic) - abs(sum-p.magic)
}

// CostIfSwap implements csp.Incremental.
func (p *Problem) CostIfSwap(sol []int, cost, i, j int) int {
	n := p.n
	ri, ci := i/n, i%n
	rj, cj := j/n, j%n
	di := sol[j] - sol[i] // value change at position i
	if di == 0 {
		return cost
	}
	if ri != rj {
		cost += p.lineDelta(p.row[ri], di) + p.lineDelta(p.row[rj], -di)
	}
	if ci != cj {
		cost += p.lineDelta(p.col[ci], di) + p.lineDelta(p.col[cj], -di)
	}
	dd := 0
	if ri == ci {
		dd += di
	}
	if rj == cj {
		dd -= di
	}
	if dd != 0 {
		cost += p.lineDelta(p.diag, dd)
	}
	da := 0
	if ri+ci == n-1 {
		da += di
	}
	if rj+cj == n-1 {
		da -= di
	}
	if da != 0 {
		cost += p.lineDelta(p.anti, da)
	}
	return cost
}

// ExecutedSwap implements csp.Incremental (sol already swapped).
func (p *Problem) ExecutedSwap(sol []int, i, j int) {
	n := p.n
	ri, ci := i/n, i%n
	rj, cj := j/n, j%n
	di := sol[i] - sol[j] // sol[i] now holds the value that was at j
	p.row[ri] += di
	p.row[rj] -= di
	p.col[ci] += di
	p.col[cj] -= di
	if ri == ci {
		p.diag += di
	}
	if rj == cj {
		p.diag -= di
	}
	if ri+ci == n-1 {
		p.anti += di
	}
	if rj+cj == n-1 {
		p.anti -= di
	}
}

// CostOnVariable implements csp.VariableCost: the deviation of every
// line through the cell.
func (p *Problem) CostOnVariable(sol []int, i int) int {
	n := p.n
	r, c := i/n, i%n
	e := abs(p.row[r]-p.magic) + abs(p.col[c]-p.magic)
	if r == c {
		e += abs(p.diag - p.magic)
	}
	if r+c == n-1 {
		e += abs(p.anti - p.magic)
	}
	return e
}

// IsSolution reports whether sol is a valid magic square.
func (p *Problem) IsSolution(sol []int) bool {
	return csp.Validate(p, sol) && p.Cost(sol) == 0
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
