package magicsquare

import (
	"testing"
	"testing/quick"

	"lasvegas/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Error("side 2 accepted (no 2×2 magic square exists)")
	}
	p, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 16 || p.Side() != 4 || p.Magic() != 34 {
		t.Errorf("size=%d side=%d magic=%d", p.Size(), p.Side(), p.Magic())
	}
}

func TestMagicConstants(t *testing.T) {
	for _, c := range []struct{ n, m int }{{3, 15}, {4, 34}, {5, 65}, {10, 505}, {200, 4000100}} {
		p, err := New(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Magic() != c.m {
			t.Errorf("N=%d magic %d, want %d", c.n, p.Magic(), c.m)
		}
	}
}

func TestLoShuSquare(t *testing.T) {
	// The 3×3 Lo Shu square: 2 7 6 / 9 5 1 / 4 3 8.
	p, _ := New(3)
	values := []int{2, 7, 6, 9, 5, 1, 4, 3, 8}
	sol := make([]int, 9)
	for i, v := range values {
		sol[i] = v - 1
	}
	if c := p.Cost(sol); c != 0 {
		t.Errorf("Lo Shu cost %d", c)
	}
	if !p.IsSolution(sol) {
		t.Error("Lo Shu rejected")
	}
}

func TestCostCountsAllLines(t *testing.T) {
	// Identity layout of N=3: rows sum 6,15,24; cols 12,15,18; diag 15; anti 15.
	// Deviations from 15: 9+0+9 + 3+0+3 + 0 + 0 = 24.
	p, _ := New(3)
	sol := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	if c := p.Cost(sol); c != 24 {
		t.Errorf("identity cost %d, want 24", c)
	}
}

func TestSwapSameRow(t *testing.T) {
	p, _ := New(4)
	r := xrand.New(9)
	sol := r.Perm(16)
	p.InitState(sol)
	cost := p.Cost(sol)
	// positions 0 and 3 share row 0.
	probe := p.CostIfSwap(sol, cost, 0, 3)
	sol[0], sol[3] = sol[3], sol[0]
	if want := p.Cost(sol); probe != want {
		t.Errorf("same-row swap: probe %d, want %d", probe, want)
	}
}

func TestSwapSameColumnAndDiagonal(t *testing.T) {
	p, _ := New(4)
	r := xrand.New(10)
	sol := r.Perm(16)
	p.InitState(sol)
	cost := p.Cost(sol)
	cases := [][2]int{
		{0, 12},  // same column 0
		{0, 5},   // both on main diagonal
		{3, 6},   // both on anti-diagonal
		{0, 15},  // diagonal endpoints
		{12, 15}, // same row, anti/main diagonal cells
	}
	for _, c := range cases {
		i, j := c[0], c[1]
		probe := p.CostIfSwap(sol, cost, i, j)
		sol[i], sol[j] = sol[j], sol[i]
		if want := p.Cost(sol); probe != want {
			t.Fatalf("swap (%d,%d): probe %d, want %d", i, j, probe, want)
		}
		sol[i], sol[j] = sol[j], sol[i]
	}
}

func TestCostOnVariableDiagonalCells(t *testing.T) {
	p, _ := New(3)
	sol := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	p.InitState(sol)
	// Center cell (1,1) is on row 1 (sum 15), col 1 (15), both diagonals (15, 15):
	// all satisfied → zero error despite global cost 24.
	if e := p.CostOnVariable(sol, 4); e != 0 {
		t.Errorf("center error %d, want 0", e)
	}
	// Corner (0,0): row 0 off by 9, col 0 off by 3, diag 0 → 12.
	if e := p.CostOnVariable(sol, 0); e != 12 {
		t.Errorf("corner error %d, want 12", e)
	}
}

func TestIncrementalPropertyRandomWalk(t *testing.T) {
	p, _ := New(5)
	r := xrand.New(17)
	sol := r.Perm(25)
	p.InitState(sol)
	cost := p.Cost(sol)
	f := func(a, b uint8) bool {
		i, j := int(a)%25, int(b)%25
		if i == j {
			return true
		}
		probe := p.CostIfSwap(sol, cost, i, j)
		sol[i], sol[j] = sol[j], sol[i]
		ok := probe == p.Cost(sol)
		p.ExecutedSwap(sol, i, j)
		cost = probe
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
