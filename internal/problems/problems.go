// Package problems is the registry of benchmark problems: the
// paper's three instances (ALL-INTERVAL, MAGIC-SQUARE, COSTAS ARRAY)
// plus N-Queens, constructible by name for the CLIs and the
// experiment harness.
package problems

import (
	"fmt"
	"sort"

	"lasvegas/internal/csp"
	"lasvegas/internal/problems/allinterval"
	"lasvegas/internal/problems/costas"
	"lasvegas/internal/problems/magicsquare"
	"lasvegas/internal/problems/queens"
)

// Kind names a problem family.
type Kind string

// Problem families.
const (
	AllInterval Kind = "all-interval"
	MagicSquare Kind = "magic-square"
	Costas      Kind = "costas"
	Queens      Kind = "queens"
)

// Kinds returns the registered families in stable order.
func Kinds() []Kind {
	ks := []Kind{AllInterval, MagicSquare, Costas, Queens}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// New constructs a fresh instance of the named family. For
// MagicSquare, size is the board side (the number of variables is
// side²), matching the paper's "MS 200" naming.
func New(kind Kind, size int) (csp.Problem, error) {
	switch kind {
	case AllInterval:
		return allinterval.New(size)
	case MagicSquare:
		return magicsquare.New(size)
	case Costas:
		return costas.New(size)
	case Queens:
		return queens.New(size)
	}
	return nil, fmt.Errorf("problems: unknown kind %q", kind)
}

// PaperSize returns the instance size used in the paper's evaluation
// for the given family (AI 700, MS 200, Costas 21), and ok=false for
// families outside the paper.
func PaperSize(kind Kind) (int, bool) {
	switch kind {
	case AllInterval:
		return 700, true
	case MagicSquare:
		return 200, true
	case Costas:
		return 21, true
	}
	return 0, false
}

// DefaultSize returns the scaled-down default used by this
// repository's campaigns so that a full fit→predict→compare cycle
// runs in seconds (see DESIGN.md §3 on substitutions). The sizes are
// chosen so each run costs milliseconds while the iteration counts
// stay large enough (10³–10⁵) to treat as a continuous runtime
// distribution, which the §6 fits require.
func DefaultSize(kind Kind) int {
	switch kind {
	case AllInterval:
		return 16
	case MagicSquare:
		return 6
	case Costas:
		return 13
	case Queens:
		return 30
	}
	return 10
}
