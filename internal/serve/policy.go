package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"

	"lasvegas"
	"lasvegas/internal/store"
)

// policyRowResponse is one ranked strategy on the /v1/policy wire.
// Non-finite numbers cannot ride JSON, so +Inf cutoffs become
// never_restart=true with the cutoff omitted, and +Inf prices/bounds
// are omitted the same way (an absent expected with a present row
// means "this schedule cannot succeed on this law").
type policyRowResponse struct {
	Policy       string   `json:"policy"`
	Cutoff       *float64 `json:"cutoff,omitempty"`
	NeverRestart bool     `json:"never_restart,omitempty"`
	Unit         *float64 `json:"unit,omitempty"`
	Expected     *float64 `json:"expected,omitempty"`
	Simulated    float64  `json:"simulated"`
	SimStdErr    float64  `json:"sim_stderr"`
	CILo         *float64 `json:"ci_lo,omitempty"`
	CIHi         *float64 `json:"ci_hi,omitempty"`
	Gain         float64  `json:"gain"`
}

// policyResponse is the GET /v1/policy body: the ranked policy table
// for one stored campaign.
type policyResponse struct {
	ID        string              `json:"id"`
	Problem   string              `json:"problem"`
	Law       string              `json:"law"`
	Estimator string              `json:"estimator,omitempty"`
	Level     float64             `json:"level"`
	Reps      int                 `json:"reps"`
	Resamples int                 `json:"resamples"`
	Winner    string              `json:"winner"`
	Policies  []policyRowResponse `json:"policies"`
}

// finitePtr renders v for the wire: nil when it cannot ride JSON.
func finitePtr(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// handlePolicy answers GET /v1/policy?id=...: the ranked restart-
// policy table (no-restart / fixed-cutoff / Luby / fitted-optimal)
// for a stored campaign, each row priced in closed form under the
// fitted law and validated by a seeded replay plus a bootstrap CI on
// the campaign's own plug-in law. Owner-routed like every read; the
// rendered body caches on the entry (single-flight), so one campaign
// costs one table per replica — and the fit it builds on flows
// through the same cross-process single-flight /v1/fit uses.
func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		s.writeError(w, errors.New("serve: policy: missing id parameter"))
		return
	}
	owners := store.Owners(id, s.replicas, s.repl)
	if !ownedBy(owners, s.self) {
		s.forwardRead(w, r, owners, nil)
		return
	}
	e, err := s.getOrRepair(r.Context(), id, owners)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.quorumRead(r.Context(), e, owners); err != nil {
		s.writeError(w, err)
		return
	}
	v, computed, err := e.Policy(func() (any, error) {
		return s.computePolicy(r.Context(), e)
	})
	if err != nil {
		s.met.policyComputes.With("error").Inc()
		s.writeError(w, err)
		return
	}
	if computed {
		s.met.policyComputes.With("computed").Inc()
	} else {
		s.met.policyComputes.With("cached").Inc()
	}
	body := v.([]byte)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// computePolicy renders the policy table body for an entry. Like
// predict, the table is computed where the model lives (models do not
// round-trip the wire); the fit underneath is single-flight per
// process and shared across replicas, and the rendered bytes cache on
// the entry, so the marginal cost of the table itself is paid once.
// The replay and bootstrap claim a gate slot — they are the same
// order of work as a fit and must not stampede past the worker bound.
func (s *Server) computePolicy(ctx context.Context, e *store.Entry) ([]byte, error) {
	_, model, err := s.fit(ctx, e)
	if err != nil && !errors.Is(err, lasvegas.ErrNoAcceptableFit) {
		return nil, err
	}
	if err := s.gate.Acquire(ctx); err != nil {
		return nil, err
	}
	defer s.gate.Release()
	// model == nil (no family accepted) makes PolicyTable fall back
	// to the plug-in law internally.
	table, err := s.pred.PolicyTable(ctx, e.Campaign, model)
	if err != nil {
		return nil, err
	}
	resp := policyResponse{
		ID:        e.ID,
		Problem:   e.Campaign.Problem,
		Law:       table.Law,
		Estimator: table.Estimator,
		Level:     table.Level,
		Reps:      table.Reps,
		Resamples: table.Resamples,
		Winner:    table.Winner,
	}
	for _, row := range table.Rows {
		rr := policyRowResponse{
			Policy:    row.Policy,
			Expected:  finitePtr(row.Expected),
			Simulated: row.Simulated,
			SimStdErr: row.StdErr,
			CILo:      finitePtr(row.Lo),
			CIHi:      finitePtr(row.Hi),
			Gain:      row.Gain,
		}
		switch {
		case row.Unit > 0:
			rr.Unit = finitePtr(row.Unit)
		case math.IsInf(row.Cutoff, 1):
			rr.NeverRestart = true
		case row.Cutoff > 0:
			rr.Cutoff = finitePtr(row.Cutoff)
		default:
			// no-restart: no parameter at all.
			rr.NeverRestart = row.Policy == lasvegas.PolicyNoRestart
		}
		resp.Policies = append(resp.Policies, rr)
	}
	buf, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
