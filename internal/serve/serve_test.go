package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lasvegas"
	"lasvegas/internal/store"
)

// fixturePath points at the repository's committed fixed-seed
// Costas-13 campaign (the CI smoke fixture).
var fixturePath = filepath.Join("..", "..", "testdata", "campaign_costas13.json")

func newTestServer(t *testing.T) *httptest.Server {
	return newConfigServer(t, Config{})
}

func newConfigServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", path, err)
	}
	return resp.StatusCode, data
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, data
}

func fixtureJSON(t *testing.T) []byte {
	t.Helper()
	data, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	return data
}

// uploadFixture uploads the Costas fixture and returns its campaign id.
func uploadFixture(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	status, body := post(t, ts, "/v1/campaigns", fixtureJSON(t))
	if status != http.StatusOK {
		t.Fatalf("upload: status %d, body %s", status, body)
	}
	var resp campaignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("upload response: %v", err)
	}
	if resp.ID == "" || resp.Problem != "costas-13" || resp.Runs != 200 {
		t.Fatalf("upload response: %+v", resp)
	}
	return resp.ID
}

// TestUploadFitPredict is the end-to-end happy path the CI smoke job
// replays over a real socket: upload → fit → predict, with sanity
// checks on the numbers.
func TestUploadFitPredict(t *testing.T) {
	ts := newTestServer(t)
	id := uploadFixture(t, ts)

	status, body := post(t, ts, "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, id)))
	if status != http.StatusOK {
		t.Fatalf("fit: status %d, body %s", status, body)
	}
	var fr struct {
		ID         string              `json:"id"`
		Best       json.RawMessage     `json:"best"`
		Candidates []candidateResponse `json:"candidates"`
	}
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatalf("fit response: %v", err)
	}
	if fr.ID != id {
		t.Errorf("fit id = %q, want %q", fr.ID, id)
	}
	if len(fr.Candidates) != len(lasvegas.DefaultFamilies()) {
		t.Errorf("fit returned %d candidates, want %d", len(fr.Candidates), len(lasvegas.DefaultFamilies()))
	}
	var best struct {
		Family string  `json:"family"`
		Mean   float64 `json:"mean"`
	}
	if err := json.Unmarshal(fr.Best, &best); err != nil {
		t.Fatalf("best model: %v", err)
	}
	if best.Family == "" || best.Mean <= 0 {
		t.Errorf("best model = %+v, want a fitted family with positive mean", best)
	}
	// The table is ranked by KS p-value: the winner leads and must be
	// accepted.
	if !fr.Candidates[0].Accepted {
		t.Errorf("top-ranked candidate %+v not accepted", fr.Candidates[0])
	}

	status, body = get(t, ts, "/v1/predict?id="+id+"&cores=16,64,256&quantile=0.5,0.9&target=8")
	if status != http.StatusOK {
		t.Fatalf("predict: status %d, body %s", status, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("predict response: %v", err)
	}
	if len(pr.Speedups) != 3 {
		t.Fatalf("predict returned %d speed-up rows, want 3", len(pr.Speedups))
	}
	prev := 1.0
	for _, sp := range pr.Speedups {
		if sp.Speedup <= prev {
			t.Errorf("G(%d) = %v not increasing past %v", sp.Cores, sp.Speedup, prev)
		}
		if sp.Speedup > float64(sp.Cores)*1.001 {
			t.Errorf("G(%d) = %v exceeds the core count", sp.Cores, sp.Speedup)
		}
		if sp.MinExpectation <= 0 {
			t.Errorf("E[Z(%d)] = %v, want > 0", sp.Cores, sp.MinExpectation)
		}
		prev = sp.Speedup
	}
	if len(pr.Quantiles) != 2 || pr.Quantiles[0].Value >= pr.Quantiles[1].Value {
		t.Errorf("quantiles %+v not increasing", pr.Quantiles)
	}
	if pr.CoresForSpeedup == nil || pr.CoresForSpeedup.Cores < 8 {
		t.Errorf("cores_for_speedup %+v, want ≥ 8 cores for a 8x target", pr.CoresForSpeedup)
	}
}

// TestByteStableAcrossRestarts uploads the same fixture to two fresh
// daemons and requires byte-identical fit and predict responses — the
// acceptance criterion that makes cached service answers trustworthy.
func TestByteStableAcrossRestarts(t *testing.T) {
	var fits, predicts [2][]byte
	var ids [2]string
	for i := 0; i < 2; i++ {
		ts := newTestServer(t)
		ids[i] = uploadFixture(t, ts)
		status, body := post(t, ts, "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, ids[i])))
		if status != http.StatusOK {
			t.Fatalf("fit: status %d", status)
		}
		fits[i] = body
		status, body = get(t, ts, "/v1/predict?id="+ids[i]+"&cores=16,32,64,128,256&quantile=0.5&target=10")
		if status != http.StatusOK {
			t.Fatalf("predict: status %d", status)
		}
		predicts[i] = body
		ts.Close()
	}
	if ids[0] != ids[1] {
		t.Errorf("campaign ids differ across restarts: %q vs %q", ids[0], ids[1])
	}
	if !bytes.Equal(fits[0], fits[1]) {
		t.Errorf("fit responses differ across restarts:\n%s\nvs\n%s", fits[0], fits[1])
	}
	if !bytes.Equal(predicts[0], predicts[1]) {
		t.Errorf("predict responses differ across restarts:\n%s\nvs\n%s", predicts[0], predicts[1])
	}
}

// TestMergeEndpoint uploads a two-shard split of the fixture as a
// JSON array and checks the pooled campaign matches the unsharded
// upload's content id.
func TestMergeEndpoint(t *testing.T) {
	ts := newTestServer(t)
	c, err := lasvegas.LoadCampaign(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	half := len(c.Iterations) / 2
	shard := func(i int, lo, hi int) *lasvegas.Campaign {
		return &lasvegas.Campaign{
			Problem:    c.Problem,
			Size:       c.Size,
			Runs:       hi - lo,
			Seed:       c.Seed,
			Iterations: c.Iterations[lo:hi],
			Seconds:    c.Seconds[lo:hi],
			// The annotations lvseq -shard writes: a complete in-order
			// cover is what lets the merged campaign keep its Seed and
			// hash to the unsharded campaign's id.
			Metadata: map[string]string{
				"lasvegas.shard":      fmt.Sprintf("%d/2", i),
				"lasvegas.shard.runs": fmt.Sprintf("%d", len(c.Iterations)),
			},
		}
	}
	shards, err := json.Marshal([]*lasvegas.Campaign{
		shard(0, 0, half), shard(1, half, len(c.Iterations)),
	})
	if err != nil {
		t.Fatal(err)
	}
	status, body := post(t, ts, "/v1/campaigns", shards)
	if status != http.StatusOK {
		t.Fatalf("merge upload: status %d, body %s", status, body)
	}
	var mergedResp campaignResponse
	if err := json.Unmarshal(body, &mergedResp); err != nil {
		t.Fatal(err)
	}
	if mergedResp.Merged != 2 || mergedResp.Runs != len(c.Iterations) {
		t.Fatalf("merge response %+v, want 2 shards and %d runs", mergedResp, len(c.Iterations))
	}

	id := uploadFixture(t, ts)
	if mergedResp.ID != id {
		t.Errorf("merged shards id %q != whole-campaign id %q (merge must reconstruct the campaign exactly)", mergedResp.ID, id)
	}
}

// TestCollectEndpoint asks the daemon to collect a small fixed-seed
// campaign itself.
func TestCollectEndpoint(t *testing.T) {
	ts := newTestServer(t)
	status, body := post(t, ts, "/v1/campaigns",
		[]byte(`{"collect": {"problem": "costas", "size": 8, "runs": 20, "seed": 3}}`))
	if status != http.StatusOK {
		t.Fatalf("collect: status %d, body %s", status, body)
	}
	var resp campaignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Problem != "costas-8" || resp.Runs != 20 {
		t.Errorf("collect response %+v, want costas-8 with 20 runs", resp)
	}
}

// TestErrorMapping locks the typed-error → status-code contract.
func TestErrorMapping(t *testing.T) {
	ts := newTestServer(t)

	uniform := &lasvegas.Campaign{Problem: "synthetic", Runs: 200}
	for i := 1; i <= 200; i++ {
		uniform.Iterations = append(uniform.Iterations, float64(i))
	}
	uniformJSON, err := json.Marshal(uniform)
	if err != nil {
		t.Fatal(err)
	}
	uploadID := func(body []byte) string {
		status, resp := post(t, ts, "/v1/campaigns", body)
		if status != http.StatusOK {
			t.Fatalf("upload: status %d, body %s", status, resp)
		}
		var cr campaignResponse
		if err := json.Unmarshal(resp, &cr); err != nil {
			t.Fatal(err)
		}
		return cr.ID
	}
	allCensored, err := json.Marshal(&lasvegas.Campaign{
		Problem:    "sat-3-120",
		Runs:       3,
		Iterations: []float64{5000, 5000, 5000},
		Censored:   []int{0, 1, 2},
		Budget:     5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	allCensoredID := uploadID(allCensored)
	uniformID := uploadID(uniformJSON)

	mismatched, err := json.Marshal([]*lasvegas.Campaign{
		{Problem: "costas-13", Runs: 1, Iterations: []float64{1}},
		{Problem: "costas-14", Runs: 1, Iterations: []float64{2}},
	})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		do     func() (int, []byte)
		status int
	}{
		{"malformed JSON 400", func() (int, []byte) {
			return post(t, ts, "/v1/campaigns", []byte(`{nope`))
		}, http.StatusBadRequest},
		{"empty campaign 400", func() (int, []byte) {
			return post(t, ts, "/v1/campaigns", []byte(`{"problem":"x","iterations":[]}`))
		}, http.StatusBadRequest},
		{"future schema 400", func() (int, []byte) {
			return post(t, ts, "/v1/campaigns", []byte(`{"schema":99,"problem":"x","iterations":[1]}`))
		}, http.StatusBadRequest},
		{"unknown collect problem 404", func() (int, []byte) {
			return post(t, ts, "/v1/campaigns", []byte(`{"collect":{"problem":"sudoku"}}`))
		}, http.StatusNotFound},
		{"merge mismatch 409", func() (int, []byte) {
			return post(t, ts, "/v1/campaigns", mismatched)
		}, http.StatusConflict},
		{"oversized body 413", func() (int, []byte) {
			tiny := newConfigServer(t, Config{MaxBodyBytes: 64})
			return post(t, tiny, "/v1/campaigns", uniformJSON)
		}, http.StatusRequestEntityTooLarge},
		{"oversized stream 413", func() (int, []byte) {
			tiny := newConfigServer(t, Config{MaxStreamBytes: 64})
			stream := []byte(`{"stream":1,"problem":"x"}` + "\n" +
				strings.Repeat(`{"iterations":123456789}`+"\n", 8))
			return postStream(t, tiny, bytes.NewReader(stream))
		}, http.StatusRequestEntityTooLarge},
		{"torn stream 400", func() (int, []byte) {
			// The header declares 3 runs; the stream carries 2.
			stream := []byte(`{"stream":1,"problem":"x","runs":3}` + "\n" +
				`{"iterations":1}` + "\n" + `{"iterations":2}` + "\n")
			return postStream(t, ts, bytes.NewReader(stream))
		}, http.StatusBadRequest},
		{"stream without header 400", func() (int, []byte) {
			return postStream(t, ts, strings.NewReader(`{"iterations":1}`+"\n"))
		}, http.StatusBadRequest},
		{"merge_ids unknown id 404", func() (int, []byte) {
			return post(t, ts, "/v1/campaigns",
				[]byte(`{"merge_ids":["c0000000000000000","c0000000000000001"]}`))
		}, http.StatusNotFound},
		{"merge_ids too few 400", func() (int, []byte) {
			return post(t, ts, "/v1/campaigns", []byte(`{"merge_ids":["c0000000000000000"]}`))
		}, http.StatusBadRequest},
		{"fit unknown id 404", func() (int, []byte) {
			return post(t, ts, "/v1/fit", []byte(`{"id":"c0000000000000000"}`))
		}, http.StatusNotFound},
		{"fit all-censored 422", func() (int, []byte) {
			return post(t, ts, "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, allCensoredID)))
		}, http.StatusUnprocessableEntity},
		{"fit rejected families 422", func() (int, []byte) {
			return post(t, ts, "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, uniformID)))
		}, http.StatusUnprocessableEntity},
		{"predict unknown id 404", func() (int, []byte) {
			return get(t, ts, "/v1/predict?id=nope&cores=16")
		}, http.StatusNotFound},
		{"predict missing id 400", func() (int, []byte) {
			return get(t, ts, "/v1/predict?cores=16")
		}, http.StatusBadRequest},
		{"predict bad cores 400", func() (int, []byte) {
			id := uploadFixture(t, ts)
			return get(t, ts, "/v1/predict?id="+id+"&cores=zero")
		}, http.StatusBadRequest},
		{"predict bad quantile 400", func() (int, []byte) {
			id := uploadFixture(t, ts)
			return get(t, ts, "/v1/predict?id="+id+"&quantile=1.5")
		}, http.StatusBadRequest},
		{"predict quantile 1 400", func() (int, []byte) {
			// p = 1 is the infinite upper support edge of every
			// parametric family — rejected rather than a 500 from an
			// unencodable +Inf.
			id := uploadFixture(t, ts)
			return get(t, ts, "/v1/predict?id="+id+"&quantile=1")
		}, http.StatusBadRequest},
		{"predict quantile NaN 400", func() (int, []byte) {
			id := uploadFixture(t, ts)
			return get(t, ts, "/v1/predict?id="+id+"&quantile=NaN")
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := tc.do()
			if status != tc.status {
				t.Fatalf("status %d, want %d (body %s)", status, tc.status, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("error body not JSON: %s", body)
			}
			if er.Status != tc.status || er.Error == "" {
				t.Errorf("error body %+v, want status %d and a message", er, tc.status)
			}
		})
	}
}

// TestHealthz checks liveness plus the store stats the endpoint grew
// with the durable store: byte volume, replica slot and shard range.
func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	status, body := get(t, ts, "/v1/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	var hr healthResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Campaigns != 0 {
		t.Errorf("healthz %+v, want ok with empty store", hr)
	}
	if hr.Durable || hr.Replica != "0/1" || hr.ShardRange != "0000000000000000-ffffffffffffffff" {
		t.Errorf("healthz %+v, want a non-durable single instance owning the whole hash space", hr)
	}
	uploadFixture(t, ts)
	_, body = get(t, ts, "/v1/healthz")
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Campaigns != 1 || hr.Bytes <= 0 {
		t.Errorf("healthz after upload %+v, want 1 campaign and positive bytes", hr)
	}
}

// TestMethodNotAllowed: the v1 mux registers method-qualified
// patterns, so a GET on /v1/fit is rejected by the router.
func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t)
	status, _ := get(t, ts, "/v1/fit")
	if status != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/fit: status %d, want 405", status)
	}
}

// TestUploadDedup re-uploads the fixture and expects the same content
// id rather than a second store entry.
func TestUploadDedup(t *testing.T) {
	ts := newTestServer(t)
	a := uploadFixture(t, ts)
	b := uploadFixture(t, ts)
	if a != b {
		t.Errorf("re-upload produced a new id: %q vs %q", a, b)
	}
	_, body := get(t, ts, "/v1/healthz")
	var hr healthResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Campaigns != 1 {
		t.Errorf("store holds %d campaigns after duplicate upload, want 1", hr.Campaigns)
	}
}

// TestCollectRunsCap: a collect request beyond MaxCollectRuns is a
// 400, not a multi-minute campaign.
func TestCollectRunsCap(t *testing.T) {
	ts := newConfigServer(t, Config{MaxCollectRuns: 10})
	status, body := post(t, ts, "/v1/campaigns",
		[]byte(`{"collect": {"problem": "costas", "size": 8, "runs": 50}}`))
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %s)", status, body)
	}
	if !strings.Contains(string(body), "cap") {
		t.Errorf("error body %s does not mention the cap", body)
	}
}

// TestDurableRestart is the durability contract over HTTP: upload and
// fit against a DataDir-backed daemon, tear it down, boot a fresh one
// on the same directory, and get byte-identical fit and predict
// responses without re-uploading anything.
func TestDurableRestart(t *testing.T) {
	dir := t.TempDir()
	var fits, predicts [2][]byte
	var id string
	for i := 0; i < 2; i++ {
		ts := newConfigServer(t, Config{DataDir: dir})
		var hr healthResponse
		_, body := get(t, ts, "/v1/healthz")
		if err := json.Unmarshal(body, &hr); err != nil {
			t.Fatal(err)
		}
		if !hr.Durable {
			t.Fatalf("generation %d: healthz %+v, want durable", i, hr)
		}
		if i == 0 {
			if hr.Campaigns != 0 || hr.Replayed != 0 {
				t.Fatalf("fresh data dir healthz %+v, want empty store", hr)
			}
			id = uploadFixture(t, ts)
		} else {
			// The restarted daemon replayed the snapshot log: the
			// campaign is already there, nothing was re-uploaded.
			if hr.Campaigns != 1 || hr.Replayed != 1 {
				t.Fatalf("restarted healthz %+v, want 1 replayed campaign", hr)
			}
		}
		status, body := post(t, ts, "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, id)))
		if status != http.StatusOK {
			t.Fatalf("generation %d fit: status %d, body %s", i, status, body)
		}
		fits[i] = body
		status, body = get(t, ts, "/v1/predict?id="+id+"&cores=16,64,256&quantile=0.5&target=8")
		if status != http.StatusOK {
			t.Fatalf("generation %d predict: status %d", i, status)
		}
		predicts[i] = body
		ts.Close()
	}
	if !bytes.Equal(fits[0], fits[1]) {
		t.Errorf("fit responses differ across a durable restart:\n%s\nvs\n%s", fits[0], fits[1])
	}
	if !bytes.Equal(predicts[0], predicts[1]) {
		t.Errorf("predict responses differ across a durable restart:\n%s\nvs\n%s", predicts[0], predicts[1])
	}
}

// replicaGroup boots a two-replica group and returns the base URL of
// each replica. Listeners are created first so every replica knows
// the full peer list before serving.
func replicaGroup(t *testing.T, cfg Config) [2]string {
	t.Helper()
	var listeners [2]net.Listener
	var peers []string
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		peers = append(peers, "http://"+l.Addr().String())
	}
	var urls [2]string
	for i, l := range listeners {
		c := cfg
		c.ReplicaIndex, c.ReplicaCount, c.Peers = i, 2, peers
		if cfg.DataDir != "" {
			c.DataDir = filepath.Join(cfg.DataDir, fmt.Sprintf("replica%d", i))
		}
		srv, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(l)
		t.Cleanup(func() {
			hs.Close()
			srv.Close()
		})
		urls[i] = peers[i]
	}
	return urls
}

// TestReplicaRouting: a two-replica group answers every request —
// upload, fit, predict, for every campaign — byte-identically to a
// single instance, no matter which replica the client talks to, and
// each campaign is resident on exactly one replica.
func TestReplicaRouting(t *testing.T) {
	single := newTestServer(t)
	sid := uploadFixture(t, single)
	_, singleFit := post(t, single, "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, sid)))
	_, singlePredict := get(t, single, "/v1/predict?id="+sid+"&cores=16,64&quantile=0.9&target=4")

	urls := replicaGroup(t, Config{})
	httpDo := func(replica int, method, path string, body []byte) (int, []byte) {
		t.Helper()
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, urls[replica]+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s via replica %d: %v", method, path, replica, err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, data
	}

	// Upload through both replicas: same id, one resident copy.
	for replica := range urls {
		status, body := httpDo(replica, "POST", "/v1/campaigns", fixtureJSON(t))
		if status != http.StatusOK {
			t.Fatalf("upload via replica %d: status %d, body %s", replica, status, body)
		}
		var cr campaignResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		if cr.ID != sid {
			t.Fatalf("replica %d upload id %q, want the single instance's %q", replica, cr.ID, sid)
		}
	}
	var residents int
	for replica := range urls {
		_, body := httpDo(replica, "GET", "/v1/healthz", nil)
		var hr healthResponse
		if err := json.Unmarshal(body, &hr); err != nil {
			t.Fatal(err)
		}
		residents += hr.Campaigns
		if want := fmt.Sprintf("%d/2", replica); hr.Replica != want {
			t.Errorf("replica %d healthz slot %q, want %q", replica, hr.Replica, want)
		}
	}
	if residents != 1 {
		t.Fatalf("campaign resident on %d replicas, want exactly 1", residents)
	}

	// Fit and predict through the owner and the non-owner must both
	// return the single instance's exact bytes.
	for replica := range urls {
		status, body := httpDo(replica, "POST", "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, sid)))
		if status != http.StatusOK {
			t.Fatalf("fit via replica %d: status %d, body %s", replica, status, body)
		}
		if !bytes.Equal(body, singleFit) {
			t.Errorf("fit via replica %d differs from the single instance:\n%s\nvs\n%s", replica, body, singleFit)
		}
		status, body = httpDo(replica, "GET", "/v1/predict?id="+sid+"&cores=16,64&quantile=0.9&target=4", nil)
		if status != http.StatusOK {
			t.Fatalf("predict via replica %d: status %d, body %s", replica, status, body)
		}
		if !bytes.Equal(body, singlePredict) {
			t.Errorf("predict via replica %d differs from the single instance", replica)
		}
	}

	// Unknown ids still 404 through the routing layer (the error comes
	// from whichever replica owns the id's hash range).
	status, _ := httpDo(0, "POST", "/v1/fit", []byte(`{"id":"c0000000000000000000000000000000"}`))
	if status != http.StatusNotFound {
		t.Errorf("unknown id via replica group: status %d, want 404", status)
	}
}

// TestRoutingLoopGuard: a request carrying the forwarded marker that
// lands on a non-owner is answered 421, not bounced forever.
func TestRoutingLoopGuard(t *testing.T) {
	urls := replicaGroup(t, Config{})
	// Find an id owned by replica 1 and send it, pre-marked, to
	// replica 0 (and vice versa) — misconfiguration simulated directly.
	for replica := range urls {
		var foreign string
		for i := 0; ; i++ {
			candidate := fmt.Sprintf("c%032x", i)
			if store.Owner(candidate, 2) == 1-replica {
				foreign = candidate
				break
			}
		}
		req, err := http.NewRequest("GET", urls[replica]+"/v1/predict?id="+foreign+"&cores=4", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(forwardHeader, "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Errorf("pre-forwarded foreign id on replica %d: status %d, want 421", replica, resp.StatusCode)
		}
	}
}

// TestCensoredFitAndPredict: a partially censored upload — the cheap,
// budgeted kind of campaign — fits with 200 via the survival
// estimators instead of bouncing with 409, and the served model
// discloses the censoring fraction and estimator kind.
func TestCensoredFitAndPredict(t *testing.T) {
	ts := newTestServer(t)
	censored, err := os.ReadFile(filepath.Join("..", "..", "testdata", "campaign_v2.json"))
	if err != nil {
		t.Fatal(err)
	}
	status, body := post(t, ts, "/v1/campaigns", censored)
	if status != http.StatusOK {
		t.Fatalf("upload: status %d, body %s", status, body)
	}
	var cr campaignResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Censored != 2 || cr.Budget != 5000 {
		t.Fatalf("upload response lost censoring info: %+v", cr)
	}

	status, body = post(t, ts, "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, cr.ID)))
	if status != http.StatusOK {
		t.Fatalf("fit: status %d, body %s", status, body)
	}
	var fr struct {
		Best struct {
			Family           string  `json:"family"`
			Estimator        string  `json:"estimator"`
			CensoredFraction float64 `json:"censored_fraction"`
		} `json:"best"`
		Candidates []candidateResponse `json:"candidates"`
	}
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Best.Estimator != lasvegas.EstimatorCensoredMLE {
		t.Errorf("best.estimator = %q, want %q", fr.Best.Estimator, lasvegas.EstimatorCensoredMLE)
	}
	if want := 2.0 / 6; fr.Best.CensoredFraction != want {
		t.Errorf("best.censored_fraction = %v, want %v", fr.Best.CensoredFraction, want)
	}
	if len(fr.Candidates) == 0 {
		t.Fatal("fit returned no candidates")
	}

	status, body = get(t, ts, "/v1/predict?id="+cr.ID+"&cores=4,16")
	if status != http.StatusOK {
		t.Fatalf("predict: status %d, body %s", status, body)
	}
	var pr struct {
		Speedups []speedupResponse `json:"speedups"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Speedups) != 2 {
		t.Fatalf("predict returned %d speedups, want 2", len(pr.Speedups))
	}
	// No speedup ≤ cores bound here: a heavy-tailed (lognormal)
	// censored fit legitimately predicts superlinear speed-ups.
	for _, s := range pr.Speedups {
		if !(s.Speedup > 1) || !(s.MinExpectation > 0) || math.IsInf(s.Speedup, 0) {
			t.Errorf("implausible censored-fit prediction: %+v", s)
		}
	}
}
