package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"lasvegas"
	"lasvegas/internal/obs"
)

// policyGoldenPath pins the exact GET /v1/policy body for the Costas
// fixture. Regenerate with UPDATE_POLICY=1.
var policyGoldenPath = filepath.Join("testdata", "policy_response.golden")

// TestPolicyGolden locks the /v1/policy wire body byte-for-byte on
// the committed fixture, proves repeat reads serve the cached bytes
// (policy_computes: 1 computed + 1 cached), and cross-checks the
// served winner against the public API under lvpredict's exact
// configuration — the CLI-vs-daemon winner agreement the acceptance
// criteria demand.
func TestPolicyGolden(t *testing.T) {
	ts := newTestServer(t)
	id := uploadFixture(t, ts)

	status, body := get(t, ts, "/v1/policy?id="+id)
	if status != http.StatusOK {
		t.Fatalf("policy: status %d, body %s", status, body)
	}
	if os.Getenv("UPDATE_POLICY") != "" {
		if err := os.MkdirAll(filepath.Dir(policyGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(policyGoldenPath, body, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", policyGoldenPath)
	} else {
		want, err := os.ReadFile(policyGoldenPath)
		if err != nil {
			t.Fatalf("read golden (run with UPDATE_POLICY=1 to create): %v", err)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("policy body drifted from golden\n--- got ---\n%s--- want ---\n%s", body, want)
		}
	}

	// Second read: byte-identical, and served from the entry's cache.
	status, again := get(t, ts, "/v1/policy?id="+id)
	if status != http.StatusOK {
		t.Fatalf("policy (cached): status %d", status)
	}
	if !bytes.Equal(body, again) {
		t.Errorf("repeat policy reads differ:\n%s\nvs\n%s", body, again)
	}
	_, metricsBody := get(t, ts, "/v1/metrics")
	scrape, err := obs.ParseText(bytes.NewReader(metricsBody))
	if err != nil {
		t.Fatalf("parse metrics: %v", err)
	}
	if v, ok := scrape.Get(`lvserve_policy_computes_total{event="computed"}`); !ok || v != 1 {
		t.Errorf("policy_computes{computed} = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := scrape.Get(`lvserve_policy_computes_total{event="cached"}`); !ok || v != 1 {
		t.Errorf("policy_computes{cached} = %v (ok=%v), want 1", v, ok)
	}

	// The served verdict must be the public API's verdict under the
	// CLI's exact configuration (same alpha, censored fit, seed).
	var resp struct {
		Winner   string `json:"winner"`
		Policies []struct {
			Policy string `json:"policy"`
		} `json:"policies"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode policy body: %v", err)
	}
	if len(resp.Policies) != 4 {
		t.Fatalf("policy body has %d rows, want 4", len(resp.Policies))
	}
	if resp.Winner == "" || resp.Winner != resp.Policies[0].Policy {
		t.Errorf("winner %q is not the first ranked row %q", resp.Winner, resp.Policies[0].Policy)
	}
	c, err := lasvegas.LoadCampaign(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	pred := lasvegas.New(lasvegas.WithAlpha(0.05), lasvegas.WithCensoredFit(true))
	table, err := pred.PolicyTable(context.Background(), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if table.Winner != resp.Winner {
		t.Errorf("daemon winner %q != public-API winner %q", resp.Winner, table.Winner)
	}
}

// TestPolicyUnknownID: an id nobody stored is a 404, same contract as
// fit and predict.
func TestPolicyUnknownID(t *testing.T) {
	ts := newTestServer(t)
	status, body := get(t, ts, "/v1/policy?id=cdeadbeefdeadbeef")
	if status != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, body %s", status, body)
	}
	status, _ = get(t, ts, "/v1/policy")
	if status != http.StatusBadRequest {
		t.Fatalf("missing id: status %d", status)
	}
}

// TestPolicyAllCensored: a campaign with every run censored has no
// event mass — no law to price policies on — and must answer 422
// (unprocessable), not 500, on every read including repeats (the
// deterministic error caches like a value).
func TestPolicyAllCensored(t *testing.T) {
	ts := newTestServer(t)
	c := &lasvegas.Campaign{
		Problem:    "all-censored",
		Size:       5,
		Runs:       4,
		Seed:       1,
		Iterations: []float64{100, 100, 100, 100},
		Censored:   []int{0, 1, 2, 3},
		Budget:     100,
	}
	payload, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	status, body := post(t, ts, "/v1/campaigns", payload)
	if status != http.StatusOK {
		t.Fatalf("upload all-censored: status %d, body %s", status, body)
	}
	var up campaignResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		status, body = get(t, ts, "/v1/policy?id="+up.ID)
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("read %d: all-censored policy: status %d, body %s", i, status, body)
		}
	}
}

// TestPolicyDurableRestart: the policy body must be byte-identical
// across a daemon kill and reboot on the same data dir — the replay
// and bootstrap are seeded off campaign content, never off process
// state, so a restarted replica re-derives the same table.
func TestPolicyDurableRestart(t *testing.T) {
	dir := t.TempDir()
	var bodies [2][]byte
	var id string
	for i := 0; i < 2; i++ {
		ts := newConfigServer(t, Config{DataDir: dir})
		if i == 0 {
			id = uploadFixture(t, ts)
		}
		status, body := get(t, ts, "/v1/policy?id="+id)
		if status != http.StatusOK {
			t.Fatalf("generation %d: status %d, body %s", i, status, body)
		}
		bodies[i] = body
		ts.Close()
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("policy bodies differ across a durable restart:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
}

// TestPolicyForwarded: a non-owner replica proxies /v1/policy to the
// owner and relays its bytes verbatim, so clients can ask any group
// member.
func TestPolicyForwarded(t *testing.T) {
	urls := replicaGroup(t, Config{})
	// Upload through replica 0; the id's owner may be either.
	resp, err := http.Post(urls[0]+"/v1/campaigns", "application/json", bytes.NewReader(mustFixture(t)))
	if err != nil {
		t.Fatal(err)
	}
	var up campaignResponse
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := up.ID

	var bodies [2][]byte
	for i, u := range urls {
		r, err := http.Get(u + "/v1/policy?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("replica %d: status %d", i, r.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(r.Body); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		bodies[i] = buf.Bytes()
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("replicas disagree on policy bytes:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
}

func mustFixture(t *testing.T) []byte {
	t.Helper()
	data, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
