package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"lasvegas"
)

// postStream POSTs an NDJSON campaign stream to /v1/campaigns.
func postStream(t *testing.T, ts *httptest.Server, body io.Reader) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/x-ndjson", body)
	if err != nil {
		t.Fatalf("stream POST: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("stream POST: reading body: %v", err)
	}
	return resp.StatusCode, data
}

// ndjsonOf renders a campaign in the NDJSON stream wire format.
func ndjsonOf(t *testing.T, c *lasvegas.Campaign) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamingIngest streams the Costas fixture into a daemon whose
// buffered-body cap is far smaller than the stream — proving NDJSON
// uploads bypass MaxBodyBytes entirely — then fits and predicts
// against the sketch-backed campaign and checks the fit agrees with
// the raw upload's (the 200-run fixture is below the sketch capacity,
// so the sketch is exact).
func TestStreamingIngest(t *testing.T) {
	// 512 B would reject the ~4 KiB fixture on the buffered path.
	ts := newConfigServer(t, Config{MaxBodyBytes: 512})
	c, err := lasvegas.LoadCampaign(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	stream := ndjsonOf(t, c)
	if int64(len(stream)) <= 512 {
		t.Fatalf("fixture stream is only %d bytes; the test needs it over the body cap", len(stream))
	}
	status, body := postStream(t, ts, bytes.NewReader(stream))
	if status != http.StatusOK {
		t.Fatalf("stream upload: status %d, body %s", status, body)
	}
	var sr campaignResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Sketched || sr.Runs != len(c.Iterations) || sr.Problem != "costas-13" {
		t.Fatalf("stream response %+v, want a sketched costas-13 campaign with %d runs", sr, len(c.Iterations))
	}

	type bestModel struct {
		Family    string  `json:"family"`
		Mean      float64 `json:"mean"`
		Estimator string  `json:"estimator"`
	}
	fit := func(ts *httptest.Server, id string) bestModel {
		status, body := post(t, ts, "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, id)))
		if status != http.StatusOK {
			t.Fatalf("fit %s: status %d, body %s", id, status, body)
		}
		var fr struct {
			Best *bestModel `json:"best"`
		}
		if err := json.Unmarshal(body, &fr); err != nil {
			t.Fatal(err)
		}
		if fr.Best == nil {
			t.Fatalf("fit %s returned no accepted model", id)
		}
		return *fr.Best
	}
	sketchFit := fit(ts, sr.ID)
	if sketchFit.Estimator != lasvegas.EstimatorSketch {
		t.Errorf("sketch fit estimator %q, want %q", sketchFit.Estimator, lasvegas.EstimatorSketch)
	}

	// Raw upload of the same campaign (default caps elsewhere).
	raw := newTestServer(t)
	rawFit := fit(raw, uploadFixture(t, raw))
	if sketchFit.Family != rawFit.Family {
		t.Errorf("sketch fit chose %s, raw fit %s", sketchFit.Family, rawFit.Family)
	}
	// The exact sketch reconstructs the sample, so the fitted mean can
	// differ only by floating-point summation order.
	if s, r := sketchFit.Mean, rawFit.Mean; math.Abs(s-r) > 1e-9*r {
		t.Errorf("sketch fit mean %v vs raw fit mean %v", s, r)
	}

	status, body = get(t, ts, "/v1/predict?id="+sr.ID+"&cores=16,64&quantile=0.5&target=8")
	if status != http.StatusOK {
		t.Fatalf("predict on sketch campaign: status %d, body %s", status, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Speedups) != 2 || pr.Speedups[1].Speedup <= pr.Speedups[0].Speedup {
		t.Errorf("predict speedups %+v, want 2 increasing rows", pr.Speedups)
	}
}

// TestStreamShardsMergeByID streams two annotated shard campaigns
// separately and pools them with {"merge_ids": [...]}: the merged
// campaign must hash to the same content id as a single unsharded
// stream of the whole sample — exact-mode sketches merge
// byte-identically, and the complete in-order shard cover lets the
// pooled campaign keep its seed.
func TestStreamShardsMergeByID(t *testing.T) {
	ts := newTestServer(t)
	c, err := lasvegas.LoadCampaign(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	half := len(c.Iterations) / 2
	shard := func(i, lo, hi int) *lasvegas.Campaign {
		return &lasvegas.Campaign{
			Problem:    c.Problem,
			Size:       c.Size,
			Runs:       hi - lo,
			Seed:       c.Seed,
			Iterations: c.Iterations[lo:hi],
			Metadata: map[string]string{
				"lasvegas.shard":      fmt.Sprintf("%d/2", i),
				"lasvegas.shard.runs": fmt.Sprintf("%d", len(c.Iterations)),
			},
		}
	}
	var ids []string
	for i, s := range []*lasvegas.Campaign{shard(0, 0, half), shard(1, half, len(c.Iterations))} {
		status, body := postStream(t, ts, bytes.NewReader(ndjsonOf(t, s)))
		if status != http.StatusOK {
			t.Fatalf("shard %d stream: status %d, body %s", i, status, body)
		}
		var cr campaignResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, cr.ID)
	}
	if ids[0] == ids[1] {
		t.Fatalf("distinct shards got one id %q", ids[0])
	}

	mergeReq, _ := json.Marshal(map[string][]string{"merge_ids": ids})
	status, body := post(t, ts, "/v1/campaigns", mergeReq)
	if status != http.StatusOK {
		t.Fatalf("merge_ids: status %d, body %s", status, body)
	}
	var merged campaignResponse
	if err := json.Unmarshal(body, &merged); err != nil {
		t.Fatal(err)
	}
	if merged.Merged != 2 || merged.Runs != len(c.Iterations) || !merged.Sketched {
		t.Fatalf("merge_ids response %+v, want 2 sketched shards pooling %d runs", merged, len(c.Iterations))
	}

	// The unsharded stream of the same sample.
	full := &lasvegas.Campaign{
		Problem:    c.Problem,
		Size:       c.Size,
		Runs:       len(c.Iterations),
		Seed:       c.Seed,
		Iterations: c.Iterations,
	}
	status, body = postStream(t, ts, bytes.NewReader(ndjsonOf(t, full)))
	if status != http.StatusOK {
		t.Fatalf("full stream: status %d, body %s", status, body)
	}
	var fullResp campaignResponse
	if err := json.Unmarshal(body, &fullResp); err != nil {
		t.Fatal(err)
	}
	if merged.ID != fullResp.ID {
		t.Errorf("merged shard streams id %q != single-stream id %q (sketch merge must reconstruct the stream exactly)",
			merged.ID, fullResp.ID)
	}
}

// TestStreamLargeBoundedMemory pipes a 100k-run stream — two orders
// of magnitude over the buffered-body cap — through the ingest path
// and checks the campaign the daemon actually stores is a small
// sketch, not the sample: the canonical bytes on the healthz gauge
// must come in far under the wire volume.
func TestStreamLargeBoundedMemory(t *testing.T) {
	ts := newConfigServer(t, Config{MaxBodyBytes: 1024})
	const runs = 100_000
	pr, pw := io.Pipe()
	var wire int64
	go func() {
		cw := &countWriter{w: pw}
		enc := json.NewEncoder(cw)
		enc.Encode(map[string]any{"stream": 1, "problem": "synthetic-heavy", "runs": runs})
		for i := 0; i < runs; i++ {
			// A deterministic heavy-tailed-ish spread; no randomness
			// needed to exercise the compactors.
			enc.Encode(map[string]any{"iterations": float64(1 + (i*7919)%999983)})
		}
		wire = cw.n
		pw.Close()
	}()
	status, body := postStream(t, ts, pr)
	if status != http.StatusOK {
		t.Fatalf("large stream: status %d, body %s", status, body)
	}
	var cr campaignResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Runs != runs || !cr.Sketched {
		t.Fatalf("large stream response %+v, want %d sketched runs", cr, runs)
	}
	_, hb := get(t, ts, "/v1/healthz")
	var hr healthResponse
	if err := json.Unmarshal(hb, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Bytes <= 0 || hr.Bytes > wire/8 {
		t.Errorf("stored %d canonical bytes for a %d-byte stream; a sketch-backed campaign must be far smaller", hr.Bytes, wire)
	}

	// The sketch-backed campaign is fittable end to end.
	status, body = post(t, ts, "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, cr.ID)))
	if status != http.StatusOK && status != http.StatusUnprocessableEntity {
		t.Fatalf("fit on 100k-run sketch: status %d, body %s", status, body)
	}
}

// countWriter counts bytes on their way into the pipe.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// TestStreamDurableRestart replays a streamed (sketch-backed)
// campaign from the snapshot log: after a restart the daemon must
// serve the same id with a byte-identical fit response.
func TestStreamDurableRestart(t *testing.T) {
	dir := t.TempDir()
	c, err := lasvegas.LoadCampaign(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	var id string
	var fits [2][]byte
	for i := 0; i < 2; i++ {
		srv, err := New(Config{DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		if i == 0 {
			status, body := postStream(t, ts, bytes.NewReader(ndjsonOf(t, c)))
			if status != http.StatusOK {
				t.Fatalf("stream upload: status %d, body %s", status, body)
			}
			var cr campaignResponse
			if err := json.Unmarshal(body, &cr); err != nil {
				t.Fatal(err)
			}
			id = cr.ID
		}
		status, body := post(t, ts, "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, id)))
		if status != http.StatusOK {
			t.Fatalf("fit (boot %d): status %d, body %s", i, status, body)
		}
		fits[i] = body
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(fits[0], fits[1]) {
		t.Errorf("sketch-backed fit responses differ across restarts:\n%s\nvs\n%s", fits[0], fits[1])
	}
}

// TestStatusForStreamErrors locks the new status mappings statusFor
// grew with streaming ingest: body/stream overflow 413, sketch-backed
// campaigns asked for raw runs 422, malformed streams 400.
func TestStatusForStreamErrors(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{&http.MaxBytesError{Limit: 1}, http.StatusRequestEntityTooLarge},
		{fmt.Errorf("serve: reading body: %w", &http.MaxBytesError{Limit: 1}), http.StatusRequestEntityTooLarge},
		{fmt.Errorf("wrap: %w", lasvegas.ErrNoRawRuns), http.StatusUnprocessableEntity},
		{fmt.Errorf("wrap: %w", lasvegas.ErrStream), http.StatusBadRequest},
	}
	for _, tc := range cases {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("statusFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
