package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"lasvegas/internal/store"
)

// TestCrossReplicaFitSingleFlight is the acceptance test for fit
// sharing: a concurrent /v1/fit herd spread over all k owners of a
// campaign must cost the group exactly ONE fit computation — the id's
// primary owner computes, every other owner adopts the rendered
// response — and every request must get the same bytes.
func TestCrossReplicaFitSingleFlight(t *testing.T) {
	g := newGroup(t, 3, 3, Config{AntiEntropyInterval: -1}) // k = n: all 3 own every id
	id := g.uploadSynth(0, synthCampaign(t, 40))
	primary := store.Owner(id, 3)
	fitBody := []byte(fmt.Sprintf(`{"id":%q}`, id))

	const herd = 12
	responses := make([][]byte, herd)
	statuses := make([]int, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], responses[i] = g.do(i%3, "POST", "/v1/fit", fitBody)
		}(i)
	}
	wg.Wait()

	for i := 0; i < herd; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("herd request %d (replica %d): status %d, body %s",
				i, i%3, statuses[i], responses[i])
		}
		if !bytes.Equal(responses[i], responses[0]) {
			t.Errorf("herd request %d answer diverges:\n%s\nvs\n%s", i, responses[i], responses[0])
		}
	}

	// Exactly one owner computed; the other two hold adopted renderings
	// instead of models.
	computed, adopted := 0, 0
	for i := range g.srv {
		e, err := g.srv[i].store.Get(id)
		if err != nil {
			t.Fatalf("replica %d lost the campaign: %v", i, err)
		}
		if _, ok := e.CachedFit(); ok {
			computed++
			if i != primary {
				t.Errorf("replica %d computed a fit but the id's primary owner is %d", i, primary)
			}
		}
		if e.AdoptedFit() != nil {
			adopted++
		}
	}
	if computed != 1 {
		t.Errorf("%d owners computed a fit for the herd, want exactly 1", computed)
	}
	if adopted != 2 {
		t.Errorf("%d owners adopted a peer rendering, want 2", adopted)
	}

	// A later request to a secondary serves its adopted copy with no
	// further coordination, still byte-identical.
	status, resp := g.do((primary+1)%3, "POST", "/v1/fit", fitBody)
	if status != http.StatusOK || !bytes.Equal(resp, responses[0]) {
		t.Errorf("post-herd fit via secondary: status %d, body %s", status, resp)
	}
}

// TestFitSharePrimaryDownFallsBack: fit sharing is an optimization,
// never an availability dependency — with the id's primary owner dead,
// a secondary's fit must still succeed by computing locally.
func TestFitSharePrimaryDownFallsBack(t *testing.T) {
	g := newGroup(t, 3, 3, Config{AntiEntropyInterval: -1})
	id := g.uploadSynth(0, synthCampaign(t, 41))
	primary := store.Owner(id, 3)
	secondary := (primary + 1) % 3

	g.kill(primary)
	status, resp := g.do(secondary, "POST", "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, id)))
	if status != http.StatusOK {
		t.Fatalf("fit via secondary with primary down: status %d, body %s", status, resp)
	}
	e, err := g.srv[secondary].store.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.CachedFit(); !ok {
		t.Error("secondary did not fall back to a local fit with the primary down")
	}
}

// TestInternalFitCacheNeverComputes: the probe endpoint is strictly
// read-only — an id with no finished fit is a 404, and probing must
// not leave a fit behind.
func TestInternalFitCacheNeverComputes(t *testing.T) {
	g := newGroup(t, 2, 2, Config{AntiEntropyInterval: -1})
	id := g.uploadSynth(0, synthCampaign(t, 42))

	status, body := g.do(0, "GET", "/v1/internal/fit-cache?id="+id, nil)
	if status != http.StatusNotFound {
		t.Fatalf("fit-cache probe before any fit: status %d, body %s, want 404", status, body)
	}
	e, err := g.srv[0].store.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.CachedFit(); ok {
		t.Error("probing the fit cache computed a fit")
	}

	// After a real fit, the probe serves the identical rendering.
	status, direct := g.do(0, "POST", "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, id)))
	if status != http.StatusOK {
		t.Fatalf("fit: status %d, body %s", status, direct)
	}
	status, cached := g.do(0, "GET", "/v1/internal/fit-cache?id="+id, nil)
	if status != http.StatusOK || !bytes.Equal(cached, direct) {
		t.Errorf("fit-cache probe after fit: status %d; bytes match direct fit: %v",
			status, bytes.Equal(cached, direct))
	}

	status, _ = g.do(0, "GET", "/v1/internal/fit-cache?id=c0000000000000000", nil)
	if status != http.StatusNotFound {
		t.Errorf("fit-cache probe for unknown id: status %d, want 404", status)
	}
}
