package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"lasvegas"
)

// defaultWorkers sizes the fit/collect pool when Config.Workers is 0.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// errUnknownCampaign reports a campaign id the store has never seen
// (or has evicted). The HTTP layer maps it to 404.
var errUnknownCampaign = errors.New("serve: unknown campaign id")

// store is the daemon's in-memory campaign/model cache. Campaigns are
// keyed by a content hash of their canonical JSON, so re-uploading the
// same campaign — or restarting the daemon and uploading it again —
// yields the same id and therefore byte-identical fit and predict
// responses. Each entry fits at most once (single-flight): concurrent
// /v1/fit and /v1/predict requests for one campaign block on the same
// entry lock, and the fit itself runs inside the bounded worker pool
// that also throttles server-side collection.
type store struct {
	pred *lasvegas.Predictor
	sem  chan struct{} // bounds concurrent fit/collect work

	mu      sync.Mutex
	entries map[string]*entry
	order   []string // insertion order, for FIFO eviction
	max     int
}

// entry is one cached campaign and its lazily-computed fit.
type entry struct {
	id       string
	campaign *lasvegas.Campaign

	mu     sync.Mutex      // serializes the single-flight fit
	done   bool            // a fit outcome (model or fitErr) is cached
	model  *lasvegas.Model // best accepted fit (nil when fitErr != nil)
	cands  []lasvegas.Candidate
	fitErr error
}

func newStore(pred *lasvegas.Predictor, workers, maxCampaigns int) *store {
	if workers < 1 {
		workers = 1
	}
	if maxCampaigns < 1 {
		maxCampaigns = 1
	}
	return &store{
		pred:    pred,
		sem:     make(chan struct{}, workers),
		entries: make(map[string]*entry),
		max:     maxCampaigns,
	}
}

// acquire claims a worker-pool slot, honouring ctx while waiting.
func (s *store) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *store) release() { <-s.sem }

// campaignID derives the deterministic content id of a campaign from
// its canonical JSON encoding. SHA-256 (truncated to 128 bits), not a
// cheap hash: the store dedups purely by id, so a constructible
// collision would silently alias one client's campaign to another's
// cached model.
func campaignID(c *lasvegas.Campaign) (string, error) {
	data, err := c.MarshalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return "c" + hex.EncodeToString(sum[:16]), nil
}

// add stores a campaign (deduplicating by content id) and returns its
// entry. When the store is full the oldest entry that is not being
// re-added is evicted first.
func (s *store) add(c *lasvegas.Campaign) (*entry, error) {
	id, err := campaignID(c)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[id]; ok {
		return e, nil
	}
	for len(s.entries) >= s.max && len(s.order) > 0 {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.entries, oldest)
	}
	e := &entry{id: id, campaign: c}
	s.entries[id] = e
	s.order = append(s.order, id)
	return e, nil
}

// get returns the entry for id or errUnknownCampaign.
func (s *store) get(id string) (*entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[id]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("%w: %q", errUnknownCampaign, id)
}

// len reports the number of cached campaigns.
func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// fit runs the single-flight fit of the entry: every configured
// family through Predictor.FitAll, the ranked table cached alongside
// the best accepted model. Concurrent callers for one campaign block
// on the entry lock and all receive the same cached outcome —
// including a cached fit error (ErrCensored, ErrNoAcceptableFit),
// which is deterministic for the campaign. ctx bounds only the wait
// for a worker-pool slot; a caller cancelled while waiting does not
// poison the entry, the next caller simply retries.
func (s *store) fit(ctx context.Context, e *entry) ([]lasvegas.Candidate, *lasvegas.Model, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.done {
		if err := s.acquire(ctx); err != nil {
			return nil, nil, err
		}
		e.cands, e.model, e.fitErr = fitCampaign(s.pred, e.campaign)
		s.release()
		e.done = true
	}
	if e.fitErr != nil {
		return nil, nil, e.fitErr
	}
	return e.cands, e.model, nil
}

// fitCampaign fits every candidate family once and selects the best
// accepted model — Predictor.Fit's selection rule without fitting the
// sample twice.
func fitCampaign(pred *lasvegas.Predictor, c *lasvegas.Campaign) ([]lasvegas.Candidate, *lasvegas.Model, error) {
	cands, err := pred.FitAll(c)
	if err != nil {
		return nil, nil, err
	}
	for _, cand := range cands {
		if cand.Err == nil && cand.Model != nil && cand.Model.Accepted() {
			return cands, cand.Model, nil
		}
	}
	return nil, nil, fmt.Errorf("%w (%d candidate families)", lasvegas.ErrNoAcceptableFit, len(cands))
}
