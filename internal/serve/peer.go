package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"lasvegas/internal/obs"
)

// errPeerDown is the fast-failure a tripped circuit breaker returns
// without dialing: a dead peer costs one map lookup, not a pinned
// goroutine waiting out a connect timeout.
var errPeerDown = errors.New("serve: peer circuit open")

// breaker states. closed = healthy traffic flows; open = the peer
// failed breakerThreshold consecutive calls and is not dialed until
// the cooldown elapses; half-open = the cooldown elapsed and exactly
// one probe request is allowed through to test the peer.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerStates are the wire names healthz reports per peer.
var breakerStates = [...]string{"closed", "open", "half-open"}

// breaker is a per-peer circuit breaker: consecutive transport
// failures trip it open, a cooldown later it half-opens for a single
// probe, and one success resets it. Safe for concurrent use.
type breaker struct {
	threshold int           // consecutive failures that trip it
	cooldown  time.Duration // open -> half-open delay
	notify    func(to int)  // called (unlocked) after each state change

	mu       sync.Mutex
	state    int
	failures int       // consecutive
	openedAt time.Time // of the transition to open
	probing  bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration, notify func(to int)) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	if notify == nil {
		notify = func(int) {}
	}
	return &breaker{threshold: threshold, cooldown: cooldown, notify: notify}
}

// Allow reports whether a request may be sent to the peer right now.
// An open breaker whose cooldown has elapsed half-opens and admits
// exactly one probe; further calls fail fast until the probe reports.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	switch b.state {
	case breakerClosed:
		b.mu.Unlock()
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			b.mu.Unlock()
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		b.mu.Unlock()
		b.notify(breakerHalfOpen)
		return true
	default: // half-open
		if b.probing {
			b.mu.Unlock()
			return false
		}
		b.probing = true
		b.mu.Unlock()
		return true
	}
}

// Success records a completed call (any HTTP response counts — the
// breaker guards transport health, not status codes) and closes the
// breaker.
func (b *breaker) Success() {
	b.mu.Lock()
	reopened := b.state != breakerClosed
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
	if reopened {
		b.notify(breakerClosed)
	}
}

// Failure records a transport failure. The threshold-th consecutive
// failure — or any failed half-open probe — re-opens the breaker and
// restarts the cooldown.
func (b *breaker) Failure() {
	b.mu.Lock()
	tripped := false
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= b.threshold {
		tripped = b.state != breakerOpen
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.probing = false
	}
	b.mu.Unlock()
	if tripped {
		b.notify(breakerOpen)
	}
}

// Snapshot reports the breaker's state name and consecutive-failure
// count for healthz.
func (b *breaker) Snapshot() (state string, failures int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStates[b.state], b.failures
}

// peerClient dials peer replicas with the failure handling the bare
// 5-minute http.Client lacked: per-endpoint timeouts (callers pass
// one per call), bounded retries with jittered exponential backoff on
// transport errors, and a per-peer circuit breaker so a dead peer
// fails fast instead of pinning a goroutine per request.
type peerClient struct {
	peers    []string // base URLs, indexed by replica; self entry unused
	hc       *http.Client
	retries  int           // additional attempts after the first
	backoff  time.Duration // base delay before the first retry
	breakers []*breaker
	met      *metrics     // peer RPC counters/latency + breaker transitions
	logger   *slog.Logger // breaker transition log lines
}

// Peer-client failure tuning. The breaker trips after 3 consecutive
// transport failures and half-opens after 500ms — fast enough that a
// kill -9'd replica costs a handful of connection-refused errors
// before every peer routes around it, and a restarted one is back in
// rotation within a second.
const (
	peerRetries          = 2
	peerBackoffBase      = 50 * time.Millisecond
	peerBreakerThreshold = 3
	peerBreakerCooldown  = 500 * time.Millisecond
)

func newPeerClient(peers []string, met *metrics, logger *slog.Logger) *peerClient {
	breakers := make([]*breaker, len(peers))
	for i := range breakers {
		peerLabel := strconv.Itoa(i)
		breakers[i] = newBreaker(peerBreakerThreshold, peerBreakerCooldown, func(to int) {
			state := breakerStates[to]
			met.breakerTransitions.With(peerLabel, state).Inc()
			// Opening is the operator-relevant event ("the group thinks
			// replica i is dead"); the probe/close churn stays at debug.
			level := slog.LevelDebug
			if to == breakerOpen {
				level = slog.LevelWarn
			}
			logger.Log(context.Background(), level, "peer breaker transition",
				"peer", peerLabel, "to", state)
		})
	}
	return &peerClient{
		peers: peers,
		// No global Timeout: every call carries its own per-endpoint
		// deadline via context.
		hc:       &http.Client{},
		retries:  peerRetries,
		backoff:  peerBackoffBase,
		breakers: breakers,
		met:      met,
		logger:   logger,
	}
}

// do sends one request to a peer replica and returns whatever HTTP
// response it produced (any status — proxying relays peer responses
// verbatim; the breaker only judges transport health). Transport
// errors are retried up to retries times with jittered exponential
// backoff, each attempt under its own timeout; a parent-context
// cancellation is returned as-is and not held against the peer.
//
// Every call is observed by endpoint: latency (retries and backoff
// included — the cost the caller actually paid) and an ok/error
// outcome counter.
func (p *peerClient) do(ctx context.Context, peer int, timeout time.Duration, method, uri string, body []byte, header map[string]string) (*http.Response, error) {
	start := time.Now()
	resp, err := p.doRetrying(ctx, peer, timeout, method, uri, body, header)
	endpoint := peerEndpoint(uri)
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	p.met.peerRequests.With(endpoint, outcome).Inc()
	p.met.peerLatency.With(endpoint).Observe(time.Since(start).Seconds())
	return resp, err
}

// doRetrying is do's breaker/retry loop, unobserved.
func (p *peerClient) doRetrying(ctx context.Context, peer int, timeout time.Duration, method, uri string, body []byte, header map[string]string) (*http.Response, error) {
	br := p.breakers[peer]
	var lastErr error
	for attempt := 0; ; attempt++ {
		if !br.Allow() {
			if lastErr != nil {
				return nil, fmt.Errorf("replica %d: %w (last error: %v)", peer, errPeerDown, lastErr)
			}
			return nil, fmt.Errorf("replica %d: %w", peer, errPeerDown)
		}
		resp, err := p.attempt(ctx, peer, timeout, method, uri, body, header)
		if err == nil {
			br.Success()
			return resp, nil
		}
		if ctx.Err() != nil {
			// The caller went away; that says nothing about the peer.
			return nil, ctx.Err()
		}
		br.Failure()
		lastErr = err
		if attempt >= p.retries {
			return nil, fmt.Errorf("replica %d: %w", peer, lastErr)
		}
		// Jittered exponential backoff: uniform in [0.5, 1.5) of
		// base·2^attempt, so racing retries against one struggling
		// peer don't synchronize.
		d := p.backoff << attempt
		d = d/2 + time.Duration(rand.Int63n(int64(d)))
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// attempt runs one request under its own timeout.
func (p *peerClient) attempt(ctx context.Context, peer int, timeout time.Duration, method, uri string, body []byte, header map[string]string) (*http.Response, error) {
	actx, cancel := context.WithTimeout(ctx, timeout)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, p.peers[peer]+uri, rd)
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// The trace ID crosses every peer hop: the receiving replica reuses
	// it, so one client request is one trace fleet-wide.
	if tid := obs.Trace(ctx); tid != "" {
		req.Header.Set(obs.TraceHeader, tid)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	// The response body outlives this call; tie the timeout's cancel
	// to the body so reading it stays bounded and nothing leaks.
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelBody releases an attempt's timeout context when the response
// body is closed.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// Snapshot reports every foreign peer's breaker state for healthz.
// self's own slot is skipped (never dialed).
func (p *peerClient) Snapshot(self int) []peerHealth {
	var out []peerHealth
	for i, br := range p.breakers {
		if i == self {
			continue
		}
		state, failures := br.Snapshot()
		out = append(out, peerHealth{Replica: i, State: state, Failures: failures})
	}
	return out
}
