package serve

import (
	"context"
	"errors"
	"log/slog"
	"testing"
	"time"
)

// TestBreakerTripHalfOpenReset walks the breaker's whole state
// machine: consecutive failures trip it, the cooldown admits exactly
// one half-open probe, a failed probe re-opens it, a successful one
// resets it.
func TestBreakerTripHalfOpenReset(t *testing.T) {
	const cooldown = 50 * time.Millisecond
	b := newBreaker(3, cooldown, nil)

	if !b.Allow() {
		t.Fatal("fresh breaker must allow")
	}
	b.Failure()
	b.Failure()
	if !b.Allow() {
		t.Fatal("breaker tripped before the threshold (2 failures < 3)")
	}
	b.Failure() // third consecutive failure: trips
	if b.Allow() {
		t.Fatal("breaker still allowing after the threshold-th failure")
	}
	if state, failures := b.Snapshot(); state != "open" || failures != 3 {
		t.Fatalf("snapshot = (%q, %d), want (open, 3)", state, failures)
	}

	time.Sleep(cooldown + 20*time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but the half-open probe was refused")
	}
	if state, _ := b.Snapshot(); state != "half-open" {
		t.Fatalf("state after cooldown = %q, want half-open", state)
	}
	if b.Allow() {
		t.Fatal("second concurrent half-open probe admitted; want exactly one")
	}
	b.Failure() // the probe failed: straight back to open
	if b.Allow() {
		t.Fatal("breaker allowing right after a failed probe")
	}

	time.Sleep(cooldown + 20*time.Millisecond)
	if !b.Allow() {
		t.Fatal("second half-open probe refused")
	}
	b.Success() // the probe landed: reset
	if state, failures := b.Snapshot(); state != "closed" || failures != 0 {
		t.Fatalf("snapshot after success = (%q, %d), want (closed, 0)", state, failures)
	}
	for i := 0; i < 5; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker must allow freely")
		}
	}
}

// TestBreakerSuccessResetsConsecutiveCount: failures only trip the
// breaker when consecutive — any success in between starts over.
func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b := newBreaker(3, time.Minute, nil)
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Failure()
		b.Success()
	}
	if !b.Allow() {
		t.Fatal("interleaved successes must keep the breaker closed")
	}
	if state, failures := b.Snapshot(); state != "closed" || failures != 0 {
		t.Fatalf("snapshot = (%q, %d), want (closed, 0)", state, failures)
	}
}

// TestPeerClientFastFailure: once the breaker for a dead peer trips,
// do() fails fast with errPeerDown instead of dialing again.
func TestPeerClientFastFailure(t *testing.T) {
	// 127.0.0.1:1 — reserved, nothing listens; connects fail instantly.
	p := newPeerClient([]string{"http://127.0.0.1:1"}, newMetrics(), slog.New(slog.DiscardHandler))
	ctx := context.Background()
	_, err := p.do(ctx, 0, time.Second, "GET", "/v1/healthz", nil, nil)
	if err == nil {
		t.Fatal("dial to a dead peer succeeded")
	}
	// The first call burned through its retries (1 + peerRetries
	// failures ≥ threshold), so the breaker is now open.
	_, err = p.do(ctx, 0, time.Second, "GET", "/v1/healthz", nil, nil)
	if !errors.Is(err, errPeerDown) {
		t.Fatalf("second call error = %v, want errPeerDown fast failure", err)
	}
	snap := p.Snapshot(-1)
	if len(snap) != 1 || snap[0].State != "open" || snap[0].Failures < peerBreakerThreshold {
		t.Fatalf("snapshot = %+v, want an open breaker past the threshold", snap)
	}
}
