package serve

// Cross-replica fit single-flight: k owners of a campaign should burn
// at most one fit between them, not one each.
//
// In-process, Entry.Fit already collapses a thundering herd onto one
// computation. Across replicas there was no such collapse: a herd of
// /v1/fit requests spread over the k owners fitted the same campaign
// k times. Now an owner that has no finished fit first probes the
// other owners' fit caches (GET /v1/internal/fit-cache — strictly
// local, never computes) and adopts a finished rendering; if nobody
// has one, every owner except the id's primary delegates the fit to
// the primary (marked with fitDelegateHeader so the primary computes
// rather than delegating back), so the whole group converges on one
// computation. Both probe and delegation are themselves single-flight
// per id per process, and a dead primary just means the owner falls
// back to computing locally — sharing is an optimization, never an
// availability dependency.
//
// What is shared is the *rendered response* (status + body), not the
// model: fitted models don't round-trip the wire, and responses are
// rendered deterministically, so an adopted response is byte-identical
// to the one a local fit would have produced. /v1/predict computes
// its queries against the Model itself and therefore always fits
// locally — at most once per owner, which the package doc and
// ARCHITECTURE.md call out as the boundary of the optimization.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"

	"lasvegas/internal/obs"
	"lasvegas/internal/store"
)

// fitDelegateHeader marks a fit delegated by a secondary owner to the
// id's primary owner: the receiver must compute (or serve its cache),
// never probe or delegate again — the sender is already coordinating.
const fitDelegateHeader = "Lvserve-Fit-Delegate"

// adoptedFit is a peer's finished fit response, adopted verbatim: the
// exact status and body bytes the peer rendered, which — rendering
// being deterministic — are the bytes a local fit would produce.
// Adoptable statuses are 200 (a fit) and 422 (a deterministic fit
// failure, itself a cacheable outcome).
type adoptedFit struct {
	status int
	body   []byte
}

// write replays the adopted response.
func (a *adoptedFit) write(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(a.status)
	w.Write(a.body)
}

// fitShareCall is one in-flight probe/delegate coordination for an
// id; concurrent local callers wait on done and share a.
type fitShareCall struct {
	done chan struct{}
	a    *adoptedFit
}

// sharedFit returns a peer's fit response to serve for e, or nil when
// the caller should fit locally: the entry already holds a finished
// local fit, the id has a single owner, the request is itself a
// delegation, or no peer could supply one (including "this replica is
// the primary and nobody has fitted yet" — then computing locally IS
// the group's single flight).
func (s *Server) sharedFit(ctx context.Context, hdr http.Header, e *store.Entry, owners []int) *adoptedFit {
	if s.replicas < 2 || len(owners) < 2 || hdr.Get(fitDelegateHeader) != "" {
		return nil
	}
	if a, ok := e.AdoptedFit().(*adoptedFit); ok {
		s.met.fitShare.With("adopted").Inc()
		return a
	}
	if _, ok := e.CachedFit(); ok {
		return nil // a finished local fit beats any peer's
	}
	s.fitProbe.Lock()
	if c, ok := s.fitProbing[e.ID]; ok {
		s.fitProbe.Unlock()
		select {
		case <-c.done:
			return c.a
		case <-ctx.Done():
			return nil
		}
	}
	c := &fitShareCall{done: make(chan struct{})}
	s.fitProbing[e.ID] = c
	s.fitProbe.Unlock()
	c.a = s.probeOrDelegate(ctx, e.ID, owners)
	if c.a != nil {
		e.AdoptFit(c.a)
	}
	s.fitProbe.Lock()
	delete(s.fitProbing, e.ID)
	s.fitProbe.Unlock()
	close(c.done)
	return c.a
}

// probeOrDelegate asks each other owner's fit cache for a finished
// result, then — when nobody has one and this replica is not the id's
// primary owner — delegates the computation to the primary, so that
// however the herd is spread over the owners, exactly one of them
// fits. Returns nil when the caller should compute locally.
func (s *Server) probeOrDelegate(ctx context.Context, id string, owners []int) *adoptedFit {
	for _, o := range owners {
		if o == s.self {
			continue
		}
		if a := s.probeFitCache(ctx, o, id); a != nil {
			s.met.fitShare.With("hit").Inc()
			s.logger.Debug("fit adopted from peer cache",
				"id", id, "peer", o, "trace", obs.Trace(ctx))
			return a
		}
	}
	if owners[0] == s.self {
		s.met.fitShare.With("local").Inc()
		return nil
	}
	a := s.delegateFit(ctx, owners[0], id)
	if a == nil {
		// Primary unreachable (or answered non-deterministically):
		// computing locally keeps the request alive.
		s.met.fitShare.With("local").Inc()
		return nil
	}
	s.met.fitShare.With("delegated").Inc()
	s.logger.Debug("fit delegated to primary owner",
		"id", id, "primary", owners[0], "trace", obs.Trace(ctx))
	return a
}

// probeFitCache asks one peer whether it has a finished fit for id.
// Only a rendered outcome is adopted (200 or 422); a 404 — no cached
// fit — or any failure returns nil. The endpoint never computes, so
// probing is always cheap.
func (s *Server) probeFitCache(ctx context.Context, peer int, id string) *adoptedFit {
	resp, err := s.peerc.do(ctx, peer, s.cfg.PeerTimeout, "GET",
		"/v1/internal/fit-cache?id="+url.QueryEscape(id), nil, nil)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	return adoptResponse(resp, s.cfg.MaxBodyBytes)
}

// delegateFit hands the fit to the id's primary owner and adopts its
// answer. The delegate marker keeps the primary from probing back;
// the forward marker keeps a misconfigured group from looping. A
// failure (primary dead, non-deterministic status) returns nil and
// the caller computes locally — availability over deduplication.
func (s *Server) delegateFit(ctx context.Context, primary int, id string) *adoptedFit {
	body, err := json.Marshal(struct {
		ID string `json:"id"`
	}{id})
	if err != nil {
		return nil
	}
	resp, err := s.peerc.do(ctx, primary, s.cfg.PeerTimeout, "POST", "/v1/fit", body,
		map[string]string{fitDelegateHeader: "1", forwardHeader: "1"})
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	return adoptResponse(resp, s.cfg.MaxBodyBytes)
}

// adoptResponse turns a peer response into an adoptedFit when its
// status marks a finished deterministic outcome.
func adoptResponse(resp *http.Response, maxBytes int64) *adoptedFit {
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBytes))
	if err != nil {
		return nil
	}
	return &adoptedFit{status: resp.StatusCode, body: body}
}

// handleInternalFitCache serves this replica's cached fit outcome for
// a campaign — the peer-to-peer probe behind cross-replica fit
// single-flight. Strictly local and strictly read-only: an id with no
// finished fit here is a 404, never a computation (the prober decides
// who computes).
func (s *Server) handleInternalFitCache(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		s.writeError(w, errors.New("serve: internal fit-cache: missing id parameter"))
		return
	}
	e, err := s.store.Get(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	out, ok := e.CachedFit()
	if !ok {
		// An adopted rendering is as finished as a computed one.
		if a, ok := e.AdoptedFit().(*adoptedFit); ok {
			a.write(w)
			return
		}
		status := http.StatusNotFound
		s.writeJSON(w, status, errorResponse{Error: "serve: no cached fit for " + id, Status: status})
		return
	}
	if out.Err != nil {
		s.writeError(w, out.Err)
		return
	}
	s.writeFitResponse(w, e, out.Candidates, out.Model)
}
