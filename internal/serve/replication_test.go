package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lasvegas"
)

// --- chaos harness ------------------------------------------------
//
// group boots an n-replica group whose members can be killed and
// restarted mid-test on stable addresses: listeners are reserved
// first so the peer list is fixed, and a restarted replica rebinds
// its old port and reopens its old data dir — the in-process
// equivalent of the serve_chaos.sh kill -9 drill, minus the process
// boundary (which scripts/serve_chaos.sh covers with real processes).
type group struct {
	t     *testing.T
	cfg   Config // template; per-replica fields filled by start
	n, k  int
	dir   string // base data dir; "" = memory stores
	peers []string
	hs    []*http.Server
	srv   []*Server
}

func newGroup(t *testing.T, n, k int, cfg Config) *group {
	t.Helper()
	g := &group{t: t, cfg: cfg, n: n, k: k, dir: cfg.DataDir,
		hs: make([]*http.Server, n), srv: make([]*Server, n)}
	listeners := make([]net.Listener, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		g.peers = append(g.peers, "http://"+l.Addr().String())
	}
	for i, l := range listeners {
		g.start(i, l)
	}
	t.Cleanup(func() {
		for i := range g.hs {
			if g.hs[i] != nil {
				g.hs[i].Close()
			}
			if g.srv[i] != nil {
				g.srv[i].Close()
			}
		}
	})
	return g
}

// start boots replica i on listener l.
func (g *group) start(i int, l net.Listener) {
	g.t.Helper()
	c := g.cfg
	c.ReplicaIndex, c.ReplicaCount, c.Peers = i, g.n, g.peers
	c.ReplicationFactor = g.k
	if g.dir != "" {
		c.DataDir = filepath.Join(g.dir, fmt.Sprintf("replica%d", i))
	}
	srv, err := New(c)
	if err != nil {
		g.t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(l)
	g.hs[i], g.srv[i] = hs, srv
}

// kill takes replica i down: the listener and every open connection
// close immediately, and in-flight requests die mid-air. The Server
// is closed too (its data dir must be reopenable by restart).
func (g *group) kill(i int) {
	g.t.Helper()
	g.hs[i].Close()
	g.srv[i].Close()
	g.hs[i], g.srv[i] = nil, nil
}

// restart reboots replica i on its original address and data dir.
func (g *group) restart(i int) {
	g.t.Helper()
	addr := g.peers[i][len("http://"):]
	var l net.Listener
	var err error
	// The old listener just closed; the port can take a moment to
	// come free again.
	for d := time.Millisecond; ; d *= 2 {
		if l, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if d > time.Second {
			g.t.Fatalf("rebinding replica %d on %s: %v", i, addr, err)
		}
		time.Sleep(d)
	}
	g.start(i, l)
}

func (g *group) url(i int) string { return g.peers[i] }

// health fetches replica i's parsed healthz.
func (g *group) health(i int) healthResponse {
	g.t.Helper()
	resp, err := http.Get(g.url(i) + "/v1/healthz")
	if err != nil {
		g.t.Fatalf("healthz replica %d: %v", i, err)
	}
	defer resp.Body.Close()
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		g.t.Fatalf("healthz replica %d: %v", i, err)
	}
	return hr
}

// waitConverged polls every live replica's healthz until all hint
// queues are empty.
func (g *group) waitConverged(timeout time.Duration) {
	g.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		depth := 0
		for i := range g.srv {
			if g.srv[i] != nil {
				depth += g.health(i).Hints
			}
		}
		if depth == 0 {
			return
		}
		if time.Now().After(deadline) {
			g.t.Fatalf("hint queues still hold %d entries after %v", depth, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// do sends one request to replica i and returns status and body.
func (g *group) do(i int, method, path string, body []byte) (int, []byte) {
	g.t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, g.url(i)+path, rd)
	if err != nil {
		g.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		g.t.Fatalf("%s %s via replica %d: %v", method, path, i, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		g.t.Fatal(err)
	}
	return resp.StatusCode, data
}

// synthCampaign builds the i-th deterministic synthetic campaign: 60
// exponential draws, the shape the paper's estimators are built for,
// serialized to canonical schema-v2 bytes.
func synthCampaign(t *testing.T, i int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(7001 + i)))
	iters := make([]float64, 60)
	for j := range iters {
		iters[j] = float64(int(rng.ExpFloat64()*500) + 1)
	}
	c := &lasvegas.Campaign{
		Problem:    fmt.Sprintf("chaos-%d", i),
		Runs:       len(iters),
		Seed:       uint64(i + 1),
		Iterations: iters,
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// uploadSynth uploads a synthetic campaign via replica i and returns
// its id.
func (g *group) uploadSynth(i int, body []byte) string {
	g.t.Helper()
	status, resp := g.do(i, "POST", "/v1/campaigns", body)
	if status != http.StatusOK {
		g.t.Fatalf("upload via replica %d: status %d, body %s", i, status, resp)
	}
	var cr campaignResponse
	if err := json.Unmarshal(resp, &cr); err != nil {
		g.t.Fatal(err)
	}
	return cr.ID
}

// --- tests --------------------------------------------------------

// TestConfigPeerTimeoutDefaults locks the per-endpoint peer timeout
// defaults and the replication-factor bounds.
func TestConfigPeerTimeoutDefaults(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.cfg.PeerTimeout != 15*time.Second {
		t.Errorf("PeerTimeout default = %v, want 15s", srv.cfg.PeerTimeout)
	}
	if srv.cfg.PeerCollectTimeout != 2*time.Minute {
		t.Errorf("PeerCollectTimeout default = %v, want 2m", srv.cfg.PeerCollectTimeout)
	}
	if srv.repl != 1 {
		t.Errorf("replication factor default = %d, want 1", srv.repl)
	}

	if _, err := New(Config{
		ReplicaCount: 2, Peers: []string{"http://a", "http://b"},
		ReplicationFactor: 3,
	}); err == nil {
		t.Error("New accepted replication factor 3 in a 2-replica group")
	}
}

// TestReplicatedWrite: with k = 2 in a 2-replica group an upload via
// either replica lands on both, and fit answers are byte-identical no
// matter which replica serves them.
func TestReplicatedWrite(t *testing.T) {
	g := newGroup(t, 2, 2, Config{})
	body := synthCampaign(t, 0)
	id := g.uploadSynth(0, body)

	for i := 0; i < 2; i++ {
		if hr := g.health(i); hr.Campaigns != 1 {
			t.Errorf("replica %d holds %d campaigns, want the replicated copy", i, hr.Campaigns)
		}
		if hr := g.health(i); hr.ReplicationFactor != 2 {
			t.Errorf("replica %d healthz replication_factor = %d, want 2", i, hr.ReplicationFactor)
		}
	}

	// Re-upload via the other replica: same id, still one copy each.
	if id2 := g.uploadSynth(1, body); id2 != id {
		t.Fatalf("re-upload id %q, want %q", id2, id)
	}
	var answers [2][]byte
	for i := range answers {
		status, resp := g.do(i, "POST", "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, id)))
		if status != http.StatusOK {
			t.Fatalf("fit via replica %d: status %d, body %s", i, status, resp)
		}
		answers[i] = resp
	}
	if !bytes.Equal(answers[0], answers[1]) {
		t.Errorf("fit answers diverge across replicas:\n%s\nvs\n%s", answers[0], answers[1])
	}
}

// TestHintedHandoff: a write accepted while a peer owner is down is
// journaled as a hint and redelivered when the peer returns — the
// client never sees the outage, and the returned peer converges to a
// byte-identical copy.
func TestHintedHandoff(t *testing.T) {
	g := newGroup(t, 2, 2, Config{DataDir: t.TempDir()})
	g.kill(1)

	// The write succeeds against the surviving owner alone.
	body := synthCampaign(t, 1)
	id := g.uploadSynth(0, body)
	hr := g.health(0)
	if hr.Hints != 1 {
		t.Fatalf("healthz hints = %d after writing past a dead peer, want 1", hr.Hints)
	}
	// The dead peer's breaker is open (or about to be): the upload
	// burned through its retries against a closed port.
	if len(hr.Peers) != 1 || hr.Peers[0].Failures == 0 {
		t.Errorf("healthz peers = %+v, want replica 1 with recorded failures", hr.Peers)
	}

	// The peer returns; the drainer redelivers and the queue empties.
	g.restart(1)
	g.waitConverged(15 * time.Second)
	if got := g.health(1).Campaigns; got != 1 {
		t.Fatalf("restarted replica holds %d campaigns after handoff, want 1", got)
	}

	// Both copies answer identically — replica 1 from its own store.
	var answers [2][]byte
	for i := range answers {
		status, resp := g.do(i, "GET", "/v1/predict?id="+id+"&cores=4,16", nil)
		if status != http.StatusOK {
			t.Fatalf("predict via replica %d: status %d, body %s", i, status, resp)
		}
		answers[i] = resp
	}
	if !bytes.Equal(answers[0], answers[1]) {
		t.Errorf("predict answers diverge after handoff:\n%s\nvs\n%s", answers[0], answers[1])
	}
}

// TestHintsSurviveRestart: undelivered hints are journaled on disk —
// a coordinator that shuts down with a backlog still owes (and
// delivers) it after its own restart.
func TestHintsSurviveRestart(t *testing.T) {
	g := newGroup(t, 2, 2, Config{DataDir: t.TempDir()})
	g.kill(1)
	g.uploadSynth(0, synthCampaign(t, 2))
	if got := g.health(0).Hints; got != 1 {
		t.Fatalf("hints = %d, want 1", got)
	}

	// Restart the coordinator: the journal replays the pending hint.
	g.kill(0)
	g.restart(0)
	if got := g.health(0).Hints; got != 1 {
		t.Fatalf("hints after coordinator restart = %d, want the replayed 1", got)
	}

	// And it still drains once the peer returns.
	g.restart(1)
	g.waitConverged(15 * time.Second)
	if got := g.health(1).Campaigns; got != 1 {
		t.Errorf("peer holds %d campaigns after replayed handoff, want 1", got)
	}
}

// TestReadRepair: an owner that lost its data dir repairs itself from
// the other owners on first read — the copy count converges back to k
// without any operator action.
func TestReadRepair(t *testing.T) {
	dir := t.TempDir()
	g := newGroup(t, 2, 2, Config{DataDir: dir})
	body := synthCampaign(t, 3)
	id := g.uploadSynth(0, body)
	if got := g.health(1).Campaigns; got != 1 {
		t.Fatalf("replica 1 holds %d campaigns before the wipe, want 1", got)
	}
	_, canonical := g.do(0, "GET", "/v1/predict?id="+id+"&cores=8", nil)

	// Replica 1 loses everything and comes back empty.
	g.kill(1)
	if err := os.RemoveAll(filepath.Join(dir, "replica1")); err != nil {
		t.Fatal(err)
	}
	g.restart(1)
	if got := g.health(1).Campaigns; got != 0 {
		t.Fatalf("wiped replica holds %d campaigns, want 0", got)
	}

	// A read via the wiped owner repairs the copy and answers the
	// exact bytes the healthy owner serves.
	status, resp := g.do(1, "GET", "/v1/predict?id="+id+"&cores=8", nil)
	if status != http.StatusOK {
		t.Fatalf("predict via wiped replica: status %d, body %s", status, resp)
	}
	if !bytes.Equal(resp, canonical) {
		t.Errorf("repaired predict differs:\n%s\nvs\n%s", resp, canonical)
	}
	if got := g.health(1).Campaigns; got != 1 {
		t.Errorf("wiped replica holds %d campaigns after read-repair, want 1", got)
	}
}

// TestGracefulShutdown: once Shutdown begins the handler refuses new
// work with a 503, Close is idempotent, and the refusal never touches
// the (already closed) store.
func TestGracefulShutdown(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	req, _ := http.NewRequest("GET", "/v1/healthz", nil)
	rec := newRecorder()
	h.ServeHTTP(rec, req)
	if rec.status != http.StatusServiceUnavailable {
		t.Fatalf("request after shutdown: status %d, want 503", rec.status)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.body.Bytes(), &er); err != nil || er.Status != 503 {
		t.Errorf("shutdown refusal body %s, want the uniform JSON error", rec.body.Bytes())
	}
}

// newRecorder is a minimal ResponseWriter (httptest.NewRecorder
// without the import churn — the test only needs status and body).
type recorder struct {
	status int
	header http.Header
	body   bytes.Buffer
}

func newRecorder() *recorder                    { return &recorder{status: 200, header: http.Header{}} }
func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(s int)           { r.status = s }
func (r *recorder) Write(b []byte) (int, error) { return r.body.Write(b) }

// TestReplicaCrashDuringLoad is the in-process chaos drill: a
// 3-replica k=2 group takes a mixed upload/fit/predict workload while
// one replica is torn down mid-run and restarted later. The gate is
// the ISSUE's: zero client-visible failures after retries, zero lost
// campaigns, and a converged group whose members answer every id
// byte-identically. Run under -race in CI.
func TestReplicaCrashDuringLoad(t *testing.T) {
	const (
		replicas  = 3
		campaigns = 6
		workers   = 4
		opsEach   = 36
	)
	g := newGroup(t, replicas, 2, Config{DataDir: t.TempDir()})

	bodies := make([][]byte, campaigns)
	ids := make([]string, campaigns)
	for i := range bodies {
		bodies[i] = synthCampaign(t, 100+i)
		ids[i] = g.uploadSynth(i%replicas, bodies[i])
	}

	// One op with client-side retry across targets: transport errors
	// and 5xx/503 rotate to the next replica; 422 (a fit every family
	// rejects) is a valid, deterministic answer; 404 for an id we hold
	// a 200 ack for would be a lost write and fails the run.
	client := &http.Client{Timeout: 30 * time.Second}
	doOp := func(start int, method, path string, body []byte) error {
		var lastErr error
		for attempt := 0; attempt < 12; attempt++ {
			if attempt > 0 {
				time.Sleep(50 * time.Millisecond)
			}
			var rd io.Reader
			if body != nil {
				rd = bytes.NewReader(body)
			}
			req, err := http.NewRequest(method, g.peers[(start+attempt)%replicas]+path, rd)
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				lastErr = err
				continue
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK,
				resp.StatusCode == http.StatusUnprocessableEntity:
				return nil
			case resp.StatusCode >= http.StatusInternalServerError:
				lastErr = fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, data)
				continue
			default:
				return fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, data)
			}
		}
		return fmt.Errorf("retries exhausted: %w", lastErr)
	}

	var (
		done     atomic.Int64
		mu       sync.Mutex
		failures []error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for op := 0; op < opsEach; op++ {
				i := (w + op) % campaigns
				var err error
				switch op % 3 {
				case 0:
					err = doOp(w+op, "POST", "/v1/campaigns", bodies[i])
				case 1:
					err = doOp(w+op, "POST", "/v1/fit", []byte(fmt.Sprintf(`{"id":%q}`, ids[i])))
				default:
					err = doOp(w+op, "GET", "/v1/predict?id="+ids[i]+"&cores=4,16&quantile=0.5", nil)
				}
				if err != nil {
					mu.Lock()
					failures = append(failures, fmt.Errorf("worker %d op %d: %w", w, op, err))
					mu.Unlock()
				}
				done.Add(1)
			}
		}(w)
	}

	// The chaos: replica 1 dies a third of the way through the load
	// and comes back two thirds in, on the same address and data dir.
	total := int64(workers * opsEach)
	waitOps := func(n int64) {
		for done.Load() < n {
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitOps(total / 3)
	g.kill(1)
	t.Logf("killed replica 1 after %d ops", done.Load())
	waitOps(2 * total / 3)
	g.restart(1)
	t.Logf("restarted replica 1 after %d ops", done.Load())
	wg.Wait()

	for _, err := range failures {
		t.Error(err)
	}
	if len(failures) > 0 {
		t.Fatalf("%d of %d requests failed after retries", len(failures), total)
	}

	// Convergence: hint queues drain, every campaign ends up on
	// exactly k owners, and all three replicas answer every id with
	// the same bytes (the restarted one read-repairing if it must).
	g.waitConverged(30 * time.Second)
	copies := 0
	for i := 0; i < replicas; i++ {
		copies += g.health(i).Campaigns
	}
	if want := campaigns * 2; copies != want {
		t.Errorf("group holds %d campaign copies, want %d (k=2 × %d campaigns)", copies, want, campaigns)
	}
	for _, id := range ids {
		var first []byte
		for i := 0; i < replicas; i++ {
			status, resp := g.do(i, "GET", "/v1/predict?id="+id+"&cores=4,16&quantile=0.5", nil)
			if status != http.StatusOK && status != http.StatusUnprocessableEntity {
				t.Fatalf("post-chaos predict %s via replica %d: status %d, body %s", id, i, status, resp)
			}
			if first == nil {
				first = resp
			} else if !bytes.Equal(first, resp) {
				t.Errorf("replica %d answers %s differently:\n%s\nvs\n%s", i, id, resp, first)
			}
		}
	}
}
