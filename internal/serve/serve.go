// Package serve is the HTTP prediction daemon behind cmd/lvserve: the
// paper's collect → fit → predict pipeline (Truchet, Richoux,
// Codognet — ICPP 2013) exposed over the wire through the public
// lasvegas API.
//
// Endpoints:
//
//	POST /v1/campaigns   upload one campaign (schema ≤ 3), an array of
//	                     campaign shards to merge, a
//	                     {"collect": {...}} request the server runs
//	                     itself, a {"merge_ids": [...]} request pooling
//	                     already-stored campaigns, or — with
//	                     Content-Type: application/x-ndjson — a streamed
//	                     NDJSON campaign folded record-by-record into a
//	                     quantile sketch (O(1) memory in the stream
//	                     length; see the lasvegas stream wire format);
//	                     returns the content-derived campaign id
//	POST /v1/fit         {"id": ...} → ranked candidate table with KS
//	                     (and Anderson–Darling) verdicts plus the best
//	                     accepted model
//	GET  /v1/predict     ?id=...&cores=16,32&quantile=0.5,0.9&target=8 →
//	                     speed-up / min-expectation / quantile /
//	                     cores-for-speedup queries against the cached
//	                     model (fitting it on first use)
//	GET  /v1/policy      ?id=... → the ranked restart-policy table:
//	                     no-restart vs fixed-cutoff vs Luby vs
//	                     fitted-optimal, priced in closed form under
//	                     the fitted law, each row validated by a
//	                     seeded campaign replay and a bootstrap CI on
//	                     the plug-in law; the rendered body caches on
//	                     the entry, so repeat reads are byte-identical
//	                     and free
//	GET  /v1/healthz     liveness plus store stats: campaigns, bytes,
//	                     replica and shard range, snapshot-log replay
//	                     counters
//
// # Durability
//
// The campaign store behind the daemon is an internal/store.Store.
// By default it is the in-memory FIFO-bounded cache (Config.DataDir
// empty); pointing DataDir at a directory switches to the durable
// store, which appends every accepted campaign's canonical JSON to an
// fsync'd snapshot log and replays it on boot — a restarted daemon
// serves the same corpus, and (fits being deterministic) byte-
// identical fit and predict responses, without any re-upload.
//
// # Replication
//
// Several replicas can serve one corpus: give each the same
// Config.Peers list and its own Config.ReplicaIndex out of
// Config.ReplicaCount. Campaign ids are consistent-hashed onto a
// preference list of Config.ReplicationFactor replicas
// (store.Owners: the owning hash range plus the next k-1 ranges);
// writes fan out to every owner — acknowledged once Config.WriteQuorum
// owners have fsync'd (default 1: the local fsync, peer copies
// best-effort), with failed peer writes queued in a hinted-handoff
// journal and redelivered when the peer returns — and reads are
// served by the first live owner, with read-repair on a local miss
// (ids are content hashes, so "diverged" can only mean "missing" and
// repair is a re-send) and, with Config.ReadQuorum ≥ 2, confirmation
// (push-repairing as needed) of R owner copies before the answer.
// With k ≥ 2 the group survives the loss of any single replica with
// no data loss and no user-visible downtime.
//
// Three convergence mechanisms stack, each covering the previous
// one's blind spot: hinted handoff redelivers writes a down peer
// missed; read-repair heals any copy a read happens to find missing;
// and active anti-entropy (see antientropy.go) periodically exchanges
// per-hash-range digests between the owners of each range and pulls
// what's missing — so a replica whose hint log was destroyed (which
// OpenHints now quarantines rather than refusing to boot on)
// converges in bounded rounds with no client traffic at all.
// GET /v1/internal/digest serves the digests, GET
// /v1/internal/fit-cache serves finished fit outcomes so the k owners
// of a hot campaign burn at most one fit between them (see
// fitshare.go), and /v1/healthz reports the quorum knobs, exchanger
// progress and any hint-log quarantine alongside the breaker states.
//
// Peer traffic flows through a dedicated client rather than a bare
// http.Client: per-endpoint timeouts (Config.PeerTimeout for
// fit/predict forwards, replication writes and repair fetches;
// Config.PeerCollectTimeout for campaign-upload forwards), bounded
// retries with jittered exponential backoff on transport errors, and
// a per-peer circuit breaker (tripped after consecutive failures,
// half-open probes after a cooldown) so a dead peer costs one fast
// failure instead of a pinned goroutine. GET /v1/healthz exposes each
// peer's breaker state and the hint-queue depth.
//
// Censored campaigns — the cheap, budgeted kind `lvseq -maxiter`
// produces — are first-class: the daemon fits them with the
// censored-campaign estimators (Kaplan–Meier plug-in law, censored
// maximum likelihood over the supported families, candidates ranked
// by censored log-likelihood), and the served model JSON records the
// censoring fraction and estimator kind. Only campaigns whose runs
// are all censored remain unfittable.
//
// The public package's typed errors map onto status codes —
// ErrSchema, ErrEmptyCampaign and ErrStream 400, ErrUnknownProblem
// (and unknown campaign ids) 404, ErrMergeMismatch 409 (merge
// conflicts only), a body over MaxBodyBytes (or a stream over
// MaxStreamBytes) 413, ErrNoAcceptableFit, ErrCensored (all-censored
// campaigns) and ErrNoRawRuns 422 — so clients can program against
// failure modes without parsing messages. Campaign ids are content hashes of the canonical campaign
// JSON and every response is rendered deterministically, so a
// fixed-seed campaign produces byte-identical fit and predict
// responses across daemon restarts.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/url"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lasvegas"
	"lasvegas/internal/obs"
	"lasvegas/internal/store"
)

// defaultWorkers sizes the fit/collect pool when Config.Workers is 0.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Config configures a Server. The zero value serves the paper's
// defaults: DefaultFamilies at α = 0.05, GOMAXPROCS-bounded fitting
// and collection, 8 MiB request bodies, 1024 cached campaigns.
type Config struct {
	// Families are the candidate distribution families /v1/fit ranks
	// (default lasvegas.DefaultFamilies for complete campaigns and
	// lasvegas.CensoredFamilies for censored ones; setting Families
	// explicitly pins both paths to this list, with members lacking a
	// censored estimator reported as failed candidates on censored
	// fits).
	Families []lasvegas.Family
	// Alpha is the KS significance level (default 0.05).
	Alpha float64
	// Workers bounds concurrent fit and collect jobs
	// (default 0 = GOMAXPROCS via the lasvegas defaults).
	Workers int
	// MaxBodyBytes caps buffered request bodies (default 8 MiB).
	// NDJSON campaign streams are exempt — they are never buffered —
	// and capped by MaxStreamBytes instead.
	MaxBodyBytes int64
	// MaxStreamBytes caps one NDJSON campaign stream (default 1 GiB).
	// The cap bounds wire volume, not memory: a stream is folded into
	// a quantile sketch record by record, so server memory stays
	// O(k·log(n/k)) whatever the stream length.
	MaxStreamBytes int64
	// SketchK is the quantile-sketch capacity streamed campaigns are
	// folded at (default 0 = lasvegas.DefaultSketchK). Larger k keeps
	// more of the sample exactly — streams of at most k runs are
	// lossless — at rank error ≈ log2(n/k)/k beyond that.
	SketchK int
	// MaxCampaigns caps the in-memory store; the oldest campaign is
	// evicted first (default 1024).
	MaxCampaigns int
	// MaxCollectRuns caps the runs of one server-side collect request
	// (default 10000), keeping a single request from monopolizing the
	// daemon.
	MaxCollectRuns int
	// DataDir switches the campaign store from the in-memory cache to
	// the durable snapshot-log store rooted at this directory: every
	// accepted campaign is fsync'd before it is acknowledged and
	// replayed on the next boot. Empty (the default) keeps the
	// process-local store.
	DataDir string
	// ReplicaIndex / ReplicaCount place this daemon in a replica
	// group: the store's consistent hash assigns each campaign id to
	// exactly one of ReplicaCount replicas, and this one owns index
	// ReplicaIndex. The default (count ≤ 1) is a single instance
	// owning everything.
	ReplicaIndex int
	ReplicaCount int
	// Peers lists every replica's base URL ("http://host:port"),
	// indexed by replica; requests for campaign ids this replica does
	// not own are proxied to Peers[owner]. Required (with non-empty
	// foreign entries) when ReplicaCount > 1; the entry at
	// ReplicaIndex is never dialed and may be empty.
	Peers []string
	// ReplicationFactor is k, the number of replicas on each
	// campaign's preference list (store.Owners): every write lands on
	// all k owners, every read is served by the first live one, so
	// k ≥ 2 makes the group survive any single replica's death with
	// no data loss. Default 1 (each id has exactly one owner); must
	// not exceed ReplicaCount.
	ReplicationFactor int
	// PeerTimeout bounds one peer call on the short endpoints —
	// /v1/fit and /v1/predict forwards, replication writes and
	// read-repair fetches (default 15s).
	PeerTimeout time.Duration
	// PeerCollectTimeout bounds one forwarded /v1/campaigns upload,
	// whose bodies (merged shard sets, server-side collections) can
	// be orders of magnitude larger than a prediction query
	// (default 2m).
	PeerCollectTimeout time.Duration
	// WriteQuorum is W: how many owner fsyncs a write needs before it
	// is acknowledged (default 1 — ack after the local fsync, peer
	// copies best-effort with hints). With W ≥ 2 an upload that
	// reaches fewer than W owners fails loudly with 503 instead of
	// silently degrading — the accepted copies stay durable and
	// hinted, so a retry after the peer returns succeeds. Must not
	// exceed ReplicationFactor.
	WriteQuorum int
	// ReadQuorum is R: how many owners must hold a verified copy of a
	// campaign before a fit/predict on it is answered (default 1).
	// Owners that are alive but missing the id are push-repaired and
	// re-checked on the spot; fewer than R confirmable owners is a
	// 503. R+W > ReplicationFactor gives read-your-writes through any
	// owner. Must not exceed ReplicationFactor.
	ReadQuorum int
	// AntiEntropyInterval is the pause between digest-exchange rounds
	// of the background anti-entropy loop (default 0 = 15s; negative
	// disables). Each round compares per-hash-range digests with the
	// other owners of every owned range and pulls campaigns this
	// replica is missing, so a replica that lost hints still
	// converges without waiting for a read. The loop only runs when
	// both ReplicaCount and ReplicationFactor are ≥ 2.
	AntiEntropyInterval time.Duration
	// Logger receives the daemon's structured logs: the per-request
	// access log (with trace ID), peer breaker transitions, hint
	// enqueue/drain events, anti-entropy rounds, fit delegations and
	// shutdown. nil discards — the logging path still runs (so tests
	// exercise exactly what production does), it just writes nowhere.
	// cmd/lvserve passes a real handler tagged with the replica slot.
	Logger *slog.Logger
}

// Server is the prediction daemon: a campaign/model store (in-memory
// or durable, possibly one shard of a replica group) plus the HTTP
// handlers over it. Safe for concurrent use.
type Server struct {
	cfg      Config
	pred     *lasvegas.Predictor
	store    store.Store
	gate     store.Gate // bounds concurrent fit/collect work
	replicas int
	self     int
	repl     int         // replication factor k, clamped to replicas
	peerc    *peerClient // dials peer replicas (breaker + retry/backoff)
	hints    *store.Hints

	writeQ int // write quorum W (1 = ack after the local fsync)
	readQ  int // read quorum R (1 = any single owner answers)

	logger *slog.Logger // structured logs (never nil; default discards)
	met    *metrics     // the /v1/metrics registry and its families

	closing   atomic.Bool
	inflight  atomic.Int64  // requests currently inside Handler
	drainKick chan struct{} // nudges the hint drainer after an enqueue
	drainStop chan struct{} // closed by Shutdown
	drainDone chan struct{} // closed when the drainer exits

	aeInterval time.Duration // anti-entropy round pause (0 = loop off)
	aeStop     chan struct{} // closed by Shutdown
	aeDone     chan struct{} // closed when the exchanger exits
	aeRounds   atomic.Int64  // completed digest-exchange rounds
	aePulled   atomic.Int64  // campaigns pulled by anti-entropy

	fitProbe   sync.Mutex // guards fitProbing
	fitProbing map[string]*fitShareCall
}

// New returns a Server with cfg applied over the defaults. The error
// paths are bad replica configuration and an unopenable DataDir.
func New(cfg Config) (*Server, error) {
	if cfg.Alpha <= 0 {
		cfg.Alpha = 0.05
	}
	explicitFamilies := len(cfg.Families) > 0
	if !explicitFamilies {
		cfg.Families = lasvegas.DefaultFamilies()
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxStreamBytes <= 0 {
		cfg.MaxStreamBytes = 1 << 30
	}
	// Validate the sketch capacity at startup — a bad k would otherwise
	// fail every stream upload with a confusing per-request error.
	if _, err := lasvegas.NewSketch(cfg.SketchK); err != nil {
		return nil, fmt.Errorf("serve: sketch capacity: %w", err)
	}
	if cfg.MaxCampaigns <= 0 {
		cfg.MaxCampaigns = 1024
	}
	if cfg.MaxCollectRuns <= 0 {
		cfg.MaxCollectRuns = 10000
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	replicas := cfg.ReplicaCount
	if replicas < 1 {
		replicas = 1
	}
	if cfg.ReplicaIndex < 0 || cfg.ReplicaIndex >= replicas {
		return nil, fmt.Errorf("serve: replica index %d outside [0, %d)", cfg.ReplicaIndex, replicas)
	}
	peers := cfg.Peers
	if replicas > 1 {
		if len(peers) != replicas {
			return nil, fmt.Errorf("serve: %d replicas need %d peer URLs, got %d", replicas, replicas, len(peers))
		}
		peers = append([]string(nil), peers...)
		for i, p := range peers {
			if i == cfg.ReplicaIndex {
				continue // own address, never dialed
			}
			p = strings.TrimSpace(p)
			if p == "" {
				return nil, fmt.Errorf("serve: replica %d has no peer URL", i)
			}
			if !strings.Contains(p, "://") {
				p = "http://" + p
			}
			p = strings.TrimRight(p, "/")
			// Reject unusable peer URLs at startup: a malformed entry
			// would otherwise surface as a confusing per-request error
			// blamed on the client.
			u, err := url.Parse(p)
			if err != nil || u.Scheme == "" || u.Host == "" {
				return nil, fmt.Errorf("serve: replica %d peer URL %q is not a valid base URL", i, peers[i])
			}
			peers[i] = p
		}
	}
	// WithCensoredFit: budgeted campaigns are the cheapest to collect,
	// so the daemon fits them with the survival estimators instead of
	// bouncing them with a 409 (which now remains for merge mismatches
	// only). WithFamilies is passed only for an explicit Config choice
	// so the censored path keeps its own default candidate set.
	opts := []lasvegas.Option{
		lasvegas.WithAlpha(cfg.Alpha),
		lasvegas.WithCensoredFit(true),
	}
	if explicitFamilies {
		opts = append(opts, lasvegas.WithFamilies(cfg.Families...))
	}
	repl := cfg.ReplicationFactor
	if repl < 1 {
		repl = 1
	}
	if repl > replicas {
		return nil, fmt.Errorf("serve: replication factor %d exceeds the %d-replica group", repl, replicas)
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 15 * time.Second
	}
	if cfg.PeerCollectTimeout <= 0 {
		cfg.PeerCollectTimeout = 2 * time.Minute
	}
	writeQ, readQ := cfg.WriteQuorum, cfg.ReadQuorum
	if writeQ < 1 {
		writeQ = 1
	}
	if readQ < 1 {
		readQ = 1
	}
	// A quorum above k could never be met — every write (or read)
	// would fail, which is a configuration mistake, not a policy.
	if writeQ > repl {
		return nil, fmt.Errorf("serve: write quorum %d exceeds replication factor %d", writeQ, repl)
	}
	if readQ > repl {
		return nil, fmt.Errorf("serve: read quorum %d exceeds replication factor %d", readQ, repl)
	}
	aeInterval := cfg.AntiEntropyInterval
	if aeInterval == 0 {
		aeInterval = defaultAntiEntropyInterval
	}
	if aeInterval < 0 {
		aeInterval = 0 // explicitly disabled
	}
	logger := cfg.Logger
	if logger == nil {
		// Discard rather than slog.Default(): the logging path runs
		// identically, but an embedding test stays quiet unless it
		// injects a handler on purpose.
		logger = slog.New(slog.DiscardHandler)
	}
	met := newMetrics()
	var st store.Store
	var hints *store.Hints
	if cfg.DataDir != "" {
		var err error
		if st, err = store.Open(cfg.DataDir, cfg.MaxCampaigns); err != nil {
			return nil, err
		}
		// The hint journal shares the data dir: a replica that crashes
		// with undelivered hints still owes them after a restart. The
		// logger rides along so a quarantined log is attributed to this
		// replica in the fleet's merged artifacts.
		if hints, err = store.OpenHints(filepath.Join(cfg.DataDir, "hints.log"), logger); err != nil {
			st.Close()
			return nil, err
		}
	} else {
		st = store.NewMemory(cfg.MaxCampaigns)
		hints = store.NewHints()
	}
	s := &Server{
		cfg:        cfg,
		pred:       lasvegas.New(opts...),
		store:      st,
		gate:       store.NewGate(workers),
		replicas:   replicas,
		self:       cfg.ReplicaIndex,
		repl:       repl,
		peerc:      newPeerClient(peers, met, logger),
		hints:      hints,
		writeQ:     writeQ,
		readQ:      readQ,
		logger:     logger,
		met:        met,
		fitProbing: make(map[string]*fitShareCall),
	}
	s.registerGauges()
	if replicas > 1 {
		s.drainKick = make(chan struct{}, 1)
		s.drainStop = make(chan struct{})
		s.drainDone = make(chan struct{})
		go s.drainHints()
	}
	// Anti-entropy only means something when ranges have multiple
	// owners to compare against.
	if replicas > 1 && repl > 1 && aeInterval > 0 {
		s.aeInterval = aeInterval
		s.aeStop = make(chan struct{})
		s.aeDone = make(chan struct{})
		go s.antiEntropyLoop()
	}
	return s, nil
}

// Close shuts the Server down with a default 5-second deadline; see
// Shutdown.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// Shutdown gracefully stops the Server: new requests are refused
// (503), in-flight ones — including proxied peer requests — are
// drained, a final delivery of the hint queue is attempted, and the
// store is fsync'd and closed, all bounded by ctx. Undelivered hints
// stay in the durable journal for the next boot. Idempotent; the
// handlers must not be used afterwards. (The HTTP listener itself is
// the caller's: stop accepting with http.Server.Shutdown first.)
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closing.Swap(true) {
		return nil
	}
	if s.aeStop != nil {
		close(s.aeStop)
		<-s.aeDone
	}
	if s.drainStop != nil {
		close(s.drainStop)
		<-s.drainDone
	}
	// Drain in-flight handlers within the deadline.
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: shutdown: %d requests still in flight: %w", s.inflight.Load(), ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
	// One last chance to hand queued hints to returned peers; whatever
	// fails stays journaled.
	if s.hints.Depth() > 0 {
		s.flushHints(ctx)
	}
	herr := s.hints.Close()
	serr := s.store.Close() // fsyncs the snapshot log
	s.logger.Info("shutdown complete", "hints_remaining", s.hints.Depth())
	return errors.Join(serr, herr)
}

// Handler returns the daemon's http.Handler. The wrapper counts
// in-flight requests so Shutdown can drain them, refuses new work once
// shutdown has begun, and carries the telemetry spine: every request
// gets a trace ID (the caller's Lvserve-Trace-Id if it sent one, a
// fresh one otherwise) that rides the request context onto every peer
// hop and comes back on the response header, plus an access-log line
// and a requests/latency observation per request.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleCampaigns)
	mux.HandleFunc("POST /v1/fit", s.handleFit)
	mux.HandleFunc("GET /v1/predict", s.handlePredict)
	mux.HandleFunc("GET /v1/policy", s.handlePolicy)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/internal/campaign", s.handleInternalCampaign)
	mux.HandleFunc("GET /v1/internal/digest", s.handleInternalDigest)
	mux.HandleFunc("GET /v1/internal/fit-cache", s.handleInternalFitCache)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		trace := r.Header.Get(obs.TraceHeader)
		if trace == "" {
			trace = obs.NewTraceID()
		}
		w.Header().Set(obs.TraceHeader, trace)
		r = r.WithContext(obs.WithTrace(r.Context(), trace))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		route := routeLabel(r.URL.Path)
		defer func() {
			d := time.Since(start)
			s.met.observeRequest(route, rec.status, d)
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Int64("bytes", rec.bytes),
				slog.Duration("duration", d),
				slog.String("trace", trace),
				slog.String("remote", r.RemoteAddr))
		}()
		if s.closing.Load() {
			status := http.StatusServiceUnavailable // 503
			s.writeJSON(rec, status, errorResponse{Error: "serve: shutting down", Status: status})
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		mux.ServeHTTP(rec, r)
	})
}

// statusRecorder captures the status and body size a handler wrote,
// for the access log and the requests counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// --- wire types ---------------------------------------------------

// collectRequest is the server-side collection form of
// POST /v1/campaigns.
type collectRequest struct {
	Problem string `json:"problem"`
	Size    int    `json:"size,omitempty"`
	Runs    int    `json:"runs,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	Budget  int64  `json:"budget,omitempty"`
}

// campaignResponse acknowledges a stored campaign. Runs counts every
// run the campaign carries — raw observations plus the ones folded
// into its sketch; Sketched marks campaigns holding (part of) their
// sample as a quantile sketch, e.g. NDJSON stream uploads.
type campaignResponse struct {
	ID       string `json:"id"`
	Problem  string `json:"problem"`
	Size     int    `json:"size,omitempty"`
	Runs     int    `json:"runs"`
	Sketched bool   `json:"sketched,omitempty"`
	Censored int    `json:"censored,omitempty"`
	Budget   int64  `json:"budget,omitempty"`
	Merged   int    `json:"merged_shards,omitempty"`
}

// candidateResponse is one row of the ranked §6 model-selection table.
type candidateResponse struct {
	Family   lasvegas.Family `json:"family"`
	Law      string          `json:"law,omitempty"`
	Accepted bool            `json:"accepted"`
	KS       *gofResponse    `json:"ks,omitempty"`
	AD       *gofResponse    `json:"ad,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// gofResponse is a goodness-of-fit verdict on the wire.
type gofResponse struct {
	Stat   float64 `json:"stat"`
	PValue float64 `json:"p_value"`
	N      int     `json:"n"`
}

// fitResponse answers POST /v1/fit.
type fitResponse struct {
	ID         string              `json:"id"`
	Problem    string              `json:"problem"`
	Best       *lasvegas.Model     `json:"best"`
	Candidates []candidateResponse `json:"candidates"`
}

// speedupResponse is one predicted core count.
type speedupResponse struct {
	Cores          int     `json:"cores"`
	Speedup        float64 `json:"speedup"`
	MinExpectation float64 `json:"min_expectation"`
	Efficiency     float64 `json:"efficiency"`
}

// quantileResponse is one predicted sequential-runtime quantile.
type quantileResponse struct {
	P     float64 `json:"p"`
	Value float64 `json:"value"`
}

// coresResponse answers a cores-for-speedup query.
type coresResponse struct {
	Target float64 `json:"target"`
	Cores  int     `json:"cores"`
}

// predictResponse answers GET /v1/predict.
type predictResponse struct {
	ID              string             `json:"id"`
	Problem         string             `json:"problem"`
	Model           *lasvegas.Model    `json:"model"`
	Speedups        []speedupResponse  `json:"speedups,omitempty"`
	Quantiles       []quantileResponse `json:"quantiles,omitempty"`
	CoresForSpeedup *coresResponse     `json:"cores_for_speedup,omitempty"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// healthResponse answers GET /v1/healthz: liveness plus the stats of
// this replica's own store (peer shards report their own).
type healthResponse struct {
	Status    string `json:"status"`
	Campaigns int    `json:"campaigns"`
	// Bytes is the stored canonical-campaign volume; for a durable
	// store, the snapshot-log size on disk.
	Bytes int64 `json:"bytes"`
	// Durable reports whether the store survives restarts (DataDir set).
	Durable bool `json:"durable"`
	// Replica is this daemon's "index/count" slot in the replica group
	// ("0/1" for a single instance).
	Replica string `json:"replica"`
	// ShardRange is the inclusive hex range of 64-bit campaign-id
	// hashes this replica owns.
	ShardRange string `json:"shard_range"`
	// Replayed counts campaigns recovered from the snapshot log at
	// boot; ReplayMillis is how long the recovery took.
	Replayed     int     `json:"replayed"`
	ReplayMillis float64 `json:"replay_ms"`
	// ReplicationFactor is k: how many replicas hold each campaign.
	ReplicationFactor int `json:"replication_factor"`
	// Hints is the hinted-handoff backlog: replicated writes queued
	// for down peers, awaiting redelivery. 0 means the group has
	// converged.
	Hints int `json:"hints"`
	// HintsQuarantined flags a corrupt hint log set aside at boot:
	// the replica is serving, but hints it had promised may be lost
	// until anti-entropy reconverges them.
	HintsQuarantined bool `json:"hints_quarantined,omitempty"`
	// Quorum reports the write/read quorum knobs (W/R out of k).
	Quorum quorumHealth `json:"quorum"`
	// AntiEntropy reports the digest exchanger's progress; absent
	// when the exchanger is not running (single replica, k = 1, or
	// a negative AntiEntropyInterval).
	AntiEntropy *antiEntropyHealth `json:"anti_entropy,omitempty"`
	// Peers reports each foreign peer's circuit-breaker state, so an
	// operator can see which replicas this one considers dead.
	Peers []peerHealth `json:"peers,omitempty"`
}

// quorumHealth is the W/R quorum configuration on the healthz wire.
type quorumHealth struct {
	Write int `json:"write"`
	Read  int `json:"read"`
}

// antiEntropyHealth is the digest exchanger's healthz snapshot.
type antiEntropyHealth struct {
	// IntervalMillis is the pause between digest-exchange rounds.
	IntervalMillis float64 `json:"interval_ms"`
	// Rounds counts completed exchange rounds since boot.
	Rounds int64 `json:"rounds"`
	// Pulled counts campaigns this replica pulled from peers via
	// anti-entropy (repairs it would otherwise have waited on a read
	// or a hint for).
	Pulled int64 `json:"pulled"`
}

// peerHealth is one peer's circuit-breaker state on the healthz wire.
type peerHealth struct {
	Replica int `json:"replica"`
	// State is "closed" (healthy), "open" (dead, not dialed) or
	// "half-open" (probing).
	State string `json:"state"`
	// Failures counts consecutive transport failures.
	Failures int `json:"failures"`
}

// --- handlers -----------------------------------------------------

// handleCampaigns stores a campaign: an uploaded campaign object
// (schema ≤ 3), an array of shards merged server-side, a
// {"collect": ...} request executed by the daemon, a
// {"merge_ids": [...]} request pooling already-stored campaigns, or —
// declared by Content-Type: application/x-ndjson — an NDJSON campaign
// stream folded into a quantile sketch as it arrives.
func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	if isNDJSON(r.Header.Get("Content-Type")) {
		s.handleCampaignStream(w, r)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, fmt.Errorf("serve: reading body: %w", err))
		return
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	// A shard array merges, a {"collect": ...} object collects
	// server-side, a {"merge_ids": [...]} object pools stored
	// campaigns, anything else is a campaign upload (campaigns always
	// carry "iterations", even sketch-backed ones, where it is null; a
	// probe decode keeps a metadata key named "collect" from misrouting
	// an upload).
	var probe struct {
		Collect    json.RawMessage `json:"collect"`
		MergeIDs   []string        `json:"merge_ids"`
		Iterations json.RawMessage `json:"iterations"`
	}
	probed := json.Unmarshal(trimmed, &probe) == nil && probe.Iterations == nil
	var (
		c      *lasvegas.Campaign
		merged int
	)
	switch {
	case len(trimmed) > 0 && trimmed[0] == '[':
		c, merged, err = mergeShards(trimmed)
	case probed && probe.Collect != nil:
		c, err = s.collect(r.Context(), trimmed)
	case probed && probe.MergeIDs != nil:
		c, merged, err = s.mergeByIDs(r.Context(), probe.MergeIDs)
	default:
		c = &lasvegas.Campaign{}
		if err = json.Unmarshal(trimmed, c); err != nil {
			err = fmt.Errorf("serve: campaign upload: %w", err)
		}
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.storeCampaign(w, r, c, merged)
}

// handleCampaignStream is the NDJSON ingest path of /v1/campaigns:
// records are decoded one at a time and folded into a quantile sketch
// of capacity Config.SketchK, so a campaign of millions of runs is
// ingested in O(k·log(n/k)) memory — the server never materializes
// the body. Streams are capped at Config.MaxStreamBytes (a far higher
// bar than MaxBodyBytes, since nothing is buffered), with overflow
// answered 413 like any oversized upload.
func (s *Server) handleCampaignStream(w http.ResponseWriter, r *http.Request) {
	c, err := lasvegas.ReadCampaignNDJSON(http.MaxBytesReader(w, r.Body, s.cfg.MaxStreamBytes), s.cfg.SketchK)
	if err != nil {
		s.writeError(w, fmt.Errorf("serve: campaign stream: %w", err))
		return
	}
	s.storeCampaign(w, r, c, 0)
}

// isNDJSON reports whether a Content-Type declares the NDJSON
// campaign-stream wire format (media-type parameters are ignored).
func isNDJSON(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	switch strings.ToLower(strings.TrimSpace(ct)) {
	case "application/x-ndjson", "application/ndjson", "application/jsonl":
		return true
	}
	return false
}

// storeCampaign encodes a finished campaign and routes the write:
// replication writes store locally, non-owners hand the canonical
// bytes to the first live owner, owners fsync locally and fan out to
// the rest of the preference list. Shared by the buffered and the
// streaming upload paths — routing only ever sees finished campaigns'
// canonical JSON, never request bodies.
func (s *Server) storeCampaign(w http.ResponseWriter, r *http.Request, c *lasvegas.Campaign, merged int) {
	id, canonical, err := store.Encode(c)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := campaignResponse{
		ID:       id,
		Problem:  c.Problem,
		Size:     c.Size,
		Runs:     c.TotalRuns(),
		Sketched: c.HasSketch(),
		Censored: len(c.Censored),
		Budget:   c.Budget,
		Merged:   merged,
	}
	// A replication write from a peer owner (or a hint redelivery):
	// store locally, never fan out or forward again — the sender is
	// the owner coordinating this write.
	if r.Header.Get(replicateHeader) != "" {
		if _, err := s.store.AddEncoded(id, canonical, c); err != nil {
			s.writeError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	// A campaign lives on every replica of its preference list. Merge
	// and collect already ran here, so owners only ever exchange the
	// finished campaign's canonical bytes (never a second solver run).
	owners := store.Owners(id, s.replicas, s.repl)
	if !ownedBy(owners, s.self) {
		// Not an owner: hand the finished bytes to the first live
		// owner, which stores locally and fans out to the rest. This
		// replica still answers with its own response — it alone knows
		// the merge/collect detail — while owner-side failures are
		// relayed verbatim.
		pr, ok := s.forwardToOwners(w, r, owners, canonical, s.cfg.PeerCollectTimeout)
		if !ok {
			return
		}
		defer pr.Body.Close()
		if pr.StatusCode != http.StatusOK {
			s.relay(w, pr)
			return
		}
		io.Copy(io.Discard, pr.Body)
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	// This replica owns the id: the write is acknowledged once W
	// owners (the local store always being one) have fsync'd it.
	// With the default W = 1 peer copies are best-effort — any peer
	// that can't take its copy right now gets a durable hint instead,
	// so the ack never waits on a dead replica and the copy is never
	// forgotten. With W ≥ 2 a write that lands on fewer than W owners
	// fails loudly (503): the accepted copies are still durable and
	// hinted, so the client may retry once the group heals, but it is
	// never told "replicated" when it wasn't.
	if _, err := s.store.AddEncoded(id, canonical, c); err != nil {
		s.writeError(w, err)
		return
	}
	acks := 1 + s.replicate(r.Context(), owners, id, canonical)
	if acks < s.writeQ {
		s.met.quorumShortfall.With("write").Inc()
		s.logger.Warn("write quorum shortfall",
			"id", id, "acks", acks, "want", s.writeQ, "trace", obs.Trace(r.Context()))
		s.writeError(w, fmt.Errorf("%w: %d/%d owner fsyncs for %s (the accepted copies are durable and hinted for redelivery)",
			errWriteQuorum, acks, s.writeQ, id))
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// ownedBy reports whether replica self is on the preference list.
func ownedBy(owners []int, self int) bool {
	for _, o := range owners {
		if o == self {
			return true
		}
	}
	return false
}

// replicate sends a just-accepted write to every other owner on the
// preference list, journaling a hint for each peer that fails — the
// write is already locally durable, so a failed peer costs a hint,
// never the upload. It reports how many peers acknowledged, which is
// what the write-quorum check counts.
func (s *Server) replicate(ctx context.Context, owners []int, id string, canonical []byte) (peerAcks int) {
	for _, o := range owners {
		if o == s.self {
			continue
		}
		if err := s.sendReplicate(ctx, o, canonical); err != nil {
			// Enqueue can only fail on a broken hint log; the write is
			// safe locally either way, so replication degrades to
			// read-repair rather than failing the upload.
			s.hints.Enqueue(o, id, canonical)
			s.met.hintsEnqueued.Inc()
			s.logger.Warn("replication write hinted",
				"peer", o, "id", id, "error", err, "trace", obs.Trace(ctx))
			s.kickDrain()
			continue
		}
		peerAcks++
	}
	return peerAcks
}

// sendReplicate delivers one replication write (marked so the
// receiver stores it without fanning out again) and demands a 200.
func (s *Server) sendReplicate(ctx context.Context, peer int, canonical []byte) error {
	resp, err := s.peerc.do(ctx, peer, s.cfg.PeerTimeout, "POST", "/v1/campaigns", canonical,
		map[string]string{replicateHeader: "1"})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: replica %d: replication write returned %d", peer, resp.StatusCode)
	}
	return nil
}

// mergeShards decodes an array of campaign shards and pools them.
func mergeShards(body []byte) (*lasvegas.Campaign, int, error) {
	var shards []*lasvegas.Campaign
	if err := json.Unmarshal(body, &shards); err != nil {
		return nil, 0, fmt.Errorf("serve: shard array: %w", err)
	}
	c, err := lasvegas.MergeCampaigns(shards...)
	if err != nil {
		return nil, 0, err
	}
	return c, len(shards), nil
}

// mergeByIDs pools already-stored campaigns — typically NDJSON shard
// streams uploaded separately — into one campaign, which then routes
// to its own owners like any upload. Input ids are resolved on this
// replica or read from a peer owner without caching (this replica may
// own none of them). Sketch-backed shards fold their sketches; while
// every shard is still exact the pooled campaign is identical to the
// one a single unsharded stream would have produced.
func (s *Server) mergeByIDs(ctx context.Context, ids []string) (*lasvegas.Campaign, int, error) {
	if len(ids) < 2 {
		return nil, 0, errors.New(`serve: merge request: want {"merge_ids": [two or more campaign ids]}`)
	}
	shards := make([]*lasvegas.Campaign, len(ids))
	for i, id := range ids {
		c, err := s.resolveCampaign(ctx, id)
		if err != nil {
			return nil, 0, fmt.Errorf("serve: merge id %q: %w", id, err)
		}
		shards[i] = c
	}
	c, err := lasvegas.MergeCampaigns(shards...)
	if err != nil {
		return nil, 0, err
	}
	return c, len(ids), nil
}

// resolveCampaign finds one campaign by id: the local store first,
// then — read-only — each peer owner on the id's preference list.
func (s *Server) resolveCampaign(ctx context.Context, id string) (*lasvegas.Campaign, error) {
	e, err := s.store.Get(id)
	if err == nil {
		return e.Campaign, nil
	}
	if s.replicas < 2 || !errors.Is(err, store.ErrUnknownCampaign) {
		return nil, err
	}
	for _, o := range store.Owners(id, s.replicas, s.repl) {
		if o == s.self {
			continue
		}
		if c, _ := s.peekPeer(ctx, o, id); c != nil {
			return c, nil
		}
	}
	return nil, err
}

// collect runs a campaign on the daemon itself, inside the shared
// worker pool so collection and fitting contend for the same bounded
// CPU budget.
func (s *Server) collect(ctx context.Context, body []byte) (*lasvegas.Campaign, error) {
	var req struct {
		Collect *collectRequest `json:"collect"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Collect == nil {
		return nil, errors.New("serve: collect request: invalid body")
	}
	cr := req.Collect
	if cr.Runs <= 0 {
		cr.Runs = 200
	}
	if cr.Runs > s.cfg.MaxCollectRuns {
		return nil, fmt.Errorf("serve: collect request: %d runs exceeds the %d-run cap", cr.Runs, s.cfg.MaxCollectRuns)
	}
	if cr.Seed == 0 {
		cr.Seed = 1
	}
	if err := s.gate.Acquire(ctx); err != nil {
		return nil, err
	}
	defer s.gate.Release()
	p := lasvegas.New(
		lasvegas.WithRuns(cr.Runs),
		lasvegas.WithSeed(cr.Seed),
		lasvegas.WithBudget(cr.Budget),
		lasvegas.WithWorkers(s.cfg.Workers),
	)
	return p.Collect(ctx, lasvegas.Problem(cr.Problem), cr.Size)
}

// handleFit fits the stored campaign (single-flight) and returns the
// ranked candidate table plus the best accepted model.
func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID string `json:"id"`
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err != nil || req.ID == "" {
		s.writeError(w, errors.New(`serve: fit request: want {"id": "<campaign id>"}`))
		return
	}
	owners := store.Owners(req.ID, s.replicas, s.repl)
	if !ownedBy(owners, s.self) {
		s.forwardRead(w, r, owners, body)
		return
	}
	e, err := s.getOrRepair(r.Context(), req.ID, owners)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.quorumRead(r.Context(), e, owners); err != nil {
		s.writeError(w, err)
		return
	}
	// Before burning a fit, see whether another owner already has one
	// to adopt (or whether the primary owner should be the only
	// replica computing it).
	if a := s.sharedFit(r.Context(), r.Header, e, owners); a != nil {
		a.write(w)
		return
	}
	cands, best, err := s.fit(r.Context(), e)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeFitResponse(w, e, cands, best)
}

// writeFitResponse renders a fit outcome exactly as POST /v1/fit
// answers it. The internal fit-cache endpoint shares this renderer,
// which is what makes an adopted peer response byte-identical to a
// locally computed one.
func (s *Server) writeFitResponse(w http.ResponseWriter, e *store.Entry, cands []lasvegas.Candidate, best *lasvegas.Model) {
	resp := fitResponse{ID: e.ID, Problem: e.Campaign.Problem, Best: best}
	for _, c := range cands {
		cr := candidateResponse{Family: c.Family, Law: c.Law}
		if c.Err != nil {
			cr.Error = c.Err.Error()
		} else {
			cr.Accepted = !c.KS.RejectedAt(s.cfg.Alpha)
			cr.KS = &gofResponse{Stat: c.KS.Stat, PValue: c.KS.PValue, N: c.KS.N}
			if c.ADValid {
				cr.AD = &gofResponse{Stat: c.AD.Stat, PValue: c.AD.PValue, N: c.AD.N}
			}
		}
		resp.Candidates = append(resp.Candidates, cr)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handlePredict answers speed-up, min-expectation, quantile and
// cores-for-speedup queries against the cached model, fitting it on
// first use.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id := q.Get("id")
	if id == "" {
		s.writeError(w, errors.New("serve: predict: missing id parameter"))
		return
	}
	owners := store.Owners(id, s.replicas, s.repl)
	if !ownedBy(owners, s.self) {
		s.forwardRead(w, r, owners, nil)
		return
	}
	e, err := s.getOrRepair(r.Context(), id, owners)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.quorumRead(r.Context(), e, owners); err != nil {
		s.writeError(w, err)
		return
	}
	// Predict needs the Model itself (its queries are computed here,
	// not rendered elsewhere), and models don't round-trip the wire —
	// so predict always fits locally. The fit is still single-flight
	// per process, and a /v1/fit on the same id adopts across
	// replicas, so the fleet burns at most one fit per owner.
	_, model, err := s.fit(r.Context(), e)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := predictResponse{ID: e.ID, Problem: e.Campaign.Problem, Model: model}
	if coresS := q.Get("cores"); coresS != "" {
		cores, err := lasvegas.ParseCores(coresS)
		if err != nil {
			s.writeError(w, err)
			return
		}
		for _, n := range cores {
			g, err := model.Speedup(n)
			if err != nil {
				s.writeError(w, err)
				return
			}
			z, err := model.MinExpectation(n)
			if err != nil {
				s.writeError(w, err)
				return
			}
			resp.Speedups = append(resp.Speedups, speedupResponse{
				Cores: n, Speedup: g, MinExpectation: z, Efficiency: g / float64(n),
			})
		}
	}
	if qsS := q.Get("quantile"); qsS != "" {
		for _, part := range strings.Split(qsS, ",") {
			p, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			// p = 1 is excluded: every parametric family here has
			// unbounded upper support, so Quantile(1) is +Inf, which
			// JSON cannot carry.
			if err != nil || math.IsNaN(p) || p < 0 || p >= 1 {
				s.writeError(w, fmt.Errorf("serve: predict: bad quantile %q (want p in [0,1))", part))
				return
			}
			resp.Quantiles = append(resp.Quantiles, quantileResponse{P: p, Value: model.Quantile(p)})
		}
	}
	if targetS := q.Get("target"); targetS != "" {
		target, err := strconv.ParseFloat(targetS, 64)
		if err != nil {
			s.writeError(w, fmt.Errorf("serve: predict: bad target %q", targetS))
			return
		}
		n, err := model.CoresForSpeedup(target)
		if err != nil {
			s.writeError(w, err)
			return
		}
		resp.CoresForSpeedup = &coresResponse{Target: target, Cores: n}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports liveness plus this replica's store stats,
// hint backlog and per-peer breaker states.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.store.Stats()
	lo, hi := store.ShardRange(s.self, s.replicas)
	hr := healthResponse{
		Status:            "ok",
		Campaigns:         st.Campaigns,
		Bytes:             st.Bytes,
		Durable:           s.cfg.DataDir != "",
		Replica:           fmt.Sprintf("%d/%d", s.self, s.replicas),
		ShardRange:        fmt.Sprintf("%016x-%016x", lo, hi),
		Replayed:          st.Replayed,
		ReplayMillis:      float64(st.ReplayDuration) / 1e6,
		ReplicationFactor: s.repl,
		Hints:             s.hints.Depth(),
		HintsQuarantined:  s.hints.Quarantined(),
		Quorum:            quorumHealth{Write: s.writeQ, Read: s.readQ},
		Peers:             s.peerc.Snapshot(s.self),
	}
	if s.aeInterval > 0 {
		hr.AntiEntropy = &antiEntropyHealth{
			IntervalMillis: float64(s.aeInterval) / 1e6,
			Rounds:         s.aeRounds.Load(),
			Pulled:         s.aePulled.Load(),
		}
	}
	s.writeJSON(w, http.StatusOK, hr)
}

// handleInternalCampaign serves this replica's local copy of a
// campaign's canonical bytes — the peer-to-peer fetch behind
// read-repair. Strictly local: a miss is a 404 here even when a peer
// owner has the campaign, because the caller *is* a peer owner
// working through its preference list.
func (s *Server) handleInternalCampaign(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		s.writeError(w, errors.New("serve: internal campaign fetch: missing id parameter"))
		return
	}
	e, err := s.store.Get(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	_, canonical, err := store.Encode(e.Campaign)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(canonical)
}

// --- plumbing -----------------------------------------------------

// fit runs the entry's single-flight fit on the shared worker gate.
func (s *Server) fit(ctx context.Context, e *store.Entry) ([]lasvegas.Candidate, *lasvegas.Model, error) {
	return e.Fit(ctx, s.gate, func(c *lasvegas.Campaign) ([]lasvegas.Candidate, *lasvegas.Model, error) {
		return fitCampaign(s.pred, c)
	})
}

// fitCampaign fits every candidate family once and selects the best
// accepted model — Predictor.Fit's selection rule without fitting the
// sample twice.
func fitCampaign(pred *lasvegas.Predictor, c *lasvegas.Campaign) ([]lasvegas.Candidate, *lasvegas.Model, error) {
	cands, err := pred.FitAll(c)
	if err != nil {
		return nil, nil, err
	}
	for _, cand := range cands {
		if cand.Err == nil && cand.Model != nil && cand.Model.Accepted() {
			return cands, cand.Model, nil
		}
	}
	return nil, nil, fmt.Errorf("%w (%d candidate families)", lasvegas.ErrNoAcceptableFit, len(cands))
}

// forwardHeader marks a request already routed once between replicas;
// a marked request arriving at a non-owner means the replica group
// disagrees on its own shape, and bouncing it again would loop.
const forwardHeader = "Lvserve-Forwarded"

// replicateHeader marks a replication write from a peer owner (or a
// hint redelivery): store locally, never fan out or forward again.
const replicateHeader = "Lvserve-Replicate"

// forwardRead proxies a read to the first live owner on the
// preference list and copies its response back verbatim — so a client
// talking to any replica sees exactly the bytes an owner produced. An
// owner's 404 is held while later owners are tried (a freshly wiped
// replica may answer before repairing itself); any other response is
// authoritative.
func (s *Server) forwardRead(w http.ResponseWriter, r *http.Request, owners []int, body []byte) {
	resp, ok := s.forwardToOwners(w, r, owners, body, s.cfg.PeerTimeout)
	if !ok {
		return
	}
	defer resp.Body.Close()
	s.relay(w, resp)
}

// forwardToOwners sends the request's method and URI, with body, down
// the preference list until an owner answers, and returns that
// response. The routing failure modes are answered directly on w
// (ok = false): a request that was already forwarded once means the
// replica group disagrees on its own shape (421 — never bounce
// again), and a list with no live owner is a 502.
func (s *Server) forwardToOwners(w http.ResponseWriter, r *http.Request, owners []int, body []byte, timeout time.Duration) (resp *http.Response, ok bool) {
	if r.Header.Get(forwardHeader) != "" {
		status := http.StatusMisdirectedRequest // 421
		s.writeJSON(w, status, errorResponse{
			Error:  fmt.Sprintf("serve: routing loop: replica %d/%d does not own this campaign but was forwarded it (peers misconfigured?)", s.self, s.replicas),
			Status: status,
		})
		return nil, false
	}
	hdr := map[string]string{forwardHeader: "1"}
	var notFound *http.Response // an owner's 404, kept as the fallback answer
	var lastErr error
	for _, o := range owners {
		pr, err := s.peerc.do(r.Context(), o, timeout, r.Method, r.URL.RequestURI(), body, hdr)
		if err != nil {
			lastErr = err
			continue
		}
		if pr.StatusCode == http.StatusNotFound && len(owners) > 1 {
			// This owner doesn't have the id — another owner still
			// might (it may have missed the write or lost its data
			// dir). Keep the 404 in case they all agree.
			if notFound != nil {
				notFound.Body.Close()
			}
			notFound = pr
			continue
		}
		if notFound != nil {
			notFound.Body.Close()
		}
		return pr, true
	}
	if notFound != nil {
		return notFound, true
	}
	status := http.StatusBadGateway // 502
	s.writeJSON(w, status, errorResponse{
		Error:  fmt.Sprintf("serve: no live owner among replicas %v: %v", owners, lastErr),
		Status: status,
	})
	return nil, false
}

// getOrRepair looks a campaign up in the local store and, when this
// owner is missing it (a wiped data dir, a write it was down for),
// read-repairs from the other owners on the preference list: ids are
// content hashes, so divergence can only be absence and repair is a
// verified re-send, stored through the normal (fsync'd) add path.
func (s *Server) getOrRepair(ctx context.Context, id string, owners []int) (*store.Entry, error) {
	e, err := s.store.Get(id)
	if err == nil || s.repl < 2 || !errors.Is(err, store.ErrUnknownCampaign) {
		return e, err
	}
	for _, o := range owners {
		if o == s.self {
			continue
		}
		if e := s.fetchFromPeer(ctx, o, id); e != nil {
			return e, nil
		}
	}
	return nil, err
}

// fetchFromPeer retrieves one campaign's canonical bytes from a peer
// owner, verifies they hash to the requested id, and stores them
// locally (the repair). Any failure returns nil — the caller just
// tries the next owner.
func (s *Server) fetchFromPeer(ctx context.Context, peer int, id string) *store.Entry {
	c, canonical := s.peekPeer(ctx, peer, id)
	if c == nil {
		return nil
	}
	e, err := s.store.AddEncoded(id, canonical, c)
	if err != nil {
		return nil
	}
	return e
}

// peekPeer retrieves and verifies one campaign from a peer without
// storing it — the read-only fetch behind merge-by-id, and the first
// half of read-repair. Any failure returns nil.
func (s *Server) peekPeer(ctx context.Context, peer int, id string) (*lasvegas.Campaign, []byte) {
	resp, err := s.peerc.do(ctx, peer, s.cfg.PeerTimeout, "GET",
		"/v1/internal/campaign?id="+url.QueryEscape(id), nil, nil)
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return nil, nil
	}
	c := &lasvegas.Campaign{}
	if err := json.Unmarshal(data, c); err != nil {
		return nil, nil
	}
	rid, canonical, err := store.Encode(c)
	if err != nil || rid != id {
		return nil, nil // a peer serving bytes that don't hash to the id is corrupt
	}
	return c, canonical
}

// kickDrain nudges the hint drainer without blocking.
func (s *Server) kickDrain() {
	if s.drainKick == nil {
		return
	}
	select {
	case s.drainKick <- struct{}{}:
	default:
	}
}

// Hint-drain pacing: redelivery retries back off exponentially from
// hintRetryBase to hintRetryMax while a peer stays dead, so a
// restarted replica converges within a few seconds without the
// drainer hammering a down one.
const (
	hintRetryBase = 250 * time.Millisecond
	hintRetryMax  = 5 * time.Second
)

// drainHints is the background redelivery loop: whenever hints are
// queued it walks each owed peer's FIFO, re-sending replication
// writes until the peer refuses again.
func (s *Server) drainHints() {
	defer close(s.drainDone)
	delay := hintRetryBase
	for {
		select {
		case <-s.drainStop:
			return
		case <-s.drainKick:
			delay = hintRetryBase
		case <-time.After(delay):
		}
		if s.hints.Depth() == 0 {
			delay = hintRetryMax // idle; wake cheaply until kicked
			continue
		}
		if s.flushHints(context.Background()) {
			delay = hintRetryBase
		} else if delay *= 2; delay > hintRetryMax {
			delay = hintRetryMax
		}
	}
}

// flushHints attempts to deliver every queued hint, acking the ones
// that land; it reports whether the journal drained empty. Redelivery
// is idempotent — hints carry canonical bytes whose ids are content
// hashes, so a peer that already has the campaign just dedups.
func (s *Server) flushHints(ctx context.Context) bool {
	// Hint redelivery is background work with no originating request,
	// so each drain pass gets a fresh trace ID — the receiving peer's
	// access log ties its stores back to this pass.
	if obs.Trace(ctx) == "" {
		ctx = obs.WithTrace(ctx, obs.NewTraceID())
	}
	delivered := 0
	for _, peer := range s.hints.Peers() {
		for {
			h, ok := s.hints.Next(peer)
			if !ok {
				break
			}
			if ctx.Err() != nil {
				return false
			}
			if err := s.sendReplicate(ctx, peer, h.Data); err != nil {
				break // still down; the next pass retries
			}
			s.hints.Ack(peer, h.ID)
			s.met.hintsDelivered.Inc()
			delivered++
		}
	}
	if delivered > 0 {
		s.logger.Info("hints redelivered",
			"delivered", delivered, "remaining", s.hints.Depth(), "trace", obs.Trace(ctx))
	}
	return s.hints.Depth() == 0
}

// relay copies a peer's response back verbatim.
func (s *Server) relay(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// statusFor maps the public package's typed errors (and the store's
// unknown-id error) onto HTTP status codes.
func statusFor(err error) int {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		// A body over MaxBodyBytes, or a stream over MaxStreamBytes.
		return http.StatusRequestEntityTooLarge // 413
	case errors.Is(err, lasvegas.ErrUnknownProblem), errors.Is(err, store.ErrUnknownCampaign):
		return http.StatusNotFound // 404
	case errors.Is(err, lasvegas.ErrMergeMismatch):
		return http.StatusConflict // 409
	case errors.Is(err, lasvegas.ErrNoAcceptableFit), errors.Is(err, lasvegas.ErrCensored),
		errors.Is(err, lasvegas.ErrNoRawRuns):
		// ErrCensored survives only for all-censored campaigns (the
		// fit path absorbs partial censoring): like a fit every family
		// rejects, the upload is well-formed but unusable — 422.
		// ErrNoRawRuns likewise: the campaign is valid but the request
		// needs per-run records its sketch no longer holds.
		return http.StatusUnprocessableEntity // 422
	case errors.Is(err, errWriteQuorum), errors.Is(err, errReadQuorum):
		// A quorum the group cannot currently assemble is a transient
		// availability failure, not a client mistake: retryable.
		return http.StatusServiceUnavailable // 503
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 499 // client closed request (nginx convention)
	default:
		// ErrSchema, ErrEmptyCampaign, ErrStream, JSON decoding and
		// parameter validation are all malformed-request failures.
		return http.StatusBadRequest // 400
	}
}

// writeError renders the uniform JSON error body.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	s.writeJSON(w, status, errorResponse{Error: err.Error(), Status: status})
}

// writeJSON renders v indented and deterministic (struct fields only,
// no maps), so fixed campaigns yield byte-stable responses.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"serve: encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(buf, '\n'))
}
