// Package serve is the HTTP prediction daemon behind cmd/lvserve: the
// paper's collect → fit → predict pipeline (Truchet, Richoux,
// Codognet — ICPP 2013) exposed over the wire through the public
// lasvegas API.
//
// Endpoints:
//
//	POST /v1/campaigns   upload one schema-v2 campaign, an array of
//	                     campaign shards to merge, or a
//	                     {"collect": {...}} request the server runs
//	                     itself; returns the content-derived campaign id
//	POST /v1/fit         {"id": ...} → ranked candidate table with KS
//	                     (and Anderson–Darling) verdicts plus the best
//	                     accepted model
//	GET  /v1/predict     ?id=...&cores=16,32&quantile=0.5,0.9&target=8 →
//	                     speed-up / min-expectation / quantile /
//	                     cores-for-speedup queries against the cached
//	                     model (fitting it on first use)
//	GET  /v1/healthz     liveness plus store occupancy
//
// Censored campaigns — the cheap, budgeted kind `lvseq -maxiter`
// produces — are first-class: the daemon fits them with the
// censored-campaign estimators (Kaplan–Meier plug-in law, censored
// maximum likelihood over the supported families, candidates ranked
// by censored log-likelihood), and the served model JSON records the
// censoring fraction and estimator kind. Only campaigns whose runs
// are all censored remain unfittable.
//
// The public package's typed errors map onto status codes —
// ErrSchema and ErrEmptyCampaign 400, ErrUnknownProblem (and unknown
// campaign ids) 404, ErrMergeMismatch 409 (merge conflicts only),
// ErrNoAcceptableFit and ErrCensored (all-censored campaigns) 422 —
// so clients can program against failure modes without parsing
// messages. Campaign ids are content hashes of the canonical campaign
// JSON and every response is rendered deterministically, so a
// fixed-seed campaign produces byte-identical fit and predict
// responses across daemon restarts.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"lasvegas"
)

// Config configures a Server. The zero value serves the paper's
// defaults: DefaultFamilies at α = 0.05, GOMAXPROCS-bounded fitting
// and collection, 8 MiB request bodies, 1024 cached campaigns.
type Config struct {
	// Families are the candidate distribution families /v1/fit ranks
	// (default lasvegas.DefaultFamilies for complete campaigns and
	// lasvegas.CensoredFamilies for censored ones; setting Families
	// explicitly pins both paths to this list, with members lacking a
	// censored estimator reported as failed candidates on censored
	// fits).
	Families []lasvegas.Family
	// Alpha is the KS significance level (default 0.05).
	Alpha float64
	// Workers bounds concurrent fit and collect jobs
	// (default 0 = GOMAXPROCS via the lasvegas defaults).
	Workers int
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxCampaigns caps the in-memory store; the oldest campaign is
	// evicted first (default 1024).
	MaxCampaigns int
	// MaxCollectRuns caps the runs of one server-side collect request
	// (default 10000), keeping a single request from monopolizing the
	// daemon.
	MaxCollectRuns int
}

// Server is the prediction daemon: an in-memory campaign/model store
// plus the HTTP handlers over it. Safe for concurrent use.
type Server struct {
	cfg   Config
	store *store
}

// New returns a Server with cfg applied over the defaults.
func New(cfg Config) *Server {
	if cfg.Alpha <= 0 {
		cfg.Alpha = 0.05
	}
	explicitFamilies := len(cfg.Families) > 0
	if !explicitFamilies {
		cfg.Families = lasvegas.DefaultFamilies()
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxCampaigns <= 0 {
		cfg.MaxCampaigns = 1024
	}
	if cfg.MaxCollectRuns <= 0 {
		cfg.MaxCollectRuns = 10000
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	// WithCensoredFit: budgeted campaigns are the cheapest to collect,
	// so the daemon fits them with the survival estimators instead of
	// bouncing them with a 409 (which now remains for merge mismatches
	// only). WithFamilies is passed only for an explicit Config choice
	// so the censored path keeps its own default candidate set.
	opts := []lasvegas.Option{
		lasvegas.WithAlpha(cfg.Alpha),
		lasvegas.WithCensoredFit(true),
	}
	if explicitFamilies {
		opts = append(opts, lasvegas.WithFamilies(cfg.Families...))
	}
	pred := lasvegas.New(opts...)
	return &Server{cfg: cfg, store: newStore(pred, workers, cfg.MaxCampaigns)}
}

// Handler returns the daemon's http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleCampaigns)
	mux.HandleFunc("POST /v1/fit", s.handleFit)
	mux.HandleFunc("GET /v1/predict", s.handlePredict)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

// --- wire types ---------------------------------------------------

// collectRequest is the server-side collection form of
// POST /v1/campaigns.
type collectRequest struct {
	Problem string `json:"problem"`
	Size    int    `json:"size,omitempty"`
	Runs    int    `json:"runs,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	Budget  int64  `json:"budget,omitempty"`
}

// campaignResponse acknowledges a stored campaign.
type campaignResponse struct {
	ID       string `json:"id"`
	Problem  string `json:"problem"`
	Size     int    `json:"size,omitempty"`
	Runs     int    `json:"runs"`
	Censored int    `json:"censored,omitempty"`
	Budget   int64  `json:"budget,omitempty"`
	Merged   int    `json:"merged_shards,omitempty"`
}

// candidateResponse is one row of the ranked §6 model-selection table.
type candidateResponse struct {
	Family   lasvegas.Family `json:"family"`
	Law      string          `json:"law,omitempty"`
	Accepted bool            `json:"accepted"`
	KS       *gofResponse    `json:"ks,omitempty"`
	AD       *gofResponse    `json:"ad,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// gofResponse is a goodness-of-fit verdict on the wire.
type gofResponse struct {
	Stat   float64 `json:"stat"`
	PValue float64 `json:"p_value"`
	N      int     `json:"n"`
}

// fitResponse answers POST /v1/fit.
type fitResponse struct {
	ID         string              `json:"id"`
	Problem    string              `json:"problem"`
	Best       *lasvegas.Model     `json:"best"`
	Candidates []candidateResponse `json:"candidates"`
}

// speedupResponse is one predicted core count.
type speedupResponse struct {
	Cores          int     `json:"cores"`
	Speedup        float64 `json:"speedup"`
	MinExpectation float64 `json:"min_expectation"`
	Efficiency     float64 `json:"efficiency"`
}

// quantileResponse is one predicted sequential-runtime quantile.
type quantileResponse struct {
	P     float64 `json:"p"`
	Value float64 `json:"value"`
}

// coresResponse answers a cores-for-speedup query.
type coresResponse struct {
	Target float64 `json:"target"`
	Cores  int     `json:"cores"`
}

// predictResponse answers GET /v1/predict.
type predictResponse struct {
	ID              string             `json:"id"`
	Problem         string             `json:"problem"`
	Model           *lasvegas.Model    `json:"model"`
	Speedups        []speedupResponse  `json:"speedups,omitempty"`
	Quantiles       []quantileResponse `json:"quantiles,omitempty"`
	CoresForSpeedup *coresResponse     `json:"cores_for_speedup,omitempty"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// healthResponse answers GET /v1/healthz.
type healthResponse struct {
	Status    string `json:"status"`
	Campaigns int    `json:"campaigns"`
}

// --- handlers -----------------------------------------------------

// handleCampaigns stores a campaign: an uploaded schema-v2 campaign
// object, an array of shards merged server-side, or a
// {"collect": ...} request executed by the daemon.
func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, fmt.Errorf("serve: reading body: %w", err))
		return
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	// A shard array merges, a {"collect": ...} object collects
	// server-side, anything else is a campaign upload (campaigns
	// always carry "iterations"; a probe decode keeps a metadata key
	// named "collect" from misrouting an upload).
	var probe struct {
		Collect    json.RawMessage `json:"collect"`
		Iterations json.RawMessage `json:"iterations"`
	}
	var (
		c      *lasvegas.Campaign
		merged int
	)
	switch {
	case len(trimmed) > 0 && trimmed[0] == '[':
		c, merged, err = mergeShards(trimmed)
	case json.Unmarshal(trimmed, &probe) == nil && probe.Collect != nil && probe.Iterations == nil:
		c, err = s.collect(r.Context(), trimmed)
	default:
		c = &lasvegas.Campaign{}
		if err = json.Unmarshal(trimmed, c); err != nil {
			err = fmt.Errorf("serve: campaign upload: %w", err)
		}
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	e, err := s.store.add(c)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, campaignResponse{
		ID:       e.id,
		Problem:  c.Problem,
		Size:     c.Size,
		Runs:     len(c.Iterations),
		Censored: len(c.Censored),
		Budget:   c.Budget,
		Merged:   merged,
	})
}

// mergeShards decodes an array of campaign shards and pools them.
func mergeShards(body []byte) (*lasvegas.Campaign, int, error) {
	var shards []*lasvegas.Campaign
	if err := json.Unmarshal(body, &shards); err != nil {
		return nil, 0, fmt.Errorf("serve: shard array: %w", err)
	}
	c, err := lasvegas.MergeCampaigns(shards...)
	if err != nil {
		return nil, 0, err
	}
	return c, len(shards), nil
}

// collect runs a campaign on the daemon itself, inside the shared
// worker pool so collection and fitting contend for the same bounded
// CPU budget.
func (s *Server) collect(ctx context.Context, body []byte) (*lasvegas.Campaign, error) {
	var req struct {
		Collect *collectRequest `json:"collect"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Collect == nil {
		return nil, errors.New("serve: collect request: invalid body")
	}
	cr := req.Collect
	if cr.Runs <= 0 {
		cr.Runs = 200
	}
	if cr.Runs > s.cfg.MaxCollectRuns {
		return nil, fmt.Errorf("serve: collect request: %d runs exceeds the %d-run cap", cr.Runs, s.cfg.MaxCollectRuns)
	}
	if cr.Seed == 0 {
		cr.Seed = 1
	}
	if err := s.store.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.store.release()
	p := lasvegas.New(
		lasvegas.WithRuns(cr.Runs),
		lasvegas.WithSeed(cr.Seed),
		lasvegas.WithBudget(cr.Budget),
		lasvegas.WithWorkers(s.cfg.Workers),
	)
	return p.Collect(ctx, lasvegas.Problem(cr.Problem), cr.Size)
}

// handleFit fits the stored campaign (single-flight) and returns the
// ranked candidate table plus the best accepted model.
func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID string `json:"id"`
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err != nil || req.ID == "" {
		s.writeError(w, errors.New(`serve: fit request: want {"id": "<campaign id>"}`))
		return
	}
	e, err := s.store.get(req.ID)
	if err != nil {
		s.writeError(w, err)
		return
	}
	cands, best, err := s.store.fit(r.Context(), e)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := fitResponse{ID: e.id, Problem: e.campaign.Problem, Best: best}
	for _, c := range cands {
		cr := candidateResponse{Family: c.Family, Law: c.Law}
		if c.Err != nil {
			cr.Error = c.Err.Error()
		} else {
			cr.Accepted = !c.KS.RejectedAt(s.cfg.Alpha)
			cr.KS = &gofResponse{Stat: c.KS.Stat, PValue: c.KS.PValue, N: c.KS.N}
			if c.ADValid {
				cr.AD = &gofResponse{Stat: c.AD.Stat, PValue: c.AD.PValue, N: c.AD.N}
			}
		}
		resp.Candidates = append(resp.Candidates, cr)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handlePredict answers speed-up, min-expectation, quantile and
// cores-for-speedup queries against the cached model, fitting it on
// first use.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id := q.Get("id")
	if id == "" {
		s.writeError(w, errors.New("serve: predict: missing id parameter"))
		return
	}
	e, err := s.store.get(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	_, model, err := s.store.fit(r.Context(), e)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := predictResponse{ID: e.id, Problem: e.campaign.Problem, Model: model}
	if coresS := q.Get("cores"); coresS != "" {
		cores, err := lasvegas.ParseCores(coresS)
		if err != nil {
			s.writeError(w, err)
			return
		}
		for _, n := range cores {
			g, err := model.Speedup(n)
			if err != nil {
				s.writeError(w, err)
				return
			}
			z, err := model.MinExpectation(n)
			if err != nil {
				s.writeError(w, err)
				return
			}
			resp.Speedups = append(resp.Speedups, speedupResponse{
				Cores: n, Speedup: g, MinExpectation: z, Efficiency: g / float64(n),
			})
		}
	}
	if qsS := q.Get("quantile"); qsS != "" {
		for _, part := range strings.Split(qsS, ",") {
			p, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			// p = 1 is excluded: every parametric family here has
			// unbounded upper support, so Quantile(1) is +Inf, which
			// JSON cannot carry.
			if err != nil || math.IsNaN(p) || p < 0 || p >= 1 {
				s.writeError(w, fmt.Errorf("serve: predict: bad quantile %q (want p in [0,1))", part))
				return
			}
			resp.Quantiles = append(resp.Quantiles, quantileResponse{P: p, Value: model.Quantile(p)})
		}
	}
	if targetS := q.Get("target"); targetS != "" {
		target, err := strconv.ParseFloat(targetS, 64)
		if err != nil {
			s.writeError(w, fmt.Errorf("serve: predict: bad target %q", targetS))
			return
		}
		n, err := model.CoresForSpeedup(target)
		if err != nil {
			s.writeError(w, err)
			return
		}
		resp.CoresForSpeedup = &coresResponse{Target: target, Cores: n}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports liveness and store occupancy.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Campaigns: s.store.len()})
}

// --- plumbing -----------------------------------------------------

// statusFor maps the public package's typed errors (and the store's
// unknown-id error) onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, lasvegas.ErrUnknownProblem), errors.Is(err, errUnknownCampaign):
		return http.StatusNotFound // 404
	case errors.Is(err, lasvegas.ErrMergeMismatch):
		return http.StatusConflict // 409
	case errors.Is(err, lasvegas.ErrNoAcceptableFit), errors.Is(err, lasvegas.ErrCensored):
		// ErrCensored survives only for all-censored campaigns (the
		// fit path absorbs partial censoring): like a fit every family
		// rejects, the upload is well-formed but unusable — 422.
		return http.StatusUnprocessableEntity // 422
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 499 // client closed request (nginx convention)
	default:
		// ErrSchema, ErrEmptyCampaign, JSON decoding and parameter
		// validation are all malformed-request failures.
		return http.StatusBadRequest // 400
	}
}

// writeError renders the uniform JSON error body.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	s.writeJSON(w, status, errorResponse{Error: err.Error(), Status: status})
}

// writeJSON renders v indented and deterministic (struct fields only,
// no maps), so fixed campaigns yield byte-stable responses.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"serve: encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(buf, '\n'))
}
