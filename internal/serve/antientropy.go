package serve

// Active anti-entropy: the background exchanger that makes replicas
// converge without waiting for a client read or a hint delivery.
//
// Hinted handoff covers the failure it can see — a peer that was down
// when a write fanned out. It cannot cover a hint log that was itself
// destroyed, a replica restored from an old backup, or any other way
// a copy silently goes missing; before this loop those healed only
// when a read happened to trigger read-repair, and a corpus whose
// campaigns are silently missing biases every downstream speed-up
// prediction (the fitted runtime distribution is only as good as the
// campaign data behind it). So each replica periodically compares,
// range by range, what it holds against the other owners of that
// range and pulls what it is missing through the same hash-verified
// fetch read-repair uses:
//
//   - the unit of comparison is a store.Digest — the range's sorted
//     campaign-id set plus the canonically-serialized merge of its
//     runtime quantile sketches. Converged replicas answer
//     byte-identical digests, so the common case costs one small GET
//     per (range, peer) pair and no per-id work at all;
//   - ids are content hashes, so "diverged" can only mean "missing"
//     and the set difference *is* the repair plan — no vector clocks,
//     no Merkle descent, no conflict resolution;
//   - pulls verify bytes against the id before storing (fetchFromPeer),
//     so a corrupt peer cannot poison the group, and they store through
//     the normal fsync'd add path, so a pulled campaign is as durable
//     as an uploaded one.
//
// A replica that lost everything converges in one round per live peer
// that holds its ranges; bounded rounds, no client traffic required.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"lasvegas/internal/obs"
	"lasvegas/internal/store"
)

// defaultAntiEntropyInterval paces the exchanger when
// Config.AntiEntropyInterval is 0: fast enough that a healing replica
// converges in human time, slow enough that an idle converged group
// spends its cycles serving.
const defaultAntiEntropyInterval = 15 * time.Second

// antiEntropyLoop runs digest-exchange rounds every aeInterval until
// Shutdown. The in-flight round is cancelled on stop rather than
// awaited — every peer call it makes is individually bounded, but a
// large heal should not hold Shutdown hostage.
func (s *Server) antiEntropyLoop() {
	defer close(s.aeDone)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-s.aeStop
		cancel()
	}()
	t := time.NewTicker(s.aeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.aeStop:
			return
		case <-t.C:
		}
		s.antiEntropyRound(ctx)
	}
}

// antiEntropyRound compares every hash range this replica holds with
// the range's other owners and pulls the campaigns it is missing,
// reporting how many it pulled. Pulls are one-directional — each
// replica repairs only itself — so a full group round trip (every
// replica running its own round) converges both sides of any
// asymmetry.
func (s *Server) antiEntropyRound(ctx context.Context) int {
	// A round is background work with no originating request: it gets
	// its own trace ID, which rides every digest fetch and pull so the
	// donor replicas' access logs attribute the traffic to this round.
	ctx = obs.WithTrace(ctx, obs.NewTraceID())
	start := time.Now()
	pulled := 0
	for _, rg := range store.OwnedRanges(s.self, s.replicas, s.repl) {
		local, err := store.BuildRangeDigest(s.store, rg, s.replicas, s.cfg.SketchK)
		if err != nil {
			continue
		}
		for _, o := range store.RangeOwners(rg, s.replicas, s.repl) {
			if o == s.self || ctx.Err() != nil {
				continue
			}
			remote := s.fetchDigest(ctx, o, rg)
			if remote == nil || remote.Equal(local) {
				continue
			}
			got := 0
			for _, id := range remote.MissingIDs(local) {
				// Belt and braces: a confused peer must not plant ids
				// outside the range it was asked about (fetchFromPeer
				// already rejects bytes that don't hash to the id).
				if store.Owner(id, s.replicas) != rg {
					continue
				}
				if e := s.fetchFromPeer(ctx, o, id); e != nil {
					got++
				}
			}
			if got > 0 {
				pulled += got
				// The local holdings changed; re-digest before the
				// next peer comparison so it diffs against reality.
				if local, err = store.BuildRangeDigest(s.store, rg, s.replicas, s.cfg.SketchK); err != nil {
					break
				}
			}
		}
	}
	s.aeRounds.Add(1)
	d := time.Since(start)
	s.met.aeRounds.With().Observe(d.Seconds())
	if pulled > 0 {
		s.aePulled.Add(int64(pulled))
		s.met.aePulled.Add(int64(pulled))
		// A pull means a copy had silently gone missing — worth a line.
		// Converged rounds stay at debug so an idle group logs nothing.
		s.logger.Info("anti-entropy pulled missing campaigns",
			"pulled", pulled, "duration", d, "trace", obs.Trace(ctx))
	} else {
		s.logger.Debug("anti-entropy round converged",
			"duration", d, "trace", obs.Trace(ctx))
	}
	return pulled
}

// fetchDigest retrieves one peer's digest of one hash range. Any
// failure returns nil — the round just moves on and the next round
// retries (the peer client's breaker keeps a dead peer cheap).
func (s *Server) fetchDigest(ctx context.Context, peer, rangeIdx int) *store.Digest {
	resp, err := s.peerc.do(ctx, peer, s.cfg.PeerTimeout, "GET",
		"/v1/internal/digest?range="+strconv.Itoa(rangeIdx), nil, nil)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return nil
	}
	d := &store.Digest{}
	if json.Unmarshal(data, d) != nil || d.Range != rangeIdx {
		return nil
	}
	return d
}

// handleInternalDigest serves this replica's digest of one hash
// range — the peer-to-peer comparison behind anti-entropy. Strictly
// local, like the internal campaign fetch: the caller is a peer owner
// asking what *this* replica holds.
func (s *Server) handleInternalDigest(w http.ResponseWriter, r *http.Request) {
	rs := r.URL.Query().Get("range")
	if rs == "" {
		s.writeError(w, errors.New("serve: internal digest: missing range parameter"))
		return
	}
	ri, err := strconv.Atoi(rs)
	if err != nil || ri < 0 || ri >= s.replicas {
		s.writeError(w, fmt.Errorf("serve: internal digest: bad range %q (want 0..%d)", rs, s.replicas-1))
		return
	}
	d, err := store.BuildRangeDigest(s.store, ri, s.replicas, s.cfg.SketchK)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, d)
}
