package serve

// Quorum reads and writes: the R/W knobs over the k-way replication.
//
// The default contract is ack-after-one-fsync (W = 1) and
// any-single-owner reads (R = 1): fast, and with hinted handoff plus
// anti-entropy the group converges quickly — but between the ack and
// the convergence a reader hitting a stale owner can miss the write.
// Callers that need read-your-writes pick W and R with R+W > k: every
// read quorum then overlaps every write quorum in at least one owner,
// and content addressing turns "overlap" into "the answer" — one
// verified copy is every copy, since an id can only ever name one
// byte string. The price is availability: a write needs W live owners
// and a read needs R confirmable ones, so what used to degrade
// silently now fails loudly with 503 until the group heals.

import (
	"context"
	"errors"
	"fmt"

	"lasvegas/internal/obs"
	"lasvegas/internal/store"
)

// errWriteQuorum and errReadQuorum mark quorum shortfalls; statusFor
// maps both to 503 (transient, retryable — not a client mistake).
var (
	errWriteQuorum = errors.New("serve: write quorum not met")
	errReadQuorum  = errors.New("serve: read quorum not met")
)

// quorumRead confirms that at least R owners hold a verified copy of
// e before a read is answered. The local copy (the caller just got it
// from the store, or read-repaired it) counts as one; each other
// owner is confirmed by a hash-verified peek, with a push-repair and
// a re-peek when the peer is alive but missing the id — so a read
// quorum doesn't just observe convergence, it manufactures it. Fewer
// than R confirmable owners is an error (503), never a degraded
// answer.
func (s *Server) quorumRead(ctx context.Context, e *store.Entry, owners []int) error {
	if s.readQ < 2 {
		return nil
	}
	confirmed := 1 // the local copy
	for _, o := range owners {
		if confirmed >= s.readQ {
			return nil
		}
		if o == s.self {
			continue
		}
		if s.confirmPeerCopy(ctx, o, e) {
			confirmed++
		}
	}
	if confirmed >= s.readQ {
		return nil
	}
	s.met.quorumShortfall.With("read").Inc()
	s.logger.Warn("read quorum shortfall",
		"id", e.ID, "confirmed", confirmed, "want", s.readQ, "trace", obs.Trace(ctx))
	return fmt.Errorf("%w: %d/%d owners hold a verified copy of %s", errReadQuorum, confirmed, s.readQ, e.ID)
}

// confirmPeerCopy reports whether one peer owner verifiably holds e's
// campaign. A peek that comes back hash-verified is confirmation; a
// peer that answers but lacks the id (or holds bytes that don't hash
// to it — peekPeer rejects those) gets the canonical bytes pushed and
// is peeked again, so the only unconfirmable peer is one that can't
// take a copy at all.
func (s *Server) confirmPeerCopy(ctx context.Context, peer int, e *store.Entry) bool {
	if c, _ := s.peekPeer(ctx, peer, e.ID); c != nil {
		return true
	}
	_, canonical, err := store.Encode(e.Campaign)
	if err != nil {
		return false
	}
	if err := s.sendReplicate(ctx, peer, canonical); err != nil {
		return false
	}
	c, _ := s.peekPeer(ctx, peer, e.ID)
	return c != nil
}
