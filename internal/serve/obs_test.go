package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"lasvegas"
	"lasvegas/internal/obs"
	"lasvegas/internal/store"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the whole replica group
// logs into one stream, the way CI merges per-replica artifacts.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// traceLines counts log lines carrying the exact trace attribute.
func traceLines(logs, trace string) int {
	n := 0
	for _, line := range strings.Split(logs, "\n") {
		if strings.Contains(line, "trace="+trace) {
			n++
		}
	}
	return n
}

// TestTraceSpansReplicaHops drives one upload through a non-owner of
// a 3-replica k=2 group and asserts a single trace ID ties the whole
// fan-out together: the ingress access log, the forwarded upload on
// the first owner, and the replication write on the second owner all
// log the same ID, which also comes back on the response header. A
// forwarded /v1/fit then proves a caller-supplied ID is honored, not
// replaced.
func TestTraceSpansReplicaHops(t *testing.T) {
	logs := &syncBuffer{}
	g := newGroup(t, 3, 2, Config{
		AntiEntropyInterval: -1, // only client-driven traffic in the logs
		Logger:              slog.New(slog.NewTextHandler(logs, nil)),
	})

	body, err := json.Marshal(&lasvegas.Campaign{
		Problem:    "trace-e2e",
		Runs:       4,
		Seed:       1,
		Iterations: []float64{10, 20, 30, 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	var c lasvegas.Campaign
	if err := json.Unmarshal(body, &c); err != nil {
		t.Fatal(err)
	}
	id, _, err := store.Encode(&c)
	if err != nil {
		t.Fatal(err)
	}
	owners := store.Owners(id, 3, 2)
	nonOwner := -1
	for i := 0; i < 3; i++ {
		if !ownedBy(owners, i) {
			nonOwner = i
			break
		}
	}
	if nonOwner == -1 {
		t.Fatalf("owners %v cover all 3 replicas at k=2", owners)
	}

	// Upload through the non-owner: forward to owners[0], which fans
	// the write out to owners[1] — three handlers, one trace.
	resp, err := http.Post(g.url(nonOwner)+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload via non-owner: status %d", resp.StatusCode)
	}
	trace := resp.Header.Get(obs.TraceHeader)
	if len(trace) != 16 {
		t.Fatalf("response %s = %q, want a generated 16-hex-char trace ID", obs.TraceHeader, trace)
	}
	if got := traceLines(logs.String(), trace); got < 3 {
		t.Fatalf("trace %s appears on %d access-log lines, want >= 3 (ingress + forward + replicate):\n%s",
			trace, got, logs.String())
	}

	// A caller-supplied trace ID must survive a forwarded fit: the
	// non-owner proxies to an owner, and both log the caller's ID.
	want := "cafecafecafecafe"
	req, err := http.NewRequest("POST", g.url(nonOwner)+"/v1/fit",
		strings.NewReader(fmt.Sprintf(`{"id":%q}`, id)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, want)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != want {
		t.Fatalf("fit response trace = %q, want the caller's %q echoed", got, want)
	}
	if got := traceLines(logs.String(), want); got < 2 {
		t.Fatalf("caller trace %s appears on %d log lines, want >= 2 (non-owner + owner):\n%s",
			want, got, logs.String())
	}
}

// TestMetricsEndpoint scrapes a group member and checks the families
// the telemetry layer promises are present and that the scrape's own
// route appears in the request counter on a second scrape.
func TestMetricsEndpoint(t *testing.T) {
	g := newGroup(t, 2, 2, Config{AntiEntropyInterval: -1})

	scrape := func() obs.Samples {
		t.Helper()
		resp, err := http.Get(g.url(0) + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics: status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("metrics Content-Type = %q, want text/plain exposition", ct)
		}
		s, err := obs.ParseText(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := scrape()
	for _, fam := range []string{
		"lvserve_requests_total",
		"lvserve_request_latency_seconds",
		"lvserve_request_latency_quantile_seconds",
		"lvserve_peer_requests_total",
		"lvserve_peer_latency_seconds",
		"lvserve_peer_breaker_transitions_total",
		"lvserve_hints_enqueued_total",
		"lvserve_hints_delivered_total",
		"lvserve_hints_queue_depth",
		"lvserve_anti_entropy_round_seconds",
		"lvserve_anti_entropy_pulled_total",
		"lvserve_fit_share_total",
		"lvserve_quorum_shortfall_total",
		"lvserve_store_campaigns",
		"lvserve_store_bytes",
		"lvserve_inflight_requests",
	} {
		if !s.HasFamily(fam) {
			t.Errorf("scrape is missing family %s", fam)
		}
	}

	// The first scrape was recorded after its handler wrote, so the
	// second sees it in the counter and in the latency sketch.
	s = scrape()
	if v, ok := s.Get(`lvserve_requests_total{route="/v1/metrics",status="2xx"}`); !ok || v < 1 {
		t.Errorf("metrics route counter = %v, %v; want >= 1", v, ok)
	}
	if v, ok := s.Get(`lvserve_request_latency_seconds_count{route="/v1/metrics"}`); !ok || v < 1 {
		t.Errorf("metrics route latency count = %v, %v; want >= 1", v, ok)
	}
}
