package serve

import (
	"context"
	"errors"
	"sync"
	"testing"

	"lasvegas"
)

func testCampaign(t *testing.T) *lasvegas.Campaign {
	t.Helper()
	c, err := lasvegas.LoadCampaign(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSingleFlightFit hammers one entry from many goroutines and
// requires every caller to receive the identical *Model — the proof
// that the fit ran once. The race detector (CI's race job covers this
// package) guards the store's locking.
func TestSingleFlightFit(t *testing.T) {
	s := newStore(lasvegas.New(), 2, 16)
	e, err := s.add(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	const callers = 32
	models := make([]*lasvegas.Model, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, m, err := s.fit(context.Background(), e)
			if err != nil {
				t.Errorf("fit %d: %v", i, err)
				return
			}
			models[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if models[i] != models[0] {
			t.Fatalf("caller %d received a different model instance — fit ran more than once", i)
		}
	}
}

// TestFitErrorCached: a deterministic fit failure (censored campaign)
// is cached like a success, so retries don't re-run the estimators.
func TestFitErrorCached(t *testing.T) {
	s := newStore(lasvegas.New(), 1, 16)
	c := &lasvegas.Campaign{
		Problem:    "x",
		Runs:       3,
		Iterations: []float64{1, 2, 3},
		Censored:   []int{1},
		Budget:     2,
	}
	e, err := s.add(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		_, _, err := s.fit(context.Background(), e)
		if !errors.Is(err, lasvegas.ErrCensored) {
			t.Fatalf("fit %d: %v, want ErrCensored", i, err)
		}
	}
	if !e.done {
		t.Error("fit error was not cached")
	}
}

// TestCancelledWaiterDoesNotPoison: a caller whose context dies while
// waiting for a pool slot must not mark the entry failed for everyone
// else.
func TestCancelledWaiterDoesNotPoison(t *testing.T) {
	s := newStore(lasvegas.New(), 1, 16)
	e, err := s.add(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	s.sem <- struct{}{} // occupy the only slot
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.fit(ctx, e); !errors.Is(err, context.Canceled) {
		t.Fatalf("fit with dead ctx: %v, want context.Canceled", err)
	}
	<-s.sem // free the slot
	if _, m, err := s.fit(context.Background(), e); err != nil || m == nil {
		t.Fatalf("fit after cancelled waiter: %v (model %v), want success", err, m)
	}
}

// TestEviction: the store caps entries FIFO.
func TestEviction(t *testing.T) {
	s := newStore(lasvegas.New(), 1, 2)
	mk := func(seed uint64) *lasvegas.Campaign {
		return &lasvegas.Campaign{Problem: "x", Runs: 1, Seed: seed, Iterations: []float64{float64(seed)}}
	}
	first, err := s.add(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.add(mk(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.add(mk(3)); err != nil {
		t.Fatal(err)
	}
	if s.len() != 2 {
		t.Errorf("store holds %d entries, want 2", s.len())
	}
	if _, err := s.get(first.id); !errors.Is(err, errUnknownCampaign) {
		t.Errorf("oldest entry still present after eviction: %v", err)
	}
}

// TestCampaignIDDeterminism: ids derive from content, not identity.
func TestCampaignIDDeterminism(t *testing.T) {
	a, err := campaignID(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := campaignID(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("ids differ for identical content: %q vs %q", a, b)
	}
	other := testCampaign(t)
	other.Iterations[0]++
	c, err := campaignID(other)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("id unchanged after mutating an observation")
	}
}
