package serve

// The daemon's own telemetry: every metric family the fleet exposes
// at GET /v1/metrics, wired once at Server construction.
//
// The latency families dogfood internal/sketch — each route's (and
// each peer endpoint's) latency is folded into the same mergeable
// quantile sketch the daemon sells to its users, so the fleet
// measures its own runtime distribution with the machinery the paper
// is about: /v1/metrics reports exact-until-compaction p50/p90/p99
// next to conventional cumulative buckets, instead of the pre-binned
// approximations a fixed-bucket histogram would give. Healthz remains
// the liveness/JSON view; /v1/metrics is the scrapeable one.

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"lasvegas/internal/obs"
)

// metrics is the Server's registered metric set.
type metrics struct {
	reg *obs.Registry

	// requests/reqLatency cover every public and internal endpoint by
	// route and status class — the per-endpoint request/error/latency
	// triple.
	requests   *obs.CounterVec   // route, status (2xx..5xx)
	reqLatency *obs.HistogramVec // route

	// Peer RPCs, by endpoint and outcome; latency is the client-visible
	// cost of the whole call including retries and backoff.
	peerRequests *obs.CounterVec   // endpoint, outcome (ok | error)
	peerLatency  *obs.HistogramVec // endpoint

	// breakerTransitions counts per-peer circuit state changes — the
	// "how often does the group think a replica is dead" signal.
	breakerTransitions *obs.CounterVec // peer, to (open | half-open | closed)

	// Hinted handoff: enqueues (a peer missed a write) and deliveries
	// (the drain rate); the queue depth itself is a gauge.
	hintsEnqueued  *obs.Counter
	hintsDelivered *obs.Counter

	// Anti-entropy: digest-exchange round duration and pulled copies.
	aeRounds *obs.HistogramVec // (no labels)
	aePulled *obs.Counter

	// Cross-replica fit single-flight outcomes.
	fitShare *obs.CounterVec // event (hit | adopted | delegated | local)

	// Quorum shortfalls answered 503.
	quorumShortfall *obs.CounterVec // kind (read | write)

	// Restart-policy table computes on /v1/policy: computed (this
	// request priced the table), cached (served the entry's cell), or
	// error.
	policyComputes *obs.CounterVec // event (computed | cached | error)
}

// newMetrics registers every family on a fresh registry.
func newMetrics() *metrics {
	reg := obs.NewRegistry()
	return &metrics{
		reg: reg,
		requests: reg.Counter("lvserve_requests_total",
			"Requests served, by route and status class.", "route", "status"),
		reqLatency: reg.Histogram("lvserve_request_latency_seconds",
			"lvserve_request_latency_quantile_seconds",
			"Request latency by route, folded into a quantile sketch (exact p50/p90/p99 until compaction).",
			"route"),
		peerRequests: reg.Counter("lvserve_peer_requests_total",
			"Peer RPCs, by endpoint and outcome (retries included in one call).", "endpoint", "outcome"),
		peerLatency: reg.Histogram("lvserve_peer_latency_seconds",
			"lvserve_peer_latency_quantile_seconds",
			"Peer RPC latency by endpoint, retries and backoff included, sketch-backed.", "endpoint"),
		breakerTransitions: reg.Counter("lvserve_peer_breaker_transitions_total",
			"Per-peer circuit-breaker state transitions.", "peer", "to"),
		hintsEnqueued: reg.Counter("lvserve_hints_enqueued_total",
			"Replicated writes journaled for a down peer.").With(),
		hintsDelivered: reg.Counter("lvserve_hints_delivered_total",
			"Journaled writes redelivered to a returned peer.").With(),
		aeRounds: reg.Histogram("lvserve_anti_entropy_round_seconds",
			"lvserve_anti_entropy_round_quantile_seconds",
			"Anti-entropy digest-exchange round duration, sketch-backed."),
		aePulled: reg.Counter("lvserve_anti_entropy_pulled_total",
			"Campaign copies pulled from peers by anti-entropy.").With(),
		fitShare: reg.Counter("lvserve_fit_share_total",
			"Cross-replica fit single-flight outcomes.", "event"),
		quorumShortfall: reg.Counter("lvserve_quorum_shortfall_total",
			"Reads or writes refused (503) for lack of a quorum.", "kind"),
		policyComputes: reg.Counter("lvserve_policy_computes_total",
			"Restart-policy table computes on /v1/policy, by outcome.", "event"),
	}
}

// registerGauges wires the scrape-time gauges that read live server
// state; called once the store and hint journal exist.
func (s *Server) registerGauges() {
	s.met.reg.GaugeFunc("lvserve_store_campaigns",
		"Resident campaigns in this replica's store.",
		func() float64 { return float64(s.store.Len()) })
	s.met.reg.GaugeFunc("lvserve_store_bytes",
		"Stored canonical-campaign volume (snapshot-log size for durable stores).",
		func() float64 { return float64(s.store.Stats().Bytes) })
	s.met.reg.GaugeFunc("lvserve_hints_queue_depth",
		"Hinted-handoff writes awaiting redelivery.",
		func() float64 { return float64(s.hints.Depth()) })
	s.met.reg.GaugeFunc("lvserve_inflight_requests",
		"Requests currently inside the handler.",
		func() float64 { return float64(s.inflight.Load()) })
}

// routeLabel maps a request path onto the closed route-label set —
// exactly the mux's patterns, with everything else pooled under
// "other" so request paths can never explode metric cardinality.
func routeLabel(path string) string {
	switch path {
	case "/v1/campaigns", "/v1/fit", "/v1/predict", "/v1/policy", "/v1/healthz",
		"/v1/metrics", "/v1/internal/campaign", "/v1/internal/digest",
		"/v1/internal/fit-cache":
		return path
	}
	return "other"
}

// statusClass buckets an HTTP status for the requests counter.
func statusClass(status int) string {
	if status < 100 || status > 599 {
		return "other"
	}
	return fmt.Sprintf("%dxx", status/100)
}

// peerEndpoint strips the query from a peer-call URI, yielding the
// closed endpoint-label set for the peer metrics.
func peerEndpoint(uri string) string {
	if i := strings.IndexByte(uri, '?'); i >= 0 {
		uri = uri[:i]
	}
	return uri
}

// handleMetrics serves the Prometheus text exposition. The render is
// deterministic for fixed state, but unlike fit/predict responses it
// is a live snapshot — no byte-stability contract applies.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.reg.WriteText(w)
}

// observeRequest records one served request: the counter by route and
// status class, the latency sketch by route.
func (m *metrics) observeRequest(route string, status int, d time.Duration) {
	m.requests.With(route, statusClass(status)).Inc()
	m.reqLatency.With(route).Observe(d.Seconds())
}
