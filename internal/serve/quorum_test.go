package serve

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestQuorumConfigValidation: a quorum that can never be met is a
// deployment mistake, rejected at boot rather than discovered as a
// permanent 503 in production.
func TestQuorumConfigValidation(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if srv.writeQ != 1 || srv.readQ != 1 {
		t.Errorf("quorum defaults = W%d/R%d, want W1/R1", srv.writeQ, srv.readQ)
	}
	srv.Close()

	two := Config{ReplicaCount: 2, Peers: []string{"http://a", "http://b"}, ReplicationFactor: 2}
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"write quorum over k", func(c *Config) { c.WriteQuorum = 3 }},
		{"read quorum over k", func(c *Config) { c.ReadQuorum = 3 }},
		{"write quorum over default k=1", func(c *Config) { c.ReplicationFactor = 0; c.WriteQuorum = 2 }},
	} {
		cfg := two
		tc.mut(&cfg)
		if srv, err := New(cfg); err == nil {
			srv.Close()
			t.Errorf("New accepted %s (%+v)", tc.name, cfg)
		}
	}
}

// TestWriteQuorumFailsLoudly: with W = k = 2 a write that cannot reach
// both owners must be refused with 503 — but the refusal is an
// availability statement, not a rollback: the accepted copy stays
// durable and hinted, and once the peer heals the same upload succeeds
// and deduplicates cleanly.
func TestWriteQuorumFailsLoudly(t *testing.T) {
	g := newGroup(t, 2, 2, Config{DataDir: t.TempDir(), WriteQuorum: 2, AntiEntropyInterval: -1})

	// Both owners up: the fan-out acks 2/2 and the write succeeds.
	g.uploadSynth(0, synthCampaign(t, 30))

	g.kill(1)
	body := synthCampaign(t, 31)
	status, resp := g.do(0, "POST", "/v1/campaigns", body)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("write with an owner down: status %d, body %s, want 503", status, resp)
	}
	if !strings.Contains(string(resp), "write quorum") {
		t.Errorf("503 body does not name the write quorum: %s", resp)
	}
	if got := g.health(0).Hints; got != 1 {
		t.Errorf("hints = %d after refused write, want 1 (the copy is still promised)", got)
	}

	// The peer heals, the hint drains, and the retried upload now meets
	// the quorum — idempotently, since the id is a content hash.
	g.restart(1)
	g.waitConverged(10 * time.Second)
	status, resp = g.do(0, "POST", "/v1/campaigns", body)
	if status != http.StatusOK {
		t.Fatalf("retried write after heal: status %d, body %s", status, resp)
	}
	for i := 0; i < 2; i++ {
		if got := g.health(i).Campaigns; got != 2 {
			t.Errorf("replica %d holds %d campaigns, want 2", i, got)
		}
	}
}

// TestReadQuorumRepairsDivergence: R = k = 2 over a divergent pair —
// one owner's snapshot log was tampered with, so after a restart it
// holds a doppelgänger campaign under a different content id and is
// missing the original. The quorum read must notice (the peek for the
// original id misses), push-repair the peer, and return the same
// answer bytes as before the divergence; with the peer down entirely
// the same read must fail loudly instead of degrading.
func TestReadQuorumRepairsDivergence(t *testing.T) {
	dir := t.TempDir()
	g := newGroup(t, 2, 2, Config{DataDir: dir, ReadQuorum: 2, AntiEntropyInterval: -1})
	id := g.uploadSynth(0, synthCampaign(t, 32))
	predict := "/v1/predict?id=" + id + "&cores=4,16"

	status, baseline := g.do(0, "GET", predict, nil)
	if status != http.StatusOK {
		t.Fatalf("baseline predict: status %d, body %s", status, baseline)
	}

	// Diverge replica 1: flip a byte inside its stored record. Content
	// addressing means the tampered record replays under a different
	// id — the original is simply gone from that replica.
	g.kill(1)
	logPath := filepath.Join(dir, "replica1", "campaigns.log")
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(raw, []byte("chaos-"), []byte("Chaos-"), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("tamper marker not found in snapshot log")
	}
	if err := os.WriteFile(logPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	g.restart(1)
	if got := g.health(1).Campaigns; got != 1 {
		t.Fatalf("diverged replica holds %d campaigns, want 1 (the doppelgänger)", got)
	}

	// The quorum read manufactures its own overlap: peek misses on the
	// diverged peer, the canonical bytes are pushed, and the answer
	// comes back unchanged.
	status, resp := g.do(0, "GET", predict, nil)
	if status != http.StatusOK {
		t.Fatalf("quorum read over divergent pair: status %d, body %s", status, resp)
	}
	if !bytes.Equal(resp, baseline) {
		t.Errorf("repaired answer diverges from baseline:\n%s\nvs\n%s", resp, baseline)
	}
	if got := g.health(1).Campaigns; got != 2 {
		t.Errorf("diverged replica holds %d campaigns after repair, want 2", got)
	}

	// An unreachable peer leaves only 1/2 confirmable owners: 503.
	g.kill(1)
	status, resp = g.do(0, "GET", predict, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("quorum read with peer down: status %d, body %s, want 503", status, resp)
	}
	if !strings.Contains(string(resp), "read quorum") {
		t.Errorf("503 body does not name the read quorum: %s", resp)
	}
}

// TestQuorumHealthz: the configured quorums are operator-visible.
func TestQuorumHealthz(t *testing.T) {
	g := newGroup(t, 2, 2, Config{WriteQuorum: 2, ReadQuorum: 1, AntiEntropyInterval: -1})
	hr := g.health(0)
	if hr.Quorum.Write != 2 || hr.Quorum.Read != 1 {
		t.Errorf("healthz quorum = %+v, want W2/R1", hr.Quorum)
	}
	if hr.AntiEntropy != nil {
		t.Errorf("healthz anti_entropy = %+v with the exchanger disabled, want absent", hr.AntiEntropy)
	}
}
