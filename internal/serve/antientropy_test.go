package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lasvegas"
	"lasvegas/internal/store"
)

// poll retries cond until it holds or the deadline passes.
func poll(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", timeout, what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestAntiEntropyHealsQuarantinedHintLog is the tentpole's end-to-end
// proof at the in-process level: a write is accepted while a peer
// owner is down, then the hinting replica's hint log is corrupted —
// the exact failure hinted handoff cannot cover. The replica must
// still boot (quarantining the log instead of bricking), and the peer
// must converge through the background digest exchange alone: no
// client read ever touches the missing copy before it appears.
func TestAntiEntropyHealsQuarantinedHintLog(t *testing.T) {
	dir := t.TempDir()
	g := newGroup(t, 2, 2, Config{DataDir: dir, AntiEntropyInterval: 50 * time.Millisecond})

	g.kill(1)
	id := g.uploadSynth(0, synthCampaign(t, 9))
	if got := g.health(0).Hints; got != 1 {
		t.Fatalf("hints = %d after writing past the dead peer, want 1", got)
	}

	// The hinting replica goes down and its hint log rots: every
	// record is complete but unparseable.
	g.kill(0)
	hintPath := filepath.Join(dir, "replica0", "hints.log")
	if err := os.WriteFile(hintPath, []byte("rotten bits, not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g.restart(0) // pre-quarantine this refused to boot
	hr := g.health(0)
	if !hr.HintsQuarantined {
		t.Fatal("healthz hints_quarantined = false after booting on a corrupt hint log")
	}
	if hr.Hints != 0 {
		t.Fatalf("hints = %d after quarantine, want 0 (the promise is lost, not pending)", hr.Hints)
	}
	if hr.AntiEntropy == nil {
		t.Fatal("healthz anti_entropy missing while the exchanger is configured")
	}

	// The peer returns. Handoff cannot help it (the hint is gone);
	// only the digest exchange can. healthz polling is not a campaign
	// read, so nothing here can trigger read-repair.
	g.restart(1)
	poll(t, 10*time.Second, "anti-entropy to restore the lost copy", func() bool {
		return g.health(1).Campaigns == 1
	})
	ae := g.health(1).AntiEntropy
	if ae == nil || ae.Pulled < 1 || ae.Rounds < 1 {
		t.Fatalf("healthz anti_entropy = %+v, want ≥1 round and ≥1 pull", ae)
	}

	// Converged means byte-identical answers from both owners.
	var answers [2][]byte
	for i := range answers {
		status, resp := g.do(i, "GET", "/v1/predict?id="+id+"&cores=4,16", nil)
		if status != http.StatusOK {
			t.Fatalf("predict via replica %d: status %d, body %s", i, status, resp)
		}
		answers[i] = resp
	}
	if !bytes.Equal(answers[0], answers[1]) {
		t.Errorf("answers diverge after anti-entropy:\n%s\nvs\n%s", answers[0], answers[1])
	}
}

// TestAntiEntropySchemaMix: digest diffing is by content id, so a
// sketch-backed (schema 3) campaign and the raw (schema 2) campaign
// it came from are two distinct ids that both replicate — one side
// holding only the raw copy and the other only the sketched one must
// exchange both, and end byte-identical on every range digest.
func TestAntiEntropySchemaMix(t *testing.T) {
	g := newGroup(t, 2, 2, Config{AntiEntropyInterval: -1}) // rounds run by hand
	raw := &lasvegas.Campaign{}
	if err := json.Unmarshal(synthCampaign(t, 11), raw); err != nil {
		t.Fatal(err)
	}
	sketched, err := raw.Sketchify(0)
	if err != nil {
		t.Fatal(err)
	}
	rawID, rawBytes, err := store.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	skID, skBytes, err := store.Encode(sketched)
	if err != nil {
		t.Fatal(err)
	}
	if rawID == skID {
		t.Fatal("schema-2 and schema-3 copies share an id; the test premise is broken")
	}
	// Plant the asymmetry directly in the stores: replica 0 holds only
	// the raw copy, replica 1 only the sketched one.
	if _, err := g.srv[0].store.AddEncoded(rawID, rawBytes, raw); err != nil {
		t.Fatal(err)
	}
	if _, err := g.srv[1].store.AddEncoded(skID, skBytes, sketched); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if pulled := g.srv[0].antiEntropyRound(ctx); pulled != 1 {
		t.Fatalf("replica 0 pulled %d campaigns, want the sketched copy", pulled)
	}
	if pulled := g.srv[1].antiEntropyRound(ctx); pulled != 1 {
		t.Fatalf("replica 1 pulled %d campaigns, want the raw copy", pulled)
	}
	for i := range g.srv {
		if got := g.srv[i].store.Len(); got != 2 {
			t.Fatalf("replica %d holds %d campaigns after exchange, want both schemas", i, got)
		}
	}
	// Fully converged: every range digest is byte-identical across the
	// replicas, sketch fingerprint included (the raw copy folds at the
	// same capacity the schema-3 copy was sketched at).
	for r := 0; r < 2; r++ {
		d0, err := store.BuildRangeDigest(g.srv[0].store, r, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		d1, err := store.BuildRangeDigest(g.srv[1].store, r, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !d0.Equal(d1) {
			t.Errorf("range %d digests diverge after exchange:\n%+v\nvs\n%+v", r, d0, d1)
		}
	}
	// And another round in either direction is a no-op.
	if pulled := g.srv[0].antiEntropyRound(ctx); pulled != 0 {
		t.Errorf("converged replica 0 still pulled %d campaigns", pulled)
	}
}

// TestInternalDigestEndpoint locks the wire shape peers rely on: the
// digest covers exactly the requested range's resident ids, and a bad
// range parameter is a 400, not a panic or an empty digest.
func TestInternalDigestEndpoint(t *testing.T) {
	g := newGroup(t, 2, 2, Config{AntiEntropyInterval: -1})
	id := g.uploadSynth(0, synthCampaign(t, 12))
	rg := store.Owner(id, 2)
	status, body := g.do(0, "GET", fmt.Sprintf("/v1/internal/digest?range=%d", rg), nil)
	if status != http.StatusOK {
		t.Fatalf("digest: status %d, body %s", status, body)
	}
	var d store.Digest
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Range != rg || len(d.IDs) != 1 || d.IDs[0] != id {
		t.Fatalf("digest = %+v, want range %d holding exactly %s", d, rg, id)
	}
	if len(d.Sketch) == 0 {
		t.Error("digest of a complete campaign carries no sketch fingerprint")
	}
	for _, bad := range []string{"", "x", "-1", "2"} {
		status, _ := g.do(0, "GET", "/v1/internal/digest?range="+bad, nil)
		if status != http.StatusBadRequest {
			t.Errorf("digest range=%q: status %d, want 400", bad, status)
		}
	}
}
