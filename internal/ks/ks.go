// Package ks implements the Kolmogorov–Smirnov goodness-of-fit test
// the paper uses (§6) to decide whether a sequential runtime sample is
// adequately described by a candidate distribution: the one-sample
// statistic against any dist.Dist, the asymptotic Kolmogorov p-value
// with Stephens' finite-n correction, and the two-sample variant used
// by the test-suite to validate samplers against their own CDFs.
package ks

import (
	"errors"
	"math"
	"sort"

	"lasvegas/internal/dist"
)

// ErrEmpty reports an empty sample.
var ErrEmpty = errors.New("ks: empty sample")

// Result is the outcome of a Kolmogorov–Smirnov test.
type Result struct {
	N      int     // sample size (min of the two sizes for two-sample)
	D      float64 // KS statistic sup|F̂ - F|
	PValue float64 // asymptotic p-value (Stephens-corrected)
}

// RejectAt reports whether the null hypothesis "the sample follows
// the distribution" is rejected at significance level alpha (the
// paper uses 0.05).
func (r Result) RejectAt(alpha float64) bool { return r.PValue < alpha }

// OneSample tests sample against the continuous distribution d.
func OneSample(sample []float64, d dist.Dist) (Result, error) {
	n := len(sample)
	if n == 0 {
		return Result{}, ErrEmpty
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	var dmax float64
	for i, x := range xs {
		f := d.CDF(x)
		upper := float64(i+1)/float64(n) - f
		lower := f - float64(i)/float64(n)
		if upper > dmax {
			dmax = upper
		}
		if lower > dmax {
			dmax = lower
		}
	}
	return Result{N: n, D: dmax, PValue: PValue(dmax, n)}, nil
}

// TwoSample tests whether xs and ys come from the same continuous
// distribution.
func TwoSample(xs, ys []float64) (Result, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return Result{}, ErrEmpty
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var i, j int
	var dmax float64
	na, nb := float64(len(a)), float64(len(b))
	for i < len(a) && j < len(b) {
		// Advance both ECDFs through every observation equal to the
		// smallest unprocessed value before comparing: at a cross-sample
		// tie both distribution functions jump at once, and evaluating
		// mid-jump would report a spurious gap (ties are the norm for
		// multi-walk minima resampled from a finite pool).
		x := a[i]
		if b[j] < x {
			x = b[j]
		}
		for i < len(a) && a[i] == x {
			i++
		}
		for j < len(b) && b[j] == x {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > dmax {
			dmax = diff
		}
	}
	ne := na * nb / (na + nb)
	return Result{N: int(math.Min(na, nb)), D: dmax, PValue: kolmogorovQ(math.Sqrt(ne) * dmax)}, nil
}

// PValue returns the (approximate) p-value of a one-sample KS
// statistic d with n observations, using Stephens' correction
// t = d·(√n + 0.12 + 0.11/√n), accurate to a few permille for n ≥ 5.
func PValue(d float64, n int) float64 {
	if n < 1 || d <= 0 {
		return 1
	}
	if d >= 1 {
		return 0
	}
	sn := math.Sqrt(float64(n))
	t := d * (sn + 0.12 + 0.11/sn)
	return kolmogorovQ(t)
}

// kolmogorovQ is the Kolmogorov survival function
// Q(t) = 2·Σ_{k≥1} (-1)^{k-1}·exp(-2k²t²), with the Jacobi-theta dual
// series used for small t where the alternating series converges
// slowly.
func kolmogorovQ(t float64) float64 {
	if t <= 0 {
		return 1
	}
	if t < 1.18 {
		// Dual series: Q = 1 - (√(2π)/t)·Σ_{k odd} exp(-k²π²/(8t²)).
		v := math.Pi * math.Pi / (8 * t * t)
		sum := math.Exp(-v) + math.Exp(-9*v) + math.Exp(-25*v) + math.Exp(-49*v)
		return 1 - math.Sqrt(2*math.Pi)/t*sum
	}
	var sum float64
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k) * float64(k) * t * t)
		if k%2 == 1 {
			sum += term
		} else {
			sum -= term
		}
		if term < 1e-16 {
			break
		}
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// CriticalValue returns the approximate critical D at significance
// alpha for sample size n (inverse of PValue by bisection), useful
// for reporting acceptance bands.
func CriticalValue(alpha float64, n int) float64 {
	if alpha <= 0 {
		return 1
	}
	if alpha >= 1 {
		return 0
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if PValue(mid, n) > alpha {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
