package ks

import (
	"math"
	"testing"

	"lasvegas/internal/dist"
	"lasvegas/internal/xrand"
)

func TestKolmogorovQKnownValues(t *testing.T) {
	// Classical table values of the Kolmogorov survival function.
	cases := []struct{ t, q float64 }{
		{1.2238, 0.10},  // 90% critical point
		{1.3581, 0.05},  // 95%
		{1.6276, 0.01},  // 99%
		{1.0727, 0.20},  // 80%
		{0.82757, 0.50}, // median
	}
	for _, c := range cases {
		got := kolmogorovQ(c.t)
		if math.Abs(got-c.q) > 2e-4 {
			t.Errorf("Q(%v) = %v, want %v", c.t, got, c.q)
		}
	}
}

func TestKolmogorovQEdges(t *testing.T) {
	if kolmogorovQ(0) != 1 || kolmogorovQ(-1) != 1 {
		t.Error("Q at non-positive t should be 1")
	}
	if q := kolmogorovQ(10); q > 1e-20 {
		t.Errorf("Q(10) = %v, want ≈0", q)
	}
	// Continuity across the series switch at t = 1.18.
	lo, hi := kolmogorovQ(1.1799999), kolmogorovQ(1.1800001)
	if math.Abs(lo-hi) > 1e-6 {
		t.Errorf("discontinuity at series switch: %v vs %v", lo, hi)
	}
}

func TestOneSampleAcceptsTrueDistribution(t *testing.T) {
	d, _ := dist.NewShiftedExponential(50, 0.01)
	r := xrand.New(99)
	sample := dist.SampleN(d, r, 650)
	res, err := OneSample(sample, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.RejectAt(0.05) {
		t.Errorf("true distribution rejected: D=%v p=%v", res.D, res.PValue)
	}
	if res.N != 650 {
		t.Errorf("N = %d", res.N)
	}
}

func TestOneSampleRejectsWrongDistribution(t *testing.T) {
	// Sample from lognormal, test against an exponential with the same
	// mean — must be rejected with hundreds of observations.
	ln, _ := dist.NewLogNormal(0, 5, 1.5)
	r := xrand.New(5)
	sample := dist.SampleN(ln, r, 650)
	var mean float64
	for _, x := range sample {
		mean += x
	}
	mean /= float64(len(sample))
	exp, _ := dist.NewExponential(1 / mean)
	res, err := OneSample(sample, exp)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RejectAt(0.05) {
		t.Errorf("wrong distribution accepted: D=%v p=%v", res.D, res.PValue)
	}
}

func TestOneSampleEmpty(t *testing.T) {
	d, _ := dist.NewExponential(1)
	if _, err := OneSample(nil, d); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestOneSampleExactSmallCase(t *testing.T) {
	// Single observation at the median of U(0,1): D = 0.5 exactly.
	u, _ := dist.NewUniform(0, 1)
	res, err := OneSample([]float64{0.5}, u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.D-0.5) > 1e-12 {
		t.Errorf("D = %v, want 0.5", res.D)
	}
}

func TestTwoSampleSameDistribution(t *testing.T) {
	d, _ := dist.NewWeibull(1.5, 10)
	r := xrand.New(11)
	xs := dist.SampleN(d, r, 800)
	ys := dist.SampleN(d, r, 900)
	res, err := TwoSample(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.RejectAt(0.01) {
		t.Errorf("same-law samples rejected: D=%v p=%v", res.D, res.PValue)
	}
}

func TestTwoSampleDifferentDistributions(t *testing.T) {
	d1, _ := dist.NewExponential(1)
	d2, _ := dist.NewExponential(0.5) // double the mean
	r := xrand.New(12)
	xs := dist.SampleN(d1, r, 800)
	ys := dist.SampleN(d2, r, 800)
	res, err := TwoSample(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RejectAt(0.01) {
		t.Errorf("different laws accepted: D=%v p=%v", res.D, res.PValue)
	}
}

func TestTwoSampleEmpty(t *testing.T) {
	if _, err := TwoSample(nil, []float64{1}); err == nil {
		t.Error("empty first sample accepted")
	}
	if _, err := TwoSample([]float64{1}, nil); err == nil {
		t.Error("empty second sample accepted")
	}
}

func TestPValueMonotoneInD(t *testing.T) {
	prev := 1.0
	for d := 0.01; d < 0.5; d += 0.01 {
		p := PValue(d, 650)
		if p > prev+1e-12 {
			t.Fatalf("p-value not decreasing at D=%v", d)
		}
		prev = p
	}
}

func TestPValueEdgeCases(t *testing.T) {
	if PValue(0, 100) != 1 {
		t.Error("D=0 should give p=1")
	}
	if PValue(1, 100) != 0 {
		t.Error("D=1 should give p=0")
	}
	if PValue(0.5, 0) != 1 {
		t.Error("n=0 should give p=1")
	}
}

func TestCriticalValueInvertsPValue(t *testing.T) {
	for _, alpha := range []float64{0.01, 0.05, 0.10} {
		for _, n := range []int{50, 650} {
			d := CriticalValue(alpha, n)
			p := PValue(d, n)
			if math.Abs(p-alpha) > 1e-6 {
				t.Errorf("alpha=%v n=%d: PValue(critical) = %v", alpha, n, p)
			}
		}
	}
	if CriticalValue(0, 10) != 1 || CriticalValue(1, 10) != 0 {
		t.Error("degenerate alphas mishandled")
	}
}

func TestPaperScaleAcceptance(t *testing.T) {
	// Emulate the paper's AI 700 test: 720 observations from the fitted
	// shifted exponential must be accepted with a healthy p-value.
	d, _ := dist.NewShiftedExponential(1217, 9.15956e-6)
	r := xrand.New(700)
	sample := dist.SampleN(d, r, 720)
	res, err := OneSample(sample, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.05 {
		t.Errorf("paper-scale sample rejected against own law: p=%v", res.PValue)
	}
}
