package ks

import (
	"math"
	"sort"

	"lasvegas/internal/dist"
)

// AndersonDarling is a second goodness-of-fit test, more sensitive in
// the tails than Kolmogorov–Smirnov — useful exactly where runtime
// distributions matter most for speed-up prediction, since E[Z(n)]
// for large n is dominated by the left tail. The paper uses only KS;
// this is an extension with the same accept/reject interface.
//
// The statistic is A² = -n - (1/n)·Σ (2i-1)[ln F(x₍ᵢ₎) + ln(1-F(x₍ₙ₊₁₋ᵢ₎))],
// and the p-value uses the case-0 (fully specified distribution)
// asymptotic approximation of Marsaglia & Marsaglia (2004), accurate
// to ~1e-3 for n ≥ 8.
func AndersonDarling(sample []float64, d dist.Dist) (Result, error) {
	n := len(sample)
	if n == 0 {
		return Result{}, ErrEmpty
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	nf := float64(n)
	a2 := -nf
	for i := 0; i < n; i++ {
		fi := clampUnit(d.CDF(xs[i]))
		fni := clampUnit(d.CDF(xs[n-1-i]))
		a2 -= (2*float64(i) + 1) / nf * (math.Log(fi) + math.Log(1-fni))
	}
	return Result{N: n, D: a2, PValue: adPValue(a2)}, nil
}

// clampUnit keeps CDF values strictly inside (0,1) so the logs stay
// finite; ties at the support edge otherwise produce ±Inf.
func clampUnit(p float64) float64 {
	const eps = 1e-12
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// adPValue is the Marsaglia 2004 approximation to P(A² > a2) for a
// fully specified null distribution.
func adPValue(a2 float64) float64 {
	if a2 <= 0 {
		return 1
	}
	// Both branches below evaluate the survival P(A² > a2) directly:
	// the first is 1 − CDF with the small-a2 series, the second the
	// large-a2 double-exponential form.
	var p float64
	switch {
	case a2 < 2:
		p = 1 - math.Exp(-1.2337141/a2)/math.Sqrt(a2)*
			(2.00012+(0.247105-(0.0649821-(0.0347962-(0.011672-0.00168691*a2)*a2)*a2)*a2)*a2)
	default:
		p = 1 - math.Exp(-math.Exp(1.0776-(2.30695-(0.43424-(0.082433-(0.008056-0.0003146*a2)*a2)*a2)*a2)*a2))
	}
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
