package ks

import (
	"math"
	"testing"

	"lasvegas/internal/dist"
	"lasvegas/internal/xrand"
)

func TestAndersonDarlingAcceptsTrueDistribution(t *testing.T) {
	d, _ := dist.NewShiftedExponential(50, 0.01)
	r := xrand.New(77)
	sample := dist.SampleN(d, r, 650)
	res, err := AndersonDarling(sample, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.RejectAt(0.05) {
		t.Errorf("true law rejected: A²=%v p=%v", res.D, res.PValue)
	}
}

func TestAndersonDarlingRejectsWrongDistribution(t *testing.T) {
	ln, _ := dist.NewLogNormal(0, 5, 1.5)
	r := xrand.New(78)
	sample := dist.SampleN(ln, r, 650)
	var mean float64
	for _, x := range sample {
		mean += x
	}
	mean /= float64(len(sample))
	exp, _ := dist.NewExponential(1 / mean)
	res, err := AndersonDarling(sample, exp)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RejectAt(0.05) {
		t.Errorf("wrong law accepted: A²=%v p=%v", res.D, res.PValue)
	}
}

func TestAndersonDarlingTailSensitivity(t *testing.T) {
	// A distribution identical in the bulk but wrong in the left tail:
	// AD should flag it at a sample size where it matters. Use a
	// left-truncated exponential tested against the untruncated one.
	truth, _ := dist.NewShiftedExponential(200, 1e-3) // no mass below 200
	model, _ := dist.NewExponential(1.0 / 1200)       // same mean, mass at 0
	r := xrand.New(79)
	sample := dist.SampleN(truth, r, 800)
	res, err := AndersonDarling(sample, model)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RejectAt(0.05) {
		t.Errorf("tail-miss accepted: A²=%v p=%v", res.D, res.PValue)
	}
}

func TestAndersonDarlingKnownCriticalValues(t *testing.T) {
	// Case-0 critical values: A² = 2.492 ⇔ p ≈ 0.05, A² = 3.857 ⇔ 0.01.
	if p := adPValue(2.492); math.Abs(p-0.05) > 0.005 {
		t.Errorf("p(2.492) = %v, want ≈0.05", p)
	}
	if p := adPValue(3.857); math.Abs(p-0.01) > 0.003 {
		t.Errorf("p(3.857) = %v, want ≈0.01", p)
	}
	if p := adPValue(0); p != 1 {
		t.Errorf("p(0) = %v", p)
	}
	// Monotone decreasing.
	prev := 1.0
	for a := 0.1; a < 8; a += 0.1 {
		p := adPValue(a)
		if p > prev+1e-9 {
			t.Fatalf("p-value not decreasing at A²=%v", a)
		}
		prev = p
	}
}

func TestAndersonDarlingEmpty(t *testing.T) {
	d, _ := dist.NewExponential(1)
	if _, err := AndersonDarling(nil, d); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestAndersonDarlingAgreesWithKSOnVerdicts(t *testing.T) {
	// On clear-cut cases both tests agree; sweep a few laws.
	r := xrand.New(80)
	truth, _ := dist.NewWeibull(1.5, 100)
	sample := dist.SampleN(truth, r, 500)
	ksRes, err := OneSample(sample, truth)
	if err != nil {
		t.Fatal(err)
	}
	adRes, err := AndersonDarling(sample, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ksRes.RejectAt(0.01) || adRes.RejectAt(0.01) {
		t.Errorf("true law rejected by KS (p=%v) or AD (p=%v)", ksRes.PValue, adRes.PValue)
	}
}
