// Package specfn implements the special functions required by the
// probability layer that the Go standard library does not provide:
// the inverse error function, regularized incomplete gamma functions,
// the regularized incomplete beta function and the digamma function.
//
// All routines are classical series/continued-fraction evaluations
// (Abramowitz & Stegun; Numerical Recipes) tuned for float64 and are
// accurate to ~1e-12 relative error on their stated domains, which is
// far tighter than anything the speed-up model needs.
package specfn

import (
	"errors"
	"math"
)

// ErrDomain is returned (wrapped) by functions whose argument lies
// outside the mathematical domain.
var ErrDomain = errors.New("specfn: argument outside domain")

// Erf is the error function (re-exported from math for a single
// import surface inside the probability layer).
func Erf(x float64) float64 { return math.Erf(x) }

// Erfc is the complementary error function.
func Erfc(x float64) float64 { return math.Erfc(x) }

// ErfInv returns the inverse error function: y with Erf(y) = x,
// for x in (-1, 1). It refines a rational initial estimate with two
// Newton steps, giving ~1e-15 accuracy over the full domain.
func ErfInv(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return math.NaN()
	case x <= -1:
		if x == -1 {
			return math.Inf(-1)
		}
		return math.NaN()
	case x >= 1:
		if x == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	case x == 0:
		return 0
	}
	// Initial estimate via the normal quantile relation:
	// erfinv(x) = Phi^{-1}((x+1)/2) / sqrt(2).
	y := normQuantile((x+1)/2) / math.Sqrt2
	// Two Newton iterations on f(y) = erf(y) - x; f'(y) = 2/sqrt(pi) e^{-y^2}.
	for i := 0; i < 2; i++ {
		e := math.Erf(y) - x
		y -= e * math.Sqrt(math.Pi) / 2 * math.Exp(y*y)
	}
	return y
}

// normQuantile is Acklam's rational approximation to the standard
// normal quantile, |relative error| < 1.15e-9, refined by one Halley
// step to full double precision. Defined here (rather than importing
// the dist package) to keep specfn dependency-free.
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	var q, r, x float64
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q = math.Sqrt(-2 * math.Log(p))
		x = (((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-2.400758277161838e+00)*q-2.549732539343734e+00)*q+4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	case p <= pHigh:
		q = p - 0.5
		r = q * q
		x = (((((-3.969683028665376e+01*r+2.209460984245205e+02)*r-2.759285104469687e+02)*r+1.383577518672690e+02)*r-3.066479806614716e+01)*r + 2.506628277459239e+00) * q /
			(((((-5.447609879822406e+01*r+1.615858368580409e+02)*r-1.556989798598866e+02)*r+6.680131188771972e+01)*r-1.328068155288572e+01)*r + 1)
	default:
		q = math.Sqrt(-2 * math.Log(1-p))
		x = -(((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-2.400758277161838e+00)*q-2.549732539343734e+00)*q+4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	}
	// One Halley refinement using the exact CDF (erfc form).
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// NormQuantile exposes the refined standard normal quantile.
func NormQuantile(p float64) float64 { return normQuantile(p) }

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a,x)/Γ(a) for a > 0, x >= 0.
func GammaP(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if math.IsInf(x, 1) {
		return 1
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if math.IsInf(x, 1) {
		return 0
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaCF(a, x)
}

const (
	seriesEps  = 1e-15
	maxIter    = 500
	tinyFactor = 1e-300
)

// gammaSeries evaluates P(a,x) by its power series (x < a+1).
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*seriesEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaCF evaluates Q(a,x) by Lentz's continued fraction (x >= a+1).
func gammaCF(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tinyFactor
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tinyFactor {
			d = tinyFactor
		}
		c = b + an/c
		if math.Abs(c) < tinyFactor {
			c = tinyFactor
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < seriesEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// BetaInc returns the regularized incomplete beta function
// I_x(a, b) for a, b > 0 and x in [0, 1].
func BetaInc(a, b, x float64) float64 {
	if a <= 0 || b <= 0 || x < 0 || x > 1 || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x == 1 {
		return 1
	}
	lbeta := lgammaSum(a, b)
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lbeta)
	// Use the continued fraction in its rapidly converging region.
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// lgammaSum returns log Beta(a,b) = lgamma(a)+lgamma(b)-lgamma(a+b).
func lgammaSum(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// betaCF is the Lentz continued fraction for the incomplete beta.
func betaCF(a, b, x float64) float64 {
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tinyFactor {
		d = tinyFactor
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tinyFactor {
			d = tinyFactor
		}
		c = 1 + aa/c
		if math.Abs(c) < tinyFactor {
			c = tinyFactor
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tinyFactor {
			d = tinyFactor
		}
		c = 1 + aa/c
		if math.Abs(c) < tinyFactor {
			c = tinyFactor
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < seriesEps {
			break
		}
	}
	return h
}

// Digamma returns ψ(x), the logarithmic derivative of the gamma
// function, for x > 0 (negative non-integer x via reflection).
func Digamma(x float64) float64 {
	if math.IsNaN(x) || (x <= 0 && x == math.Trunc(x)) {
		return math.NaN()
	}
	var result float64
	// Reflection for negative arguments.
	if x < 0 {
		result -= math.Pi / math.Tan(math.Pi*x)
		x = 1 - x
	}
	// Recurrence to push x into the asymptotic region.
	for x < 10 {
		result -= 1 / x
		x++
	}
	// Asymptotic expansion (A&S 6.3.18) through the 1/x^10 term.
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - inv/2 -
		inv2*(1.0/12-inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2/132))))
	return result
}

// Trigamma returns ψ'(x) for x > 0 (used by gamma-distribution MLE
// Newton iterations).
func Trigamma(x float64) float64 {
	if math.IsNaN(x) || x <= 0 {
		return math.NaN()
	}
	var result float64
	for x < 10 {
		result += 1 / (x * x)
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// Asymptotic expansion (A&S 6.4.12):
	// 1/x + 1/(2x²) + 1/(6x³) - 1/(30x⁵) + 1/(42x⁷) - 1/(30x⁹) + ...
	result += inv * (1 + inv/2 + inv2*(1.0/6-inv2*(1.0/30-inv2*(1.0/42-inv2/30))))
	return result
}

// LogGamma returns log|Γ(x)| (thin wrapper over math.Lgamma that
// discards the sign, which is always +1 for x > 0).
func LogGamma(x float64) float64 {
	lg, _ := math.Lgamma(x)
	return lg
}
