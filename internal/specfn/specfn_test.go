package specfn

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
	if math.Abs(got-want) > tol*(1+math.Abs(want)) {
		t.Fatalf("%s: got %v, want %v (tol %g)", msg, got, want, tol)
	}
}

func TestErfInvRoundTrip(t *testing.T) {
	for _, x := range []float64{-0.999, -0.9, -0.5, -0.1, 0, 0.1, 0.5, 0.9, 0.999, 0.9999999} {
		y := ErfInv(x)
		approx(t, math.Erf(y), x, 1e-12, "erf(erfinv(x))")
	}
}

func TestErfInvProperty(t *testing.T) {
	f := func(u float64) bool {
		x := math.Mod(math.Abs(u), 1) // map to [0,1)
		if x >= 1 {
			return true
		}
		y := ErfInv(x)
		return math.Abs(math.Erf(y)-x) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestErfInvEdges(t *testing.T) {
	if !math.IsInf(ErfInv(1), 1) {
		t.Error("ErfInv(1) should be +Inf")
	}
	if !math.IsInf(ErfInv(-1), -1) {
		t.Error("ErfInv(-1) should be -Inf")
	}
	if !math.IsNaN(ErfInv(1.5)) || !math.IsNaN(ErfInv(-2)) {
		t.Error("ErfInv outside [-1,1] should be NaN")
	}
	if ErfInv(0) != 0 {
		t.Error("ErfInv(0) should be 0")
	}
}

func TestNormQuantileKnownValues(t *testing.T) {
	// Reference values from standard normal tables.
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.84134474606854293, 1},
		{0.9986501019683699, 3},
		{1e-10, -6.361340902404056},
	}
	for _, c := range cases {
		approx(t, NormQuantile(c.p), c.z, 1e-8, "NormQuantile")
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	cdf := func(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }
	for p := 0.0001; p < 1; p += 0.0173 {
		approx(t, cdf(NormQuantile(p)), p, 1e-12, "Phi(Phi^-1(p))")
	}
}

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}
	for _, x := range []float64{0.1, 1, 2, 5, 10} {
		approx(t, GammaP(1, x), 1-math.Exp(-x), 1e-12, "P(1,x)")
	}
	// P(1/2, x) = erf(sqrt(x))
	for _, x := range []float64{0.25, 1, 4} {
		approx(t, GammaP(0.5, x), math.Erf(math.Sqrt(x)), 1e-12, "P(1/2,x)")
	}
	// Median of gamma(a=5): P(5, 4.670909) ≈ 0.5
	approx(t, GammaP(5, 4.670908882603672), 0.5, 1e-8, "gamma(5) median")
}

func TestGammaPQComplement(t *testing.T) {
	for _, a := range []float64{0.3, 1, 2.5, 10, 100} {
		for _, x := range []float64{0.01, 0.5, 1, 3, 50, 200} {
			p, q := GammaP(a, x), GammaQ(a, x)
			approx(t, p+q, 1, 1e-12, "P+Q=1")
		}
	}
}

func TestGammaPEdges(t *testing.T) {
	if GammaP(2, 0) != 0 {
		t.Error("P(a,0) should be 0")
	}
	if GammaP(2, math.Inf(1)) != 1 {
		t.Error("P(a,Inf) should be 1")
	}
	if !math.IsNaN(GammaP(-1, 2)) || !math.IsNaN(GammaP(2, -1)) {
		t.Error("invalid domain should give NaN")
	}
}

func TestGammaPMonotone(t *testing.T) {
	f := func(a, x1, x2 float64) bool {
		a = 0.1 + math.Mod(math.Abs(a), 20)
		x1 = math.Mod(math.Abs(x1), 50)
		x2 = math.Mod(math.Abs(x2), 50)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return GammaP(a, x1) <= GammaP(a, x2)+1e-14
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBetaIncKnownValues(t *testing.T) {
	// I_x(1,1) = x
	for _, x := range []float64{0.1, 0.5, 0.9} {
		approx(t, BetaInc(1, 1, x), x, 1e-12, "I_x(1,1)")
	}
	// I_x(2,2) = x^2(3-2x)
	for _, x := range []float64{0.2, 0.5, 0.8} {
		approx(t, BetaInc(2, 2, x), x*x*(3-2*x), 1e-12, "I_x(2,2)")
	}
	// Symmetry I_x(a,b) = 1 - I_{1-x}(b,a)
	approx(t, BetaInc(3.5, 1.2, 0.3), 1-BetaInc(1.2, 3.5, 0.7), 1e-12, "beta symmetry")
}

func TestBetaIncEdges(t *testing.T) {
	if BetaInc(2, 3, 0) != 0 || BetaInc(2, 3, 1) != 1 {
		t.Error("BetaInc endpoints wrong")
	}
	if !math.IsNaN(BetaInc(-1, 2, 0.5)) || !math.IsNaN(BetaInc(1, 2, 1.5)) {
		t.Error("BetaInc domain errors should be NaN")
	}
}

func TestDigammaKnownValues(t *testing.T) {
	const euler = 0.5772156649015329
	approx(t, Digamma(1), -euler, 1e-12, "psi(1)")
	approx(t, Digamma(0.5), -euler-2*math.Ln2, 1e-12, "psi(1/2)")
	approx(t, Digamma(2), 1-euler, 1e-12, "psi(2)")
	// Recurrence psi(x+1) = psi(x) + 1/x
	for _, x := range []float64{0.3, 1.7, 4.2, 11} {
		approx(t, Digamma(x+1), Digamma(x)+1/x, 1e-11, "psi recurrence")
	}
}

func TestTrigammaKnownValues(t *testing.T) {
	approx(t, Trigamma(1), math.Pi*math.Pi/6, 1e-10, "psi'(1)")
	approx(t, Trigamma(0.5), math.Pi*math.Pi/2, 1e-10, "psi'(1/2)")
	// Recurrence psi'(x+1) = psi'(x) - 1/x^2
	for _, x := range []float64{0.4, 2.3, 7.7} {
		approx(t, Trigamma(x+1), Trigamma(x)-1/(x*x), 1e-10, "psi' recurrence")
	}
}

func TestLogGammaMatchesStdlib(t *testing.T) {
	for _, x := range []float64{0.1, 1, 2.5, 10, 100} {
		lg, _ := math.Lgamma(x)
		approx(t, LogGamma(x), lg, 0, "LogGamma")
	}
}
