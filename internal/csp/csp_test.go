package csp

import (
	"testing"
)

// toy is a minimal non-incremental permutation problem: cost = number
// of fixed points (sol[i] == i); solutions are derangements.
type toy struct{ n int }

func (t toy) Size() int    { return t.n }
func (t toy) Name() string { return "toy" }
func (t toy) Cost(sol []int) int {
	c := 0
	for i, v := range sol {
		if v == i {
			c++
		}
	}
	return c
}

// incToy wraps toy with a (deliberately simple) incremental layer.
type incToy struct {
	toy
	calls int
}

func (t *incToy) InitState([]int) {}
func (t *incToy) CostIfSwap(sol []int, cost, i, j int) int {
	t.calls++
	sol[i], sol[j] = sol[j], sol[i]
	c := t.Cost(sol)
	sol[i], sol[j] = sol[j], sol[i]
	return c
}
func (t *incToy) ExecutedSwap([]int, int, int) {}

func TestCostIfSwapFallback(t *testing.T) {
	p := toy{5}
	sol := []int{0, 1, 2, 3, 4}
	cost := p.Cost(sol)
	if cost != 5 {
		t.Fatalf("identity cost %d", cost)
	}
	// Swapping 0 and 1 removes two fixed points.
	if c := CostIfSwap(p, sol, cost, 0, 1); c != 3 {
		t.Errorf("CostIfSwap = %d, want 3", c)
	}
	// The probe must not mutate sol.
	for i, v := range sol {
		if v != i {
			t.Fatal("fallback probe mutated the configuration")
		}
	}
}

func TestCostIfSwapUsesIncrementalPath(t *testing.T) {
	p := &incToy{toy: toy{4}}
	sol := []int{0, 1, 2, 3}
	CostIfSwap(p, sol, 4, 1, 2)
	if p.calls != 1 {
		t.Errorf("incremental path not taken (calls=%d)", p.calls)
	}
}

func TestValidate(t *testing.T) {
	p := toy{4}
	cases := []struct {
		sol []int
		ok  bool
	}{
		{[]int{0, 1, 2, 3}, true},
		{[]int{3, 2, 1, 0}, true},
		{[]int{0, 1, 2}, false},       // short
		{[]int{0, 1, 2, 2}, false},    // duplicate
		{[]int{0, 1, 2, 4}, false},    // out of range
		{[]int{-1, 1, 2, 3}, false},   // negative
		{[]int{0, 1, 2, 3, 4}, false}, // long
	}
	for _, c := range cases {
		if got := Validate(p, c.sol); got != c.ok {
			t.Errorf("Validate(%v) = %v, want %v", c.sol, got, c.ok)
		}
	}
}
