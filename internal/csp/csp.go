// Package csp defines the permutation-CSP abstraction consumed by the
// Adaptive Search solver (internal/adaptive), mirroring the interface
// of the reference C library by Codognet & Diaz that the paper uses:
// a global cost function, an error projection onto variables, and
// incremental swap deltas.
//
// A configuration is a permutation of {0..N-1} held by the solver;
// problems keep whatever incremental state they need and are notified
// of executed swaps. Every benchmark of the paper (ALL-INTERVAL,
// MAGIC-SQUARE, COSTAS ARRAY) is naturally a permutation problem.
package csp

// Problem is a combinatorial problem whose configurations are
// permutations of {0..N-1}. Cost 0 means the configuration satisfies
// every constraint. Implementations must treat sol as read-only.
type Problem interface {
	// Size returns the number of variables N.
	Size() int
	// Cost returns the global error of sol from scratch (0 = solved).
	Cost(sol []int) int
	// Name identifies the problem instance, e.g. "magic-square-10".
	Name() string
}

// Incremental is implemented by problems that maintain internal state
// allowing swap deltas cheaper than a full Cost recomputation. The
// solver guarantees the call sequence: InitState(sol) once per
// (re)start, then any number of CostIfSwap probes against the current
// sol, and ExecutedSwap immediately after it swaps two positions.
type Incremental interface {
	Problem
	// InitState (re)builds incremental structures for configuration sol.
	InitState(sol []int)
	// CostIfSwap returns the cost sol would have after swapping
	// positions i and j, given its current cost.
	CostIfSwap(sol []int, cost, i, j int) int
	// ExecutedSwap informs the problem that positions i and j of sol
	// have just been exchanged (sol already reflects the swap).
	ExecutedSwap(sol []int, i, j int)
}

// VariableCost is implemented by problems that can project the global
// error onto individual variables (the "worst culprit" heuristic of
// Adaptive Search, §4.2 of the paper). Problems without it fall back
// to a probing projection computed from CostIfSwap.
type VariableCost interface {
	// CostOnVariable returns the error attributed to position i in sol.
	CostOnVariable(sol []int, i int) int
}

// CostIfSwap probes p, using the incremental path when available and
// otherwise swapping, recomputing and swapping back.
func CostIfSwap(p Problem, sol []int, cost, i, j int) int {
	if inc, ok := p.(Incremental); ok {
		return inc.CostIfSwap(sol, cost, i, j)
	}
	sol[i], sol[j] = sol[j], sol[i]
	c := p.Cost(sol)
	sol[i], sol[j] = sol[j], sol[i]
	return c
}

// Validate reports whether sol is a permutation of {0..N-1} matching
// p.Size(); solver results are checked with it in tests.
func Validate(p Problem, sol []int) bool {
	if len(sol) != p.Size() {
		return false
	}
	seen := make([]bool, len(sol))
	for _, v := range sol {
		if v < 0 || v >= len(sol) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
