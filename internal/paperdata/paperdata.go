// Package paperdata embeds the numbers published in the paper's
// evaluation (Tables 1–5 and the fitted distribution parameters of
// §6), so that:
//
//   - `lvexp -paper` reproduces the paper's own tables and the
//     predicted-vs-experimental comparison without re-running the
//     authors' multi-hour Grid'5000 campaigns, and
//   - the test-suite can assert that this repository's predictor,
//     fed the paper's fitted parameters, regenerates the paper's
//     predicted speed-up rows (Table 5) — the strongest available
//     ground truth for the prediction pipeline.
package paperdata

import (
	"fmt"

	"lasvegas/internal/dist"
	"lasvegas/internal/problems"
)

// Cores is the core grid of Tables 3–5.
var Cores = []int{16, 32, 64, 128, 256}

// SummaryRow mirrors the min/mean/median/max shape of Tables 1–2.
type SummaryRow struct {
	Problem                string
	Min, Mean, Median, Max float64
}

// Table1Times holds the sequential execution times in seconds.
var Table1Times = []SummaryRow{
	{"MS 200", 5.51, 382.0, 126.3, 7441.6},
	{"AI 700", 23.25, 1354.0, 945.4, 10243.4},
	{"Costas 21", 6.55, 3744.4, 2457.4, 19972.0},
}

// Table2Iterations holds the sequential iteration counts.
var Table2Iterations = []SummaryRow{
	{"MS 200", 6210, 443969, 164042, 7895872},
	{"AI 700", 1217, 110393, 76242, 826871},
	{"Costas 21", 321361, 183428617, 119667588, 977709115},
}

// SpeedupRow is one problem's measured speed-ups over Cores.
type SpeedupRow struct {
	Problem  string
	Speedups []float64 // aligned with Cores
}

// Table3TimeSpeedups: speed-ups w.r.t. sequential time.
var Table3TimeSpeedups = []SpeedupRow{
	{"MS 200", []float64{18.3, 24.5, 32.3, 37.0, 47.8}},
	{"AI 700", []float64{12.9, 19.3, 30.6, 39.2, 45.5}},
	{"Costas 21", []float64{15.7, 26.4, 59.8, 154.5, 274.8}},
}

// Table4IterSpeedups: speed-ups w.r.t. sequential iterations.
var Table4IterSpeedups = []SpeedupRow{
	{"MS 200", []float64{16.6, 22.2, 29.9, 34.3, 45.0}},
	{"AI 700", []float64{12.8, 20.2, 29.3, 37.3, 48.0}},
	{"Costas 21", []float64{15.8, 26.4, 60.0, 159.2, 290.5}},
}

// Table5Predicted: the paper's predicted speed-ups.
var Table5Predicted = []SpeedupRow{
	{"MS 200", []float64{15.94, 22.04, 28.28, 34.26, 39.7}},
	{"AI 700", []float64{13.7, 23.8, 37.8, 53.3, 67.2}},
	{"Costas 21", []float64{16.0, 32.0, 64.0, 128.0, 256.0}},
}

// Campaign sizes behind §6's fits.
const (
	RunsAI     = 720
	RunsMS     = 662
	RunsCostas = 638
)

// FittedAI700 returns the paper's §6.1 shifted exponential for
// ALL-INTERVAL 700 (x0 = 1217, λ = 9.15956e-6).
func FittedAI700() dist.ShiftedExponential {
	d, err := dist.NewShiftedExponential(1217, 9.15956e-6)
	if err != nil {
		panic(fmt.Sprintf("paperdata: %v", err)) // impossible: constants
	}
	return d
}

// FittedMS200 returns the paper's §6.2 shifted lognormal for
// MAGIC-SQUARE 200 (x0 = 6210, μ = 12.0275, σ = 1.3398).
func FittedMS200() dist.LogNormal {
	d, err := dist.NewLogNormal(6210, 12.0275, 1.3398)
	if err != nil {
		panic(fmt.Sprintf("paperdata: %v", err))
	}
	return d
}

// FittedCostas21 returns the paper's §6.3 unshifted exponential for
// COSTAS ARRAY 21 (λ = 1/mean = 5.4·10⁻⁹).
func FittedCostas21() dist.ShiftedExponential {
	d, err := dist.NewExponential(5.4e-9)
	if err != nil {
		panic(fmt.Sprintf("paperdata: %v", err))
	}
	return d
}

// KS p-values reported in §6.
const (
	PValueAI     = 0.77435
	PValueCostas = 0.751915
)

// SpeedupLimitAI is §6.1's limit of the AI 700 speed-up curve.
const SpeedupLimitAI = 90.7087

// SpeedupLimitMS is §6.2's approximate limit for MS 200.
const SpeedupLimitMS = 71.5

// Fitted returns the paper's fitted distribution for a paper
// benchmark kind, with ok=false for non-paper problems.
func Fitted(kind problems.Kind) (dist.Dist, bool) {
	switch kind {
	case problems.AllInterval:
		return FittedAI700(), true
	case problems.MagicSquare:
		return FittedMS200(), true
	case problems.Costas:
		return FittedCostas21(), true
	}
	return nil, false
}

// PaperLabel returns the paper's display name for a benchmark kind.
func PaperLabel(kind problems.Kind) (string, bool) {
	switch kind {
	case problems.AllInterval:
		return "AI 700", true
	case problems.MagicSquare:
		return "MS 200", true
	case problems.Costas:
		return "Costas 21", true
	}
	return "", false
}

// Figure14Cores is the core grid of the 8,192-core Costas experiment.
var Figure14Cores = []int{512, 1024, 2048, 4096, 8192}
