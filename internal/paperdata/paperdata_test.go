package paperdata

import (
	"math"
	"testing"

	"lasvegas/internal/core"
	"lasvegas/internal/problems"
)

func TestTablesAligned(t *testing.T) {
	for _, rows := range [][]SpeedupRow{Table3TimeSpeedups, Table4IterSpeedups, Table5Predicted} {
		if len(rows) != 3 {
			t.Fatalf("expected 3 problems, got %d", len(rows))
		}
		for _, r := range rows {
			if len(r.Speedups) != len(Cores) {
				t.Errorf("%s: %d speed-ups for %d cores", r.Problem, len(r.Speedups), len(Cores))
			}
		}
	}
	if len(Table1Times) != 3 || len(Table2Iterations) != 3 {
		t.Error("summary tables incomplete")
	}
}

func TestFittedMeansMatchPublishedMeans(t *testing.T) {
	// The paper's estimators tie fitted means to Table 2's means.
	ai := FittedAI700()
	if m := ai.Mean(); math.Abs(m-110393) > 110393*0.001 {
		t.Errorf("AI fitted mean %v vs published 110393", m)
	}
	costas := FittedCostas21()
	if m := costas.Mean(); math.Abs(m-183428617) > 183428617*0.02 {
		t.Errorf("Costas fitted mean %v vs published 1.83e8", m)
	}
	// Lognormal mean is not exactly the sample mean under MLE — allow
	// a wider band.
	ms := FittedMS200()
	if m := ms.Mean(); math.Abs(m-443969) > 443969*0.10 {
		t.Errorf("MS fitted mean %v vs published 443969", m)
	}
}

// TestPredictorReproducesTable5 is the repository's ground-truth
// check: the Go pipeline fed the paper's fitted parameters must
// reproduce the paper's own predicted rows.
func TestPredictorReproducesTable5(t *testing.T) {
	for _, row := range Table5Predicted {
		var kind problems.Kind
		switch row.Problem {
		case "MS 200":
			kind = problems.MagicSquare
		case "AI 700":
			kind = problems.AllInterval
		case "Costas 21":
			kind = problems.Costas
		}
		d, ok := Fitted(kind)
		if !ok {
			t.Fatalf("no fit for %s", row.Problem)
		}
		p, err := core.NewPredictor(d)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range Cores {
			g, err := p.Speedup(k)
			if err != nil {
				t.Fatal(err)
			}
			want := row.Speedups[i]
			if math.Abs(g-want) > 0.005*want+0.005 {
				t.Errorf("%s k=%d: predicted %v, paper %v", row.Problem, k, g, want)
			}
		}
	}
}

func TestSpeedupLimitAI(t *testing.T) {
	p, err := core.NewPredictor(FittedAI700())
	if err != nil {
		t.Fatal(err)
	}
	if lim := p.Limit(); math.Abs(lim-SpeedupLimitAI) > 1e-3 {
		t.Errorf("AI limit %v vs paper %v", lim, SpeedupLimitAI)
	}
}

func TestFittedLookup(t *testing.T) {
	for _, kind := range []problems.Kind{problems.AllInterval, problems.MagicSquare, problems.Costas} {
		if _, ok := Fitted(kind); !ok {
			t.Errorf("no fit for %s", kind)
		}
		if _, ok := PaperLabel(kind); !ok {
			t.Errorf("no label for %s", kind)
		}
	}
	if _, ok := Fitted(problems.Queens); ok {
		t.Error("queens should have no paper fit")
	}
}
