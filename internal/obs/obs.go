// Package obs is the lvserve fleet's zero-dependency telemetry layer:
// a metrics registry (counters, gauges, and quantile-sketch-backed
// latency histograms) rendered in the Prometheus text exposition
// format, plus the per-request trace-ID plumbing that makes one
// client request one grep-able line set across every replica it
// touches.
//
// # Dogfooding the sketch
//
// The paper's whole method is "observe the runtime distribution, then
// predict" — and Hoos & Stützle (arXiv 1301.7383) argue that mean or
// single-percentile point summaries of runtime behaviour mislead,
// while the full runtime distribution is the observable worth
// keeping. This package applies that lesson to the serving fleet
// itself: per-endpoint latency is recorded into the same mergeable
// quantile sketch (internal/sketch) the system sells to its users, so
// /v1/metrics can expose *exact-until-compaction* p50/p90/p99 (not
// pre-binned approximations) alongside conventional cumulative
// histogram buckets derived from the sketch's CDF. The sketch is the
// RTD of the server's own behaviour.
//
// # Design constraints
//
//   - Stdlib only. The daemon must not grow a client_golang
//     dependency; the text exposition format is tiny and stable.
//   - Deterministic rendering: families sorted by name, series sorted
//     by label signature, floats formatted shortest-round-trip — two
//     scrapes of identical state are byte-identical, which keeps the
//     golden test honest.
//   - Bounded cardinality is the caller's job: label values are
//     expected to come from closed sets (route names, status classes,
//     peer indices), never from request data.
//
// A Registry and everything it hands out are safe for concurrent use.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"lasvegas/internal/sketch"
)

// LatencyBuckets is the default cumulative-bucket ladder (seconds) a
// latency Histogram renders: half a millisecond to ten seconds, the
// span between a cached healthz answer and a cold censored-MLE fit.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// quantiles are the exact quantile lines a Histogram exposes next to
// its buckets (the p50/p90/p99 an operator actually pages on).
var quantiles = []float64{0.5, 0.9, 0.99}

// Registry holds metric families and renders them as Prometheus text.
// Register every family once at construction time; With() handles the
// per-label-set fan-out afterwards.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family is one metric family: a name, help text, a type, fixed label
// names, and the per-label-set series.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge" or "histogram"
	labels []string

	mu     sync.Mutex
	series map[string]any // labelSignature -> *Counter | *Histogram
	gauge  func() float64 // label-less gauge callback (typ "gauge")

	qname string // histogram only: the exact-quantile gauge family name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register adds a family, panicking on a duplicate name — families
// are wired once at Server construction, so a collision is a
// programming error, not a runtime condition.
func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[f.name]; dup {
		panic("obs: duplicate metric family " + f.name)
	}
	r.fams[f.name] = f
	return f
}

// Counter registers a counter family with the given label names (none
// is fine: With() with no values yields the single series).
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	f := r.register(&family{
		name: name, help: help, typ: "counter",
		labels: labels, series: make(map[string]any),
	})
	return &CounterVec{f: f}
}

// GaugeFunc registers a label-less gauge whose value is read by fn at
// every scrape — the natural shape for "current depth" observables
// (hint backlog, resident campaigns) that already live in the server.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "gauge", gauge: fn})
}

// Histogram registers a latency-histogram family: each series folds
// observations into a quantile sketch and renders cumulative buckets
// (derived from the sketch CDF), _sum, _count, and — under the
// separate gauge family qname with a "quantile" label — the sketch's
// p50/p90/p99. qname may be empty to skip the quantile lines.
func (r *Registry) Histogram(name, qname, help string, labels ...string) *HistogramVec {
	f := r.register(&family{
		name: name, help: help, typ: "histogram",
		labels: labels, series: make(map[string]any), qname: qname,
	})
	if qname != "" {
		// The quantile family reserves its name (duplicate registration
		// must fail) but renders from the histogram's series.
		r.register(&family{name: qname, typ: "quantile-alias"})
	}
	return &HistogramVec{f: f}
}

// --- counters ------------------------------------------------------

// CounterVec is a counter family; With picks one labeled series.
type CounterVec struct{ f *family }

// Counter is one monotonically increasing series.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 is a programming error and ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// With returns the series for the given label values (created on
// first use), which must match the registered label names in number.
func (v *CounterVec) With(values ...string) *Counter {
	s := v.f.seriesFor(values, func() any { return &Counter{} })
	return s.(*Counter)
}

// --- histograms ----------------------------------------------------

// HistogramVec is a histogram family; With picks one labeled series.
type HistogramVec struct{ f *family }

// Histogram folds observations (seconds) into a quantile sketch. One
// mutex guards the sketch for both writers and the scraper — the
// sketch itself is not safe for concurrent mutation.
type Histogram struct {
	mu    sync.Mutex
	sk    *sketch.Sketch
	sum   float64
	count int64
}

// With returns the series for the given label values (created on
// first use).
func (v *HistogramVec) With(values ...string) *Histogram {
	s := v.f.seriesFor(values, func() any {
		sk, err := sketch.New(0) // DefaultK
		if err != nil {
			panic(err) // sketch.New(0) cannot fail
		}
		return &Histogram{sk: sk}
	})
	return s.(*Histogram)
}

// Observe folds one latency observation in seconds. Non-finite or
// negative values are dropped — a clock step must not poison the RTD.
func (h *Histogram) Observe(seconds float64) {
	if math.IsNaN(seconds) || math.IsInf(seconds, 0) || seconds < 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.sk.Add(seconds) == nil {
		h.sum += seconds
		h.count++
	}
}

// Quantile reports the sketch's estimate of the p-quantile (exact
// while the series has seen fewer than the sketch capacity
// observations), or NaN before the first observation.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sk.Quantile(p)
}

// Count reports the number of observations folded in.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// snapshot captures the series under its lock for rendering.
func (h *Histogram) snapshot() (buckets []int64, sum float64, count int64, qs []float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	buckets = make([]int64, len(LatencyBuckets))
	for i, le := range LatencyBuckets {
		// The sketch CDF is the estimated fraction ≤ le; scaled by n it
		// is the cumulative bucket count (exact until compaction).
		buckets[i] = int64(math.Round(h.sk.CDF(le) * float64(h.sk.N())))
	}
	qs = make([]float64, len(quantiles))
	for i, p := range quantiles {
		qs[i] = h.sk.Quantile(p)
	}
	return buckets, h.sum, h.count, qs
}

// --- series bookkeeping --------------------------------------------

// seriesFor returns (creating on first use) the series keyed by the
// given label values.
func (f *family) seriesFor(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelSignature(f.labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	f.series[key] = s
	return s
}

// labelSignature renders a label set as the exposition-format
// `{k="v",...}` block (empty for no labels). Doubles as the map key,
// which makes render ordering and lookup agree by construction.
func labelSignature(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// --- rendering -----------------------------------------------------

// WriteText renders every family in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// write renders one family (histograms render their quantile alias
// family too, under its own TYPE header).
func (f *family) write(w io.Writer) error {
	if f.typ == "quantile-alias" {
		return nil // rendered by its histogram family
	}
	var b strings.Builder
	if f.help != "" {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
	}
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
	switch f.typ {
	case "gauge":
		fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.gauge()))
	case "counter":
		for _, key := range f.sortedKeys() {
			f.mu.Lock()
			c := f.series[key].(*Counter)
			f.mu.Unlock()
			fmt.Fprintf(&b, "%s%s %d\n", f.name, key, c.Value())
		}
	case "histogram":
		keys := f.sortedKeys()
		for _, key := range keys {
			f.mu.Lock()
			h := f.series[key].(*Histogram)
			f.mu.Unlock()
			buckets, sum, count, _ := h.snapshot()
			for i, le := range LatencyBuckets {
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, mergeLabels(key, "le", formatFloat(le)), buckets[i])
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, mergeLabels(key, "le", "+Inf"), count)
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, key, formatFloat(sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, key, count)
		}
		if f.qname != "" {
			fmt.Fprintf(&b, "# TYPE %s gauge\n", f.qname)
			for _, key := range keys {
				f.mu.Lock()
				h := f.series[key].(*Histogram)
				f.mu.Unlock()
				_, _, count, qs := h.snapshot()
				if count == 0 {
					continue // a NaN quantile line helps nobody
				}
				for i, p := range quantiles {
					fmt.Fprintf(&b, "%s%s %s\n", f.qname,
						mergeLabels(key, "quantile", formatFloat(p)), formatFloat(qs[i]))
				}
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sortedKeys lists the family's label signatures, sorted.
func (f *family) sortedKeys() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mergeLabels appends one extra label (le, quantile) to a label
// signature.
func mergeLabels(sig, name, value string) string {
	extra := name + `="` + value + `"`
	if sig == "" {
		return "{" + extra + "}"
	}
	return sig[:len(sig)-1] + "," + extra + "}"
}

// formatFloat renders a float shortest-round-trip, the deterministic
// exposition-format number form.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
