package obs

import (
	"bytes"
	"context"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildFixture assembles a registry with every metric kind holding
// fixed values — the scrape the golden file pins down.
func buildFixture() *Registry {
	r := NewRegistry()
	req := r.Counter("lvserve_requests_total", "Requests served, by route and status class.", "route", "status")
	req.With("/v1/fit", "2xx").Add(42)
	req.With("/v1/fit", "4xx").Inc()
	req.With("/v1/campaigns", "2xx").Add(7)
	r.GaugeFunc("lvserve_hints_queue_depth", "Hinted-handoff writes awaiting redelivery.", func() float64 { return 3 })
	lat := r.Histogram("lvserve_request_latency_seconds", "lvserve_request_latency_quantile_seconds",
		"Request latency by route, sketch-backed.", "route")
	h := lat.With("/v1/fit")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 1000) // 1ms .. 100ms, exact mode
	}
	lat.With("/v1/predict") // registered, never observed: buckets only, no quantiles
	return r
}

func TestWriteTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixture().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run `go test ./internal/obs -update` to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("rendered metrics differ from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

func TestRenderIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	reg := buildFixture()
	if err := reg.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two scrapes of identical state rendered differently")
	}
}

// TestConcurrentMutation hammers every metric kind from many
// goroutines while a scraper renders — the race detector is the
// assertion (the CI race job runs this package).
func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", "worker")
	hv := r.Histogram("h_seconds", "h_quantile_seconds", "", "worker")
	var depth sync.Map
	r.GaugeFunc("g", "", func() float64 {
		n := 0.0
		depth.Range(func(_, _ any) bool { n++; return true })
		return n
	})

	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w%4))
			for i := 0; i < per; i++ {
				c.With(label).Inc()
				hv.With(label).Observe(float64(i) / 1e4)
				depth.Store(w*per+i, struct{}{})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WriteText(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	total := int64(0)
	for _, l := range []string{"a", "b", "c", "d"} {
		total += c.With(l).Value()
	}
	if want := int64(workers * per); total != want {
		t.Errorf("counter total = %d, want %d", total, want)
	}
	if got := hv.With("a").Count(); got != workers/4*per {
		t.Errorf("histogram a count = %d, want %d", got, workers/4*per)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", "").With()
	if q := h.Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty histogram p50 = %v, want NaN", q)
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	// Exact mode ends at the sketch capacity (1024 > 1000): quantiles
	// are the exact order statistics.
	if q := h.Quantile(0.5); q != 500 {
		t.Errorf("p50 = %v, want 500", q)
	}
	if q := h.Quantile(0.99); q != 990 {
		t.Errorf("p99 = %v, want 990", q)
	}
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(-1)
	if got := h.Count(); got != 1000 {
		t.Errorf("count after junk observations = %d, want 1000", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixture().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(`lvserve_requests_total{route="/v1/fit",status="2xx"}`); !ok || v != 42 {
		t.Errorf("fit 2xx = %v, %v; want 42, true", v, ok)
	}
	if sum, ok := s.SumFamily("lvserve_requests_total"); !ok || sum != 50 {
		t.Errorf("requests sum = %v, %v; want 50, true", sum, ok)
	}
	if !s.HasFamily("lvserve_hints_queue_depth") {
		t.Error("gauge family missing from parse")
	}
	p99, ok := s.MaxLabeled("lvserve_request_latency_quantile_seconds", `quantile="0.99"`)
	if !ok || p99 != 0.099 {
		t.Errorf("parsed p99 = %v, %v; want 0.099, true", p99, ok)
	}
	if _, ok := s.Get(`lvserve_request_latency_seconds_count{route="/v1/fit"}`); !ok {
		t.Error("histogram count series missing from parse")
	}
}

func TestParseRejectsJunk(t *testing.T) {
	for _, bad := range []string{"name_only", "name{a=\"b\"} not-a-number"} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", bad)
		}
	}
}

func TestTrace(t *testing.T) {
	ctx := context.Background()
	if Trace(ctx) != "" {
		t.Error("empty context carries a trace ID")
	}
	id := NewTraceID()
	if len(id) != 16 {
		t.Errorf("trace ID %q: want 16 hex chars", id)
	}
	if id2 := NewTraceID(); id2 == id {
		t.Errorf("two trace IDs collided: %q", id)
	}
	if got := Trace(WithTrace(ctx, id)); got != id {
		t.Errorf("Trace round-trip = %q, want %q", got, id)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", "v").With(`a"b\c` + "\n").Inc()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{v="a\"b\\c\n"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("rendered %q, want a line %q", buf.String(), want)
	}
}
