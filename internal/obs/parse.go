package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Samples is a parsed scrape: every sample line keyed by its full
// series name (`name{label="value",...}`, exactly as rendered), plus
// the family declarations from the # TYPE comments — a registered
// family is declared on every scrape even before its first series
// exists, which is what lets a checker assert the telemetry contract
// against a freshly booted daemon.
type Samples struct {
	series   map[string]float64
	families map[string]string // family name -> declared type
}

// ParseText parses a Prometheus text exposition — the counterpart of
// Registry.WriteText, shared with scripts/loadgen's -metrics-check so
// the scraper and the renderer can never drift apart. # TYPE comments
// feed the family set, other comments and blank lines are skipped; a
// malformed sample line is an error.
func ParseText(r io.Reader) (Samples, error) {
	out := Samples{series: make(map[string]float64), families: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			if fields := strings.Fields(line); len(fields) == 4 && fields[0] == "#" && fields[1] == "TYPE" {
				out.families[fields[2]] = fields[3]
			}
			continue
		}
		// The value is everything after the last space outside braces;
		// rendered series never contain spaces, so the last field is
		// always the value (timestamps are never rendered here).
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			return Samples{}, fmt.Errorf("obs: metrics line %d: no value: %q", lineno, line)
		}
		series, vs := strings.TrimSpace(line[:i]), line[i+1:]
		v, err := strconv.ParseFloat(vs, 64)
		if err != nil {
			// +Inf / NaN parse fine via ParseFloat; anything else is junk.
			return Samples{}, fmt.Errorf("obs: metrics line %d: bad value %q: %v", lineno, vs, err)
		}
		out.series[series] = v
	}
	if err := sc.Err(); err != nil {
		return Samples{}, err
	}
	return out, nil
}

// Get returns the sample for one series (the exact rendered form) and
// whether it exists.
func (s Samples) Get(series string) (float64, bool) {
	v, ok := s.series[series]
	return v, ok
}

// MaxLabeled returns the maximum value over every series of family
// name whose label block contains the needle (e.g. `quantile="0.99"`),
// and whether any matched. NaN values are skipped.
func (s Samples) MaxLabeled(name, needle string) (float64, bool) {
	max, found := 0.0, false
	prefix := name + "{"
	for series, v := range s.series {
		if !strings.HasPrefix(series, prefix) || !strings.Contains(series, needle) {
			continue
		}
		if v != v { // NaN
			continue
		}
		if !found || v > max {
			max, found = v, true
		}
	}
	return max, found
}

// SumFamily sums every series of family name (with or without
// labels) — how a scraper totals a counter family across label sets.
func (s Samples) SumFamily(name string) (float64, bool) {
	sum, found := 0.0, false
	for series, v := range s.series {
		if series == name || strings.HasPrefix(series, name+"{") {
			sum += v
			found = true
		}
	}
	return sum, found
}

// HasFamily reports whether family name was scraped: declared by a
// # TYPE comment (every registered family is, series or not) or
// present as a sample series.
func (s Samples) HasFamily(name string) bool {
	if _, ok := s.families[name]; ok {
		return true
	}
	for series := range s.series {
		if series == name || strings.HasPrefix(series, name+"{") {
			return true
		}
	}
	return false
}
