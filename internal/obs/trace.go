package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// TraceHeader is the HTTP header a trace ID rides between the client,
// the ingress replica, and every peer hop (replicate fan-out,
// forward/failover, read-repair fetches, hint redelivery, anti-entropy
// pulls, fit delegation). A request arriving with the header keeps its
// ID; one arriving without gets a fresh ID at ingress — so one client
// request is one grep-able ID across the whole replica group, and the
// response always carries the ID back to the client.
const TraceHeader = "Lvserve-Trace-Id"

// traceKey is the context key trace IDs travel under in-process.
type traceKey struct{}

// NewTraceID returns a fresh 16-hex-character trace ID. Reading
// crypto/rand cannot fail on supported platforms; if it somehow does,
// an all-zero ID (still valid, just not unique) beats taking the
// request down.
func NewTraceID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// WithTrace returns ctx carrying the trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// Trace returns the trace ID carried by ctx, or "".
func Trace(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
