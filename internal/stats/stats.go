// Package stats provides the descriptive statistics, empirical
// distribution functions and histograms used to analyse sequential
// runtime campaigns (Tables 1–2 and the histogram Figures 8/10/12 of
// the paper).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by operations that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (NaN for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element (NaN for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element (NaN for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the p-quantile of xs (linear interpolation between
// order statistics, the R type-7 default). p outside [0,1] is clamped.
func Quantile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	h := p * float64(n-1)
	i := int(math.Floor(h))
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := h - float64(i)
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// Skewness returns the adjusted Fisher–Pearson sample skewness.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return math.NaN()
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// Summary bundles the row shape of the paper's Tables 1 and 2.
type Summary struct {
	N      int
	Min    float64
	Mean   float64
	Median float64
	Max    float64
	StdDev float64
}

// Summarize computes the Table-1/2 statistics of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Min:    Min(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		Max:    Max(xs),
		StdDev: StdDev(xs),
	}
}

// ECDF is an empirical cumulative distribution function built from a
// sample. The zero value is unusable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts xs. It returns an error for empty input.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// Eval returns F̂(x) = (#samples ≤ x) / n.
func (e *ECDF) Eval(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x;
	// we need strictly greater to count ties as ≤ x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Sorted exposes the sorted sample (read-only by convention).
func (e *ECDF) Sorted() []float64 { return e.sorted }

// Quantile returns the p-quantile of the underlying sample.
func (e *ECDF) Quantile(p float64) float64 { return quantileSorted(e.sorted, p) }

// Histogram is a uniform-bin density histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram bins xs into bins uniform cells spanning [min, max].
// The last cell is closed so the maximum lands inside. Returns an
// error for empty input or bins < 1.
func NewHistogram(xs []float64, bins int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if bins < 1 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		hi = lo + 1 // degenerate sample: single cell of width 1
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
		h.total++
	}
	return h, nil
}

// BinWidth returns the uniform cell width.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// Center returns the midpoint of bin i.
func (h *Histogram) Center(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Density returns the normalized density of bin i, so that the
// histogram integrates to 1 (comparable with a PDF overlay, as in the
// paper's Figures 8, 10 and 12).
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / (float64(h.total) * h.BinWidth())
}

// LinearFit returns the least-squares line y = intercept + slope·x.
// It needs at least two points with distinct x values.
func LinearFit(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, errors.New("stats: LinearFit needs ≥2 paired points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: LinearFit with constant x")
	}
	slope = sxy / sxx
	return slope, my - slope*mx, nil
}

// FreedmanDiaconisBins suggests a bin count via the Freedman–Diaconis
// rule, clamped to [min 5, max 200].
func FreedmanDiaconisBins(xs []float64) int {
	n := len(xs)
	if n < 2 {
		return 5
	}
	iqr := Quantile(xs, 0.75) - Quantile(xs, 0.25)
	if iqr <= 0 {
		return 5
	}
	width := 2 * iqr / math.Cbrt(float64(n))
	span := Max(xs) - Min(xs)
	bins := int(math.Ceil(span / width))
	if bins < 5 {
		bins = 5
	}
	if bins > 200 {
		bins = 200
	}
	return bins
}
