package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBasicMoments(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean %v, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("variance %v, want 32/7", v)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("stddev %v", s)
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) ||
		!math.IsNaN(Median(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate inputs should give NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	if Min(xs) != -9 || Max(xs) != 6 {
		t.Errorf("min/max = %v/%v", Min(xs), Max(xs))
	}
}

func TestMedianOddEven(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median %v", m)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, c := range cases {
		if q := Quantile(xs, c.p); math.Abs(q-c.want) > 1e-12 {
			t.Errorf("Q(%v) = %v, want %v", c.p, q, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	xs := []float64{7, 2, 9, 4, 4, 11, 0.5}
	f := func(a, b float64) bool {
		p1 := math.Mod(math.Abs(a), 1)
		p2 := math.Mod(math.Abs(b), 1)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Quantile(xs, p1) <= Quantile(xs, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Min != 1 || s.Max != 100 || s.Median != 3 || s.Mean != 22 {
		t.Errorf("summary %+v", s)
	}
}

func TestSkewness(t *testing.T) {
	// Symmetric sample → skewness ≈ 0.
	if sk := Skewness([]float64{-2, -1, 0, 1, 2}); math.Abs(sk) > 1e-12 {
		t.Errorf("symmetric skewness %v", sk)
	}
	// Right-tailed sample → positive.
	if sk := Skewness([]float64{1, 1, 1, 2, 2, 50}); sk <= 0 {
		t.Errorf("right-tailed skewness %v", sk)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if f := e.Eval(c.x); f != c.want {
			t.Errorf("F(%v) = %v, want %v", c.x, f, c.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len %d", e.Len())
	}
}

func TestECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Error("empty ECDF should error")
	}
}

func TestECDFProperty(t *testing.T) {
	e, _ := NewECDF([]float64{3, 1, 4, 1, 5, 9, 2, 6})
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		fa, fb := e.Eval(a), e.Eval(b)
		return fa >= 0 && fb <= 1 && fa <= fb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	xs := []float64{1, 2, 2.5, 3, 3.7, 4, 4, 5, 8, 9.1}
	h, err := NewHistogram(xs, 7)
	if err != nil {
		t.Fatal(err)
	}
	var mass float64
	for i := range h.Counts {
		mass += h.Density(i) * h.BinWidth()
	}
	if math.Abs(mass-1) > 1e-12 {
		t.Errorf("histogram mass %v", mass)
	}
}

func TestHistogramCountsTotal(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	h, _ := NewHistogram(xs, 10)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 100 {
		t.Errorf("histogram lost samples: %d", total)
	}
	for i, c := range h.Counts {
		if c != 10 {
			t.Errorf("bin %d count %d, want 10", i, c)
		}
	}
}

func TestHistogramDegenerateSample(t *testing.T) {
	h, err := NewHistogram([]float64{5, 5, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Errorf("degenerate histogram total %d", total)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 5); err == nil {
		t.Error("empty sample should error")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("zero bins should error")
	}
}

func TestFreedmanDiaconisBins(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i % 97)
	}
	b := FreedmanDiaconisBins(xs)
	if b < 5 || b > 200 {
		t.Errorf("FD bins %d out of clamp range", b)
	}
	if FreedmanDiaconisBins([]float64{1}) != 5 {
		t.Error("tiny sample should clamp to 5 bins")
	}
}
