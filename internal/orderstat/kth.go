package orderstat

import (
	"fmt"
	"math"

	"lasvegas/internal/dist"
	"lasvegas/internal/optim"
	"lasvegas/internal/specfn"
	"lasvegas/internal/xrand"
)

// Kth is the full distribution of the k-th smallest of N i.i.d.
// draws from Base — the general order statistic behind Min (k=1).
// For the multi-walk scheme it answers straggler questions the mean
// of the minimum cannot: "when does the k-th walker finish?" (e.g.
// the median walker k=N/2 measures wasted work; k=N is the time to
// drain the whole pool if nothing is cancelled).
//
//	F_{(k:N)}(x) = I_{F(x)}(k, N-k+1)
//
// with I the regularized incomplete beta function.
type Kth struct {
	Base dist.Dist
	K, N int
}

// NewKth validates 1 ≤ k ≤ n.
func NewKth(base dist.Dist, k, n int) (Kth, error) {
	if base == nil {
		return Kth{}, fmt.Errorf("%w: nil base distribution", dist.ErrParam)
	}
	if n < 1 || k < 1 || k > n {
		return Kth{}, fmt.Errorf("%w: order statistic k=%d of n=%d", dist.ErrParam, k, n)
	}
	return Kth{Base: base, K: k, N: n}, nil
}

// CDF implements dist.Dist.
func (o Kth) CDF(x float64) float64 {
	f := o.Base.CDF(x)
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return 1
	}
	return specfn.BetaInc(float64(o.K), float64(o.N-o.K+1), f)
}

// PDF implements dist.Dist:
// n!/((k-1)!(n-k)!) · f(x) · F^{k-1} · (1-F)^{n-k}, in log space.
func (o Kth) PDF(x float64) float64 {
	f := o.Base.CDF(x)
	pdf := o.Base.PDF(x)
	if pdf == 0 {
		return 0
	}
	k, n := float64(o.K), float64(o.N)
	if f <= 0 {
		if o.K == 1 {
			return n * pdf * math.Exp((n-1)*math.Log1p(-f))
		}
		return 0
	}
	if f >= 1 {
		if o.K == o.N {
			return n * pdf * math.Pow(f, n-1)
		}
		return 0
	}
	logC := specfn.LogGamma(n+1) - specfn.LogGamma(k) - specfn.LogGamma(n-k+1)
	return pdf * math.Exp(logC+(k-1)*math.Log(f)+(n-k)*math.Log1p(-f))
}

// Quantile implements dist.Dist via the beta quantile of the uniform
// order statistic: X_{(k:n)} = Q_Y(B) with B ~ Beta(k, n-k+1).
func (o Kth) Quantile(p float64) float64 {
	if p <= 0 {
		lo, _ := o.Base.Support()
		return lo
	}
	if p >= 1 {
		return o.Base.Quantile(1)
	}
	u, err := optim.BrentRoot(func(u float64) float64 {
		return specfn.BetaInc(float64(o.K), float64(o.N-o.K+1), u) - p
	}, 0, 1, 1e-13)
	if err != nil {
		u = float64(o.K) / float64(o.N+1)
	}
	return o.Base.Quantile(u)
}

// Mean implements dist.Dist via the Nadarajah quantile-domain moment.
func (o Kth) Mean() float64 {
	m, err := KthMoment(o.Base, o.K, o.N, 1)
	if err != nil {
		return math.NaN()
	}
	return m
}

// Var implements dist.Dist.
func (o Kth) Var() float64 {
	m1, err1 := KthMoment(o.Base, o.K, o.N, 1)
	m2, err2 := KthMoment(o.Base, o.K, o.N, 2)
	if err1 != nil || err2 != nil {
		return math.NaN()
	}
	return m2 - m1*m1
}

// Sample implements dist.Dist: draw the uniform order statistic from
// Beta(k, n-k+1) and push it through the base quantile.
func (o Kth) Sample(r *xrand.Rand) float64 {
	b := dist.Beta{Alpha: float64(o.K), BetaP: float64(o.N - o.K + 1), Lo: 0, Hi: 1}
	return o.Base.Quantile(b.Sample(r))
}

// Support implements dist.Dist.
func (o Kth) Support() (float64, float64) { return o.Base.Support() }

// String implements dist.Dist.
func (o Kth) String() string {
	return fmt.Sprintf("OrderStat(k=%d of n=%d, %s)", o.K, o.N, o.Base)
}
