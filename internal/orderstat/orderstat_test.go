package orderstat

import (
	"math"
	"testing"
	"testing/quick"

	"lasvegas/internal/dist"
	"lasvegas/internal/xrand"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol*(1+math.Abs(want)) {
		t.Fatalf("%s: got %.12g, want %.12g", msg, got, want)
	}
}

func TestMinCDFIdentity(t *testing.T) {
	// F_Z = 1-(1-F_Y)^n must hold exactly for any base law.
	base, _ := dist.NewLogNormal(10, 3, 0.8)
	for _, n := range []int{1, 2, 8, 100, 4096} {
		m, err := NewMin(base, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range []float64{11, 15, 30, 80, 400} {
			want := 1 - math.Pow(1-base.CDF(x), float64(n))
			if got := m.CDF(x); math.Abs(got-want) > 1e-9 {
				t.Errorf("n=%d x=%v: CDF %v, want %v", n, x, got, want)
			}
		}
	}
}

func TestMinCDFIdentityProperty(t *testing.T) {
	base, _ := dist.NewWeibull(1.3, 25)
	f := func(xRaw float64, nRaw uint8) bool {
		x := math.Mod(math.Abs(xRaw), 200)
		n := int(nRaw%64) + 1
		m := Min{Base: base, N: n}
		want := 1 - math.Pow(1-base.CDF(x), float64(n))
		return math.Abs(m.CDF(x)-want) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinPDFMatchesNumericalDerivative(t *testing.T) {
	base, _ := dist.NewShiftedExponential(100, 1e-3)
	m := Min{Base: base, N: 10}
	for _, x := range []float64{150, 300, 700} {
		h := 1e-4 * x
		numeric := (m.CDF(x+h) - m.CDF(x-h)) / (2 * h)
		approx(t, m.PDF(x), numeric, 1e-4, "pdf vs dCDF")
	}
}

func TestMinQuantileRoundTrip(t *testing.T) {
	base, _ := dist.NewLogNormal(0, 5, 1)
	m := Min{Base: base, N: 16}
	for p := 0.01; p < 1; p += 0.07 {
		x := m.Quantile(p)
		approx(t, m.CDF(x), p, 1e-7, "CDF(Q(p))")
	}
}

func TestExponentialClosedFormVsQuadrature(t *testing.T) {
	// Paper §3.3: E[Z(n)] = x0 + 1/(nλ). The generic quantile-domain
	// integral must agree with the closed form.
	base, _ := dist.NewShiftedExponential(100, 1e-3)
	for _, n := range []int{1, 2, 4, 16, 64, 256, 2048} {
		want := 100 + 1000/float64(n)
		got, err := Moment(base, n, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		approx(t, got, want, 1e-7, "E[Z(n)] quadrature vs closed form")
		// And the fast path must return the closed form exactly.
		approx(t, MeanMin(base, n), want, 1e-12, "MeanMin fast path")
	}
}

func TestUniformClosedForm(t *testing.T) {
	// E[min of n U(0,1)] = 1/(n+1).
	base, _ := dist.NewUniform(0, 1)
	for _, n := range []int{1, 2, 5, 10, 100} {
		want := 1 / float64(n+1)
		approx(t, MeanMin(base, n), want, 1e-12, "uniform min mean")
		got, err := Moment(base, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, got, want, 1e-8, "uniform quadrature")
	}
}

func TestTimeDomainAgreesWithQuantileDomain(t *testing.T) {
	base, _ := dist.NewLogNormal(50, 4, 1.2)
	for _, n := range []int{1, 4, 32, 128} {
		qd, err := Moment(base, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		td, err := MeanMinTimeDomain(base, n)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, td, qd, 1e-5, "time vs quantile domain")
	}
}

func TestGaussianMinAgainstMonteCarlo(t *testing.T) {
	base, _ := dist.NewNormal(30, 8)
	r := xrand.New(42)
	for _, n := range []int{2, 10, 50} {
		m := Min{Base: base, N: n}
		analytic := m.Mean()
		const trials = 40000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += m.SampleBrute(r)
		}
		mc := sum / trials
		approx(t, analytic, mc, 0.02, "gaussian min vs Monte Carlo")
	}
}

func TestSampleMatchesBruteSample(t *testing.T) {
	base, _ := dist.NewShiftedExponential(10, 0.05)
	m := Min{Base: base, N: 8}
	r := xrand.New(7)
	const trials = 60000
	var sQ, sB float64
	for i := 0; i < trials; i++ {
		sQ += m.Sample(r)
		sB += m.SampleBrute(r)
	}
	approx(t, sQ/trials, sB/trials, 0.02, "transform vs brute sampling")
	approx(t, sQ/trials, m.Mean(), 0.02, "transform sampling vs mean")
}

func TestMinVariance(t *testing.T) {
	// Min of n exponential(λ) is exponential(nλ): Var = 1/(nλ)².
	base, _ := dist.NewExponential(0.25)
	m := Min{Base: base, N: 4}
	approx(t, m.Var(), 1.0, 1e-12, "variance of exp min (closed form)")
}

func TestMinVarianceFastPathsAgreeWithQuadrature(t *testing.T) {
	// The closed-form Var fast paths must match the generic
	// quantile-domain moments they replace.
	quadVar := func(d dist.Dist, n int) float64 {
		e1, err1 := Moment(d, n, 1)
		e2, err2 := Moment(d, n, 2)
		if err1 != nil || err2 != nil {
			t.Fatalf("quadrature failed: %v %v", err1, err2)
		}
		return e2 - e1*e1
	}
	wb, _ := dist.NewWeibull(1.8, 50)
	un, _ := dist.NewUniform(2, 7)
	se, _ := dist.NewShiftedExponential(100, 1e-3)
	for _, n := range []int{2, 16, 128} {
		approx(t, Min{Base: wb, N: n}.Var(), quadVar(wb, n), 1e-6, "weibull min var")
		approx(t, Min{Base: un, N: n}.Var(), quadVar(un, n), 1e-6, "uniform min var")
		approx(t, Min{Base: se, N: n}.Var(), quadVar(se, n), 1e-6, "shifted-exp min var")
	}
}

func TestMeanMonotoneDecreasing(t *testing.T) {
	base, _ := dist.NewLogNormal(5, 3, 1)
	prev := math.Inf(1)
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024, 8192} {
		v := MeanMin(base, n)
		if math.IsNaN(v) {
			t.Fatalf("NaN at n=%d", n)
		}
		if v > prev+1e-9 {
			t.Fatalf("E[Z(n)] increased at n=%d: %v > %v", n, v, prev)
		}
		prev = v
	}
	// Large n approaches the support edge (shift = 5).
	if prev > 7 {
		t.Errorf("E[Z(8192)] = %v, expected close to shift 5", prev)
	}
}

func TestKthMomentOrdering(t *testing.T) {
	// For U(0,1), E[X_{(k:n)}] = k/(n+1).
	base, _ := dist.NewUniform(0, 1)
	const n = 7
	for k := 1; k <= n; k++ {
		got, err := KthMoment(base, k, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, got, float64(k)/(n+1), 1e-6, "uniform k-th order statistic")
	}
}

func TestKthMomentSecondMoment(t *testing.T) {
	// For U(0,1), E[X²_{(k:n)}] = k(k+1)/((n+1)(n+2)).
	base, _ := dist.NewUniform(0, 1)
	got, err := KthMoment(base, 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got, 2.0*3/(5*6), 1e-6, "uniform second moment")
}

func TestEmpiricalFastPath(t *testing.T) {
	e, err := dist.NewEmpirical([]float64{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	m := Min{Base: e, N: 3}
	if got, want := m.Mean(), e.MinExpectation(3); got != want {
		t.Errorf("empirical fast path: %v vs %v", got, want)
	}
}

func TestInvalidArguments(t *testing.T) {
	base, _ := dist.NewExponential(1)
	if _, err := NewMin(base, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewMin(nil, 3); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := Moment(base, 0, 1); err == nil {
		t.Error("Moment n=0 accepted")
	}
	if _, err := Moment(base, 2, 0); err == nil {
		t.Error("Moment r=0 accepted")
	}
	if _, err := KthMoment(base, 5, 3, 1); err == nil {
		t.Error("k>n accepted")
	}
}

func TestLargeNStability(t *testing.T) {
	// Figure 14 regime: n = 8192 must evaluate without under/overflow.
	base, _ := dist.NewLogNormal(0, 12.0275, 1.3398)
	v := MeanMin(base, 8192)
	if math.IsNaN(v) || v <= 0 {
		t.Fatalf("E[Z(8192)] = %v", v)
	}
	lo, _ := base.Support()
	if v < lo {
		t.Fatalf("min mean %v below support %v", v, lo)
	}
}

func BenchmarkMeanMinQuantileDomain(b *testing.B) {
	base, _ := dist.NewLogNormal(6210, 12.0275, 1.3398)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Moment(base, 256, 1)
	}
}

func BenchmarkMeanMinTimeDomain(b *testing.B) {
	base, _ := dist.NewLogNormal(6210, 12.0275, 1.3398)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = MeanMinTimeDomain(base, 256)
	}
}
