package orderstat

import (
	"math"
	"testing"

	"lasvegas/internal/dist"
	"lasvegas/internal/xrand"
)

func TestKthReducesToMinAtK1(t *testing.T) {
	base, _ := dist.NewShiftedExponential(10, 0.01)
	k1, err := NewKth(base, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := Min{Base: base, N: 8}
	for _, x := range []float64{15, 50, 200, 800} {
		if got, want := k1.CDF(x), m.CDF(x); math.Abs(got-want) > 1e-10 {
			t.Errorf("CDF(%v): kth %v vs min %v", x, got, want)
		}
		if got, want := k1.PDF(x), m.PDF(x); math.Abs(got-want) > 1e-8*(1+want) {
			t.Errorf("PDF(%v): kth %v vs min %v", x, got, want)
		}
	}
	approx(t, k1.Mean(), m.Mean(), 1e-6, "k=1 mean equals min mean")
}

func TestKthMaxOrderStatistic(t *testing.T) {
	// k = n is the maximum: F_{(n:n)} = F^n.
	base, _ := dist.NewUniform(0, 1)
	kn, err := NewKth(base, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.2, 0.5, 0.9} {
		want := math.Pow(x, 5)
		if got := kn.CDF(x); math.Abs(got-want) > 1e-10 {
			t.Errorf("max CDF(%v) = %v, want %v", x, got, want)
		}
	}
	// E[max of 5 uniforms] = 5/6.
	approx(t, kn.Mean(), 5.0/6, 1e-6, "uniform max mean")
}

func TestKthUniformClosedForms(t *testing.T) {
	base, _ := dist.NewUniform(0, 1)
	const n = 7
	for k := 1; k <= n; k++ {
		o, err := NewKth(base, k, n)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(k) / float64(n+1)
		approx(t, o.Mean(), want, 1e-6, "uniform k-th mean")
		// Median check via quantile round trip.
		med := o.Quantile(0.5)
		approx(t, o.CDF(med), 0.5, 1e-8, "quantile round trip")
	}
}

func TestKthOrderingOfMeans(t *testing.T) {
	// Means must increase with k.
	base, _ := dist.NewLogNormal(0, 3, 1)
	prev := math.Inf(-1)
	for k := 1; k <= 6; k++ {
		o, _ := NewKth(base, k, 6)
		m := o.Mean()
		if m <= prev {
			t.Fatalf("E[X_(%d:6)] = %v not increasing (prev %v)", k, m, prev)
		}
		prev = m
	}
}

func TestKthSampleMatchesMean(t *testing.T) {
	base, _ := dist.NewWeibull(1.5, 50)
	o, _ := NewKth(base, 3, 9)
	r := xrand.New(123)
	const reps = 60000
	var sum float64
	for i := 0; i < reps; i++ {
		sum += o.Sample(r)
	}
	approx(t, sum/reps, o.Mean(), 0.02, "sampled mean vs analytic")
}

func TestKthPDFIntegratesToCDF(t *testing.T) {
	base, _ := dist.NewNormal(10, 2)
	o, _ := NewKth(base, 2, 4)
	a, b := o.Quantile(0.1), o.Quantile(0.9)
	const steps = 40000
	h := (b - a) / steps
	sum := 0.0
	for i := 0; i < steps; i++ {
		sum += o.PDF(a + (float64(i)+0.5)*h)
	}
	sum *= h
	want := o.CDF(b) - o.CDF(a)
	approx(t, sum, want, 1e-4, "∫pdf vs ΔCDF")
}

func TestKthStragglerAnalysis(t *testing.T) {
	// Multi-walk interpretation: with 16 exponential walkers, the
	// median finisher (k=8) takes substantially longer than the
	// winner (k=1) — the work the cancellation discards.
	base, _ := dist.NewExponential(0.001)
	winner, _ := NewKth(base, 1, 16)
	median, _ := NewKth(base, 8, 16)
	// Exponential order statistics: E[X_(k:n)] = (1/λ)·Σ_{i=0}^{k-1} 1/(n-i).
	wantWinner := 1000.0 / 16
	var wantMedian float64
	for i := 0; i < 8; i++ {
		wantMedian += 1000.0 / float64(16-i)
	}
	approx(t, winner.Mean(), wantWinner, 1e-5, "winner mean")
	approx(t, median.Mean(), wantMedian, 1e-5, "median finisher mean")
	if median.Mean() < 5*winner.Mean() {
		t.Errorf("median straggler %v vs winner %v — expected ≫", median.Mean(), winner.Mean())
	}
}

func TestKthValidation(t *testing.T) {
	base, _ := dist.NewExponential(1)
	if _, err := NewKth(nil, 1, 2); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewKth(base, 0, 2); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewKth(base, 3, 2); err == nil {
		t.Error("k>n accepted")
	}
}

func TestKthString(t *testing.T) {
	base, _ := dist.NewExponential(1)
	o, _ := NewKth(base, 2, 5)
	if o.String() == "" {
		t.Error("empty String()")
	}
}
