package orderstat

import (
	"testing"

	"lasvegas/internal/dist"
)

func BenchmarkMomentLogNormal(b *testing.B) {
	d, _ := dist.NewLogNormal(6210, 12.0275, 1.3398)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Moment(d, 256, 1); err != nil {
			b.Fatal(err)
		}
	}
}
