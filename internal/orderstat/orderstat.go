// Package orderstat implements the order-statistics machinery of the
// paper's §3: the distribution of Z(n) = min(X₁..Xₙ) for n i.i.d.
// copies of a runtime distribution Y, its moments, and k-th order
// statistics in general.
//
// The central identities (paper §3.1):
//
//	F_Z(n)(x) = 1 - (1 - F_Y(x))ⁿ
//	f_Z(n)(x) = n·f_Y(x)·(1 - F_Y(x))ⁿ⁻¹
//
// Moments are computed in the quantile domain, following the explicit
// order-statistic moment formulas surveyed by Nadarajah (2008), which
// the paper cites as its computational device:
//
//	E[Z(n)ʳ] = ∫₀¹ Q_Y(1-(1-v)^{1/n})ʳ dv
//
// (change of variable v = 1-(1-u)ⁿ in E = ∫₀¹ Q_Y(u)ʳ·n(1-u)ⁿ⁻¹ du).
// The quantile form stays numerically stable for n in the thousands,
// where the time-domain integrand n·f·(1-F)ⁿ⁻¹ underflows; the
// time-domain integral is retained for cross-checking and ablation.
package orderstat

import (
	"fmt"
	"math"

	"lasvegas/internal/dist"
	"lasvegas/internal/quad"
	"lasvegas/internal/xrand"
)

// integTol is the default absolute/relative tolerance for moment
// integrals; the model never needs more than ~6 significant digits.
const integTol = 1e-10

// Min is the distribution of the minimum of N i.i.d. draws from Base.
// It implements dist.Dist, so a Min can itself be fed back into the
// predictor or plotted like any other distribution (Figures 1, 2, 4).
type Min struct {
	Base dist.Dist
	N    int
}

// NewMin validates n >= 1.
func NewMin(base dist.Dist, n int) (Min, error) {
	if n < 1 {
		return Min{}, fmt.Errorf("%w: order statistic over n=%d draws", dist.ErrParam, n)
	}
	if base == nil {
		return Min{}, fmt.Errorf("%w: nil base distribution", dist.ErrParam)
	}
	return Min{Base: base, N: n}, nil
}

// CDF implements dist.Dist: 1-(1-F)ⁿ evaluated as -expm1(n·log1p(-F))
// to avoid catastrophic cancellation for small F and large n.
func (m Min) CDF(x float64) float64 {
	f := m.Base.CDF(x)
	if f >= 1 {
		return 1
	}
	return -math.Expm1(float64(m.N) * math.Log1p(-f))
}

// PDF implements dist.Dist: n·f·(1-F)ⁿ⁻¹.
func (m Min) PDF(x float64) float64 {
	f := m.Base.CDF(x)
	if f >= 1 {
		return 0
	}
	surv := math.Exp(float64(m.N-1) * math.Log1p(-f))
	return float64(m.N) * m.Base.PDF(x) * surv
}

// Quantile implements dist.Dist: Q_Z(p) = Q_Y(1-(1-p)^{1/n}).
func (m Min) Quantile(p float64) float64 {
	if p <= 0 {
		lo, _ := m.Base.Support()
		return lo
	}
	if p >= 1 {
		return m.Base.Quantile(1)
	}
	u := -math.Expm1(math.Log1p(-p) / float64(m.N))
	return m.Base.Quantile(u)
}

// minExpecter is implemented by sample-backed laws whose expected
// minimum of n draws has an exact one-pass form over their sorted
// backing array — dist.Empirical and survival.KaplanMeier. Matching
// the capability rather than the concrete type keeps this package
// from importing the estimator layers above it.
type minExpecter interface {
	MinExpectation(n int) float64
}

// Mean implements dist.Dist, preferring closed forms (exponential,
// Weibull min-stability, the exact pass of sample-backed laws) and
// falling back to quantile-domain quadrature.
func (m Min) Mean() float64 {
	switch b := m.Base.(type) {
	case dist.ShiftedExponential:
		return b.MinDist(m.N).Mean()
	case dist.Weibull:
		return b.MinDist(m.N).Mean()
	case dist.Uniform:
		// Textbook: E = Lo + (Hi-Lo)/(n+1).
		return b.Lo + (b.Hi-b.Lo)/float64(m.N+1)
	case minExpecter:
		return b.MinExpectation(m.N)
	}
	e, err := Moment(m.Base, m.N, 1)
	if err != nil {
		return math.NaN()
	}
	return e
}

// Var implements dist.Dist, preferring the min-stable closed forms
// and falling back to the first two quantile-domain moments.
func (m Min) Var() float64 {
	switch b := m.Base.(type) {
	case dist.ShiftedExponential:
		return b.MinDist(m.N).Var()
	case dist.Weibull:
		return b.MinDist(m.N).Var()
	case dist.Uniform:
		// Textbook: Var = n(Hi-Lo)²/((n+1)²(n+2)).
		w := b.Hi - b.Lo
		nf := float64(m.N)
		return nf * w * w / ((nf + 1) * (nf + 1) * (nf + 2))
	}
	e1, err1 := Moment(m.Base, m.N, 1)
	e2, err2 := Moment(m.Base, m.N, 2)
	if err1 != nil || err2 != nil {
		return math.NaN()
	}
	return e2 - e1*e1
}

// Sample implements dist.Dist by the probability-integral transform:
// (1-F_Y(Z))ⁿ is uniform, hence Z = Q_Y(1-U^{1/n}) — one quantile
// evaluation instead of n base samples.
func (m Min) Sample(r *xrand.Rand) float64 {
	u := r.Float64Open()
	return m.Base.Quantile(-math.Expm1(math.Log(u) / float64(m.N)))
}

// SampleBrute draws min(X₁..Xₙ) literally; used by tests to validate
// Sample and by the ablation bench.
func (m Min) SampleBrute(r *xrand.Rand) float64 {
	z := m.Base.Sample(r)
	for i := 1; i < m.N; i++ {
		if x := m.Base.Sample(r); x < z {
			z = x
		}
	}
	return z
}

// Support implements dist.Dist (same support as the base law).
func (m Min) Support() (float64, float64) { return m.Base.Support() }

// String implements dist.Dist.
func (m Min) String() string {
	return fmt.Sprintf("Min(n=%d of %s)", m.N, m.Base.String())
}

// Moment returns E[Z(n)ʳ] by quantile-domain quadrature. The
// integrand is evaluated level-by-level in batches: the change of
// variable v → u is applied to the whole level, then the base law's
// quantile is evaluated through dist.Quantiles, which uses the
// family's vectorized QuantileBatch when it has one (lognormal and
// the exponential family — the paper's accepted fits — do).
func Moment(d dist.Dist, n, r int) (float64, error) {
	if n < 1 || r < 1 {
		return 0, fmt.Errorf("%w: moment order r=%d, n=%d", dist.ErrParam, r, n)
	}
	nf := float64(n)
	integrand := func(vs, dst []float64) {
		for i, v := range vs {
			if v >= 1 {
				dst[i] = 0 // overwritten to NaN below; quadrature drops it
				continue
			}
			dst[i] = -math.Expm1(math.Log1p(-v) / nf)
		}
		dist.Quantiles(d, dst, dst)
		if r > 1 {
			rf := float64(r)
			for i, q := range dst {
				dst[i] = math.Pow(q, rf)
			}
		}
		for i, v := range vs {
			if v >= 1 {
				dst[i] = math.NaN()
			}
		}
	}
	return quad.UnitBatch(integrand, integTol)
}

// MeanMin returns E[Z(n)] with the same closed-form fast paths as
// Min.Mean; this is the quantity the speed-up formula divides by.
func MeanMin(d dist.Dist, n int) float64 {
	m := Min{Base: d, N: n}
	return m.Mean()
}

// MeanMinTimeDomain computes E[Z(n)] = n·∫ t·f(t)·(1-F(t))ⁿ⁻¹ dt over
// the support — the paper's literal §3.2 formula. Retained for
// cross-validation and the quantile-vs-time ablation bench; it loses
// accuracy for n ≳ 10³ where the survival power underflows.
func MeanMinTimeDomain(d dist.Dist, n int) (float64, error) {
	lo, hi := d.Support()
	nf := float64(n)
	integrand := func(t float64) float64 {
		f := d.CDF(t)
		if f >= 1 {
			return 0
		}
		surv := math.Exp((nf - 1) * math.Log1p(-f))
		return nf * t * d.PDF(t) * surv
	}
	if math.IsInf(hi, 1) {
		if math.IsInf(lo, -1) {
			lo = d.Quantile(1e-12) // effectively the whole mass
		}
		return quad.ToInfinity(integrand, lo, integTol)
	}
	return quad.TanhSinh(integrand, lo, hi, integTol)
}

// KthMoment returns E[X₍k:n₎ʳ], the r-th moment of the k-th order
// statistic, via the Nadarajah quantile-domain formula
//
//	E[X₍k:n₎ʳ] = n·C(n-1, k-1)·∫₀¹ Q(u)ʳ·u^{k-1}·(1-u)^{n-k} du.
//
// The beta-weighted integrand is evaluated in log space.
func KthMoment(d dist.Dist, k, n, r int) (float64, error) {
	if n < 1 || k < 1 || k > n || r < 1 {
		return 0, fmt.Errorf("%w: order statistic k=%d of n=%d, moment %d", dist.ErrParam, k, n, r)
	}
	if k == 1 && r == 1 {
		return Moment(d, n, 1)
	}
	logC := logBinomial(n-1, k-1) + math.Log(float64(n))
	kf, nf := float64(k), float64(n)
	integrand := func(u float64) float64 {
		if u <= 0 || u >= 1 {
			return 0
		}
		q := d.Quantile(u)
		w := math.Exp(logC + (kf-1)*math.Log(u) + (nf-kf)*math.Log1p(-u))
		if r == 1 {
			return q * w
		}
		return math.Pow(q, float64(r)) * w
	}
	return quad.Unit(integrand, integTol)
}

// logBinomial returns log C(n, k).
func logBinomial(n, k int) float64 {
	ln1, _ := math.Lgamma(float64(n + 1))
	lk1, _ := math.Lgamma(float64(k + 1))
	lnk1, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk1 - lnk1
}
