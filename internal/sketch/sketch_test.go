package sketch

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"testing"

	"lasvegas/internal/dist"
	"lasvegas/internal/orderstat"
	"lasvegas/internal/xrand"
)

var (
	_ dist.Dist           = (*Sketch)(nil)
	_ dist.BatchQuantiler = (*Sketch)(nil)
)

func mustNew(t *testing.T, k int) *Sketch {
	t.Helper()
	s, err := New(k)
	if err != nil {
		t.Fatalf("New(%d): %v", k, err)
	}
	return s
}

func fill(t *testing.T, k int, xs []float64) *Sketch {
	t.Helper()
	s := mustNew(t, k)
	if err := s.AddAll(xs); err != nil {
		t.Fatalf("AddAll: %v", err)
	}
	return s
}

// samples used across the accuracy tests: smooth, heavy-tailed, and
// the atom-heavy tied samples that iteration counts produce (the ties
// that broke ks.TwoSample in PR 1).
func testSamples(n int) map[string][]float64 {
	r := xrand.New(7)
	smooth := make([]float64, n)
	heavy := make([]float64, n)
	atoms := make([]float64, n)
	constant := make([]float64, n)
	for i := 0; i < n; i++ {
		smooth[i] = 100 + 50*r.Float64()
		u := r.Float64Open()
		heavy[i] = math.Exp(3 * u * u * u)
		atoms[i] = float64(1 + r.Intn(7)) // 7 distinct values only
		constant[i] = 42
	}
	return map[string][]float64{
		"smooth":   smooth,
		"heavy":    heavy,
		"atoms":    atoms,
		"constant": constant,
	}
}

func TestNewValidation(t *testing.T) {
	for _, k := range []int{-1, 0} {
		if s := mustNew(t, k); s.K() != DefaultK {
			t.Fatalf("New(%d).K() = %d, want DefaultK", k, s.K())
		}
	}
	for _, k := range []int{2, 6, 7, 9, 1001} {
		if _, err := New(k); err == nil {
			t.Fatalf("New(%d) accepted", k)
		}
	}
}

func TestAddRejectsNonFinite(t *testing.T) {
	s := mustNew(t, 64)
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := s.Add(x); err == nil {
			t.Fatalf("Add(%v) accepted", x)
		}
	}
	if s.N() != 0 {
		t.Fatalf("rejected adds counted: n=%d", s.N())
	}
}

// In exact mode (n ≤ k) every query must be bit-identical to
// dist.Empirical on the same sample — the property that makes the
// sketch a drop-in for small campaigns.
func TestExactModeMatchesEmpirical(t *testing.T) {
	for name, xs := range testSamples(500) {
		t.Run(name, func(t *testing.T) {
			s := fill(t, 1024, xs)
			if !s.Exact() {
				t.Fatalf("n=%d ≤ k should be exact", len(xs))
			}
			if got := s.ErrorBound(); got != 0 {
				t.Fatalf("exact-mode ErrorBound = %v", got)
			}
			e, err := dist.NewEmpirical(xs)
			if err != nil {
				t.Fatal(err)
			}
			if s.Mean() != e.Mean() {
				t.Errorf("Mean %v vs empirical %v", s.Mean(), e.Mean())
			}
			if s.Var() != e.Var() {
				t.Errorf("Var %v vs empirical %v", s.Var(), e.Var())
			}
			slo, shi := s.Support()
			elo, ehi := e.Support()
			if slo != elo || shi != ehi {
				t.Errorf("Support (%v,%v) vs (%v,%v)", slo, shi, elo, ehi)
			}
			for _, p := range []float64{0, 1e-9, 0.1, 0.25, 0.5, 1 / 3.0, 0.75, 0.9, 0.999, 1} {
				if got, want := s.Quantile(p), e.Quantile(p); got != want {
					t.Errorf("Quantile(%v) = %v, want %v", p, got, want)
				}
			}
			for _, x := range []float64{xs[0], xs[len(xs)/2], slo - 1, shi + 1, (slo + shi) / 2} {
				if got, want := s.CDF(x), e.CDF(x); got != want {
					t.Errorf("CDF(%v) = %v, want %v", x, got, want)
				}
				if got, want := s.PDF(x), e.PDF(x); got != want {
					t.Errorf("PDF(%v) = %v, want %v", x, got, want)
				}
			}
			for _, n := range []int{1, 2, 16, 64, 1024, 8192} {
				if got, want := s.MinExpectation(n), e.MinExpectation(n); got != want {
					t.Errorf("MinExpectation(%d) = %v, want %v", n, got, want)
				}
			}
		})
	}
}

// maxRankError returns the worst |F̂(x) − F(x)| over the true sample
// points, the uniform rank error of the sketch against the exact
// ECDF.
func maxRankError(s *Sketch, xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	worst := 0.0
	for i, x := range sorted {
		// True ECDF at x: the last index of the tied run.
		j := sort.SearchFloat64s(sorted, x+math.Abs(x)*1e-12)
		truth := float64(j) / n
		_ = i
		if d := math.Abs(s.CDF(x) - truth); d > worst {
			worst = d
		}
	}
	return worst
}

// The compacted sketch must honour its own reported rank-error bound
// on every sample shape, including atom-heavy ties.
func TestRankErrorBound(t *testing.T) {
	const n = 60000
	for name, xs := range testSamples(n) {
		t.Run(name, func(t *testing.T) {
			s := fill(t, 64, xs) // tiny k forces many compactions
			if s.Exact() {
				t.Fatalf("n=%d with k=64 should have compacted", n)
			}
			bound := s.ErrorBound()
			if bound <= 0 || bound >= 1 {
				t.Fatalf("useless bound %v", bound)
			}
			if got := maxRankError(s, xs); got > bound {
				t.Errorf("rank error %v exceeds reported bound %v", got, bound)
			}
			// Quantiles must land within bound ranks of the truth.
			sorted := append([]float64(nil), xs...)
			sort.Float64s(sorted)
			for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95, 0.99} {
				q := s.Quantile(p)
				loRank := int(math.Floor((p - bound) * n))
				hiRank := int(math.Ceil((p + bound) * n))
				if loRank < 0 {
					loRank = 0
				}
				if hiRank > n-1 {
					hiRank = n - 1
				}
				if q < sorted[loRank] || q > sorted[hiRank] {
					t.Errorf("Quantile(%v) = %v outside rank window [%v, %v]",
						p, q, sorted[loRank], sorted[hiRank])
				}
			}
			// Moments inherit the bound: |Δmean| ≤ ε·(max−min).
			e, _ := dist.NewEmpirical(xs)
			span := sorted[n-1] - sorted[0]
			if d := math.Abs(s.Mean() - e.Mean()); d > bound*span+1e-9 {
				t.Errorf("mean off by %v > ε·span = %v", d, bound*span)
			}
		})
	}
}

// Memory must stay O(k·log(n/k)) no matter how long the stream runs.
func TestRetainedBound(t *testing.T) {
	const k, n = 256, 200000
	s := mustNew(t, k)
	r := xrand.New(3)
	for i := 0; i < n; i++ {
		if err := s.Add(r.Float64() * 1e6); err != nil {
			t.Fatal(err)
		}
	}
	levels := int(math.Ceil(math.Log2(float64(n)/float64(k)))) + 2
	if got, limit := s.Retained(), k*levels; got > limit {
		t.Fatalf("retained %d items > k·(log2(n/k)+2) = %d", got, limit)
	}
	if s.N() != n {
		t.Fatalf("n = %d, want %d", s.N(), n)
	}
}

// Merge must be exactly commutative in canonical bytes, and
// associative up to the documented bound.
func TestMergeCommutesAndAssociates(t *testing.T) {
	xs := testSamples(30000)["heavy"]
	a := fill(t, 128, xs[:10000])
	b := fill(t, 128, xs[10000:18000])
	c := fill(t, 128, xs[18000:])

	ab, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Merge(b, a)
	if err != nil {
		t.Fatal(err)
	}
	jab, _ := json.Marshal(ab)
	jba, _ := json.Marshal(ba)
	if string(jab) != string(jba) {
		t.Fatalf("Merge(a,b) and Merge(b,a) differ:\n%s\n%s", jab, jba)
	}

	abc1, err := Merge(ab, c)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := Merge(b, c)
	if err != nil {
		t.Fatal(err)
	}
	abc2, err := Merge(a, bc)
	if err != nil {
		t.Fatal(err)
	}
	if abc1.N() != abc2.N() || abc1.N() != uint64(len(xs)) {
		t.Fatalf("merged counts %d, %d, want %d", abc1.N(), abc2.N(), len(xs))
	}
	// Association may change compaction histories, but both results
	// must agree within the sum of their reported bounds.
	tol := abc1.ErrorBound() + abc2.ErrorBound()
	for _, p := range []float64{0.1, 0.5, 0.9} {
		q1, q2 := abc1.Quantile(p), abc2.Quantile(p)
		// Compare in rank space against either sketch.
		if d := math.Abs(abc1.CDF(q2) - abc1.CDF(q1)); d > tol {
			t.Errorf("association moved Quantile(%v) by %v ranks > %v", p, d, tol)
		}
	}
	// And each must honour the ECDF of the pooled sample.
	if got, bound := maxRankError(abc1, xs), abc1.ErrorBound(); got > bound {
		t.Errorf("(a⊕b)⊕c rank error %v > bound %v", got, bound)
	}
	if got, bound := maxRankError(abc2, xs), abc2.ErrorBound(); got > bound {
		t.Errorf("a⊕(b⊕c) rank error %v > bound %v", got, bound)
	}
}

// Exact-mode shard merges must reproduce the single-stream sketch
// byte-for-byte — the property the lvserve smoke test leans on.
func TestMergeExactModeBytesEqualSingleStream(t *testing.T) {
	xs := testSamples(600)["atoms"]
	single := fill(t, 1024, xs)
	a := fill(t, 1024, xs[:200])
	b := fill(t, 1024, xs[200:450])
	c := fill(t, 1024, xs[450:])
	ab, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	abc, err := Merge(ab, c)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(single)
	j2, _ := json.Marshal(abc)
	if string(j1) != string(j2) {
		t.Fatalf("exact-mode merge differs from single stream:\n%s\n%s", j1, j2)
	}
}

func TestMergeMismatch(t *testing.T) {
	a := mustNew(t, 64)
	b := mustNew(t, 128)
	if _, err := Merge(a, b); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
	if _, err := Merge(a, nil); err == nil {
		t.Fatal("nil merge accepted")
	}
}

func TestMergeEmpty(t *testing.T) {
	xs := testSamples(100)["smooth"]
	a := fill(t, 64, xs)
	empty := mustNew(t, 64)
	m, err := Merge(a, empty)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != a.N() {
		t.Fatalf("n = %d, want %d", m.N(), a.N())
	}
	j1, _ := json.Marshal(a)
	j2, _ := json.Marshal(m)
	if string(j1) != string(j2) {
		t.Fatalf("merging an empty sketch changed the bytes")
	}
}

// The same stream folded twice — and folded after a serialization
// round trip — must produce byte-identical sketches: the replica
// byte-stability guarantee.
func TestDeterminismAndRoundTrip(t *testing.T) {
	xs := testSamples(50000)["smooth"]
	a := fill(t, 64, xs)
	b := fill(t, 64, xs)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("same stream produced different sketches")
	}

	var back Sketch
	if err := json.Unmarshal(ja, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	jc, _ := json.Marshal(&back)
	if string(ja) != string(jc) {
		t.Fatal("serialization round trip not byte-stable")
	}
	if back.N() != a.N() || back.K() != a.K() || back.ErrorBound() != a.ErrorBound() {
		t.Fatal("round trip lost state")
	}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if back.Quantile(p) != a.Quantile(p) {
			t.Fatalf("round trip changed Quantile(%v)", p)
		}
	}

	// Continuing to fold after a round trip must also be deterministic.
	more := testSamples(5000)["heavy"]
	if err := back.AddAll(more); err != nil {
		t.Fatal(err)
	}
	if err := a.AddAll(more); err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(a)
	j2, _ := json.Marshal(&back)
	if string(j1) != string(j2) {
		t.Fatal("folding after a round trip diverged")
	}
}

func TestUnmarshalRejectsCorruptState(t *testing.T) {
	cases := map[string]string{
		"future schema":  `{"v":99,"k":64,"n":0,"levels":[[]],"compactions":[0]}`,
		"bad k":          `{"v":1,"k":7,"n":0,"levels":[[]],"compactions":[0]}`,
		"weight":         `{"v":1,"k":64,"n":5,"min":1,"max":2,"levels":[[1,2]],"compactions":[0]}`,
		"nonfinite":      `{"v":1,"k":64,"n":1,"min":1,"max":1,"levels":[["Infinity"]],"compactions":[0]}`,
		"counter shape":  `{"v":1,"k":64,"n":1,"min":1,"max":1,"levels":[[1]],"compactions":[0,0]}`,
		"missing levels": `{"v":1,"k":64,"n":0,"levels":[],"compactions":[]}`,
		"overfull level": `{"v":1,"k":8,"n":8,"min":1,"max":8,"levels":[[1,2,3,4,5,6,7,8]],"compactions":[0]}`,
		"bad support":    `{"v":1,"k":64,"n":1,"levels":[[1]],"compactions":[0]}`,
	}
	for name, raw := range cases {
		var s Sketch
		if err := json.Unmarshal([]byte(raw), &s); err == nil {
			t.Errorf("%s: accepted %s", name, raw)
		}
	}
}

// orderstat.Min must pick up the exact MinExpectation path through
// its capability interface, exactly as it does for dist.Empirical.
func TestOrderstatDispatch(t *testing.T) {
	xs := testSamples(2000)["heavy"]
	s := fill(t, 256, xs)
	for _, n := range []int{1, 4, 64, 512} {
		min := orderstat.Min{Base: s, N: n}
		if got, want := min.Mean(), s.MinExpectation(n); got != want {
			t.Fatalf("orderstat.Min(%d).Mean() = %v, want exact %v", n, got, want)
		}
	}
}

func TestFitSample(t *testing.T) {
	xs := testSamples(300)["smooth"]
	s := fill(t, 1024, xs)
	got := s.FitSample(len(xs))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i := range sorted {
		if got[i] != sorted[i] {
			t.Fatalf("exact-mode FitSample[%d] = %v, want %v", i, got[i], sorted[i])
		}
	}
	// Subsampled pseudo-sample stays sorted and inside the support.
	sub := s.FitSample(37)
	if !sort.Float64sAreSorted(sub) {
		t.Fatal("FitSample not sorted")
	}
	lo, hi := s.Support()
	if sub[0] < lo || sub[len(sub)-1] > hi {
		t.Fatal("FitSample outside support")
	}
}

func TestSampleAndMinSample(t *testing.T) {
	xs := testSamples(1000)["smooth"]
	s := fill(t, 128, xs)
	r := xrand.New(11)
	lo, hi := s.Support()
	for i := 0; i < 100; i++ {
		if x := s.Sample(r); x < lo || x > hi {
			t.Fatalf("Sample outside support: %v", x)
		}
		if z := s.MinSample(64, r); z < lo || z > hi {
			t.Fatalf("MinSample outside support: %v", z)
		}
	}
}

func TestQuantileBatch(t *testing.T) {
	xs := testSamples(5000)["heavy"]
	s := fill(t, 128, xs)
	ps := []float64{0, 0.25, 0.5, 0.75, 1}
	dst := make([]float64, len(ps))
	s.QuantileBatch(ps, dst)
	for i, p := range ps {
		if dst[i] != s.Quantile(p) {
			t.Fatalf("QuantileBatch[%d] = %v, want %v", i, dst[i], s.Quantile(p))
		}
	}
}

func TestEmptySketchQueries(t *testing.T) {
	s := mustNew(t, 64)
	if got := s.CDF(1); got != 0 {
		t.Fatalf("empty CDF = %v", got)
	}
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Mean()) {
		t.Fatal("empty sketch queries should be NaN")
	}
	if s.ErrorBound() != 0 {
		t.Fatal("empty ErrorBound")
	}
}

func TestString(t *testing.T) {
	s := fill(t, 64, []float64{1, 2, 3})
	if got := s.String(); got != fmt.Sprintf("Sketch(k=64, n=3, ±0 rank, mean=%.6g)", 2.0) {
		t.Fatalf("String() = %q", got)
	}
}
