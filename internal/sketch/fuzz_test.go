package sketch

import (
	"bytes"
	"testing"
)

// fuzzSketch folds arbitrary fuzz bytes into a small-capacity sketch
// (k=8 forces compactions early, exercising the lossy path) with a
// deterministic byte→observation mapping.
func fuzzSketch(t *testing.T, data []byte) *Sketch {
	t.Helper()
	s, err := New(8)
	if err != nil {
		t.Fatalf("New(8): %v", err)
	}
	for i, b := range data {
		// Spread values across sign and magnitude so merges see
		// interleaved ranges, not sorted runs.
		x := float64(int8(b)) * float64(1+i%7)
		if err := s.Add(x); err != nil {
			t.Fatalf("Add(%v): %v", x, err)
		}
	}
	return s
}

// FuzzSketchRoundTrip pins the serialize → merge → deserialize
// algebra on arbitrary observation streams: marshalling must be
// canonical (round-tripping yields the same bytes), and merging a
// deserialized copy must be byte-equivalent to merging the original —
// the property replica anti-entropy and shard pooling rely on.
func FuzzSketchRoundTrip(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 3}, []byte{})
	f.Add([]byte{0, 0, 0, 0, 255, 128, 7}, []byte{42})
	f.Add(bytes.Repeat([]byte{9, 200, 33}, 40), bytes.Repeat([]byte{1}, 100))

	f.Fuzz(func(t *testing.T, a, b []byte) {
		sa := fuzzSketch(t, a)
		sb := fuzzSketch(t, b)

		ja, err := sa.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var ra Sketch
		if err := ra.UnmarshalJSON(ja); err != nil {
			t.Fatalf("unmarshal own bytes: %v", err)
		}
		ja2, err := ra.MarshalJSON()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(ja, ja2) {
			t.Fatalf("round trip not canonical:\n%s\nvs\n%s", ja, ja2)
		}
		if ra.N() != sa.N() {
			t.Fatalf("round trip changed n: %d vs %d", ra.N(), sa.N())
		}

		m1, err := Merge(sa, sb)
		if err != nil {
			t.Fatalf("merge originals: %v", err)
		}
		m2, err := Merge(&ra, sb)
		if err != nil {
			t.Fatalf("merge deserialized: %v", err)
		}
		j1, err := m1.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		j2, err := m2.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j1, j2) {
			t.Fatalf("merge of deserialized copy diverged:\n%s\nvs\n%s", j1, j2)
		}
		if m1.N() != sa.N()+sb.N() {
			t.Fatalf("merged n = %d, want %d", m1.N(), sa.N()+sb.N())
		}
	})
}

// FuzzSketchUnmarshal feeds arbitrary bytes to UnmarshalJSON: hostile
// or corrupt wire input must fail with ErrSketch (or a JSON error),
// never panic, and an accepted sketch must re-marshal canonically.
func FuzzSketchUnmarshal(f *testing.F) {
	valid, _ := func() ([]byte, error) {
		s, _ := New(8)
		for i := 0; i < 50; i++ {
			s.Add(float64(i * 3))
		}
		return s.MarshalJSON()
	}()
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"v":1,"k":8,"n":1,"levels":[[1]]}`))
	f.Add([]byte(`{"v":2}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Sketch
		if err := s.UnmarshalJSON(data); err != nil {
			return
		}
		out, err := s.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted sketch does not re-marshal: %v", err)
		}
		var again Sketch
		if err := again.UnmarshalJSON(out); err != nil {
			t.Fatalf("accepted sketch's own bytes rejected: %v", err)
		}
	})
}
