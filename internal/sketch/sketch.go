// Package sketch provides a mergeable quantile sketch for folding an
// unbounded stream of sequential runtimes into O(k·log(n/k)) memory —
// the streaming counterpart of dist.Empirical, built so a long-running
// lvserve can ingest campaigns of millions of runs without ever
// materializing the sample.
//
// # Why a KLL-style compactor hierarchy, not a t-digest
//
// Two mergeable sketches dominate practice: the t-digest (centroid
// clustering, great relative accuracy at the tails) and the
// KLL/Manku–Rajagopalan–Lindsay family (a hierarchy of fixed-capacity
// compactors). This package implements the compactor hierarchy, for
// two reasons that matter here more than tail-relative accuracy:
//
//  1. Guaranteed rank-error bounds. A compactor sketch carries a
//     worst-case uniform rank-error guarantee (derived below) that
//     holds for every input, including the atom-heavy tied samples
//     iteration counts produce. A t-digest's accuracy is empirical —
//     its clustering invariant bounds centroid sizes, not the rank
//     error of an adversarial stream — and the speed-up predictor's
//     min-expectation integrates exactly the quantile region where we
//     need a provable bound.
//  2. Byte-stable determinism. t-digest merging depends on centroid
//     ordering and floating-point averaging, so shard merges are not
//     reproducible across orderings. Here compaction is fully
//     deterministic (sort, then keep every other item, the surviving
//     parity alternating with a per-level counter), every level is a
//     plain sorted slice, and the canonical JSON depends only on the
//     retained multiset — replicas that fold the same stream, in any
//     chunking, serve byte-identical sketches.
//
// # Structure
//
// Level h holds items of weight 2^h. New observations append to level
// 0; when a level reaches the capacity k it is compacted: sorted, and
// every other item is promoted with doubled weight to level h+1
// (alternating the surviving parity so consecutive compactions cancel
// rather than accumulate bias). The retained size is at most
// k·⌈log2(n/k)+1⌉ items regardless of the stream length n.
//
// While no compaction has happened (n ≤ k) the sketch is in "exact
// mode": it is the full sample and every query — CDF, Quantile,
// Mean, Var, MinExpectation — is bit-identical to dist.Empirical on
// the same observations.
//
// # Rank-error bound
//
// Compacting a level of weight w = 2^h perturbs the rank of any query
// point by at most w (each surviving item stands for itself and its
// dropped neighbour; the parity trick makes errors of consecutive
// compactions alternate in sign, but we do not rely on that
// cancellation for the guarantee). A stream of n items triggers at
// most C_h ≈ n/(k·2^h) compactions at level h, so the total rank
// error is at most
//
//	Σ_h C_h · 2^h  ≤  n·H/k,  H = number of compacting levels ≈ log2(n/k),
//
// i.e. a relative rank error ε ≤ H/k. The sketch tracks its per-level
// compaction counts and ErrorBound reports the exact conservative
// bound Σ_h C_h·2^h / n for the stream it actually saw — 0 in exact
// mode, ~0.5% for k=1024 at n=10⁶. Merging concatenates levels and
// re-compacts, so a merged sketch's bound is the sum of its parents'
// plus whatever the re-compaction adds: Merge is associative and
// order-insensitive up to that documented bound (and byte-identical
// under reordering: the canonical form depends only on the retained
// multiset, and a⊕b and b⊕a retain the same one).
//
// A Sketch is NOT safe for concurrent mutation; concurrent readers
// are safe once ingestion is done (query caches build through a
// sync.Once that mutators reset).
package sketch

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"lasvegas/internal/xrand"
)

// DefaultK is the default compactor capacity: rank error ≈
// log2(n/k)/k ≈ 1% at a billion observations, in ~a hundred KB.
const DefaultK = 1024

// SchemaVersion is the canonical JSON schema version written by
// MarshalJSON; readers accept every version up to this one.
const SchemaVersion = 1

// ErrSketch reports an invalid sketch parameter, state or merge.
var ErrSketch = errors.New("sketch: invalid")

// Sketch is a deterministic KLL-style mergeable quantile sketch (see
// the package documentation). The zero value is not usable; call New.
type Sketch struct {
	k           int
	n           uint64
	min, max    float64
	levels      [][]float64 // levels[h] holds items of weight 2^h
	compactions []uint64    // per-level compaction counts (parity + error bound)

	once *sync.Once // guards vw; replaced by invalidate() after mutations
	vw   *view
}

// view is the lazily-built query cache: the retained items expanded
// into one ascending weighted sample. In exact mode xs is exactly the
// sorted observation array of dist.Empirical.
type view struct {
	xs  []float64 // ascending retained values
	ws  []float64 // weight of each value (2^level)
	cum []float64 // cumulative weight; cum[len-1] == float64(n)
}

// New returns an empty sketch with compactor capacity k (k ≤ 0 means
// DefaultK). k must be an even number ≥ 8; sketches merge only with
// sketches of the same k.
func New(k int) (*Sketch, error) {
	if k <= 0 {
		k = DefaultK
	}
	if k < 8 || k%2 != 0 {
		return nil, fmt.Errorf("%w: capacity k=%d must be an even number ≥ 8", ErrSketch, k)
	}
	return &Sketch{
		k:           k,
		min:         math.Inf(1),
		max:         math.Inf(-1),
		levels:      [][]float64{nil},
		compactions: []uint64{0},
		once:        new(sync.Once),
	}, nil
}

// K returns the compactor capacity.
func (s *Sketch) K() int { return s.k }

// N returns the number of observations folded in.
func (s *Sketch) N() uint64 { return s.n }

// Retained returns the number of items the sketch actually stores —
// at most k·⌈log2(n/k)+1⌉, the bound the streaming-ingest tests
// assert against.
func (s *Sketch) Retained() int {
	total := 0
	for _, lv := range s.levels {
		total += len(lv)
	}
	return total
}

// ErrorBound returns the conservative worst-case relative rank error
// of the stream folded so far: Σ_h compactions[h]·2^h / n. It is 0 in
// exact mode and grows with log2(n/k)/k.
func (s *Sketch) ErrorBound() float64 {
	if s.n == 0 {
		return 0
	}
	var errW float64
	for h, c := range s.compactions {
		errW += float64(c) * float64(uint64(1)<<uint(h))
	}
	return errW / float64(s.n)
}

// Exact reports whether the sketch still holds the full sample (no
// compaction has happened), in which case every query is bit-identical
// to dist.Empirical on the same observations.
func (s *Sketch) Exact() bool {
	for _, c := range s.compactions {
		if c > 0 {
			return false
		}
	}
	return true
}

// Add folds one observation; it fails on non-finite values.
func (s *Sketch) Add(x float64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return fmt.Errorf("%w: non-finite observation %v", ErrSketch, x)
	}
	s.levels[0] = append(s.levels[0], x)
	s.n++
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	if len(s.levels[0]) >= s.k {
		s.compact(0)
	}
	s.invalidate()
	return nil
}

// invalidate drops the lazily-built query view after a mutation. The
// sync.Once is replaced only when a view was actually built: under
// the documented contract (writers serialized against readers) an
// unfired Once with no view is still fresh, which keeps a pure
// ingest loop — millions of Adds, no queries — allocation-free here.
func (s *Sketch) invalidate() {
	if s.vw != nil {
		s.vw = nil
		s.once = new(sync.Once)
	}
}

// AddAll folds a whole sample in order.
func (s *Sketch) AddAll(xs []float64) error {
	for _, x := range xs {
		if err := s.Add(x); err != nil {
			return err
		}
	}
	return nil
}

// compact halves level h: sort, keep items of the alternating parity
// at weight 2^(h+1) on level h+1, drop the rest. An odd-sized level
// leaves its largest item in place (no rank error for it). Cascades
// while the promotion fills higher levels to capacity.
func (s *Sketch) compact(h int) {
	for ; h < len(s.levels) && len(s.levels[h]) >= s.k; h++ {
		buf := s.levels[h]
		sort.Float64s(buf)
		var leftover float64
		hasLeftover := len(buf)%2 == 1
		if hasLeftover {
			leftover = buf[len(buf)-1]
			buf = buf[:len(buf)-1]
		}
		start := 0
		if s.compactions[h]%2 == 1 {
			start = 1
		}
		promoted := make([]float64, 0, len(buf)/2)
		for i := start; i < len(buf); i += 2 {
			promoted = append(promoted, buf[i])
		}
		s.compactions[h]++
		s.levels[h] = s.levels[h][:0]
		if hasLeftover {
			s.levels[h] = append(s.levels[h], leftover)
		}
		if len(s.levels) <= h+1 {
			s.levels = append(s.levels, nil)
			s.compactions = append(s.compactions, 0)
		}
		s.levels[h+1] = append(s.levels[h+1], promoted...)
	}
}

// Clone returns an independent copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{
		k:           s.k,
		n:           s.n,
		min:         s.min,
		max:         s.max,
		levels:      make([][]float64, len(s.levels)),
		compactions: append([]uint64(nil), s.compactions...),
		once:        new(sync.Once),
	}
	for h, lv := range s.levels {
		c.levels[h] = append([]float64(nil), lv...)
	}
	return c
}

// Merge combines two sketches of the same capacity into a new one
// covering both streams; a and b are not modified. Merge is
// associative and commutative up to the documented rank-error bound,
// and exactly commutative in canonical bytes: the result's canonical
// form depends only on the retained multiset, which is symmetric in
// a and b.
func Merge(a, b *Sketch) (*Sketch, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("%w: merge with nil sketch", ErrSketch)
	}
	if a.k != b.k {
		return nil, fmt.Errorf("%w: merge capacity mismatch k=%d vs k=%d", ErrSketch, a.k, b.k)
	}
	levels := len(a.levels)
	if len(b.levels) > levels {
		levels = len(b.levels)
	}
	m := &Sketch{
		k:           a.k,
		n:           a.n + b.n,
		min:         math.Min(a.min, b.min),
		max:         math.Max(a.max, b.max),
		levels:      make([][]float64, levels),
		compactions: make([]uint64, levels),
		once:        new(sync.Once),
	}
	for h := 0; h < levels; h++ {
		var lv []float64
		if h < len(a.levels) {
			lv = append(lv, a.levels[h]...)
			m.compactions[h] += a.compactions[h]
		}
		if h < len(b.levels) {
			lv = append(lv, b.levels[h]...)
			m.compactions[h] += b.compactions[h]
		}
		m.levels[h] = lv
	}
	for h := 0; h < len(m.levels); h++ {
		if len(m.levels[h]) >= m.k {
			m.compact(h)
		}
	}
	return m, nil
}

// view returns the query cache, building it on first use after a
// mutation. Safe for concurrent readers.
func (s *Sketch) view() *view {
	once := s.once
	once.Do(func() {
		total := s.Retained()
		v := &view{
			xs:  make([]float64, 0, total),
			ws:  make([]float64, 0, total),
			cum: make([]float64, total),
		}
		for h, lv := range s.levels {
			w := float64(uint64(1) << uint(h))
			for _, x := range lv {
				v.xs = append(v.xs, x)
				v.ws = append(v.ws, w)
			}
		}
		sort.Sort(weightedSample{v.xs, v.ws})
		var run float64
		for i := range v.xs {
			run += v.ws[i]
			v.cum[i] = run
		}
		s.vw = v
	})
	return s.vw
}

// weightedSample sorts the paired value/weight slices by value (ties
// by weight, for a fully deterministic order).
type weightedSample struct{ xs, ws []float64 }

func (p weightedSample) Len() int { return len(p.xs) }
func (p weightedSample) Less(i, j int) bool {
	if p.xs[i] != p.xs[j] {
		return p.xs[i] < p.xs[j]
	}
	return p.ws[i] < p.ws[j]
}
func (p weightedSample) Swap(i, j int) {
	p.xs[i], p.xs[j] = p.xs[j], p.xs[i]
	p.ws[i], p.ws[j] = p.ws[j], p.ws[i]
}

// CDF implements dist.Dist: the estimated fraction of observations
// ≤ x, by binary search on the weighted retained sample. In exact
// mode it equals the ECDF exactly; otherwise within ErrorBound.
func (s *Sketch) CDF(x float64) float64 {
	if s.n == 0 {
		return 0
	}
	v := s.view()
	i := sort.Search(len(v.xs), func(i int) bool { return v.xs[i] > x })
	if i == 0 {
		return 0
	}
	return v.cum[i-1] / float64(s.n)
}

// PDF implements dist.Dist with the same central finite difference of
// the estimated CDF that dist.Empirical uses.
func (s *Sketch) PDF(x float64) float64 {
	if s.n == 0 {
		return 0
	}
	span := s.max - s.min
	if span == 0 {
		if x == s.min {
			return math.Inf(1)
		}
		return 0
	}
	h := span / math.Sqrt(float64(s.n))
	return (s.CDF(x+h) - s.CDF(x-h)) / (2 * h)
}

// Quantile implements dist.Dist: the smallest retained value whose
// cumulative weight reaches p·n. p=0 and p=1 map to the exact
// tracked minimum and maximum of the stream.
func (s *Sketch) Quantile(p float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s.min
	}
	if p >= 1 {
		return s.max
	}
	return s.quantileRank(p * float64(s.n))
}

// quantileRank returns the smallest retained value whose cumulative
// weight is ≥ the target rank.
func (s *Sketch) quantileRank(rank float64) float64 {
	v := s.view()
	i := sort.Search(len(v.cum), func(i int) bool { return v.cum[i] >= rank })
	if i >= len(v.xs) {
		i = len(v.xs) - 1
	}
	return v.xs[i]
}

// QuantileBatch implements dist.BatchQuantiler.
func (s *Sketch) QuantileBatch(ps, dst []float64) {
	for i, p := range ps {
		dst[i] = s.Quantile(p)
	}
}

// FitSample extracts an m-point pseudo-sample for the parametric
// estimators: the quantiles at the integer ranks ⌈(i+1)·n/m⌉. When
// the sketch is exact and m == n this reconstructs the sorted sample
// exactly (the targets are computed in rank space, so no float
// round-off can shift an index).
func (s *Sketch) FitSample(m int) []float64 {
	if s.n == 0 || m <= 0 {
		return nil
	}
	out := make([]float64, m)
	nf := float64(s.n)
	mf := float64(m)
	for i := 0; i < m; i++ {
		rank := math.Ceil(float64(i+1) * nf / mf)
		out[i] = s.quantileRank(rank)
	}
	return out
}

// Mean implements dist.Dist: the weighted mean of the retained
// sample, accumulated in ascending order (bit-identical to
// dist.Empirical in exact mode; within ErrorBound·(max−min) after).
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	v := s.view()
	var sum float64
	for i, x := range v.xs {
		sum += x * v.ws[i]
	}
	return sum / float64(s.n)
}

// Var implements dist.Dist (population variance of the weighted
// retained sample).
func (s *Sketch) Var() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	mean := s.Mean()
	v := s.view()
	var m2 float64
	for i, x := range v.xs {
		d := x - mean
		m2 += v.ws[i] * d * d
	}
	return m2 / float64(s.n)
}

// Sample implements dist.Dist: an inverse-CDF draw over the weighted
// retained sample.
func (s *Sketch) Sample(r *xrand.Rand) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.quantileRank(r.Float64Open() * float64(s.n))
}

// Support implements dist.Dist with the exactly-tracked stream
// minimum and maximum (compaction may drop the extremes from the
// levels, but never from these).
func (s *Sketch) Support() (float64, float64) {
	if s.n == 0 {
		return math.NaN(), math.NaN()
	}
	return s.min, s.max
}

// String implements dist.Dist.
func (s *Sketch) String() string {
	return fmt.Sprintf("Sketch(k=%d, n=%d, ±%.3g rank, mean=%.6g)", s.k, s.n, s.ErrorBound(), s.Mean())
}

// MinExpectation returns the expectation of the minimum of n i.i.d.
// draws from the sketched distribution, in one exact pass over the
// weighted retained sample:
//
//	E[Z(n)] = Σᵢ x₍ᵢ₎ · (Sᵢ₋₁ⁿ − Sᵢⁿ),  Sᵢ = 1 − cumᵢ/N,
//
// the same survival-step form dist.Empirical and survival.KaplanMeier
// use — and the hook orderstat.Min dispatches on, so sketch-backed
// models get the exact plug-in path with no quadrature. Bit-identical
// to dist.Empirical in exact mode.
func (s *Sketch) MinExpectation(n int) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if n <= 1 {
		return s.Mean()
	}
	v := s.view()
	nf := float64(n)
	W := float64(s.n)
	var sum float64
	hi := 1.0
	for i, x := range v.xs {
		lo := math.Pow((W-v.cum[i])/W, nf)
		sum += x * (hi - lo)
		hi = lo
	}
	return sum
}

// TruncatedMean returns E[min(Y, c)] in one pass over the weighted
// retained sample — exact below capacity, within the sketch's rank
// error above it. It is the restart-policy pricing hook: exact
// truncated means on step laws avoid quadrature over a discontinuous
// CDF.
func (s *Sketch) TruncatedMean(c float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	v := s.view()
	W := float64(s.n)
	var sum, below float64
	for i, x := range v.xs {
		if x > c {
			break
		}
		sum += x * v.ws[i]
		below = v.cum[i]
	}
	return (sum + c*(W-below)) / W
}

// MinSample draws one realization of min(X₁..Xₙ) by the inverse-CDF
// identity Z(n) = Q(1-(1-U)^{1/n}) — the same O(1)-per-draw engine
// dist.Empirical gives multiwalk.Simulate.
func (s *Sketch) MinSample(n int, r *xrand.Rand) float64 {
	u := r.Float64Open()
	p := -math.Expm1(math.Log1p(-u) / float64(n))
	return s.Quantile(p)
}

// sketchJSON is the canonical wire form: levels are sorted copies, so
// the bytes depend only on the retained multiset (plus the compaction
// counters that fix future parity), never on insertion order within a
// level. nil levels marshal as [], keeping the form canonical.
type sketchJSON struct {
	V           int         `json:"v"`
	K           int         `json:"k"`
	N           uint64      `json:"n"`
	Min         *float64    `json:"min,omitempty"`
	Max         *float64    `json:"max,omitempty"`
	Levels      [][]float64 `json:"levels"`
	Compactions []uint64    `json:"compactions"`
}

// MarshalJSON implements json.Marshaler with a canonical,
// multiset-determined byte form (see sketchJSON).
func (s *Sketch) MarshalJSON() ([]byte, error) {
	j := sketchJSON{
		V:           SchemaVersion,
		K:           s.k,
		N:           s.n,
		Levels:      make([][]float64, len(s.levels)),
		Compactions: append([]uint64{}, s.compactions...),
	}
	if s.n > 0 {
		mn, mx := s.min, s.max
		j.Min, j.Max = &mn, &mx
	}
	for h, lv := range s.levels {
		sorted := append([]float64{}, lv...)
		sort.Float64s(sorted)
		j.Levels[h] = sorted
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler, validating the schema
// version, the capacity, finiteness of every retained value and the
// weight invariant Σ_h |level_h|·2^h == n.
func (s *Sketch) UnmarshalJSON(data []byte) error {
	var j sketchJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.V > SchemaVersion {
		return fmt.Errorf("%w: sketch schema %d, this release reads ≤ %d", ErrSketch, j.V, SchemaVersion)
	}
	base, err := New(j.K)
	if err != nil {
		return err
	}
	if len(j.Levels) == 0 || len(j.Compactions) != len(j.Levels) {
		return fmt.Errorf("%w: %d levels with %d compaction counters", ErrSketch, len(j.Levels), len(j.Compactions))
	}
	if len(j.Levels) > 64 {
		return fmt.Errorf("%w: %d levels", ErrSketch, len(j.Levels))
	}
	var weight uint64
	for h, lv := range j.Levels {
		if len(lv) >= j.K {
			return fmt.Errorf("%w: level %d holds %d ≥ k=%d items", ErrSketch, h, len(lv), j.K)
		}
		for _, x := range lv {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("%w: non-finite retained value %v", ErrSketch, x)
			}
		}
		weight += uint64(len(lv)) << uint(h)
	}
	if weight != j.N {
		return fmt.Errorf("%w: retained weight %d does not cover n=%d", ErrSketch, weight, j.N)
	}
	base.n = j.N
	base.levels = make([][]float64, len(j.Levels))
	for h, lv := range j.Levels {
		base.levels[h] = append([]float64(nil), lv...)
	}
	base.compactions = append([]uint64(nil), j.Compactions...)
	if j.N > 0 {
		if j.Min == nil || j.Max == nil || *j.Min > *j.Max ||
			math.IsNaN(*j.Min) || math.IsInf(*j.Min, 0) || math.IsNaN(*j.Max) || math.IsInf(*j.Max, 0) {
			return fmt.Errorf("%w: bad support", ErrSketch)
		}
		base.min, base.max = *j.Min, *j.Max
	}
	*s = *base
	return nil
}
