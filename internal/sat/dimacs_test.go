package sat

import (
	"bytes"
	"strings"
	"testing"

	"lasvegas/internal/xrand"
)

func TestParseDIMACSBasic(t *testing.T) {
	in := `c a comment
p cnf 3 2
1 -2 0
2 3 0
`
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 2 {
		t.Fatalf("parsed %d vars, %d clauses", f.NumVars, len(f.Clauses))
	}
	if f.Clauses[0][1] != -2 {
		t.Errorf("clause 0: %v", f.Clauses[0])
	}
}

func TestParseDIMACSMultiLineClause(t *testing.T) {
	in := "p cnf 4 1\n1 2\n3 -4 0\n"
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 1 || len(f.Clauses[0]) != 4 {
		t.Fatalf("clauses %v", f.Clauses)
	}
}

func TestParseDIMACSMissingFinalTerminator(t *testing.T) {
	in := "p cnf 2 2\n1 2 0\n-1 -2\n"
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 2 {
		t.Fatalf("clauses %v", f.Clauses)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	bad := []string{
		"",                       // no header
		"1 2 0\n",                // clause before header
		"p cnf 2 1\np cnf 2 1\n", // duplicate header
		"p dnf 2 1\n1 0\n",       // wrong format word
		"p cnf 0 1\n1 0\n",       // zero vars
		"p cnf 2 1\nx y 0\n",     // non-numeric literal
		"p cnf 2 1\n0\n",         // empty clause
		"p cnf 2 3\n1 0\n",       // clause count mismatch
		"p cnf 2 1\n3 0\n",       // literal out of range
	}
	for i, in := range bad {
		if _, err := ParseDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	r := xrand.New(9)
	f, _, err := RandomPlantedKSAT(25, 100, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars != f.NumVars || len(back.Clauses) != len(f.Clauses) {
		t.Fatalf("round trip changed shape")
	}
	for i := range f.Clauses {
		if len(back.Clauses[i]) != len(f.Clauses[i]) {
			t.Fatalf("clause %d length changed", i)
		}
		for j := range f.Clauses[i] {
			if back.Clauses[i][j] != f.Clauses[i][j] {
				t.Fatalf("clause %d literal %d changed", i, j)
			}
		}
	}
}

func TestWriteDIMACSValidation(t *testing.T) {
	if err := WriteDIMACS(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil formula accepted")
	}
	badF := &Formula{NumVars: 1, Clauses: []Clause{{5}}}
	if err := WriteDIMACS(&bytes.Buffer{}, badF); err == nil {
		t.Error("invalid formula accepted")
	}
}
