// Package sat implements a WalkSAT-style stochastic local search for
// boolean satisfiability and a random k-SAT instance generator. The
// paper's conclusion names SAT solvers as the next Las Vegas family
// to which the prediction model should apply ("portfolio algorithms
// in the SAT community", §1; "further research will consider … SAT
// solvers", §8) — this package provides that workload: WalkSAT's
// runtime on satisfiable random 3-SAT near the phase transition is a
// heavy-tailed random variable, and the solver plugs directly into
// the multiwalk engine and the fit→predict pipeline.
package sat

import (
	"context"
	"errors"
	"fmt"

	"lasvegas/internal/xrand"
)

// Literal is a 1-based variable index, negative for negation (the
// DIMACS convention). Zero is invalid.
type Literal int

// Clause is a disjunction of literals.
type Clause []Literal

// Formula is a CNF formula over NumVars variables.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Validate checks literal ranges and non-empty clauses.
func (f *Formula) Validate() error {
	if f.NumVars < 1 {
		return fmt.Errorf("sat: %d variables", f.NumVars)
	}
	for i, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("sat: clause %d is empty", i)
		}
		for _, lit := range c {
			v := lit
			if v < 0 {
				v = -v
			}
			if v == 0 || int(v) > f.NumVars {
				return fmt.Errorf("sat: clause %d has literal %d out of range", i, lit)
			}
		}
	}
	return nil
}

// Eval reports whether assignment satisfies the formula; assignment
// is indexed 1..NumVars (index 0 unused).
func (f *Formula) Eval(assignment []bool) bool {
	return f.CountUnsat(assignment) == 0
}

// CountUnsat returns the number of falsified clauses.
func (f *Formula) CountUnsat(assignment []bool) int {
	unsat := 0
	for _, c := range f.Clauses {
		if !clauseSat(c, assignment) {
			unsat++
		}
	}
	return unsat
}

func clauseSat(c Clause, assignment []bool) bool {
	for _, lit := range c {
		if lit > 0 && assignment[lit] {
			return true
		}
		if lit < 0 && !assignment[-lit] {
			return true
		}
	}
	return false
}

// RandomKSAT draws a uniform random k-SAT formula with n variables
// and m clauses (distinct variables within each clause, signs
// uniform). With k=3 and m/n ≈ 4.26 instances sit at the
// satisfiability phase transition; the generator enforces
// satisfiability by planting nothing — use ratios ≤ 4.0 for mostly
// satisfiable instances, or RandomPlantedKSAT for guaranteed ones.
func RandomKSAT(n, m, k int, r *xrand.Rand) (*Formula, error) {
	if n < k || k < 1 {
		return nil, fmt.Errorf("sat: n=%d k=%d", n, k)
	}
	if m < 1 {
		return nil, fmt.Errorf("sat: m=%d clauses", m)
	}
	f := &Formula{NumVars: n, Clauses: make([]Clause, m)}
	for i := range f.Clauses {
		f.Clauses[i] = randomClause(n, k, r, nil)
	}
	return f, nil
}

// RandomPlantedKSAT draws a random k-SAT formula that is satisfied by
// a hidden planted assignment, guaranteeing satisfiability (so every
// WalkSAT run terminates — the Las Vegas property the model needs).
func RandomPlantedKSAT(n, m, k int, r *xrand.Rand) (*Formula, []bool, error) {
	if n < k || k < 1 {
		return nil, nil, fmt.Errorf("sat: n=%d k=%d", n, k)
	}
	if m < 1 {
		return nil, nil, fmt.Errorf("sat: m=%d clauses", m)
	}
	planted := make([]bool, n+1)
	for v := 1; v <= n; v++ {
		planted[v] = r.Float64() < 0.5
	}
	f := &Formula{NumVars: n, Clauses: make([]Clause, m)}
	for i := range f.Clauses {
		f.Clauses[i] = randomClause(n, k, r, planted)
	}
	return f, planted, nil
}

// randomClause draws k distinct variables with uniform signs; when
// planted is non-nil the clause is redrawn until the planted
// assignment satisfies it (rejection keeps the distribution close to
// uniform-conditioned-on-satisfiable). Distinctness is enforced by
// scanning the clause under construction — k is tiny (3 for the phase
// transition, ≤5 in practice), so the linear scan beats any set and
// the only allocation left is the clause itself, which is retained.
func randomClause(n, k int, r *xrand.Rand, planted []bool) Clause {
	c := make(Clause, 0, k)
	for {
		c = c[:0]
	draw:
		for len(c) < k {
			v := 1 + r.Intn(n)
			for _, lit := range c {
				if lit == Literal(v) || lit == Literal(-v) {
					continue draw
				}
			}
			if r.Float64() < 0.5 {
				c = append(c, Literal(-v))
			} else {
				c = append(c, Literal(v))
			}
		}
		if planted == nil || clauseSat(c, planted) {
			return c
		}
	}
}

// Params tunes WalkSAT.
type Params struct {
	// Noise is the probability of a random (rather than greedy) flip
	// inside an unsatisfied clause; 0.5 is the classic 3-SAT setting.
	Noise float64
	// MaxFlips caps one run (0 = unbounded — Las Vegas mode).
	MaxFlips int64
	// CheckEvery is the cancellation polling period.
	CheckEvery int64
}

func (p Params) withDefaults() Params {
	if p.Noise <= 0 || p.Noise >= 1 {
		p.Noise = 0.5
	}
	if p.CheckEvery <= 0 {
		p.CheckEvery = 4096
	}
	return p
}

// Result reports one WalkSAT run. Flips is the runtime measure (the
// analogue of Adaptive Search iterations).
type Result struct {
	Assignment []bool
	Solved     bool
	Flips      int64
	Err        error
}

// ErrInterrupted mirrors adaptive.ErrInterrupted for cancelled runs.
var ErrInterrupted = errors.New("sat: interrupted")

// occurrence index: for each variable, the clauses containing it.
type index struct {
	f        *Formula
	occ      [][]int // variable → clause indices
	satCount []int   // clause → number of satisfying literals
	unsat    []int   // list of unsatisfied clause indices
	where    []int   // clause → position in unsat (-1 when satisfied)
}

func buildIndex(f *Formula) *index {
	ix := &index{
		f:        f,
		occ:      make([][]int, f.NumVars+1),
		satCount: make([]int, len(f.Clauses)),
		where:    make([]int, len(f.Clauses)),
	}
	for ci, c := range f.Clauses {
		for _, lit := range c {
			v := int(lit)
			if v < 0 {
				v = -v
			}
			ix.occ[v] = append(ix.occ[v], ci)
		}
	}
	return ix
}

func (ix *index) reset(assignment []bool) {
	ix.unsat = ix.unsat[:0]
	for ci, c := range ix.f.Clauses {
		n := 0
		for _, lit := range c {
			if litSat(lit, assignment) {
				n++
			}
		}
		ix.satCount[ci] = n
		if n == 0 {
			ix.where[ci] = len(ix.unsat)
			ix.unsat = append(ix.unsat, ci)
		} else {
			ix.where[ci] = -1
		}
	}
}

func litSat(lit Literal, assignment []bool) bool {
	if lit > 0 {
		return assignment[lit]
	}
	return !assignment[-lit]
}

// flip updates the incremental structures for flipping variable v.
func (ix *index) flip(v int, assignment []bool) {
	assignment[v] = !assignment[v]
	for _, ci := range ix.occ[v] {
		c := ix.f.Clauses[ci]
		var delta int
		for _, lit := range c {
			lv := int(lit)
			if lv < 0 {
				lv = -lv
			}
			if lv != v {
				continue
			}
			if litSat(lit, assignment) {
				delta++
			} else {
				delta--
			}
		}
		before := ix.satCount[ci]
		after := before + delta
		ix.satCount[ci] = after
		switch {
		case before == 0 && after > 0:
			ix.removeUnsat(ci)
		case before > 0 && after == 0:
			ix.where[ci] = len(ix.unsat)
			ix.unsat = append(ix.unsat, ci)
		}
	}
}

func (ix *index) removeUnsat(ci int) {
	pos := ix.where[ci]
	last := len(ix.unsat) - 1
	moved := ix.unsat[last]
	ix.unsat[pos] = moved
	ix.where[moved] = pos
	ix.unsat = ix.unsat[:last]
	ix.where[ci] = -1
}

// breakCount returns the number of clauses that would become
// unsatisfied by flipping v.
func (ix *index) breakCount(v int, assignment []bool) int {
	b := 0
	for _, ci := range ix.occ[v] {
		if ix.satCount[ci] != 1 {
			continue
		}
		// The clause is critically satisfied; it breaks iff its single
		// satisfying literal is on v.
		for _, lit := range ix.f.Clauses[ci] {
			lv := int(lit)
			if lv < 0 {
				lv = -lv
			}
			if lv == v && litSat(lit, assignment) {
				b++
				break
			}
		}
	}
	return b
}

// Solver runs WalkSAT on one formula. Not safe for concurrent use;
// multiwalk walkers each build their own.
type Solver struct {
	f      *Formula
	params Params
	ix     *index
	assign []bool // scratch assignment, reused across runs
}

// NewSolver validates the formula and prepares occurrence indexes.
func NewSolver(f *Formula, params Params) (*Solver, error) {
	if f == nil {
		return nil, errors.New("sat: nil formula")
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &Solver{
		f:      f,
		params: params.withDefaults(),
		ix:     buildIndex(f),
		assign: make([]bool, f.NumVars+1),
	}, nil
}

// Run executes WalkSAT until a model is found or the flip budget is
// exhausted.
func (s *Solver) Run(r *xrand.Rand) Result { return s.RunContext(context.Background(), r) }

// RunContext is Run with cooperative cancellation.
func (s *Solver) RunContext(ctx context.Context, r *xrand.Rand) Result {
	// Reuse the solver's scratch assignment across runs; the flip loop
	// is then allocation-free and only a successful run copies out.
	assignment := s.assign
	for v := 1; v <= s.f.NumVars; v++ {
		assignment[v] = r.Float64() < 0.5
	}
	s.ix.reset(assignment)
	var flips int64
	for len(s.ix.unsat) > 0 {
		if s.params.MaxFlips > 0 && flips >= s.params.MaxFlips {
			return Result{Solved: false, Flips: flips,
				Err: fmt.Errorf("sat: flip budget %d exhausted", s.params.MaxFlips)}
		}
		if flips%s.params.CheckEvery == 0 && ctx.Err() != nil {
			return Result{Solved: false, Flips: flips, Err: ErrInterrupted}
		}
		flips++
		// Pick a random unsatisfied clause.
		c := s.f.Clauses[s.ix.unsat[r.Intn(len(s.ix.unsat))]]
		var v int
		if r.Float64() < s.params.Noise {
			// Noise step: random literal of the clause.
			lit := c[r.Intn(len(c))]
			if lit < 0 {
				v = int(-lit)
			} else {
				v = int(lit)
			}
		} else {
			// Greedy step: literal with minimal break count (free moves
			// taken immediately).
			best, bestBreak := 0, int(^uint(0)>>1)
			count := 0
			for _, lit := range c {
				lv := int(lit)
				if lv < 0 {
					lv = -lv
				}
				b := s.ix.breakCount(lv, assignment)
				switch {
				case b < bestBreak:
					best, bestBreak = lv, b
					count = 1
				case b == bestBreak:
					count++
					if r.Intn(count) == 0 {
						best = lv
					}
				}
			}
			v = best
		}
		s.ix.flip(v, assignment)
	}
	model := make([]bool, len(assignment))
	copy(model, assignment)
	return Result{Assignment: model, Solved: true, Flips: flips}
}
