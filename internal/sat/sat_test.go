package sat

import (
	"context"
	"errors"
	"testing"
	"time"

	"lasvegas/internal/xrand"
)

func TestFormulaValidate(t *testing.T) {
	good := &Formula{NumVars: 3, Clauses: []Clause{{1, -2}, {3}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Formula{
		{NumVars: 0, Clauses: []Clause{{1}}},
		{NumVars: 2, Clauses: []Clause{{}}},
		{NumVars: 2, Clauses: []Clause{{3}}},
		{NumVars: 2, Clauses: []Clause{{0}}},
		{NumVars: 2, Clauses: []Clause{{-3}}},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad formula %d accepted", i)
		}
	}
}

func TestEvalAndCount(t *testing.T) {
	// (x1 ∨ ¬x2) ∧ (x2 ∨ x3) ∧ (¬x1 ∨ ¬x3)
	f := &Formula{NumVars: 3, Clauses: []Clause{{1, -2}, {2, 3}, {-1, -3}}}
	assign := []bool{false, true, true, false} // x1=T x2=T x3=F
	if !f.Eval(assign) {
		t.Error("satisfying assignment rejected")
	}
	assign2 := []bool{false, false, true, false} // x1=F x2=T x3=F: clause 1 false
	if f.Eval(assign2) {
		t.Error("falsifying assignment accepted")
	}
	if n := f.CountUnsat(assign2); n != 1 {
		t.Errorf("unsat count %d, want 1", n)
	}
}

func TestRandomKSATShape(t *testing.T) {
	r := xrand.New(1)
	f, err := RandomKSAT(50, 200, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 200 {
		t.Fatalf("%d clauses", len(f.Clauses))
	}
	for _, c := range f.Clauses {
		if len(c) != 3 {
			t.Fatalf("clause size %d", len(c))
		}
		seen := map[int]bool{}
		for _, lit := range c {
			v := int(lit)
			if v < 0 {
				v = -v
			}
			if seen[v] {
				t.Fatal("repeated variable in clause")
			}
			seen[v] = true
		}
	}
}

func TestRandomKSATValidation(t *testing.T) {
	r := xrand.New(2)
	if _, err := RandomKSAT(2, 10, 3, r); err == nil {
		t.Error("n < k accepted")
	}
	if _, err := RandomKSAT(5, 0, 3, r); err == nil {
		t.Error("m = 0 accepted")
	}
	if _, _, err := RandomPlantedKSAT(2, 10, 3, r); err == nil {
		t.Error("planted n < k accepted")
	}
}

func TestPlantedFormulaIsSatisfiable(t *testing.T) {
	r := xrand.New(3)
	f, planted, err := RandomPlantedKSAT(40, 170, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Eval(planted) {
		t.Fatal("planted assignment does not satisfy the formula")
	}
}

func TestWalkSATSolvesPlantedInstances(t *testing.T) {
	r := xrand.New(4)
	for trial := 0; trial < 10; trial++ {
		f, _, err := RandomPlantedKSAT(60, 240, 3, r) // ratio 4.0
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSolver(f, Params{})
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(xrand.New(uint64(trial)))
		if !res.Solved {
			t.Fatalf("trial %d unsolved: %v", trial, res.Err)
		}
		if !f.Eval(res.Assignment) {
			t.Fatalf("trial %d returned a non-model", trial)
		}
		if res.Flips < 1 {
			t.Error("no flips recorded")
		}
	}
}

func TestWalkSATRuntimeIsRandomVariable(t *testing.T) {
	r := xrand.New(5)
	f, _, err := RandomPlantedKSAT(80, 330, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	flips := map[int64]bool{}
	for seed := uint64(0); seed < 15; seed++ {
		s, _ := NewSolver(f, Params{})
		res := s.Run(xrand.New(seed))
		if !res.Solved {
			t.Fatalf("seed %d unsolved", seed)
		}
		flips[res.Flips] = true
	}
	if len(flips) < 5 {
		t.Errorf("flip counts suspiciously concentrated: %v", flips)
	}
}

func TestWalkSATBudget(t *testing.T) {
	r := xrand.New(6)
	f, _, err := RandomPlantedKSAT(100, 420, 3, r) // hard ratio 4.2
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(f, Params{MaxFlips: 10})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(xrand.New(1))
	if res.Solved {
		t.Skip("solved in 10 flips — freak seed")
	}
	if res.Err == nil || res.Flips > 10 {
		t.Errorf("budget not enforced: flips=%d err=%v", res.Flips, res.Err)
	}
}

func TestWalkSATCancellation(t *testing.T) {
	r := xrand.New(7)
	// Unsatisfiable-ish overconstrained instance: ratio 6 random (not
	// planted) — WalkSAT will churn forever, so cancellation must stop it.
	f, err := RandomKSAT(60, 360, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(f, Params{CheckEvery: 128})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Result, 1)
	go func() { done <- s.RunContext(ctx, xrand.New(2)) }()
	cancel()
	select {
	case res := <-done:
		if res.Solved {
			t.Skip("instance happened to be satisfiable and solved instantly")
		}
		if !errors.Is(res.Err, ErrInterrupted) {
			t.Errorf("want ErrInterrupted, got %v", res.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation not honoured")
	}
}

func TestIncrementalIndexConsistency(t *testing.T) {
	// After any flip sequence, satCount and the unsat list must match
	// a from-scratch recomputation.
	r := xrand.New(8)
	f, _, err := RandomPlantedKSAT(30, 120, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIndex(f)
	assignment := make([]bool, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		assignment[v] = r.Float64() < 0.5
	}
	ix.reset(assignment)
	for step := 0; step < 500; step++ {
		v := 1 + r.Intn(f.NumVars)
		ix.flip(v, assignment)
		if step%50 != 0 {
			continue
		}
		unsatWant := f.CountUnsat(assignment)
		if len(ix.unsat) != unsatWant {
			t.Fatalf("step %d: unsat list %d, recompute %d", step, len(ix.unsat), unsatWant)
		}
		for ci, c := range f.Clauses {
			n := 0
			for _, lit := range c {
				if litSat(lit, assignment) {
					n++
				}
			}
			if ix.satCount[ci] != n {
				t.Fatalf("step %d clause %d: satCount %d, want %d", step, ci, ix.satCount[ci], n)
			}
		}
	}
}

func TestNewSolverValidation(t *testing.T) {
	if _, err := NewSolver(nil, Params{}); err == nil {
		t.Error("nil formula accepted")
	}
	if _, err := NewSolver(&Formula{NumVars: 1, Clauses: []Clause{{}}}, Params{}); err == nil {
		t.Error("invalid formula accepted")
	}
}
