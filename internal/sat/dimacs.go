package sat

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DIMACS CNF input/output, the interchange format of the SAT
// community the paper's §1 portfolio discussion refers to. Supports
// comments, the "p cnf <vars> <clauses>" header and 0-terminated
// clauses (possibly spanning lines).

// ParseDIMACS reads a CNF formula in DIMACS format.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var f *Formula
	var current Clause
	declared := 0
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		if strings.HasPrefix(text, "p") {
			if f != nil {
				return nil, fmt.Errorf("sat: line %d: duplicate problem header", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: line %d: malformed header %q", line, text)
			}
			nv, err1 := strconv.Atoi(fields[2])
			nc, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv < 1 || nc < 0 {
				return nil, fmt.Errorf("sat: line %d: bad header numbers %q", line, text)
			}
			f = &Formula{NumVars: nv, Clauses: make([]Clause, 0, nc)}
			declared = nc
			continue
		}
		if f == nil {
			return nil, fmt.Errorf("sat: line %d: clause before header", line)
		}
		for _, tok := range strings.Fields(text) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: line %d: bad literal %q", line, tok)
			}
			if v == 0 {
				if len(current) == 0 {
					return nil, fmt.Errorf("sat: line %d: empty clause", line)
				}
				f.Clauses = append(f.Clauses, current)
				current = nil
				continue
			}
			current = append(current, Literal(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if f == nil {
		return nil, errors.New("sat: no problem header found")
	}
	if len(current) > 0 {
		// Tolerate a final clause without its 0 terminator (common in
		// the wild).
		f.Clauses = append(f.Clauses, current)
	}
	if declared != 0 && len(f.Clauses) != declared {
		return nil, fmt.Errorf("sat: header declares %d clauses, found %d", declared, len(f.Clauses))
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// WriteDIMACS emits the formula in DIMACS CNF format.
func WriteDIMACS(w io.Writer, f *Formula) error {
	if f == nil {
		return errors.New("sat: nil formula")
	}
	if err := f.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, lit := range c {
			if _, err := fmt.Fprintf(bw, "%d ", lit); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
