package sat

import (
	"testing"

	"lasvegas/internal/xrand"
)

// BenchmarkRandomKSAT measures instance generation; the distinctness
// scan replaced a per-clause map, so allocs/op is ~1 clause per
// clause generated.
func BenchmarkRandomKSAT(b *testing.B) {
	r := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RandomKSAT(150, 600, 3, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWalkSATSolve measures one full WalkSAT solve of a planted
// 3-SAT instance, solver construction excluded — the inner flip loop
// must be allocation-free (only the returned model copy allocates).
func BenchmarkWalkSATSolve(b *testing.B) {
	r := xrand.New(2)
	f, _, err := RandomPlantedKSAT(100, 400, 3, r)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSolver(f, Params{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := s.Run(xrand.New(uint64(i))); !res.Solved {
			b.Fatal("unsolved planted instance")
		}
	}
}
