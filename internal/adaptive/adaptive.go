// Package adaptive is a Go implementation of the Adaptive Search
// metaheuristic of Codognet & Diaz, the Las Vegas algorithm the paper
// benchmarks (§4.2). The solver:
//
//  1. starts from a uniformly random permutation;
//  2. projects constraint errors onto variables and picks the worst
//     non-tabu variable (the "culprit");
//  3. moves it with the min-conflict heuristic (the swap minimizing
//     the next configuration's cost);
//  4. marks variables whose best move does not improve as tabu for a
//     fixed tenure, and performs a partial random reset when too many
//     variables are frozen;
//  5. optionally restarts from scratch after an iteration budget.
//
// Runtime (in iterations) is a random variable — exactly the Y of the
// paper's probabilistic model; Result carries the iteration count so
// campaigns can build its empirical distribution.
package adaptive

import (
	"context"
	"errors"
	"fmt"
	"math"

	"lasvegas/internal/csp"
	"lasvegas/internal/xrand"
)

// ErrInterrupted is returned (inside Result.Err) when the context is
// cancelled before a solution is found — the multi-walk engine kills
// losing walkers this way.
var ErrInterrupted = errors.New("adaptive: interrupted")

// Params tunes the metaheuristic. The zero value is unusable; start
// from DefaultParams.
type Params struct {
	// TabuTenure is the number of iterations a marked variable stays
	// frozen (the short-term memory of §4.2).
	TabuTenure int
	// ResetLimit is the number of simultaneously tabu variables that
	// triggers a partial reset.
	ResetLimit int
	// ResetFraction is the fraction of variables re-randomized by a
	// reset.
	ResetFraction float64
	// MaxIterationsPerRestart caps one descent; 0 disables restarts.
	MaxIterationsPerRestart int64
	// MaxIterations caps the total effort; 0 means unbounded (pure Las
	// Vegas behaviour, the paper's setting).
	MaxIterations int64
	// ProbSelectLocalMin is the probability, on a local minimum, of
	// accepting the non-improving best move instead of marking the
	// culprit tabu (plateau escape).
	ProbSelectLocalMin float64
	// CheckEvery is the iteration period of context-cancellation
	// checks when running under RunContext.
	CheckEvery int64
}

// DefaultParams returns the tuning used by the reference
// implementation's benchmarks, scaled to problem size n.
func DefaultParams(n int) Params {
	if n < 1 {
		n = 1
	}
	return Params{
		TabuTenure:              5 + n/10,
		ResetLimit:              1 + n/5,
		ResetFraction:           0.25,
		MaxIterationsPerRestart: 0,
		MaxIterations:           0,
		ProbSelectLocalMin:      0.05,
		CheckEvery:              1024,
	}
}

// Stats counts solver events; all fields accumulate across restarts.
type Stats struct {
	Iterations  int64 // variable-selection steps (the paper's runtime unit)
	Swaps       int64
	LocalMinima int64
	Resets      int64
	Restarts    int64
}

// Result is the outcome of one Las Vegas run.
type Result struct {
	Solution []int // best configuration found (a solution iff Solved)
	Cost     int   // its cost
	Solved   bool
	Stats    Stats
	Err      error // ErrInterrupted or budget exhaustion; nil when Solved
}

// Solver runs Adaptive Search on one problem. A Solver is not safe
// for concurrent use; the multi-walk engine creates one per walker.
type Solver struct {
	p      csp.Problem
	inc    csp.Incremental // nil when the problem is not incremental
	vc     csp.VariableCost
	params Params

	sol      []int
	cost     int
	tabu     []int64 // iteration until which variable i is frozen
	tabuUsed int     // number of currently frozen variables
	errs     []int   // scratch: per-variable projected error
}

// New creates a solver; params zero-values fall back to
// DefaultParams(p.Size()) field by field.
func New(p csp.Problem, params Params) (*Solver, error) {
	if p == nil {
		return nil, errors.New("adaptive: nil problem")
	}
	n := p.Size()
	if n < 2 {
		return nil, fmt.Errorf("adaptive: problem size %d too small", n)
	}
	def := DefaultParams(n)
	if params.TabuTenure <= 0 {
		params.TabuTenure = def.TabuTenure
	}
	if params.ResetLimit <= 0 {
		params.ResetLimit = def.ResetLimit
	}
	if params.ResetFraction <= 0 || params.ResetFraction > 1 {
		params.ResetFraction = def.ResetFraction
	}
	if params.ProbSelectLocalMin < 0 || params.ProbSelectLocalMin >= 1 {
		params.ProbSelectLocalMin = def.ProbSelectLocalMin
	}
	if params.CheckEvery <= 0 {
		params.CheckEvery = def.CheckEvery
	}
	s := &Solver{p: p, params: params}
	s.inc, _ = p.(csp.Incremental)
	s.vc, _ = p.(csp.VariableCost)
	s.sol = make([]int, n)
	s.tabu = make([]int64, n)
	s.errs = make([]int, n)
	return s, nil
}

// Params returns the effective tuning.
func (s *Solver) Params() Params { return s.params }

// Run solves with an isolated random stream until a solution is found
// or a budget expires.
func (s *Solver) Run(r *xrand.Rand) Result {
	return s.RunContext(context.Background(), r)
}

// RunContext is Run with cooperative cancellation: the context is
// polled every Params.CheckEvery iterations, so losing multi-walk
// walkers stop promptly.
func (s *Solver) RunContext(ctx context.Context, r *xrand.Rand) Result {
	var st Stats
	n := s.p.Size()
	best := make([]int, n)
	bestCost := math.MaxInt

	s.restart(r, &st)
	var sinceRestart int64
	for {
		if s.cost == 0 {
			copy(best, s.sol)
			return Result{Solution: best, Cost: 0, Solved: true, Stats: st}
		}
		if s.cost < bestCost {
			bestCost = s.cost
			copy(best, s.sol)
		}
		if s.params.MaxIterations > 0 && st.Iterations >= s.params.MaxIterations {
			return Result{Solution: best, Cost: bestCost, Stats: st,
				Err: fmt.Errorf("adaptive: iteration budget %d exhausted", s.params.MaxIterations)}
		}
		if st.Iterations%s.params.CheckEvery == 0 && ctx.Err() != nil {
			return Result{Solution: best, Cost: bestCost, Stats: st, Err: ErrInterrupted}
		}
		if s.params.MaxIterationsPerRestart > 0 && sinceRestart >= s.params.MaxIterationsPerRestart {
			s.restart(r, &st)
			st.Restarts++
			sinceRestart = 0
			continue
		}

		st.Iterations++
		sinceRestart++

		culprit := s.selectWorstVariable(r, st.Iterations)
		if culprit < 0 {
			// Every variable is tabu: force a reset.
			s.reset(r, &st)
			continue
		}
		j, swapCost := s.bestSwap(r, culprit)
		switch {
		case swapCost < s.cost:
			s.doSwap(culprit, j, swapCost, &st)
		case swapCost == s.cost && j >= 0 && r.Float64() < 0.5:
			// Plateau: take the sideways move half the time.
			s.doSwap(culprit, j, swapCost, &st)
		default:
			// Local minimum on this variable.
			st.LocalMinima++
			if j >= 0 && r.Float64() < s.params.ProbSelectLocalMin {
				s.doSwap(culprit, j, swapCost, &st)
				continue
			}
			s.markTabu(culprit, st.Iterations)
			if s.tabuUsed >= s.params.ResetLimit {
				s.reset(r, &st)
			}
		}
	}
}

// restart draws a fresh uniform permutation and rebuilds state. The
// shuffle runs in place on s.sol (identical stream consumption to
// xrand.Perm, without its allocation).
func (s *Solver) restart(r *xrand.Rand, st *Stats) {
	for i := range s.sol {
		s.sol[i] = i
	}
	r.Shuffle(s.sol)
	s.initState()
	for i := range s.tabu {
		s.tabu[i] = 0
	}
	s.tabuUsed = 0
	_ = st
}

func (s *Solver) initState() {
	if s.inc != nil {
		s.inc.InitState(s.sol)
	}
	s.cost = s.p.Cost(s.sol)
}

// selectWorstVariable returns the non-tabu variable with maximal
// projected error (ties broken uniformly), or -1 when all variables
// are frozen. Variables with zero error are skipped — moving them
// cannot repair anything.
func (s *Solver) selectWorstVariable(r *xrand.Rand, iter int64) int {
	n := s.p.Size()
	worst, count := -1, 0
	worstErr := 0
	for i := 0; i < n; i++ {
		if s.tabu[i] > iter {
			continue
		}
		e := s.costOnVariable(i)
		switch {
		case e > worstErr:
			worstErr = e
			worst = i
			count = 1
		case e == worstErr && e > 0:
			count++
			if r.Intn(count) == 0 {
				worst = i
			}
		}
	}
	return worst
}

// costOnVariable projects the error on variable i, preferring the
// problem's own projection.
func (s *Solver) costOnVariable(i int) int {
	if s.vc != nil {
		return s.vc.CostOnVariable(s.sol, i)
	}
	// Probing fallback: improvement potential of the best swap at i.
	n := s.p.Size()
	best := s.cost
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		if c := csp.CostIfSwap(s.p, s.sol, s.cost, i, j); c < best {
			best = c
		}
	}
	if d := s.cost - best; d > 0 {
		return d
	}
	return 0
}

// bestSwap returns the min-conflict partner for variable i: the
// position j whose swap yields the smallest next cost (ties broken
// uniformly). j = -1 when n < 2 (cannot happen after New validates).
func (s *Solver) bestSwap(r *xrand.Rand, i int) (j, cost int) {
	n := s.p.Size()
	j = -1
	best := math.MaxInt
	count := 0
	for k := 0; k < n; k++ {
		if k == i {
			continue
		}
		c := csp.CostIfSwap(s.p, s.sol, s.cost, i, k)
		switch {
		case c < best:
			best = c
			j = k
			count = 1
		case c == best:
			count++
			if r.Intn(count) == 0 {
				j = k
			}
		}
	}
	return j, best
}

func (s *Solver) doSwap(i, j, newCost int, st *Stats) {
	s.sol[i], s.sol[j] = s.sol[j], s.sol[i]
	if s.inc != nil {
		s.inc.ExecutedSwap(s.sol, i, j)
	}
	s.cost = newCost
	st.Swaps++
}

func (s *Solver) markTabu(i int, iter int64) {
	if s.tabu[i] <= iter {
		s.tabuUsed++
	}
	s.tabu[i] = iter + int64(s.params.TabuTenure)
}

// reset re-randomizes a fraction of the variables (random transposi-
// tions), clears the tabu list and recomputes incremental state —
// §4.2's escape from stagnation.
func (s *Solver) reset(r *xrand.Rand, st *Stats) {
	n := s.p.Size()
	k := int(float64(n) * s.params.ResetFraction)
	if k < 2 {
		k = 2
	}
	for m := 0; m < k; m++ {
		i, j := r.Intn(n), r.Intn(n)
		if i != j {
			s.sol[i], s.sol[j] = s.sol[j], s.sol[i]
		}
	}
	s.initState()
	for i := range s.tabu {
		s.tabu[i] = 0
	}
	s.tabuUsed = 0
	st.Resets++
}

// Solve is a convenience one-shot: build a solver with default
// parameters and run it with the given seed.
func Solve(p csp.Problem, seed uint64) (Result, error) {
	s, err := New(p, Params{})
	if err != nil {
		return Result{}, err
	}
	return s.Run(xrand.New(seed)), nil
}
