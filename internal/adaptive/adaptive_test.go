package adaptive

import (
	"context"
	"errors"
	"testing"
	"time"

	"lasvegas/internal/csp"
	"lasvegas/internal/problems"
	"lasvegas/internal/xrand"
)

func solveKind(t *testing.T, kind problems.Kind, size int, seed uint64) Result {
	t.Helper()
	p, err := problems.New(kind, size)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, Params{})
	if err != nil {
		t.Fatal(err)
	}
	res := s.RunContext(context.Background(), xrand.New(seed))
	if !res.Solved {
		t.Fatalf("%s size %d not solved: %+v", kind, size, res.Stats)
	}
	if !csp.Validate(p, res.Solution) {
		t.Fatalf("%s produced a non-permutation", kind)
	}
	if c := p.Cost(res.Solution); c != 0 {
		t.Fatalf("%s solution has cost %d", kind, c)
	}
	return res
}

func TestSolvesAllInterval(t *testing.T) {
	res := solveKind(t, problems.AllInterval, 12, 1)
	if res.Stats.Iterations < 1 {
		t.Error("no iterations recorded")
	}
}

func TestSolvesMagicSquare(t *testing.T) {
	solveKind(t, problems.MagicSquare, 5, 2)
}

func TestSolvesCostas(t *testing.T) {
	solveKind(t, problems.Costas, 9, 3)
}

func TestSolvesQueens(t *testing.T) {
	solveKind(t, problems.Queens, 50, 4)
}

func TestRuntimeIsRandomVariable(t *testing.T) {
	// Las Vegas property: different seeds give different runtimes (the
	// paper's entire premise). 20 runs must not all take the same
	// number of iterations.
	p, _ := problems.New(problems.Queens, 20)
	iters := map[int64]bool{}
	for seed := uint64(0); seed < 20; seed++ {
		s, _ := New(p, Params{})
		res := s.Run(xrand.New(seed))
		if !res.Solved {
			t.Fatalf("seed %d unsolved", seed)
		}
		iters[res.Stats.Iterations] = true
	}
	if len(iters) < 5 {
		t.Errorf("iteration counts suspiciously concentrated: %v", iters)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	p1, _ := problems.New(problems.AllInterval, 12)
	p2, _ := problems.New(problems.AllInterval, 12)
	s1, _ := New(p1, Params{})
	s2, _ := New(p2, Params{})
	r1 := s1.Run(xrand.New(99))
	r2 := s2.Run(xrand.New(99))
	if r1.Stats.Iterations != r2.Stats.Iterations {
		t.Errorf("same seed, different runtimes: %d vs %d", r1.Stats.Iterations, r2.Stats.Iterations)
	}
	for i := range r1.Solution {
		if r1.Solution[i] != r2.Solution[i] {
			t.Fatal("same seed, different solutions")
		}
	}
}

func TestIterationBudget(t *testing.T) {
	// Hard instance with a tiny budget must stop with an error.
	p, _ := problems.New(problems.Costas, 14)
	s, err := New(p, Params{MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(xrand.New(5))
	if res.Solved {
		t.Skip("solved within 50 iterations — exceptionally lucky seed")
	}
	if res.Err == nil {
		t.Error("budget exhaustion must set Err")
	}
	if res.Stats.Iterations > 50 {
		t.Errorf("ran %d iterations past the budget", res.Stats.Iterations)
	}
	if res.Solution == nil || res.Cost <= 0 {
		t.Error("budget-exhausted result should carry the best configuration")
	}
}

func TestContextCancellation(t *testing.T) {
	p, _ := problems.New(problems.Costas, 16)
	s, _ := New(p, Params{CheckEvery: 64})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Result, 1)
	go func() { done <- s.RunContext(ctx, xrand.New(1)) }()
	cancel()
	select {
	case res := <-done:
		if res.Solved {
			t.Skip("solved before cancellation took effect")
		}
		if !errors.Is(res.Err, ErrInterrupted) {
			t.Errorf("want ErrInterrupted, got %v", res.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation not honoured within 10s")
	}
}

func TestRestartsTriggered(t *testing.T) {
	p, _ := problems.New(problems.Queens, 16)
	s, _ := New(p, Params{MaxIterationsPerRestart: 10})
	res := s.Run(xrand.New(3))
	if !res.Solved {
		t.Fatal("unsolved")
	}
	if res.Stats.Iterations > 10 && res.Stats.Restarts == 0 {
		t.Error("long run with a 10-iteration restart cap recorded no restarts")
	}
}

func TestParamsDefaulting(t *testing.T) {
	p, _ := problems.New(problems.Queens, 10)
	s, err := New(p, Params{})
	if err != nil {
		t.Fatal(err)
	}
	got := s.Params()
	if got.TabuTenure <= 0 || got.ResetLimit <= 0 || got.ResetFraction <= 0 || got.CheckEvery <= 0 {
		t.Errorf("defaults not applied: %+v", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Params{}); err == nil {
		t.Error("nil problem accepted")
	}
}

func TestSolveConvenience(t *testing.T) {
	p, _ := problems.New(problems.Queens, 12)
	res, err := Solve(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Error("convenience Solve failed on 12-queens")
	}
}

func TestStatsAccounting(t *testing.T) {
	p, _ := problems.New(problems.AllInterval, 14)
	s, _ := New(p, Params{})
	res := s.Run(xrand.New(8))
	if !res.Solved {
		t.Fatal("unsolved")
	}
	if res.Stats.Swaps > res.Stats.Iterations {
		t.Errorf("more swaps (%d) than iterations (%d)", res.Stats.Swaps, res.Stats.Iterations)
	}
	if res.Stats.Iterations <= 0 {
		t.Error("no iterations counted")
	}
}

// TestNonIncrementalFallback runs the solver against a problem that
// hides its incremental interface, exercising the probing paths.
type plainQueens struct{ inner csp.Problem }

func (p plainQueens) Size() int          { return p.inner.Size() }
func (p plainQueens) Cost(sol []int) int { return p.inner.Cost(sol) }
func (p plainQueens) Name() string       { return "plain-" + p.inner.Name() }

func TestNonIncrementalFallback(t *testing.T) {
	inner, _ := problems.New(problems.Queens, 8)
	s, err := New(plainQueens{inner}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(xrand.New(77))
	if !res.Solved {
		t.Fatal("fallback solver failed on 8-queens")
	}
	if c := inner.Cost(res.Solution); c != 0 {
		t.Fatalf("fallback solution has cost %d", c)
	}
}
