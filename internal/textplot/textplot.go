// Package textplot renders the paper's figures as terminal plots:
// density histograms with fitted-PDF overlays (Figures 8, 10, 12),
// families of density curves (Figures 1, 2, 4) and speed-up line
// charts (Figures 3, 5, 6, 7, 9, 11, 13, 14). Every chart is plain
// text so experiments remain reproducible over SSH and in CI logs;
// the experiment harness pairs each plot with CSV series for real
// plotting tools.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte
}

// defaultMarkers cycles when a series has no explicit marker.
var defaultMarkers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '~'}

// Chart renders the series on a w×h character grid with axis labels.
// X and Y ranges are computed from the data; NaN/Inf points are
// skipped. It returns a multi-line string ending in a legend.
func Chart(title string, series []Series, w, h int) string {
	if w < 20 {
		w = 20
	}
	if h < 5 {
		h = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if bad(x) || bad(y) {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX > maxX || minY > maxY {
		return title + "\n(no finite data)\n"
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if bad(x) || bad(y) {
				continue
			}
			cx := int((x - minX) / (maxX - minX) * float64(w-1))
			cy := h - 1 - int((y-minY)/(maxY-minY)*float64(h-1))
			grid[cy][cx] = marker
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for r, row := range grid {
		var label string
		switch r {
		case 0:
			label = fmt.Sprintf("%10.4g", maxY)
		case h - 1:
			label = fmt.Sprintf("%10.4g", minY)
		default:
			label = strings.Repeat(" ", 10)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, row)
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", 10), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", 10), w/2, minX, w-w/2, maxX)
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", 10), marker, s.Name)
	}
	return b.String()
}

// HistogramWithOverlay renders a horizontal-bar density histogram
// with an optional fitted-density overlay (the paper's Figures 8, 10,
// 12: observed iteration histogram in "blue", fitted law in "red" —
// here bars and a '·' marker column).
func HistogramWithOverlay(title string, centers, densities []float64, overlay func(float64) float64, width int) string {
	if width < 20 {
		width = 40
	}
	maxD := 0.0
	for i, d := range densities {
		maxD = math.Max(maxD, d)
		if overlay != nil {
			maxD = math.Max(maxD, overlay(centers[i]))
		}
	}
	if maxD <= 0 {
		return title + "\n(empty histogram)\n"
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, c := range centers {
		bar := int(densities[i] / maxD * float64(width))
		line := []byte(strings.Repeat("█", bar) + strings.Repeat(" ", width-bar))
		if overlay != nil {
			pos := int(overlay(c) / maxD * float64(width))
			if pos >= width {
				pos = width - 1
			}
			if pos >= 0 {
				// overlay marker, visible on top of bars
				line = append(line[:pos], append([]byte("·"), line[pos+1:]...)...)
			}
		}
		fmt.Fprintf(&b, "%12.5g |%s\n", c, line)
	}
	fmt.Fprintf(&b, "%12s  (bars: observed density%s)\n", "",
		map[bool]string{true: ", ·: fitted density", false: ""}[overlay != nil])
	return b.String()
}

// CSV renders the series as a CSV block: x, then one column per
// series (aligned by index; series must share X grids or be emitted
// separately).
func CSV(series []Series) string {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i])
		}
	}
	return b.String()
}

func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
