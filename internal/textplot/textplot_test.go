package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestChartBasic(t *testing.T) {
	s := []Series{
		{Name: "linear", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Name: "flat", X: []float64{0, 1, 2, 3}, Y: []float64{1, 1, 1, 1}},
	}
	out := Chart("title", s, 40, 10)
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "linear") || !strings.Contains(out, "flat") {
		t.Error("missing legend entries")
	}
	if !strings.Contains(out, "*") {
		t.Error("missing first-series marker")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestChartSkipsNonFinite(t *testing.T) {
	s := []Series{{
		Name: "spiky",
		X:    []float64{0, 1, 2},
		Y:    []float64{1, math.Inf(1), math.NaN()},
	}}
	out := Chart("x", s, 30, 8)
	if !strings.Contains(out, "spiky") {
		t.Error("series with partial bad data should still render")
	}
}

func TestChartNoData(t *testing.T) {
	out := Chart("empty", []Series{{Name: "none"}}, 30, 8)
	if !strings.Contains(out, "no finite data") {
		t.Errorf("empty chart: %q", out)
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// Single point: must not divide by zero.
	out := Chart("pt", []Series{{Name: "p", X: []float64{5}, Y: []float64{7}}}, 30, 8)
	if strings.Contains(out, "NaN") {
		t.Error("degenerate chart produced NaN")
	}
}

func TestChartCustomMarkers(t *testing.T) {
	s := []Series{{Name: "m", X: []float64{0, 1}, Y: []float64{0, 1}, Marker: 'Q'}}
	if out := Chart("", s, 30, 8); !strings.Contains(out, "Q") {
		t.Error("custom marker not used")
	}
}

func TestHistogramWithOverlay(t *testing.T) {
	centers := []float64{1, 2, 3}
	densities := []float64{0.1, 0.5, 0.2}
	out := HistogramWithOverlay("h", centers, densities, func(x float64) float64 { return 0.3 }, 30)
	if !strings.Contains(out, "█") {
		t.Error("missing bars")
	}
	if !strings.Contains(out, "·") {
		t.Error("missing overlay markers")
	}
	if !strings.Contains(out, "fitted density") {
		t.Error("missing overlay caption")
	}
}

func TestHistogramWithoutOverlay(t *testing.T) {
	out := HistogramWithOverlay("h", []float64{1}, []float64{0.4}, nil, 30)
	if strings.Contains(out, "fitted density") {
		t.Error("overlay caption without overlay")
	}
}

func TestHistogramEmpty(t *testing.T) {
	out := HistogramWithOverlay("h", nil, nil, nil, 30)
	if !strings.Contains(out, "empty histogram") {
		t.Errorf("got %q", out)
	}
}

func TestCSV(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "b", X: []float64{1}, Y: []float64{5}},
	}
	out := CSV(s)
	want := "series,x,y\na,1,10\na,2,20\nb,1,5\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}
