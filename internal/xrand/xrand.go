// Package xrand provides deterministic, splittable pseudo-random number
// generation for Las Vegas experiments.
//
// Every walker of a multi-walk run and every repetition of a sequential
// campaign receives its own independent stream derived from a single
// user-visible seed, so whole experiments are reproducible bit-for-bit
// regardless of scheduling order. The generator is xoshiro256++ seeded
// through splitmix64, the combination recommended by Blackman & Vigna;
// both are implemented here because the repository is stdlib-only and
// math/rand's global state is unsuitable for concurrent walkers.
package xrand

import "math"

// splitmix64 advances a 64-bit state and returns the next output.
// It is used both to seed xoshiro streams and to derive child seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256++ pseudo-random generator. It is not safe for
// concurrent use; derive one stream per goroutine with Split.
type Rand struct {
	s [4]uint64

	// cached second variate from the polar normal method
	spare     float64
	haveSpare bool
}

// New returns a generator seeded from seed via splitmix64. Distinct
// seeds give statistically independent streams; seed 0 is valid.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro forbids the all-zero state; splitmix64 cannot produce four
	// zero outputs in a row, but guard anyway for future refactors.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split derives the i-th child stream of r's seed without disturbing r.
// Children of distinct indices, and the parent, do not overlap in any
// statistically observable way (they are xoshiro streams with seeds
// drawn from independent splitmix64 positions).
func (r *Rand) Split(i uint64) *Rand {
	// Mix the parent's state with the child index through splitmix64.
	sm := r.s[0] ^ (r.s[1] << 1) ^ (0x632be59bd9b4e019 * (i + 1))
	return New(splitmix64(&sm))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Int63 returns a non-negative 63-bit pseudo-random integer.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection avoids modulo bias.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in the open interval (0, 1),
// suitable for feeding quantile functions that diverge at the ends.
func (r *Rand) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Perm fills a new slice with a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place (Fisher–Yates).
func (r *Rand) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Norm returns a standard normal variate (polar Marsaglia method; the
// spare value is cached, so consecutive calls cost one square root on
// average).
func (r *Rand) Norm() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare, r.haveSpare = v*f, true
		return u * f
	}
}

// Exp returns an exponential variate with rate 1 (mean 1).
func (r *Rand) Exp() float64 { return -math.Log(r.Float64Open()) }
