package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c0 := parent.Split(0)
	c1 := parent.Split(1)
	c0again := parent.Split(0)
	if c0.Uint64() != c0again.Uint64() {
		t.Fatal("Split is not deterministic for equal indices")
	}
	if c0.Uint64() == c1.Uint64() {
		t.Fatal("sibling streams coincide")
	}
}

func TestSplitDoesNotDisturbParent(t *testing.T) {
	a, b := New(9), New(9)
	_ = a.Split(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
}

func TestFloat64OpenPositive(t *testing.T) {
	r := New(4)
	for i := 0; i < 100000; i++ {
		if u := r.Float64Open(); u <= 0 || u >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", u)
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for v, c := range counts {
		if math.Abs(float64(c-want)) > 5*math.Sqrt(float64(want)) {
			t.Errorf("value %d drawn %d times, want ≈%d", v, c, want)
		}
	}
}

func TestIntnPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	for trial := 0; trial < 50; trial++ {
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(8)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("first element %d frequency %d, want ≈%.0f", v, c, want)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(10)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	vari := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %v, want ≈0", mean)
	}
	if math.Abs(vari-1) > 0.02 {
		t.Errorf("normal variance %v, want ≈1", vari)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exp()
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.01 {
		t.Errorf("exponential mean %v, want ≈1", mean)
	}
}

func TestUint64BitBalance(t *testing.T) {
	r := New(12)
	var ones [64]int
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		if math.Abs(float64(c)-n/2) > 5*math.Sqrt(n/4) {
			t.Errorf("bit %d set %d/%d times", b, c, n)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Norm()
	}
	_ = sink
}
