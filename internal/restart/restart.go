// Package restart analyses the other classic way to exploit a Las
// Vegas runtime distribution: cut a run off after a fixed budget and
// start over. The Adaptive Search solver already exposes the knob
// (Params.MaxIterationsPerRestart); this package computes what the
// knob is worth from the same fitted distribution the speed-up
// predictor uses, so multi-walk parallelism and sequential restarts
// can be compared on equal footing:
//
//   - for an exponential runtime (memoryless — the paper's Costas
//     case) restarts are exactly neutral: E[T(c)] = E[Y] for every
//     cutoff;
//   - for a shifted exponential (the paper's ALL-INTERVAL case)
//     restarts strictly hurt — each restart repays the x0 entry cost;
//   - for heavy-tailed laws (e.g. lognormal with large σ) a finite
//     optimal cutoff beats running to completion, sometimes by a lot.
//
// The expected runtime of the fixed-cutoff-c restart strategy is the
// classical Luby–Sinclair–Zuckerman formula
//
//	E[T(c)] = ( c − ∫₀ᶜ F(t) dt ) / F(c),
//
// and the package also provides the Luby universal restart sequence.
package restart

import (
	"errors"
	"fmt"
	"math"

	"lasvegas/internal/dist"
	"lasvegas/internal/optim"
	"lasvegas/internal/quad"
)

// ErrNeverSucceeds reports a cutoff below the distribution's support,
// where a run can never finish and restarting loops forever.
var ErrNeverSucceeds = errors.New("restart: cutoff below the minimal runtime")

// ExpectedRuntime returns E[T(c)], the expected total runtime of
// restarting after every c time units (same unit as the
// distribution, e.g. iterations) until one run succeeds.
func ExpectedRuntime(d dist.Dist, cutoff float64) (float64, error) {
	if d == nil {
		return 0, errors.New("restart: nil distribution")
	}
	if !(cutoff > 0) || math.IsInf(cutoff, 0) || math.IsNaN(cutoff) {
		return 0, fmt.Errorf("restart: cutoff %v", cutoff)
	}
	fc := d.CDF(cutoff)
	if fc <= 0 {
		return 0, ErrNeverSucceeds
	}
	lo, _ := d.Support()
	if math.IsInf(lo, -1) || lo < 0 {
		lo = 0
	}
	if cutoff <= lo {
		return 0, ErrNeverSucceeds
	}
	// ∫₀ᶜ F = ∫_{lo}^{c} F (F is zero below the support).
	integral, err := quad.TanhSinh(d.CDF, lo, cutoff, 1e-10)
	if err != nil {
		return 0, fmt.Errorf("restart: integrating CDF: %w", err)
	}
	return (cutoff - integral) / fc, nil
}

// Optimum is the result of a cutoff search.
type Optimum struct {
	Cutoff   float64 // argmin cutoff (may be +Inf: "never restart")
	Expected float64 // E[T] at the optimum
	Gain     float64 // E[Y] / Expected; ≤ 1+ε means restarts don't help
}

// OptimalCutoff minimizes E[T(c)] over c by golden-section search on
// a log-spaced cutoff axis spanning the distribution's quantile range
// [q(1e-4), q(1-1e-6)]. When no interior cutoff beats running to
// completion, it reports Cutoff = +Inf with Expected = E[Y].
func OptimalCutoff(d dist.Dist) (Optimum, error) {
	if d == nil {
		return Optimum{}, errors.New("restart: nil distribution")
	}
	meanY := d.Mean()
	if math.IsNaN(meanY) {
		return Optimum{}, errors.New("restart: distribution has no mean")
	}
	loQ := d.Quantile(1e-4)
	hiQ := d.Quantile(1 - 1e-6)
	if !(loQ > 0) {
		loQ = math.Max(1e-9, d.Quantile(0.01))
	}
	if !(hiQ > loQ) || math.IsInf(hiQ, 1) {
		hiQ = math.Max(loQ*1e6, meanY*100)
	}
	obj := func(logc float64) float64 {
		e, err := ExpectedRuntime(d, math.Exp(logc))
		if err != nil {
			return math.Inf(1)
		}
		return e
	}
	logc, err := optim.BrentMin(obj, math.Log(loQ), math.Log(hiQ), 1e-8)
	if err != nil {
		return Optimum{}, fmt.Errorf("restart: cutoff search: %w", err)
	}
	c := math.Exp(logc)
	e, err := ExpectedRuntime(d, c)
	if err != nil {
		return Optimum{}, err
	}
	// An infinite mean (e.g. Lévy) makes any finite cutoff a win;
	// otherwise compare against running to completion.
	if !math.IsInf(meanY, 1) && e >= meanY*(1-1e-9) {
		return Optimum{Cutoff: math.Inf(1), Expected: meanY, Gain: 1}, nil
	}
	return Optimum{Cutoff: c, Expected: e, Gain: meanY / e}, nil
}

// Luby returns the first n terms of the Luby universal restart
// sequence 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,… which is within a log
// factor of the optimal fixed-cutoff strategy without knowing the
// distribution.
func Luby(n int) []int64 {
	if n <= 0 {
		return nil
	}
	out := make([]int64, n)
	for i := 1; i <= n; i++ {
		out[i-1] = lubyTerm(i)
	}
	return out
}

// LubyTerm returns the i-th term (1-based) of the Luby sequence
// without materializing a prefix — the per-attempt cutoff source for
// the policy replay simulator, where attempt indices are unbounded.
func LubyTerm(i int) int64 {
	if i < 1 {
		return 1
	}
	return lubyTerm(i)
}

// lubyTerm computes the i-th term (1-based) of the Luby sequence.
func lubyTerm(i int) int64 {
	// If i = 2^k - 1, the term is 2^{k-1}; otherwise recurse on
	// i - (2^{k-1} - 1) with k the largest power with 2^{k-1} ≤ i.
	for k := uint(1); ; k++ {
		if int64(i) == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if int64(i) < (1<<k)-1 {
			return lubyTerm(i - (1 << (k - 1)) + 1)
		}
	}
}

// CompareMultiWalk contrasts the two uses of the same fitted
// distribution: the expected speed-up of restarts at the optimal
// cutoff versus the multi-walk speed-up G(n) on n cores.
type Comparison struct {
	RestartGain   float64 // sequential gain from optimal restarts
	MultiWalkGain float64 // G(n) from the order-statistic model
	Cores         int
}

// Compare computes both gains; multiWalkG must be the predictor's
// G(n) for the same distribution.
func Compare(d dist.Dist, multiWalkG float64, cores int) (Comparison, error) {
	opt, err := OptimalCutoff(d)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{RestartGain: opt.Gain, MultiWalkGain: multiWalkG, Cores: cores}, nil
}
