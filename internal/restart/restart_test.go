package restart

import (
	"errors"
	"math"
	"testing"

	"lasvegas/internal/dist"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol*(1+math.Abs(want)) {
		t.Fatalf("%s: got %.10g, want %.10g", msg, got, want)
	}
}

// TestExponentialMemoryless: for the unshifted exponential, restarts
// are exactly neutral — E[T(c)] = 1/λ for every cutoff.
func TestExponentialMemoryless(t *testing.T) {
	d, _ := dist.NewExponential(0.001)
	for _, c := range []float64{50, 500, 5000, 50000} {
		e, err := ExpectedRuntime(d, c)
		if err != nil {
			t.Fatalf("c=%v: %v", c, err)
		}
		approx(t, e, 1000, 1e-6, "memoryless expected runtime")
	}
}

// TestShiftedExponentialRestartsHurt: each restart repays the x0
// entry cost, so E[T(c)] > E[Y] for any finite cutoff and the optimal
// policy is to never restart.
func TestShiftedExponentialRestartsHurt(t *testing.T) {
	d, _ := dist.NewShiftedExponential(100, 1e-3)
	meanY := d.Mean() // 1100
	for _, c := range []float64{150, 400, 2000, 20000} {
		e, err := ExpectedRuntime(d, c)
		if err != nil {
			t.Fatalf("c=%v: %v", c, err)
		}
		if e < meanY*(1-1e-9) {
			t.Errorf("cutoff %v: E[T]=%v beats E[Y]=%v for a shifted exponential", c, e, meanY)
		}
	}
	opt, err := OptimalCutoff(d)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(opt.Cutoff, 1) {
		t.Errorf("optimal cutoff %v, want +Inf (never restart)", opt.Cutoff)
	}
	approx(t, opt.Expected, meanY, 1e-6, "never-restart expectation")
	approx(t, opt.Gain, 1, 1e-9, "no gain")
}

// TestHeavyTailRestartsHelp: a high-σ lognormal has a heavy tail;
// a finite cutoff must beat running to completion.
func TestHeavyTailRestartsHelp(t *testing.T) {
	d, _ := dist.NewLogNormal(0, 5, 2.5)
	opt, err := OptimalCutoff(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(opt.Cutoff, 1) {
		t.Fatal("no finite optimal cutoff found for a heavy-tailed law")
	}
	if opt.Gain < 1.5 {
		t.Errorf("restart gain %v, expected substantial (>1.5) for σ=2.5 lognormal", opt.Gain)
	}
	// The optimum must actually be a minimum: nearby cutoffs are worse.
	for _, factor := range []float64{0.25, 4} {
		e, err := ExpectedRuntime(d, opt.Cutoff*factor)
		if err != nil {
			t.Fatal(err)
		}
		if e < opt.Expected*(1-1e-6) {
			t.Errorf("cutoff %v×%v beats the reported optimum", opt.Cutoff, factor)
		}
	}
}

// TestLevyFiniteCutoff: with an infinite mean, any sensible cutoff
// gives finite expected runtime — the textbook argument for restarts.
func TestLevyFiniteCutoff(t *testing.T) {
	d, _ := dist.NewLevy(0, 100)
	e, err := ExpectedRuntime(d, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(e, 1) || e <= 0 {
		t.Errorf("E[T(1000)] = %v for Lévy", e)
	}
}

func TestExpectedRuntimeMatchesMonteCarloFormula(t *testing.T) {
	// Cross-check the integral formula against the equivalent
	// geometric-trials decomposition E[T] = c·(1-F)/F + E[Y | Y ≤ c]
	// evaluated by direct numerical integration for a Weibull.
	d, _ := dist.NewWeibull(0.7, 100)
	c := 150.0
	got, err := ExpectedRuntime(d, c)
	if err != nil {
		t.Fatal(err)
	}
	// E[Y | Y ≤ c]·F(c) = ∫₀ᶜ t f(t) dt = c·F(c) − ∫₀ᶜ F (by parts)
	fc := d.CDF(c)
	want := c*(1-fc)/fc + (c*fc-integralCDF(t, d, c))/fc
	approx(t, got, want, 1e-6, "two formulations agree")
}

func integralCDF(t *testing.T, d dist.Dist, c float64) float64 {
	t.Helper()
	const steps = 200000
	h := c / steps
	sum := 0.0
	for i := 0; i < steps; i++ {
		sum += d.CDF((float64(i) + 0.5) * h)
	}
	return sum * h
}

func TestExpectedRuntimeValidation(t *testing.T) {
	d, _ := dist.NewExponential(1)
	if _, err := ExpectedRuntime(nil, 1); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, err := ExpectedRuntime(d, 0); err == nil {
		t.Error("zero cutoff accepted")
	}
	if _, err := ExpectedRuntime(d, math.Inf(1)); err == nil {
		t.Error("infinite cutoff accepted")
	}
	sh, _ := dist.NewShiftedExponential(100, 1)
	if _, err := ExpectedRuntime(sh, 50); !errors.Is(err, ErrNeverSucceeds) {
		t.Errorf("cutoff below support: %v", err)
	}
}

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1}
	got := Luby(len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Luby[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
	if Luby(0) != nil {
		t.Error("Luby(0) should be nil")
	}
}

func TestCompare(t *testing.T) {
	d, _ := dist.NewExponential(0.01)
	cmp, err := Compare(d, 16.0, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Memoryless: restart gain 1; multi-walk gain as provided.
	approx(t, cmp.RestartGain, 1, 1e-6, "exponential restart gain")
	if cmp.MultiWalkGain != 16 || cmp.Cores != 16 {
		t.Errorf("comparison fields: %+v", cmp)
	}
}
