package store

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"lasvegas"
)

// fixturePath points at the repository's committed fixed-seed
// Costas-13 campaign (the CI smoke fixture).
var fixturePath = filepath.Join("..", "..", "testdata", "campaign_costas13.json")

func testCampaign(t *testing.T) *lasvegas.Campaign {
	t.Helper()
	c, err := lasvegas.LoadCampaign(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// testFit is the fit function the serve layer installs: FitAll plus
// best-accepted selection.
func testFit(pred *lasvegas.Predictor) FitFunc {
	return func(c *lasvegas.Campaign) ([]lasvegas.Candidate, *lasvegas.Model, error) {
		cands, err := pred.FitAll(c)
		if err != nil {
			return nil, nil, err
		}
		for _, cand := range cands {
			if cand.Err == nil && cand.Model != nil && cand.Model.Accepted() {
				return cands, cand.Model, nil
			}
		}
		return nil, nil, lasvegas.ErrNoAcceptableFit
	}
}

// TestSingleFlightFit hammers one entry from many goroutines and
// requires every caller to receive the identical *Model — the proof
// that the fit ran once. The race detector (CI's race job covers this
// package) guards the locking.
func TestSingleFlightFit(t *testing.T) {
	s := NewMemory(16)
	gate := NewGate(2)
	fit := testFit(lasvegas.New())
	e, err := s.Add(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	const callers = 32
	models := make([]*lasvegas.Model, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, m, err := e.Fit(context.Background(), gate, fit)
			if err != nil {
				t.Errorf("fit %d: %v", i, err)
				return
			}
			models[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if models[i] != models[0] {
			t.Fatalf("caller %d received a different model instance — fit ran more than once", i)
		}
	}
}

// TestFitErrorCached: a deterministic fit failure (censored campaign
// under a complete-sample-only predictor) is cached like a success,
// so retries don't re-run the estimators.
func TestFitErrorCached(t *testing.T) {
	s := NewMemory(16)
	gate := NewGate(1)
	fit := testFit(lasvegas.New())
	c := &lasvegas.Campaign{
		Problem:    "x",
		Runs:       3,
		Iterations: []float64{1, 2, 3},
		Censored:   []int{1},
		Budget:     2,
	}
	e, err := s.Add(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		_, _, err := e.Fit(context.Background(), gate, fit)
		if !errors.Is(err, lasvegas.ErrCensored) {
			t.Fatalf("fit %d: %v, want ErrCensored", i, err)
		}
	}
	if !e.fit.done {
		t.Error("fit error was not cached")
	}
}

// TestCancelledWaiterDoesNotPoison: a caller whose context dies while
// waiting for a gate slot must not mark the entry failed for everyone
// else.
func TestCancelledWaiterDoesNotPoison(t *testing.T) {
	s := NewMemory(16)
	gate := NewGate(1)
	fit := testFit(lasvegas.New())
	e, err := s.Add(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // occupy the only slot
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.Fit(ctx, gate, fit); !errors.Is(err, context.Canceled) {
		t.Fatalf("fit with dead ctx: %v, want context.Canceled", err)
	}
	<-gate // free the slot
	if _, m, err := e.Fit(context.Background(), gate, fit); err != nil || m == nil {
		t.Fatalf("fit after cancelled waiter: %v (model %v), want success", err, m)
	}
}

func mkCampaign(seed uint64) *lasvegas.Campaign {
	return &lasvegas.Campaign{Problem: "x", Runs: 1, Seed: seed, Iterations: []float64{float64(seed)}}
}

// TestEviction: the memory store caps entries FIFO and keeps its byte
// accounting consistent.
func TestEviction(t *testing.T) {
	s := NewMemory(2)
	first, err := s.Add(mkCampaign(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(mkCampaign(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(mkCampaign(3)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("store holds %d entries, want 2", s.Len())
	}
	if _, err := s.Get(first.ID); !errors.Is(err, ErrUnknownCampaign) {
		t.Errorf("oldest entry still present after eviction: %v", err)
	}
	st := s.Stats()
	var want int64
	for _, seed := range []uint64{2, 3} {
		data, err := mkCampaign(seed).MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		want += int64(len(data))
	}
	if st.Campaigns != 2 || st.Bytes != want {
		t.Errorf("stats %+v, want 2 campaigns and %d bytes", st, want)
	}
}

// TestCampaignIDDeterminism: ids derive from content, not identity.
func TestCampaignIDDeterminism(t *testing.T) {
	a, err := CampaignID(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CampaignID(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("ids differ for identical content: %q vs %q", a, b)
	}
	other := testCampaign(t)
	other.Iterations[0]++
	c, err := CampaignID(other)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("id unchanged after mutating an observation")
	}
}

// TestEncodeAddEncoded: the precomputed-bytes fast path is the same
// store operation as Add — same id, same dedup.
func TestEncodeAddEncoded(t *testing.T) {
	s := NewMemory(16)
	c := testCampaign(t)
	id, data, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.AddEncoded(id, data, c)
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != id {
		t.Fatalf("AddEncoded entry id %q, want %q", e.ID, id)
	}
	again, err := s.Add(testCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	if again != e {
		t.Error("Add after AddEncoded created a second entry for the same content")
	}
	if s.Len() != 1 {
		t.Errorf("store holds %d entries, want 1", s.Len())
	}
}

// TestOwnerPartition: every id lands on exactly one replica, the
// replica agrees with its advertised shard range, and the ranges tile
// the whole hash space.
func TestOwnerPartition(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 16} {
		var prevHi uint64
		for i := 0; i < n; i++ {
			lo, hi := ShardRange(i, n)
			if i == 0 && lo != 0 {
				t.Errorf("n=%d: first range starts at %x, want 0", n, lo)
			}
			if i > 0 && lo != prevHi+1 {
				t.Errorf("n=%d: range %d starts at %x, want %x (contiguous)", n, i, lo, prevHi+1)
			}
			if i == n-1 && hi != ^uint64(0) {
				t.Errorf("n=%d: last range ends at %x, want the top of the space", n, hi)
			}
			prevHi = hi
		}
		for seed := uint64(1); seed <= 64; seed++ {
			id, err := CampaignID(mkCampaign(seed))
			if err != nil {
				t.Fatal(err)
			}
			owner := Owner(id, n)
			if owner < 0 || owner >= n {
				t.Fatalf("Owner(%q, %d) = %d outside [0, %d)", id, n, owner, n)
			}
			if again := Owner(id, n); again != owner {
				t.Fatalf("Owner not deterministic: %d then %d", owner, again)
			}
		}
	}
}
