package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"lasvegas"
)

// snapshotLog is the append-only log file inside a Disk store's data
// directory.
const snapshotLog = "campaigns.log"

// Disk is the durable Store: a Memory index fronted by an append-only
// snapshot log. Every accepted campaign's canonical JSON is written
// as one log line and fsync'd before the upload is acknowledged;
// Open replays the log line by line through the same Add path, so a
// restarted daemon converges on exactly the state the old one held —
// same ids (they are content hashes of the persisted bytes), same
// FIFO-eviction outcome (replay preserves insertion order), and,
// fits being deterministic, byte-identical fit and predict responses.
//
// The log is never rewritten in place. Records evicted from the
// resident index stay in the log (and are re-evicted identically on
// replay); a campaign re-uploaded after eviction appends a second
// record. Stats.Bytes therefore reports the log size on disk, the
// number an operator watches.
//
// A torn final record — a crash between write and fsync, leaving a
// line without its terminating newline — is provably unacknowledged,
// so Open drops and truncates it. Any *complete* record that fails to
// parse, tail included, is a hard error: it may have been
// acknowledged, and silently skipping records would also change
// eviction order and break the replay-converges guarantee.
type Disk struct {
	mem *Memory

	mu       sync.Mutex // serializes log appends
	f        *os.File
	logBytes int64
	broken   error // set when a failed append could not be rolled back
	replayed int
	replayIn time.Duration
}

// Open opens (creating if needed) the durable store rooted at dir,
// replaying any existing snapshot log. maxCampaigns bounds the
// resident index exactly like NewMemory.
func Open(dir string, maxCampaigns int) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: data dir: %w", err)
	}
	d := &Disk{mem: NewMemory(maxCampaigns)}
	path := filepath.Join(dir, snapshotLog)
	start := time.Now()
	good, err := d.replay(path)
	if err != nil {
		return nil, err
	}
	d.replayIn = time.Since(start)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot log: %w", err)
	}
	// Drop a torn final record (crash between write and fsync) so new
	// appends don't glue onto its tail.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncating torn record: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: snapshot log: %w", err)
	}
	d.f = f
	d.logBytes = good
	return d, nil
}

// replay loads every complete record of the snapshot log into the
// resident index, returning the byte offset after the last good
// record. A missing log is a fresh store.
func (d *Disk) replay(path string) (good int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: snapshot log: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A non-empty remainder without its newline is the torn
			// final record — dropped, not replayed.
			return good, nil
		}
		if err != nil {
			return 0, fmt.Errorf("store: replaying snapshot log: %w", err)
		}
		rec := bytes.TrimSuffix(line, []byte("\n"))
		if len(bytes.TrimSpace(rec)) == 0 {
			good += int64(len(line))
			continue
		}
		c := &lasvegas.Campaign{}
		if err := json.Unmarshal(rec, c); err != nil {
			// A corrupt record that *ends in a newline* was fully
			// written — under write-then-fsync-then-ack it may have
			// been acknowledged, so silently truncating it would break
			// the durability contract. Refuse to boot and let the
			// operator decide; only a record missing its final newline
			// (the EOF path above) is a provably unacknowledged torn
			// tail.
			return 0, fmt.Errorf("store: snapshot log record at offset %d: %w", good, err)
		}
		// The id is the hash of the persisted bytes — the same bytes
		// Add hashed when it first accepted the campaign.
		d.mem.addBytes(idOfBytes(rec), c, int64(len(rec)))
		d.replayed++
		good += int64(len(line))
	}
}

// Add implements Store: the campaign's canonical bytes are appended
// to the snapshot log and fsync'd before the entry is published, so
// an acknowledged upload survives any subsequent crash. Re-uploads of
// a resident campaign are deduplicated without touching the log.
func (d *Disk) Add(c *lasvegas.Campaign) (*Entry, error) {
	data, err := c.MarshalJSON()
	if err != nil {
		return nil, err
	}
	return d.AddEncoded(idOfBytes(data), data, c)
}

// AddEncoded is Add for a caller that already holds the campaign's
// content id and canonical bytes (the serve layer computes both for
// replica routing), sparing a second MarshalJSON on the upload path.
// id and data must come from Encode.
func (d *Disk) AddEncoded(id string, data []byte, c *lasvegas.Campaign) (*Entry, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.broken != nil {
		return nil, d.broken
	}
	if e, err := d.mem.Get(id); err == nil {
		return e, nil
	}
	rec := append(data, '\n')
	if _, err := d.f.Write(rec); err != nil {
		d.rewind()
		return nil, fmt.Errorf("store: appending campaign: %w", err)
	}
	if err := d.f.Sync(); err != nil {
		// The bytes may or may not be durable — either way the upload
		// is NACKed, so the record must not survive to be resurrected
		// (and served as accepted) by the next replay.
		d.rewind()
		return nil, fmt.Errorf("store: fsync: %w", err)
	}
	d.logBytes += int64(len(rec))
	e, _ := d.mem.addBytes(id, c, int64(len(data)))
	return e, nil
}

// rewind rolls the log back to the last acknowledged record after a
// failed append. Without it the partial bytes would fuse with the
// next successful record into mid-log corruption — the one thing
// replay treats as unrecoverable. If the rollback itself fails the
// store refuses further appends rather than corrupting the log.
func (d *Disk) rewind() {
	if err := d.f.Truncate(d.logBytes); err != nil {
		d.broken = fmt.Errorf("store: snapshot log unrecoverable after failed append (truncate: %w); restart to replay the acknowledged prefix", err)
		return
	}
	if _, err := d.f.Seek(d.logBytes, io.SeekStart); err != nil {
		d.broken = fmt.Errorf("store: snapshot log unrecoverable after failed append (seek: %w); restart to replay the acknowledged prefix", err)
	}
}

// Get implements Store.
func (d *Disk) Get(id string) (*Entry, error) { return d.mem.Get(id) }

// IDs implements Store.
func (d *Disk) IDs() []string { return d.mem.IDs() }

// Len implements Store.
func (d *Disk) Len() int { return d.mem.Len() }

// Stats implements Store.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		Campaigns:      d.mem.Len(),
		Bytes:          d.logBytes,
		Replayed:       d.replayed,
		ReplayDuration: d.replayIn,
	}
}

// Close implements Store, closing the snapshot log. Every append was
// already fsync'd when it was acknowledged; the final Sync here only
// covers a clean shutdown's file metadata before the handle goes away.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.f == nil {
		return nil
	}
	serr := d.f.Sync()
	cerr := d.f.Close()
	d.f = nil
	if cerr != nil {
		return cerr
	}
	return serr
}
