package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestOwnersPreferenceList: Owners is Owner plus the next k-1 ranges
// around the ring, clamped and wrap-safe, and every id keeps its
// primary owner as the list head.
func TestOwnersPreferenceList(t *testing.T) {
	const replicas = 5
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("c%032x", i)
		primary := Owner(id, replicas)
		for k := 1; k <= replicas+2; k++ {
			owners := Owners(id, replicas, k)
			wantLen := k
			if wantLen > replicas {
				wantLen = replicas // clamped
			}
			if len(owners) != wantLen {
				t.Fatalf("Owners(%q, %d, %d) has %d entries, want %d", id, replicas, k, len(owners), wantLen)
			}
			if owners[0] != primary {
				t.Fatalf("Owners(%q)[0] = %d, want primary %d", id, owners[0], primary)
			}
			seen := map[int]bool{}
			for j, o := range owners {
				if o != (primary+j)%replicas {
					t.Fatalf("Owners(%q)[%d] = %d, want %d", id, j, o, (primary+j)%replicas)
				}
				if o < 0 || o >= replicas || seen[o] {
					t.Fatalf("Owners(%q) = %v: invalid or duplicate owner", id, owners)
				}
				seen[o] = true
			}
		}
	}
	// Degenerate shapes collapse to the single-owner case.
	for _, owners := range [][]int{Owners("x", 0, 3), Owners("x", 1, 0), Owners("x", 1, 1)} {
		if len(owners) != 1 || owners[0] != 0 {
			t.Errorf("degenerate Owners = %v, want [0]", owners)
		}
	}
}

// TestOwnersCoverEveryReplica: with k ≥ 2 every replica appears in
// some id's preference list as a secondary — the property that lets
// any single replica die without losing a range.
func TestOwnersCoverEveryReplica(t *testing.T) {
	const replicas, k = 3, 2
	secondary := map[int]bool{}
	for i := 0; i < 64; i++ {
		// Realistic content-addressed ids (sequential synthetic strings
		// can cluster in one FNV range; SHA-256-derived ids do not).
		id := idOfBytes([]byte(fmt.Sprintf("campaign payload %d", i)))
		owners := Owners(id, replicas, k)
		for _, o := range owners[1:] {
			secondary[o] = true
		}
	}
	for r := 0; r < replicas; r++ {
		if !secondary[r] {
			t.Errorf("replica %d never appears as a secondary owner", r)
		}
	}
}

func mustEnqueue(t *testing.T, h *Hints, peer int, id string, data string) {
	t.Helper()
	if err := h.Enqueue(peer, id, []byte(data)); err != nil {
		t.Fatalf("Enqueue(%d, %q): %v", peer, id, err)
	}
}

// TestHintsFIFOAndDedup: hints drain per peer in FIFO order, re-hints
// of a queued (peer, id) pair are no-ops, and Ack only removes the
// head it was told about.
func TestHintsFIFOAndDedup(t *testing.T) {
	h := NewHints()
	mustEnqueue(t, h, 1, "a", `{"x":1}`)
	mustEnqueue(t, h, 1, "b", `{"x":2}`)
	mustEnqueue(t, h, 1, "a", `{"x":1}`) // dup: no-op
	mustEnqueue(t, h, 2, "c", `{"x":3}`)
	if h.Depth() != 3 || h.DepthFor(1) != 2 || h.DepthFor(2) != 1 {
		t.Fatalf("depth = %d (peer1 %d, peer2 %d), want 3 (2, 1)", h.Depth(), h.DepthFor(1), h.DepthFor(2))
	}
	if peers := h.Peers(); len(peers) != 2 || peers[0] != 1 || peers[1] != 2 {
		t.Fatalf("Peers() = %v, want [1 2]", peers)
	}
	hint, ok := h.Next(1)
	if !ok || hint.ID != "a" || string(hint.Data) != `{"x":1}` {
		t.Fatalf("Next(1) = %+v, want hint a", hint)
	}
	h.Ack(1, "zzz") // wrong id: ignored
	if h.DepthFor(1) != 2 {
		t.Fatalf("Ack with wrong id removed a hint")
	}
	h.Ack(1, "a")
	if hint, _ = h.Next(1); hint == nil || hint.ID != "b" {
		t.Fatalf("after Ack, Next(1) = %+v, want hint b", hint)
	}
	h.Ack(1, "b")
	h.Ack(2, "c")
	if h.Depth() != 0 {
		t.Fatalf("depth = %d after draining, want 0", h.Depth())
	}
	if _, ok := h.Next(1); ok {
		t.Fatal("Next on a drained queue returned a hint")
	}
}

// TestHintsReplay: a durable journal survives a restart of the
// hinting replica — pending hints (and only pending hints) come back,
// and re-enqueueing a replayed hint still dedups.
func TestHintsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), hintLog)
	h, err := OpenHints(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustEnqueue(t, h, 1, "a", `{"x":1}`)
	mustEnqueue(t, h, 2, "b", `{"x":2}`)
	mustEnqueue(t, h, 1, "c", `{"x":3}`)
	h.Ack(1, "a") // delivered before the crash
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	h2, err := OpenHints(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	// The journal never tracks delivery durably: the acked hint may be
	// replayed (redelivery is idempotent), but every *pending* hint
	// must be.
	if h2.DepthFor(2) != 1 || h2.DepthFor(1) < 1 {
		t.Fatalf("replayed depths peer1=%d peer2=%d, want ≥1 and 1", h2.DepthFor(1), h2.DepthFor(2))
	}
	if hint, ok := h2.Next(2); !ok || hint.ID != "b" || string(hint.Data) != `{"x":2}` {
		t.Fatalf("replayed Next(2) = %+v, want hint b", hint)
	}
	// Replay-idempotence: re-hinting a replayed pair is still a no-op.
	before := h2.Depth()
	mustEnqueue(t, h2, 2, "b", `{"x":2}`)
	if h2.Depth() != before {
		t.Fatalf("re-enqueue after replay grew the queue: %d -> %d", before, h2.Depth())
	}
}

// TestHintsTruncateOnDrain: once every queue empties the log file is
// reset, so the journal is bounded by the backlog, not the history.
func TestHintsTruncateOnDrain(t *testing.T) {
	path := filepath.Join(t.TempDir(), hintLog)
	h, err := OpenHints(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	mustEnqueue(t, h, 1, "a", `{"x":1}`)
	mustEnqueue(t, h, 1, "b", `{"x":2}`)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("hint log empty with two pending hints")
	}
	h.Ack(1, "a")
	h.Ack(1, "b")
	if fi, err = os.Stat(path); err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Errorf("hint log holds %d bytes after a full drain, want 0", fi.Size())
	}
	// And the journal still works after the reset.
	mustEnqueue(t, h, 1, "c", `{"x":3}`)
	if h.Depth() != 1 {
		t.Fatalf("depth after post-drain enqueue = %d, want 1", h.Depth())
	}
}

// TestHintsTornTail: a hint record missing its newline (crash between
// write and fsync) is dropped on replay; a complete but corrupt
// record quarantines the whole log (see TestHintsQuarantine).
func TestHintsTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, hintLog)
	h, err := OpenHints(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustEnqueue(t, h, 1, "a", `{"x":1}`)
	h.Close()

	// Torn tail: append a record without its terminating newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"peer":2,"id":"b","campaign":{`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	h2, err := OpenHints(path, nil)
	if err != nil {
		t.Fatalf("torn tail must be dropped, got %v", err)
	}
	if h2.Depth() != 1 || h2.DepthFor(1) != 1 {
		t.Fatalf("depth after torn-tail replay = %d, want the 1 good hint", h2.Depth())
	}
	h2.Close()

	// A complete corrupt record no longer refuses to open — it
	// quarantines (the replica must boot so anti-entropy can heal it).
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	h3, err := OpenHints(path, nil)
	if err != nil {
		t.Fatalf("corrupt complete record must quarantine, not fail: %v", err)
	}
	if !h3.Quarantined() {
		t.Fatal("Quarantined() = false after opening a corrupt log")
	}
	h3.Close()
}

// TestHintsQuarantine: a corrupt hint log is set aside as
// hints.log.corrupt (bytes intact, for the operator), the journal
// boots empty and stays fully usable — enqueue, drain, truncate —
// and the next clean open is not marked quarantined.
func TestHintsQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, hintLog)
	corrupt := `{"peer":1,"id":"a","campaign":{"x":1}}` + "\n" + "garbage not json\n"
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := OpenHints(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Quarantined() {
		t.Fatal("Quarantined() = false")
	}
	if h.Depth() != 0 {
		t.Fatalf("quarantined journal starts with depth %d, want 0 (even the parseable prefix is set aside whole)", h.Depth())
	}
	kept, err := os.ReadFile(path + ".corrupt")
	if err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if string(kept) != corrupt {
		t.Fatalf("quarantine file bytes changed:\n%q\nwant\n%q", kept, corrupt)
	}

	// The fresh journal is durable again: enqueue survives a reopen.
	mustEnqueue(t, h, 2, "b", `{"y":2}`)
	h.Close()
	h2, err := OpenHints(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Quarantined() {
		t.Fatal("clean reopen still reports quarantined")
	}
	if h2.Depth() != 1 || h2.DepthFor(2) != 1 {
		t.Fatalf("depth after reopen = %d, want 1", h2.Depth())
	}
	h2.Close()
}
