package store

import (
	"fmt"
	"reflect"
	"testing"

	"lasvegas"
)

// TestRangeOwnersOwnedRangesInverse: self holds a copy of range r
// exactly when r lists self as an owner — the two ring walks are
// inverses, which is what lets each replica know both who to compare
// a range with and which ranges it must keep converged.
func TestRangeOwnersOwnedRangesInverse(t *testing.T) {
	for _, replicas := range []int{1, 2, 3, 5} {
		for k := 1; k <= replicas; k++ {
			holds := func(self, r int) bool {
				for _, o := range RangeOwners(r, replicas, k) {
					if o == self {
						return true
					}
				}
				return false
			}
			for self := 0; self < replicas; self++ {
				ranges := OwnedRanges(self, replicas, k)
				if len(ranges) != k {
					t.Fatalf("OwnedRanges(%d, %d, %d) has %d entries, want %d", self, replicas, k, len(ranges), k)
				}
				owned := map[int]bool{}
				for _, r := range ranges {
					owned[r] = true
				}
				for r := 0; r < replicas; r++ {
					if owned[r] != holds(self, r) {
						t.Errorf("n=%d k=%d: OwnedRanges(%d) says owned[%d]=%v but RangeOwners(%d)=%v",
							replicas, k, self, r, owned[r], r, RangeOwners(r, replicas, k))
					}
				}
			}
		}
	}
	// Owners and RangeOwners agree: an id's preference list is exactly
	// the owner list of its primary range.
	for i := 0; i < 50; i++ {
		id := idOfBytes([]byte(fmt.Sprintf("digest payload %d", i)))
		if got, want := Owners(id, 5, 3), RangeOwners(Owner(id, 5), 5, 3); !reflect.DeepEqual(got, want) {
			t.Fatalf("Owners(%q) = %v, RangeOwners(primary) = %v", id, got, want)
		}
	}
}

// TestBuildRangeDigestDeterministic: two stores holding the same
// campaigns — inserted in different orders — produce byte-identical
// digests for every range, every id lands in exactly one range's
// digest, and a store missing an id diverges only on that range.
func TestBuildRangeDigestDeterministic(t *testing.T) {
	const replicas = 3
	campaigns := make([]*lasvegas.Campaign, 12)
	for i := range campaigns {
		campaigns[i] = mkCampaign(uint64(i + 1))
	}
	a, b := NewMemory(64), NewMemory(64)
	for _, c := range campaigns {
		if _, err := a.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	for i := len(campaigns) - 1; i >= 0; i-- {
		if _, err := b.Add(campaigns[i]); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for r := 0; r < replicas; r++ {
		da, err := BuildRangeDigest(a, r, replicas, 0)
		if err != nil {
			t.Fatal(err)
		}
		db, err := BuildRangeDigest(b, r, replicas, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !da.Equal(db) {
			t.Fatalf("range %d: insertion order changed the digest:\n%+v\nvs\n%+v", r, da, db)
		}
		for _, id := range da.IDs {
			if Owner(id, replicas) != r {
				t.Fatalf("range %d digest contains foreign id %s (owner %d)", r, id, Owner(id, replicas))
			}
		}
		total += len(da.IDs)
	}
	if total != len(campaigns) {
		t.Fatalf("digests cover %d ids across ranges, want %d", total, len(campaigns))
	}

	// Drop one id from b and the digests must diverge on exactly its
	// range, with MissingIDs naming it.
	victim, err := CampaignID(campaigns[0])
	if err != nil {
		t.Fatal(err)
	}
	c := NewMemory(64)
	for _, cmp := range campaigns[1:] {
		if _, err := c.Add(cmp); err != nil {
			t.Fatal(err)
		}
	}
	victimRange := Owner(victim, replicas)
	for r := 0; r < replicas; r++ {
		da, _ := BuildRangeDigest(a, r, replicas, 0)
		dc, _ := BuildRangeDigest(c, r, replicas, 0)
		if r != victimRange {
			if !da.Equal(dc) {
				t.Errorf("range %d should be unaffected by dropping %s", r, victim)
			}
			continue
		}
		if da.Equal(dc) {
			t.Fatalf("range %d digest did not notice the missing id", r)
		}
		if missing := da.MissingIDs(dc); len(missing) != 1 || missing[0] != victim {
			t.Fatalf("MissingIDs = %v, want [%s]", missing, victim)
		}
		if extra := dc.MissingIDs(da); len(extra) != 0 {
			t.Fatalf("reverse MissingIDs = %v, want none", extra)
		}
	}
}

// TestBuildRangeDigestSkipsUnmergeable: a censored campaign (no
// runtime sketch exists for it) still appears in the id set but not
// in the pooled sketch, and both replicas apply the same skip rule —
// so mixed corpora still digest identically.
func TestBuildRangeDigestSkipsUnmergeable(t *testing.T) {
	censored := &lasvegas.Campaign{
		Problem: "x", Runs: 2, Budget: 5,
		Iterations: []float64{3, 5},
		Censored:   []int{1},
	}
	id, err := CampaignID(censored)
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemory(8)
	if _, err := st.Add(censored); err != nil {
		t.Fatal(err)
	}
	d, err := BuildRangeDigest(st, Owner(id, 1), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.IDs) != 1 || d.IDs[0] != id {
		t.Fatalf("digest ids = %v, want [%s]", d.IDs, id)
	}
	if len(d.Sketch) != 0 {
		t.Fatalf("censored-only range grew a sketch: %s", d.Sketch)
	}

	// Adding a mergeable campaign pools only the mergeable mass, and
	// the sketch matches a direct RuntimeSketch of that campaign.
	clean := mkCampaign(7)
	if _, err := st.Add(clean); err != nil {
		t.Fatal(err)
	}
	d2, err := BuildRangeDigest(st, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.IDs) != 2 {
		t.Fatalf("digest ids = %v, want both campaigns", d2.IDs)
	}
	want, err := clean.RuntimeSketch(0)
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, err := want.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(d2.Sketch) != string(wantRaw) {
		t.Fatalf("pooled sketch includes unmergeable mass:\n%s\nwant\n%s", d2.Sketch, wantRaw)
	}
}
