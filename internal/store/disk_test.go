package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestDiskReplay: close a durable store, reopen its directory, and
// find the same campaigns under the same ids, with replay counters in
// the stats and no log growth from the dedup of a re-upload.
func TestDiskReplay(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	full := testCampaign(t)
	e1, err := d.Add(full)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(mkCampaign(7)); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Replayed != 0 || st.Campaigns != 2 || st.Bytes <= 0 {
		t.Errorf("fresh store stats %+v, want 2 campaigns, 0 replayed, positive bytes", st)
	}
	bytesBefore := d.Stats().Bytes
	// Dedup: re-adding a resident campaign must not append a record.
	if _, err := d.Add(testCampaign(t)); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Bytes != bytesBefore {
		t.Errorf("log grew to %d bytes on a duplicate upload, want %d", st.Bytes, bytesBefore)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if st.Campaigns != 2 || st.Replayed != 2 || st.Bytes != bytesBefore {
		t.Fatalf("replayed stats %+v, want 2 campaigns, 2 replayed, %d bytes", st, bytesBefore)
	}
	got, err := r.Get(e1.ID)
	if err != nil {
		t.Fatalf("replayed store lost %q: %v", e1.ID, err)
	}
	// The replayed campaign must hash back to the id it was stored
	// under — the content-address round-trip the durability contract
	// rests on.
	id, err := CampaignID(got.Campaign)
	if err != nil {
		t.Fatal(err)
	}
	if id != e1.ID {
		t.Errorf("replayed campaign re-hashes to %q, want %q", id, e1.ID)
	}
	if got.Campaign.Problem != full.Problem || len(got.Campaign.Iterations) != len(full.Iterations) {
		t.Errorf("replayed campaign differs: %q with %d runs", got.Campaign.Problem, len(got.Campaign.Iterations))
	}
}

// TestDiskEvictionConverges: replay applies the same FIFO cap in the
// same order, so a restarted bounded store holds exactly the
// campaigns the old one did.
func TestDiskEvictionConverges(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		e, err := d.Add(mkCampaign(seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, e.ID)
	}
	if d.Len() != 2 {
		t.Fatalf("bounded store holds %d, want 2", d.Len())
	}
	d.Close()

	r, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Get(ids[0]); !errors.Is(err, ErrUnknownCampaign) {
		t.Errorf("evicted campaign resurrected by replay: %v", err)
	}
	for _, id := range ids[1:] {
		if _, err := r.Get(id); err != nil {
			t.Errorf("replayed store lost %q: %v", id, err)
		}
	}
}

// TestDiskTornRecord: a crash can leave a partial final record; Open
// must drop it, truncate it away, and keep accepting appends.
func TestDiskTornRecord(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(mkCampaign(1)); err != nil {
		t.Fatal(err)
	}
	good := d.Stats().Bytes
	d.Close()

	log := filepath.Join(dir, snapshotLog)
	f, err := os.OpenFile(log, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":2,"problem":"torn","iter`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Open(dir, 16)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if st := r.Stats(); st.Replayed != 1 || st.Bytes != good {
		t.Errorf("stats after torn-tail recovery %+v, want 1 replayed and %d bytes", st, good)
	}
	if _, err := r.Add(mkCampaign(2)); err != nil {
		t.Fatal(err)
	}
	r.Close()

	// The truncation must have cut the torn tail out of the file, not
	// just skipped it: a third generation replays both records.
	g, err := Open(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if st := g.Stats(); st.Replayed != 2 {
		t.Errorf("after torn-tail truncation and one append, replayed %d, want 2", st.Replayed)
	}
}

// TestDiskCorruptCompleteTail: a final record that fails to parse but
// carries its terminating newline was fully written — and possibly
// acknowledged — so Open must refuse rather than silently destroy it.
func TestDiskCorruptCompleteTail(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(mkCampaign(1)); err != nil {
		t.Fatal(err)
	}
	d.Close()
	log := filepath.Join(dir, snapshotLog)
	f, err := os.OpenFile(log, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"schema\":2,\"problem\":\"corrupt\",\"iterations\":[oops]}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir, 16); err == nil {
		t.Fatal("Open silently accepted (and would have truncated) a corrupt newline-terminated record")
	}
}

// TestDiskMidLogCorruption: garbage anywhere but the tail is a hard
// error — skipping records would silently change eviction order.
func TestDiskMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, snapshotLog)
	if err := os.WriteFile(log, []byte("not json\n{\"schema\":2,\"problem\":\"x\",\"runs\":1,\"seed\":1,\"iterations\":[1]}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 16); err == nil {
		t.Fatal("Open accepted a corrupt mid-log record")
	}
}
