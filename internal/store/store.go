// Package store is the lvserve daemon's campaign store: the layer
// that turns the paper's retained runtime-distribution corpus
// (Hoos & Stützle argue the RTD sample itself — not any one fit — is
// the asset worth keeping) into something a service can own.
//
// A Store holds campaigns keyed by the content hash of their
// canonical JSON and hands out *Entry values that carry a
// single-flight fit cache, so every campaign is fitted at most once
// per process no matter how many requests race for it. Two
// implementations share the interface:
//
//   - Memory — the process-local cache PR 3 shipped: a FIFO-bounded
//     map, gone on exit.
//   - Disk — Memory plus durability: every accepted campaign's
//     canonical bytes are appended to an fsync'd snapshot log that is
//     replayed on Open, so a restarted daemon serves the same corpus
//     (and, fits being deterministic, byte-identical responses)
//     without any re-upload.
//
// The package also owns the replica-routing arithmetic: Owner maps a
// campaign id onto one of n replicas by partitioning the 64-bit hash
// space into contiguous ranges (see Owner, ShardRange), and Owners
// generalizes that into a k-entry preference list (the owning range
// plus the next k-1 ranges around the ring), which is what lets
// several lvserve processes serve one corpus with each campaign
// stored — and fitted — on k of them. Hints is the hinted-handoff
// journal that rides along: a durable queue of replicated writes
// destined for a peer that was down when the write was accepted,
// drained (idempotently — ids are content hashes, so redelivery
// dedups) when the peer returns.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lasvegas"
)

// ErrUnknownCampaign reports a campaign id the store has never seen
// (or has evicted). The HTTP layer maps it to 404.
var ErrUnknownCampaign = errors.New("store: unknown campaign id")

// Store is a campaign/model store: content-addressed campaigns in,
// single-flight-fittable entries out. Implementations are safe for
// concurrent use.
type Store interface {
	// Add stores a campaign under its content id, deduplicating
	// re-uploads, and returns its entry. When the store is at
	// capacity the oldest entry is evicted first (FIFO).
	Add(c *lasvegas.Campaign) (*Entry, error)
	// AddEncoded is Add for a caller that already ran Encode (the
	// serve layer does, for replica routing), sparing the second
	// canonical marshal.
	AddEncoded(id string, data []byte, c *lasvegas.Campaign) (*Entry, error)
	// Get returns the entry for id, or an error wrapping
	// ErrUnknownCampaign.
	Get(id string) (*Entry, error)
	// IDs lists the resident campaign ids, sorted — the raw material
	// for anti-entropy range digests.
	IDs() []string
	// Len reports the number of resident campaigns.
	Len() int
	// Stats reports occupancy and durability counters for healthz.
	Stats() Stats
	// Close releases any resources (the Disk store's log handle).
	// The store must not be used afterwards.
	Close() error
}

// Stats is a Store's health snapshot, served by GET /v1/healthz.
type Stats struct {
	// Campaigns is the number of resident campaigns.
	Campaigns int
	// Bytes is the canonical-JSON volume behind those campaigns; for
	// the Disk store it is the snapshot-log size on disk (which also
	// counts evicted or superseded records awaiting compaction).
	Bytes int64
	// Replayed counts the campaigns recovered from the snapshot log
	// at Open (0 for Memory stores and fresh data dirs).
	Replayed int
	// ReplayDuration is how long that recovery took.
	ReplayDuration time.Duration
}

// CampaignID derives the deterministic content id of a campaign from
// its canonical JSON encoding. SHA-256 (truncated to 128 bits), not a
// cheap hash: stores dedup purely by id, so a constructible collision
// would silently alias one client's campaign to another's cached
// model.
func CampaignID(c *lasvegas.Campaign) (string, error) {
	id, _, err := Encode(c)
	return id, err
}

// Encode returns a campaign's content id together with the canonical
// bytes it was derived from — the exact bytes a Disk store persists
// and a replica forwards. Callers that need both (the serve upload
// path) should use this once rather than CampaignID + a second
// marshal.
func Encode(c *lasvegas.Campaign) (id string, data []byte, err error) {
	data, err = c.MarshalJSON()
	if err != nil {
		return "", nil, err
	}
	return idOfBytes(data), data, nil
}

// idOfBytes hashes the exact canonical bytes — the same bytes the
// Disk store persists, so an id computed at upload time and one
// recomputed from the replayed log line always agree.
func idOfBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return "c" + hex.EncodeToString(sum[:16])
}

// --- replica routing ----------------------------------------------

// Owner maps a campaign id onto the replica that stores and fits it:
// the 64-bit FNV-1a hash of the id, bucketed into `replicas`
// contiguous ranges of the hash space. Every replica evaluates the
// same pure function, so no coordination — only an agreed replica
// count — is needed for all of them to route consistently.
// A non-positive or single replica count always owns everything.
func Owner(id string, replicas int) int {
	if replicas <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return int(h.Sum64() / rangeWidth(replicas))
}

// Owners generalizes Owner into a preference list: the replica whose
// hash range owns id, followed by the replicas owning the next k-1
// ranges around the ring (wrapping past replica n-1 back to 0). The
// serve layer writes a campaign to every owner on the list and reads
// it from the first live one, so losing any single replica loses no
// id as long as k ≥ 2. k is clamped to [1, replicas]; like Owner, the
// function is pure, so every replica computes the same list without
// coordination.
func Owners(id string, replicas, k int) []int {
	if replicas < 1 {
		replicas = 1
	}
	if k < 1 {
		k = 1
	}
	if k > replicas {
		k = replicas
	}
	owners := make([]int, k)
	first := Owner(id, replicas)
	for i := range owners {
		owners[i] = (first + i) % replicas
	}
	return owners
}

// RangeOwners lists the replicas holding copies of hash range r: the
// range's own replica plus the next k-1 around the ring — the same
// ring walk as Owners, but keyed by range rather than by id, so the
// anti-entropy exchanger knows which peers to compare a range with.
func RangeOwners(r, replicas, k int) []int {
	if replicas < 1 {
		replicas = 1
	}
	if k < 1 {
		k = 1
	}
	if k > replicas {
		k = replicas
	}
	owners := make([]int, k)
	for i := range owners {
		owners[i] = (r + i) % replicas
	}
	return owners
}

// OwnedRanges lists the hash ranges replica self holds copies of
// under k-way replication: its own range plus the k-1 ranges
// preceding it around the ring (the inverse of RangeOwners),
// ascending. These are exactly the ranges self must keep converged.
func OwnedRanges(self, replicas, k int) []int {
	if replicas < 1 {
		replicas = 1
	}
	if k < 1 {
		k = 1
	}
	if k > replicas {
		k = replicas
	}
	ranges := make([]int, k)
	for i := range ranges {
		ranges[i] = ((self-i)%replicas + replicas) % replicas
	}
	sort.Ints(ranges)
	return ranges
}

// ShardRange returns the half-open [lo, hi] bounds of the hash range
// replica `index` of `replicas` owns (hi is inclusive for the last
// replica so the whole uint64 space is covered).
func ShardRange(index, replicas int) (lo, hi uint64) {
	if replicas <= 1 {
		return 0, ^uint64(0)
	}
	w := rangeWidth(replicas)
	lo = uint64(index) * w
	if index >= replicas-1 {
		return lo, ^uint64(0)
	}
	return lo, lo + w - 1
}

// rangeWidth is the hash-range width of one replica: ceil(2^64 / n)
// computed without overflow, so ids at the very top of the space
// still land on replica n-1.
func rangeWidth(replicas int) uint64 {
	return ^uint64(0)/uint64(replicas) + 1
}

// --- entries and the single-flight fit cache ----------------------

// FitFunc computes a campaign's ranked candidate table and best
// accepted model. The store caches its outcome per entry.
type FitFunc func(c *lasvegas.Campaign) ([]lasvegas.Candidate, *lasvegas.Model, error)

// Entry is one stored campaign and its lazily-computed fit.
type Entry struct {
	// ID is the campaign's content id.
	ID string
	// Campaign is the stored campaign. Treat as immutable: mutating
	// it would silently divorce the entry from its content id.
	Campaign *lasvegas.Campaign

	fit    fitCell
	policy policyCell

	// adopted caches an opaque serve-layer value (a peer's rendered
	// fit response) adopted instead of computing locally; it rides the
	// entry so it evicts with the campaign.
	adopted atomic.Value
}

// FitOutcome is a completed fit's cached result, as reported by
// CachedFit. Exactly one of (Model, Err) describes the outcome: a
// deterministic fit error (ErrCensored, ErrNoAcceptableFit) is itself
// a cacheable outcome.
type FitOutcome struct {
	Candidates []lasvegas.Candidate
	Model      *lasvegas.Model
	Err        error
}

// CachedFit reports the entry's fit outcome without triggering or
// waiting for a computation: ok is false while no fit has completed,
// including while one is in flight. The serve layer answers peer
// fit-cache probes from this, so a probe can never be the thing that
// makes a replica burn a fit.
func (e *Entry) CachedFit() (out FitOutcome, ok bool) {
	return e.fit.peek()
}

// AdoptFit attaches an opaque non-nil value (the serve layer stores a
// peer's rendered fit response) to the entry. Adoption is
// last-writer-wins; fits being deterministic, every writer stores
// equivalent bytes.
func (e *Entry) AdoptFit(v any) { e.adopted.Store(v) }

// AdoptedFit returns the value stored by AdoptFit, or nil.
func (e *Entry) AdoptedFit() any { return e.adopted.Load() }

// Fit returns the entry's fit, computing it at most once
// (single-flight): concurrent callers for one campaign block on the
// same cell and all receive the identical cached outcome — including
// a cached fit error (ErrCensored, ErrNoAcceptableFit), which is
// deterministic for the campaign. The computation claims a slot on
// gate first; ctx bounds only that wait, and a caller cancelled while
// waiting does not poison the entry — the next caller simply retries.
func (e *Entry) Fit(ctx context.Context, gate Gate, fn FitFunc) ([]lasvegas.Candidate, *lasvegas.Model, error) {
	return e.fit.do(ctx, gate, e.Campaign, fn)
}

// fitCell is the single-flight once-cell behind Entry.Fit, kept
// unexported so implementations can hand out entries without exposing
// the cache fields.
type fitCell struct {
	mu     sync.Mutex // serializes the single-flight fit
	done   bool
	cands  []lasvegas.Candidate
	model  *lasvegas.Model
	fitErr error
}

func newEntry(id string, c *lasvegas.Campaign) *Entry {
	return &Entry{ID: id, Campaign: c}
}

func (f *fitCell) do(ctx context.Context, gate Gate, c *lasvegas.Campaign, fn FitFunc) ([]lasvegas.Candidate, *lasvegas.Model, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.done {
		if err := gate.Acquire(ctx); err != nil {
			return nil, nil, err
		}
		f.cands, f.model, f.fitErr = fn(c)
		gate.Release()
		f.done = true
	}
	if f.fitErr != nil {
		return nil, nil, f.fitErr
	}
	return f.cands, f.model, nil
}

// peek reports the cell's outcome if (and only if) a fit has
// completed. TryLock rather than Lock: a cell mid-computation is
// "nothing cached yet", not something worth blocking on.
func (f *fitCell) peek() (FitOutcome, bool) {
	if !f.mu.TryLock() {
		return FitOutcome{}, false
	}
	defer f.mu.Unlock()
	if !f.done {
		return FitOutcome{}, false
	}
	return FitOutcome{Candidates: f.cands, Model: f.model, Err: f.fitErr}, true
}

// Policy returns the entry's restart-policy value, computing it at
// most once via fn (single-flight, same discipline as Fit): policy
// tables are deterministic per campaign, so both values and errors
// cache — except cancellations, which must not poison the cell for
// the next caller. computed reports whether this call ran fn (false:
// served from cache), which the serve layer turns into a
// computed-vs-cached metric. fn is responsible for its own gating;
// the cell cannot hold a Gate slot itself because fn's fit step
// acquires one, and nesting would deadlock a single-slot gate.
func (e *Entry) Policy(fn func() (any, error)) (v any, computed bool, err error) {
	e.policy.mu.Lock()
	defer e.policy.mu.Unlock()
	if e.policy.done {
		return e.policy.v, false, e.policy.err
	}
	v, err = fn()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return nil, true, err
	}
	e.policy.v, e.policy.err = v, err
	e.policy.done = true
	return v, true, err
}

// policyCell is the once-cell behind Entry.Policy.
type policyCell struct {
	mu   sync.Mutex
	done bool
	v    any
	err  error
}

// Gate bounds how many fit (and, in lvserve, collect) jobs run at
// once: a counting semaphore whose Acquire honours ctx while waiting.
type Gate chan struct{}

// NewGate returns a gate admitting up to slots concurrent holders
// (minimum 1).
func NewGate(slots int) Gate {
	if slots < 1 {
		slots = 1
	}
	return make(Gate, slots)
}

// Acquire claims a slot, honouring ctx while waiting.
func (g Gate) Acquire(ctx context.Context) error {
	select {
	case g <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot claimed by Acquire.
func (g Gate) Release() { <-g }

// unknown wraps ErrUnknownCampaign with the offending id.
func unknown(id string) error {
	return fmt.Errorf("%w: %q", ErrUnknownCampaign, id)
}
