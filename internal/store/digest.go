package store

import (
	"bytes"
	"encoding/json"

	"lasvegas"
)

// Digest summarizes one replica's holdings for one hash range — the
// unit of comparison in anti-entropy. Two replicas holding the same
// campaigns for a range produce byte-identical digests (ids are
// sorted, campaigns are content-addressed, and the sketch fold is
// deterministic), so a single byte comparison short-circuits the
// common all-converged case before any per-id work.
type Digest struct {
	// Range is the hash-range index the digest covers.
	Range int `json:"range"`
	// IDs lists the resident campaign ids hashing into the range,
	// sorted. Content addressing means set difference is the whole
	// diff: one id can never name divergent bytes on two replicas.
	IDs []string `json:"campaigns,omitempty"`
	// Sketch is the canonical serialization of the range's pooled
	// runtime quantile sketch (every mergeable campaign's
	// RuntimeSketch merged in sorted-id order), or empty when the
	// range holds nothing mergeable. It rides along as a cheap
	// semantic fingerprint of the range's runtime mass: byte-equal
	// sketches with equal id sets mean the replicas would hand every
	// downstream fit identical observations.
	Sketch json.RawMessage `json:"sketch,omitempty"`
}

// BuildRangeDigest digests the campaigns of st that hash into range
// rangeIdx of replicas. sketchK (≤ 0 = lasvegas.DefaultSketchK) fixes
// the fold capacity; campaigns whose sketch cannot join the pool —
// censored ones (RuntimeSketch refuses them) or sketch-backed ones of
// a different capacity (Merge requires equal k) — are skipped from
// the sketch, never from IDs. The skip rule depends only on campaign
// content, so replicas with equal holdings still digest identically.
func BuildRangeDigest(st Store, rangeIdx, replicas, sketchK int) (*Digest, error) {
	if sketchK <= 0 {
		sketchK = lasvegas.DefaultSketchK
	}
	d := &Digest{Range: rangeIdx}
	var pool *lasvegas.Sketch
	for _, id := range st.IDs() {
		if Owner(id, replicas) != rangeIdx {
			continue
		}
		d.IDs = append(d.IDs, id)
		e, err := st.Get(id)
		if err != nil {
			continue // evicted between IDs and Get; the next round re-digests
		}
		rs, err := e.Campaign.RuntimeSketch(sketchK)
		if err != nil || rs.K() != sketchK {
			continue
		}
		if pool == nil {
			pool = rs
			continue
		}
		if merged, err := lasvegas.MergeSketches(pool, rs); err == nil {
			pool = merged
		}
	}
	if pool != nil {
		raw, err := pool.MarshalJSON()
		if err != nil {
			return nil, err
		}
		d.Sketch = raw
	}
	return d, nil
}

// Equal reports whether two digests describe identical holdings.
func (d *Digest) Equal(o *Digest) bool {
	if d == nil || o == nil {
		return d == o
	}
	if d.Range != o.Range || len(d.IDs) != len(o.IDs) || !bytes.Equal(d.Sketch, o.Sketch) {
		return false
	}
	for i := range d.IDs {
		if d.IDs[i] != o.IDs[i] {
			return false
		}
	}
	return true
}

// MissingIDs returns the ids present in d but absent from o — what a
// replica holding o must pull to converge on d's range. Both id lists
// are sorted, so this is a linear merge walk.
func (d *Digest) MissingIDs(o *Digest) []string {
	var missing []string
	i, j := 0, 0
	for i < len(d.IDs) {
		switch {
		case j >= len(o.IDs) || d.IDs[i] < o.IDs[j]:
			missing = append(missing, d.IDs[i])
			i++
		case d.IDs[i] == o.IDs[j]:
			i++
			j++
		default:
			j++
		}
	}
	return missing
}
