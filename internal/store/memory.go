package store

import (
	"sort"
	"sync"

	"lasvegas"
)

// Memory is the process-local Store: a content-addressed map with
// FIFO eviction and no durability — every campaign is gone on exit.
// It is both lvserve's default store and the resident index inside
// the Disk store.
type Memory struct {
	mu      sync.Mutex
	entries map[string]*Entry
	order   []string // insertion order, for FIFO eviction
	max     int
	bytes   int64            // canonical-JSON volume of resident campaigns
	sizes   map[string]int64 // per-entry byte sizes, so eviction can subtract
}

// NewMemory returns a Memory store evicting FIFO past maxCampaigns
// (minimum 1).
func NewMemory(maxCampaigns int) *Memory {
	if maxCampaigns < 1 {
		maxCampaigns = 1
	}
	return &Memory{
		entries: make(map[string]*Entry),
		sizes:   make(map[string]int64),
		max:     maxCampaigns,
	}
}

// Add implements Store.
func (m *Memory) Add(c *lasvegas.Campaign) (*Entry, error) {
	data, err := c.MarshalJSON()
	if err != nil {
		return nil, err
	}
	return m.AddEncoded(idOfBytes(data), data, c)
}

// AddEncoded implements Store: Add with the content id and canonical
// bytes already in hand (both must come from Encode).
func (m *Memory) AddEncoded(id string, data []byte, c *lasvegas.Campaign) (*Entry, error) {
	e, _ := m.addBytes(id, c, int64(len(data)))
	return e, nil
}

// addBytes inserts (or dedups) an entry whose canonical encoding is
// size bytes long, reporting whether a new entry was created — the
// signal the Disk store uses to decide whether to append to its log.
func (m *Memory) addBytes(id string, c *lasvegas.Campaign, size int64) (*Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[id]; ok {
		return e, false
	}
	for len(m.entries) >= m.max && len(m.order) > 0 {
		oldest := m.order[0]
		m.order = m.order[1:]
		delete(m.entries, oldest)
		m.bytes -= m.sizes[oldest]
		delete(m.sizes, oldest)
	}
	e := newEntry(id, c)
	m.entries[id] = e
	m.order = append(m.order, id)
	m.sizes[id] = size
	m.bytes += size
	return e, true
}

// Get implements Store.
func (m *Memory) Get(id string) (*Entry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[id]; ok {
		return e, nil
	}
	return nil, unknown(id)
}

// IDs implements Store.
func (m *Memory) IDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.entries))
	for id := range m.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len implements Store.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Stats implements Store.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Campaigns: len(m.entries), Bytes: m.bytes}
}

// Close implements Store (a no-op for the in-memory store).
func (m *Memory) Close() error { return nil }
