package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"sync"
)

// Hint is one replicated write awaiting redelivery: the canonical
// campaign bytes destined for a peer replica that was down when the
// write was accepted locally.
type Hint struct {
	// Peer is the replica index the write is owed to.
	Peer int `json:"peer"`
	// ID is the campaign's content id (the hash of Data).
	ID string `json:"id"`
	// Data is the campaign's canonical JSON — exactly the bytes a
	// replication write carries.
	Data json.RawMessage `json:"campaign"`
}

// Hints is the hinted-handoff journal: per-peer FIFO queues of
// replicated writes that could not be delivered, optionally backed by
// an fsync'd append-only log so the promise to deliver survives a
// restart of the hinting replica. Redelivery is idempotent — ids are
// content hashes and stores dedup on them — so the journal never
// tracks delivery durably: acknowledged hints simply stop being
// replayed once every queue is empty and the log is truncated, and a
// crash between delivery and truncation merely redelivers. Safe for
// concurrent use.
type Hints struct {
	mu          sync.Mutex
	pending     map[int][]*Hint // per-peer FIFO queues
	queued      map[string]bool // "peer/id" dedup of pending hints
	f           *os.File        // nil for a memory-only journal
	broken      error           // set when a failed append could not be rolled back
	bytes       int64
	quarantined bool // a corrupt log was set aside at OpenHints
}

// hintLog is the journal file inside a Disk store's data directory.
const hintLog = "hints.log"

// NewHints returns a memory-only journal (the in-memory store's
// companion): hints queue and drain normally but die with the process.
func NewHints() *Hints {
	return &Hints{
		pending: make(map[int][]*Hint),
		queued:  make(map[string]bool),
	}
}

// errCorruptHintLog marks a complete hint-log record that fails to
// parse — corruption past the torn-tail case the truncation handles.
var errCorruptHintLog = errors.New("store: corrupt hint log record")

// OpenHints opens (creating if needed) the durable journal at path,
// replaying every complete record into the pending queues. Like the
// snapshot log, a torn final record — a crash between write and
// fsync — is provably unacknowledged and is truncated away.
//
// Unlike the snapshot log, a *complete* record that fails to parse is
// not fatal: the journal only promises redelivery of writes that are
// already durable on the hinting replica, so the worst a lost hint
// costs is a peer converging through anti-entropy instead of through
// handoff — whereas refusing to boot takes the whole replica (and
// every campaign it owns) offline. The corrupt log is renamed to
// path+".corrupt" for the operator, the event is logged loudly on
// logger (nil discards — callers without a logging policy stay
// quiet), and the journal starts empty; Quarantined reports it for
// healthz.
func OpenHints(path string, logger *slog.Logger) (*Hints, error) {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	h := NewHints()
	good, err := h.replay(path)
	if errors.Is(err, errCorruptHintLog) {
		qpath := path + ".corrupt"
		if rerr := os.Rename(path, qpath); rerr != nil {
			return nil, fmt.Errorf("store: quarantining corrupt hint log: %v (%w)", rerr, err)
		}
		logger.Warn("corrupt hint log quarantined; undelivered hints now converge via anti-entropy",
			"error", err, "quarantined_to", qpath)
		h = NewHints()
		h.quarantined = true
		good = 0
	} else if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: hint log: %w", err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncating torn hint record: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: hint log: %w", err)
	}
	h.f = f
	h.bytes = good
	return h, nil
}

// replay loads every complete record of the hint log, returning the
// byte offset after the last good record. A missing log is an empty
// journal.
func (h *Hints) replay(path string) (good int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: hint log: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			return good, nil // torn final record dropped, not replayed
		}
		if err != nil {
			return 0, fmt.Errorf("store: replaying hint log: %w", err)
		}
		rec := bytes.TrimSuffix(line, []byte("\n"))
		if len(bytes.TrimSpace(rec)) != 0 {
			var hint Hint
			if err := json.Unmarshal(rec, &hint); err != nil {
				return 0, fmt.Errorf("%w at offset %d: %v", errCorruptHintLog, good, err)
			}
			h.enqueue(&hint)
		}
		good += int64(len(line))
	}
}

// Enqueue journals a hint for peer: the canonical campaign bytes data
// (with content id id) will be redelivered by Next/Ack when the peer
// returns. Re-hinting a (peer, id) pair already queued is a no-op, so
// an owner can hint on every failed write without growing the queue.
// For a durable journal the record is fsync'd before Enqueue returns.
func (h *Hints) Enqueue(peer int, id string, data []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.broken != nil {
		return h.broken
	}
	if h.queued[hintKey(peer, id)] {
		return nil
	}
	hint := &Hint{Peer: peer, ID: id, Data: json.RawMessage(data)}
	if h.f != nil {
		rec, err := json.Marshal(hint)
		if err != nil {
			return err
		}
		rec = append(rec, '\n')
		if _, err := h.f.Write(rec); err != nil {
			h.rewind()
			return fmt.Errorf("store: appending hint: %w", err)
		}
		if err := h.f.Sync(); err != nil {
			h.rewind()
			return fmt.Errorf("store: hint fsync: %w", err)
		}
		h.bytes += int64(len(rec))
	}
	h.enqueue(hint)
	return nil
}

// enqueue adds a hint to the in-memory queues, deduplicating on
// (peer, id). Callers hold h.mu (or, during replay, exclusive access).
func (h *Hints) enqueue(hint *Hint) {
	key := hintKey(hint.Peer, hint.ID)
	if h.queued[key] {
		return
	}
	h.queued[key] = true
	h.pending[hint.Peer] = append(h.pending[hint.Peer], hint)
}

// rewind rolls the log back to the last acknowledged record after a
// failed append, mirroring the snapshot log's recovery; if that fails
// the journal refuses further appends rather than corrupting the log.
func (h *Hints) rewind() {
	if err := h.f.Truncate(h.bytes); err != nil {
		h.broken = fmt.Errorf("store: hint log unrecoverable after failed append (truncate: %w)", err)
		return
	}
	if _, err := h.f.Seek(h.bytes, io.SeekStart); err != nil {
		h.broken = fmt.Errorf("store: hint log unrecoverable after failed append (seek: %w)", err)
	}
}

// Next returns the oldest pending hint for peer without removing it
// (delivery may fail; Ack removes it on success).
func (h *Hints) Next(peer int) (*Hint, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	q := h.pending[peer]
	if len(q) == 0 {
		return nil, false
	}
	return q[0], true
}

// Ack records that the oldest pending hint for peer — which must be
// the one Next returned, identified by id — was delivered. When the
// whole journal drains empty the log file is truncated, bounding it
// by the backlog rather than the history. A crash before truncation
// only means redelivery, which the content-addressed stores dedup.
func (h *Hints) Ack(peer int, id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	q := h.pending[peer]
	if len(q) == 0 || q[0].ID != id {
		return
	}
	h.pending[peer] = q[1:]
	if len(h.pending[peer]) == 0 {
		delete(h.pending, peer)
	}
	delete(h.queued, hintKey(peer, id))
	if len(h.queued) == 0 && h.f != nil && h.broken == nil {
		// Empty journal: reset the log so it only ever holds the
		// undelivered backlog (plus already-delivered records awaiting
		// this truncation).
		if h.f.Truncate(0) == nil {
			if _, err := h.f.Seek(0, io.SeekStart); err == nil {
				h.bytes = 0
			}
		}
	}
}

// Peers lists the replicas with pending hints, ascending.
func (h *Hints) Peers() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	peers := make([]int, 0, len(h.pending))
	for p := range h.pending {
		peers = append(peers, p)
	}
	sort.Ints(peers)
	return peers
}

// Depth reports the total number of pending hints (healthz's
// hint-queue depth).
func (h *Hints) Depth() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.queued)
}

// Quarantined reports whether OpenHints found a corrupt log and set
// it aside — the replica booted, but hints it had promised may be
// lost until anti-entropy reconverges them.
func (h *Hints) Quarantined() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quarantined
}

// DepthFor reports the pending hints owed to one peer.
func (h *Hints) DepthFor(peer int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.pending[peer])
}

// Close releases the journal's log handle (a no-op for memory-only
// journals). Pending hints stay in the log for the next OpenHints.
func (h *Hints) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.f == nil {
		return nil
	}
	err := h.f.Close()
	h.f = nil
	return err
}

func hintKey(peer int, id string) string {
	return fmt.Sprintf("%d/%s", peer, id)
}
