// Package runtimes runs sequential campaigns of a Las Vegas solver
// and manages the resulting runtime samples: the paper's §5.4 step of
// collecting ~650 sequential runs per benchmark, from which Tables
// 1–2 are summarized and §6's distributions are fitted.
//
// Campaign repetitions are independent (fresh problem instance, fresh
// random stream per run), so they may be collected on parallel
// workers without biasing the iteration counts; only wall-clock
// seconds are scheduling-sensitive, which is one more reason the
// paper prefers iterations as the runtime measure.
package runtimes

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"lasvegas/internal/adaptive"
	"lasvegas/internal/csp"
	"lasvegas/internal/stats"
	"lasvegas/internal/xrand"
)

// Campaign is the outcome of m sequential runs of one solver on one
// problem instance.
type Campaign struct {
	Problem    string    `json:"problem"`
	Runs       int       `json:"runs"`
	Seed       uint64    `json:"seed"`
	Iterations []float64 `json:"iterations"` // per-run iteration counts
	Seconds    []float64 `json:"seconds"`    // per-run wall-clock seconds
}

// Collect runs the Adaptive Search solver `runs` times on fresh
// instances from factory, each with an independent stream derived
// from seed, spreading the runs over `workers` goroutines
// (0 = GOMAXPROCS). It fails fast on the first solver error or
// context cancellation.
func Collect(ctx context.Context, factory func() (csp.Problem, error), params adaptive.Params, runs int, seed uint64, workers int) (*Campaign, error) {
	if factory == nil {
		return nil, errors.New("runtimes: nil factory")
	}
	if runs < 1 {
		return nil, fmt.Errorf("runtimes: %d runs", runs)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	probe, err := factory()
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		Problem:    probe.Name(),
		Runs:       runs,
		Seed:       seed,
		Iterations: make([]float64, runs),
		Seconds:    make([]float64, runs),
	}
	root := xrand.New(seed)
	streams := make([]*xrand.Rand, runs)
	for i := range streams {
		streams[i] = root.Split(uint64(i))
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= runs {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				p, err := factory()
				if err != nil {
					fail(err)
					return
				}
				s, err := adaptive.New(p, params)
				if err != nil {
					fail(err)
					return
				}
				start := time.Now()
				res := s.RunContext(ctx, streams[i])
				if !res.Solved {
					if res.Err != nil {
						fail(fmt.Errorf("runtimes: run %d: %w", i, res.Err))
					} else {
						fail(fmt.Errorf("runtimes: run %d unsolved", i))
					}
					return
				}
				c.Iterations[i] = float64(res.Stats.Iterations)
				c.Seconds[i] = time.Since(start).Seconds()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return c, nil
}

// SummaryRow is one line of the paper's Tables 1–2.
type SummaryRow struct {
	Problem string
	Min     float64
	Mean    float64
	Median  float64
	Max     float64
}

// IterationSummary returns the Table-2 row of the campaign.
func (c *Campaign) IterationSummary() SummaryRow {
	s := stats.Summarize(c.Iterations)
	return SummaryRow{Problem: c.Problem, Min: s.Min, Mean: s.Mean, Median: s.Median, Max: s.Max}
}

// TimeSummary returns the Table-1 row of the campaign.
func (c *Campaign) TimeSummary() SummaryRow {
	s := stats.Summarize(c.Seconds)
	return SummaryRow{Problem: c.Problem, Min: s.Min, Mean: s.Mean, Median: s.Median, Max: s.Max}
}

// WriteCSV emits one row per run: index, iterations, seconds.
func (c *Campaign) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"run", "iterations", "seconds"}); err != nil {
		return err
	}
	for i := range c.Iterations {
		rec := []string{
			strconv.Itoa(i),
			strconv.FormatFloat(c.Iterations[i], 'g', -1, 64),
			strconv.FormatFloat(c.Seconds[i], 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the WriteCSV format; Problem/Seed metadata are not
// stored in CSV and stay zero.
func ReadCSV(r io.Reader) (*Campaign, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) < 2 {
		return nil, errors.New("runtimes: CSV has no data rows")
	}
	c := &Campaign{Runs: len(records) - 1}
	for _, rec := range records[1:] {
		if len(rec) != 3 {
			return nil, fmt.Errorf("runtimes: bad CSV row %v", rec)
		}
		it, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("runtimes: bad iterations %q", rec[1])
		}
		sec, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("runtimes: bad seconds %q", rec[2])
		}
		c.Iterations = append(c.Iterations, it)
		c.Seconds = append(c.Seconds, sec)
	}
	return c, nil
}

// SaveJSON writes the full campaign (with metadata) to path.
func (c *Campaign) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadJSON reads a campaign written by SaveJSON.
func LoadJSON(path string) (*Campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Campaign
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, err
	}
	if len(c.Iterations) == 0 {
		return nil, errors.New("runtimes: campaign has no observations")
	}
	return &c, nil
}
