package runtimes

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"lasvegas/internal/adaptive"
	"lasvegas/internal/csp"
	"lasvegas/internal/problems"
)

func queensFactory(size int) func() (csp.Problem, error) {
	return func() (csp.Problem, error) { return problems.New(problems.Queens, size) }
}

func TestCollectBasics(t *testing.T) {
	c, err := Collect(context.Background(), queensFactory(16), adaptive.Params{}, 30, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Runs != 30 || len(c.Iterations) != 30 || len(c.Seconds) != 30 {
		t.Fatalf("campaign shape: %+v", c)
	}
	if c.Problem != "queens-16" {
		t.Errorf("problem name %q", c.Problem)
	}
	for i, it := range c.Iterations {
		if it <= 0 {
			t.Errorf("run %d has %v iterations", i, it)
		}
		if c.Seconds[i] < 0 {
			t.Errorf("run %d has negative seconds", i)
		}
	}
}

func TestCollectDeterministicIterations(t *testing.T) {
	// Iteration counts must be identical across collections with the
	// same seed, regardless of worker count (scheduling-independent).
	c1, err := Collect(context.Background(), queensFactory(14), adaptive.Params{}, 20, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Collect(context.Background(), queensFactory(14), adaptive.Params{}, 20, 99, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c1.Iterations {
		if c1.Iterations[i] != c2.Iterations[i] {
			t.Fatalf("run %d: %v vs %v iterations across worker counts", i, c1.Iterations[i], c2.Iterations[i])
		}
	}
}

func TestCollectValidation(t *testing.T) {
	if _, err := Collect(context.Background(), nil, adaptive.Params{}, 5, 1, 1); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := Collect(context.Background(), queensFactory(8), adaptive.Params{}, 0, 1, 1); err == nil {
		t.Error("0 runs accepted")
	}
}

func TestCollectPropagatesBudgetFailure(t *testing.T) {
	// An impossible budget must surface as an error, not hang.
	factory := func() (csp.Problem, error) { return problems.New(problems.Costas, 15) }
	_, err := Collect(context.Background(), factory, adaptive.Params{MaxIterations: 10}, 4, 1, 2)
	if err == nil {
		t.Error("budget exhaustion not propagated")
	}
}

func TestSummaries(t *testing.T) {
	c := &Campaign{
		Problem:    "synthetic",
		Runs:       4,
		Iterations: []float64{10, 20, 30, 100},
		Seconds:    []float64{0.1, 0.2, 0.3, 1.0},
	}
	it := c.IterationSummary()
	if it.Min != 10 || it.Max != 100 || it.Mean != 40 || it.Median != 25 {
		t.Errorf("iteration summary %+v", it)
	}
	ts := c.TimeSummary()
	if ts.Min != 0.1 || ts.Max != 1.0 {
		t.Errorf("time summary %+v", ts)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := &Campaign{
		Problem:    "rt",
		Runs:       3,
		Iterations: []float64{5, 15, 25},
		Seconds:    []float64{0.5, 1.5, 2.5},
	}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Runs != 3 {
		t.Fatalf("runs %d", back.Runs)
	}
	for i := range c.Iterations {
		if back.Iterations[i] != c.Iterations[i] || back.Seconds[i] != c.Seconds[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("run,iterations,seconds\n")); err == nil {
		t.Error("header-only CSV accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("run,iterations,seconds\n0,abc,1\n")); err == nil {
		t.Error("non-numeric iterations accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.json")
	c := &Campaign{
		Problem:    "json-rt",
		Runs:       2,
		Seed:       77,
		Iterations: []float64{3, 9},
		Seconds:    []float64{0.3, 0.9},
	}
	if err := c.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Problem != "json-rt" || back.Seed != 77 || back.Iterations[1] != 9 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestLoadJSONErrors(t *testing.T) {
	if _, err := LoadJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
