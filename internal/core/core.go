// Package core implements the paper's primary contribution: the
// probabilistic prediction of independent multi-walk parallel
// speed-ups from the sequential runtime distribution of a Las Vegas
// algorithm.
//
// Given the law Y of the sequential runtime, the parallel runtime on
// n cores is Z(n) = min(X₁..Xₙ) with Xᵢ i.i.d. ~ Y (Definition 2 of
// the paper), and the predicted speed-up is
//
//	G(n) = E[Y] / E[Z(n)].
//
// A Predictor wraps any dist.Dist — a parametric family fitted with
// internal/fit, or a nonparametric dist.Empirical built straight from
// observed runtimes ("plug-in" prediction). Closed forms are used
// where the paper derives them:
//
//   - shifted exponential: G(n) = (x0 + 1/λ)/(x0 + 1/(nλ)),
//     limit G(∞) = 1 + 1/(x0·λ), tangent at origin x0·λ + 1;
//   - unshifted exponential: G(n) = n, the linear-speed-up case;
//
// all other families go through the order-statistic moment integrals
// of internal/orderstat, the exact computational device (Nadarajah
// 2008) the paper cites for the lognormal case.
package core

import (
	"errors"
	"fmt"
	"math"

	"lasvegas/internal/dist"
	"lasvegas/internal/orderstat"
)

// ErrInvalid reports an unusable predictor configuration.
var ErrInvalid = errors.New("core: invalid predictor")

// Predictor computes parallel speed-up predictions for a Las Vegas
// algorithm whose sequential runtime follows Y.
type Predictor struct {
	y     dist.Dist
	meanY float64
}

// NewPredictor builds a predictor from the sequential runtime law.
// It fails when E[Y] is not finite and positive (e.g. the Lévy law,
// whose expected runtime is infinite — no finite speed-up prediction
// exists for it).
func NewPredictor(y dist.Dist) (*Predictor, error) {
	if y == nil {
		return nil, fmt.Errorf("%w: nil distribution", ErrInvalid)
	}
	m := y.Mean()
	if math.IsNaN(m) || math.IsInf(m, 0) || m <= 0 {
		return nil, fmt.Errorf("%w: E[Y]=%v is not a positive finite runtime", ErrInvalid, m)
	}
	return &Predictor{y: y, meanY: m}, nil
}

// NewEmpirical builds a plug-in predictor directly from observed
// sequential runtimes, with no distributional assumption.
func NewEmpirical(sample []float64) (*Predictor, error) {
	e, err := dist.NewEmpirical(sample)
	if err != nil {
		return nil, err
	}
	return NewPredictor(e)
}

// Dist returns the underlying runtime distribution.
func (p *Predictor) Dist() dist.Dist { return p.y }

// SequentialMean returns E[Y].
func (p *Predictor) SequentialMean() float64 { return p.meanY }

// ParallelMean returns E[Z(n)], the expected multi-walk runtime on n
// cores.
func (p *Predictor) ParallelMean(n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("%w: n=%d cores", ErrInvalid, n)
	}
	if n == 1 {
		return p.meanY, nil
	}
	e := orderstat.MeanMin(p.y, n)
	if math.IsNaN(e) {
		return 0, fmt.Errorf("core: E[Z(%d)] did not evaluate", n)
	}
	return e, nil
}

// Speedup returns the predicted speed-up G(n) = E[Y]/E[Z(n)].
func (p *Predictor) Speedup(n int) (float64, error) {
	ez, err := p.ParallelMean(n)
	if err != nil {
		return 0, err
	}
	if ez <= 0 {
		// Happens only when the runtime law allows instantaneous
		// success with positive probability and n is astronomically
		// large; report infinite speed-up rather than dividing by 0.
		return math.Inf(1), nil
	}
	return p.meanY / ez, nil
}

// Point is one (cores, value) pair of a prediction curve.
type Point struct {
	Cores   int
	Speedup float64
}

// Curve evaluates the predicted speed-up at each core count.
func (p *Predictor) Curve(cores []int) ([]Point, error) {
	pts := make([]Point, len(cores))
	for i, n := range cores {
		g, err := p.Speedup(n)
		if err != nil {
			return nil, fmt.Errorf("core: curve at n=%d: %w", n, err)
		}
		pts[i] = Point{Cores: n, Speedup: g}
	}
	return pts, nil
}

// Limit returns lim_{n→∞} G(n). Since E[Z(n)] decreases to the
// essential infimum of Y (the left edge x0 of the support),
//
//	G(∞) = E[Y]/x0   (x0 > 0),   G(∞) = +Inf   (x0 = 0).
//
// For the shifted exponential this reduces to the paper's
// 1 + 1/(x0·λ).
func (p *Predictor) Limit() float64 {
	lo, _ := p.y.Support()
	if lo < 0 {
		lo = 0 // runtimes are non-negative; gaussian fits are truncated in spirit
	}
	if lo == 0 {
		return math.Inf(1)
	}
	return p.meanY / lo
}

// TangentAtOrigin returns the initial slope of the speed-up curve,
// the paper's indicator of "speed-up at a small number of cores".
// For the shifted exponential it is the closed form x0·λ + 1; other
// families use the two-point finite difference G(2) − G(1).
func (p *Predictor) TangentAtOrigin() float64 {
	if se, ok := p.y.(dist.ShiftedExponential); ok {
		return se.Shift*se.Rate + 1
	}
	g2, err := p.Speedup(2)
	if err != nil {
		return math.NaN()
	}
	return g2 - 1
}

// Linear reports whether the prediction is exactly linear speed-up
// (G(n) = n), i.e. the unshifted exponential case of §3.3.
func (p *Predictor) Linear() bool {
	se, ok := p.y.(dist.ShiftedExponential)
	return ok && se.Shift == 0
}

// MinDist returns the full predicted law of the parallel runtime
// Z(n), usable for plotting (Figures 1, 2, 4) or for risk measures
// beyond the mean (quantiles of the parallel runtime).
func (p *Predictor) MinDist(n int) (dist.Dist, error) {
	switch b := p.y.(type) {
	case dist.ShiftedExponential:
		if n >= 1 {
			return b.MinDist(n), nil
		}
	case dist.Weibull:
		if n >= 1 {
			return b.MinDist(n), nil
		}
	}
	m, err := orderstat.NewMin(p.y, n)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Efficiency returns G(n)/n, the parallel efficiency of the
// prediction.
func (p *Predictor) Efficiency(n int) (float64, error) {
	g, err := p.Speedup(n)
	if err != nil {
		return 0, err
	}
	return g / float64(n), nil
}

// CoresForSpeedup returns the smallest n with G(n) >= target, or an
// error if the target exceeds the limit G(∞). It exploits the
// monotonicity of G (doubling search + bisection), giving capacity
// planners the inverse question: "how many cores to go k× faster?".
func (p *Predictor) CoresForSpeedup(target float64) (int, error) {
	if target <= 1 {
		return 1, nil
	}
	if lim := p.Limit(); !math.IsInf(lim, 1) && target > lim {
		return 0, fmt.Errorf("core: target speed-up %.3g exceeds limit %.3g", target, lim)
	}
	hi := 1
	for {
		g, err := p.Speedup(hi)
		if err != nil {
			return 0, err
		}
		if g >= target {
			break
		}
		if hi > 1<<24 {
			return 0, fmt.Errorf("core: target speed-up %.3g unreachable below 2^24 cores", target)
		}
		hi *= 2
	}
	lo := hi / 2
	if lo < 1 {
		lo = 1
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		g, err := p.Speedup(mid)
		if err != nil {
			return 0, err
		}
		if g >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// StandardCores is the core grid of the paper's Tables 3–5.
var StandardCores = []int{16, 32, 64, 128, 256}
