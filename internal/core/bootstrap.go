package core

import (
	"errors"
	"fmt"
	"sort"

	"lasvegas/internal/dist"
	"lasvegas/internal/xrand"
)

// The paper reports its predictions deviate from measurements by
// 10–30 % at 256 cores but gives no uncertainty on the predictions
// themselves. This file adds that missing piece: nonparametric
// bootstrap confidence bands for the predicted speed-up, quantifying
// how much of the prediction error is mere sampling noise of the
// ~650-run campaign.

// CI is a two-sided confidence interval for a predicted speed-up.
type CI struct {
	Cores      int
	Speedup    float64 // point prediction from the full sample
	Lo, Hi     float64 // percentile bootstrap bounds
	Level      float64 // e.g. 0.95
	Resamples  int
	Degenerate bool // fewer than 10 distinct bootstrap values
}

// Fitter turns a runtime sample into a distribution; it abstracts
// the §6 pipeline so bootstrap works for parametric fits and for the
// plug-in (see PlugInFitter).
type Fitter func(sample []float64) (dist.Dist, error)

// PlugInFitter is the nonparametric fitter: the empirical
// distribution of the resample.
func PlugInFitter(sample []float64) (dist.Dist, error) {
	return dist.NewEmpirical(sample)
}

// BootstrapCI computes percentile-bootstrap confidence intervals for
// G(n) at each core count: B resamples with replacement from the
// runtime sample, re-fit with fitter, re-predict. Resamples whose fit
// or prediction fails are skipped (counted out of Resamples); if more
// than half fail, an error is returned.
func BootstrapCI(sample []float64, cores []int, fitter Fitter, b int, level float64, seed uint64) ([]CI, error) {
	if len(sample) < 10 {
		return nil, errors.New("core: bootstrap needs ≥10 observations")
	}
	if fitter == nil {
		fitter = PlugInFitter
	}
	if b < 20 {
		return nil, fmt.Errorf("core: %d bootstrap resamples is too few", b)
	}
	if level <= 0 || level >= 1 {
		return nil, fmt.Errorf("core: confidence level %v", level)
	}
	// Point predictions from the full sample.
	full, err := fitter(sample)
	if err != nil {
		return nil, fmt.Errorf("core: fit on full sample: %w", err)
	}
	point, err := NewPredictor(full)
	if err != nil {
		return nil, err
	}
	out := make([]CI, len(cores))
	for i, n := range cores {
		g, err := point.Speedup(n)
		if err != nil {
			return nil, err
		}
		out[i] = CI{Cores: n, Speedup: g, Level: level, Resamples: b}
	}

	r := xrand.New(seed)
	resample := make([]float64, len(sample))
	curves := make([][]float64, len(cores))
	for rep := 0; rep < b; rep++ {
		for j := range resample {
			resample[j] = sample[r.Intn(len(sample))]
		}
		d, err := fitter(resample)
		if err != nil {
			continue
		}
		p, err := NewPredictor(d)
		if err != nil {
			continue
		}
		ok := true
		gs := make([]float64, len(cores))
		for i, n := range cores {
			g, err := p.Speedup(n)
			if err != nil {
				ok = false
				break
			}
			gs[i] = g
		}
		if !ok {
			continue
		}
		for i, g := range gs {
			curves[i] = append(curves[i], g)
		}
	}
	for i := range out {
		vals := curves[i]
		if len(vals) < b/2 {
			return nil, fmt.Errorf("core: only %d/%d bootstrap resamples usable", len(vals), b)
		}
		sort.Float64s(vals)
		alpha := (1 - level) / 2
		out[i].Lo = percentileSorted(vals, alpha)
		out[i].Hi = percentileSorted(vals, 1-alpha)
		out[i].Degenerate = distinctCount(vals) < 10
	}
	return out, nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func distinctCount(sorted []float64) int {
	n := 0
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			n++
		}
	}
	return n
}
