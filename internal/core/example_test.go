package core_test

import (
	"fmt"
	"log"

	"lasvegas/internal/core"
	"lasvegas/internal/dist"
)

// The paper's ALL-INTERVAL 700 case: a shifted exponential runtime
// distribution fitted from 720 sequential runs predicts the parallel
// speed-up of the independent multi-walk scheme.
func ExamplePredictor_Speedup() {
	y, err := dist.NewShiftedExponential(1217, 9.15956e-6)
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.NewPredictor(y)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []int{16, 64, 256} {
		g, err := p.Speedup(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("G(%d) = %.2f\n", n, g)
	}
	// Output:
	// G(16) = 13.73
	// G(64) = 37.77
	// G(256) = 67.17
}

// With a strictly positive minimal runtime the speed-up saturates:
// the paper's §3.3 limit is 1 + 1/(x0·λ).
func ExamplePredictor_Limit() {
	y, err := dist.NewShiftedExponential(100, 1.0/1000)
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.NewPredictor(y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("limit = %.0f\n", p.Limit())
	fmt.Printf("tangent at origin = %.1f\n", p.TangentAtOrigin())
	// Output:
	// limit = 11
	// tangent at origin = 1.1
}

// CoresForSpeedup answers the capacity-planning question directly.
func ExamplePredictor_CoresForSpeedup() {
	y, err := dist.NewShiftedExponential(1217, 9.15956e-6)
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.NewPredictor(y)
	if err != nil {
		log.Fatal(err)
	}
	n, err := p.CoresForSpeedup(50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a 50x speed-up needs %d cores\n", n)
	// Output:
	// a 50x speed-up needs 111 cores
}

// The plug-in predictor needs no distributional assumption: it uses
// the exact expectation of the minimum of n draws from the empirical
// distribution of the sample.
func ExampleNewEmpirical() {
	sample := []float64{100, 200, 400, 800, 1600, 3200}
	p, err := core.NewEmpirical(sample)
	if err != nil {
		log.Fatal(err)
	}
	g, err := p.Speedup(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plug-in G(4) = %.2f\n", g)
	// Output:
	// plug-in G(4) = 4.69
}
