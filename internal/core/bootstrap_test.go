package core

import (
	"errors"
	"testing"

	"lasvegas/internal/dist"
	"lasvegas/internal/fit"
	"lasvegas/internal/xrand"
)

func expSample(t *testing.T, n int, seed uint64) []float64 {
	t.Helper()
	d, err := dist.NewShiftedExponential(100, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	return dist.SampleN(d, xrand.New(seed), n)
}

func TestBootstrapCIPlugIn(t *testing.T) {
	sample := expSample(t, 650, 1)
	cis, err := BootstrapCI(sample, []int{4, 16, 64}, PlugInFitter, 200, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(cis) != 3 {
		t.Fatalf("%d intervals", len(cis))
	}
	for _, ci := range cis {
		if !(ci.Lo <= ci.Speedup && ci.Speedup <= ci.Hi) {
			t.Errorf("cores=%d: point %v outside [%v, %v]", ci.Cores, ci.Speedup, ci.Lo, ci.Hi)
		}
		if ci.Lo <= 0 || ci.Hi <= ci.Lo {
			t.Errorf("cores=%d: degenerate interval [%v, %v]", ci.Cores, ci.Lo, ci.Hi)
		}
	}
	// Intervals widen (in absolute terms) with core count for this law.
	if cis[2].Hi-cis[2].Lo < cis[0].Hi-cis[0].Lo {
		t.Logf("note: CI width at 64 cores (%v) smaller than at 4 (%v)",
			cis[2].Hi-cis[2].Lo, cis[0].Hi-cis[0].Lo)
	}
}

func TestBootstrapCICoversTruth(t *testing.T) {
	// The 95% interval from a 650-run campaign should usually cover
	// the true speed-up; check a handful of independent campaigns.
	truth, _ := dist.NewShiftedExponential(100, 1e-3)
	truthPred, _ := NewPredictor(truth)
	want, _ := truthPred.Speedup(16)
	covered := 0
	const campaigns = 10
	for k := uint64(0); k < campaigns; k++ {
		sample := expSample(t, 650, 100+k)
		cis, err := BootstrapCI(sample, []int{16}, PlugInFitter, 150, 0.95, k)
		if err != nil {
			t.Fatal(err)
		}
		if cis[0].Lo <= want && want <= cis[0].Hi {
			covered++
		}
	}
	if covered < campaigns-3 {
		t.Errorf("truth covered in only %d/%d campaigns", covered, campaigns)
	}
}

func TestBootstrapCIParametricFitter(t *testing.T) {
	sample := expSample(t, 400, 3)
	fitter := func(s []float64) (dist.Dist, error) {
		d, err := fit.ShiftedExponential(s)
		if err != nil {
			return nil, err
		}
		return d, nil
	}
	cis, err := BootstrapCI(sample, []int{16, 256}, fitter, 120, 0.90, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, ci := range cis {
		if ci.Level != 0.90 || ci.Hi <= ci.Lo {
			t.Errorf("bad interval %+v", ci)
		}
	}
}

func TestBootstrapCIValidation(t *testing.T) {
	sample := expSample(t, 100, 5)
	if _, err := BootstrapCI([]float64{1, 2}, []int{4}, nil, 100, 0.95, 1); err == nil {
		t.Error("tiny sample accepted")
	}
	if _, err := BootstrapCI(sample, []int{4}, nil, 5, 0.95, 1); err == nil {
		t.Error("5 resamples accepted")
	}
	if _, err := BootstrapCI(sample, []int{4}, nil, 100, 1.5, 1); err == nil {
		t.Error("level 1.5 accepted")
	}
}

func TestBootstrapCIFailingFitter(t *testing.T) {
	sample := expSample(t, 100, 6)
	boom := func([]float64) (dist.Dist, error) { return nil, errors.New("boom") }
	if _, err := BootstrapCI(sample, []int{4}, boom, 50, 0.95, 1); err == nil {
		t.Error("always-failing fitter accepted")
	}
	// A fitter failing half the time should error too.
	i := 0
	flaky := func(s []float64) (dist.Dist, error) {
		i++
		if i%3 != 0 {
			return nil, errors.New("flaky")
		}
		return dist.NewEmpirical(s)
	}
	if _, err := BootstrapCI(sample, []int{4}, flaky, 60, 0.95, 1); err == nil {
		t.Error("mostly-failing fitter accepted")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	sample := expSample(t, 200, 8)
	a, err := BootstrapCI(sample, []int{8}, nil, 100, 0.95, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapCI(sample, []int{8}, nil, 100, 0.95, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Error("bootstrap not deterministic for equal seeds")
	}
}
