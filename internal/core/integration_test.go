package core_test

// Integration tests exercising the complete §5–§7 pipeline across
// package boundaries: solve → collect → fit → predict → compare with
// simulated multi-walk measurements.

import (
	"context"
	"math"
	"testing"

	"lasvegas/internal/adaptive"
	"lasvegas/internal/core"
	"lasvegas/internal/csp"
	"lasvegas/internal/fit"
	"lasvegas/internal/multiwalk"
	"lasvegas/internal/problems"
	"lasvegas/internal/runtimes"
)

// TestPipelineQueens runs the full paper pipeline on a cheap workload
// and checks that the parametric prediction, the plug-in prediction
// and the simulated multi-walk measurement all agree within Monte
// Carlo tolerances.
func TestPipelineQueens(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test skipped in -short")
	}
	factory := func() (csp.Problem, error) { return problems.New(problems.Queens, 24) }
	campaign, err := runtimes.Collect(context.Background(), factory, adaptive.Params{}, 150, 3, 0)
	if err != nil {
		t.Fatal(err)
	}

	best, err := fit.Best(campaign.Iterations, 0.01,
		fit.FamExponential, fit.FamShiftedExponential, fit.FamLogNormal)
	if err != nil {
		t.Fatalf("no family fits queens runtimes: %v", err)
	}
	parametric, err := core.NewPredictor(best.Dist)
	if err != nil {
		t.Fatal(err)
	}
	plugin, err := core.NewEmpirical(campaign.Iterations)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := multiwalk.MeasureSimulated(campaign.Iterations, []int{2, 4, 8}, 6000, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range []int{2, 4, 8} {
		gp, err := parametric.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		ge, err := plugin.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		gm := measured[i].Speedup
		// Plug-in and measurement share the ECDF: tight agreement.
		if math.Abs(ge-gm) > 0.1*gm {
			t.Errorf("n=%d: plug-in %v vs measured %v", n, ge, gm)
		}
		// Parametric may deviate more (model error), but must be in the
		// right regime.
		if gp < 1 || gp > 3*gm {
			t.Errorf("n=%d: parametric %v vs measured %v", n, gp, gm)
		}
	}
}

// TestPipelinePredictionBeforeMeasurement demonstrates the paper's
// use-case: predict at a core count we never measured, then verify.
func TestPipelinePredictionBeforeMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test skipped in -short")
	}
	factory := func() (csp.Problem, error) { return problems.New(problems.Costas, 9) }
	campaign, err := runtimes.Collect(context.Background(), factory, adaptive.Params{}, 200, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	plugin, err := core.NewEmpirical(campaign.Iterations)
	if err != nil {
		t.Fatal(err)
	}
	const target = 32
	predicted, err := plugin.Speedup(target)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := multiwalk.MeasureSimulated(campaign.Iterations, []int{target}, 8000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(predicted-measured[0].Speedup) > 0.15*measured[0].Speedup {
		t.Errorf("plug-in predicted %v, measured %v", predicted, measured[0].Speedup)
	}
}
