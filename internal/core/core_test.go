package core

import (
	"math"
	"testing"
	"testing/quick"

	"lasvegas/internal/dist"
	"lasvegas/internal/xrand"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol*(1+math.Abs(want)) {
		t.Fatalf("%s: got %.10g, want %.10g", msg, got, want)
	}
}

// TestPaperTable5AI700 reproduces the paper's predicted speed-up row
// for ALL-INTERVAL 700 from the paper's fitted parameters
// (x0 = 1217, λ = 9.15956e-6): 13.7, 23.8, 37.8, 53.3, 67.2.
func TestPaperTable5AI700(t *testing.T) {
	d, err := dist.NewShiftedExponential(1217, 9.15956e-6)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(d)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{16: 13.7, 32: 23.8, 64: 37.8, 128: 53.3, 256: 67.2}
	for n, w := range want {
		g, err := p.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, g, w, 0.005, "AI 700 speed-up")
	}
	// §6.1: the limit of the speed-up is 90.7087.
	approx(t, p.Limit(), 90.7087, 1e-4, "AI 700 limit")
}

// TestPaperTable5MS200 reproduces the predicted row for MAGIC-SQUARE
// 200 from the paper's fitted shifted lognormal (x0 = 6210,
// μ = 12.0275, σ = 1.3398): 15.94, 22.04, 28.28, 34.26, 39.7.
func TestPaperTable5MS200(t *testing.T) {
	d, err := dist.NewLogNormal(6210, 12.0275, 1.3398)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(d)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{16: 15.94, 32: 22.04, 64: 28.28, 128: 34.26, 256: 39.7}
	for n, w := range want {
		g, err := p.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, g, w, 0.002, "MS 200 speed-up")
	}
}

// TestPaperTable5Costas21 reproduces the exactly linear predicted row
// for COSTAS 21 (unshifted exponential).
func TestPaperTable5Costas21(t *testing.T) {
	d, err := dist.NewExponential(5.4e-9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range append(StandardCores, 512, 8192) {
		g, err := p.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, g, float64(n), 1e-9, "Costas linear speed-up")
	}
	if !p.Linear() {
		t.Error("unshifted exponential should report Linear()")
	}
	if !math.IsInf(p.Limit(), 1) {
		t.Error("x0=0 limit should be +Inf")
	}
}

func TestSpeedupAtOneCore(t *testing.T) {
	d, _ := dist.NewLogNormal(10, 3, 1)
	p, _ := NewPredictor(d)
	g, err := p.Speedup(1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, g, 1, 1e-12, "G(1) = 1")
}

func TestSpeedupMonotoneProperty(t *testing.T) {
	d, _ := dist.NewShiftedExponential(100, 1e-3)
	p, _ := NewPredictor(d)
	f := func(aRaw, bRaw uint16) bool {
		a := int(aRaw%2000) + 1
		b := int(bRaw%2000) + 1
		if a > b {
			a, b = b, a
		}
		ga, err1 := p.Speedup(a)
		gb, err2 := p.Speedup(b)
		return err1 == nil && err2 == nil && ga <= gb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSpeedupBoundedByCores(t *testing.T) {
	// For any x0 > 0, G(n) < n strictly (sub-linear case).
	d, _ := dist.NewShiftedExponential(500, 1e-4)
	p, _ := NewPredictor(d)
	for _, n := range []int{2, 16, 256, 4096} {
		g, err := p.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		if g >= float64(n) {
			t.Errorf("G(%d) = %v ≥ n for shifted law", n, g)
		}
	}
}

func TestTangentAtOrigin(t *testing.T) {
	// §3.3: tangent = x0·λ + 1.
	d, _ := dist.NewShiftedExponential(100, 1.0/1000)
	p, _ := NewPredictor(d)
	approx(t, p.TangentAtOrigin(), 1.1, 1e-12, "exponential tangent")

	// Generic path (lognormal) should give a positive finite slope.
	ln, _ := dist.NewLogNormal(0, 5, 1)
	pl, _ := NewPredictor(ln)
	tan := pl.TangentAtOrigin()
	if !(tan > 0) || math.IsInf(tan, 0) {
		t.Errorf("lognormal tangent %v", tan)
	}
}

func TestLimitShiftedLognormal(t *testing.T) {
	// §6.2: MS 200 limit ≈ E[Y]/x0 ≈ 67 ("about 71.5" with the paper's
	// own rounding of E[Y]; we verify our own identity instead).
	d, _ := dist.NewLogNormal(6210, 12.0275, 1.3398)
	p, _ := NewPredictor(d)
	approx(t, p.Limit(), p.SequentialMean()/6210, 1e-12, "limit identity")
}

func TestEmpiricalPredictorPlugIn(t *testing.T) {
	// Plug-in prediction from raw samples of a known exponential must
	// approach the analytic speed-up.
	truth, _ := dist.NewShiftedExponential(100, 1e-3)
	r := xrand.New(42)
	sample := dist.SampleN(truth, r, 5000)
	pe, err := NewEmpirical(sample)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := NewPredictor(truth)
	for _, n := range []int{2, 16, 64} {
		ge, err := pe.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		ga, _ := pa.Speedup(n)
		if math.Abs(ge-ga) > 0.12*ga {
			t.Errorf("n=%d: plug-in %v vs analytic %v", n, ge, ga)
		}
	}
}

func TestParallelMeanClosedForm(t *testing.T) {
	d, _ := dist.NewShiftedExponential(100, 1.0/1000)
	p, _ := NewPredictor(d)
	for _, n := range []int{1, 2, 8, 64} {
		got, err := p.ParallelMean(n)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, got, 100+1000/float64(n), 1e-12, "E[Z(n)] closed form")
	}
}

func TestMinDistClosedFormFamilies(t *testing.T) {
	se, _ := dist.NewShiftedExponential(10, 0.1)
	p, _ := NewPredictor(se)
	md, err := p.MinDist(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := md.(dist.ShiftedExponential); !ok {
		t.Errorf("exponential MinDist is %T, want closed form", md)
	}

	wb, _ := dist.NewWeibull(2, 5)
	pw, _ := NewPredictor(wb)
	mdw, err := pw.MinDist(9)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mdw.(dist.Weibull); !ok {
		t.Errorf("weibull MinDist is %T, want closed form", mdw)
	}

	ln, _ := dist.NewLogNormal(0, 1, 1)
	pl, _ := NewPredictor(ln)
	mdl, err := pl.MinDist(3)
	if err != nil {
		t.Fatal(err)
	}
	// Generic min: CDF identity check.
	want := 1 - math.Pow(1-ln.CDF(3), 3)
	approx(t, mdl.CDF(3), want, 1e-10, "generic MinDist CDF")
}

func TestEfficiencyDecreases(t *testing.T) {
	d, _ := dist.NewShiftedExponential(100, 1e-3)
	p, _ := NewPredictor(d)
	prev := 2.0
	for _, n := range []int{1, 4, 16, 64, 256} {
		e, err := p.Efficiency(n)
		if err != nil {
			t.Fatal(err)
		}
		if e > prev+1e-12 {
			t.Errorf("efficiency increased at n=%d", n)
		}
		if e <= 0 || e > 1+1e-12 {
			t.Errorf("efficiency out of range at n=%d: %v", n, e)
		}
		prev = e
	}
}

func TestCoresForSpeedup(t *testing.T) {
	d, _ := dist.NewShiftedExponential(1217, 9.15956e-6)
	p, _ := NewPredictor(d)
	n, err := p.CoresForSpeedup(50)
	if err != nil {
		t.Fatal(err)
	}
	gPrev, _ := p.Speedup(n - 1)
	gAt, _ := p.Speedup(n)
	if gAt < 50 || gPrev >= 50 {
		t.Errorf("CoresForSpeedup(50) = %d (G(n-1)=%v, G(n)=%v)", n, gPrev, gAt)
	}
	// Target beyond the limit (90.7) must fail.
	if _, err := p.CoresForSpeedup(95); err == nil {
		t.Error("target beyond the limit accepted")
	}
	// Trivial target.
	if n, _ := p.CoresForSpeedup(1); n != 1 {
		t.Error("target 1 should need 1 core")
	}
}

func TestCurve(t *testing.T) {
	d, _ := dist.NewExponential(1)
	p, _ := NewPredictor(d)
	pts, err := p.Curve([]int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[2].Cores != 4 {
		t.Fatalf("curve %+v", pts)
	}
	approx(t, pts[2].Speedup, 4, 1e-9, "linear curve point")
}

func TestPredictorRejectsInfiniteMean(t *testing.T) {
	levy, _ := dist.NewLevy(0, 1)
	if _, err := NewPredictor(levy); err == nil {
		t.Error("Lévy (infinite mean) accepted by predictor")
	}
	if _, err := NewPredictor(nil); err == nil {
		t.Error("nil distribution accepted")
	}
}

func TestPredictorRejectsBadCores(t *testing.T) {
	d, _ := dist.NewExponential(1)
	p, _ := NewPredictor(d)
	if _, err := p.Speedup(0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := p.ParallelMean(-3); err == nil {
		t.Error("negative cores accepted")
	}
}

func TestNewEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("empty sample accepted")
	}
}
