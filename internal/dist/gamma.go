package dist

import (
	"fmt"
	"math"

	"lasvegas/internal/specfn"
	"lasvegas/internal/xrand"
)

// Gamma is the gamma law with shape/rate parameterization,
//
//	PDF(x) = Rate^Shape · x^{Shape-1} · e^{-Rate·x} / Γ(Shape),
//
// one of the extra candidate families the auto-fitter can rank
// against the paper's three.
type Gamma struct {
	Shape float64 // k > 0
	Rate  float64 // β > 0
}

// NewGamma validates k > 0 and β > 0.
func NewGamma(shape, rate float64) (Gamma, error) {
	if !(shape > 0) || math.IsInf(shape, 0) {
		return Gamma{}, fmt.Errorf("%w: shape k=%v", ErrParam, shape)
	}
	if !(rate > 0) || math.IsInf(rate, 0) {
		return Gamma{}, fmt.Errorf("%w: rate β=%v", ErrParam, rate)
	}
	return Gamma{Shape: shape, Rate: rate}, nil
}

// CDF implements Dist via the regularized lower incomplete gamma.
func (d Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return specfn.GammaP(d.Shape, d.Rate*x)
}

// PDF implements Dist (log-space to avoid overflow at large shapes).
func (d Gamma) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case d.Shape < 1:
			return math.Inf(1)
		case d.Shape == 1:
			return d.Rate
		default:
			return 0
		}
	}
	lg, _ := math.Lgamma(d.Shape)
	return math.Exp(d.Shape*math.Log(d.Rate) + (d.Shape-1)*math.Log(x) - d.Rate*x - lg)
}

// Quantile implements Dist by numeric inversion (Wilson–Hilferty
// bracket + bisection/Newton); gamma has no closed-form quantile.
func (d Gamma) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Wilson–Hilferty approximation centers the bracket.
	z := specfn.NormQuantile(p)
	k := d.Shape
	wh := k * math.Pow(1-1/(9*k)+z/(3*math.Sqrt(k)), 3) / d.Rate
	if !(wh > 0) {
		wh = k / d.Rate
	}
	lo, hi := 0.0, wh
	for d.CDF(hi) < p {
		hi *= 2
		if math.IsInf(hi, 1) {
			return math.Inf(1)
		}
	}
	return quantileByInversion(d.CDF, d.PDF, p, lo, hi)
}

// Mean implements Dist: k/β.
func (d Gamma) Mean() float64 { return d.Shape / d.Rate }

// Var implements Dist: k/β².
func (d Gamma) Var() float64 { return d.Shape / (d.Rate * d.Rate) }

// Sample implements Dist with the Marsaglia–Tsang squeeze method.
func (d Gamma) Sample(r *xrand.Rand) float64 {
	return sampleGamma(r, d.Shape) / d.Rate
}

// sampleGamma draws a standard (rate-1) gamma variate with shape k.
func sampleGamma(r *xrand.Rand, k float64) float64 {
	if k < 1 {
		// Boost: G(k) = G(k+1)·U^{1/k}.
		return sampleGamma(r, k+1) * math.Pow(r.Float64Open(), 1/k)
	}
	dd := k - 1.0/3
	c := 1 / math.Sqrt(9*dd)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return dd * v
		}
		if math.Log(u) < 0.5*x*x+dd*(1-v+math.Log(v)) {
			return dd * v
		}
	}
}

// Support implements Dist.
func (d Gamma) Support() (float64, float64) { return 0, math.Inf(1) }

// String implements Dist.
func (d Gamma) String() string {
	return fmt.Sprintf("Gamma(k=%.6g, rate=%.6g)", d.Shape, d.Rate)
}
