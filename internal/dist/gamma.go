package dist

import (
	"fmt"
	"math"

	"lasvegas/internal/specfn"
	"lasvegas/internal/xrand"
)

// Gamma is the gamma law with shape/rate parameterization,
//
//	PDF(x) = Rate^Shape · x^{Shape-1} · e^{-Rate·x} / Γ(Shape),
//
// one of the extra candidate families the auto-fitter can rank
// against the paper's three.
type Gamma struct {
	Shape float64 // k > 0
	Rate  float64 // β > 0
}

// NewGamma validates k > 0 and β > 0.
func NewGamma(shape, rate float64) (Gamma, error) {
	if !(shape > 0) || math.IsInf(shape, 0) {
		return Gamma{}, fmt.Errorf("%w: shape k=%v", ErrParam, shape)
	}
	if !(rate > 0) || math.IsInf(rate, 0) {
		return Gamma{}, fmt.Errorf("%w: rate β=%v", ErrParam, rate)
	}
	return Gamma{Shape: shape, Rate: rate}, nil
}

// CDF implements Dist via the regularized lower incomplete gamma.
func (d Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return specfn.GammaP(d.Shape, d.Rate*x)
}

// PDF implements Dist (log-space to avoid overflow at large shapes).
func (d Gamma) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case d.Shape < 1:
			return math.Inf(1)
		case d.Shape == 1:
			return d.Rate
		default:
			return 0
		}
	}
	lg, _ := math.Lgamma(d.Shape)
	return math.Exp(d.Shape*math.Log(d.Rate) + (d.Shape-1)*math.Log(x) - d.Rate*x - lg)
}

// Quantile implements Dist. The gamma quantile has no closed form,
// but the Wilson–Hilferty cube-root normal approximation (the
// Cornish–Fisher-style normal-score transform of the family) lands
// within a few percent of the answer, so a safeguarded Newton polish
// reaches full precision in a handful of CDF/PDF evaluations — the
// former ~200-step bisection is gone.
func (d Gamma) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return d.quantileNewton(p)
}

// QuantileBatch implements BatchQuantiler with the same Newton
// inversion per point, making the quantile-domain order-statistic
// quadrature of internal/orderstat run batched for gamma bases like
// it already does for the exponential family and the lognormal.
// Batched and pointwise evaluation are bit-identical.
func (d Gamma) QuantileBatch(ps, dst []float64) {
	for i, p := range ps {
		switch {
		case p <= 0:
			dst[i] = 0
		case p >= 1:
			dst[i] = math.Inf(1)
		default:
			dst[i] = d.quantileNewton(p)
		}
	}
}

// quantileNewton inverts the CDF at p ∈ (0,1): Wilson–Hilferty first
// guess, then Newton steps safeguarded by the bracket the CDF
// evaluations themselves establish (a step leaving the bracket
// becomes a bisection, so convergence is unconditional).
func (d Gamma) quantileNewton(p float64) float64 {
	k := d.Shape
	// Wilson–Hilferty: (X/k)^⅓ ≈ Normal(1 − 1/(9k), 1/(9k)).
	z := specfn.NormQuantile(p)
	t := 1 - 1/(9*k) + z/(3*math.Sqrt(k))
	x := k * t * t * t / d.Rate
	if !(x > 0) {
		// Small-shape / far-left tail: invert the power series
		// F(x) ≈ (rate·x)^k / Γ(k+1) near the origin instead.
		lg, _ := math.Lgamma(k + 1)
		x = math.Exp((math.Log(p)+lg)/k) / d.Rate
		if !(x > 0) {
			x = k / d.Rate * 1e-8
		}
	}
	lo, hi := 0.0, math.Inf(1)
	for i := 0; i < 64; i++ {
		f := d.CDF(x) - p
		if f == 0 {
			break
		}
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		w := d.PDF(x)
		next := math.NaN()
		if w > 0 && !math.IsInf(w, 0) {
			next = x - f/w
		}
		if !(next > lo && next < hi) {
			if math.IsInf(hi, 1) {
				next = x * 2 // expand until the root is bracketed above
			} else {
				next = 0.5 * (lo + hi)
			}
		}
		if math.Abs(next-x) <= 4e-16*next {
			x = next
			break
		}
		x = next
	}
	return x
}

// Mean implements Dist: k/β.
func (d Gamma) Mean() float64 { return d.Shape / d.Rate }

// Var implements Dist: k/β².
func (d Gamma) Var() float64 { return d.Shape / (d.Rate * d.Rate) }

// Sample implements Dist with the Marsaglia–Tsang squeeze method.
func (d Gamma) Sample(r *xrand.Rand) float64 {
	return sampleGamma(r, d.Shape) / d.Rate
}

// sampleGamma draws a standard (rate-1) gamma variate with shape k.
func sampleGamma(r *xrand.Rand, k float64) float64 {
	if k < 1 {
		// Boost: G(k) = G(k+1)·U^{1/k}.
		return sampleGamma(r, k+1) * math.Pow(r.Float64Open(), 1/k)
	}
	dd := k - 1.0/3
	c := 1 / math.Sqrt(9*dd)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return dd * v
		}
		if math.Log(u) < 0.5*x*x+dd*(1-v+math.Log(v)) {
			return dd * v
		}
	}
}

// Support implements Dist.
func (d Gamma) Support() (float64, float64) { return 0, math.Inf(1) }

// String implements Dist.
func (d Gamma) String() string {
	return fmt.Sprintf("Gamma(k=%.6g, rate=%.6g)", d.Shape, d.Rate)
}
