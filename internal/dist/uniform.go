package dist

import (
	"fmt"
	"math"

	"lasvegas/internal/xrand"
)

// Uniform is the continuous uniform law on [Lo, Hi]; its order
// statistics have textbook closed forms, making it the reference
// family for validating the order-statistic layer.
type Uniform struct {
	Lo, Hi float64
}

// NewUniform validates Lo < Hi.
func NewUniform(lo, hi float64) (Uniform, error) {
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) || !(lo < hi) {
		return Uniform{}, fmt.Errorf("%w: uniform on [%v, %v]", ErrParam, lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

// CDF implements Dist.
func (d Uniform) CDF(x float64) float64 {
	switch {
	case x <= d.Lo:
		return 0
	case x >= d.Hi:
		return 1
	}
	return (x - d.Lo) / (d.Hi - d.Lo)
}

// PDF implements Dist.
func (d Uniform) PDF(x float64) float64 {
	if x < d.Lo || x > d.Hi {
		return 0
	}
	return 1 / (d.Hi - d.Lo)
}

// Quantile implements Dist.
func (d Uniform) Quantile(p float64) float64 {
	if p <= 0 {
		return d.Lo
	}
	if p >= 1 {
		return d.Hi
	}
	return d.Lo + p*(d.Hi-d.Lo)
}

// Mean implements Dist.
func (d Uniform) Mean() float64 { return 0.5 * (d.Lo + d.Hi) }

// Var implements Dist: (Hi-Lo)²/12.
func (d Uniform) Var() float64 {
	w := d.Hi - d.Lo
	return w * w / 12
}

// Sample implements Dist.
func (d Uniform) Sample(r *xrand.Rand) float64 {
	return d.Lo + r.Float64()*(d.Hi-d.Lo)
}

// Support implements Dist.
func (d Uniform) Support() (float64, float64) { return d.Lo, d.Hi }

// String implements Dist.
func (d Uniform) String() string {
	return fmt.Sprintf("Uniform(%.6g, %.6g)", d.Lo, d.Hi)
}
