package dist

import (
	"fmt"
	"math"
	"sort"

	"lasvegas/internal/xrand"
)

// Empirical is the nonparametric distribution of an observed runtime
// sample — the "plug-in" alternative to fitting a family (§6): all
// probability mass sits on the observations, 1/m each.
//
// The backing array is sorted once at construction and never mutated,
// which buys three O(log m)-or-better hot paths:
//
//   - CDF is a binary search;
//   - Quantile is a single index computation on the sorted array
//     (O(1)), which makes the min-sampling identity
//     Z(n) = Q(1-(1-U)^{1/n}) an O(1) draw — the engine behind
//     multiwalk.Simulate at 8192 cores;
//   - MinExpectation evaluates E[min of n draws] exactly in one O(m)
//     pass instead of Monte Carlo.
//
// An Empirical is read-only after construction and safe for
// concurrent use.
type Empirical struct {
	sorted []float64 // ascending copy of the sample
	mean   float64
	vr     float64 // population variance
}

// NewEmpirical copies and sorts the sample; it fails on empty samples
// and non-finite observations.
func NewEmpirical(sample []float64) (*Empirical, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("%w: empty sample", ErrParam)
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	for _, x := range sorted {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("%w: non-finite observation %v", ErrParam, x)
		}
	}
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))
	var m2 float64
	for _, x := range sorted {
		d := x - mean
		m2 += d * d
	}
	return &Empirical{sorted: sorted, mean: mean, vr: m2 / float64(len(sorted))}, nil
}

// Len returns the sample size m.
func (e *Empirical) Len() int { return len(e.sorted) }

// Sorted returns the sorted backing array; callers must not mutate it.
func (e *Empirical) Sorted() []float64 { return e.sorted }

// CDF implements Dist: the fraction of observations <= x, by binary
// search on the sorted backing array.
func (e *Empirical) CDF(x float64) float64 {
	// First index with sorted[i] > x == count of observations <= x.
	n := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(n) / float64(len(e.sorted))
}

// PDF implements Dist with a central finite difference of the ECDF —
// a crude density estimate, sufficient for plotting; the model itself
// only consumes the empirical CDF, quantile and min-expectation.
func (e *Empirical) PDF(x float64) float64 {
	lo, hi := e.sorted[0], e.sorted[len(e.sorted)-1]
	span := hi - lo
	if span == 0 {
		if x == lo {
			return math.Inf(1)
		}
		return 0
	}
	h := span / math.Sqrt(float64(len(e.sorted)))
	return (e.CDF(x+h) - e.CDF(x-h)) / (2 * h)
}

// Quantile implements Dist: the inverse ECDF Q(p) = x_(⌈p·m⌉),
// computed in O(1) on the sorted array.
func (e *Empirical) Quantile(p float64) float64 {
	m := len(e.sorted)
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[m-1]
	}
	idx := int(math.Ceil(p*float64(m))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= m {
		idx = m - 1
	}
	return e.sorted[idx]
}

// Mean implements Dist (precomputed).
func (e *Empirical) Mean() float64 { return e.mean }

// Var implements Dist (precomputed population variance).
func (e *Empirical) Var() float64 { return e.vr }

// Sample implements Dist: a uniform draw over the observations.
func (e *Empirical) Sample(r *xrand.Rand) float64 {
	return e.sorted[r.Intn(len(e.sorted))]
}

// Support implements Dist.
func (e *Empirical) Support() (float64, float64) {
	return e.sorted[0], e.sorted[len(e.sorted)-1]
}

// String implements Dist.
func (e *Empirical) String() string {
	return fmt.Sprintf("Empirical(m=%d, mean=%.6g)", len(e.sorted), e.mean)
}

// MinExpectation returns the exact expectation of the minimum of n
// i.i.d. draws from the empirical distribution,
//
//	E[Z(n)] = Σᵢ x₍ᵢ₎ · [ ((m-i+1)/m)ⁿ − ((m-i)/m)ⁿ ],
//
// in one O(m) pass — the plug-in predictor's closed form, replacing
// both quadrature and Monte Carlo. It is numerically exact for any n
// (the survival powers only ever shrink).
func (e *Empirical) MinExpectation(n int) float64 {
	m := len(e.sorted)
	if n <= 1 {
		return e.mean
	}
	mf := float64(m)
	nf := float64(n)
	var sum float64
	hi := 1.0 // ((m-i)/m)^n at i = 0
	for i := 0; i < m; i++ {
		lo := math.Pow((mf-float64(i)-1)/mf, nf)
		sum += e.sorted[i] * (hi - lo)
		hi = lo
	}
	return sum
}

// TruncatedMean returns E[min(Y, c)] exactly in one O(m) pass — the
// expected cost of one run under a restart cutoff c, which is what
// makes restart-policy pricing on the plug-in law exact instead of
// quadrature over a step CDF.
func (e *Empirical) TruncatedMean(c float64) float64 {
	var sum float64
	for _, x := range e.sorted {
		if x > c {
			sum += c
			continue
		}
		sum += x
	}
	return sum / float64(len(e.sorted))
}

// MinSample draws one realization of min(X₁..Xₙ) by the inverse-CDF
// identity Z(n) = Q(1-(1-U)^{1/n}) — an O(1) draw on the sorted
// array, distribution-identical to taking the minimum of n resamples.
func (e *Empirical) MinSample(n int, r *xrand.Rand) float64 {
	u := r.Float64Open()
	v := -math.Expm1(math.Log1p(-u) / float64(n))
	return e.Quantile(v)
}
