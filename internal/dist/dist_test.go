package dist_test

import (
	"errors"
	"math"
	"testing"

	"lasvegas/internal/dist"
	"lasvegas/internal/quad"
	"lasvegas/internal/xrand"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol*(1+math.Abs(want)) {
		t.Fatalf("%s: got %.12g, want %.12g", msg, got, want)
	}
}

// laws is the cross-check table: every family with finite mean and
// variance, at parameters spanning the paper's regimes.
func laws(t *testing.T) map[string]dist.Dist {
	t.Helper()
	mk := func(d dist.Dist, err error) dist.Dist {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	return map[string]dist.Dist{
		"exponential":     mk(dist.NewExponential(1.0 / 1000)),
		"shifted-exp":     mk(dist.NewShiftedExponential(1217, 9.15956e-6)),
		"lognormal":       mk(dist.NewLogNormal(0, 5, 1)),
		"shifted-lognorm": mk(dist.NewLogNormal(6210, 12.0275, 1.3398)),
		"normal":          mk(dist.NewNormal(30, 10)),
		"trunc-normal":    mk(dist.NewTruncatedNormal(30, 10, 0)),
		"gamma":           mk(dist.NewGamma(2.5, 0.4)),
		"weibull":         mk(dist.NewWeibull(1.8, 50)),
		"uniform":         mk(dist.NewUniform(2, 7)),
		"beta":            mk(dist.NewBeta(2, 5, 0, 1)),
	}
}

// TestMeanVarAgainstQuadrature integrates x·f and x²·f numerically
// over the support and compares with the closed forms.
func TestMeanVarAgainstQuadrature(t *testing.T) {
	for name, d := range laws(t) {
		lo, hi := d.Support()
		if math.IsInf(lo, -1) {
			lo = d.Quantile(1e-13)
		}
		moment := func(p float64) float64 {
			f := func(x float64) float64 { return math.Pow(x, p) * d.PDF(x) }
			var v float64
			var err error
			if math.IsInf(hi, 1) {
				v, err = quad.ToInfinity(f, lo, 1e-12)
			} else {
				v, err = quad.TanhSinh(f, lo, hi, 1e-12)
			}
			if err != nil {
				t.Fatalf("%s: moment %v: %v", name, p, err)
			}
			return v
		}
		m1 := moment(1)
		m2 := moment(2)
		approx(t, d.Mean(), m1, 1e-6, name+" mean vs ∫x·f")
		approx(t, d.Var(), m2-m1*m1, 1e-5, name+" var vs ∫x²·f - mean²")
	}
}

// TestQuantileCDFRoundTrip checks Q(CDF) and CDF(Q) across the body
// of each law.
func TestQuantileCDFRoundTrip(t *testing.T) {
	for name, d := range laws(t) {
		for p := 0.01; p < 1; p += 0.0495 {
			x := d.Quantile(p)
			approx(t, d.CDF(x), p, 1e-8, name+" CDF(Q(p))")
		}
	}
}

// TestPDFIsDerivativeOfCDF compares the analytic density against a
// central difference of the CDF at a few interior points.
func TestPDFIsDerivativeOfCDF(t *testing.T) {
	for name, d := range laws(t) {
		for _, p := range []float64{0.2, 0.5, 0.8} {
			x := d.Quantile(p)
			h := 1e-5 * (1 + math.Abs(x))
			numeric := (d.CDF(x+h) - d.CDF(x-h)) / (2 * h)
			approx(t, d.PDF(x), numeric, 1e-4, name+" PDF vs dCDF")
		}
	}
}

// TestSampleMatchesMoments Monte-Carlo validates every sampler
// against the closed-form mean and variance.
func TestSampleMatchesMoments(t *testing.T) {
	const trials = 200000
	for name, d := range laws(t) {
		// Per-law stream: map iteration order is random, so sharing one
		// stream across laws made the heavy-tailed variance checks flaky.
		r := xrand.New(123)
		var sum, sum2 float64
		for i := 0; i < trials; i++ {
			x := d.Sample(r)
			sum += x
			sum2 += x * x
		}
		mean := sum / trials
		vr := sum2/trials - mean*mean
		approx(t, mean, d.Mean(), 0.02, name+" MC mean")
		approx(t, vr, d.Var(), 0.08, name+" MC variance")
	}
}

// TestSampleMatchesCDF validates the samplers in distribution, not
// just in moments: the empirical CDF of a large sample must track the
// analytic CDF at the quartiles.
func TestSampleMatchesCDF(t *testing.T) {
	const trials = 100000
	for name, d := range laws(t) {
		r := xrand.New(321) // per-law stream, independent of map order
		for _, p := range []float64{0.25, 0.5, 0.75} {
			x := d.Quantile(p)
			count := 0
			for i := 0; i < trials; i++ {
				if d.Sample(r) <= x {
					count++
				}
			}
			approx(t, float64(count)/trials, p, 0.02, name+" empirical CDF at Q("+fmtP(p)+")")
		}
	}
}

func fmtP(p float64) string {
	switch p {
	case 0.25:
		return "0.25"
	case 0.5:
		return "0.5"
	}
	return "0.75"
}

// TestShiftedExponentialMinStability: MinDist must be the exact law
// of the minimum — validated against the generic identity on the CDF
// and the paper's closed-form mean.
func TestShiftedExponentialMinStability(t *testing.T) {
	d, _ := dist.NewShiftedExponential(100, 1e-3)
	for _, n := range []int{2, 16, 256, 8192} {
		m := d.MinDist(n)
		approx(t, m.Mean(), 100+1000/float64(n), 1e-12, "min mean closed form")
		for _, x := range []float64{150, 400, 2000} {
			want := 1 - math.Pow(1-d.CDF(x), float64(n))
			approx(t, m.CDF(x), want, 1e-9, "min CDF identity")
		}
	}
}

// TestWeibullMinStability mirrors the exponential check.
func TestWeibullMinStability(t *testing.T) {
	d, _ := dist.NewWeibull(1.8, 50)
	for _, n := range []int{2, 9, 100} {
		m := d.MinDist(n)
		for _, x := range []float64{5, 20, 60} {
			want := 1 - math.Pow(1-d.CDF(x), float64(n))
			approx(t, m.CDF(x), want, 1e-9, "weibull min CDF identity")
		}
	}
}

// TestLevyHasInfiniteMoments: the family the predictor must reject.
func TestLevyHasInfiniteMoments(t *testing.T) {
	d, _ := dist.NewLevy(10, 3)
	if !math.IsInf(d.Mean(), 1) || !math.IsInf(d.Var(), 1) {
		t.Errorf("Lévy moments: mean %v var %v", d.Mean(), d.Var())
	}
	// CDF/Quantile still behave.
	for p := 0.05; p < 1; p += 0.1 {
		approx(t, d.CDF(d.Quantile(p)), p, 1e-9, "levy round trip")
	}
	// MC median vs analytic median (the mean does not exist).
	r := xrand.New(9)
	const trials = 60000
	count := 0
	med := d.Quantile(0.5)
	for i := 0; i < trials; i++ {
		if d.Sample(r) <= med {
			count++
		}
	}
	approx(t, float64(count)/trials, 0.5, 0.02, "levy sampler median")
}

// TestEmpiricalExactness: CDF/Quantile/moments of the plug-in
// distribution against hand-computed values, plus the one-pass
// MinExpectation against brute-force enumeration over index tuples
// (via Monte Carlo with a tight budget — the sample is tiny).
func TestEmpiricalExactness(t *testing.T) {
	sample := []float64{100, 200, 400, 800, 1600, 3200}
	e, err := dist.NewEmpirical(sample)
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 6 {
		t.Fatalf("Len %d", e.Len())
	}
	approx(t, e.Mean(), 1050, 1e-12, "empirical mean")
	approx(t, e.CDF(99), 0, 1e-12, "CDF below support")
	approx(t, e.CDF(100), 1.0/6, 1e-12, "CDF at first atom")
	approx(t, e.CDF(250), 2.0/6, 1e-12, "CDF between atoms")
	approx(t, e.CDF(3200), 1, 1e-12, "CDF at max")
	if q := e.Quantile(0.5); q != 400 {
		t.Errorf("median %v, want 400", q)
	}
	if q := e.Quantile(1.0 / 6); q != 100 {
		t.Errorf("Q(1/6) = %v, want 100", q)
	}
	// MinExpectation n=4 against the explicit atom-mass formula.
	m := 6.0
	var want float64
	for i, x := range sample {
		hi := math.Pow((m-float64(i))/m, 4)
		lo := math.Pow((m-float64(i)-1)/m, 4)
		want += x * (hi - lo)
	}
	approx(t, e.MinExpectation(4), want, 1e-12, "MinExpectation n=4")
	approx(t, e.MinExpectation(1), e.Mean(), 1e-12, "MinExpectation n=1")
	// MinSample agrees with MinExpectation in the mean.
	r := xrand.New(5)
	const trials = 120000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += e.MinSample(4, r)
	}
	approx(t, sum/trials, want, 0.02, "MinSample vs MinExpectation")
}

// TestEmpiricalTies: atoms with multiplicity keep CDF and
// MinExpectation exact.
func TestEmpiricalTies(t *testing.T) {
	e, err := dist.NewEmpirical([]float64{5, 5, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, e.CDF(5), 0.75, 1e-12, "tied CDF")
	// min of 2: P(both are 10) = 1/16 → E = 5·15/16 + 10/16.
	approx(t, e.MinExpectation(2), 5*15.0/16+10.0/16, 1e-12, "tied MinExpectation")
}

// TestValidationRejectsBadParameters sweeps every constructor.
func TestValidationRejectsBadParameters(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"exp rate 0", errOf(dist.NewExponential(0))},
		{"exp rate -1", errOf(dist.NewExponential(-1))},
		{"shifted-exp neg shift", errOf(dist.NewShiftedExponential(-1, 1))},
		{"lognormal sigma 0", errOf(dist.NewLogNormal(0, 1, 0))},
		{"lognormal neg shift", errOf(dist.NewLogNormal(-5, 1, 1))},
		{"normal sigma 0", errOf(dist.NewNormal(0, 0))},
		{"gamma shape 0", errOf(dist.NewGamma(0, 1))},
		{"gamma rate 0", errOf(dist.NewGamma(1, 0))},
		{"weibull shape 0", errOf(dist.NewWeibull(0, 1))},
		{"levy scale 0", errOf(dist.NewLevy(0, 0))},
		{"uniform empty", errOf(dist.NewUniform(3, 3))},
		{"uniform inverted", errOf(dist.NewUniform(5, 2))},
		{"beta alpha 0", errOf(dist.NewBeta(0, 1, 0, 1))},
		{"trunc-normal all mass cut", errOf(dist.NewTruncatedNormal(0, 1, 1e9))},
		{"empirical empty", errOf2(dist.NewEmpirical(nil))},
		{"empirical NaN", errOf2(dist.NewEmpirical([]float64{1, math.NaN()}))},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !errors.Is(c.err, dist.ErrParam) {
			t.Errorf("%s: error %v does not wrap ErrParam", c.name, c.err)
		}
	}
}

func errOf[D dist.Dist](_ D, err error) error   { return err }
func errOf2(_ *dist.Empirical, err error) error { return err }

// TestSampleN draws the requested count.
func TestSampleN(t *testing.T) {
	d, _ := dist.NewExponential(1)
	xs := dist.SampleN(d, xrand.New(1), 37)
	if len(xs) != 37 {
		t.Fatalf("SampleN returned %d draws", len(xs))
	}
	for _, x := range xs {
		if !(x > 0) {
			t.Fatalf("non-positive exponential draw %v", x)
		}
	}
}

// TestStringsNonEmpty: every law renders its parameters.
func TestStringsNonEmpty(t *testing.T) {
	for name, d := range laws(t) {
		if d.String() == "" {
			t.Errorf("%s: empty String()", name)
		}
	}
	e, _ := dist.NewEmpirical([]float64{1, 2})
	if e.String() == "" {
		t.Error("empirical: empty String()")
	}
}

// BenchmarkQuantileHotPath times the quantile evaluations the
// order-statistic integrals hammer.
func BenchmarkQuantileHotPath(b *testing.B) {
	se, _ := dist.NewShiftedExponential(1217, 9.15956e-6)
	ln, _ := dist.NewLogNormal(6210, 12.0275, 1.3398)
	b.Run("shifted-exp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = se.Quantile(float64(i%1000)/1000 + 0.0005)
		}
	})
	b.Run("lognormal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = ln.Quantile(float64(i%1000)/1000 + 0.0005)
		}
	})
}

// BenchmarkEmpiricalMinExpectation times the plug-in closed form on a
// paper-sized sample across the paper's core grid.
func BenchmarkEmpiricalMinExpectation(b *testing.B) {
	d, _ := dist.NewShiftedExponential(1217, 9.15956e-6)
	e, err := dist.NewEmpirical(dist.SampleN(d, xrand.New(1), 650))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{16, 32, 64, 128, 256} {
			_ = e.MinExpectation(n)
		}
	}
}
