package dist

import (
	"fmt"
	"math"

	"lasvegas/internal/specfn"
	"lasvegas/internal/xrand"
)

// Beta is the beta law B(Alpha, BetaP) affinely mapped onto [Lo, Hi].
// Its role here is structural: the k-th of n uniform order statistics
// is Beta(k, n-k+1), so internal/orderstat samples arbitrary order
// statistics by pushing a beta draw through the base quantile.
type Beta struct {
	Alpha float64 // α > 0
	BetaP float64 // β > 0 (named to avoid clashing with the type)
	Lo    float64
	Hi    float64
}

// NewBeta validates α, β > 0 and Lo < Hi.
func NewBeta(alpha, betaP, lo, hi float64) (Beta, error) {
	if !(alpha > 0) || !(betaP > 0) || math.IsInf(alpha, 0) || math.IsInf(betaP, 0) {
		return Beta{}, fmt.Errorf("%w: Beta(α=%v, β=%v)", ErrParam, alpha, betaP)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || !(lo < hi) {
		return Beta{}, fmt.Errorf("%w: beta on [%v, %v]", ErrParam, lo, hi)
	}
	return Beta{Alpha: alpha, BetaP: betaP, Lo: lo, Hi: hi}, nil
}

// unit maps x into the unit interval.
func (d Beta) unit(x float64) float64 { return (x - d.Lo) / (d.Hi - d.Lo) }

// CDF implements Dist via the regularized incomplete beta.
func (d Beta) CDF(x float64) float64 {
	u := d.unit(x)
	if u <= 0 {
		return 0
	}
	if u >= 1 {
		return 1
	}
	return specfn.BetaInc(d.Alpha, d.BetaP, u)
}

// PDF implements Dist (log-space).
func (d Beta) PDF(x float64) float64 {
	u := d.unit(x)
	if u < 0 || u > 1 {
		return 0
	}
	w := d.Hi - d.Lo
	if u == 0 || u == 1 {
		// Density diverges or vanishes at the edges depending on the
		// exponents; report the limit.
		if (u == 0 && d.Alpha < 1) || (u == 1 && d.BetaP < 1) {
			return math.Inf(1)
		}
		if (u == 0 && d.Alpha > 1) || (u == 1 && d.BetaP > 1) {
			return 0
		}
	}
	la, _ := math.Lgamma(d.Alpha)
	lb, _ := math.Lgamma(d.BetaP)
	lab, _ := math.Lgamma(d.Alpha + d.BetaP)
	logPDF := lab - la - lb + (d.Alpha-1)*math.Log(u) + (d.BetaP-1)*math.Log1p(-u)
	return math.Exp(logPDF) / w
}

// Quantile implements Dist by numeric inversion of BetaInc.
func (d Beta) Quantile(p float64) float64 {
	if p <= 0 {
		return d.Lo
	}
	if p >= 1 {
		return d.Hi
	}
	cdf := func(u float64) float64 { return specfn.BetaInc(d.Alpha, d.BetaP, u) }
	u := quantileByInversion(cdf, nil, p, 0, 1)
	return d.Lo + u*(d.Hi-d.Lo)
}

// Mean implements Dist: Lo + (Hi-Lo)·α/(α+β).
func (d Beta) Mean() float64 {
	return d.Lo + (d.Hi-d.Lo)*d.Alpha/(d.Alpha+d.BetaP)
}

// Var implements Dist.
func (d Beta) Var() float64 {
	s := d.Alpha + d.BetaP
	w := d.Hi - d.Lo
	return w * w * d.Alpha * d.BetaP / (s * s * (s + 1))
}

// Sample implements Dist via two gamma draws: G(α)/(G(α)+G(β)).
func (d Beta) Sample(r *xrand.Rand) float64 {
	ga := sampleGamma(r, d.Alpha)
	gb := sampleGamma(r, d.BetaP)
	return d.Lo + (d.Hi-d.Lo)*ga/(ga+gb)
}

// Support implements Dist.
func (d Beta) Support() (float64, float64) { return d.Lo, d.Hi }

// String implements Dist.
func (d Beta) String() string {
	if d.Lo == 0 && d.Hi == 1 {
		return fmt.Sprintf("Beta(α=%.6g, β=%.6g)", d.Alpha, d.BetaP)
	}
	return fmt.Sprintf("Beta(α=%.6g, β=%.6g on [%.6g, %.6g])", d.Alpha, d.BetaP, d.Lo, d.Hi)
}
