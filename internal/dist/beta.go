package dist

import (
	"fmt"
	"math"

	"lasvegas/internal/specfn"
	"lasvegas/internal/xrand"
)

// Beta is the beta law B(Alpha, BetaP) affinely mapped onto [Lo, Hi].
// Its role here is structural: the k-th of n uniform order statistics
// is Beta(k, n-k+1), so internal/orderstat samples arbitrary order
// statistics by pushing a beta draw through the base quantile.
type Beta struct {
	Alpha float64 // α > 0
	BetaP float64 // β > 0 (named to avoid clashing with the type)
	Lo    float64
	Hi    float64
}

// NewBeta validates α, β > 0 and Lo < Hi.
func NewBeta(alpha, betaP, lo, hi float64) (Beta, error) {
	if !(alpha > 0) || !(betaP > 0) || math.IsInf(alpha, 0) || math.IsInf(betaP, 0) {
		return Beta{}, fmt.Errorf("%w: Beta(α=%v, β=%v)", ErrParam, alpha, betaP)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || !(lo < hi) {
		return Beta{}, fmt.Errorf("%w: beta on [%v, %v]", ErrParam, lo, hi)
	}
	return Beta{Alpha: alpha, BetaP: betaP, Lo: lo, Hi: hi}, nil
}

// unit maps x into the unit interval.
func (d Beta) unit(x float64) float64 { return (x - d.Lo) / (d.Hi - d.Lo) }

// CDF implements Dist via the regularized incomplete beta.
func (d Beta) CDF(x float64) float64 {
	u := d.unit(x)
	if u <= 0 {
		return 0
	}
	if u >= 1 {
		return 1
	}
	return specfn.BetaInc(d.Alpha, d.BetaP, u)
}

// PDF implements Dist (log-space).
func (d Beta) PDF(x float64) float64 {
	u := d.unit(x)
	if u < 0 || u > 1 {
		return 0
	}
	w := d.Hi - d.Lo
	if u == 0 || u == 1 {
		// Density diverges or vanishes at the edges depending on the
		// exponents; report the limit.
		if (u == 0 && d.Alpha < 1) || (u == 1 && d.BetaP < 1) {
			return math.Inf(1)
		}
		if (u == 0 && d.Alpha > 1) || (u == 1 && d.BetaP > 1) {
			return 0
		}
	}
	la, _ := math.Lgamma(d.Alpha)
	lb, _ := math.Lgamma(d.BetaP)
	lab, _ := math.Lgamma(d.Alpha + d.BetaP)
	logPDF := lab - la - lb + (d.Alpha-1)*math.Log(u) + (d.BetaP-1)*math.Log1p(-u)
	return math.Exp(logPDF) / w
}

// Quantile implements Dist: the classic analytic first guesses
// (Abramowitz–Stegun 26.5.22's Cornish–Fisher-style normal-score
// formula for α, β ≥ 1, power-law tail inversion otherwise — the
// Temme/AS 109 starting values) polished by a safeguarded Newton
// iteration on the regularized incomplete beta.
func (d Beta) Quantile(p float64) float64 {
	if p <= 0 {
		return d.Lo
	}
	if p >= 1 {
		return d.Hi
	}
	return d.Lo + d.quantileUnit(p)*(d.Hi-d.Lo)
}

// QuantileBatch implements BatchQuantiler with the same Newton
// inversion per point — the last dist family without a batched
// quantile, so the order-statistic quadrature now runs batched for
// every base law. Batched and pointwise evaluation are bit-identical.
func (d Beta) QuantileBatch(ps, dst []float64) {
	w := d.Hi - d.Lo
	for i, p := range ps {
		switch {
		case p <= 0:
			dst[i] = d.Lo
		case p >= 1:
			dst[i] = d.Hi
		default:
			dst[i] = d.Lo + d.quantileUnit(p)*w
		}
	}
}

// quantileUnit inverts the unit-interval regularized incomplete beta
// at p ∈ (0,1): analytic initializer, then bracket-safeguarded Newton
// with the analytic density.
func (d Beta) quantileUnit(p float64) float64 {
	a, b := d.Alpha, d.BetaP
	var x float64
	if a >= 1 && b >= 1 {
		// A&S 26.5.22: push the normal score through the symmetric
		// chi-square-ish transform of the beta.
		z := specfn.NormQuantile(p)
		al := 1 / (2*a - 1)
		be := 1 / (2*b - 1)
		h := 2 / (al + be)
		lam := (z*z - 3) / 6
		w := z*math.Sqrt(h+lam)/h - (be-al)*(lam+5.0/6-2/(3*h))
		x = a / (a + b*math.Exp(2*w))
	} else {
		// Power-law tails: F(x) ≈ x^a·s_a near 0 (and symmetrically
		// near 1); pick the side p falls on.
		lnt := a * math.Log(a/(a+b))
		lnu := b * math.Log(b/(a+b))
		t := math.Exp(lnt) / a
		u := math.Exp(lnu) / b
		s := t + u
		if p < t/s {
			x = math.Pow(a*s*p, 1/a)
		} else {
			x = 1 - math.Pow(b*s*(1-p), 1/b)
		}
	}
	if !(x > 0) {
		x = 1e-16
	}
	if !(x < 1) {
		x = 1 - 1e-16
	}
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	logBeta := la + lb - lab
	lo, hi := 0.0, 1.0
	for i := 0; i < 64; i++ {
		f := specfn.BetaInc(a, b, x) - p
		if f == 0 {
			break
		}
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		w := math.Exp((a-1)*math.Log(x) + (b-1)*math.Log1p(-x) - logBeta)
		next := math.NaN()
		if w > 0 && !math.IsInf(w, 0) {
			next = x - f/w
		}
		if !(next > lo && next < hi) {
			next = 0.5 * (lo + hi)
		}
		if math.Abs(next-x) <= 4e-16*next {
			x = next
			break
		}
		x = next
	}
	return x
}

// Mean implements Dist: Lo + (Hi-Lo)·α/(α+β).
func (d Beta) Mean() float64 {
	return d.Lo + (d.Hi-d.Lo)*d.Alpha/(d.Alpha+d.BetaP)
}

// Var implements Dist.
func (d Beta) Var() float64 {
	s := d.Alpha + d.BetaP
	w := d.Hi - d.Lo
	return w * w * d.Alpha * d.BetaP / (s * s * (s + 1))
}

// Sample implements Dist via two gamma draws: G(α)/(G(α)+G(β)).
func (d Beta) Sample(r *xrand.Rand) float64 {
	ga := sampleGamma(r, d.Alpha)
	gb := sampleGamma(r, d.BetaP)
	return d.Lo + (d.Hi-d.Lo)*ga/(ga+gb)
}

// Support implements Dist.
func (d Beta) Support() (float64, float64) { return d.Lo, d.Hi }

// String implements Dist.
func (d Beta) String() string {
	if d.Lo == 0 && d.Hi == 1 {
		return fmt.Sprintf("Beta(α=%.6g, β=%.6g)", d.Alpha, d.BetaP)
	}
	return fmt.Sprintf("Beta(α=%.6g, β=%.6g on [%.6g, %.6g])", d.Alpha, d.BetaP, d.Lo, d.Hi)
}
