package dist

import (
	"fmt"
	"math"

	"lasvegas/internal/specfn"
	"lasvegas/internal/xrand"
)

// Levy is the Lévy stable law with index 1/2 — the heavy-tailed
// family the paper reports testing and rejecting. Its mean is
// infinite, so no finite multi-walk speed-up prediction exists for
// it; the predictor rejects it explicitly, and the restart analysis
// uses it as the textbook case where cutoffs help unboundedly.
//
//	F(x) = erfc(√(C / (2(x - Loc))))   for x > Loc.
type Levy struct {
	Loc float64 // location μ (left support edge)
	C   float64 // scale c > 0
}

// NewLevy validates c > 0.
func NewLevy(loc, c float64) (Levy, error) {
	if math.IsNaN(loc) || math.IsInf(loc, 0) {
		return Levy{}, fmt.Errorf("%w: location %v", ErrParam, loc)
	}
	if !(c > 0) || math.IsInf(c, 0) {
		return Levy{}, fmt.Errorf("%w: scale c=%v", ErrParam, c)
	}
	return Levy{Loc: loc, C: c}, nil
}

// CDF implements Dist.
func (d Levy) CDF(x float64) float64 {
	if x <= d.Loc {
		return 0
	}
	return math.Erfc(math.Sqrt(d.C / (2 * (x - d.Loc))))
}

// PDF implements Dist.
func (d Levy) PDF(x float64) float64 {
	if x <= d.Loc {
		return 0
	}
	t := x - d.Loc
	return math.Sqrt(d.C/(2*math.Pi)) * math.Exp(-d.C/(2*t)) / math.Pow(t, 1.5)
}

// Quantile implements Dist: Q(p) = μ + c / (2·erfcinv(p)²).
func (d Levy) Quantile(p float64) float64 {
	if p <= 0 {
		return d.Loc
	}
	if p >= 1 {
		return math.Inf(1)
	}
	e := specfn.ErfInv(1 - p) // erfc⁻¹(p)
	return d.Loc + d.C/(2*e*e)
}

// Mean implements Dist: +Inf (the defining pathology).
func (d Levy) Mean() float64 { return math.Inf(1) }

// Var implements Dist: +Inf.
func (d Levy) Var() float64 { return math.Inf(1) }

// Sample implements Dist: if Z ~ N(0,1) then μ + c/Z² ~ Lévy(μ, c).
func (d Levy) Sample(r *xrand.Rand) float64 {
	for {
		z := r.Norm()
		if z != 0 {
			return d.Loc + d.C/(z*z)
		}
	}
}

// Support implements Dist.
func (d Levy) Support() (float64, float64) { return d.Loc, math.Inf(1) }

// String implements Dist.
func (d Levy) String() string {
	return fmt.Sprintf("Levy(μ=%.6g, c=%.6g)", d.Loc, d.C)
}
