package dist

import (
	"math"
	"testing"
)

// TestQuantileBatchMatchesPointwise: the vectorized quantile of every
// BatchQuantiler family must agree bit-for-bit with Dist.Quantile,
// including the p=0 and p=1 edge mappings.
func TestQuantileBatchMatchesPointwise(t *testing.T) {
	ln, err := NewLogNormal(3, 12.0275, 1.3398)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShiftedExponential(1200, 1.0/109000)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExponential(5.4e-9)
	if err != nil {
		t.Fatal(err)
	}
	ps := []float64{0, 1e-12, 1e-6, 0.01, 0.25, 0.5, 0.75, 0.99, 1 - 1e-9, 1}
	for _, d := range []Dist{ln, se, ex} {
		bq, ok := d.(BatchQuantiler)
		if !ok {
			t.Fatalf("%s: no QuantileBatch", d)
		}
		dst := make([]float64, len(ps))
		bq.QuantileBatch(ps, dst)
		for i, p := range ps {
			want := d.Quantile(p)
			if dst[i] != want && !(math.IsNaN(dst[i]) && math.IsNaN(want)) {
				t.Errorf("%s: QuantileBatch(%g) = %v, Quantile = %v", d, p, dst[i], want)
			}
		}
	}
}

// TestQuantilesFallback: the generic helper must serve families
// without a batched path and must tolerate dst aliasing ps.
func TestQuantilesFallback(t *testing.T) {
	n, err := NewNormal(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	ps := []float64{0.1, 0.5, 0.9}
	want := make([]float64, len(ps))
	for i, p := range ps {
		want[i] = n.Quantile(p)
	}
	got := make([]float64, len(ps))
	Quantiles(n, ps, got)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("fallback Quantiles(%g) = %v, want %v", ps[i], got[i], want[i])
		}
	}
	// Aliased: batched family writing into its own input.
	ln, err := NewLogNormal(0, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := []float64{0.1, 0.5, 0.9}
	Quantiles(ln, buf, buf)
	for i, p := range ps {
		if buf[i] != ln.Quantile(p) {
			t.Errorf("aliased Quantiles(%g) = %v, want %v", p, buf[i], ln.Quantile(p))
		}
	}
}
