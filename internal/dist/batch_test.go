package dist

import (
	"math"
	"sort"
	"testing"

	"lasvegas/internal/xrand"
)

// TestQuantileBatchMatchesPointwise: the vectorized quantile of every
// BatchQuantiler family must agree bit-for-bit with Dist.Quantile,
// including the p=0 and p=1 edge mappings.
func TestQuantileBatchMatchesPointwise(t *testing.T) {
	ln, err := NewLogNormal(3, 12.0275, 1.3398)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShiftedExponential(1200, 1.0/109000)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExponential(5.4e-9)
	if err != nil {
		t.Fatal(err)
	}
	ps := []float64{0, 1e-12, 1e-6, 0.01, 0.25, 0.5, 0.75, 0.99, 1 - 1e-9, 1}
	for _, d := range []Dist{ln, se, ex} {
		bq, ok := d.(BatchQuantiler)
		if !ok {
			t.Fatalf("%s: no QuantileBatch", d)
		}
		dst := make([]float64, len(ps))
		bq.QuantileBatch(ps, dst)
		for i, p := range ps {
			want := d.Quantile(p)
			if dst[i] != want && !(math.IsNaN(dst[i]) && math.IsNaN(want)) {
				t.Errorf("%s: QuantileBatch(%g) = %v, Quantile = %v", d, p, dst[i], want)
			}
		}
	}
}

// TestQuantilesFallback: the generic helper must serve families
// without a batched path and must tolerate dst aliasing ps.
func TestQuantilesFallback(t *testing.T) {
	n, err := NewNormal(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	ps := []float64{0.1, 0.5, 0.9}
	want := make([]float64, len(ps))
	for i, p := range ps {
		want[i] = n.Quantile(p)
	}
	got := make([]float64, len(ps))
	Quantiles(n, ps, got)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("fallback Quantiles(%g) = %v, want %v", ps[i], got[i], want[i])
		}
	}
	// Aliased: batched family writing into its own input.
	ln, err := NewLogNormal(0, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := []float64{0.1, 0.5, 0.9}
	Quantiles(ln, buf, buf)
	for i, p := range ps {
		if buf[i] != ln.Quantile(p) {
			t.Errorf("aliased Quantiles(%g) = %v, want %v", p, buf[i], ln.Quantile(p))
		}
	}
}

// TestGammaBetaQuantileBatch: the two families that used to be
// bisection-only now carry initializer-plus-Newton batched quantiles.
// Batched must equal pointwise bit for bit, and both must invert the
// CDF to near machine precision across shapes spanning the
// small-shape, near-exponential and large-shape regimes.
func TestGammaBetaQuantileBatch(t *testing.T) {
	ps := []float64{0, 1e-10, 1e-4, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1 - 1e-6, 1}
	var laws []Dist
	for _, k := range []float64{0.15, 0.7, 1, 2.5, 40} {
		g, err := NewGamma(k, 1.0/300)
		if err != nil {
			t.Fatal(err)
		}
		laws = append(laws, g)
	}
	for _, ab := range [][2]float64{{0.4, 0.7}, {1, 1}, {2, 5}, {30, 0.8}, {12, 9}} {
		b, err := NewBeta(ab[0], ab[1], 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		laws = append(laws, b)
	}
	for _, d := range laws {
		bq, ok := d.(BatchQuantiler)
		if !ok {
			t.Fatalf("%s: no QuantileBatch", d)
		}
		dst := make([]float64, len(ps))
		bq.QuantileBatch(ps, dst)
		for i, p := range ps {
			want := d.Quantile(p)
			if dst[i] != want && !(math.IsNaN(dst[i]) && math.IsNaN(want)) {
				t.Errorf("%s: QuantileBatch(%g) = %v, Quantile = %v", d, p, dst[i], want)
			}
			if p <= 0 || p >= 1 {
				continue
			}
			if back := d.CDF(want); math.Abs(back-p) > 1e-10*(p+1e-12) && math.Abs(back-p) > 1e-13 {
				t.Errorf("%s: CDF(Quantile(%g)) = %v (round-trip error %g)", d, p, back, math.Abs(back-p))
			}
		}
	}
}

// TestGammaQuantileMatchesSampling: the Newton quantile must agree
// with the sampler it feeds — a coarse two-sided check at the
// quartiles over a large fixed-seed sample.
func TestGammaQuantileMatchesSampling(t *testing.T) {
	g, err := NewGamma(2.2, 1.0/150)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(99)
	sample := SampleN(g, r, 60000)
	sort.Float64s(sample)
	for _, p := range []float64{0.25, 0.5, 0.75, 0.95} {
		q := g.Quantile(p)
		emp := sample[int(p*float64(len(sample)))]
		if rel := math.Abs(q-emp) / q; rel > 0.03 {
			t.Errorf("Quantile(%g) = %v vs sampled %v (rel %g)", p, q, emp, rel)
		}
	}
}
