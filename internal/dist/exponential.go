package dist

import (
	"fmt"
	"math"

	"lasvegas/internal/xrand"
)

// ShiftedExponential is the paper's §6.1 workhorse: the exponential
// law translated to a minimal runtime x0 ("even the luckiest run
// costs x0 iterations"). Shift = 0 gives the plain exponential, the
// memoryless case with exactly linear predicted speed-up (§3.3).
//
//	F(x) = 1 - exp(-Rate·(x - Shift))   for x >= Shift.
type ShiftedExponential struct {
	Shift float64 // x0, the paper's minimal runtime (>= 0)
	Rate  float64 // λ > 0
}

// NewShiftedExponential validates x0 >= 0 and λ > 0.
func NewShiftedExponential(shift, rate float64) (ShiftedExponential, error) {
	if !(shift >= 0) || math.IsInf(shift, 0) {
		return ShiftedExponential{}, fmt.Errorf("%w: shift x0=%v", ErrParam, shift)
	}
	if !(rate > 0) || math.IsInf(rate, 0) {
		return ShiftedExponential{}, fmt.Errorf("%w: rate λ=%v", ErrParam, rate)
	}
	return ShiftedExponential{Shift: shift, Rate: rate}, nil
}

// NewExponential returns the unshifted exponential with rate λ — the
// paper's Costas 21 fit, kept in the shifted family so the predictor's
// closed forms apply uniformly.
func NewExponential(rate float64) (ShiftedExponential, error) {
	return NewShiftedExponential(0, rate)
}

// CDF implements Dist.
func (d ShiftedExponential) CDF(x float64) float64 {
	if x <= d.Shift {
		return 0
	}
	return -math.Expm1(-d.Rate * (x - d.Shift))
}

// PDF implements Dist.
func (d ShiftedExponential) PDF(x float64) float64 {
	if x < d.Shift {
		return 0
	}
	return d.Rate * math.Exp(-d.Rate*(x-d.Shift))
}

// Quantile implements Dist: Q(p) = x0 - ln(1-p)/λ.
func (d ShiftedExponential) Quantile(p float64) float64 {
	if p <= 0 {
		return d.Shift
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return d.Shift - math.Log1p(-p)/d.Rate
}

// QuantileBatch implements BatchQuantiler: the closed form of
// Quantile applied to a whole batch without per-point interface
// dispatch. The arithmetic matches Quantile exactly (same division),
// so batched and pointwise evaluation are bit-identical.
func (d ShiftedExponential) QuantileBatch(ps, dst []float64) {
	for i, p := range ps {
		switch {
		case p <= 0:
			dst[i] = d.Shift
		case p >= 1:
			dst[i] = math.Inf(1)
		default:
			dst[i] = d.Shift - math.Log1p(-p)/d.Rate
		}
	}
}

// Mean implements Dist: x0 + 1/λ.
func (d ShiftedExponential) Mean() float64 { return d.Shift + 1/d.Rate }

// Var implements Dist: 1/λ².
func (d ShiftedExponential) Var() float64 { return 1 / (d.Rate * d.Rate) }

// Sample implements Dist.
func (d ShiftedExponential) Sample(r *xrand.Rand) float64 {
	return d.Shift + r.Exp()/d.Rate
}

// Support implements Dist.
func (d ShiftedExponential) Support() (float64, float64) {
	return d.Shift, math.Inf(1)
}

// String implements Dist.
func (d ShiftedExponential) String() string {
	if d.Shift == 0 {
		return fmt.Sprintf("Exp(λ=%.6g)", d.Rate)
	}
	return fmt.Sprintf("ShiftedExp(x0=%.6g, λ=%.6g)", d.Shift, d.Rate)
}

// MinDist returns the exact law of min(X₁..Xₙ): the shifted
// exponential is min-stable, Z(n) ~ ShiftedExp(x0, n·λ) — the closed
// form behind the paper's G(n) = (x0+1/λ)/(x0+1/(nλ)).
func (d ShiftedExponential) MinDist(n int) ShiftedExponential {
	return ShiftedExponential{Shift: d.Shift, Rate: float64(n) * d.Rate}
}
